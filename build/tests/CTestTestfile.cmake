# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/past_common_tests[1]_include.cmake")
include("/root/repo/build/tests/past_crypto_tests[1]_include.cmake")
include("/root/repo/build/tests/past_sim_tests[1]_include.cmake")
include("/root/repo/build/tests/past_pastry_tests[1]_include.cmake")
include("/root/repo/build/tests/past_storage_tests[1]_include.cmake")
include("/root/repo/build/tests/past_integration_tests[1]_include.cmake")
