file(REMOVE_RECURSE
  "CMakeFiles/past_common_tests.dir/common/bytes_test.cc.o"
  "CMakeFiles/past_common_tests.dir/common/bytes_test.cc.o.d"
  "CMakeFiles/past_common_tests.dir/common/rng_test.cc.o"
  "CMakeFiles/past_common_tests.dir/common/rng_test.cc.o.d"
  "CMakeFiles/past_common_tests.dir/common/serializer_test.cc.o"
  "CMakeFiles/past_common_tests.dir/common/serializer_test.cc.o.d"
  "CMakeFiles/past_common_tests.dir/common/status_test.cc.o"
  "CMakeFiles/past_common_tests.dir/common/status_test.cc.o.d"
  "CMakeFiles/past_common_tests.dir/common/u128_property_test.cc.o"
  "CMakeFiles/past_common_tests.dir/common/u128_property_test.cc.o.d"
  "CMakeFiles/past_common_tests.dir/common/u128_test.cc.o"
  "CMakeFiles/past_common_tests.dir/common/u128_test.cc.o.d"
  "CMakeFiles/past_common_tests.dir/common/u160_test.cc.o"
  "CMakeFiles/past_common_tests.dir/common/u160_test.cc.o.d"
  "past_common_tests"
  "past_common_tests.pdb"
  "past_common_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/past_common_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
