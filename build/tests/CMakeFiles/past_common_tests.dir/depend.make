# Empty dependencies file for past_common_tests.
# This may be replaced when dependencies are built.
