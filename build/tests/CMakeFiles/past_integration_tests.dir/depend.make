# Empty dependencies file for past_integration_tests.
# This may be replaced when dependencies are built.
