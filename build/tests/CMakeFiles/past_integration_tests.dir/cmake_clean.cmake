file(REMOVE_RECURSE
  "CMakeFiles/past_integration_tests.dir/integration/end_to_end_test.cc.o"
  "CMakeFiles/past_integration_tests.dir/integration/end_to_end_test.cc.o.d"
  "CMakeFiles/past_integration_tests.dir/workload/trace_test.cc.o"
  "CMakeFiles/past_integration_tests.dir/workload/trace_test.cc.o.d"
  "CMakeFiles/past_integration_tests.dir/workload/workload_test.cc.o"
  "CMakeFiles/past_integration_tests.dir/workload/workload_test.cc.o.d"
  "past_integration_tests"
  "past_integration_tests.pdb"
  "past_integration_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/past_integration_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
