file(REMOVE_RECURSE
  "CMakeFiles/past_sim_tests.dir/sim/churn_test.cc.o"
  "CMakeFiles/past_sim_tests.dir/sim/churn_test.cc.o.d"
  "CMakeFiles/past_sim_tests.dir/sim/event_queue_test.cc.o"
  "CMakeFiles/past_sim_tests.dir/sim/event_queue_test.cc.o.d"
  "CMakeFiles/past_sim_tests.dir/sim/network_test.cc.o"
  "CMakeFiles/past_sim_tests.dir/sim/network_test.cc.o.d"
  "CMakeFiles/past_sim_tests.dir/sim/topology_test.cc.o"
  "CMakeFiles/past_sim_tests.dir/sim/topology_test.cc.o.d"
  "past_sim_tests"
  "past_sim_tests.pdb"
  "past_sim_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/past_sim_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
