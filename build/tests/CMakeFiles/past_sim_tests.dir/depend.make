# Empty dependencies file for past_sim_tests.
# This may be replaced when dependencies are built.
