file(REMOVE_RECURSE
  "CMakeFiles/past_crypto_tests.dir/crypto/bignum_test.cc.o"
  "CMakeFiles/past_crypto_tests.dir/crypto/bignum_test.cc.o.d"
  "CMakeFiles/past_crypto_tests.dir/crypto/crypto_property_test.cc.o"
  "CMakeFiles/past_crypto_tests.dir/crypto/crypto_property_test.cc.o.d"
  "CMakeFiles/past_crypto_tests.dir/crypto/rsa_test.cc.o"
  "CMakeFiles/past_crypto_tests.dir/crypto/rsa_test.cc.o.d"
  "CMakeFiles/past_crypto_tests.dir/crypto/sha1_test.cc.o"
  "CMakeFiles/past_crypto_tests.dir/crypto/sha1_test.cc.o.d"
  "CMakeFiles/past_crypto_tests.dir/crypto/sha256_test.cc.o"
  "CMakeFiles/past_crypto_tests.dir/crypto/sha256_test.cc.o.d"
  "past_crypto_tests"
  "past_crypto_tests.pdb"
  "past_crypto_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/past_crypto_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
