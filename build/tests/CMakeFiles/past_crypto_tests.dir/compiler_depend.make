# Empty compiler generated dependencies file for past_crypto_tests.
# This may be replaced when dependencies are built.
