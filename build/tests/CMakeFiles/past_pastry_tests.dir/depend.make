# Empty dependencies file for past_pastry_tests.
# This may be replaced when dependencies are built.
