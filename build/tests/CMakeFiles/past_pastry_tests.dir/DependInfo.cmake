
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/pastry/config_variants_test.cc" "tests/CMakeFiles/past_pastry_tests.dir/pastry/config_variants_test.cc.o" "gcc" "tests/CMakeFiles/past_pastry_tests.dir/pastry/config_variants_test.cc.o.d"
  "/root/repo/tests/pastry/join_failure_test.cc" "tests/CMakeFiles/past_pastry_tests.dir/pastry/join_failure_test.cc.o" "gcc" "tests/CMakeFiles/past_pastry_tests.dir/pastry/join_failure_test.cc.o.d"
  "/root/repo/tests/pastry/leaf_set_property_test.cc" "tests/CMakeFiles/past_pastry_tests.dir/pastry/leaf_set_property_test.cc.o" "gcc" "tests/CMakeFiles/past_pastry_tests.dir/pastry/leaf_set_property_test.cc.o.d"
  "/root/repo/tests/pastry/leaf_set_test.cc" "tests/CMakeFiles/past_pastry_tests.dir/pastry/leaf_set_test.cc.o" "gcc" "tests/CMakeFiles/past_pastry_tests.dir/pastry/leaf_set_test.cc.o.d"
  "/root/repo/tests/pastry/messages_test.cc" "tests/CMakeFiles/past_pastry_tests.dir/pastry/messages_test.cc.o" "gcc" "tests/CMakeFiles/past_pastry_tests.dir/pastry/messages_test.cc.o.d"
  "/root/repo/tests/pastry/neighborhood_set_test.cc" "tests/CMakeFiles/past_pastry_tests.dir/pastry/neighborhood_set_test.cc.o" "gcc" "tests/CMakeFiles/past_pastry_tests.dir/pastry/neighborhood_set_test.cc.o.d"
  "/root/repo/tests/pastry/node_id_test.cc" "tests/CMakeFiles/past_pastry_tests.dir/pastry/node_id_test.cc.o" "gcc" "tests/CMakeFiles/past_pastry_tests.dir/pastry/node_id_test.cc.o.d"
  "/root/repo/tests/pastry/overlay_test.cc" "tests/CMakeFiles/past_pastry_tests.dir/pastry/overlay_test.cc.o" "gcc" "tests/CMakeFiles/past_pastry_tests.dir/pastry/overlay_test.cc.o.d"
  "/root/repo/tests/pastry/pastry_node_test.cc" "tests/CMakeFiles/past_pastry_tests.dir/pastry/pastry_node_test.cc.o" "gcc" "tests/CMakeFiles/past_pastry_tests.dir/pastry/pastry_node_test.cc.o.d"
  "/root/repo/tests/pastry/routing_table_property_test.cc" "tests/CMakeFiles/past_pastry_tests.dir/pastry/routing_table_property_test.cc.o" "gcc" "tests/CMakeFiles/past_pastry_tests.dir/pastry/routing_table_property_test.cc.o.d"
  "/root/repo/tests/pastry/routing_table_test.cc" "tests/CMakeFiles/past_pastry_tests.dir/pastry/routing_table_test.cc.o" "gcc" "tests/CMakeFiles/past_pastry_tests.dir/pastry/routing_table_test.cc.o.d"
  "/root/repo/tests/pastry/routing_test.cc" "tests/CMakeFiles/past_pastry_tests.dir/pastry/routing_test.cc.o" "gcc" "tests/CMakeFiles/past_pastry_tests.dir/pastry/routing_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/storage/CMakeFiles/past_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/pastry/CMakeFiles/past_pastry.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/past_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/past_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/past_common.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/past_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
