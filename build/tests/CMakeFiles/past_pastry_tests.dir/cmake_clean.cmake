file(REMOVE_RECURSE
  "CMakeFiles/past_pastry_tests.dir/pastry/config_variants_test.cc.o"
  "CMakeFiles/past_pastry_tests.dir/pastry/config_variants_test.cc.o.d"
  "CMakeFiles/past_pastry_tests.dir/pastry/join_failure_test.cc.o"
  "CMakeFiles/past_pastry_tests.dir/pastry/join_failure_test.cc.o.d"
  "CMakeFiles/past_pastry_tests.dir/pastry/leaf_set_property_test.cc.o"
  "CMakeFiles/past_pastry_tests.dir/pastry/leaf_set_property_test.cc.o.d"
  "CMakeFiles/past_pastry_tests.dir/pastry/leaf_set_test.cc.o"
  "CMakeFiles/past_pastry_tests.dir/pastry/leaf_set_test.cc.o.d"
  "CMakeFiles/past_pastry_tests.dir/pastry/messages_test.cc.o"
  "CMakeFiles/past_pastry_tests.dir/pastry/messages_test.cc.o.d"
  "CMakeFiles/past_pastry_tests.dir/pastry/neighborhood_set_test.cc.o"
  "CMakeFiles/past_pastry_tests.dir/pastry/neighborhood_set_test.cc.o.d"
  "CMakeFiles/past_pastry_tests.dir/pastry/node_id_test.cc.o"
  "CMakeFiles/past_pastry_tests.dir/pastry/node_id_test.cc.o.d"
  "CMakeFiles/past_pastry_tests.dir/pastry/overlay_test.cc.o"
  "CMakeFiles/past_pastry_tests.dir/pastry/overlay_test.cc.o.d"
  "CMakeFiles/past_pastry_tests.dir/pastry/pastry_node_test.cc.o"
  "CMakeFiles/past_pastry_tests.dir/pastry/pastry_node_test.cc.o.d"
  "CMakeFiles/past_pastry_tests.dir/pastry/routing_table_property_test.cc.o"
  "CMakeFiles/past_pastry_tests.dir/pastry/routing_table_property_test.cc.o.d"
  "CMakeFiles/past_pastry_tests.dir/pastry/routing_table_test.cc.o"
  "CMakeFiles/past_pastry_tests.dir/pastry/routing_table_test.cc.o.d"
  "CMakeFiles/past_pastry_tests.dir/pastry/routing_test.cc.o"
  "CMakeFiles/past_pastry_tests.dir/pastry/routing_test.cc.o.d"
  "past_pastry_tests"
  "past_pastry_tests.pdb"
  "past_pastry_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/past_pastry_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
