
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/storage/cache_test.cc" "tests/CMakeFiles/past_storage_tests.dir/storage/cache_test.cc.o" "gcc" "tests/CMakeFiles/past_storage_tests.dir/storage/cache_test.cc.o.d"
  "/root/repo/tests/storage/certificates_test.cc" "tests/CMakeFiles/past_storage_tests.dir/storage/certificates_test.cc.o" "gcc" "tests/CMakeFiles/past_storage_tests.dir/storage/certificates_test.cc.o.d"
  "/root/repo/tests/storage/file_store_test.cc" "tests/CMakeFiles/past_storage_tests.dir/storage/file_store_test.cc.o" "gcc" "tests/CMakeFiles/past_storage_tests.dir/storage/file_store_test.cc.o.d"
  "/root/repo/tests/storage/messages_test.cc" "tests/CMakeFiles/past_storage_tests.dir/storage/messages_test.cc.o" "gcc" "tests/CMakeFiles/past_storage_tests.dir/storage/messages_test.cc.o.d"
  "/root/repo/tests/storage/past_basic_test.cc" "tests/CMakeFiles/past_storage_tests.dir/storage/past_basic_test.cc.o" "gcc" "tests/CMakeFiles/past_storage_tests.dir/storage/past_basic_test.cc.o.d"
  "/root/repo/tests/storage/past_diversion_test.cc" "tests/CMakeFiles/past_storage_tests.dir/storage/past_diversion_test.cc.o" "gcc" "tests/CMakeFiles/past_storage_tests.dir/storage/past_diversion_test.cc.o.d"
  "/root/repo/tests/storage/past_maintenance_test.cc" "tests/CMakeFiles/past_storage_tests.dir/storage/past_maintenance_test.cc.o" "gcc" "tests/CMakeFiles/past_storage_tests.dir/storage/past_maintenance_test.cc.o.d"
  "/root/repo/tests/storage/past_network_test.cc" "tests/CMakeFiles/past_storage_tests.dir/storage/past_network_test.cc.o" "gcc" "tests/CMakeFiles/past_storage_tests.dir/storage/past_network_test.cc.o.d"
  "/root/repo/tests/storage/past_readonly_test.cc" "tests/CMakeFiles/past_storage_tests.dir/storage/past_readonly_test.cc.o" "gcc" "tests/CMakeFiles/past_storage_tests.dir/storage/past_readonly_test.cc.o.d"
  "/root/repo/tests/storage/past_security_test.cc" "tests/CMakeFiles/past_storage_tests.dir/storage/past_security_test.cc.o" "gcc" "tests/CMakeFiles/past_storage_tests.dir/storage/past_security_test.cc.o.d"
  "/root/repo/tests/storage/smartcard_test.cc" "tests/CMakeFiles/past_storage_tests.dir/storage/smartcard_test.cc.o" "gcc" "tests/CMakeFiles/past_storage_tests.dir/storage/smartcard_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/storage/CMakeFiles/past_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/pastry/CMakeFiles/past_pastry.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/past_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/past_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/past_common.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/past_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
