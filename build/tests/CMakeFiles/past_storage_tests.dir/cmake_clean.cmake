file(REMOVE_RECURSE
  "CMakeFiles/past_storage_tests.dir/storage/cache_test.cc.o"
  "CMakeFiles/past_storage_tests.dir/storage/cache_test.cc.o.d"
  "CMakeFiles/past_storage_tests.dir/storage/certificates_test.cc.o"
  "CMakeFiles/past_storage_tests.dir/storage/certificates_test.cc.o.d"
  "CMakeFiles/past_storage_tests.dir/storage/file_store_test.cc.o"
  "CMakeFiles/past_storage_tests.dir/storage/file_store_test.cc.o.d"
  "CMakeFiles/past_storage_tests.dir/storage/messages_test.cc.o"
  "CMakeFiles/past_storage_tests.dir/storage/messages_test.cc.o.d"
  "CMakeFiles/past_storage_tests.dir/storage/past_basic_test.cc.o"
  "CMakeFiles/past_storage_tests.dir/storage/past_basic_test.cc.o.d"
  "CMakeFiles/past_storage_tests.dir/storage/past_diversion_test.cc.o"
  "CMakeFiles/past_storage_tests.dir/storage/past_diversion_test.cc.o.d"
  "CMakeFiles/past_storage_tests.dir/storage/past_maintenance_test.cc.o"
  "CMakeFiles/past_storage_tests.dir/storage/past_maintenance_test.cc.o.d"
  "CMakeFiles/past_storage_tests.dir/storage/past_network_test.cc.o"
  "CMakeFiles/past_storage_tests.dir/storage/past_network_test.cc.o.d"
  "CMakeFiles/past_storage_tests.dir/storage/past_readonly_test.cc.o"
  "CMakeFiles/past_storage_tests.dir/storage/past_readonly_test.cc.o.d"
  "CMakeFiles/past_storage_tests.dir/storage/past_security_test.cc.o"
  "CMakeFiles/past_storage_tests.dir/storage/past_security_test.cc.o.d"
  "CMakeFiles/past_storage_tests.dir/storage/smartcard_test.cc.o"
  "CMakeFiles/past_storage_tests.dir/storage/smartcard_test.cc.o.d"
  "past_storage_tests"
  "past_storage_tests.pdb"
  "past_storage_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/past_storage_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
