# Empty dependencies file for past_storage_tests.
# This may be replaced when dependencies are built.
