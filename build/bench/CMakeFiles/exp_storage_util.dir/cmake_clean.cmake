file(REMOVE_RECURSE
  "CMakeFiles/exp_storage_util.dir/exp_storage_util.cpp.o"
  "CMakeFiles/exp_storage_util.dir/exp_storage_util.cpp.o.d"
  "exp_storage_util"
  "exp_storage_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_storage_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
