
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/exp_storage_util.cpp" "bench/CMakeFiles/exp_storage_util.dir/exp_storage_util.cpp.o" "gcc" "bench/CMakeFiles/exp_storage_util.dir/exp_storage_util.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/storage/CMakeFiles/past_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/pastry/CMakeFiles/past_pastry.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/past_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/past_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/past_common.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/past_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
