# Empty compiler generated dependencies file for exp_storage_util.
# This may be replaced when dependencies are built.
