file(REMOVE_RECURSE
  "CMakeFiles/exp_churn.dir/exp_churn.cpp.o"
  "CMakeFiles/exp_churn.dir/exp_churn.cpp.o.d"
  "exp_churn"
  "exp_churn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_churn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
