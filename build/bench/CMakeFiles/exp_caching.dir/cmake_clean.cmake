file(REMOVE_RECURSE
  "CMakeFiles/exp_caching.dir/exp_caching.cpp.o"
  "CMakeFiles/exp_caching.dir/exp_caching.cpp.o.d"
  "exp_caching"
  "exp_caching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_caching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
