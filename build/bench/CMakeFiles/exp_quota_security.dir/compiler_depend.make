# Empty compiler generated dependencies file for exp_quota_security.
# This may be replaced when dependencies are built.
