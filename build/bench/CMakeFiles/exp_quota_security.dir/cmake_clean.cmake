file(REMOVE_RECURSE
  "CMakeFiles/exp_quota_security.dir/exp_quota_security.cpp.o"
  "CMakeFiles/exp_quota_security.dir/exp_quota_security.cpp.o.d"
  "exp_quota_security"
  "exp_quota_security.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_quota_security.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
