# Empty compiler generated dependencies file for exp_load_balance.
# This may be replaced when dependencies are built.
