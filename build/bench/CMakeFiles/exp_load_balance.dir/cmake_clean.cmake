file(REMOVE_RECURSE
  "CMakeFiles/exp_load_balance.dir/exp_load_balance.cpp.o"
  "CMakeFiles/exp_load_balance.dir/exp_load_balance.cpp.o.d"
  "exp_load_balance"
  "exp_load_balance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_load_balance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
