# Empty compiler generated dependencies file for exp_replica_locality.
# This may be replaced when dependencies are built.
