file(REMOVE_RECURSE
  "CMakeFiles/exp_replica_locality.dir/exp_replica_locality.cpp.o"
  "CMakeFiles/exp_replica_locality.dir/exp_replica_locality.cpp.o.d"
  "exp_replica_locality"
  "exp_replica_locality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_replica_locality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
