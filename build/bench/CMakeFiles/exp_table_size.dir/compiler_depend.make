# Empty compiler generated dependencies file for exp_table_size.
# This may be replaced when dependencies are built.
