file(REMOVE_RECURSE
  "CMakeFiles/exp_table_size.dir/exp_table_size.cpp.o"
  "CMakeFiles/exp_table_size.dir/exp_table_size.cpp.o.d"
  "exp_table_size"
  "exp_table_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_table_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
