file(REMOVE_RECURSE
  "CMakeFiles/exp_routing_hops.dir/exp_routing_hops.cpp.o"
  "CMakeFiles/exp_routing_hops.dir/exp_routing_hops.cpp.o.d"
  "exp_routing_hops"
  "exp_routing_hops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_routing_hops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
