# Empty dependencies file for exp_routing_hops.
# This may be replaced when dependencies are built.
