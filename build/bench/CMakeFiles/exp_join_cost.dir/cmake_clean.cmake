file(REMOVE_RECURSE
  "CMakeFiles/exp_join_cost.dir/exp_join_cost.cpp.o"
  "CMakeFiles/exp_join_cost.dir/exp_join_cost.cpp.o.d"
  "exp_join_cost"
  "exp_join_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_join_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
