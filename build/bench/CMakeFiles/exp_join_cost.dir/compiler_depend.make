# Empty compiler generated dependencies file for exp_join_cost.
# This may be replaced when dependencies are built.
