file(REMOVE_RECURSE
  "CMakeFiles/exp_locality.dir/exp_locality.cpp.o"
  "CMakeFiles/exp_locality.dir/exp_locality.cpp.o.d"
  "exp_locality"
  "exp_locality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_locality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
