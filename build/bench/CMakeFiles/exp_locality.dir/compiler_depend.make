# Empty compiler generated dependencies file for exp_locality.
# This may be replaced when dependencies are built.
