file(REMOVE_RECURSE
  "CMakeFiles/exp_param_sweep.dir/exp_param_sweep.cpp.o"
  "CMakeFiles/exp_param_sweep.dir/exp_param_sweep.cpp.o.d"
  "exp_param_sweep"
  "exp_param_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_param_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
