# Empty dependencies file for exp_param_sweep.
# This may be replaced when dependencies are built.
