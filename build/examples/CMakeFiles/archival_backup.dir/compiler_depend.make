# Empty compiler generated dependencies file for archival_backup.
# This may be replaced when dependencies are built.
