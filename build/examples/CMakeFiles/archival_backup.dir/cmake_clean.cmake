file(REMOVE_RECURSE
  "CMakeFiles/archival_backup.dir/archival_backup.cpp.o"
  "CMakeFiles/archival_backup.dir/archival_backup.cpp.o.d"
  "archival_backup"
  "archival_backup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/archival_backup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
