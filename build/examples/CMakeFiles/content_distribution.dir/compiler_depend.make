# Empty compiler generated dependencies file for content_distribution.
# This may be replaced when dependencies are built.
