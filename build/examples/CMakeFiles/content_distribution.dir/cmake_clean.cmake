file(REMOVE_RECURSE
  "CMakeFiles/content_distribution.dir/content_distribution.cpp.o"
  "CMakeFiles/content_distribution.dir/content_distribution.cpp.o.d"
  "content_distribution"
  "content_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/content_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
