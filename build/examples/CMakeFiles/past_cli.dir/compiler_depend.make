# Empty compiler generated dependencies file for past_cli.
# This may be replaced when dependencies are built.
