file(REMOVE_RECURSE
  "CMakeFiles/past_cli.dir/past_cli.cpp.o"
  "CMakeFiles/past_cli.dir/past_cli.cpp.o.d"
  "past_cli"
  "past_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/past_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
