file(REMOVE_RECURSE
  "CMakeFiles/broker_marketplace.dir/broker_marketplace.cpp.o"
  "CMakeFiles/broker_marketplace.dir/broker_marketplace.cpp.o.d"
  "broker_marketplace"
  "broker_marketplace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/broker_marketplace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
