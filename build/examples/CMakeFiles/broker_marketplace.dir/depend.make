# Empty dependencies file for broker_marketplace.
# This may be replaced when dependencies are built.
