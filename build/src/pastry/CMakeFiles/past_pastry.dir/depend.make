# Empty dependencies file for past_pastry.
# This may be replaced when dependencies are built.
