file(REMOVE_RECURSE
  "libpast_pastry.a"
)
