file(REMOVE_RECURSE
  "CMakeFiles/past_pastry.dir/leaf_set.cc.o"
  "CMakeFiles/past_pastry.dir/leaf_set.cc.o.d"
  "CMakeFiles/past_pastry.dir/messages.cc.o"
  "CMakeFiles/past_pastry.dir/messages.cc.o.d"
  "CMakeFiles/past_pastry.dir/neighborhood_set.cc.o"
  "CMakeFiles/past_pastry.dir/neighborhood_set.cc.o.d"
  "CMakeFiles/past_pastry.dir/node_id.cc.o"
  "CMakeFiles/past_pastry.dir/node_id.cc.o.d"
  "CMakeFiles/past_pastry.dir/overlay.cc.o"
  "CMakeFiles/past_pastry.dir/overlay.cc.o.d"
  "CMakeFiles/past_pastry.dir/pastry_node.cc.o"
  "CMakeFiles/past_pastry.dir/pastry_node.cc.o.d"
  "CMakeFiles/past_pastry.dir/routing_table.cc.o"
  "CMakeFiles/past_pastry.dir/routing_table.cc.o.d"
  "libpast_pastry.a"
  "libpast_pastry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/past_pastry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
