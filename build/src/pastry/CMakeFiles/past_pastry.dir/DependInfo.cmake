
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pastry/leaf_set.cc" "src/pastry/CMakeFiles/past_pastry.dir/leaf_set.cc.o" "gcc" "src/pastry/CMakeFiles/past_pastry.dir/leaf_set.cc.o.d"
  "/root/repo/src/pastry/messages.cc" "src/pastry/CMakeFiles/past_pastry.dir/messages.cc.o" "gcc" "src/pastry/CMakeFiles/past_pastry.dir/messages.cc.o.d"
  "/root/repo/src/pastry/neighborhood_set.cc" "src/pastry/CMakeFiles/past_pastry.dir/neighborhood_set.cc.o" "gcc" "src/pastry/CMakeFiles/past_pastry.dir/neighborhood_set.cc.o.d"
  "/root/repo/src/pastry/node_id.cc" "src/pastry/CMakeFiles/past_pastry.dir/node_id.cc.o" "gcc" "src/pastry/CMakeFiles/past_pastry.dir/node_id.cc.o.d"
  "/root/repo/src/pastry/overlay.cc" "src/pastry/CMakeFiles/past_pastry.dir/overlay.cc.o" "gcc" "src/pastry/CMakeFiles/past_pastry.dir/overlay.cc.o.d"
  "/root/repo/src/pastry/pastry_node.cc" "src/pastry/CMakeFiles/past_pastry.dir/pastry_node.cc.o" "gcc" "src/pastry/CMakeFiles/past_pastry.dir/pastry_node.cc.o.d"
  "/root/repo/src/pastry/routing_table.cc" "src/pastry/CMakeFiles/past_pastry.dir/routing_table.cc.o" "gcc" "src/pastry/CMakeFiles/past_pastry.dir/routing_table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/past_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/past_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/past_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
