file(REMOVE_RECURSE
  "CMakeFiles/past_sim.dir/churn.cc.o"
  "CMakeFiles/past_sim.dir/churn.cc.o.d"
  "CMakeFiles/past_sim.dir/event_queue.cc.o"
  "CMakeFiles/past_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/past_sim.dir/network.cc.o"
  "CMakeFiles/past_sim.dir/network.cc.o.d"
  "CMakeFiles/past_sim.dir/topology.cc.o"
  "CMakeFiles/past_sim.dir/topology.cc.o.d"
  "libpast_sim.a"
  "libpast_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/past_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
