file(REMOVE_RECURSE
  "libpast_sim.a"
)
