# Empty dependencies file for past_sim.
# This may be replaced when dependencies are built.
