# Empty dependencies file for past_common.
# This may be replaced when dependencies are built.
