file(REMOVE_RECURSE
  "CMakeFiles/past_common.dir/bytes.cc.o"
  "CMakeFiles/past_common.dir/bytes.cc.o.d"
  "CMakeFiles/past_common.dir/logging.cc.o"
  "CMakeFiles/past_common.dir/logging.cc.o.d"
  "CMakeFiles/past_common.dir/rng.cc.o"
  "CMakeFiles/past_common.dir/rng.cc.o.d"
  "CMakeFiles/past_common.dir/serializer.cc.o"
  "CMakeFiles/past_common.dir/serializer.cc.o.d"
  "CMakeFiles/past_common.dir/status.cc.o"
  "CMakeFiles/past_common.dir/status.cc.o.d"
  "CMakeFiles/past_common.dir/u128.cc.o"
  "CMakeFiles/past_common.dir/u128.cc.o.d"
  "CMakeFiles/past_common.dir/u160.cc.o"
  "CMakeFiles/past_common.dir/u160.cc.o.d"
  "libpast_common.a"
  "libpast_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/past_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
