file(REMOVE_RECURSE
  "libpast_common.a"
)
