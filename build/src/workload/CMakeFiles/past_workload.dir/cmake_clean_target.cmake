file(REMOVE_RECURSE
  "libpast_workload.a"
)
