# Empty dependencies file for past_workload.
# This may be replaced when dependencies are built.
