file(REMOVE_RECURSE
  "CMakeFiles/past_workload.dir/replay.cc.o"
  "CMakeFiles/past_workload.dir/replay.cc.o.d"
  "CMakeFiles/past_workload.dir/trace.cc.o"
  "CMakeFiles/past_workload.dir/trace.cc.o.d"
  "CMakeFiles/past_workload.dir/workload.cc.o"
  "CMakeFiles/past_workload.dir/workload.cc.o.d"
  "libpast_workload.a"
  "libpast_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/past_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
