# Empty compiler generated dependencies file for past_storage.
# This may be replaced when dependencies are built.
