
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/cache.cc" "src/storage/CMakeFiles/past_storage.dir/cache.cc.o" "gcc" "src/storage/CMakeFiles/past_storage.dir/cache.cc.o.d"
  "/root/repo/src/storage/certificates.cc" "src/storage/CMakeFiles/past_storage.dir/certificates.cc.o" "gcc" "src/storage/CMakeFiles/past_storage.dir/certificates.cc.o.d"
  "/root/repo/src/storage/file_id.cc" "src/storage/CMakeFiles/past_storage.dir/file_id.cc.o" "gcc" "src/storage/CMakeFiles/past_storage.dir/file_id.cc.o.d"
  "/root/repo/src/storage/file_store.cc" "src/storage/CMakeFiles/past_storage.dir/file_store.cc.o" "gcc" "src/storage/CMakeFiles/past_storage.dir/file_store.cc.o.d"
  "/root/repo/src/storage/messages.cc" "src/storage/CMakeFiles/past_storage.dir/messages.cc.o" "gcc" "src/storage/CMakeFiles/past_storage.dir/messages.cc.o.d"
  "/root/repo/src/storage/past_network.cc" "src/storage/CMakeFiles/past_storage.dir/past_network.cc.o" "gcc" "src/storage/CMakeFiles/past_storage.dir/past_network.cc.o.d"
  "/root/repo/src/storage/past_node.cc" "src/storage/CMakeFiles/past_storage.dir/past_node.cc.o" "gcc" "src/storage/CMakeFiles/past_storage.dir/past_node.cc.o.d"
  "/root/repo/src/storage/smartcard.cc" "src/storage/CMakeFiles/past_storage.dir/smartcard.cc.o" "gcc" "src/storage/CMakeFiles/past_storage.dir/smartcard.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/past_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/past_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/pastry/CMakeFiles/past_pastry.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/past_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
