file(REMOVE_RECURSE
  "libpast_storage.a"
)
