file(REMOVE_RECURSE
  "CMakeFiles/past_storage.dir/cache.cc.o"
  "CMakeFiles/past_storage.dir/cache.cc.o.d"
  "CMakeFiles/past_storage.dir/certificates.cc.o"
  "CMakeFiles/past_storage.dir/certificates.cc.o.d"
  "CMakeFiles/past_storage.dir/file_id.cc.o"
  "CMakeFiles/past_storage.dir/file_id.cc.o.d"
  "CMakeFiles/past_storage.dir/file_store.cc.o"
  "CMakeFiles/past_storage.dir/file_store.cc.o.d"
  "CMakeFiles/past_storage.dir/messages.cc.o"
  "CMakeFiles/past_storage.dir/messages.cc.o.d"
  "CMakeFiles/past_storage.dir/past_network.cc.o"
  "CMakeFiles/past_storage.dir/past_network.cc.o.d"
  "CMakeFiles/past_storage.dir/past_node.cc.o"
  "CMakeFiles/past_storage.dir/past_node.cc.o.d"
  "CMakeFiles/past_storage.dir/smartcard.cc.o"
  "CMakeFiles/past_storage.dir/smartcard.cc.o.d"
  "libpast_storage.a"
  "libpast_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/past_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
