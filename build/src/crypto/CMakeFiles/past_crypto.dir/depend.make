# Empty dependencies file for past_crypto.
# This may be replaced when dependencies are built.
