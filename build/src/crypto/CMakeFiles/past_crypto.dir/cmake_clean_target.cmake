file(REMOVE_RECURSE
  "libpast_crypto.a"
)
