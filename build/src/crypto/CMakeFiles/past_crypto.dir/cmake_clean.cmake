file(REMOVE_RECURSE
  "CMakeFiles/past_crypto.dir/bignum.cc.o"
  "CMakeFiles/past_crypto.dir/bignum.cc.o.d"
  "CMakeFiles/past_crypto.dir/rsa.cc.o"
  "CMakeFiles/past_crypto.dir/rsa.cc.o.d"
  "CMakeFiles/past_crypto.dir/sha1.cc.o"
  "CMakeFiles/past_crypto.dir/sha1.cc.o.d"
  "CMakeFiles/past_crypto.dir/sha256.cc.o"
  "CMakeFiles/past_crypto.dir/sha256.cc.o.d"
  "libpast_crypto.a"
  "libpast_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/past_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
