// Archival backup — the paper's motivating use case.
//
// "[A storage utility] obviates the need for physical transport of storage
// media to protect backup and archival data." A user archives a directory of
// files into PAST, then a significant fraction of the network fails over
// time; the self-organizing recovery keeps every archive readable.
//
//   $ ./examples/archival_backup
#include <cstdio>

#include "src/storage/past_network.h"
#include "src/workload/workload.h"

using namespace past;

int main() {
  PastNetworkOptions options;
  options.overlay.seed = 77;
  options.broker.modulus_pool = 4;
  // Fast failure detection so the demo heals quickly.
  options.overlay.pastry.keep_alive_period = 1 * kMicrosPerSecond;
  options.overlay.pastry.failure_timeout = 3 * kMicrosPerSecond;
  options.overlay.pastry.death_quarantine = 6 * kMicrosPerSecond;
  options.past.default_replication = 4;
  PastNetwork net(options);
  net.Build(80);
  std::printf("archive target: PAST network with %zu nodes, k=4 replicas\n",
              net.size());

  // Archive 25 "files" (random payloads standing in for documents).
  PastNode* archiver = net.node(0);
  Rng rng(1);
  struct Archived {
    std::string name;
    FileId id;
    Bytes content;
  };
  std::vector<Archived> archive;
  for (int i = 0; i < 25; ++i) {
    Archived entry;
    entry.name = "backup/doc-" + std::to_string(i) + ".dat";
    entry.content = rng.RandomBytes(256 + rng.UniformU64(2048));
    auto r = net.InsertSync(archiver, entry.name, entry.content, 4);
    if (!r.ok()) {
      std::printf("  failed to archive %s: %s\n", entry.name.c_str(),
                  StatusCodeName(r.status()));
      continue;
    }
    entry.id = r.value();
    archive.push_back(std::move(entry));
  }
  std::printf("archived %zu files (%llu bytes of quota used)\n", archive.size(),
              static_cast<unsigned long long>(archiver->card().quota_used()));

  // Disaster strikes in waves: 3 waves of 10 node crashes each, with repair
  // windows in between (the paper's silent-departure model).
  int killed_total = 0;
  for (int wave = 1; wave <= 3; ++wave) {
    int killed = 0;
    while (killed < 10) {
      size_t victim = 1 + rng.UniformU64(net.size() - 1);
      if (net.node(victim)->overlay()->active()) {
        net.CrashNode(victim);
        ++killed;
        ++killed_total;
      }
    }
    net.Run(40 * kMicrosPerSecond);  // detection + leaf repair + re-replication

    int readable = 0;
    double replicas = 0;
    for (const Archived& entry : archive) {
      auto looked = net.LookupSync(archiver, entry.id);
      if (looked.ok() && looked.value().content == entry.content) {
        ++readable;
      }
      replicas += net.CountReplicas(entry.id);
    }
    std::printf(
        "wave %d: %2d nodes dead (%2d total) -> %d/%zu archives readable, "
        "avg %.2f replicas\n",
        wave, 10, killed_total, readable, archive.size(),
        replicas / static_cast<double>(archive.size()));
  }

  std::printf("\n%d of %zu original nodes failed silently; every archive\n",
              killed_total, net.size());
  std::printf("survived because recovery restores k replicas after each wave.\n");
  return 0;
}
