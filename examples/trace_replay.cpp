// Trace replay — reproducible workloads as an artifact.
//
// Generates a mixed operation trace (inserts, Zipf lookups, reclaims,
// churn), serializes it to a diff-friendly text file, parses it back, and
// replays it against a PAST network. The same trace file can be replayed
// against different configurations to compare policies.
//
//   $ ./examples/trace_replay [trace-file]
#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/workload/replay.h"

using namespace past;

int main(int argc, char** argv) {
  const char* path = argc > 1 ? argv[1] : "/tmp/past-demo.trace";

  // 1. Generate and save a trace.
  Rng rng(20260704);
  TraceWorkloadOptions workload;
  workload.operations = 200;
  workload.clients = 40;
  workload.churn_weight = 0.04;
  workload.sizes.max_size = 16 << 10;
  Trace trace = GenerateTrace(workload, &rng);
  {
    std::ofstream out(path);
    out << trace.Serialize();
  }
  std::printf("wrote %zu operations (%zu inserts) to %s\n", trace.size(),
              trace.InsertCount(), path);

  // 2. Load it back (what a user replaying a shipped trace would do).
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  Result<Trace> loaded = Trace::Parse(buffer.str());
  if (!loaded.ok()) {
    std::printf("failed to parse %s: %s\n", path, StatusCodeName(loaded.status()));
    return 1;
  }

  // 3. Replay against two configurations: caching on vs off.
  for (bool caching : {true, false}) {
    PastNetworkOptions options;
    options.overlay.seed = 99;
    options.broker.modulus_pool = 4;
    options.overlay.pastry.keep_alive_period = 1 * kMicrosPerSecond;
    options.overlay.pastry.failure_timeout = 3 * kMicrosPerSecond;
    options.overlay.pastry.death_quarantine = 6 * kMicrosPerSecond;
    options.past.cache_policy =
        caching ? CachePolicy::kGreedyDualSize : CachePolicy::kNone;
    options.past.cache_on_insert_path = caching;
    options.past.cache_push_on_lookup = caching;
    PastNetwork net(options);
    net.Build(40);

    ReplayResult result = ReplayTrace(loaded.value(), &net);
    uint64_t cache_hits = 0;
    for (size_t i = 0; i < net.size(); ++i) {
      cache_hits += net.node(i)->file_cache().stats().hits;
    }
    std::printf(
        "\nreplay with caching %s:\n"
        "  inserts   %d ok / %d failed\n"
        "  lookups   %d ok / %d failed / %d skipped (reclaimed)\n"
        "  reclaims  %d ok\n"
        "  churn     %d crashes, %d joins\n"
        "  cache     %llu hits across the network\n",
        caching ? "ON " : "OFF", result.inserts_ok, result.inserts_failed,
        result.lookups_ok, result.lookups_failed, result.lookups_skipped,
        result.reclaims_ok, result.crashes, result.joins,
        static_cast<unsigned long long>(cache_hits));
  }
  std::printf("\nIdentical trace, different policies: the text file is the\n");
  std::printf("reproducible unit of comparison.\n");
  return 0;
}
