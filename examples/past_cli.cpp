// past_cli — command-line driver for PAST networks, simulated and real.
//
// Default mode builds a simulated network from flags, optionally replays a
// trace file (see src/workload/trace.h for the format) or generates a
// synthetic workload, and prints a summary:
//
//   $ ./examples/past_cli --nodes 100 --seed 7 --k 4 --ops 300
//   $ ./examples/past_cli --nodes 50 --trace /tmp/past-demo.trace
//   $ ./examples/past_cli --nodes 80 --cache none --ops 200
//
// `past_cli daemon` runs one real PAST node over the socket transport: it
// bootstraps (or joins an existing daemon with --join host:port) and serves
// insert/lookup/reclaim through a line-based TCP control port. `past_cli
// ctl` is the matching one-shot client:
//
//   $ ./examples/past_cli daemon --port 7001 --ctl-port 8001 --node-seed 1 &
//   $ ./examples/past_cli daemon --port 7002 --ctl-port 8002 --node-seed 2 \
//       --join 127.0.0.1:7001 &
//   $ ./examples/past_cli ctl 127.0.0.1:8001 insert report.pdf 100000 3
//   OK 5f1c... crc=8d2e55aa
//   $ ./examples/past_cli ctl 127.0.0.1:8002 lookup 5f1c...
//   OK size=100000 crc=8d2e55aa
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/crc32c.h"
#include "src/net/socket_transport.h"
#include "src/workload/replay.h"

using namespace past;

namespace {

struct CliOptions {
  int nodes = 50;
  uint64_t seed = 42;
  uint32_t k = 3;
  int ops = 200;
  std::string trace_path;
  std::string cache = "gds";  // gds | lru | none
  std::string state_dir;      // empty: in-memory stores
  bool help = false;
};

bool ParseArgs(int argc, char** argv, CliOptions* out) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      out->help = true;
    } else if (arg == "--nodes") {
      const char* v = next("--nodes");
      if (v == nullptr || (out->nodes = std::atoi(v)) <= 0) {
        return false;
      }
    } else if (arg == "--seed") {
      const char* v = next("--seed");
      if (v == nullptr) {
        return false;
      }
      out->seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--k") {
      const char* v = next("--k");
      if (v == nullptr || (out->k = static_cast<uint32_t>(std::atoi(v))) == 0) {
        return false;
      }
    } else if (arg == "--ops") {
      const char* v = next("--ops");
      if (v == nullptr || (out->ops = std::atoi(v)) <= 0) {
        return false;
      }
    } else if (arg == "--trace") {
      const char* v = next("--trace");
      if (v == nullptr) {
        return false;
      }
      out->trace_path = v;
    } else if (arg == "--state-dir") {
      const char* v = next("--state-dir");
      if (v == nullptr) {
        return false;
      }
      out->state_dir = v;
    } else if (arg == "--cache") {
      const char* v = next("--cache");
      if (v == nullptr) {
        return false;
      }
      out->cache = v;
      if (out->cache != "gds" && out->cache != "lru" && out->cache != "none") {
        std::fprintf(stderr, "--cache must be gds, lru or none\n");
        return false;
      }
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

void PrintUsage() {
  std::printf(
      "past_cli — run a simulated PAST network\n"
      "  --nodes N     network size (default 50)\n"
      "  --seed S      simulation seed (default 42)\n"
      "  --k K         replication factor for generated workloads (default 3)\n"
      "  --ops N       operations to generate when no trace is given (default 200)\n"
      "  --trace FILE  replay this trace file instead of generating one\n"
      "  --cache P     cache policy: gds | lru | none (default gds)\n"
      "  --state-dir D durable per-node stores under D; a rerun with the same\n"
      "                directory and seed recovers them from disk\n");
}

// --- real-cluster daemon --------------------------------------------------------

struct DaemonOptions {
  uint16_t port = 0;      // overlay UDP+TCP port (required)
  uint16_t ctl_port = 0;  // control protocol port (required)
  std::string join;       // host:port of a running daemon; empty = bootstrap
  std::string state_dir;
  uint64_t broker_seed = 7;  // must match across the cluster
  uint64_t node_seed = 1;    // must differ across the cluster
  uint64_t quota = 256u << 20;
  uint64_t storage = 256u << 20;
  uint32_t k = 3;
};

// Deterministic file contents for the ctl protocol: insert ships only
// (name, size) over the control connection, and integrity is checked
// end-to-end by comparing the CRC the inserting daemon reports against the
// CRC of the bytes another daemon gets back from lookup — bytes which
// crossed the real transport between daemons.
Bytes MakeCtlContent(const std::string& name, uint64_t size) {
  Bytes out(size);
  Rng rng(Crc32c(ByteSpan(reinterpret_cast<const uint8_t*>(name.data()),
                          name.size())) +
          size * 0x9e3779b97f4a7c15ULL);
  for (auto& b : out) {
    b = static_cast<uint8_t>(rng.NextU32());
  }
  return out;
}

// Line-based control server embedded in the transport's poll loop. One
// command per connection; the reply line closes it.
//
//   status                  -> OK active=<0|1> files=<n>
//   insert <name> <size> <k> -> OK <fileid-hex> crc=<hex>
//   lookup <fileid-hex>      -> OK size=<n> crc=<hex> [cache]
//   reclaim <fileid-hex>     -> OK reclaimed   (only on the inserting daemon)
//   quit                     -> OK bye, and the daemon exits
class CtlServer {
 public:
  CtlServer(SocketTransport* net, PastNode* node) : net_(net), node_(node) {}

  ~CtlServer() {
    for (auto& [fd, buf] : clients_) {
      (void)buf;
      net_->UnwatchFd(fd);
      ::close(fd);
    }
    if (listen_fd_ >= 0) {
      net_->UnwatchFd(listen_fd_);
      ::close(listen_fd_);
    }
  }

  bool Open(uint16_t port) {
    Result<int> fd = TcpListen("127.0.0.1", port, nullptr);
    if (!fd.ok()) {
      return false;
    }
    listen_fd_ = fd.value();
    net_->WatchFd(listen_fd_, POLLIN, [this](int, short) { Accept(); });
    return true;
  }

 private:
  void Accept() {
    for (;;) {
      int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) {
        return;
      }
      if (SetNonBlocking(fd) != StatusCode::kOk) {
        ::close(fd);
        continue;
      }
      clients_[fd];
      net_->WatchFd(fd, POLLIN, [this](int cfd, short) { Readable(cfd); });
    }
  }

  void Readable(int fd) {
    auto it = clients_.find(fd);
    if (it == clients_.end()) {
      return;
    }
    char buf[4096];
    for (;;) {
      ssize_t n = ::read(fd, buf, sizeof(buf));
      if (n > 0) {
        it->second.append(buf, static_cast<size_t>(n));
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        break;
      }
      if (n == 0 && it->second.find('\n') != std::string::npos) {
        break;  // client sent the command then shut down its write side
      }
      Drop(fd);
      return;
    }
    size_t eol = it->second.find('\n');
    if (eol == std::string::npos) {
      return;
    }
    std::string line = it->second.substr(0, eol);
    if (!line.empty() && line.back() == '\r') {
      line.pop_back();
    }
    net_->UnwatchFd(fd);  // command received; only the async reply remains
    Handle(fd, line);
  }

  // The command fd stays open (tracked in clients_) until its operation's
  // callback produces the reply.
  void Handle(int fd, const std::string& line) {
    std::istringstream in(line);
    std::string cmd;
    in >> cmd;
    if (cmd == "status") {
      Reply(fd, "OK active=" + std::to_string(node_->overlay()->active() ? 1 : 0) +
                    " files=" + std::to_string(node_->store().file_count()));
    } else if (cmd == "insert") {
      std::string name;
      uint64_t size = 0;
      uint32_t k = 0;
      in >> name >> size >> k;
      if (name.empty() || size == 0) {
        Reply(fd, "ERR usage: insert <name> <size> <k>");
        return;
      }
      Bytes content = MakeCtlContent(name, size);
      char crc[16];
      std::snprintf(crc, sizeof(crc), "%08x", Crc32c(content));
      std::string crc_text = crc;
      node_->Insert(name, std::move(content), k,
                    [this, fd, crc_text](Result<FileId> r) {
                      if (r.ok()) {
                        Reply(fd, "OK " + r.value().ToHex() + " crc=" + crc_text);
                      } else {
                        Reply(fd, std::string("ERR ") + StatusCodeName(r.status()));
                      }
                    });
    } else if (cmd == "lookup") {
      std::string hex;
      in >> hex;
      FileId id;
      if (!U160::FromHex(hex, &id)) {
        Reply(fd, "ERR bad fileid");
        return;
      }
      node_->Lookup(id, [this, fd](Result<PastNode::LookupOutcome> r) {
        if (!r.ok()) {
          Reply(fd, std::string("ERR ") + StatusCodeName(r.status()));
          return;
        }
        char crc[16];
        std::snprintf(crc, sizeof(crc), "%08x", Crc32c(r.value().content));
        Reply(fd, "OK size=" + std::to_string(r.value().content.size()) +
                      " crc=" + crc + (r.value().from_cache ? " cache" : ""));
      });
    } else if (cmd == "reclaim") {
      std::string hex;
      in >> hex;
      FileId id;
      if (!U160::FromHex(hex, &id)) {
        Reply(fd, "ERR bad fileid");
        return;
      }
      node_->Reclaim(id, [this, fd](StatusCode code) {
        Reply(fd, code == StatusCode::kOk
                      ? "OK reclaimed"
                      : std::string("ERR ") + StatusCodeName(code));
      });
    } else if (cmd == "quit") {
      Reply(fd, "OK bye");
      net_->Stop();
    } else {
      Reply(fd, "ERR unknown command");
    }
  }

  void Reply(int fd, const std::string& text) {
    auto it = clients_.find(fd);
    if (it == clients_.end()) {
      return;  // client vanished before the operation completed
    }
    // Replies are small; flip the fd to blocking so one write drains it.
    int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags >= 0) {
      (void)::fcntl(fd, F_SETFL, flags & ~O_NONBLOCK);
    }
    std::string line = text + "\n";
    size_t off = 0;
    while (off < line.size()) {
      ssize_t n = ::write(fd, line.data() + off, line.size() - off);
      if (n <= 0) {
        break;
      }
      off += static_cast<size_t>(n);
    }
    Drop(fd);
  }

  void Drop(int fd) {
    net_->UnwatchFd(fd);
    ::close(fd);
    clients_.erase(fd);
  }

  SocketTransport* net_;
  PastNode* node_;
  int listen_fd_ = -1;
  std::unordered_map<int, std::string> clients_;  // fd -> buffered input
};

bool ParseDaemonArgs(int argc, char** argv, DaemonOptions* out) {
  for (int i = 0; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    const char* v = nullptr;
    if (arg == "--port" && (v = next()) != nullptr) {
      out->port = static_cast<uint16_t>(std::atoi(v));
    } else if (arg == "--ctl-port" && (v = next()) != nullptr) {
      out->ctl_port = static_cast<uint16_t>(std::atoi(v));
    } else if (arg == "--join" && (v = next()) != nullptr) {
      out->join = v;
    } else if (arg == "--state-dir" && (v = next()) != nullptr) {
      out->state_dir = v;
    } else if (arg == "--broker-seed" && (v = next()) != nullptr) {
      out->broker_seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--node-seed" && (v = next()) != nullptr) {
      out->node_seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--quota" && (v = next()) != nullptr) {
      out->quota = std::strtoull(v, nullptr, 10);
    } else if (arg == "--storage" && (v = next()) != nullptr) {
      out->storage = std::strtoull(v, nullptr, 10);
    } else if (arg == "--k" && (v = next()) != nullptr) {
      out->k = static_cast<uint32_t>(std::atoi(v));
    } else {
      std::fprintf(stderr, "daemon: bad flag %s\n", arg.c_str());
      return false;
    }
  }
  if (out->port == 0 || out->ctl_port == 0) {
    std::fprintf(stderr, "daemon: --port and --ctl-port are required\n");
    return false;
  }
  return true;
}

int RunDaemon(int argc, char** argv) {
  DaemonOptions opt;
  if (!ParseDaemonArgs(argc, argv, &opt)) {
    return 2;
  }

  SocketTransportOptions topt;
  topt.port = opt.port;
  SocketTransport transport(topt);
  if (transport.Open() != StatusCode::kOk) {
    std::fprintf(stderr, "daemon: cannot bind port %u\n", opt.port);
    return 1;
  }

  // Every daemon rebuilds the same broker from the shared seed, then derives
  // its own card from its node seed — identical broker key everywhere (so
  // certificates verify across processes), distinct card per daemon.
  Broker broker(opt.broker_seed);
  Result<std::unique_ptr<Smartcard>> card =
      broker.IssueCardWithSeed(opt.node_seed, opt.quota, opt.storage);
  if (!card.ok()) {
    std::fprintf(stderr, "daemon: card issue failed\n");
    return 1;
  }
  NodeId id = card.value()->DerivedNodeId();

  PastryConfig pastry;
  pastry.keep_alive_period = 1 * kMicrosPerSecond;
  pastry.failure_timeout = 3 * kMicrosPerSecond;
  pastry.death_quarantine = 6 * kMicrosPerSecond;

  PastryNode overlay(&transport, id, pastry, opt.node_seed);

  PastConfig past;
  past.default_replication = opt.k;
  past.state_dir = opt.state_dir;
  past.request_timeout = 10 * kMicrosPerSecond;
  PastNode node(&overlay, std::move(card).value(), past, opt.node_seed ^ 0x5eed);

  if (opt.join.empty()) {
    overlay.Bootstrap();
  } else {
    Result<HostPort> hp = ParseHostPort(opt.join);
    if (!hp.ok()) {
      std::fprintf(stderr, "daemon: bad --join %s\n", opt.join.c_str());
      return 2;
    }
    // Single-host table: host_index 0 is 127.0.0.1, so the address is the
    // peer's port.
    overlay.Join(MakeSockAddr(0, hp.value().port));
  }

  CtlServer ctl(&transport, &node);
  if (!ctl.Open(opt.ctl_port)) {
    std::fprintf(stderr, "daemon: cannot bind ctl port %u\n", opt.ctl_port);
    return 1;
  }

  std::printf("past_daemon: id=%s port=%u ctl=%u %s\n", id.ToHex().c_str(),
              transport.port(), opt.ctl_port,
              opt.join.empty() ? "(bootstrap)" : opt.join.c_str());
  std::fflush(stdout);
  transport.Run();
  return 0;
}

// One-shot control client: connect, send the command line, print the reply.
int RunCtl(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: past_cli ctl <host:port> <command...>\n");
    return 2;
  }
  Result<HostPort> hp = ParseHostPort(argv[0]);
  if (!hp.ok()) {
    std::fprintf(stderr, "ctl: bad target %s\n", argv[0]);
    return 2;
  }
  std::string line;
  for (int i = 1; i < argc; ++i) {
    if (i > 1) {
      line += ' ';
    }
    line += argv[i];
  }
  line += '\n';

  Result<int> fd = TcpConnect(hp.value().host, hp.value().port);
  if (!fd.ok()) {
    std::fprintf(stderr, "ctl: connect failed\n");
    return 1;
  }
  pollfd pfd = {fd.value(), POLLOUT, 0};
  if (::poll(&pfd, 1, 5000) <= 0 || ConnectResult(fd.value()) != StatusCode::kOk) {
    std::fprintf(stderr, "ctl: connect failed\n");
    ::close(fd.value());
    return 1;
  }
  int flags = ::fcntl(fd.value(), F_GETFL, 0);
  if (flags >= 0) {
    (void)::fcntl(fd.value(), F_SETFL, flags & ~O_NONBLOCK);
  }
  size_t off = 0;
  while (off < line.size()) {
    ssize_t n = ::write(fd.value(), line.data() + off, line.size() - off);
    if (n <= 0) {
      std::fprintf(stderr, "ctl: write failed\n");
      ::close(fd.value());
      return 1;
    }
    off += static_cast<size_t>(n);
  }
  std::string reply;
  char buf[4096];
  for (;;) {
    ssize_t n = ::read(fd.value(), buf, sizeof(buf));
    if (n <= 0) {
      break;
    }
    reply.append(buf, static_cast<size_t>(n));
  }
  ::close(fd.value());
  std::fputs(reply.c_str(), stdout);
  return reply.rfind("OK", 0) == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "daemon") == 0) {
    return RunDaemon(argc - 2, argv + 2);
  }
  if (argc > 1 && std::strcmp(argv[1], "ctl") == 0) {
    return RunCtl(argc - 2, argv + 2);
  }
  CliOptions cli;
  if (!ParseArgs(argc, argv, &cli)) {
    PrintUsage();
    return 2;
  }
  if (cli.help) {
    PrintUsage();
    return 0;
  }

  PastNetworkOptions options;
  options.overlay.seed = cli.seed;
  options.broker.modulus_pool = 8;
  options.overlay.pastry.keep_alive_period = 1 * kMicrosPerSecond;
  options.overlay.pastry.failure_timeout = 3 * kMicrosPerSecond;
  options.overlay.pastry.death_quarantine = 6 * kMicrosPerSecond;
  options.past.default_replication = cli.k;
  options.past.cache_policy = cli.cache == "gds"   ? CachePolicy::kGreedyDualSize
                              : cli.cache == "lru" ? CachePolicy::kLru
                                                   : CachePolicy::kNone;
  options.past.cache_on_insert_path = options.past.cache_policy != CachePolicy::kNone;
  options.past.cache_push_on_lookup = options.past.cache_policy != CachePolicy::kNone;
  options.past.state_dir = cli.state_dir;

  PastNetwork net(options);
  net.Build(cli.nodes);
  std::printf("network: %d nodes, k=%u, cache=%s, seed=%llu\n", cli.nodes, cli.k,
              cli.cache.c_str(), static_cast<unsigned long long>(cli.seed));
  if (!cli.state_dir.empty()) {
    // Same seed => same node ids => same per-node state directories, so a
    // rerun reopens the previous run's logs and starts with its files.
    size_t recovered_files = 0, recovered_nodes = 0;
    for (size_t i = 0; i < net.size(); ++i) {
      const size_t n = net.node(i)->store().file_count();
      recovered_files += n;
      recovered_nodes += n > 0 ? 1 : 0;
    }
    std::printf("state: %s — recovered %zu replicas on %zu nodes\n",
                cli.state_dir.c_str(), recovered_files, recovered_nodes);
  }

  Trace trace;
  if (!cli.trace_path.empty()) {
    std::ifstream in(cli.trace_path);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", cli.trace_path.c_str());
      return 1;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    Result<Trace> parsed = Trace::Parse(buffer.str());
    if (!parsed.ok()) {
      std::fprintf(stderr, "trace parse error: %s\n", StatusCodeName(parsed.status()));
      return 1;
    }
    trace = std::move(parsed).value();
    std::printf("trace: %s (%zu ops, %zu inserts)\n", cli.trace_path.c_str(),
                trace.size(), trace.InsertCount());
  } else {
    Rng rng(cli.seed ^ 0xbeef);
    TraceWorkloadOptions workload;
    workload.operations = static_cast<size_t>(cli.ops);
    workload.clients = cli.nodes;
    workload.replication = cli.k;
    workload.sizes.max_size = 64 << 10;
    trace = GenerateTrace(workload, &rng);
    std::printf("workload: %zu generated ops (%zu inserts)\n", trace.size(),
                trace.InsertCount());
  }

  ReplayResult result = ReplayTrace(trace, &net);

  uint64_t cache_hits = 0, cache_entries = 0;
  for (size_t i = 0; i < net.size(); ++i) {
    cache_hits += net.node(i)->file_cache().stats().hits;
    cache_entries += net.node(i)->file_cache().entry_count();
  }
  auto summary = net.Summary();
  const auto& nstats = net.overlay().network().stats();
  std::printf(
      "\nresults:\n"
      "  inserts      %d ok, %d failed\n"
      "  lookups      %d ok, %d failed, %d skipped\n"
      "  reclaims     %d ok\n"
      "  churn        %d crashes, %d joins\n"
      "  storage      %.1f%% utilization, %zu files, %zu pointers\n"
      "  caches       %llu entries, %llu hits\n"
      "  network      %llu messages, %llu bytes, sim time %.1f s\n",
      result.inserts_ok, result.inserts_failed, result.lookups_ok,
      result.lookups_failed, result.lookups_skipped, result.reclaims_ok,
      result.crashes, result.joins, 100.0 * summary.utilization(), summary.files,
      summary.pointers, static_cast<unsigned long long>(cache_entries),
      static_cast<unsigned long long>(cache_hits),
      static_cast<unsigned long long>(nstats.sent),
      static_cast<unsigned long long>(nstats.bytes_sent),
      static_cast<double>(net.queue().Now()) / kMicrosPerSecond);
  return result.lookups_failed == 0 ? 0 : 1;
}
