// past_cli — command-line driver for simulated PAST networks.
//
// Builds a network from flags, optionally replays a trace file (see
// src/workload/trace.h for the format) or generates a synthetic workload,
// and prints a summary. Useful for quick what-if runs without writing code:
//
//   $ ./examples/past_cli --nodes 100 --seed 7 --k 4 --ops 300
//   $ ./examples/past_cli --nodes 50 --trace /tmp/past-demo.trace
//   $ ./examples/past_cli --nodes 80 --cache none --ops 200
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "src/workload/replay.h"

using namespace past;

namespace {

struct CliOptions {
  int nodes = 50;
  uint64_t seed = 42;
  uint32_t k = 3;
  int ops = 200;
  std::string trace_path;
  std::string cache = "gds";  // gds | lru | none
  std::string state_dir;      // empty: in-memory stores
  bool help = false;
};

bool ParseArgs(int argc, char** argv, CliOptions* out) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      out->help = true;
    } else if (arg == "--nodes") {
      const char* v = next("--nodes");
      if (v == nullptr || (out->nodes = std::atoi(v)) <= 0) {
        return false;
      }
    } else if (arg == "--seed") {
      const char* v = next("--seed");
      if (v == nullptr) {
        return false;
      }
      out->seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--k") {
      const char* v = next("--k");
      if (v == nullptr || (out->k = static_cast<uint32_t>(std::atoi(v))) == 0) {
        return false;
      }
    } else if (arg == "--ops") {
      const char* v = next("--ops");
      if (v == nullptr || (out->ops = std::atoi(v)) <= 0) {
        return false;
      }
    } else if (arg == "--trace") {
      const char* v = next("--trace");
      if (v == nullptr) {
        return false;
      }
      out->trace_path = v;
    } else if (arg == "--state-dir") {
      const char* v = next("--state-dir");
      if (v == nullptr) {
        return false;
      }
      out->state_dir = v;
    } else if (arg == "--cache") {
      const char* v = next("--cache");
      if (v == nullptr) {
        return false;
      }
      out->cache = v;
      if (out->cache != "gds" && out->cache != "lru" && out->cache != "none") {
        std::fprintf(stderr, "--cache must be gds, lru or none\n");
        return false;
      }
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

void PrintUsage() {
  std::printf(
      "past_cli — run a simulated PAST network\n"
      "  --nodes N     network size (default 50)\n"
      "  --seed S      simulation seed (default 42)\n"
      "  --k K         replication factor for generated workloads (default 3)\n"
      "  --ops N       operations to generate when no trace is given (default 200)\n"
      "  --trace FILE  replay this trace file instead of generating one\n"
      "  --cache P     cache policy: gds | lru | none (default gds)\n"
      "  --state-dir D durable per-node stores under D; a rerun with the same\n"
      "                directory and seed recovers them from disk\n");
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  if (!ParseArgs(argc, argv, &cli)) {
    PrintUsage();
    return 2;
  }
  if (cli.help) {
    PrintUsage();
    return 0;
  }

  PastNetworkOptions options;
  options.overlay.seed = cli.seed;
  options.broker.modulus_pool = 8;
  options.overlay.pastry.keep_alive_period = 1 * kMicrosPerSecond;
  options.overlay.pastry.failure_timeout = 3 * kMicrosPerSecond;
  options.overlay.pastry.death_quarantine = 6 * kMicrosPerSecond;
  options.past.default_replication = cli.k;
  options.past.cache_policy = cli.cache == "gds"   ? CachePolicy::kGreedyDualSize
                              : cli.cache == "lru" ? CachePolicy::kLru
                                                   : CachePolicy::kNone;
  options.past.cache_on_insert_path = options.past.cache_policy != CachePolicy::kNone;
  options.past.cache_push_on_lookup = options.past.cache_policy != CachePolicy::kNone;
  options.past.state_dir = cli.state_dir;

  PastNetwork net(options);
  net.Build(cli.nodes);
  std::printf("network: %d nodes, k=%u, cache=%s, seed=%llu\n", cli.nodes, cli.k,
              cli.cache.c_str(), static_cast<unsigned long long>(cli.seed));
  if (!cli.state_dir.empty()) {
    // Same seed => same node ids => same per-node state directories, so a
    // rerun reopens the previous run's logs and starts with its files.
    size_t recovered_files = 0, recovered_nodes = 0;
    for (size_t i = 0; i < net.size(); ++i) {
      const size_t n = net.node(i)->store().file_count();
      recovered_files += n;
      recovered_nodes += n > 0 ? 1 : 0;
    }
    std::printf("state: %s — recovered %zu replicas on %zu nodes\n",
                cli.state_dir.c_str(), recovered_files, recovered_nodes);
  }

  Trace trace;
  if (!cli.trace_path.empty()) {
    std::ifstream in(cli.trace_path);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", cli.trace_path.c_str());
      return 1;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    Result<Trace> parsed = Trace::Parse(buffer.str());
    if (!parsed.ok()) {
      std::fprintf(stderr, "trace parse error: %s\n", StatusCodeName(parsed.status()));
      return 1;
    }
    trace = std::move(parsed).value();
    std::printf("trace: %s (%zu ops, %zu inserts)\n", cli.trace_path.c_str(),
                trace.size(), trace.InsertCount());
  } else {
    Rng rng(cli.seed ^ 0xbeef);
    TraceWorkloadOptions workload;
    workload.operations = static_cast<size_t>(cli.ops);
    workload.clients = cli.nodes;
    workload.replication = cli.k;
    workload.sizes.max_size = 64 << 10;
    trace = GenerateTrace(workload, &rng);
    std::printf("workload: %zu generated ops (%zu inserts)\n", trace.size(),
                trace.InsertCount());
  }

  ReplayResult result = ReplayTrace(trace, &net);

  uint64_t cache_hits = 0, cache_entries = 0;
  for (size_t i = 0; i < net.size(); ++i) {
    cache_hits += net.node(i)->file_cache().stats().hits;
    cache_entries += net.node(i)->file_cache().entry_count();
  }
  auto summary = net.Summary();
  const auto& nstats = net.overlay().network().stats();
  std::printf(
      "\nresults:\n"
      "  inserts      %d ok, %d failed\n"
      "  lookups      %d ok, %d failed, %d skipped\n"
      "  reclaims     %d ok\n"
      "  churn        %d crashes, %d joins\n"
      "  storage      %.1f%% utilization, %zu files, %zu pointers\n"
      "  caches       %llu entries, %llu hits\n"
      "  network      %llu messages, %llu bytes, sim time %.1f s\n",
      result.inserts_ok, result.inserts_failed, result.lookups_ok,
      result.lookups_failed, result.lookups_skipped, result.reclaims_ok,
      result.crashes, result.joins, 100.0 * summary.utilization(), summary.files,
      summary.pointers, static_cast<unsigned long long>(cache_entries),
      static_cast<unsigned long long>(cache_hits),
      static_cast<unsigned long long>(nstats.sent),
      static_cast<unsigned long long>(nstats.bytes_sent),
      static_cast<double>(net.queue().Now()) / kMicrosPerSecond);
  return result.lookups_failed == 0 ? 0 : 1;
}
