// Quickstart — the smallest complete PAST session.
//
// Builds a simulated PAST network (broker, smartcards, Pastry overlay,
// storage nodes), then walks through the full client API: insert a file,
// look it up from another node, inspect the quota, and reclaim the storage.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "src/storage/past_network.h"

using namespace past;

int main() {
  // 1. Configure and build a 50-node network. Every node holds a smartcard
  //    issued by the broker, contributes 64 MiB of storage, and acts as a
  //    client access point.
  PastNetworkOptions options;
  options.overlay.seed = 2026;
  options.broker.modulus_pool = 4;  // fast card issuance for demos
  PastNetwork net(options);
  net.Build(50);
  std::printf("built a PAST network: %zu nodes, broker issued %zu smartcards\n",
              net.size(), net.broker().cards_issued());

  // 2. Insert a file. The client's smartcard issues a signed file
  //    certificate and debits size * k against the quota; Pastry routes the
  //    insert to the k nodes whose nodeIds are closest to the fileId.
  PastNode* alice = net.node(7);
  Bytes content = ToBytes("Hello, persistent peer-to-peer storage utility!");
  Result<FileId> inserted = net.InsertSync(alice, "hello.txt", content, /*k=*/5);
  if (!inserted.ok()) {
    std::printf("insert failed: %s\n", StatusCodeName(inserted.status()));
    return 1;
  }
  FileId file_id = inserted.value();
  std::printf("inserted 'hello.txt' as fileId %s\n", file_id.ToHex().c_str());
  std::printf("  replicas stored: %d (k=5)\n", net.CountReplicas(file_id));
  std::printf("  quota used: %llu bytes (= %zu bytes x 5 replicas)\n",
              static_cast<unsigned long long>(alice->card().quota_used()),
              content.size());

  // 3. Look the file up from a different node. The reply carries the
  //    owner-signed certificate; the client verifies the content hash.
  PastNode* bob = net.node(33);
  auto looked = net.LookupSync(bob, file_id);
  if (!looked.ok()) {
    std::printf("lookup failed: %s\n", StatusCodeName(looked.status()));
    return 1;
  }
  std::printf("lookup from node %u: %zu bytes, authentic=%s, replier=%s\n",
              bob->overlay()->addr(), looked.value().content.size(),
              looked.value().cert.MatchesContent(looked.value().content) ? "yes"
                                                                         : "NO",
              looked.value().replier.ToString().c_str());
  std::printf("  content: \"%.*s\"\n", static_cast<int>(looked.value().content.size()),
              reinterpret_cast<const char*>(looked.value().content.data()));

  // 4. Reclaim. Only the owner's smartcard can authorize this; the reclaim
  //    receipts credit the quota back.
  StatusCode reclaimed = net.ReclaimSync(alice, file_id);
  std::printf("reclaim: %s, quota used now %llu bytes\n", StatusCodeName(reclaimed),
              static_cast<unsigned long long>(alice->card().quota_used()));
  std::printf("  replicas remaining: %d (weak delete semantics: storage freed)\n",
              net.CountReplicas(file_id));
  return 0;
}
