// Content distribution — popular-file caching.
//
// "A global storage utility facilitates the sharing of storage and
// bandwidth, thus permitting a group of nodes to jointly store or publish
// content that exceeds the capacity of any individual node" and caching
// "achieves query load balancing, high throughput for popular files, and
// reduces fetch distance and network traffic."
//
// A publisher inserts one popular file; hundreds of clients fetch it. The
// demo shows how cached copies spread through the overlay, how the query
// load leaves the k replica holders, and how the average fetch distance
// falls as caches warm up.
//
//   $ ./examples/content_distribution
#include <cstdio>

#include "src/storage/past_network.h"

using namespace past;

int main() {
  PastNetworkOptions options;
  options.overlay.seed = 505;
  options.broker.modulus_pool = 4;
  options.overlay.pastry.keep_alive_period = 0;  // no churn in this demo
  options.past.cache_policy = CachePolicy::kGreedyDualSize;
  PastNetwork net(options);
  net.Build(300);

  PastNode* publisher = net.node(0);
  Bytes video = net.rng().RandomBytes(32 * 1024);
  auto inserted = net.InsertSync(publisher, "launch-video.mp4", video, 3);
  if (!inserted.ok()) {
    std::printf("publish failed: %s\n", StatusCodeName(inserted.status()));
    return 1;
  }
  FileId id = inserted.value();
  std::printf("published 'launch-video.mp4' (%zu KiB, k=3) as %s...\n",
              video.size() / 1024, id.ToHex().substr(0, 12).c_str());

  // Fetch in batches and watch the cache footprint grow.
  std::printf("\n%8s %12s %14s %16s %18s\n", "fetches", "cache hits",
              "cached copies", "avg fetch dist", "served by top node");
  Rng rng(9);
  int total_fetches = 0;
  for (int batch = 0; batch < 5; ++batch) {
    int hits = 0;
    double dist = 0;
    int count = 0;
    std::unordered_map<NodeAddr, int> served_by;
    for (int i = 0; i < 100; ++i) {
      PastNode* client = net.node(1 + rng.UniformU64(net.size() - 1));
      bool done = false;
      bool from_cache = false;
      NodeDescriptor replier;
      client->Lookup(id, [&](Result<PastNode::LookupOutcome> r) {
        done = true;
        if (r.ok()) {
          from_cache = r.value().from_cache;
          replier = r.value().replier;
        }
      });
      EventQueue& q = net.queue();
      SimTime deadline = q.Now() + 20 * kMicrosPerSecond;
      while (!done && q.Now() < deadline) {
        q.RunUntil(q.Now() + 100 * kMicrosPerMilli);
      }
      if (!done || !replier.valid()) {
        continue;
      }
      ++total_fetches;
      ++count;
      hits += from_cache ? 1 : 0;
      served_by[replier.addr]++;
      dist += net.overlay().network().Proximity(client->overlay()->addr(),
                                                replier.addr);
    }
    size_t cached_copies = 0;
    for (size_t i = 0; i < net.size(); ++i) {
      if (net.node(i)->file_cache().Contains(id)) {
        ++cached_copies;
      }
    }
    int top = 0;
    for (const auto& [addr, c] : served_by) {
      top = std::max(top, c);
    }
    std::printf("%8d %11.0f%% %14zu %16.1f %17.0f%%\n", total_fetches,
                100.0 * hits / count, cached_copies, dist / count,
                100.0 * top / count);
  }

  std::printf("\nAs caches warm, most requests are served by cached copies\n");
  std::printf("near the clients instead of the 3 replica holders.\n");
  return 0;
}
