// Broker marketplace — quotas, supply/demand balance and audits.
//
// "Organizations called brokers may trade storage and issue smartcards to
// users, which control how much storage must be contributed and/or may be
// used. ... there must be a balance between the sum of all client quotas
// (potential demand) and the total available storage in the system (supply)."
//
// This demo runs a broker with balance enforcement: storage-heavy "provider"
// nodes underwrite the quotas of storage-less "consumer" users, a consumer
// exhausts its quota and recovers it by reclaiming, and a random audit
// catches a node that sells storage it does not provide.
//
//   $ ./examples/broker_marketplace
#include <cstdio>

#include "src/storage/past_network.h"

using namespace past;

int main() {
  PastNetworkOptions options;
  options.overlay.seed = 31415;
  options.broker.modulus_pool = 4;
  options.broker.enforce_balance = true;
  options.broker.max_demand_supply_ratio = 1.0;
  options.overlay.pastry.keep_alive_period = 0;
  PastNetwork net(options);

  // Providers: contribute 1 MiB each, consume nothing.
  const uint64_t kMiB = 1 << 20;
  for (int i = 0; i < 20; ++i) {
    if (net.AddNode(/*capacity=*/kMiB, /*quota=*/0) == nullptr) {
      std::printf("broker refused provider %d\n", i);
    }
  }
  std::printf("20 providers joined: supply %llu KiB, demand %llu KiB\n",
              static_cast<unsigned long long>(net.broker().total_supply() / 1024),
              static_cast<unsigned long long>(net.broker().total_demand() / 1024));

  // Consumers: pure clients (no contributed storage) buying 2 MiB quotas.
  int consumers = 0;
  while (true) {
    PastNode* node = net.AddNode(/*capacity=*/0, /*quota=*/2 * kMiB);
    if (node == nullptr) {
      break;  // the broker refuses quota beyond the available supply
    }
    ++consumers;
  }
  std::printf("broker sold %d consumer cards of 2 MiB before refusing\n", consumers);
  std::printf("  (supply %llu KiB >= demand %llu KiB holds)\n",
              static_cast<unsigned long long>(net.broker().total_supply() / 1024),
              static_cast<unsigned long long>(net.broker().total_demand() / 1024));

  // A consumer uses its quota...
  PastNode* consumer = net.node(20);
  int stored = 0;
  std::vector<FileId> owned;
  while (true) {
    auto r = net.InsertSyntheticSync(
        consumer, "doc-" + std::to_string(stored), 64 * 1024, 2);
    if (!r.ok()) {
      std::printf("insert #%d refused: %s (quota used %llu of %llu KiB)\n",
                  stored + 1, StatusCodeName(r.status()),
                  static_cast<unsigned long long>(consumer->card().quota_used() / 1024),
                  static_cast<unsigned long long>(consumer->card().usage_quota() / 1024));
      break;
    }
    owned.push_back(r.value());
    ++stored;
  }
  std::printf("consumer stored %d files of 64 KiB x2 replicas\n", stored);

  // ...and frees some of it by reclaiming.
  IgnoreStatus(net.ReclaimSync(consumer, owned.front()));  // demo: quota delta printed below
  uint64_t used_after_reclaim = consumer->card().quota_used();
  bool extra_ok = net.InsertSyntheticSync(consumer, "extra", 64 * 1024, 2).ok();
  std::printf("after one reclaim: quota used %llu KiB -> a new insert %s\n",
              static_cast<unsigned long long>(used_after_reclaim / 1024),
              extra_ok ? "succeeds" : "fails");

  // Random audit: challenge two replica holders of a file to prove
  // possession. Honest providers pass.
  auto audited = net.InsertSync(consumer, "audited.bin", Bytes(4096, 0x42), 2);
  if (audited.ok()) {
    const FileCertificate* cert = consumer->OwnedFileCert(audited.value());
    int passed = 0, challenged = 0;
    for (size_t i = 0; i < net.size(); ++i) {
      if (net.node(i)->store().Has(audited.value())) {
        ++challenged;
        passed += net.AuditSync(consumer, net.node(i)->overlay()->addr(),
                                audited.value(), *cert)
                      ? 1
                      : 0;
      }
    }
    std::printf("audit of %d replica holders: %d passed\n", challenged, passed);
  }
  std::printf("\nThe broker never touched a file: it only certified cards and\n");
  std::printf("kept potential demand within the contributed supply.\n");
  return 0;
}
