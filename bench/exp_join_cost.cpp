// E3 — Cost of node arrival.
//
// HotOS text: "after a node failure or the arrival of a new node, the
// invariants in all affected routing tables can be restored by exchanging
// O(log_2b N) messages".
#include "bench/exp_util.h"

int main(int argc, char** argv) {
  using namespace past;
  ExpArgs args = ExpArgs::Parse(argc, argv);
  ExpJson json(args, "join_cost");
  PrintHeader("E3: messages exchanged per node join vs N",
              "join restores invariants with O(log_16 N) messages");

  std::printf("%8s %14s %14s %16s\n", "N", "msgs/join", "log16 N",
              "msgs / log16 N");
  const std::vector<int> sizes =
      args.smoke ? std::vector<int>{128, 256} : std::vector<int>{128, 512, 2048, 8192};

  struct TrialResult {
    uint64_t per_join = 0;
    JsonValue metrics;
  };

  auto run = [&](size_t index) -> TrialResult {
    const int n = sizes[index];
    ExpOverlay net(n, 4242);
    // Average over a batch of joins at this size.
    const int joins = args.smoke ? 5 : 20;
    uint64_t before = net.overlay->network().stats().sent;
    for (int j = 0; j < joins; ++j) {
      net.overlay->AddNode();
    }
    TrialResult r;
    r.per_join =
        (net.overlay->network().stats().sent - before) / static_cast<uint64_t>(joins);
    r.metrics = net.overlay->network().metrics().ToJson();
    return r;
  };
  auto commit = [&](size_t index, TrialResult& r) {
    const int n = sizes[index];
    std::printf("%8d %14llu %14.2f %16.1f\n", n,
                static_cast<unsigned long long>(r.per_join), Log16(n),
                static_cast<double>(r.per_join) / Log16(n));

    JsonValue row = JsonValue::Object();
    row.Set("n", n);
    row.Set("msgs_per_join", r.per_join);
    row.Set("msgs_per_log16n", static_cast<double>(r.per_join) / Log16(n));
    json.AddRow("join_cost_vs_n", std::move(row));
    json.SetMetricsJson(std::move(r.metrics));
  };

  TrialOptions trial_opts;
  trial_opts.threads = args.threads;
  std::vector<double> costs(sizes.begin(), sizes.end());
  trial_opts.work_order = LargestFirstOrder(costs);
  RunTrials(trial_opts, sizes.size(), run, commit);

  std::printf("\nThe msgs/log16N column should stay roughly constant: join\n");
  std::printf("traffic = rows from each of ~log16 N path hops + leaf set +\n");
  std::printf("neighborhood handover + announcements to every state entry.\n");
  return json.Finish() ? 0 : 1;
}
