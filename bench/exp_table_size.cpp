// E2 — Per-node state size vs. network size.
//
// HotOS text: "The tables required in each PAST node have only
// (2^b - 1) * ceil(log_2b N) + 2l entries". Populated routing-table rows
// should track log_16 N.
#include "bench/exp_util.h"

int main(int argc, char** argv) {
  using namespace past;
  ExpArgs args = ExpArgs::Parse(argc, argv);
  ExpJson json(args, "table_size");
  PrintHeader("E2: per-node state vs N (b=4, l=32, |M|=32)",
              "state <= (2^b-1)*ceil(log_16 N) + 2l entries; rows ~ log_16 N");

  PastryConfig config;
  std::printf("%8s %12s %12s %12s %10s %10s %12s %12s\n", "N", "avg RT",
              "max RT", "RT bound", "avg rows", "log16 N", "leaf+nb",
              "bytes/node");
  const std::vector<int> sizes =
      args.smoke ? std::vector<int>{128, 256} : std::vector<int>{256, 1024, 4096, 10000};

  struct TrialResult {
    double rt_sum = 0, rows_sum = 0, leaf_nb_sum = 0;
    size_t rt_max = 0;
    double mem_bytes_per_node = 0;
    JsonValue metrics;
  };

  auto run = [&](size_t index) -> TrialResult {
    const int n = sizes[index];
    ExpOverlay net(n, 100 + static_cast<uint64_t>(n));
    TrialResult r;
    for (size_t i = 0; i < net.overlay->size(); ++i) {
      PastryNode* node = net.overlay->node(i);
      r.rt_sum += static_cast<double>(node->routing_table().EntryCount());
      r.rt_max = std::max(r.rt_max, node->routing_table().EntryCount());
      r.rows_sum += node->routing_table().PopulatedRows();
      r.leaf_nb_sum += static_cast<double>(node->leaf_set().size() +
                                           node->neighborhood_set().size());
    }
    net.overlay->RecordMemoryMetrics();
    r.mem_bytes_per_node =
        net.overlay->network().metrics().FindGauge("sim.mem.bytes_per_node")->value();
    r.metrics = net.overlay->network().metrics().ToJson();
    return r;
  };
  auto commit = [&](size_t index, TrialResult& r) {
    const int n = sizes[index];
    double bound = (config.cols() - 1) * std::ceil(Log16(n));
    std::printf("%8d %12.1f %12zu %12.0f %10.2f %10.2f %12.1f %12.0f\n", n,
                r.rt_sum / static_cast<double>(n), r.rt_max, bound,
                r.rows_sum / static_cast<double>(n), Log16(n),
                r.leaf_nb_sum / static_cast<double>(n), r.mem_bytes_per_node);

    JsonValue row = JsonValue::Object();
    row.Set("n", n);
    row.Set("avg_rt_entries", r.rt_sum / static_cast<double>(n));
    row.Set("max_rt_entries", static_cast<uint64_t>(r.rt_max));
    row.Set("rt_bound", bound);
    row.Set("avg_populated_rows", r.rows_sum / static_cast<double>(n));
    row.Set("avg_leaf_plus_neighborhood", r.leaf_nb_sum / static_cast<double>(n));
    row.Set("mem_bytes_per_node", r.mem_bytes_per_node);
    json.AddRow("state_vs_n", std::move(row));
    json.SetMetricsJson(std::move(r.metrics));
  };

  TrialOptions trial_opts;
  trial_opts.threads = args.threads;
  std::vector<double> costs(sizes.begin(), sizes.end());
  trial_opts.work_order = LargestFirstOrder(costs);
  RunTrials(trial_opts, sizes.size(), run, commit);

  std::printf("\nTotal state bound incl. leaf set: (2^b-1)*ceil(log_16 N) + 2l\n");
  std::printf("e.g. N=10000: %.0f + %d = %.0f entries\n",
              15 * std::ceil(Log16(10000)), 2 * config.leaf_set_size,
              15 * std::ceil(Log16(10000)) + 2 * config.leaf_set_size);
  return json.Finish() ? 0 : 1;
}
