// E16 — Simulation scale: compact overlay state and timer-wheel maintenance.
//
// HotOS text: PAST is meant as "a large-scale peer-to-peer storage utility"
// with "many thousands" of nodes; the evaluation methodology caps out where
// per-node state and per-timer scheduling costs do. This experiment measures
// both at N far beyond the other experiments: overlays are constructed from
// global knowledge (Overlay::BuildFast), per-node memory is accounted
// exactly (sim.mem.bytes_per_node), and keep-alive maintenance runs through
// the batched timer wheel.
//
// Phase A (routing/state, keep-alive off): build N in {10k, 100k}, route
// random lookups, and assert the paper's routing contract end to end —
// every lookup delivered at the globally closest node in < ceil(log_16 N)
// average hops. Rows record build/lookup wall-clock and bytes per node.
//
// Phase B (maintenance, keep-alive on): N=10k with keep_alive_quantum=100ms
// so tick deadlines coalesce into shared wheel buckets; the row records the
// event and message volume of a maintenance window plus wheel occupancy.
//
// The path to 1M nodes is documented in EXPERIMENTS.md (E16): phase A is
// linear in N in both bytes and build time, so the 100k row's bytes_per_node
// times 1e6 bounds the footprint; run with --smoke off and sizes overridden
// in source when a machine with that much memory is available.
//
// Exits non-zero if any lookup is misdelivered, the hop bound is violated,
// or bytes/node exceeds the documented budget (kBytesPerNodeBudget).
#include <chrono>

#include "bench/exp_util.h"

namespace {

// Gate budget asserted here and in tools/check.sh scale: compact state must
// keep a full Pastry node (routing table + leaf set + neighborhood set +
// liveness bookkeeping + endpoint + queue/wheel amortization) under 4 KiB.
constexpr double kBytesPerNodeBudget = 4096.0;

// The maintenance phase runs at small N with keep-alives on, so per-node
// liveness timestamps (~|L|+|M| map entries) and the event-queue slab sized
// by the keep-alive burst amortize worse than in the lookup rows; it gets
// a separate budget rather than diluting the scale-row one.
constexpr double kMaintBytesPerNodeBudget = 8192.0;

double WallSeconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace past;
  ExpArgs args = ExpArgs::Parse(argc, argv);
  ExpJson json(args, "scale");
  PrintHeader("E16: simulation scale (compact state + timer wheel)",
              "bytes/node stays flat as N grows; hops < ceil(log_16 N) at 100k");

  // 100k runs in both modes — it is the acceptance point for the scale gate;
  // smoke only trims the lookup count.
  const std::vector<int> sizes = {10000, 100000};
  const int lookups_per_size = args.smoke ? 200 : 2000;
  const int maint_n = args.smoke ? 2000 : 10000;
  const SimTime maint_window =
      (args.smoke ? 3 : 10) * kMicrosPerSecond;  // simulated

  struct TrialResult {
    int n = 0;
    int lookups = 0;
    double build_s = 0;
    double lookup_s = 0;
    double total_hops = 0;
    int max_hops = 0;
    int correct = 0;
    double bytes_per_node = 0;
    double total_bytes = 0;
    JsonValue metrics;
  };

  bool failed = false;

  auto run = [&](size_t index) -> TrialResult {
    TrialResult r;
    r.n = sizes[index];
    OverlayOptions opts;
    opts.seed = 1600 + static_cast<uint64_t>(r.n);
    opts.pastry.keep_alive_period = 0;
    opts.network.timer_wheel_granularity = args.wheel_granularity;
    opts.network.expected_endpoints = static_cast<size_t>(r.n);
    Overlay overlay(opts);

    auto t0 = std::chrono::steady_clock::now();
    overlay.BuildFast(r.n);
    r.build_s = WallSeconds(t0);

    ExpApp app;
    for (size_t i = 0; i < overlay.size(); ++i) {
      overlay.node(i)->SetApp(&app);
    }

    r.lookups = lookups_per_size;
    t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < r.lookups; ++i) {
      U128 key = overlay.RandomKey();
      PastryNode* expected = overlay.GloballyClosestLiveNode(key);
      PastryNode* src = overlay.RandomLiveNode();
      app.delivered.clear();
      src->Route(key, 1, {});
      overlay.RunAll();
      if (app.delivered.empty()) {
        continue;
      }
      const DeliverContext& ctx = app.delivered.back();
      r.total_hops += ctx.hops;
      r.max_hops = std::max(r.max_hops, static_cast<int>(ctx.hops));
      if (overlay.node(ctx.path.back())->id() == expected->id()) {
        ++r.correct;
      }
    }
    r.lookup_s = WallSeconds(t0);

    overlay.RecordMemoryMetrics();
    const MetricsRegistry& m = overlay.network().metrics();
    r.bytes_per_node = m.FindGauge("sim.mem.bytes_per_node")->value();
    r.total_bytes = m.FindGauge("sim.mem.total_bytes")->value();
    if (index + 1 == sizes.size()) {
      r.metrics = m.ToJson();
    }
    return r;
  };

  auto commit = [&](size_t index, TrialResult& r) {
    if (index == 0) {
      std::printf("%8s %9s %9s %9s %8s %8s %8s %11s\n", "N", "build_s",
                  "lookup_s", "avg hops", "max", "bound", "correct",
                  "bytes/node");
    }
    const double bound = std::ceil(Log16(r.n));
    const double avg_hops = r.total_hops / r.lookups;
    const double correct_frac = static_cast<double>(r.correct) / r.lookups;
    std::printf("%8d %9.2f %9.2f %9.2f %8d %8.0f %7.1f%% %11.0f\n", r.n,
                r.build_s, r.lookup_s, avg_hops, r.max_hops, bound,
                100.0 * correct_frac, r.bytes_per_node);
    if (correct_frac < 1.0) {
      std::fprintf(stderr, "FAIL: N=%d delivered %d/%d lookups at the closest node\n",
                   r.n, r.correct, r.lookups);
      failed = true;
    }
    if (avg_hops >= bound) {
      std::fprintf(stderr, "FAIL: N=%d avg hops %.2f >= ceil(log_16 N) = %.0f\n",
                   r.n, avg_hops, bound);
      failed = true;
    }
    if (r.bytes_per_node > kBytesPerNodeBudget) {
      std::fprintf(stderr, "FAIL: N=%d bytes/node %.0f over budget %.0f\n", r.n,
                   r.bytes_per_node, kBytesPerNodeBudget);
      failed = true;
    }
    JsonValue row = JsonValue::Object();
    row.Set("n", r.n);
    row.Set("build_wall_s", r.build_s);
    row.Set("lookup_wall_s", r.lookup_s);
    row.Set("lookups", r.lookups);
    row.Set("avg_hops", avg_hops);
    row.Set("max_hops", r.max_hops);
    row.Set("bound", bound);
    row.Set("correct_frac", correct_frac);
    row.Set("bytes_per_node", r.bytes_per_node);
    row.Set("total_bytes", r.total_bytes);
    json.AddRow("scale_vs_n", std::move(row));
    if (index + 1 == sizes.size()) {
      json.SetMetricsJson(std::move(r.metrics));
    }
  };

  TrialOptions trial_opts;
  trial_opts.threads = args.threads;
  std::vector<double> costs(sizes.begin(), sizes.end());
  trial_opts.work_order = LargestFirstOrder(costs);
  RunTrials(trial_opts, sizes.size(), run, commit);

  // Phase B: maintenance through the wheel. Quantized tick deadlines land
  // many nodes in the same bucket, so armed events stay far below the timer
  // count; byte-identical behaviour across granularities is covered by the
  // scale determinism ctest, this row measures cost.
  {
    OverlayOptions opts;
    opts.seed = 1601;
    opts.pastry.keep_alive_period = 1 * kMicrosPerSecond;
    opts.pastry.keep_alive_quantum = 100 * kMicrosPerMilli;
    opts.pastry.failure_timeout = 4 * kMicrosPerSecond;
    opts.network.timer_wheel_granularity = args.wheel_granularity;
    opts.network.expected_endpoints = static_cast<size_t>(maint_n);
    Overlay overlay(opts);
    auto t0 = std::chrono::steady_clock::now();
    overlay.BuildFast(maint_n);
    const double build_s = WallSeconds(t0);

    TimerWheel* wheel = overlay.network().wheel();
    const size_t timers_pending = wheel->PendingCount();
    const size_t armed_before = wheel->ArmedBuckets();
    const uint64_t sent_before =
        overlay.network().metrics().FindCounter("pastry.maintenance_msgs_sent") != nullptr
            ? overlay.network().metrics().FindCounter("pastry.maintenance_msgs_sent")->value()
            : 0;
    t0 = std::chrono::steady_clock::now();
    overlay.Run(maint_window);
    const double run_s = WallSeconds(t0);
    const uint64_t maint_msgs =
        overlay.network().metrics().FindCounter("pastry.maintenance_msgs_sent")->value() -
        sent_before;
    overlay.RecordMemoryMetrics();
    const double bytes_per_node =
        overlay.network().metrics().FindGauge("sim.mem.bytes_per_node")->value();

    std::printf("\nMaintenance (keep-alive on, quantum=100ms): N=%d, %llds sim\n",
                maint_n, static_cast<long long>(maint_window / kMicrosPerSecond));
    std::printf("  timers pending %zu in %zu armed buckets (%.1fx batching)\n",
                timers_pending, armed_before,
                armed_before == 0
                    ? 0.0
                    : static_cast<double>(timers_pending) /
                          static_cast<double>(armed_before));
    std::printf("  %llu maintenance msgs, build %.2fs, window %.2fs wall, %0.f bytes/node\n",
                static_cast<unsigned long long>(maint_msgs), build_s, run_s,
                bytes_per_node);

    JsonValue row = JsonValue::Object();
    row.Set("n", maint_n);
    row.Set("sim_window_s",
            static_cast<double>(maint_window) / kMicrosPerSecond);
    row.Set("keep_alive_quantum_us", 100 * kMicrosPerMilli);
    row.Set("timers_pending", static_cast<uint64_t>(timers_pending));
    row.Set("armed_buckets", static_cast<uint64_t>(armed_before));
    row.Set("maintenance_msgs", maint_msgs);
    row.Set("build_wall_s", build_s);
    row.Set("window_wall_s", run_s);
    row.Set("bytes_per_node", bytes_per_node);
    json.Set("maintenance", std::move(row));
    if (bytes_per_node > kMaintBytesPerNodeBudget) {
      std::fprintf(stderr, "FAIL: maintenance bytes/node %.0f over budget %.0f\n",
                   bytes_per_node, kMaintBytesPerNodeBudget);
      failed = true;
    }
  }

  if (failed) {
    std::fprintf(stderr, "\nexp_scale: assertions FAILED\n");
  }
  std::printf("\nBytes/node should stay roughly flat from 10k to 100k; the\n");
  std::printf("100k row x10 gives the documented 1M footprint estimate.\n");
  return (!failed && json.Finish()) ? 0 : 1;
}
