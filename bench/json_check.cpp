// json_check — validates a BENCH_*.json document.
//
//   json_check <file> [required/key/path ...] [--le path value ...]
//
// Parses the file with the same JSON implementation the exporters use (so a
// round-trip failure is caught either way) and then checks that each
// '/'-separated key path resolves. Metric names contain dots, hence the '/'
// separator: e.g. "metrics/counters/net.sent". Each --le triple additionally
// asserts that the numeric value at `path` is <= `value` — the scale gate
// uses this to enforce the bytes-per-node budget. Exits non-zero with a
// message on parse failure, a missing path, or a violated bound; used by the
// bench_smoke and scale ctests.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "src/obs/json.h"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <file> [required/key/path ...] [--le path value ...]\n",
                 argv[0]);
    return 2;
  }
  std::ifstream in(argv[1]);
  if (!in) {
    std::fprintf(stderr, "json_check: cannot open %s\n", argv[1]);
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  past::JsonValue root;
  if (!past::JsonValue::Parse(text, &root)) {
    std::fprintf(stderr, "json_check: %s is not valid JSON\n", argv[1]);
    return 1;
  }
  int failures = 0;
  int checked = 0;
  for (int i = 2; i < argc; ++i) {
    if (std::string(argv[i]) == "--le") {
      if (i + 2 >= argc) {
        std::fprintf(stderr, "json_check: --le needs <path> <value>\n");
        return 2;
      }
      const char* path = argv[++i];
      const double bound = std::atof(argv[++i]);
      ++checked;
      const past::JsonValue* v = root.FindPath(path);
      if (v == nullptr) {
        std::fprintf(stderr, "json_check: missing key path %s\n", path);
        ++failures;
      } else if (!v->is_number()) {
        std::fprintf(stderr, "json_check: %s is not a number\n", path);
        ++failures;
      } else if (v->AsDouble() > bound) {
        std::fprintf(stderr, "json_check: %s = %g exceeds bound %g\n", path,
                     v->AsDouble(), bound);
        ++failures;
      }
      continue;
    }
    ++checked;
    if (root.FindPath(argv[i]) == nullptr) {
      std::fprintf(stderr, "json_check: missing key path %s\n", argv[i]);
      ++failures;
    }
  }
  if (failures == 0) {
    std::printf("json_check: %s ok (%d check%s)\n", argv[1], checked,
                checked == 1 ? "" : "s");
  }
  return failures == 0 ? 0 : 1;
}
