// json_check — validates a BENCH_*.json document.
//
//   json_check <file> [required/key/path ...]
//
// Parses the file with the same JSON implementation the exporters use (so a
// round-trip failure is caught either way) and then checks that each
// '/'-separated key path resolves. Metric names contain dots, hence the '/'
// separator: e.g. "metrics/counters/net.sent". Exits non-zero with a message
// on parse failure or a missing path; used by the bench_smoke ctest.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "src/obs/json.h"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <file> [required/key/path ...]\n", argv[0]);
    return 2;
  }
  std::ifstream in(argv[1]);
  if (!in) {
    std::fprintf(stderr, "json_check: cannot open %s\n", argv[1]);
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  past::JsonValue root;
  if (!past::JsonValue::Parse(text, &root)) {
    std::fprintf(stderr, "json_check: %s is not valid JSON\n", argv[1]);
    return 1;
  }
  int missing = 0;
  for (int i = 2; i < argc; ++i) {
    if (root.FindPath(argv[i]) == nullptr) {
      std::fprintf(stderr, "json_check: missing key path %s\n", argv[i]);
      ++missing;
    }
  }
  if (missing == 0) {
    std::printf("json_check: %s ok (%d path%s checked)\n", argv[1], argc - 2,
                argc - 2 == 1 ? "" : "s");
  }
  return missing == 0 ? 0 : 1;
}
