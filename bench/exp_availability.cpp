// E10 — Persistence and availability under churn.
//
// HotOS text: "a file remains available as long as one of the k nodes that
// store the file is alive and reachable" and "in the event of storage node
// failures, the system automatically restores k copies of a file as part of
// a failure recovery procedure".
#include "bench/exp_util.h"

int main(int argc, char** argv) {
  using namespace past;
  ExpArgs args = ExpArgs::Parse(argc, argv);
  ExpJson json(args, "availability");
  const int kNodes = args.smoke ? 80 : 200;
  const int kFiles = args.smoke ? 15 : 40;
  const int kToKill = args.smoke ? 12 : 30;  // 15% of the network
  PrintHeader("E10: file availability and k-restoration under churn",
              "available while >=1 replica lives; recovery restores k copies");

  std::printf("%6s %14s %16s %18s %16s\n", "k", "nodes killed", "avail (fresh)",
              "avail (healed)", "avg replicas");
  const std::vector<uint32_t> ks = {2u, 3u, 5u};

  struct TrialResult {
    size_t files = 0;
    int fresh_ok = 0;
    int healed_ok = 0;
    double replica_sum = 0;
    JsonValue metrics;
  };
  auto run = [&](size_t index) -> TrialResult {
    const uint32_t k = ks[index];
    PastNetworkOptions options;
    options.overlay.seed = 10'000 + k;
    options.overlay.pastry.keep_alive_period = 1 * kMicrosPerSecond;
    options.overlay.pastry.failure_timeout = 3 * kMicrosPerSecond;
    options.overlay.pastry.death_quarantine = 6 * kMicrosPerSecond;
    options.broker.modulus_pool = 8;
    options.past.verify_crypto = false;
    options.past.default_replication = k;
    options.past.request_timeout = 10 * kMicrosPerSecond;
    options.default_node_capacity = 4 << 20;
    options.default_user_quota = ~0ULL >> 2;

    PastNetwork net(options);
    net.Build(kNodes);
    PastNode* client = net.node(0);
    std::vector<FileId> files;
    for (int f = 0; f < kFiles; ++f) {
      auto r = net.InsertSyntheticSync(client, "av-" + std::to_string(f), 4096, k);
      if (r.ok()) {
        files.push_back(r.value());
      }
    }

    // Kill 15% of nodes at once (sparing the client).
    Rng rng(k * 31);
    int to_kill = kToKill;
    int killed = 0;
    while (killed < to_kill) {
      size_t victim = 1 + rng.UniformU64(net.size() - 1);
      if (net.node(victim)->overlay()->active()) {
        net.CrashNode(victim);
        ++killed;
      }
    }

    TrialResult result;
    result.files = files.size();
    // Fresh availability (no repair window yet).
    for (const FileId& id : files) {
      result.fresh_ok += net.LookupSync(client, id).ok() ? 1 : 0;
    }
    // After recovery.
    net.Run(60 * kMicrosPerSecond);
    for (const FileId& id : files) {
      result.healed_ok += net.LookupSync(client, id).ok() ? 1 : 0;
      result.replica_sum += net.CountReplicas(id);
    }
    result.metrics = net.overlay().network().metrics().ToJson();
    return result;
  };
  auto commit = [&](size_t index, TrialResult& r) {
    const uint32_t k = ks[index];
    std::printf("%6u %14d %15.1f%% %17.1f%% %16.2f\n", k, kToKill,
                100.0 * r.fresh_ok / static_cast<double>(r.files),
                100.0 * r.healed_ok / static_cast<double>(r.files),
                r.replica_sum / static_cast<double>(r.files));

    JsonValue row = JsonValue::Object();
    row.Set("k", static_cast<int>(k));
    row.Set("nodes_killed", kToKill);
    row.Set("avail_fresh", r.fresh_ok / static_cast<double>(r.files));
    row.Set("avail_healed", r.healed_ok / static_cast<double>(r.files));
    row.Set("avg_replicas_healed", r.replica_sum / static_cast<double>(r.files));
    json.AddRow("availability_vs_k", std::move(row));
    json.SetMetricsJson(std::move(r.metrics));
  };

  TrialOptions trial_opts;
  trial_opts.threads = args.threads;
  RunTrials(trial_opts, ks.size(), run, commit);

  std::printf("\nExpected shape: higher k -> fresh availability closer to 100%%;\n");
  std::printf("after the repair window every file is back to k replicas.\n");
  return json.Finish() ? 0 : 1;
}
