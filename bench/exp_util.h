// Shared helpers for the experiment binaries.
//
// Each exp_*.cc binary regenerates one table/figure-equivalent from the
// paper's evaluation claims (see DESIGN.md section 4 and EXPERIMENTS.md) and
// prints it in a fixed-width table with the paper's expectation alongside.
#ifndef BENCH_EXP_UTIL_H_
#define BENCH_EXP_UTIL_H_

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "src/pastry/overlay.h"
#include "src/storage/past_network.h"

namespace past {

// Records deliveries for routing experiments.
struct ExpApp : public PastryApp {
  std::vector<DeliverContext> delivered;
  void Deliver(const DeliverContext& ctx, ByteSpan) override {
    delivered.push_back(ctx);
  }
};

// An overlay with ExpApps attached to every node and heartbeats disabled
// (routing experiments run without failures, so the queue can drain fully).
class ExpOverlay {
 public:
  ExpOverlay(int n, uint64_t seed, bool locality = true, bool randomized = false,
             TopologyKind topology = TopologyKind::kSphere) {
    OverlayOptions opts;
    opts.seed = seed;
    opts.topology = topology;
    opts.pastry.keep_alive_period = 0;
    opts.pastry.locality_aware = locality;
    opts.pastry.randomized_routing = randomized;
    opts.nearest_bootstrap = locality;
    overlay = std::make_unique<Overlay>(opts);
    overlay->Build(n);
    AttachApps();
  }

  void AttachApps() {
    apps.resize(overlay->size());
    for (size_t i = 0; i < overlay->size(); ++i) {
      overlay->node(i)->SetApp(&apps[i]);
    }
  }

  // Routes one message from a random node and returns the delivery context.
  std::optional<DeliverContext> RouteOnce(const U128& key, PastryNode* src = nullptr,
                                          uint8_t replica_k = 0) {
    if (src == nullptr) {
      src = overlay->RandomLiveNode();
    }
    src->Route(key, 1, {}, replica_k);
    overlay->RunAll();
    std::optional<DeliverContext> result;
    for (auto& app : apps) {
      if (!app.delivered.empty()) {
        result = app.delivered.back();
        app.delivered.clear();
      }
    }
    return result;
  }

  std::unique_ptr<Overlay> overlay;
  std::vector<ExpApp> apps;
};

inline double Log16(double n) { return std::log(n) / std::log(16.0); }

inline void PrintHeader(const char* title, const char* claim) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("Paper claim: %s\n", claim);
  std::printf("================================================================\n");
}

// Percentile of a sorted vector.
inline double Percentile(std::vector<double> values, double p) {
  if (values.empty()) {
    return 0.0;
  }
  std::sort(values.begin(), values.end());
  size_t idx = static_cast<size_t>(p * static_cast<double>(values.size() - 1));
  return values[idx];
}

}  // namespace past

#endif  // BENCH_EXP_UTIL_H_
