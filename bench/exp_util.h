// Shared helpers for the experiment binaries.
//
// Each exp_*.cc binary regenerates one table/figure-equivalent from the
// paper's evaluation claims (see DESIGN.md section 4 and EXPERIMENTS.md) and
// prints it in a fixed-width table with the paper's expectation alongside.
//
// Every binary also accepts:
//   --json <path>   additionally write a machine-readable BENCH_*.json
//                   document: {"experiment", "results", "metrics"} where
//                   "metrics" is the final MetricsRegistry dump
//   --smoke         shrink the workload to seconds (used by the bench_smoke
//                   ctest); results are structurally complete but not
//                   statistically meaningful
//   --threads <n>   fan independent trials across n worker threads
//                   (default: hardware_concurrency; 1 = fully sequential).
//                   Output is byte-identical regardless of n.
//   --trace-out <path>  write the operation-span trace of the run's
//                   representative simulation as {"experiment", "spans",
//                   "dropped"}; tools/past_stats --chrome converts it to
//                   Chrome trace-event JSON. Binaries without span sources
//                   reject the flag.
#pragma once

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "src/common/mutex.h"
#include "src/obs/json.h"
#include "src/obs/metrics.h"
#include "src/obs/span.h"
#include "src/pastry/overlay.h"
#include "src/storage/past_network.h"

namespace past {

// Resolves a --threads argument: 0 means "use every hardware thread".
inline int ResolveThreads(int threads) {
  if (threads > 0) {
    return threads;
  }
  unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<int>(hc);
}

// Command-line contract shared by every exp_* binary.
struct ExpArgs {
  std::string json_path;   // empty: no JSON output
  std::string trace_path;  // empty: tracing off
  bool smoke = false;
  int threads = 0;  // 0 = hardware_concurrency
  // Maintenance timer-wheel bucket width (us). Purely a batching knob: the
  // scale determinism ctest re-runs experiments across granularities and
  // requires byte-identical output.
  SimTime wheel_granularity = 64;

  static ExpArgs Parse(int argc, char** argv) {
    ExpArgs args;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
        args.json_path = argv[++i];
      } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
        args.trace_path = argv[++i];
      } else if (std::strcmp(argv[i], "--smoke") == 0) {
        args.smoke = true;
      } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
        args.threads = std::atoi(argv[++i]);
        if (args.threads < 0) {
          std::fprintf(stderr, "--threads must be >= 0\n");
          std::exit(2);
        }
      } else if (std::strcmp(argv[i], "--wheel-granularity") == 0 && i + 1 < argc) {
        args.wheel_granularity = std::atoll(argv[++i]);
        if (args.wheel_granularity < 1) {
          std::fprintf(stderr, "--wheel-granularity must be >= 1\n");
          std::exit(2);
        }
      } else {
        std::fprintf(stderr,
                     "usage: %s [--json <path>] [--trace-out <path>] [--smoke]"
                     " [--threads <n>] [--wheel-granularity <us>]\n",
                     argv[0]);
        std::exit(2);
      }
    }
    return args;
  }
};

// Single-producer-slot commit queue between trial workers and the committing
// thread: workers Push() results keyed by trial index, the caller Take()s
// them strictly in ascending index order. Lock discipline over the slots is
// declared with PAST_GUARDED_BY and checked at compile time under Clang
// (-Wthread-safety); see src/common/mutex.h.
template <typename Result>
class TrialCommitQueue {
 public:
  explicit TrialCommitQueue(size_t count) : done_(count) {}

  // Worker side: deposit the finished trial and wake the committer.
  void Push(size_t index, Result r) PAST_EXCLUDES(mu_) {
    {
      MutexLock lock(&mu_);
      done_[index].emplace(std::move(r));
    }
    cv_.NotifyOne();
  }

  // Committer side: block until trial `index` is deposited, then claim it.
  Result Take(size_t index) PAST_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    while (!done_[index].has_value()) {
      cv_.Wait(&mu_);
    }
    Result r = std::move(*done_[index]);
    done_[index].reset();
    return r;
  }

 private:
  Mutex mu_;
  CondVar cv_;
  std::vector<std::optional<Result>> done_ PAST_GUARDED_BY(mu_);
};

// Execution policy for RunTrials().
struct TrialOptions {
  int threads = 1;  // 0 = hardware_concurrency
  // Optional execution-order permutation of [0, count) — e.g. largest trial
  // first to minimize makespan. Commit order is always ascending trial
  // index, so the permutation cannot affect output.
  std::vector<size_t> work_order;
};

// Fans `count` independent trials across a worker pool and commits results
// strictly in trial-index order, making stdout and --json output
// byte-identical to a sequential run.
//
// Contract:
//   - run(index) executes on a worker thread (or inline when threads == 1).
//     It must build its own fully isolated simulation stack — EventQueue,
//     Topology, Network, MetricsRegistry all live inside Overlay /
//     PastNetwork instances constructed inside the callback — and must not
//     print or touch any shared mutable state.
//   - commit(index, result) executes on the calling thread, in ascending
//     index order; all printing and ExpJson recording belongs here.
//
// With threads == 1 (or a single trial) this degenerates to a plain inline
// loop: no pool, no buffering — exactly the pre-parallel behavior.
template <typename RunFn, typename CommitFn>
void RunTrials(const TrialOptions& options, size_t count, RunFn run,
               CommitFn commit) {
  using Result = std::invoke_result_t<RunFn&, size_t>;
  const int threads = ResolveThreads(options.threads);
  if (threads == 1 || count <= 1) {
    for (size_t i = 0; i < count; ++i) {
      Result r = run(i);
      commit(i, r);
    }
    return;
  }

  std::vector<size_t> order = options.work_order;
  if (order.empty()) {
    order.resize(count);
    for (size_t i = 0; i < count; ++i) {
      order[i] = i;
    }
  }

  TrialCommitQueue<Result> queue(count);
  std::atomic<size_t> next{0};
  auto worker = [&] {
    while (true) {
      size_t slot = next.fetch_add(1, std::memory_order_relaxed);
      if (slot >= order.size()) {
        return;
      }
      size_t index = order[slot];
      queue.Push(index, run(index));
    }
  };
  std::vector<std::thread> pool;
  size_t n_workers = std::min(static_cast<size_t>(threads), count);
  pool.reserve(n_workers);
  for (size_t t = 0; t < n_workers; ++t) {
    pool.emplace_back(worker);
  }
  for (size_t i = 0; i < count; ++i) {
    Result r = queue.Take(i);
    commit(i, r);
  }
  for (auto& t : pool) {
    t.join();
  }
}

// Convenience: descending-cost execution order for trials whose relative
// costs are known up front (largest first minimizes makespan).
inline std::vector<size_t> LargestFirstOrder(const std::vector<double>& costs) {
  std::vector<size_t> order(costs.size());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  std::stable_sort(order.begin(), order.end(), [&costs](size_t a, size_t b) {
    return costs[a] > costs[b];
  });
  return order;
}

// Accumulates an experiment's machine-readable output and writes it on
// Finish(). With no --json flag every call is a cheap no-op, so experiment
// code records rows unconditionally.
class ExpJson {
 public:
  ExpJson(const ExpArgs& args, const char* experiment)
      : path_(args.json_path), root_(JsonValue::Object()) {
    root_.Set("experiment", experiment);
    root_.Set("smoke", args.smoke);
    root_.Set("results", JsonValue::Object());
  }

  bool enabled() const { return !path_.empty(); }

  // Appends `row` to the "results.<section>" array.
  void AddRow(const char* section, JsonValue row) {
    if (!enabled()) {
      return;
    }
    JsonValue* results = MutableResults();
    const JsonValue* existing = results->Find(section);
    JsonValue array = existing != nullptr ? *existing : JsonValue::Array();
    array.Append(std::move(row));
    results->Set(section, std::move(array));
  }

  // Sets "results.<key>" directly (summary scalars or nested objects).
  void Set(const char* key, JsonValue value) {
    if (!enabled()) {
      return;
    }
    MutableResults()->Set(key, std::move(value));
  }

  // Snapshots a registry into the top-level "metrics" member. Typically
  // called once, on the final (largest) simulation of the run.
  void SetMetrics(const MetricsRegistry& metrics) {
    if (!enabled()) {
      return;
    }
    root_.Set("metrics", metrics.ToJson());
  }

  // Same, but from an already-dumped snapshot — used by parallel trials,
  // where the registry dies with the worker's simulation stack and only the
  // JSON dump travels back to the committing thread.
  void SetMetricsJson(JsonValue metrics) {
    if (!enabled()) {
      return;
    }
    root_.Set("metrics", std::move(metrics));
  }

  // Writes the document. Returns false (and prints to stderr) on I/O error.
  bool Finish() {
    if (!enabled()) {
      return true;
    }
    std::ofstream out(path_, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "cannot open %s for writing\n", path_.c_str());
      return false;
    }
    out << root_.Dump(2) << "\n";
    out.flush();
    if (!out) {
      std::fprintf(stderr, "failed writing %s\n", path_.c_str());
      return false;
    }
    std::printf("\nwrote %s\n", path_.c_str());
    return true;
  }

 private:
  JsonValue* MutableResults() {
    // Find() is const; members are stable, so the cast is safe here.
    return const_cast<JsonValue*>(root_.Find("results"));
  }

  std::string path_;
  JsonValue root_;
};

// Writes a --trace-out span dump: {"experiment", "spans": [...], "dropped"}.
// Like ExpJson, a no-op when the flag was not given, and the spans can come
// either from a live Tracer or from an already-dumped JSON array (parallel
// trials ship the dump back to the committing thread).
class ExpTrace {
 public:
  ExpTrace(const ExpArgs& args, const char* experiment)
      : path_(args.trace_path), experiment_(experiment),
        spans_(JsonValue::Array()) {}

  bool enabled() const { return !path_.empty(); }

  void SetSpans(const Tracer& tracer) {
    if (enabled()) {
      spans_ = tracer.SpansJson();
      dropped_ = tracer.dropped();
    }
  }
  void SetSpansJson(JsonValue spans, uint64_t dropped) {
    if (enabled()) {
      spans_ = std::move(spans);
      dropped_ = dropped;
    }
  }

  bool Finish() {
    if (!enabled()) {
      return true;
    }
    JsonValue root = JsonValue::Object();
    root.Set("experiment", experiment_);
    root.Set("spans", std::move(spans_));
    root.Set("dropped", dropped_);
    std::ofstream out(path_, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "cannot open %s for writing\n", path_.c_str());
      return false;
    }
    out << root.Dump(2) << "\n";
    out.flush();
    if (!out) {
      std::fprintf(stderr, "failed writing %s\n", path_.c_str());
      return false;
    }
    std::printf("wrote %s\n", path_.c_str());
    return true;
  }

 private:
  std::string path_;
  const char* experiment_;
  JsonValue spans_;
  uint64_t dropped_ = 0;
};

// Records deliveries for routing experiments.
struct ExpApp : public PastryApp {
  std::vector<DeliverContext> delivered;
  void Deliver(const DeliverContext& ctx, ByteSpan) override {
    delivered.push_back(ctx);
  }
};

// An overlay with ExpApps attached to every node and heartbeats disabled
// (routing experiments run without failures, so the queue can drain fully).
class ExpOverlay {
 public:
  ExpOverlay(int n, uint64_t seed, bool locality = true, bool randomized = false,
             TopologyKind topology = TopologyKind::kSphere,
             SimTime wheel_granularity = 64) {
    OverlayOptions opts;
    opts.seed = seed;
    opts.topology = topology;
    opts.pastry.keep_alive_period = 0;
    opts.pastry.locality_aware = locality;
    opts.pastry.randomized_routing = randomized;
    opts.nearest_bootstrap = locality;
    opts.network.timer_wheel_granularity = wheel_granularity;
    opts.network.expected_endpoints = static_cast<size_t>(n);
    overlay = std::make_unique<Overlay>(opts);
    overlay->Build(n);
    AttachApps();
  }

  void AttachApps() {
    apps.resize(overlay->size());
    for (size_t i = 0; i < overlay->size(); ++i) {
      overlay->node(i)->SetApp(&apps[i]);
    }
  }

  // Routes one message from a random node and returns the delivery context.
  std::optional<DeliverContext> RouteOnce(const U128& key, PastryNode* src = nullptr,
                                          uint8_t replica_k = 0) {
    if (src == nullptr) {
      src = overlay->RandomLiveNode();
    }
    src->Route(key, 1, {}, replica_k);
    overlay->RunAll();
    std::optional<DeliverContext> result;
    for (auto& app : apps) {
      if (!app.delivered.empty()) {
        result = app.delivered.back();
        app.delivered.clear();
      }
    }
    return result;
  }

  std::unique_ptr<Overlay> overlay;
  std::vector<ExpApp> apps;
};

inline double Log16(double n) { return std::log(n) / std::log(16.0); }

inline void PrintHeader(const char* title, const char* claim) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("Paper claim: %s\n", claim);
  std::printf("================================================================\n");
}

// Percentile of a sorted vector.
inline double Percentile(std::vector<double> values, double p) {
  if (values.empty()) {
    return 0.0;
  }
  std::sort(values.begin(), values.end());
  size_t idx = static_cast<size_t>(p * static_cast<double>(values.size() - 1));
  return values[idx];
}

}  // namespace past

