// Shared helpers for the experiment binaries.
//
// Each exp_*.cc binary regenerates one table/figure-equivalent from the
// paper's evaluation claims (see DESIGN.md section 4 and EXPERIMENTS.md) and
// prints it in a fixed-width table with the paper's expectation alongside.
//
// Every binary also accepts:
//   --json <path>   additionally write a machine-readable BENCH_*.json
//                   document: {"experiment", "results", "metrics"} where
//                   "metrics" is the final MetricsRegistry dump
//   --smoke         shrink the workload to seconds (used by the bench_smoke
//                   ctest); results are structurally complete but not
//                   statistically meaningful
#pragma once

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "src/obs/json.h"
#include "src/obs/metrics.h"
#include "src/pastry/overlay.h"
#include "src/storage/past_network.h"

namespace past {

// Command-line contract shared by every exp_* binary.
struct ExpArgs {
  std::string json_path;  // empty: no JSON output
  bool smoke = false;

  static ExpArgs Parse(int argc, char** argv) {
    ExpArgs args;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
        args.json_path = argv[++i];
      } else if (std::strcmp(argv[i], "--smoke") == 0) {
        args.smoke = true;
      } else {
        std::fprintf(stderr, "usage: %s [--json <path>] [--smoke]\n", argv[0]);
        std::exit(2);
      }
    }
    return args;
  }
};

// Accumulates an experiment's machine-readable output and writes it on
// Finish(). With no --json flag every call is a cheap no-op, so experiment
// code records rows unconditionally.
class ExpJson {
 public:
  ExpJson(const ExpArgs& args, const char* experiment)
      : path_(args.json_path), root_(JsonValue::Object()) {
    root_.Set("experiment", experiment);
    root_.Set("smoke", args.smoke);
    root_.Set("results", JsonValue::Object());
  }

  bool enabled() const { return !path_.empty(); }

  // Appends `row` to the "results.<section>" array.
  void AddRow(const char* section, JsonValue row) {
    if (!enabled()) {
      return;
    }
    JsonValue* results = MutableResults();
    const JsonValue* existing = results->Find(section);
    JsonValue array = existing != nullptr ? *existing : JsonValue::Array();
    array.Append(std::move(row));
    results->Set(section, std::move(array));
  }

  // Sets "results.<key>" directly (summary scalars or nested objects).
  void Set(const char* key, JsonValue value) {
    if (!enabled()) {
      return;
    }
    MutableResults()->Set(key, std::move(value));
  }

  // Snapshots a registry into the top-level "metrics" member. Typically
  // called once, on the final (largest) simulation of the run.
  void SetMetrics(const MetricsRegistry& metrics) {
    if (!enabled()) {
      return;
    }
    root_.Set("metrics", metrics.ToJson());
  }

  // Writes the document. Returns false (and prints to stderr) on I/O error.
  bool Finish() {
    if (!enabled()) {
      return true;
    }
    std::ofstream out(path_, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "cannot open %s for writing\n", path_.c_str());
      return false;
    }
    out << root_.Dump(2) << "\n";
    out.flush();
    if (!out) {
      std::fprintf(stderr, "failed writing %s\n", path_.c_str());
      return false;
    }
    std::printf("\nwrote %s\n", path_.c_str());
    return true;
  }

 private:
  JsonValue* MutableResults() {
    // Find() is const; members are stable, so the cast is safe here.
    return const_cast<JsonValue*>(root_.Find("results"));
  }

  std::string path_;
  JsonValue root_;
};

// Records deliveries for routing experiments.
struct ExpApp : public PastryApp {
  std::vector<DeliverContext> delivered;
  void Deliver(const DeliverContext& ctx, ByteSpan) override {
    delivered.push_back(ctx);
  }
};

// An overlay with ExpApps attached to every node and heartbeats disabled
// (routing experiments run without failures, so the queue can drain fully).
class ExpOverlay {
 public:
  ExpOverlay(int n, uint64_t seed, bool locality = true, bool randomized = false,
             TopologyKind topology = TopologyKind::kSphere) {
    OverlayOptions opts;
    opts.seed = seed;
    opts.topology = topology;
    opts.pastry.keep_alive_period = 0;
    opts.pastry.locality_aware = locality;
    opts.pastry.randomized_routing = randomized;
    opts.nearest_bootstrap = locality;
    overlay = std::make_unique<Overlay>(opts);
    overlay->Build(n);
    AttachApps();
  }

  void AttachApps() {
    apps.resize(overlay->size());
    for (size_t i = 0; i < overlay->size(); ++i) {
      overlay->node(i)->SetApp(&apps[i]);
    }
  }

  // Routes one message from a random node and returns the delivery context.
  std::optional<DeliverContext> RouteOnce(const U128& key, PastryNode* src = nullptr,
                                          uint8_t replica_k = 0) {
    if (src == nullptr) {
      src = overlay->RandomLiveNode();
    }
    src->Route(key, 1, {}, replica_k);
    overlay->RunAll();
    std::optional<DeliverContext> result;
    for (auto& app : apps) {
      if (!app.delivered.empty()) {
        result = app.delivered.back();
        app.delivered.clear();
      }
    }
    return result;
  }

  std::unique_ptr<Overlay> overlay;
  std::vector<ExpApp> apps;
};

inline double Log16(double n) { return std::log(n) / std::log(16.0); }

inline void PrintHeader(const char* title, const char* claim) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("Paper claim: %s\n", claim);
  std::printf("================================================================\n");
}

// Percentile of a sorted vector.
inline double Percentile(std::vector<double> values, double p) {
  if (values.empty()) {
    return 0.0;
  }
  std::sort(values.begin(), values.end());
  size_t idx = static_cast<size_t>(p * static_cast<double>(values.size() - 1));
  return values[idx];
}

}  // namespace past

