// E12 — Ablation of the Pastry configuration parameters b and l.
//
// HotOS text: "b is a configuration parameter with typical value 4" (the
// hop/state trade-off: hops ~ log_2b N, state ~ (2^b - 1) * log_2b N) and
// "eventual delivery is guaranteed unless floor(l/2) nodes with adjacent
// nodeIds fail simultaneously" (l trades state for fault tolerance).
#include "bench/exp_util.h"

int main(int argc, char** argv) {
  using namespace past;
  ExpArgs args = ExpArgs::Parse(argc, argv);
  ExpJson json(args, "param_sweep");
  const int kSweepN = args.smoke ? 300 : 2000;
  PrintHeader("E12a: digit width b — hops vs state",
              "hops ~ log_2^b N falls with b; table size (2^b-1)*rows grows");

  std::printf("%4s %12s %12s %14s %14s\n", "b", "avg hops", "bound", "avg RT size",
              "RT bound");
  const std::vector<int> widths = {2, 4, 8};

  struct WidthResult {
    double hops = 0;
    int delivered = 0;
    double rt = 0;
    size_t overlay_size = 0;
    JsonValue metrics;
  };
  auto run_width = [&](size_t index) -> WidthResult {
    const int b = widths[index];
    OverlayOptions opts;
    opts.seed = 12000 + static_cast<uint64_t>(b);
    opts.pastry.b = b;
    opts.pastry.keep_alive_period = 0;
    Overlay overlay(opts);
    overlay.Build(kSweepN);
    std::vector<ExpApp> apps(overlay.size());
    for (size_t i = 0; i < overlay.size(); ++i) {
      overlay.node(i)->SetApp(&apps[i]);
    }
    WidthResult r;
    const int lookups = args.smoke ? 60 : 400;
    for (int t = 0; t < lookups; ++t) {
      overlay.RandomLiveNode()->Route(overlay.RandomKey(), 1, {});
      overlay.RunAll();
      for (auto& app : apps) {
        for (auto& ctx : app.delivered) {
          r.hops += ctx.hops;
          ++r.delivered;
        }
        app.delivered.clear();
      }
    }
    for (size_t i = 0; i < overlay.size(); ++i) {
      r.rt += static_cast<double>(overlay.node(i)->routing_table().EntryCount());
    }
    r.overlay_size = overlay.size();
    r.metrics = overlay.network().metrics().ToJson();
    return r;
  };
  auto commit_width = [&](size_t index, WidthResult& r) {
    const int b = widths[index];
    double log2b_n =
        std::log(static_cast<double>(kSweepN)) / std::log(static_cast<double>(1 << b));
    std::printf("%4d %12.2f %12.2f %14.1f %14.1f\n", b, r.hops / r.delivered,
                std::ceil(log2b_n), r.rt / static_cast<double>(r.overlay_size),
                ((1 << b) - 1) * std::ceil(log2b_n));

    JsonValue row = JsonValue::Object();
    row.Set("b", b);
    row.Set("avg_hops", r.hops / r.delivered);
    row.Set("hop_bound", std::ceil(log2b_n));
    row.Set("avg_rt_entries", r.rt / static_cast<double>(r.overlay_size));
    json.AddRow("digit_width", std::move(row));
    json.SetMetricsJson(std::move(r.metrics));
  };

  TrialOptions trial_opts;
  trial_opts.threads = args.threads;
  RunTrials(trial_opts, widths.size(), run_width, commit_width);

  const int kLeafN = args.smoke ? 200 : 400;
  const int kLeafQueries = args.smoke ? 20 : 60;
  PrintHeader("E12b: leaf-set size l — surviving adjacent failures",
              "keys in a dead region resolve while < floor(l/2) adjacent "
              "nodes are down");

  std::printf("%4s %12s %22s %22s\n", "l", "floor(l/2)", "kill l/2-1: success",
              "kill l/2+4: success");
  const std::vector<int> leaf_sizes = {8, 16, 32};

  struct LeafResult {
    double success[2] = {};
  };
  auto run_leaf = [&](size_t index) -> LeafResult {
    const int l = leaf_sizes[index];
    LeafResult r;
    for (int scenario = 0; scenario < 2; ++scenario) {
      OverlayOptions opts;
      opts.seed = 12100 + static_cast<uint64_t>(l);
      opts.pastry.leaf_set_size = l;
      // Heartbeats off: measure the *immediate* tolerance window, before any
      // repair, which is what the floor(l/2) bound is about.
      opts.pastry.keep_alive_period = 0;
      Overlay overlay(opts);
      overlay.Build(kLeafN);
      std::vector<ExpApp> apps(overlay.size());
      for (size_t i = 0; i < overlay.size(); ++i) {
        overlay.node(i)->SetApp(&apps[i]);
      }
      // Kill a run of adjacent nodes (by id order).
      std::vector<std::pair<U128, size_t>> by_id;
      for (size_t i = 0; i < overlay.size(); ++i) {
        by_id.emplace_back(overlay.node(i)->id(), i);
      }
      std::sort(by_id.begin(), by_id.end());
      int to_kill = scenario == 0 ? l / 2 - 1 : l / 2 + 4;
      const size_t start = 100;
      for (int i = 0; i < to_kill; ++i) {
        overlay.node(by_id[start + static_cast<size_t>(i)].second)->Fail();
      }
      // Route keys into the dead region from random live nodes.
      int ok = 0;
      const int queries = kLeafQueries;
      Rng rng(3);
      for (int q = 0; q < queries; ++q) {
        U128 key =
            by_id[start + rng.UniformU64(static_cast<uint64_t>(to_kill))].first.Add(
                U128(0, 1 + rng.UniformU64(1000)));
        PastryNode* expected = overlay.GloballyClosestLiveNode(key);
        size_t before = apps[expected->addr()].delivered.size();
        overlay.RandomLiveNode()->Route(key, 1, {});
        overlay.Run(20 * kMicrosPerSecond);
        ok += apps[expected->addr()].delivered.size() > before ? 1 : 0;
      }
      r.success[scenario] = 100.0 * ok / queries;
    }
    return r;
  };
  auto commit_leaf = [&](size_t index, LeafResult& r) {
    const int l = leaf_sizes[index];
    std::printf("%4d %12d %21.1f%% %21.1f%%\n", l, l / 2, r.success[0],
                r.success[1]);

    JsonValue row = JsonValue::Object();
    row.Set("l", l);
    row.Set("success_below_bound", r.success[0] / 100.0);
    row.Set("success_above_bound", r.success[1] / 100.0);
    json.AddRow("leaf_set_size", std::move(row));
  };
  RunTrials(trial_opts, leaf_sizes.size(), run_leaf, commit_leaf);

  std::printf("\nWithin the bound (left column) delivery keeps working via leaf\n");
  std::printf("sets and per-hop re-routing; beyond it (right column) success\n");
  std::printf("can degrade until the repair protocols rebuild the leaf sets.\n");
  return json.Finish() ? 0 : 1;
}
