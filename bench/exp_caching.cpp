// E8 — Caching: query load balancing and fetch distance.
//
// HotOS text: "Additional copies of popular files may be cached in any PAST
// node to balance query load" and caching "reduces fetch distance and network
// traffic ... balances query load by caching copies of popular files close to
// interested clients". Compares GreedyDual-Size, LRU and no caching on a
// Zipf lookup workload.
#include "bench/exp_util.h"
#include "src/workload/workload.h"

namespace {

using namespace past;

struct CacheRunResult {
  double cache_hit_rate = 0;      // lookups answered by any cache
  double avg_fetch_distance = 0;  // proximity(client, replier)
  double top_holder_load = 0;     // share of lookups served by busiest node
  JsonValue metrics;              // registry snapshot from this run
  JsonValue spans;                // span dump when --trace-out is given
  uint64_t spans_dropped = 0;
};

CacheRunResult RunCachePolicy(CachePolicy policy, uint64_t seed, bool smoke,
                              bool want_spans) {
  PastNetworkOptions options;
  options.overlay.seed = seed;
  options.overlay.pastry.keep_alive_period = 0;
  options.broker.modulus_pool = 8;
  options.past.verify_crypto = false;
  options.past.cache_policy = policy;
  options.past.cache_on_insert_path = policy != CachePolicy::kNone;
  options.past.cache_push_on_lookup = policy != CachePolicy::kNone;
  options.past.default_replication = 3;
  options.past.request_timeout = 10 * kMicrosPerSecond;
  // Small disks relative to the working set: caches are contended, so the
  // eviction policy matters (GD-S vs LRU).
  options.default_node_capacity = 96 << 10;
  options.default_user_quota = ~0ULL >> 2;

  const int kNodes = smoke ? 100 : 400;
  const int kFiles = smoke ? 40 : 150;
  const int kLookups = smoke ? 300 : 3000;

  PastNetwork net(options);
  net.Build(kNodes);
  if (want_spans) {
    // Full op tracing: every insert/lookup below opens a "past.*" span and
    // its overlay hops appear as child "pastry.hop" spans.
    net.overlay().network().tracer().Enable();
  }
  Rng rng(seed ^ 0x1234);

  FileSizeModel sizes;  // median ~4 KiB, max 16 KiB
  sizes.pareto_xm = 8 << 10;
  sizes.max_size = 16 << 10;
  std::vector<FileId> files;
  PastNode* inserter = net.node(0);
  while (static_cast<int>(files.size()) < kFiles) {
    auto r = net.InsertSyntheticSync(
        inserter, "cache-" + std::to_string(files.size()), sizes.Sample(&rng), 3);
    if (r.ok()) {
      files.push_back(r.value());
    }
  }

  LookupTrace trace(files.size(), 1.0);  // Zipf(1.0) popularity
  uint64_t cache_hits = 0;
  double distance_sum = 0;
  int distance_count = 0;
  std::unordered_map<NodeAddr, int> served_by;
  for (int i = 0; i < kLookups; ++i) {
    PastNode* client = net.RandomLiveNode();
    const FileId& id = files[trace.Next(&rng)];
    bool done = false;
    bool from_cache = false;
    NodeDescriptor replier;
    client->Lookup(id, [&](Result<PastNode::LookupOutcome> r) {
      done = true;
      if (r.ok()) {
        from_cache = r.value().from_cache;
        replier = r.value().replier;
      }
    });
    EventQueue& q = net.queue();
    SimTime deadline = q.Now() + 20 * kMicrosPerSecond;
    while (!done && q.Now() < deadline) {
      q.RunUntil(q.Now() + 100 * kMicrosPerMilli);
    }
    if (!done || !replier.valid()) {
      continue;
    }
    cache_hits += from_cache ? 1 : 0;
    distance_sum +=
        net.overlay().network().Proximity(client->overlay()->addr(), replier.addr);
    ++distance_count;
    served_by[replier.addr]++;
  }

  CacheRunResult result;
  result.cache_hit_rate = 100.0 * static_cast<double>(cache_hits) / kLookups;
  result.avg_fetch_distance = distance_sum / distance_count;
  int top = 0;
  for (const auto& [addr, count] : served_by) {
    top = std::max(top, count);
  }
  result.top_holder_load = 100.0 * top / kLookups;
  result.metrics = net.overlay().network().metrics().ToJson();
  if (want_spans) {
    result.spans = net.overlay().network().tracer().SpansJson();
    result.spans_dropped = net.overlay().network().tracer().dropped();
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  ExpArgs args = ExpArgs::Parse(argc, argv);
  ExpJson json(args, "caching");
  ExpTrace span_out(args, "caching");
  PrintHeader("E8: caching policies under Zipf(1.0) lookups",
              "caching balances query load and cuts fetch distance");

  std::printf("%10s %14s %18s %20s\n", "policy", "cache hits", "avg fetch dist",
              "busiest node share");
  struct Row {
    const char* name;
    CachePolicy policy;
  };
  const std::vector<Row> rows = {Row{"none", CachePolicy::kNone},
                                 Row{"LRU", CachePolicy::kLru},
                                 Row{"GD-S", CachePolicy::kGreedyDualSize}};
  auto run = [&](size_t index) -> CacheRunResult {
    // Only the last trial (GD-S, the headline configuration) is traced, so
    // the span dump describes one coherent simulation.
    const bool want_spans = span_out.enabled() && index == rows.size() - 1;
    return RunCachePolicy(rows[index].policy, 8001, args.smoke, want_spans);
  };
  auto commit = [&](size_t index, CacheRunResult& r) {
    const Row& row = rows[index];
    std::printf("%10s %13.1f%% %18.1f %19.1f%%\n", row.name, r.cache_hit_rate,
                r.avg_fetch_distance, r.top_holder_load);

    JsonValue jrow = JsonValue::Object();
    jrow.Set("policy", row.name);
    jrow.Set("cache_hit_rate", r.cache_hit_rate / 100.0);
    jrow.Set("avg_fetch_distance", r.avg_fetch_distance);
    jrow.Set("top_holder_load", r.top_holder_load / 100.0);
    json.AddRow("cache_policies", std::move(jrow));
    json.SetMetricsJson(std::move(r.metrics));
    if (index == rows.size() - 1) {
      span_out.SetSpansJson(std::move(r.spans), r.spans_dropped);
    }
  };
  TrialOptions trial_opts;
  trial_opts.threads = args.threads;
  RunTrials(trial_opts, rows.size(), run, commit);
  std::printf("\nExpected shape: with caching on, a large share of lookups hit\n");
  std::printf("cached copies, the average client->replier proximity drops, and\n");
  std::printf("the load share of the busiest replica holder falls.\n");
  return json.Finish() && span_out.Finish() ? 0 : 1;
}
