// E4 — Route locality.
//
// HotOS text: "the average distance traveled by a message, in terms of the
// proximity metric, is only 50% higher than the corresponding 'distance' of
// the source and destination in the underlying network" (ref [11]).
// Ablation: locality-aware state construction ON vs OFF.
#include "bench/exp_util.h"

namespace {

double MeasureRatio(past::ExpOverlay* net, int lookups) {
  using namespace past;
  double ratio_sum = 0;
  int counted = 0;
  for (int i = 0; i < lookups; ++i) {
    U128 key = net->overlay->RandomKey();
    auto ctx = net->RouteOnce(key);
    if (!ctx.has_value() || ctx->hops < 1) {
      continue;
    }
    double direct =
        net->overlay->network().Proximity(ctx->path.front(), ctx->path.back());
    if (direct < 1.0) {
      continue;  // src == dst region; ratio meaningless
    }
    ratio_sum += ctx->distance / direct;
    ++counted;
  }
  return counted > 0 ? ratio_sum / counted : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace past;
  ExpArgs args = ExpArgs::Parse(argc, argv);
  ExpJson json(args, "locality");
  PrintHeader("E4: route distance / direct proximity distance",
              "locality-aware Pastry: ~1.5x the direct distance");

  const std::vector<int> sizes =
      args.smoke ? std::vector<int>{200} : std::vector<int>{1000, 4000};
  const int lookups = args.smoke ? 50 : 400;
  std::printf("%10s %8s %18s %18s\n", "topology", "N", "locality ON",
              "locality OFF");

  struct Trial {
    TopologyKind kind;
    const char* name;
    int n;
  };
  std::vector<Trial> trials;
  for (auto [kind, name] : {std::make_pair(TopologyKind::kSphere, "sphere"),
                            std::make_pair(TopologyKind::kPlane, "plane")}) {
    for (int n : sizes) {
      trials.push_back({kind, name, n});
    }
  }

  struct TrialResult {
    double on = 0, off = 0;
    JsonValue metrics;
  };
  auto run = [&](size_t index) -> TrialResult {
    const Trial& t = trials[index];
    ExpOverlay with(t.n, 900 + static_cast<uint64_t>(t.n), /*locality=*/true,
                    /*randomized=*/false, t.kind);
    ExpOverlay without(t.n, 900 + static_cast<uint64_t>(t.n), /*locality=*/false,
                       /*randomized=*/false, t.kind);
    TrialResult r;
    r.on = MeasureRatio(&with, lookups);
    r.off = MeasureRatio(&without, lookups);
    r.metrics = with.overlay->network().metrics().ToJson();
    return r;
  };
  auto commit = [&](size_t index, TrialResult& r) {
    const Trial& t = trials[index];
    std::printf("%10s %8d %17.2fx %17.2fx\n", t.name, t.n, r.on, r.off);

    JsonValue row = JsonValue::Object();
    row.Set("topology", t.name);
    row.Set("n", t.n);
    row.Set("ratio_locality_on", r.on);
    row.Set("ratio_locality_off", r.off);
    json.AddRow("distance_ratio", std::move(row));
    json.SetMetricsJson(std::move(r.metrics));
  };

  TrialOptions trial_opts;
  trial_opts.threads = args.threads;
  std::vector<double> costs;
  for (const Trial& t : trials) {
    costs.push_back(static_cast<double>(t.n));
  }
  trial_opts.work_order = LargestFirstOrder(costs);
  RunTrials(trial_opts, trials.size(), run, commit);

  std::printf("\nThe ON column should sit near the paper's ~1.5x; the OFF\n");
  std::printf("ablation (random bootstrap, no proximity-based table slots)\n");
  std::printf("shows why the heuristics matter.\n");
  return json.Finish() ? 0 : 1;
}
