// E6 — Fault tolerance of routing.
//
// HotOS text: (a) "with concurrent node failures, eventual delivery is
// guaranteed unless floor(l/2) nodes with adjacent nodeIds fail
// simultaneously"; (b) "a randomized routing protocol ensures that a retried
// operation will eventually be routed around the malicious node"; (c) failed
// nodes are detected via timeouts and tables are repaired.
#include "bench/exp_util.h"

namespace {

using namespace past;

// Launches `count` lookups concurrently, runs the simulation for `window`,
// and returns (successes, avg hops of successful lookups).
std::pair<int, double> BatchLookups(Overlay* overlay, std::vector<ExpApp>* apps,
                                    int count, SimTime window, Rng* rng) {
  struct Query {
    U128 key;
    NodeAddr expected;
  };
  std::vector<Query> queries;
  for (int t = 0; t < count; ++t) {
    U128 key = overlay->RandomKey();
    PastryNode* expected = overlay->GloballyClosestLiveNode(key);
    overlay->RandomLiveNode()->Route(key, 1, {});
    queries.push_back({key, expected->addr()});
    (void)rng;
  }
  overlay->Run(window);
  int ok = 0;
  double hops = 0;
  for (const Query& q : queries) {
    for (const DeliverContext& ctx : (*apps)[q.expected].delivered) {
      if (ctx.key == q.key) {
        ++ok;
        hops += ctx.hops;
        break;
      }
    }
  }
  for (auto& app : *apps) {
    app.delivered.clear();
  }
  return {ok, ok > 0 ? hops / ok : 0.0};
}

}  // namespace

int main(int argc, char** argv) {
  ExpArgs args = ExpArgs::Parse(argc, argv);
  ExpJson json(args, "fault_tolerance");
  const int kCrashN = args.smoke ? 200 : 600;
  const int kCrashLookups = args.smoke ? 50 : 200;
  PrintHeader("E6a: routing success under crash failures (l=32)",
              "delivery guaranteed unless floor(l/2)=16 adjacent nodes fail");

  std::printf("%12s %16s %16s %12s\n", "failed", "success (fresh)",
              "success (healed)", "avg hops");
  const std::vector<double> crash_fracs = {0.05, 0.10, 0.20};

  struct CrashResult {
    int ok_fresh = 0;
    int ok_healed = 0;
    double hops_healed = 0;
    JsonValue metrics;
  };
  auto run_crash = [&](size_t index) -> CrashResult {
    const double frac = crash_fracs[index];
    OverlayOptions opts;
    opts.seed = 60 + static_cast<uint64_t>(frac * 100);
    opts.pastry.keep_alive_period = 1 * kMicrosPerSecond;
    opts.pastry.failure_timeout = 3 * kMicrosPerSecond;
    opts.pastry.death_quarantine = 6 * kMicrosPerSecond;
    Overlay overlay(opts);
    overlay.Build(kCrashN);
    std::vector<ExpApp> apps(overlay.size());
    for (size_t i = 0; i < overlay.size(); ++i) {
      overlay.node(i)->SetApp(&apps[i]);
    }
    Rng rng(5);
    int to_kill = static_cast<int>(kCrashN * frac);
    int killed = 0;
    while (killed < to_kill) {
      size_t victim = rng.UniformU64(overlay.size());
      if (overlay.node(victim)->active()) {
        overlay.node(victim)->Fail();
        ++killed;
      }
    }
    CrashResult r;
    // Fresh: routed immediately after the crashes (per-hop acks must cope).
    double hops_fresh;
    std::tie(r.ok_fresh, hops_fresh) =
        BatchLookups(&overlay, &apps, kCrashLookups, 20 * kMicrosPerSecond, &rng);
    (void)hops_fresh;
    // Healed: after the repair protocols ran.
    overlay.Run(30 * kMicrosPerSecond);
    std::tie(r.ok_healed, r.hops_healed) =
        BatchLookups(&overlay, &apps, kCrashLookups, 20 * kMicrosPerSecond, &rng);
    r.metrics = overlay.network().metrics().ToJson();
    return r;
  };
  auto commit_crash = [&](size_t index, CrashResult& r) {
    const double frac = crash_fracs[index];
    std::printf("%11.0f%% %15.1f%% %15.1f%% %12.2f\n", frac * 100,
                100.0 * r.ok_fresh / kCrashLookups,
                100.0 * r.ok_healed / kCrashLookups, r.hops_healed);

    JsonValue row = JsonValue::Object();
    row.Set("failed_frac", frac);
    row.Set("success_fresh", static_cast<double>(r.ok_fresh) / kCrashLookups);
    row.Set("success_healed", static_cast<double>(r.ok_healed) / kCrashLookups);
    row.Set("avg_hops_healed", r.hops_healed);
    json.AddRow("crash_failures", std::move(row));
    json.SetMetricsJson(std::move(r.metrics));
  };

  TrialOptions trial_opts;
  trial_opts.threads = args.threads;
  RunTrials(trial_opts, crash_fracs.size(), run_crash, commit_crash);

  const int kMalN = args.smoke ? 150 : 300;
  const int kQueries = args.smoke ? 40 : 150;
  PrintHeader("E6b: client retries vs malicious forwarders",
              "randomized routing lets a retried query evade bad nodes");
  std::printf("%12s %14s %22s %22s\n", "malicious", "retries", "deterministic",
              "randomized");
  const std::vector<double> mal_fracs = {0.1, 0.2};
  const int retry_budgets[3] = {1, 3, 8};

  struct MalResult {
    double success[2][3] = {};  // [mode][retry_budget]
  };
  auto run_mal = [&](size_t index) -> MalResult {
    const double frac = mal_fracs[index];
    MalResult r;
    for (int mode = 0; mode < 2; ++mode) {
      OverlayOptions opts;
      opts.seed = 77;
      opts.pastry.keep_alive_period = 0;  // no failures here, only droppers
      opts.pastry.per_hop_acks = false;   // malicious nodes ack but drop
      opts.pastry.randomized_routing = mode == 1;
      opts.pastry.randomize_epsilon = 0.3;
      Overlay overlay(opts);
      overlay.Build(kMalN);
      std::vector<ExpApp> apps(overlay.size());
      for (size_t i = 0; i < overlay.size(); ++i) {
        overlay.node(i)->SetApp(&apps[i]);
      }
      Rng rng(123);
      for (size_t i = 0; i < overlay.size(); ++i) {
        if (rng.Bernoulli(frac)) {
          overlay.node(i)->SetMalicious(true);
        }
      }
      // Pick honest (src, key) pairs.
      struct Query {
        PastryNode* src;
        U128 key;
        NodeAddr expected;
        bool reached = false;
      };
      std::vector<Query> queries;
      while (static_cast<int>(queries.size()) < kQueries) {
        U128 key = overlay.RandomKey();
        PastryNode* expected = overlay.GloballyClosestLiveNode(key);
        PastryNode* src = overlay.RandomLiveNode();
        if (src->malicious() || expected->malicious() || src == expected) {
          continue;
        }
        queries.push_back({src, key, expected->addr(), false});
      }
      // Retry rounds; record success at each budget.
      for (int round = 0; round < retry_budgets[2]; ++round) {
        for (Query& q : queries) {
          if (!q.reached) {
            q.src->Route(q.key, 1, {});
          }
        }
        overlay.RunAll();
        for (Query& q : queries) {
          for (const DeliverContext& ctx : apps[q.expected].delivered) {
            if (ctx.key == q.key) {
              q.reached = true;
              break;
            }
          }
        }
        for (auto& app : apps) {
          app.delivered.clear();
        }
        for (int b = 0; b < 3; ++b) {
          if (round + 1 == retry_budgets[b]) {
            int ok = 0;
            for (const Query& q : queries) {
              ok += q.reached ? 1 : 0;
            }
            r.success[mode][b] = 100.0 * ok / kQueries;
          }
        }
      }
    }
    return r;
  };
  auto commit_mal = [&](size_t index, MalResult& r) {
    const double frac = mal_fracs[index];
    for (int b = 0; b < 3; ++b) {
      std::printf("%11.0f%% %14d %21.1f%% %21.1f%%\n", frac * 100,
                  retry_budgets[b], r.success[0][b], r.success[1][b]);

      JsonValue row = JsonValue::Object();
      row.Set("malicious_frac", frac);
      row.Set("retries", retry_budgets[b]);
      row.Set("success_deterministic", r.success[0][b] / 100.0);
      row.Set("success_randomized", r.success[1][b] / 100.0);
      json.AddRow("malicious_forwarders", std::move(row));
    }
  };
  RunTrials(trial_opts, mal_fracs.size(), run_mal, commit_mal);

  std::printf("\nWith retries, the randomized column should rise toward 100%%\n");
  std::printf("while deterministic routing keeps failing on the same path.\n");
  return json.Finish() ? 0 : 1;
}
