// E5 — Which replica does a lookup reach first?
//
// HotOS text: "among 5 replicated copies of a file, Pastry is able to find
// the 'nearest' copy in 76% of all lookups and it finds one of the two
// 'nearest' copies in 92% of all lookups" (ref [11]).
#include <algorithm>

#include "bench/exp_util.h"

int main(int argc, char** argv) {
  using namespace past;
  ExpArgs args = ExpArgs::Parse(argc, argv);
  ExpJson json(args, "replica_locality");
  PrintHeader("E5: proximity rank of the first replica reached (k=5)",
              "nearest replica reached in ~76% of lookups; one of the two "
              "nearest in ~92%");

  const int kN = args.smoke ? 300 : 4000;
  const int kReplicas = 5;
  const int kFiles = args.smoke ? 30 : 300;
  const int kLookupsPerFile = args.smoke ? 2 : 4;

  ExpOverlay net(kN, 31337);
  Overlay& overlay = *net.overlay;

  std::vector<int> rank_counts(kReplicas + 1, 0);
  int total = 0;
  Rng rng(7);

  for (int f = 0; f < kFiles; ++f) {
    U128 file_key = overlay.RandomKey();
    // The replica set: the k live nodes numerically closest to the key
    // (exactly where PAST stores the file).
    std::vector<std::pair<U128, PastryNode*>> ranked;
    for (size_t i = 0; i < overlay.size(); ++i) {
      ranked.emplace_back(overlay.node(i)->id().RingDistance(file_key),
                          overlay.node(i));
    }
    std::sort(ranked.begin(), ranked.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    std::vector<PastryNode*> replicas;
    for (int i = 0; i < kReplicas; ++i) {
      replicas.push_back(ranked[static_cast<size_t>(i)].second);
    }

    for (int l = 0; l < kLookupsPerFile; ++l) {
      PastryNode* client = overlay.node(rng.PickIndex(overlay.size()));
      // Route as a PAST lookup: deliverable at any of the k replica holders.
      auto ctx = net.RouteOnce(file_key, client, kReplicas);
      if (!ctx.has_value()) {
        continue;
      }
      // The node that served the lookup is the first replica holder reached.
      PastryNode* serving = nullptr;
      for (NodeAddr addr : ctx->path) {
        for (PastryNode* r : replicas) {
          if (r->addr() == addr) {
            serving = r;
            break;
          }
        }
        if (serving != nullptr) {
          break;
        }
      }
      if (serving == nullptr) {
        continue;  // delivered at a (k+1)-closest node due to a leaf-view edge
      }
      // Rank the serving replica by proximity to the client.
      std::vector<std::pair<double, PastryNode*>> by_proximity;
      for (PastryNode* r : replicas) {
        by_proximity.emplace_back(overlay.network().Proximity(client->addr(), r->addr()),
                                  r);
      }
      std::sort(by_proximity.begin(), by_proximity.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
      for (int rank = 0; rank < kReplicas; ++rank) {
        if (by_proximity[static_cast<size_t>(rank)].second == serving) {
          rank_counts[static_cast<size_t>(rank)]++;
          ++total;
          break;
        }
      }
    }
  }

  std::printf("N=%d, %d files x %d lookups (%d classified)\n", kN, kFiles,
              kLookupsPerFile, total);
  std::printf("%22s %10s %12s\n", "replica reached", "share", "cumulative");
  double cumulative = 0;
  const char* labels[] = {"nearest", "2nd nearest", "3rd nearest", "4th nearest",
                          "5th nearest"};
  for (int rank = 0; rank < kReplicas; ++rank) {
    double share = 100.0 * rank_counts[static_cast<size_t>(rank)] / total;
    cumulative += share;
    std::printf("%22s %9.1f%% %11.1f%%\n", labels[rank], share, cumulative);

    JsonValue row = JsonValue::Object();
    row.Set("rank", rank + 1);
    row.Set("share", share / 100.0);
    row.Set("cumulative", cumulative / 100.0);
    json.AddRow("replica_rank", std::move(row));
  }
  json.Set("classified_lookups", JsonValue(total));
  json.SetMetrics(overlay.network().metrics());
  std::printf("\nPaper reference points: nearest 76%%, one-of-two-nearest 92%%.\n");
  return json.Finish() ? 0 : 1;
}
