// E13 — Continuous churn: availability and overlay health over time.
//
// HotOS text: nodes "may join the system at any time and may silently leave
// the system without warning. Yet, the system is able to provide strong
// assurances". Nodes cycle through exponentially distributed sessions and
// downtimes while clients keep reading a fixed file set; the table tracks
// availability, replica counts, and maintenance traffic over simulated time.
#include "bench/exp_util.h"
#include "src/obs/timeseries.h"
#include "src/sim/churn.h"

int main(int argc, char** argv) {
  using namespace past;
  ExpArgs args = ExpArgs::Parse(argc, argv);
  ExpJson json(args, "churn");
  PrintHeader("E13: continuous churn (k=4, mean session 300s / down 60s)",
              "files stay available through ongoing silent failures and rejoins");

  PastNetworkOptions options;
  options.overlay.seed = 13001;
  options.overlay.pastry.keep_alive_period = 2 * kMicrosPerSecond;
  options.overlay.pastry.failure_timeout = 6 * kMicrosPerSecond;
  options.overlay.pastry.death_quarantine = 12 * kMicrosPerSecond;
  options.broker.modulus_pool = 8;
  options.past.verify_crypto = false;
  options.past.default_replication = 4;
  options.past.request_timeout = 15 * kMicrosPerSecond;
  options.default_node_capacity = 16 << 20;
  options.default_user_quota = ~0ULL >> 2;
  // Batching knob only: the scale determinism ctest reruns this experiment
  // across granularities and diffs the output byte-for-byte.
  options.overlay.network.timer_wheel_granularity = args.wheel_granularity;
  PastNetwork net(options);
  const int kNodes = args.smoke ? 60 : 150;
  net.Build(kNodes);

  // The client node (index 0) is exempt from churn so reads always originate
  // somewhere live.
  PastNode* client = net.node(0);
  std::vector<FileId> files;
  const int kChurnFiles = args.smoke ? 10 : 30;
  for (int i = 0; i < kChurnFiles; ++i) {
    auto r = net.InsertSyntheticSync(client, "churn-" + std::to_string(i), 8192, 4);
    if (r.ok()) {
      files.push_back(r.value());
    }
  }
  std::printf("stored %zu files at k=4\n\n", files.size());

  ChurnConfig churn_config;
  churn_config.mean_session = 300 * kMicrosPerSecond;
  churn_config.mean_downtime = 60 * kMicrosPerSecond;
  ChurnDriver churn(&net.queue(), churn_config, 99);
  for (size_t i = 1; i < net.size(); ++i) {
    PastNode* node = net.node(i);
    NodeAddr fallback = client->overlay()->addr();
    churn.Manage([node] { node->overlay()->Fail(); },
                 [node, fallback] {
                   if (!node->overlay()->active()) {
                     node->overlay()->Recover(fallback);
                   }
                 });
  }
  churn.Start();

  // Sample overlay health every 10 simulated seconds; the series lands in
  // the JSON as results.timeseries so past_stats (or a notebook) can plot
  // the run's trajectory, not just the per-epoch table.
  TimeSeriesSampler sampler(&net.overlay().network().metrics(),
                            10 * kMicrosPerSecond);
  sampler.Track("net.sent");
  sampler.Track("pastry.failures_detected");
  sampler.Track("past.maintenance_fetches");
  sampler.Track("past.demotions");
  sampler.Track("past.lookup.latency_us");
  sampler.Track("sim.queue_depth");
  sampler.Start(&net.queue());

  std::printf("%10s %8s %14s %14s %14s\n", "time", "live", "availability",
              "avg replicas", "churn events");
  const int kEpochs = args.smoke ? 2 : 6;
  for (int epoch = 1; epoch <= kEpochs; ++epoch) {
    net.Run(120 * kMicrosPerSecond);
    int live = 0;
    for (size_t i = 0; i < net.size(); ++i) {
      live += net.node(i)->overlay()->active() ? 1 : 0;
    }
    int ok = 0;
    double replicas = 0;
    for (const FileId& id : files) {
      ok += net.LookupSync(client, id).ok() ? 1 : 0;
      replicas += net.CountReplicas(id);
    }
    std::printf("%9ds %8d %13.1f%% %14.2f %14llu\n", epoch * 120, live,
                100.0 * ok / static_cast<double>(files.size()),
                replicas / static_cast<double>(files.size()),
                static_cast<unsigned long long>(churn.stats().failures +
                                                churn.stats().recoveries));

    JsonValue row = JsonValue::Object();
    row.Set("time_s", epoch * 120);
    row.Set("live_nodes", live);
    row.Set("availability", ok / static_cast<double>(files.size()));
    row.Set("avg_replicas", replicas / static_cast<double>(files.size()));
    row.Set("churn_events", churn.stats().failures + churn.stats().recoveries);
    json.AddRow("epochs", std::move(row));
  }
  churn.Stop();
  sampler.Stop(&net.queue());
  json.Set("timeseries", sampler.ToJson());
  json.SetMetrics(net.overlay().network().metrics());
  std::printf("\nExpected shape: ~%d%% of nodes are up at any instant\n",
              static_cast<int>(100.0 * 300 / 360));
  std::printf("(session/(session+downtime)); availability stays ~100%% because\n");
  std::printf("maintenance keeps re-replicating onto the current k closest.\n");
  return json.Finish() ? 0 : 1;
}
