// E7 — Global storage utilization vs. insert rejection (the SOSP tables).
//
// HotOS text: "PAST can achieve global storage utilization in excess of 95%,
// while the rate of rejected file insertions remains below 5% and failed
// insertions are heavily biased towards large files" (ref [12]).
//
// Three policies are compared on the same workload:
//   none       — no diversion at all (a replica either fits or the insert dies)
//   replica    — replica diversion into leaf sets
//   replica+file — replica diversion plus salt-retry file diversion
// plus a sweep of the admission thresholds t_pri / t_div.
#include "bench/exp_util.h"
#include "src/workload/workload.h"

namespace {

using namespace past;

struct RunResult {
  double utilization = 0;
  double reject_rate = 0;
  double avg_size_accepted = 0;
  double avg_size_rejected = 0;
  JsonValue metrics;
};

RunResult RunPolicy(bool replica_diversion, int file_retries, double t_pri,
                    double t_div, uint64_t seed, bool smoke) {
  PastNetworkOptions options;
  options.overlay.seed = seed;
  options.overlay.pastry.keep_alive_period = 0;
  options.broker.modulus_pool = 8;
  options.past.verify_crypto = false;  // placement-only experiment
  options.past.cache_policy = CachePolicy::kNone;
  options.past.cache_on_insert_path = false;
  options.past.cache_push_on_lookup = false;
  options.past.enable_replica_diversion = replica_diversion;
  options.past.file_diversion_retries = file_retries;
  options.past.policy.t_pri = t_pri;
  options.past.policy.t_div = t_div;
  options.past.default_replication = 3;
  options.past.request_timeout = 10 * kMicrosPerSecond;
  options.default_user_quota = ~0ULL >> 2;

  // Capacity/file-size regime follows the SOSP evaluation: node disks hold
  // hundreds to thousands of median files (their traces had KB-scale files
  // on hundred-MB disks). The absolute scale is shrunk so the experiment
  // fills the system in a few thousand insertions.
  const int kNodes = smoke ? 40 : 100;
  PastNetwork net(options);
  Rng rng(seed ^ 0xabcdef);
  CapacityModel capacities;
  capacities.base = 8 << 10;  // 16 KiB .. 800 KiB per node (mean ~408 KiB)
  uint64_t total_capacity = 0;
  for (int i = 0; i < kNodes; ++i) {
    uint64_t c = capacities.Sample(&rng);
    total_capacity += c;
    net.AddNode(c, options.default_user_quota);
  }

  FileSizeModel sizes;  // median ~1 KiB, mean ~2 KiB, max 16 KiB
  sizes.lognormal_mu = 6.9;
  sizes.lognormal_sigma = 1.5;
  sizes.pareto_xm = 4 << 10;
  sizes.pareto_alpha = 1.3;
  sizes.max_size = 16 << 10;
  // SOSP methodology: the offered workload is sized to the system — total
  // offered bytes (x k replicas) roughly equals the total storage. The
  // interesting quantities are how much of the storage the policy manages to
  // use and how many of the offered insertions it had to reject.
  RunResult result;
  uint64_t accepted_bytes = 0, rejected_bytes = 0;
  uint64_t offered = 0;
  int accepted = 0, rejected = 0;
  int index = 0;
  while (offered * 3 < total_capacity) {
    uint64_t size = sizes.Sample(&rng);
    offered += size;
    auto r = net.InsertSyntheticSync(net.RandomLiveNode(),
                                     "u" + std::to_string(index++), size, 3);
    if (r.ok()) {
      ++accepted;
      accepted_bytes += size;
    } else {
      ++rejected;
      rejected_bytes += size;
    }
  }
  auto summary = net.Summary();
  result.utilization = summary.utilization();
  result.reject_rate = 100.0 * rejected / (accepted + rejected);
  result.avg_size_accepted = accepted > 0 ? static_cast<double>(accepted_bytes) / accepted : 0;
  result.avg_size_rejected = rejected > 0 ? static_cast<double>(rejected_bytes) / rejected : 0;
  result.metrics = net.overlay().network().metrics().ToJson();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  ExpArgs args = ExpArgs::Parse(argc, argv);
  ExpJson json(args, "storage_util");
  PrintHeader("E7: storage utilization vs insert rejections (k=3)",
              ">95% utilization with <5% rejections; rejections biased large");

  std::printf("%16s %8s %8s %12s %12s %14s %14s\n", "policy", "t_pri", "t_div",
              "utilization", "rejected", "avg acc size", "avg rej size");
  struct PolicyRow {
    const char* name;
    bool replica;
    int retries;
  };
  const std::vector<PolicyRow> policies = {PolicyRow{"none", false, 0},
                                           PolicyRow{"replica", true, 0},
                                           PolicyRow{"replica+file", true, 3}};
  TrialOptions trial_opts;
  trial_opts.threads = args.threads;

  auto run_policy = [&](size_t index) -> RunResult {
    const PolicyRow& p = policies[index];
    return RunPolicy(p.replica, p.retries, 0.1, 0.05, 7001, args.smoke);
  };
  auto commit_policy = [&](size_t index, RunResult& r) {
    const PolicyRow& p = policies[index];
    std::printf("%16s %8.2f %8.2f %11.1f%% %11.1f%% %14.0f %14.0f\n", p.name, 0.1,
                0.05, 100.0 * r.utilization, r.reject_rate, r.avg_size_accepted,
                r.avg_size_rejected);

    JsonValue row = JsonValue::Object();
    row.Set("policy", p.name);
    row.Set("utilization", r.utilization);
    row.Set("reject_rate", r.reject_rate / 100.0);
    row.Set("avg_size_accepted", r.avg_size_accepted);
    row.Set("avg_size_rejected", r.avg_size_rejected);
    json.AddRow("policies", std::move(row));
    json.SetMetricsJson(std::move(r.metrics));
  };
  RunTrials(trial_opts, policies.size(), run_policy, commit_policy);

  std::printf("\nThreshold sweep (policy = replica+file):\n");
  std::printf("%8s %8s %12s %12s\n", "t_pri", "t_div", "utilization", "rejected");
  const std::vector<double> t_pris = {0.05, 0.1, 0.2, 0.5};
  auto run_sweep = [&](size_t index) -> RunResult {
    const double t_pri = t_pris[index];
    return RunPolicy(true, 3, t_pri, t_pri / 2, 7002, args.smoke);
  };
  auto commit_sweep = [&](size_t index, RunResult& r) {
    const double t_pri = t_pris[index];
    std::printf("%8.2f %8.2f %11.1f%% %11.1f%%\n", t_pri, t_pri / 2,
                100.0 * r.utilization, r.reject_rate);

    JsonValue row = JsonValue::Object();
    row.Set("t_pri", t_pri);
    row.Set("t_div", t_pri / 2);
    row.Set("utilization", r.utilization);
    row.Set("reject_rate", r.reject_rate / 100.0);
    json.AddRow("threshold_sweep", std::move(row));
    json.SetMetricsJson(std::move(r.metrics));
  };
  RunTrials(trial_opts, t_pris.size(), run_sweep, commit_sweep);

  std::printf("\nExpected shape (SOSP ref [12]): the full scheme reaches >95%%\n");
  std::printf("utilization with few rejections; without diversion the system\n");
  std::printf("strands capacity on small/unlucky nodes; rejected files are on\n");
  std::printf("average much larger than accepted ones.\n");
  return json.Finish() ? 0 : 1;
}
