// E1 — Routing hop count vs. network size.
//
// HotOS text: "The number of PAST nodes traversed while routing a client
// request is at most logarithmic in the total number of PAST nodes" and
// "Pastry can route to the numerically closest node in less than
// ceil(log_2b N) steps on average (b = 4)". Mirrors the hops-vs-N figure of
// the Pastry evaluation (ref [11]).
#include "bench/exp_util.h"

int main() {
  using namespace past;
  PrintHeader("E1: average routing hops vs N (b=4, l=32)",
              "avg hops < ceil(log_16 N); delivery always at closest node");

  std::printf("%8s %10s %10s %10s %10s %12s\n", "N", "lookups", "avg hops",
              "max hops", "bound", "correct");
  for (int n : {256, 1024, 4096, 10000}) {
    ExpOverlay net(n, 42 + static_cast<uint64_t>(n));
    const int lookups = n >= 4096 ? 500 : 1000;
    double total_hops = 0;
    int max_hops = 0;
    int correct = 0;
    for (int i = 0; i < lookups; ++i) {
      U128 key = net.overlay->RandomKey();
      PastryNode* expected = net.overlay->GloballyClosestLiveNode(key);
      auto ctx = net.RouteOnce(key);
      if (!ctx.has_value()) {
        continue;
      }
      total_hops += ctx->hops;
      max_hops = std::max(max_hops, static_cast<int>(ctx->hops));
      if (net.overlay->node(ctx->path.back())->id() == expected->id()) {
        ++correct;
      }
    }
    double bound = std::ceil(Log16(n));
    std::printf("%8d %10d %10.2f %10d %10.0f %11.1f%%\n", n, lookups,
                total_hops / lookups, max_hops, bound, 100.0 * correct / lookups);
  }

  // Hop-count distribution at N = 4096 (the Pastry paper's figure 4 analog).
  std::printf("\nHop distribution, N=4096 (expect mass at <= ceil(log_16 N) = 3):\n");
  ExpOverlay net(4096, 777);
  std::vector<int> histogram(10, 0);
  const int lookups = 1000;
  for (int i = 0; i < lookups; ++i) {
    auto ctx = net.RouteOnce(net.overlay->RandomKey());
    if (ctx.has_value() && ctx->hops < histogram.size() * 1u) {
      histogram[ctx->hops]++;
    }
  }
  for (int h = 0; h < 7; ++h) {
    std::printf("  hops=%d : %5.1f%% %s\n", h, 100.0 * histogram[h] / lookups,
                std::string(static_cast<size_t>(60.0 * histogram[h] / lookups), '#')
                    .c_str());
  }
  return 0;
}
