// E1 — Routing hop count vs. network size.
//
// HotOS text: "The number of PAST nodes traversed while routing a client
// request is at most logarithmic in the total number of PAST nodes" and
// "Pastry can route to the numerically closest node in less than
// ceil(log_2b N) steps on average (b = 4)". Mirrors the hops-vs-N figure of
// the Pastry evaluation (ref [11]).
//
// Trials (one per N, plus the fixed-N hop-distribution run) are independent
// simulations and fan out across --threads workers; results commit in trial
// order so the output is identical at any thread count.
#include "bench/exp_util.h"

int main(int argc, char** argv) {
  using namespace past;
  ExpArgs args = ExpArgs::Parse(argc, argv);
  ExpJson json(args, "routing_hops");
  ExpTrace trace(args, "routing_hops");

  PrintHeader("E1: average routing hops vs N (b=4, l=32)",
              "avg hops < ceil(log_16 N); delivery always at closest node");

  const std::vector<int> sizes =
      args.smoke ? std::vector<int>{64, 256}
                 : std::vector<int>{256, 512, 1024, 2048, 4096, 6144, 8192, 10000};
  const int dist_n = args.smoke ? 256 : 4096;
  const int dist_lookups = args.smoke ? 100 : 1000;
  constexpr size_t kHistBuckets = 10;

  struct TrialResult {
    // hops-vs-N trials
    int lookups = 0;
    double total_hops = 0;
    int max_hops = 0;
    int correct = 0;
    // distribution trial (the last one)
    std::vector<int> histogram;
    JsonValue metrics;
    JsonValue spans;  // span dump when --trace-out armed the tracer
    uint64_t spans_dropped = 0;
  };

  const size_t trial_count = sizes.size() + 1;  // + the distribution run
  auto run = [&](size_t index) -> TrialResult {
    TrialResult r;
    if (index < sizes.size()) {
      const int n = sizes[index];
      ExpOverlay net(n, 42 + static_cast<uint64_t>(n));
      r.lookups = args.smoke ? 100 : (n >= 4096 ? 500 : 1000);
      for (int i = 0; i < r.lookups; ++i) {
        U128 key = net.overlay->RandomKey();
        PastryNode* expected = net.overlay->GloballyClosestLiveNode(key);
        auto ctx = net.RouteOnce(key);
        if (!ctx.has_value()) {
          continue;
        }
        r.total_hops += ctx->hops;
        r.max_hops = std::max(r.max_hops, static_cast<int>(ctx->hops));
        if (net.overlay->node(ctx->path.back())->id() == expected->id()) {
          ++r.correct;
        }
      }
      return r;
    }
    // Hop-count distribution at a fixed N (the Pastry paper's figure 4
    // analog).
    ExpOverlay net(dist_n, 777);
    if (trace.enabled()) {
      // Trace the distribution run: every hop of every lookup becomes a
      // "pastry.hop" span. Arming the tracer changes no simulation decision,
      // so traced and untraced runs stay byte-identical in --json output.
      net.overlay->network().tracer().Enable();
    }
    r.histogram.assign(kHistBuckets, 0);
    for (int i = 0; i < dist_lookups; ++i) {
      auto ctx = net.RouteOnce(net.overlay->RandomKey());
      if (ctx.has_value() && ctx->hops < r.histogram.size() * 1u) {
        r.histogram[ctx->hops]++;
      }
    }
    // The registry holds the hop-count histogram, per-rule hop attribution,
    // and message totals accumulated over the distribution run; snapshot it
    // here, before the worker's simulation stack dies.
    r.metrics = net.overlay->network().metrics().ToJson();
    if (trace.enabled()) {
      r.spans = net.overlay->network().tracer().SpansJson();
      r.spans_dropped = net.overlay->network().tracer().dropped();
    }
    return r;
  };

  auto commit = [&](size_t index, TrialResult& r) {
    if (index == 0) {
      std::printf("%8s %10s %10s %10s %10s %12s\n", "N", "lookups", "avg hops",
                  "max hops", "bound", "correct");
    }
    if (index < sizes.size()) {
      const int n = sizes[index];
      double bound = std::ceil(Log16(n));
      std::printf("%8d %10d %10.2f %10d %10.0f %11.1f%%\n", n, r.lookups,
                  r.total_hops / r.lookups, r.max_hops, bound,
                  100.0 * r.correct / r.lookups);
      JsonValue row = JsonValue::Object();
      row.Set("n", n);
      row.Set("lookups", r.lookups);
      row.Set("avg_hops", r.total_hops / r.lookups);
      row.Set("max_hops", r.max_hops);
      row.Set("bound", bound);
      row.Set("correct_frac", static_cast<double>(r.correct) / r.lookups);
      json.AddRow("hops_vs_n", std::move(row));
      return;
    }
    std::printf(
        "\nHop distribution, N=%d (expect mass at <= ceil(log_16 N) = %.0f):\n",
        dist_n, std::ceil(Log16(dist_n)));
    for (int h = 0; h < 7; ++h) {
      std::printf(
          "  hops=%d : %5.1f%% %s\n", h, 100.0 * r.histogram[h] / dist_lookups,
          std::string(static_cast<size_t>(60.0 * r.histogram[h] / dist_lookups),
                      '#')
              .c_str());
    }
    JsonValue dist = JsonValue::Object();
    dist.Set("n", dist_n);
    dist.Set("lookups", dist_lookups);
    JsonValue hist = JsonValue::Array();
    for (size_t h = 0; h < r.histogram.size(); ++h) {
      JsonValue bucket = JsonValue::Object();
      bucket.Set("hops", static_cast<int>(h));
      bucket.Set("count", r.histogram[h]);
      hist.Append(std::move(bucket));
    }
    dist.Set("histogram", std::move(hist));
    json.Set("hop_distribution", std::move(dist));
    json.SetMetricsJson(std::move(r.metrics));
    trace.SetSpansJson(std::move(r.spans), r.spans_dropped);
  };

  TrialOptions trial_opts;
  trial_opts.threads = args.threads;
  // Overlay construction dominates trial cost; run the big overlays first so
  // the pool drains evenly.
  std::vector<double> costs;
  for (int n : sizes) {
    costs.push_back(static_cast<double>(n));
  }
  costs.push_back(static_cast<double>(dist_n));
  trial_opts.work_order = LargestFirstOrder(costs);
  RunTrials(trial_opts, trial_count, run, commit);

  return json.Finish() && trace.Finish() ? 0 : 1;
}
