// E1 — Routing hop count vs. network size.
//
// HotOS text: "The number of PAST nodes traversed while routing a client
// request is at most logarithmic in the total number of PAST nodes" and
// "Pastry can route to the numerically closest node in less than
// ceil(log_2b N) steps on average (b = 4)". Mirrors the hops-vs-N figure of
// the Pastry evaluation (ref [11]).
#include "bench/exp_util.h"

int main(int argc, char** argv) {
  using namespace past;
  ExpArgs args = ExpArgs::Parse(argc, argv);
  ExpJson json(args, "routing_hops");

  PrintHeader("E1: average routing hops vs N (b=4, l=32)",
              "avg hops < ceil(log_16 N); delivery always at closest node");

  const std::vector<int> sizes =
      args.smoke ? std::vector<int>{64, 256} : std::vector<int>{256, 1024, 4096, 10000};

  std::printf("%8s %10s %10s %10s %10s %12s\n", "N", "lookups", "avg hops",
              "max hops", "bound", "correct");
  for (int n : sizes) {
    ExpOverlay net(n, 42 + static_cast<uint64_t>(n));
    const int lookups = args.smoke ? 100 : (n >= 4096 ? 500 : 1000);
    double total_hops = 0;
    int max_hops = 0;
    int correct = 0;
    for (int i = 0; i < lookups; ++i) {
      U128 key = net.overlay->RandomKey();
      PastryNode* expected = net.overlay->GloballyClosestLiveNode(key);
      auto ctx = net.RouteOnce(key);
      if (!ctx.has_value()) {
        continue;
      }
      total_hops += ctx->hops;
      max_hops = std::max(max_hops, static_cast<int>(ctx->hops));
      if (net.overlay->node(ctx->path.back())->id() == expected->id()) {
        ++correct;
      }
    }
    double bound = std::ceil(Log16(n));
    std::printf("%8d %10d %10.2f %10d %10.0f %11.1f%%\n", n, lookups,
                total_hops / lookups, max_hops, bound, 100.0 * correct / lookups);

    JsonValue row = JsonValue::Object();
    row.Set("n", n);
    row.Set("lookups", lookups);
    row.Set("avg_hops", total_hops / lookups);
    row.Set("max_hops", max_hops);
    row.Set("bound", bound);
    row.Set("correct_frac", static_cast<double>(correct) / lookups);
    json.AddRow("hops_vs_n", std::move(row));
  }

  // Hop-count distribution at a fixed N (the Pastry paper's figure 4 analog).
  const int dist_n = args.smoke ? 256 : 4096;
  const int dist_lookups = args.smoke ? 100 : 1000;
  std::printf("\nHop distribution, N=%d (expect mass at <= ceil(log_16 N) = %.0f):\n",
              dist_n, std::ceil(Log16(dist_n)));
  ExpOverlay net(dist_n, 777);
  std::vector<int> histogram(10, 0);
  for (int i = 0; i < dist_lookups; ++i) {
    auto ctx = net.RouteOnce(net.overlay->RandomKey());
    if (ctx.has_value() && ctx->hops < histogram.size() * 1u) {
      histogram[ctx->hops]++;
    }
  }
  for (int h = 0; h < 7; ++h) {
    std::printf("  hops=%d : %5.1f%% %s\n", h,
                100.0 * histogram[h] / dist_lookups,
                std::string(static_cast<size_t>(60.0 * histogram[h] / dist_lookups),
                            '#')
                    .c_str());
  }

  // Machine-readable summary of the final overlay: the registry already holds
  // the hop-count histogram, per-rule hop attribution, and message totals
  // accumulated over the distribution run.
  const MetricsRegistry& metrics = net.overlay->network().metrics();
  JsonValue dist = JsonValue::Object();
  dist.Set("n", dist_n);
  dist.Set("lookups", dist_lookups);
  JsonValue hist = JsonValue::Array();
  for (size_t h = 0; h < histogram.size(); ++h) {
    JsonValue bucket = JsonValue::Object();
    bucket.Set("hops", static_cast<int>(h));
    bucket.Set("count", histogram[h]);
    hist.Append(std::move(bucket));
  }
  dist.Set("histogram", std::move(hist));
  json.Set("hop_distribution", std::move(dist));
  json.SetMetrics(metrics);

  return json.Finish() ? 0 : 1;
}
