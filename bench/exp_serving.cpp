// exp_serving — open-loop serving benchmark for the sharded group-commit
// storage engine: sustained ops/sec against a fixed p99 latency SLO.
//
// The driver is open-loop: every operation has a Poisson-scheduled arrival
// time (src/workload/serving.h) and its latency is measured from that
// scheduled arrival to completion, so queueing delay under overload lands in
// the percentiles instead of throttling the offered load. The sweep raises
// the offered rate and reports, per rate, achieved throughput and
// p50/p99/p999 insert/lookup latency out of the LogHistogram registry; the
// summary row is the highest offered rate whose insert p99 still meets the
// SLO — the "ops/sec at fixed p99" number BENCH_serving.json records.
//
// Flags beyond the shared exp_* set (--json/--smoke/--threads):
//   --shards <n>    shard count for the engine (default 4)
//   --slo-us <n>    insert p99 SLO in microseconds (default 50000 — wide
//                   enough that environment fsync jitter does not hide the
//                   saturation knee, tight enough that overload fails it)
//   --rate <r>      benchmark a single offered rate instead of the sweep
//   --seed <n>      workload seed (default 1)
//   --check         determinism mode: apply the schedule's logical ops (no
//                   pacing) through the full concurrent engine, then print a
//                   digest of the recovered store state. Output is
//                   byte-identical for any shard/thread combination —
//                   tools/serving_determinism_check.sh pins that.
#include <chrono>
#include <cinttypes>
#include <cstring>
#include <filesystem>
#include <thread>

#include "bench/exp_util.h"
#include "src/common/check.h"
#include "src/common/crc32c.h"
#include "src/diskstore/sharded_store.h"
#include "src/workload/serving.h"

namespace past {
namespace {

struct ServingArgs {
  std::string json_path;
  bool smoke = false;
  bool check = false;
  int threads = 4;    // serving worker threads
  uint32_t shards = 4;
  double slo_us = 50000.0;
  double rate = 0.0;  // 0 = sweep
  uint64_t seed = 1;
};

[[noreturn]] void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--json <path>] [--smoke] [--threads <n>]"
               " [--shards <n>] [--slo-us <n>] [--rate <r>] [--seed <n>]"
               " [--check]\n",
               argv0);
  std::exit(2);
}

ServingArgs ParseArgs(int argc, char** argv) {
  ServingArgs args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      args.json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      args.smoke = true;
    } else if (std::strcmp(argv[i], "--check") == 0) {
      args.check = true;
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      args.threads = std::atoi(argv[++i]);
      if (args.threads < 1) {
        Usage(argv[0]);
      }
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      int n = std::atoi(argv[++i]);
      if (n < 1) {
        Usage(argv[0]);
      }
      args.shards = static_cast<uint32_t>(n);
    } else if (std::strcmp(argv[i], "--slo-us") == 0 && i + 1 < argc) {
      args.slo_us = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--rate") == 0 && i + 1 < argc) {
      args.rate = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      args.seed = static_cast<uint64_t>(std::atoll(argv[++i]));
    } else {
      Usage(argv[0]);
    }
  }
  return args;
}

// Self-cleaning mkdtemp directory, one per engine instance.
struct ScratchDir {
  ScratchDir() {
    std::string tmpl =
        (std::filesystem::temp_directory_path() / "past-serving-XXXXXX")
            .string();
    PAST_CHECK_MSG(mkdtemp(tmpl.data()) != nullptr, "mkdtemp failed");
    path = tmpl;
  }
  ~ScratchDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  std::string path;
};

DiskStoreOptions EngineOptions(const ServingArgs& args,
                               MetricsRegistry* metrics) {
  DiskStoreOptions options;
  options.shard_count = args.shards;
  options.group_commit = true;
  options.commit_batch_max = 64;
  options.commit_delay_us = 200;
  options.background_compaction = true;
  options.cache_bytes = 8ULL << 20;
  options.metrics = metrics;
  return options;
}

ServingWorkloadOptions WorkloadOptions(const ServingArgs& args) {
  ServingWorkloadOptions options;
  options.seed = args.seed;
  options.prepopulate = args.smoke ? 256 : 2048;
  options.op_count = args.smoke ? 600 : 8000;
  options.insert_fraction = 0.2;
  options.zipf_s = 0.8;
  options.max_value_bytes = 16ULL << 10;
  return options;
}

struct RateResult {
  double offered = 0.0;
  double achieved = 0.0;
  uint64_t inserts = 0;
  uint64_t lookups = 0;
  uint64_t errors = 0;
  double insert_p50 = 0.0, insert_p99 = 0.0, insert_p999 = 0.0;
  double lookup_p50 = 0.0, lookup_p99 = 0.0, lookup_p999 = 0.0;
  JsonValue metrics = JsonValue::Object();
};

// Runs one offered rate against a fresh engine and returns the latency
// percentiles from the run's LogHistogram registry.
RateResult RunRate(const ServingArgs& args, double rate) {
  ScratchDir scratch;
  MetricsRegistry metrics;
  Result<std::unique_ptr<ShardedDiskStore>> opened =
      ShardedDiskStore::Open(scratch.path + "/store",
                             EngineOptions(args, &metrics));
  PAST_CHECK(opened.ok());
  ShardedDiskStore* store = opened.value().get();

  ServingWorkloadOptions wopts = WorkloadOptions(args);
  wopts.arrival_rate = rate;
  const ServingSchedule schedule = GenerateServingSchedule(wopts);
  for (const ServingOp& op : schedule.prepopulate) {
    Bytes value = ServingValue(op.value_seed, op.value_size);
    PAST_CHECK(store->Put(op.key, ByteSpan(value.data(), value.size())) ==
               StatusCode::kOk);
  }
  PAST_CHECK(store->Sync() == StatusCode::kOk);

  const int threads = args.threads;
  std::vector<std::vector<double>> insert_lat(threads);
  std::vector<std::vector<double>> lookup_lat(threads);
  std::vector<uint64_t> errors(threads, 0);
  std::vector<std::chrono::steady_clock::time_point> last_done(threads);

  const auto start = std::chrono::steady_clock::now();
  auto worker = [&](int t) {
    for (size_t i = static_cast<size_t>(t); i < schedule.ops.size();
         i += static_cast<size_t>(threads)) {
      const ServingOp& op = schedule.ops[i];
      const auto target = start + std::chrono::microseconds(op.arrival_us);
      std::this_thread::sleep_until(target);
      if (op.type == ServingOp::Type::kInsert) {
        Bytes value = ServingValue(op.value_seed, op.value_size);
        if (store->Put(op.key, ByteSpan(value.data(), value.size())) !=
            StatusCode::kOk) {
          ++errors[t];
        }
      } else {
        Result<Bytes> got = store->Get(op.key);
        if (!got.ok()) {
          ++errors[t];
        }
      }
      const auto done = std::chrono::steady_clock::now();
      last_done[t] = done;
      // Open-loop latency: completion minus *scheduled* arrival, so time
      // spent queued behind a saturated engine counts against the SLO.
      const double latency_us =
          std::chrono::duration<double, std::micro>(done - target).count();
      (op.type == ServingOp::Type::kInsert ? insert_lat : lookup_lat)[t]
          .push_back(latency_us);
    }
  };
  std::vector<std::thread> pool;
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back(worker, t);
  }
  for (auto& t : pool) {
    t.join();
  }

  auto end = start;
  for (const auto& done : last_done) {
    end = std::max(end, done);
  }
  const double elapsed_s =
      std::chrono::duration<double>(end - start).count();

  // Merge worker-local samples into the shared registry on this thread —
  // the registry's instruments are not thread-safe.
  LogHistogram* h_insert =
      metrics.GetLogHistogram("serving.insert.latency_us");
  LogHistogram* h_lookup =
      metrics.GetLogHistogram("serving.lookup.latency_us");
  RateResult result;
  result.offered = rate;
  for (int t = 0; t < threads; ++t) {
    for (double v : insert_lat[t]) {
      h_insert->Observe(v);
    }
    for (double v : lookup_lat[t]) {
      h_lookup->Observe(v);
    }
    result.inserts += insert_lat[t].size();
    result.lookups += lookup_lat[t].size();
    result.errors += errors[t];
  }
  result.achieved =
      elapsed_s > 0.0
          ? static_cast<double>(schedule.ops.size()) / elapsed_s
          : 0.0;
  result.insert_p50 = h_insert->p50();
  result.insert_p99 = h_insert->p99();
  result.insert_p999 = h_insert->p999();
  result.lookup_p50 = h_lookup->p50();
  result.lookup_p99 = h_lookup->p99();
  result.lookup_p999 = h_lookup->p999();
  // Flush acknowledged state and snapshot the registry after the engine's
  // worker threads quiesce (destructor joins them).
  PAST_CHECK(store->Sync() == StatusCode::kOk);
  opened.value().reset();
  result.metrics = metrics.ToJson();
  return result;
}

// --check: apply the schedule's logical operations through the concurrent
// engine, reopen, and print a digest of the durable state plus
// order-independent lookup aggregates. Everything printed is a deterministic
// function of (seed, op_count) alone — not of shard count, thread count, or
// timing — which is exactly what the determinism gate diffs.
int RunCheck(const ServingArgs& args) {
  ScratchDir scratch;
  const std::string dir = scratch.path + "/store";
  const ServingSchedule schedule = GenerateServingSchedule(WorkloadOptions(args));
  uint64_t lookups_found = 0;
  uint64_t lookup_crc_sum = 0;
  {
    MetricsRegistry metrics;
    Result<std::unique_ptr<ShardedDiskStore>> opened =
        ShardedDiskStore::Open(dir, EngineOptions(args, &metrics));
    PAST_CHECK(opened.ok());
    ShardedDiskStore* store = opened.value().get();
    for (const ServingOp& op : schedule.prepopulate) {
      Bytes value = ServingValue(op.value_seed, op.value_size);
      PAST_CHECK(store->Put(op.key, ByteSpan(value.data(), value.size())) ==
                 StatusCode::kOk);
    }
    const int threads = args.threads;
    std::vector<uint64_t> found(threads, 0);
    std::vector<uint64_t> crc_sum(threads, 0);
    auto worker = [&](int t) {
      for (size_t i = static_cast<size_t>(t); i < schedule.ops.size();
           i += static_cast<size_t>(threads)) {
        const ServingOp& op = schedule.ops[i];
        if (op.type == ServingOp::Type::kInsert) {
          Bytes value = ServingValue(op.value_seed, op.value_size);
          PAST_CHECK(store->Put(op.key, ByteSpan(value.data(), value.size())) ==
                     StatusCode::kOk);
        } else {
          Result<Bytes> got = store->Get(op.key);
          if (got.ok()) {
            ++found[t];
            // Wrapping sum: commutative, so thread partitioning cannot
            // change the aggregate.
            crc_sum[t] += Crc32c(
                ByteSpan(got.value().data(), got.value().size()));
          }
        }
      }
    };
    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t) {
      pool.emplace_back(worker, t);
    }
    for (auto& t : pool) {
      t.join();
    }
    for (int t = 0; t < threads; ++t) {
      lookups_found += found[t];
      lookup_crc_sum += crc_sum[t];
    }
    PAST_CHECK(store->Sync() == StatusCode::kOk);
  }

  // Reopen cold (no worker threads) and digest the recovered state in key
  // order.
  DiskStoreOptions reopen;
  reopen.shard_count = args.shards;
  Result<std::unique_ptr<ShardedDiskStore>> opened =
      ShardedDiskStore::Open(dir, reopen);
  PAST_CHECK(opened.ok());
  ShardedDiskStore* store = opened.value().get();
  std::vector<U160> keys = store->Keys();
  std::sort(keys.begin(), keys.end());
  uint32_t digest = 0;
  for (const U160& key : keys) {
    digest = Crc32cExtend(digest,
                          ByteSpan(key.bytes().data(), key.bytes().size()));
    Result<Bytes> value = store->Get(key);
    PAST_CHECK(value.ok());
    const uint32_t vcrc =
        Crc32c(ByteSpan(value.value().data(), value.value().size()));
    const uint8_t vcrc_bytes[4] = {
        static_cast<uint8_t>(vcrc), static_cast<uint8_t>(vcrc >> 8),
        static_cast<uint8_t>(vcrc >> 16), static_cast<uint8_t>(vcrc >> 24)};
    digest = Crc32cExtend(digest, ByteSpan(vcrc_bytes, 4));
  }
  std::printf("ops=%zu prepopulate=%zu\n", schedule.ops.size(),
              schedule.prepopulate.size());
  std::printf("lookups_found=%" PRIu64 " lookup_crc=%016" PRIx64 "\n",
              lookups_found, lookup_crc_sum);
  std::printf("state: keys=%zu digest=%08x\n", keys.size(), digest);
  return 0;
}

int Main(int argc, char** argv) {
  const ServingArgs args = ParseArgs(argc, argv);
  if (args.check) {
    return RunCheck(args);
  }

  PrintHeader("PAST serving path: open-loop load sweep (sharded group-commit engine)",
              "a storage utility must sustain heavy serving traffic; ops/sec "
              "is meaningful only at a latency SLO");
  std::printf("engine: %u shards, group commit (batch<=64, window 200us), "
              "background compaction, 8 MiB cache; %d serving threads\n",
              args.shards, args.threads);

  std::vector<double> rates;
  if (args.rate > 0.0) {
    rates.push_back(args.rate);
  } else if (args.smoke) {
    rates = {400.0, 800.0};
  } else {
    rates = {1000.0, 2000.0, 4000.0, 8000.0, 16000.0, 32000.0};
  }

  ExpArgs exp_args;
  exp_args.json_path = args.json_path;
  exp_args.smoke = args.smoke;
  ExpJson json(exp_args, "serving");

  std::printf("\n%10s %10s %8s %8s %7s  %27s  %27s\n", "offered/s", "achieved/s",
              "inserts", "lookups", "errors", "insert p50/p99/p999 (us)",
              "lookup p50/p99/p999 (us)");
  double slo_rate = 0.0;
  double slo_achieved = 0.0;
  JsonValue final_metrics = JsonValue::Object();
  for (double rate : rates) {
    RateResult r = RunRate(args, rate);
    std::printf("%10.0f %10.0f %8" PRIu64 " %8" PRIu64 " %7" PRIu64
                "  %8.0f /%8.0f /%8.0f  %8.0f /%8.0f /%8.0f\n",
                r.offered, r.achieved, r.inserts, r.lookups, r.errors,
                r.insert_p50, r.insert_p99, r.insert_p999, r.lookup_p50,
                r.lookup_p99, r.lookup_p999);
    JsonValue row = JsonValue::Object();
    row.Set("offered_per_sec", r.offered);
    row.Set("achieved_per_sec", r.achieved);
    row.Set("inserts", static_cast<double>(r.inserts));
    row.Set("lookups", static_cast<double>(r.lookups));
    row.Set("errors", static_cast<double>(r.errors));
    row.Set("insert_p50_us", r.insert_p50);
    row.Set("insert_p99_us", r.insert_p99);
    row.Set("insert_p999_us", r.insert_p999);
    row.Set("lookup_p50_us", r.lookup_p50);
    row.Set("lookup_p99_us", r.lookup_p99);
    row.Set("lookup_p999_us", r.lookup_p999);
    json.AddRow("sweep", std::move(row));
    if (r.errors == 0 && r.insert_p99 <= args.slo_us &&
        r.achieved > slo_achieved) {
      slo_rate = r.offered;
      slo_achieved = r.achieved;
    }
    final_metrics = std::move(r.metrics);
  }

  std::printf("\nSLO: insert p99 <= %.0f us -> max sustained %.0f ops/sec "
              "(offered %.0f/s)\n",
              args.slo_us, slo_achieved, slo_rate);
  JsonValue slo = JsonValue::Object();
  slo.Set("slo_p99_us", args.slo_us);
  slo.Set("max_ops_per_sec", slo_achieved);
  slo.Set("offered_per_sec", slo_rate);
  slo.Set("shards", static_cast<double>(args.shards));
  slo.Set("threads", static_cast<double>(args.threads));
  json.Set("slo", std::move(slo));
  // The metrics snapshot travels from the last (highest-rate) engine run:
  // serving.* latency histograms plus the engine's disk.commit.*,
  // disk.compact.*, and disk.cache.* instruments.
  json.SetMetricsJson(std::move(final_metrics));
  json.Finish();
  return 0;
}

}  // namespace
}  // namespace past

int main(int argc, char** argv) { return past::Main(argc, argv); }
