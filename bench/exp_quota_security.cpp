// E9 — The security architecture in action.
//
// HotOS text (Section 2.1): quotas bound each user's consumption; file
// certificates defeat forged inserts and en-route corruption; reclaim
// certificates stop unauthorized reclaims; random audits expose nodes that
// cheat on their contributed storage.
#include "bench/exp_util.h"

#include "src/crypto/sha256.h"

int main(int argc, char** argv) {
  using namespace past;
  ExpArgs args = ExpArgs::Parse(argc, argv);
  ExpJson json(args, "quota_security");
  PrintHeader("E9: quota enforcement, certificate checks, audits (60 nodes)",
              "quota blocks over-use; forged operations rejected; audits "
              "expose freeloaders");

  PastNetworkOptions options;
  options.overlay.seed = 9001;
  options.overlay.pastry.keep_alive_period = 0;
  options.broker.modulus_pool = 4;
  options.past.request_timeout = 10 * kMicrosPerSecond;
  options.default_user_quota = 100 << 10;  // 100 KiB per user
  options.default_node_capacity = 8 << 20;
  PastNetwork net(options);
  net.Build(60);

  // --- quota enforcement -----------------------------------------------------
  PastNode* user = net.node(1);
  int accepted = 0, quota_denied = 0;
  for (int i = 0; i < 30; ++i) {
    auto r = net.InsertSyntheticSync(user, "q" + std::to_string(i), 4 << 10, 3);
    if (r.ok()) {
      ++accepted;
    } else if (r.status() == StatusCode::kQuotaExceeded) {
      ++quota_denied;
    }
  }
  std::printf("quota: user quota %u KiB, k=3, 4 KiB files\n", 100);
  std::printf("  inserts accepted:       %3d (expect 8: 8*3*4KiB=96KiB <= 100KiB)\n",
              accepted);
  std::printf("  denied (quota):         %3d\n", quota_denied);
  std::printf("  card usage:             %llu bytes of %llu\n",
              static_cast<unsigned long long>(user->card().quota_used()),
              static_cast<unsigned long long>(user->card().usage_quota()));

  // Reclaim restores quota.
  FileId some_file;
  PastNode* user2 = net.node(2);
  auto tracked = net.InsertSyntheticSync(user2, "tracked", 8 << 10, 3);
  if (tracked.ok()) {
    some_file = tracked.value();
    uint64_t used_before = user2->card().quota_used();
    IgnoreStatus(net.ReclaimSync(user2, some_file));  // demo: quota delta printed below
    std::printf("  reclaim credit:         %llu -> %llu bytes used\n",
                static_cast<unsigned long long>(used_before),
                static_cast<unsigned long long>(user2->card().quota_used()));
  }

  // --- forged operations -------------------------------------------------------
  std::printf("\nforged operations:\n");
  // (a) Certificate from an uncertified card.
  Rng rng(3);
  RsaKeyPair rogue_key = RsaKeyPair::Generate(256, &rng);
  Smartcard rogue(rogue_key, Bytes(32, 0xaa), net.broker().public_key(), 1 << 30, 0,
                  INT64_MAX);
  Bytes content = ToBytes("bogus");
  auto digest = Sha256::Hash(ByteSpan(content.data(), content.size()));
  auto bad_cert = rogue.IssueFileCertificate("bogus", content.size(),
                                             ByteSpan(digest.data(), digest.size()),
                                             3, 1, 0);
  InsertRequestPayload forged_insert;
  forged_insert.cert = bad_cert.value();
  forged_insert.content = content;
  forged_insert.client = net.node(5)->overlay()->descriptor();
  net.node(5)->overlay()->Route(bad_cert.value().file_id.Top128(),
                                static_cast<uint32_t>(PastOp::kInsertRequest),
                                forged_insert.Encode());
  net.Run(10 * kMicrosPerSecond);
  std::printf("  uncertified-card insert:  %d replicas stored (expect 0)\n",
              net.CountReplicas(bad_cert.value().file_id));
  json.Set("forged_insert_replicas",
           JsonValue(net.CountReplicas(bad_cert.value().file_id)));

  // (b) Content corrupted en route.
  auto good_cert = net.node(6)->card().IssueFileCertificate(
      "good", content.size(), ByteSpan(digest.data(), digest.size()), 3, 2, 0);
  InsertRequestPayload corrupted;
  corrupted.cert = good_cert.value();
  corrupted.content = ToBytes("bOgus");
  corrupted.client = net.node(6)->overlay()->descriptor();
  net.node(6)->overlay()->Route(good_cert.value().file_id.Top128(),
                                static_cast<uint32_t>(PastOp::kInsertRequest),
                                corrupted.Encode());
  net.Run(10 * kMicrosPerSecond);
  std::printf("  corrupted-content insert: %d replicas stored (expect 0)\n",
              net.CountReplicas(good_cert.value().file_id));
  json.Set("corrupted_insert_replicas",
           JsonValue(net.CountReplicas(good_cert.value().file_id)));

  // (c) Unauthorized reclaim.
  auto victim_file = net.InsertSync(net.node(7), "victim", ToBytes("keep"), 3);
  ReclaimRequestPayload forged_reclaim;
  forged_reclaim.cert =
      net.node(8)->card().IssueReclaimCertificate(victim_file.value(), 0);
  forged_reclaim.client = net.node(8)->overlay()->descriptor();
  net.node(8)->overlay()->Route(victim_file.value().Top128(),
                                static_cast<uint32_t>(PastOp::kReclaimRequest),
                                forged_reclaim.Encode());
  net.Run(10 * kMicrosPerSecond);
  std::printf("  forged reclaim:           %d replicas survive (expect 3)\n",
              net.CountReplicas(victim_file.value()));
  json.Set("forged_reclaim_survivors",
           JsonValue(net.CountReplicas(victim_file.value())));

  // --- audits -------------------------------------------------------------------
  std::printf("\naudits (honest network vs all-freeloader network):\n");
  auto audit_rate = [](bool honest, uint64_t seed) {
    PastNetworkOptions o;
    o.overlay.seed = seed;
    o.overlay.pastry.keep_alive_period = 0;
    o.broker.modulus_pool = 4;
    o.past.honest = honest;
    o.past.request_timeout = 10 * kMicrosPerSecond;
    PastNetwork n(o);
    n.Build(20);
    PastNode* client = n.node(0);
    int passed = 0, audits = 0;
    for (int f = 0; f < 10; ++f) {
      auto inserted =
          n.InsertSync(client, "a" + std::to_string(f), Bytes(256, 1), 3);
      if (!inserted.ok()) {
        continue;
      }
      const FileCertificate* cert = client->OwnedFileCert(inserted.value());
      // Audit the nodes that are supposed to store the file: the replica set
      // around the fileId (they are the ones that issued receipts).
      auto replicas =
          client->overlay()->ReplicaSet(inserted.value().Top128(), 3);
      for (const NodeDescriptor& target : replicas) {
        if (target.id == client->overlay()->id()) {
          continue;
        }
        ++audits;
        passed += n.AuditSync(client, target.addr, inserted.value(), *cert) ? 1 : 0;
      }
      if (audits >= 20) {
        break;
      }
    }
    return audits > 0 ? 100.0 * passed / audits : 0.0;
  };
  double honest_pass = audit_rate(true, 9101);
  double freeloader_pass = audit_rate(false, 9102);
  std::printf("  honest holders pass:      %5.1f%% (expect 100%%)\n", honest_pass);
  std::printf("  freeloaders pass:         %5.1f%% (expect 0%%)\n", freeloader_pass);
  json.Set("quota_inserts_accepted", JsonValue(accepted));
  json.Set("quota_inserts_denied", JsonValue(quota_denied));
  json.Set("audit_pass_honest", JsonValue(honest_pass / 100.0));
  json.Set("audit_pass_freeloader", JsonValue(freeloader_pass / 100.0));
  json.SetMetrics(net.overlay().network().metrics());

  std::printf("\nbroker supply/demand balance:\n");
  std::printf("  demand (quotas issued):   %llu bytes\n",
              static_cast<unsigned long long>(net.broker().total_demand()));
  std::printf("  supply (contributed):     %llu bytes\n",
              static_cast<unsigned long long>(net.broker().total_supply()));
  return json.Finish() ? 0 : 1;
}
