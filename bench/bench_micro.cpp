// Micro-benchmarks (google-benchmark) for the building blocks: hashing,
// checksums, RSA/smartcard operations, id algebra, routing-table and
// leaf-set operations, wire codecs, the cache, and the disk log engine.
//
// Accepts the same flags as the exp_* binaries in addition to the native
// google-benchmark ones:
//   --json <path>   write a BENCH_micro.json document with one row per
//                   benchmark (name, iterations, times, counters)
//   --smoke         cut --benchmark_min_time down so the whole suite runs
//                   in seconds
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "src/common/check.h"
#include "src/common/crc32c.h"
#include "src/common/rng.h"
#include "src/crypto/rsa.h"
#include "src/crypto/sha1.h"
#include "src/crypto/sha256.h"
#include "src/diskstore/disk_store.h"
#include "src/diskstore/sharded_store.h"
#include "src/net/frame.h"
#include "src/net/socket_transport.h"
#include "src/obs/json.h"
#include "src/obs/log_histogram.h"
#include "src/obs/metrics.h"
#include "src/obs/span.h"
#include "src/obs/timeseries.h"
#include "src/pastry/leaf_set.h"
#include "src/pastry/messages.h"
#include "src/pastry/node_intern.h"
#include "src/pastry/overlay.h"
#include "src/pastry/routing_table.h"
#include "src/sim/event_queue.h"
#include "src/sim/timer_wheel.h"
#include "src/sim/network.h"
#include "src/sim/topology.h"
#include "src/storage/cache.h"
#include "src/storage/verify_cache.h"

namespace past {
namespace {

// Self-cleaning mkdtemp directory for the disk-log benchmarks.
struct ScratchDir {
  ScratchDir() {
    std::string tmpl =
        (std::filesystem::temp_directory_path() / "past-bench-XXXXXX").string();
    PAST_CHECK_MSG(mkdtemp(tmpl.data()) != nullptr, "mkdtemp failed");
    path = tmpl;
  }
  ~ScratchDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  std::string Sub(const std::string& name) const { return path + "/" + name; }
  std::string path;
};

void BM_Sha1(benchmark::State& state) {
  Rng rng(1);
  Bytes data = rng.RandomBytes(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha1::Hash(ByteSpan(data.data(), data.size())));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Sha1)->Arg(64)->Arg(4096)->Arg(65536);

void BM_Sha256(benchmark::State& state) {
  Rng rng(2);
  Bytes data = rng.RandomBytes(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::Hash(ByteSpan(data.data(), data.size())));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(4096)->Arg(65536);

void BM_Crc32c(benchmark::State& state) {
  Rng rng(12);
  Bytes data = rng.RandomBytes(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Crc32c(ByteSpan(data.data(), data.size())));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Crc32c)->Arg(64)->Arg(4096)->Arg(65536);

void BM_HmacSha256(benchmark::State& state) {
  Rng rng(3);
  Bytes key = rng.RandomBytes(32);
  Bytes data = rng.RandomBytes(1024);
  for (auto _ : state) {
    benchmark::DoNotOptimize(HmacSha256(key, data));
  }
}
BENCHMARK(BM_HmacSha256);

void BM_RsaKeygen(benchmark::State& state) {
  Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RsaKeyPair::Generate(static_cast<int>(state.range(0)), &rng));
  }
}
BENCHMARK(BM_RsaKeygen)->Arg(256)->Arg(512)->Unit(benchmark::kMillisecond);

void BM_RsaSign(benchmark::State& state) {
  Rng rng(5);
  RsaKeyPair kp = RsaKeyPair::Generate(static_cast<int>(state.range(0)), &rng);
  Bytes msg = rng.RandomBytes(256);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RsaSignMessage(kp, msg));
  }
}
BENCHMARK(BM_RsaSign)->Arg(256)->Arg(512)->Unit(benchmark::kMicrosecond);

void BM_RsaVerify(benchmark::State& state) {
  Rng rng(6);
  RsaKeyPair kp = RsaKeyPair::Generate(static_cast<int>(state.range(0)), &rng);
  Bytes msg = rng.RandomBytes(256);
  Bytes sig = RsaSignMessage(kp, msg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RsaVerifyMessage(kp.pub, msg, sig));
  }
}
BENCHMARK(BM_RsaVerify)->Arg(256)->Arg(512)->Unit(benchmark::kMicrosecond);

// The two ModExp paths head to head: the Montgomery dispatch against the
// schoolbook reference, same signing-shaped workload (full-width base and
// exponent, odd modulus).
void BM_ModExp(benchmark::State& state) {
  Rng rng(8);
  const int bits = static_cast<int>(state.range(0));
  RsaKeyPair kp = RsaKeyPair::Generate(bits, &rng);
  BigNum base = BigNum::FromBytes(rng.RandomBytes(static_cast<size_t>(bits) / 8 - 1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(BigNum::ModExp(base, kp.d, kp.pub.n));
  }
}
BENCHMARK(BM_ModExp)->Arg(256)->Arg(512)->Unit(benchmark::kMicrosecond);

void BM_ModExpReference(benchmark::State& state) {
  Rng rng(8);
  const int bits = static_cast<int>(state.range(0));
  RsaKeyPair kp = RsaKeyPair::Generate(bits, &rng);
  BigNum base = BigNum::FromBytes(rng.RandomBytes(static_cast<size_t>(bits) / 8 - 1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(BigNum::ModExpReference(base, kp.d, kp.pub.n));
  }
}
BENCHMARK(BM_ModExpReference)->Arg(256)->Arg(512)->Unit(benchmark::kMicrosecond);

// Steady-state verify through the memo cache (everything hits): the cost of
// a repeated certificate check after the first verification paid for it.
void BM_VerifyCacheHit(benchmark::State& state) {
  Rng rng(9);
  RsaKeyPair kp = RsaKeyPair::Generate(static_cast<int>(state.range(0)), &rng);
  Bytes msg = rng.RandomBytes(256);
  Bytes sig = RsaSignMessage(kp, msg);
  VerifyCache cache(64, nullptr);
  PAST_CHECK(cache.VerifyMessage(kp.pub, msg, sig));  // warm the entry
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.VerifyMessage(kp.pub, msg, sig));
  }
}
BENCHMARK(BM_VerifyCacheHit)->Arg(256)->Arg(512)->Unit(benchmark::kMicrosecond);

void BM_U128Digits(benchmark::State& state) {
  Rng rng(7);
  U128 id = rng.NextU128();
  U128 key = rng.NextU128();
  for (auto _ : state) {
    benchmark::DoNotOptimize(id.SharedPrefixLength(key, 4));
    benchmark::DoNotOptimize(key.Digit(5, 4));
    benchmark::DoNotOptimize(id.RingDistance(key));
  }
}
BENCHMARK(BM_U128Digits);

void BM_RoutingTableLookup(benchmark::State& state) {
  Rng rng(8);
  PastryConfig config;
  NodeId self = rng.NextU128();
  RoutingTable table(self, config, nullptr);
  for (int i = 0; i < 2000; ++i) {
    table.MaybeAdd(NodeDescriptor{rng.NextU128(), static_cast<NodeAddr>(i)});
  }
  U128 key = rng.NextU128();
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.EntryForKey(key));
    key = key.Add(U128(0x1234, 0x9876543210ULL));
  }
}
BENCHMARK(BM_RoutingTableLookup);

void BM_LeafSetInsert(benchmark::State& state) {
  Rng rng(9);
  NodeId self = rng.NextU128();
  for (auto _ : state) {
    state.PauseTiming();
    LeafSet leaf(self, 32);
    state.ResumeTiming();
    for (int i = 0; i < 100; ++i) {
      leaf.MaybeAdd(NodeDescriptor{rng.NextU128(), static_cast<NodeAddr>(i)});
    }
    benchmark::DoNotOptimize(leaf.size());
  }
}
BENCHMARK(BM_LeafSetInsert);

void BM_RouteMsgCodec(benchmark::State& state) {
  Rng rng(10);
  RouteMsg msg;
  msg.key = rng.NextU128();
  msg.source = NodeDescriptor{rng.NextU128(), 7};
  msg.app_type = 100;
  msg.seq = 12345;
  msg.payload = rng.RandomBytes(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    Bytes wire = EncodeMessage(msg);
    Reader r(ByteSpan(wire.data(), wire.size()));
    PastryMsgType type;
    (void)DecodeHeader(&r, &type);
    RouteMsg out;
    benchmark::DoNotOptimize(DecodeBodyStrict(&r, &out));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_RouteMsgCodec)->Arg(64)->Arg(4096);

void BM_CacheGdsInsertGet(benchmark::State& state) {
  Rng rng(11);
  Cache cache(CachePolicy::kGreedyDualSize);
  std::vector<FileCertificate> certs;
  for (int i = 0; i < 500; ++i) {
    FileCertificate cert;
    cert.file_id = rng.NextU160();
    cert.file_size = 1 + rng.UniformU64(8192);
    certs.push_back(cert);
  }
  size_t i = 0;
  for (auto _ : state) {
    const FileCertificate& cert = certs[i % certs.size()];
    if (!cache.Contains(cert.file_id)) {
      cache.Insert(cert, {}, 1 << 20);
    }
    benchmark::DoNotOptimize(cache.Get(cert.file_id));
    ++i;
  }
}
BENCHMARK(BM_CacheGdsInsertGet);

// Appends value_bytes records to the log at the given sync_every policy
// (0: buffered appends, isolating the encode + CRC + write path; 1: one
// fsync per Put — the per-operation durability floor BM_GroupCommitAppend
// is measured against). Keys rotate over a fixed pool so compaction bounds
// the on-disk footprint however long the benchmark runs.
void BM_LogAppend(benchmark::State& state) {
  ScratchDir scratch;
  DiskStoreOptions options;
  options.sync_every = static_cast<uint32_t>(state.range(1));
  auto store = DiskStore::Open(scratch.Sub("log"), options);
  PAST_CHECK_MSG(store.ok(), "open failed");
  Rng rng(13);
  const Bytes value = rng.RandomBytes(static_cast<size_t>(state.range(0)));
  std::vector<U160> keys;
  for (int i = 0; i < 1024; ++i) {
    Bytes raw = rng.RandomBytes(U160::kBytes);
    keys.push_back(U160::FromBytes(ByteSpan(raw.data(), raw.size())));
  }
  size_t i = 0;
  for (auto _ : state) {
    StatusCode status =
        store.value()->Put(keys[i++ % keys.size()], ByteSpan(value.data(), value.size()));
    benchmark::DoNotOptimize(status);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_LogAppend)
    ->Args({256, 0})
    ->Args({4096, 0})
    ->Args({256, 1})
    ->UseRealTime();

// Durable (fsync-acknowledged) appends through the sharded group-commit
// engine with 4 client threads: concurrent Puts coalesce into one batched
// fsync per shard, so acknowledged-insert throughput should beat the
// BM_LogAppend sync_every=1 floor by well over the batching factor the
// serving sweep banks on (>= 3x is the recorded acceptance bar).
void BM_GroupCommitAppend(benchmark::State& state) {
  static ScratchDir* scratch = nullptr;
  static std::unique_ptr<ShardedDiskStore> store;
  if (state.thread_index() == 0) {
    scratch = new ScratchDir();
    DiskStoreOptions options;
    options.shard_count = 4;
    options.group_commit = true;
    options.commit_batch_max = 64;
    options.commit_delay_us = 200;
    auto opened = ShardedDiskStore::Open(scratch->Sub("log"), options);
    PAST_CHECK_MSG(opened.ok(), "open failed");
    store = std::move(opened).value();
  }
  Rng rng(15 + static_cast<uint64_t>(state.thread_index()));
  const Bytes value = rng.RandomBytes(static_cast<size_t>(state.range(0)));
  std::vector<U160> keys;
  for (int i = 0; i < 1024; ++i) {
    Bytes raw = rng.RandomBytes(U160::kBytes);
    keys.push_back(U160::FromBytes(ByteSpan(raw.data(), raw.size())));
  }
  size_t i = 0;
  // The state loop's entry barrier orders thread 0's Open() before any
  // thread's first Put; the exit barrier orders every Put before teardown.
  for (auto _ : state) {
    StatusCode status = store->Put(keys[i++ % keys.size()],
                                   ByteSpan(value.data(), value.size()));
    benchmark::DoNotOptimize(status);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
  if (state.thread_index() == 0) {
    store.reset();
    delete scratch;
    scratch = nullptr;
  }
}
BENCHMARK(BM_GroupCommitAppend)->Arg(256)->Threads(4)->UseRealTime();

// Open()-time recovery: replays a log of range(0) live records (the reboot
// cost a PAST node pays before serving its replicas again).
void BM_LogReplay(benchmark::State& state) {
  ScratchDir scratch;
  const std::string dir = scratch.Sub("log");
  DiskStoreOptions options;
  Rng rng(14);
  {
    auto store = DiskStore::Open(dir, options);
    PAST_CHECK_MSG(store.ok(), "open failed");
    const Bytes value = rng.RandomBytes(512);
    for (int64_t i = 0; i < state.range(0); ++i) {
      Bytes raw = rng.RandomBytes(U160::kBytes);
      (void)store.value()->Put(U160::FromBytes(ByteSpan(raw.data(), raw.size())),
                               ByteSpan(value.data(), value.size()));
    }
    (void)store.value()->Sync();
  }
  uint64_t replayed = 0;
  for (auto _ : state) {
    auto reopened = DiskStore::Open(dir, options);
    PAST_CHECK_MSG(reopened.ok(), "replay failed");
    replayed = reopened.value()->stats().replayed_records;
    benchmark::DoNotOptimize(reopened);
  }
  state.counters["replayed_records"] =
      benchmark::Counter(static_cast<double>(replayed));
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(replayed));
}
BENCHMARK(BM_LogReplay)->Arg(1000)->Arg(10000)->Unit(benchmark::kMillisecond);

// --- simulation hot paths (BENCH_sim.json baseline) --------------------------
//
// The discrete-event scheduler and the message network are the two inner
// loops every experiment drives millions of times; these benchmarks pin
// their per-operation cost so regressions show up in the BENCH_sim.json
// trajectory.

// Schedule + fire throughput: range(0) events per batch, drained after each
// batch so the queue returns to steady state (slab fully recycled).
void BM_EventQueueScheduleFire(benchmark::State& state) {
  EventQueue queue;
  const int batch = static_cast<int>(state.range(0));
  uint64_t fired = 0;
  for (auto _ : state) {
    for (int i = 0; i < batch; ++i) {
      queue.After(i % 128, [&fired] { ++fired; });
    }
    queue.RunAll();
  }
  benchmark::DoNotOptimize(fired);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * batch);
}
BENCHMARK(BM_EventQueueScheduleFire)->Arg(64)->Arg(4096);

// Schedule + cancel: every event is cancelled before it can fire — the
// pattern of per-hop ack timers, which are almost always cancelled.
void BM_EventQueueScheduleCancel(benchmark::State& state) {
  EventQueue queue;
  const int batch = static_cast<int>(state.range(0));
  std::vector<EventQueue::EventId> ids(static_cast<size_t>(batch));
  for (auto _ : state) {
    for (int i = 0; i < batch; ++i) {
      ids[static_cast<size_t>(i)] = queue.After(1000 + i, [] {});
    }
    for (int i = 0; i < batch; ++i) {
      queue.Cancel(ids[static_cast<size_t>(i)]);
    }
    queue.RunAll();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * batch);
}
BENCHMARK(BM_EventQueueScheduleCancel)->Arg(64)->Arg(4096);

// Timer-wheel schedule + fire throughput with quantized deadlines, the
// keep-alive pattern: range(0) timers per batch land on 16 shared buckets,
// so the underlying queue sees ~16 events instead of range(0).
void BM_TimerWheelSchedule(benchmark::State& state) {
  EventQueue queue;
  TimerWheel wheel(&queue, 64);
  const int batch = static_cast<int>(state.range(0));
  uint64_t fired = 0;
  for (auto _ : state) {
    for (int i = 0; i < batch; ++i) {
      wheel.After(1000 + (i % 16) * 64, [&fired] { ++fired; });
    }
    queue.RunAll();
  }
  benchmark::DoNotOptimize(fired);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * batch);
}
BENCHMARK(BM_TimerWheelSchedule)->Arg(64)->Arg(4096);

// Steady-state interning: the handle-table hit path (hash + two indexed
// loads) every compact-structure insert and resolve pays at scale.
void BM_NodeIdIntern(benchmark::State& state) {
  Rng rng(33);
  std::vector<NodeDescriptor> descs;
  for (int i = 0; i < 8192; ++i) {
    descs.push_back(NodeDescriptor{rng.NextU128(), static_cast<NodeAddr>(i + 1)});
  }
  NodeInternTable table;
  table.Reserve(descs.size());
  for (const NodeDescriptor& d : descs) {
    (void)table.Intern(d);
  }
  size_t i = 0;
  for (auto _ : state) {
    NodeInternTable::Handle h = table.Intern(descs[i & 8191]);
    benchmark::DoNotOptimize(table.id(h));
    ++i;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_NodeIdIntern);

// One full keep-alive round at N=10k: every node's wheel timer fires, pings
// its leaf set, and reschedules. Items processed = node ticks, so the
// per-node maintenance cost is the reported rate's reciprocal.
void BM_KeepAliveTick(benchmark::State& state) {
  OverlayOptions opts;
  opts.seed = 3401;
  opts.pastry.keep_alive_period = 1 * kMicrosPerSecond;
  opts.pastry.keep_alive_quantum = 100 * kMicrosPerMilli;
  opts.pastry.failure_timeout = 4 * kMicrosPerSecond;
  opts.network.expected_endpoints = 10000;
  Overlay overlay(opts);
  overlay.BuildFast(10000);
  for (auto _ : state) {
    overlay.Run(opts.pastry.keep_alive_period);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 10000);
}
BENCHMARK(BM_KeepAliveTick)->Unit(benchmark::kMillisecond)->Iterations(3);

struct NullReceiver : NetReceiver {
  uint64_t received = 0;
  size_t bytes = 0;
  void OnMessage(NodeAddr, ByteSpan wire) override {
    ++received;
    bytes += wire.size();
  }
};

// Send() cost alone: the scheduling half of a message hop (latency sampling,
// metric updates, closure construction). The queue is drained outside the
// timed region.
void BM_NetworkSend(benchmark::State& state) {
  EventQueue queue;
  Rng topo_rng(21);
  Topology topo(TopologyKind::kSphere, 1000.0, &topo_rng);
  Network net(&queue, &topo, NetworkConfig{}, 22);
  NullReceiver receivers[2];
  NodeAddr a = net.Register(&receivers[0]);
  NodeAddr b = net.Register(&receivers[1]);
  Rng payload_rng(23);
  const Bytes payload = payload_rng.RandomBytes(static_cast<size_t>(state.range(0)));
  int in_flight = 0;
  for (auto _ : state) {
    net.Send(a, b, Bytes(payload));
    if (++in_flight == 4096) {
      state.PauseTiming();
      queue.RunAll();
      in_flight = 0;
      state.ResumeTiming();
    }
  }
  queue.RunAll();
  benchmark::DoNotOptimize(receivers[1].received);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_NetworkSend)->Arg(64)->Arg(1024);

// Full send -> deliver round trips in batches: what a routed hop costs the
// simulator end to end.
void BM_NetworkDeliver(benchmark::State& state) {
  EventQueue queue;
  Rng topo_rng(24);
  Topology topo(TopologyKind::kSphere, 1000.0, &topo_rng);
  Network net(&queue, &topo, NetworkConfig{}, 25);
  NullReceiver receivers[8];
  std::vector<NodeAddr> addrs;
  for (auto& r : receivers) {
    addrs.push_back(net.Register(&r));
  }
  Rng payload_rng(26);
  const Bytes payload = payload_rng.RandomBytes(static_cast<size_t>(state.range(0)));
  const int batch = 1024;
  size_t i = 0;
  for (auto _ : state) {
    for (int m = 0; m < batch; ++m) {
      net.Send(addrs[i % addrs.size()], addrs[(i + 1) % addrs.size()],
               Bytes(payload));
      ++i;
    }
    queue.RunAll();
  }
  uint64_t total = 0;
  for (const auto& r : receivers) {
    total += r.received;
  }
  benchmark::DoNotOptimize(total);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * batch);
}
BENCHMARK(BM_NetworkDeliver)->Arg(64)->Arg(1024)->Unit(benchmark::kMicrosecond);

// --- real-socket transport (BENCH_net.json baseline) -------------------------
// The socket backend carries every inter-daemon byte in a real cluster;
// these pin the frame codec and the full loopback path so transport
// regressions show up in the BENCH_net.json trajectory.

// Frame codec alone: encode a payload into a wire frame and decode it back.
// CRC32C over the payload dominates at the larger sizes.
void BM_FrameCodec(benchmark::State& state) {
  Rng rng(31);
  const Bytes payload = rng.RandomBytes(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    Bytes frame = EncodeFrame(7, 9, ByteSpan(payload.data(), payload.size()));
    FrameHeader header;
    ByteSpan body;
    FrameError err = DecodeFrame(ByteSpan(frame.data(), frame.size()),
                                 1u << 20, &header, &body);
    PAST_CHECK_MSG(err == FrameError::kNone, "codec round-trip failed");
    benchmark::DoNotOptimize(body);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_FrameCodec)->Arg(64)->Arg(1200)->Arg(16384);

// Full loopback delivery through two SocketTransports on 127.0.0.1: Send()
// at one endpoint, busy-poll both until the receiver has the message.
// Covers frame encode, the syscalls, kernel loopback, decode hardening, and
// delivery. 1200 rides the UDP datagram path, 16384 the cached-TCP path.
void BM_NetLoopback(benchmark::State& state) {
  struct CountSink : NetReceiver {
    uint64_t count = 0;
    void OnMessage(NodeAddr, ByteSpan) override { ++count; }
  };
  SocketTransport a;
  SocketTransport b;
  PAST_CHECK_MSG(a.Open() == StatusCode::kOk, "open failed");
  PAST_CHECK_MSG(b.Open() == StatusCode::kOk, "open failed");
  CountSink sink_a;
  CountSink sink_b;
  NodeAddr a_addr = a.Register(&sink_a);
  NodeAddr b_addr = b.Register(&sink_b);
  Rng rng(32);
  const Bytes payload = rng.RandomBytes(static_cast<size_t>(state.range(0)));
  uint64_t want = 0;
  for (auto _ : state) {
    a.Send(a_addr, b_addr, payload);
    ++want;
    // One message in flight at a time: loopback never drops it, so this
    // terminates; the spin bound catches a broken transport.
    uint64_t spins = 0;
    while (sink_b.count < want) {
      (void)a.PollOnce(0);
      (void)b.PollOnce(0);
      PAST_CHECK_MSG(++spins < 100000000ull, "loopback delivery wedged");
    }
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_NetLoopback)->Arg(1200)->Arg(16384)->Unit(benchmark::kMicrosecond);

// --- observability primitives -----------------------------------------------
// The tracing and quantile instruments sit on every client-op and hop path;
// these benchmarks pin both the armed cost and the disabled fast path so the
// "cheap enough to stay on" claim is checked by BENCH_obs.json, not asserted.

// One client-op span as the storage layer records it: start, one annotation,
// end. range(0)=0 measures the disabled branch-and-return path (the cost
// every untraced run pays), range(0)=1 the armed path.
void BM_SpanOverhead(benchmark::State& state) {
  Tracer tracer;
  tracer.Enable(state.range(0) != 0);
  int64_t now = 0;
  for (auto _ : state) {
    uint64_t id = tracer.StartSpan("past.insert", now, 7);
    tracer.Annotate(id, "status", "ok");
    tracer.EndSpan(id, now + 100);
    now += 101;
    if (tracer.size() >= (1u << 16)) {
      state.PauseTiming();
      tracer.Clear();
      state.ResumeTiming();
    }
  }
  benchmark::DoNotOptimize(tracer.size());
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_SpanOverhead)->Arg(0)->Arg(1);

// One latency sample: frexp + a handful of integer ops, no allocation once
// the bucket window covers the value range.
void BM_LogHistogramObserve(benchmark::State& state) {
  Rng rng(27);
  std::vector<double> values(4096);
  for (double& v : values) {
    v = 1.0 + rng.UniformDouble() * 1e6;  // ~20 octaves, like latencies
  }
  LogHistogram hist;
  size_t i = 0;
  for (auto _ : state) {
    hist.Observe(values[i++ & 4095]);
  }
  benchmark::DoNotOptimize(hist.count());
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_LogHistogramObserve);

// One timeseries row over a representative column set (two counters, a
// gauge, a quantile histogram): the per-tick cost of the churn experiment's
// sampler.
void BM_TimeSeriesSample(benchmark::State& state) {
  MetricsRegistry metrics;
  metrics.GetCounter("net.sent")->Inc(12345);
  metrics.GetCounter("past.demotions")->Inc(67);
  metrics.GetGauge("sim.queue_depth")->Set(42.0);
  LogHistogram* lat = metrics.GetLogHistogram("past.lookup.latency_us");
  Rng rng(28);
  for (int i = 0; i < 10000; ++i) {
    lat->Observe(1.0 + rng.UniformDouble() * 1e5);
  }
  TimeSeriesSampler sampler(&metrics, 1000);
  sampler.Track("net.sent");
  sampler.Track("past.demotions");
  sampler.Track("sim.queue_depth");
  sampler.Track("past.lookup.latency_us");
  int64_t now = 0;
  for (auto _ : state) {
    sampler.Sample(now);
    now += 1000;
    if (sampler.rows() >= (1u << 14)) {
      state.PauseTiming();
      sampler = TimeSeriesSampler(&metrics, 1000);
      sampler.Track("net.sent");
      sampler.Track("past.demotions");
      sampler.Track("sim.queue_depth");
      sampler.Track("past.lookup.latency_us");
      state.ResumeTiming();
    }
  }
  benchmark::DoNotOptimize(sampler.rows());
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_TimeSeriesSample)->Unit(benchmark::kMicrosecond);

// Console output plus a JSON row per run, written on Finish() in the same
// {"experiment", "results"} shape the exp_* binaries use.
class JsonTeeReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.error_occurred) {
        continue;
      }
      JsonValue row = JsonValue::Object();
      row.Set("name", run.benchmark_name());
      row.Set("iterations", static_cast<int64_t>(run.iterations));
      row.Set("real_time", run.GetAdjustedRealTime());
      row.Set("cpu_time", run.GetAdjustedCPUTime());
      row.Set("time_unit", benchmark::GetTimeUnitString(run.time_unit));
      for (const auto& [name, counter] : run.counters) {
        row.Set(name, counter.value);
      }
      rows_.Append(std::move(row));
    }
  }

  bool Write(const std::string& path) {
    JsonValue root = JsonValue::Object();
    root.Set("experiment", "micro");
    JsonValue results = JsonValue::Object();
    results.Set("benchmarks", std::move(rows_));
    root.Set("results", std::move(results));
    std::ofstream out(path, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
      return false;
    }
    out << root.Dump(2) << "\n";
    out.flush();
    if (!out) {
      return false;
    }
    std::printf("\nwrote %s\n", path.c_str());
    return true;
  }

 private:
  JsonValue rows_ = JsonValue::Array();
};

}  // namespace
}  // namespace past

int main(int argc, char** argv) {
  // Strip the exp-style flags before handing the rest to google-benchmark.
  std::string json_path;
  bool smoke = false;
  std::vector<char*> remaining;
  remaining.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      remaining.push_back(argv[i]);
    }
  }
  static char kMinTime[] = "--benchmark_min_time=0.01";
  if (smoke) {
    remaining.push_back(kMinTime);
  }
  int remaining_argc = static_cast<int>(remaining.size());
  benchmark::Initialize(&remaining_argc, remaining.data());
  if (benchmark::ReportUnrecognizedArguments(remaining_argc, remaining.data())) {
    return 1;
  }
  past::JsonTeeReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (!json_path.empty() && !reporter.Write(json_path)) {
    return 1;
  }
  return 0;
}
