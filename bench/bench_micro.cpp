// Micro-benchmarks (google-benchmark) for the building blocks: hashing,
// RSA/smartcard operations, id algebra, routing-table and leaf-set
// operations, wire codecs and the cache.
#include <benchmark/benchmark.h>

#include "src/common/rng.h"
#include "src/crypto/rsa.h"
#include "src/crypto/sha1.h"
#include "src/crypto/sha256.h"
#include "src/pastry/leaf_set.h"
#include "src/pastry/messages.h"
#include "src/pastry/routing_table.h"
#include "src/storage/cache.h"

namespace past {
namespace {

void BM_Sha1(benchmark::State& state) {
  Rng rng(1);
  Bytes data = rng.RandomBytes(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha1::Hash(ByteSpan(data.data(), data.size())));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Sha1)->Arg(64)->Arg(4096)->Arg(65536);

void BM_Sha256(benchmark::State& state) {
  Rng rng(2);
  Bytes data = rng.RandomBytes(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::Hash(ByteSpan(data.data(), data.size())));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(4096)->Arg(65536);

void BM_HmacSha256(benchmark::State& state) {
  Rng rng(3);
  Bytes key = rng.RandomBytes(32);
  Bytes data = rng.RandomBytes(1024);
  for (auto _ : state) {
    benchmark::DoNotOptimize(HmacSha256(key, data));
  }
}
BENCHMARK(BM_HmacSha256);

void BM_RsaKeygen(benchmark::State& state) {
  Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RsaKeyPair::Generate(static_cast<int>(state.range(0)), &rng));
  }
}
BENCHMARK(BM_RsaKeygen)->Arg(256)->Arg(512)->Unit(benchmark::kMillisecond);

void BM_RsaSign(benchmark::State& state) {
  Rng rng(5);
  RsaKeyPair kp = RsaKeyPair::Generate(static_cast<int>(state.range(0)), &rng);
  Bytes msg = rng.RandomBytes(256);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RsaSignMessage(kp, msg));
  }
}
BENCHMARK(BM_RsaSign)->Arg(256)->Arg(512)->Unit(benchmark::kMicrosecond);

void BM_RsaVerify(benchmark::State& state) {
  Rng rng(6);
  RsaKeyPair kp = RsaKeyPair::Generate(static_cast<int>(state.range(0)), &rng);
  Bytes msg = rng.RandomBytes(256);
  Bytes sig = RsaSignMessage(kp, msg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RsaVerifyMessage(kp.pub, msg, sig));
  }
}
BENCHMARK(BM_RsaVerify)->Arg(256)->Arg(512)->Unit(benchmark::kMicrosecond);

void BM_U128Digits(benchmark::State& state) {
  Rng rng(7);
  U128 id = rng.NextU128();
  U128 key = rng.NextU128();
  for (auto _ : state) {
    benchmark::DoNotOptimize(id.SharedPrefixLength(key, 4));
    benchmark::DoNotOptimize(key.Digit(5, 4));
    benchmark::DoNotOptimize(id.RingDistance(key));
  }
}
BENCHMARK(BM_U128Digits);

void BM_RoutingTableLookup(benchmark::State& state) {
  Rng rng(8);
  PastryConfig config;
  NodeId self = rng.NextU128();
  RoutingTable table(self, config, nullptr);
  for (int i = 0; i < 2000; ++i) {
    table.MaybeAdd(NodeDescriptor{rng.NextU128(), static_cast<NodeAddr>(i)});
  }
  U128 key = rng.NextU128();
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.EntryForKey(key));
    key = key.Add(U128(0x1234, 0x9876543210ULL));
  }
}
BENCHMARK(BM_RoutingTableLookup);

void BM_LeafSetInsert(benchmark::State& state) {
  Rng rng(9);
  NodeId self = rng.NextU128();
  for (auto _ : state) {
    state.PauseTiming();
    LeafSet leaf(self, 32);
    state.ResumeTiming();
    for (int i = 0; i < 100; ++i) {
      leaf.MaybeAdd(NodeDescriptor{rng.NextU128(), static_cast<NodeAddr>(i)});
    }
    benchmark::DoNotOptimize(leaf.size());
  }
}
BENCHMARK(BM_LeafSetInsert);

void BM_RouteMsgCodec(benchmark::State& state) {
  Rng rng(10);
  RouteMsg msg;
  msg.key = rng.NextU128();
  msg.source = NodeDescriptor{rng.NextU128(), 7};
  msg.app_type = 100;
  msg.seq = 12345;
  msg.payload = rng.RandomBytes(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    Bytes wire = EncodeMessage(msg);
    Reader r(ByteSpan(wire.data(), wire.size()));
    PastryMsgType type;
    (void)DecodeHeader(&r, &type);
    RouteMsg out;
    benchmark::DoNotOptimize(DecodeBodyStrict(&r, &out));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_RouteMsgCodec)->Arg(64)->Arg(4096);

void BM_CacheGdsInsertGet(benchmark::State& state) {
  Rng rng(11);
  Cache cache(CachePolicy::kGreedyDualSize);
  std::vector<FileCertificate> certs;
  for (int i = 0; i < 500; ++i) {
    FileCertificate cert;
    cert.file_id = rng.NextU160();
    cert.file_size = 1 + rng.UniformU64(8192);
    certs.push_back(cert);
  }
  size_t i = 0;
  for (auto _ : state) {
    const FileCertificate& cert = certs[i % certs.size()];
    if (!cache.Contains(cert.file_id)) {
      cache.Insert(cert, {}, 1 << 20);
    }
    benchmark::DoNotOptimize(cache.Get(cert.file_id));
    ++i;
  }
}
BENCHMARK(BM_CacheGdsInsertGet);

}  // namespace
}  // namespace past

BENCHMARK_MAIN();
