// E11 — Statistical storage load balance.
//
// HotOS text, Section 2: "(3) the number of files assigned to each node is
// roughly balanced", following "from the uniformly distributed, quasi-random
// identifiers assigned to each node and file". This measures the per-node
// file-count and byte distributions after a large insertion workload.
#include "bench/exp_util.h"
#include "src/workload/workload.h"

int main(int argc, char** argv) {
  using namespace past;
  ExpArgs args = ExpArgs::Parse(argc, argv);
  ExpJson json(args, "load_balance");
  PrintHeader("E11: per-node storage load after a large insert workload (k=3)",
              "uniform nodeIds/fileIds keep the number of files per node "
              "roughly balanced");

  PastNetworkOptions options;
  options.overlay.seed = 11001;
  options.overlay.pastry.keep_alive_period = 0;
  options.broker.modulus_pool = 8;
  options.past.verify_crypto = false;
  options.past.cache_policy = CachePolicy::kNone;
  options.past.cache_on_insert_path = false;
  options.past.cache_push_on_lookup = false;
  options.past.default_replication = 3;
  options.past.request_timeout = 10 * kMicrosPerSecond;
  options.default_node_capacity = 64 << 20;  // ample: isolate placement, not policy
  options.default_user_quota = ~0ULL >> 2;
  PastNetwork net(options);
  const int kNodes = args.smoke ? 60 : 200;
  net.Build(kNodes);

  Rng rng(5);
  FileSizeModel sizes;
  sizes.max_size = 64 << 10;
  const int kFiles = args.smoke ? 300 : 2000;
  int accepted = 0;
  for (int i = 0; i < kFiles; ++i) {
    auto r = net.InsertSyntheticSync(net.RandomLiveNode(), "lb-" + std::to_string(i),
                                     sizes.Sample(&rng), 3);
    accepted += r.ok() ? 1 : 0;
  }

  std::vector<double> file_counts, bytes;
  for (size_t i = 0; i < net.size(); ++i) {
    file_counts.push_back(static_cast<double>(net.node(i)->store().file_count()));
    bytes.push_back(static_cast<double>(net.node(i)->store().used()));
  }
  auto mean = [](const std::vector<double>& v) {
    double s = 0;
    for (double x : v) {
      s += x;
    }
    return s / static_cast<double>(v.size());
  };
  auto cv = [&](const std::vector<double>& v) {
    double m = mean(v);
    double var = 0;
    for (double x : v) {
      var += (x - m) * (x - m);
    }
    var /= static_cast<double>(v.size());
    return std::sqrt(var) / m;
  };

  double expect_mean = 3.0 * accepted / kNodes;
  std::printf("inserted %d files x 3 replicas over %d nodes\n", accepted, kNodes);
  std::printf("\n%18s %10s %10s %10s %10s %8s\n", "metric", "p5", "median", "p95",
              "max", "CV");
  std::printf("%18s %10.1f %10.1f %10.1f %10.1f %8.2f\n", "files per node",
              Percentile(file_counts, 0.05), Percentile(file_counts, 0.5),
              Percentile(file_counts, 0.95), Percentile(file_counts, 1.0),
              cv(file_counts));
  std::printf("%18s %10.0f %10.0f %10.0f %10.0f %8.2f\n", "bytes per node",
              Percentile(bytes, 0.05), Percentile(bytes, 0.5),
              Percentile(bytes, 0.95), Percentile(bytes, 1.0), cv(bytes));

  for (const auto& [name, values] :
       {std::make_pair("files_per_node", &file_counts),
        std::make_pair("bytes_per_node", &bytes)}) {
    JsonValue row = JsonValue::Object();
    row.Set("metric", name);
    row.Set("p5", Percentile(*values, 0.05));
    row.Set("median", Percentile(*values, 0.5));
    row.Set("p95", Percentile(*values, 0.95));
    row.Set("max", Percentile(*values, 1.0));
    row.Set("cv", cv(*values));
    json.AddRow("load_distribution", std::move(row));
  }
  json.Set("accepted_inserts", JsonValue(accepted));
  json.SetMetrics(net.overlay().network().metrics());
  std::printf("\nMean: %.1f files/node. Reference band for the CV: pure\n", expect_mean);
  std::printf("balls-into-bins would give ~%.2f; k-closest placement inherits the\n",
              1.0 / std::sqrt(expect_mean));
  std::printf("exponential spread of id-space arcs, smoothed over k=3 arcs,\n");
  std::printf("~%.2f. A measured CV inside that band is the paper's \"roughly\n",
              1.0 / std::sqrt(3.0));
  std::printf("balanced\"; byte loads are wider because sizes are heavy-tailed\n");
  std::printf("(E7's storage management, not placement, evens those out).\n");
  return json.Finish() ? 0 : 1;
}
