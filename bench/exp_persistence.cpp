// E14 — Durable storage engine: append/replay throughput and reboot recovery.
//
// The paper's premise is a *persistent* storage utility: "a storage system
// ... which files can be inserted and stored. An owner can ... reclaim the
// storage" — replicas must survive node reboots without being re-fetched
// from the k-1 surviving holders. Two measurements back that up:
//
//   1. Engine throughput — raw DiskStore append rate under the three fsync
//      policies (lazy, batched, write-through) plus the Open()-time replay
//      rate, i.e. what a reboot costs.
//   2. Reboot recovery — a PAST network with a state_dir: crash a replica
//      holder, reboot it, and check that it serves its replicas straight
//      from the recovered log with maintenance_fetches == 0. A volatile
//      (no state_dir) run of the same script is the control: the store
//      comes back empty.
#include <chrono>
#include <cstdlib>
#include <filesystem>

#include "bench/exp_util.h"
#include "src/common/check.h"
#include "src/common/rng.h"
#include "src/diskstore/disk_store.h"

namespace {

using namespace past;

// Self-cleaning mkdtemp directory (bench-local; mirrors tests' TempDir).
struct ScratchDir {
  ScratchDir() {
    std::string tmpl =
        (std::filesystem::temp_directory_path() / "past-exp-XXXXXX").string();
    PAST_CHECK_MSG(mkdtemp(tmpl.data()) != nullptr, "mkdtemp failed");
    path = tmpl;
  }
  ~ScratchDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  std::string Sub(const std::string& name) const { return path + "/" + name; }
  std::string path;
};

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

// ---------------------------------------------------------------------------
// Part 1: engine append/replay throughput per fsync policy.
// ---------------------------------------------------------------------------

struct ThroughputRow {
  uint32_t sync_every = 0;
  uint64_t records = 0;
  uint64_t value_bytes = 0;
  double append_seconds = 0;
  double replay_seconds = 0;
  uint64_t fsyncs = 0;
  uint64_t segments = 0;
  uint64_t replayed_records = 0;

  double records_per_sec() const {
    return append_seconds > 0 ? static_cast<double>(records) / append_seconds : 0;
  }
  double mb_per_sec() const {
    return append_seconds > 0
               ? static_cast<double>(records * value_bytes) / append_seconds / 1e6
               : 0;
  }
  double replay_records_per_sec() const {
    return replay_seconds > 0
               ? static_cast<double>(replayed_records) / replay_seconds
               : 0;
  }
};

ThroughputRow RunEngine(const ScratchDir& scratch, uint32_t sync_every,
                        uint64_t records, uint64_t value_bytes) {
  ThroughputRow row;
  row.sync_every = sync_every;
  row.records = records;
  row.value_bytes = value_bytes;

  const std::string dir = scratch.Sub("engine-sync" + std::to_string(sync_every));
  DiskStoreOptions options;
  options.sync_every = sync_every;
  Rng rng(9000 + sync_every);
  {
    auto store = DiskStore::Open(dir, options);
    PAST_CHECK_MSG(store.ok(), "engine open failed");
    const Bytes value = rng.RandomBytes(value_bytes);
    auto start = std::chrono::steady_clock::now();
    for (uint64_t i = 0; i < records; ++i) {
      // Distinct keys: replay cost below is proportional to the full log.
      Bytes raw = rng.RandomBytes(U160::kBytes);
      const U160 key = U160::FromBytes(ByteSpan(raw.data(), raw.size()));
      StatusCode status =
          store.value()->Put(key, ByteSpan(value.data(), value.size()));
      PAST_CHECK_MSG(status == StatusCode::kOk, "append failed");
    }
    PAST_CHECK_MSG(store.value()->Sync() == StatusCode::kOk, "sync failed");
    row.append_seconds = SecondsSince(start);
    row.fsyncs = store.value()->stats().syncs;
    row.segments = store.value()->stats().segments;
  }
  // A reboot replays the whole log to rebuild the index.
  auto start = std::chrono::steady_clock::now();
  auto reopened = DiskStore::Open(dir, options);
  PAST_CHECK_MSG(reopened.ok(), "replay open failed");
  row.replay_seconds = SecondsSince(start);
  row.replayed_records = reopened.value()->stats().replayed_records;
  return row;
}

// ---------------------------------------------------------------------------
// Part 2: crash + reboot inside a PAST network, durable vs volatile.
// ---------------------------------------------------------------------------

struct RebootResult {
  size_t files_inserted = 0;
  size_t held_before_crash = 0;
  size_t recovered_at_boot = 0;
  uint64_t maintenance_fetches_at_boot = 0;
  uint64_t maintenance_fetches_after_settle = 0;
  size_t lookups_ok = 0;
};

RebootResult RunReboot(bool durable, const std::string& state_dir, uint64_t seed,
                       int files, ExpJson* json) {
  PastNetworkOptions options;
  options.overlay.seed = seed;
  options.broker.modulus_pool = 4;
  options.overlay.pastry.keep_alive_period = 1 * kMicrosPerSecond;
  options.overlay.pastry.failure_timeout = 3 * kMicrosPerSecond;
  options.overlay.pastry.death_quarantine = 6 * kMicrosPerSecond;
  options.past.request_timeout = 20 * kMicrosPerSecond;
  if (durable) {
    options.past.state_dir = state_dir;
    options.past.disk.sync_every = 1;  // write-through: every ack durable
  }

  PastNetwork net(options);
  net.Build(16);
  PastNode* client = net.node(1);

  RebootResult result;
  std::vector<FileId> ids;
  for (int i = 0; i < files; ++i) {
    auto inserted = net.InsertSync(client, "pfile-" + std::to_string(i),
                                   ToBytes("payload-" + std::to_string(i)), 3);
    PAST_CHECK_MSG(inserted.ok(), "insert failed");
    ids.push_back(inserted.value());
  }
  result.files_inserted = ids.size();

  // Crash a replica holder of the first file (never the client).
  size_t victim = SIZE_MAX;
  for (size_t i = 0; i < net.size(); ++i) {
    if (net.node(i) != client && net.node(i)->store().Has(ids[0])) {
      victim = i;
      break;
    }
  }
  PAST_CHECK_MSG(victim != SIZE_MAX, "no replica holder found");
  std::vector<FileId> held;
  for (const FileId& id : ids) {
    if (net.node(victim)->store().Has(id)) {
      held.push_back(id);
    }
  }
  result.held_before_crash = held.size();

  net.CrashNode(victim);
  net.Run(2 * kMicrosPerSecond);  // failure noticed, well before any repair

  PastNode* rebooted = net.RestartNode(victim);
  for (const FileId& id : held) {
    if (rebooted->store().Has(id)) {
      ++result.recovered_at_boot;
    }
  }
  result.maintenance_fetches_at_boot = rebooted->stats().maintenance_fetches;

  // Let the overlay re-admit the node and maintenance settle.
  net.Run(30 * kMicrosPerSecond);
  result.maintenance_fetches_after_settle = rebooted->stats().maintenance_fetches;

  for (size_t i = 0; i < ids.size(); ++i) {
    auto looked = net.LookupSync(net.node(3), ids[i]);
    if (looked.ok() &&
        looked.value().content == ToBytes("payload-" + std::to_string(i))) {
      ++result.lookups_ok;
    }
  }

  // The durable run's registry carries the disk.* counters (bytes written,
  // fsyncs, recovery replay) — snapshot that one into the JSON document.
  if (durable) {
    json->SetMetrics(net.overlay().network().metrics());
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  ExpArgs args = ExpArgs::Parse(argc, argv);
  ExpJson json(args, "persistence");
  ScratchDir scratch;

  PrintHeader("E14: durable storage engine — throughput and reboot recovery",
              "persistent storage utility: replicas survive reboots (HotOS §1)");

  const uint64_t records = args.smoke ? 2000 : 20000;
  const uint64_t value_bytes = args.smoke ? 512 : 4096;
  std::printf("\nengine append/replay throughput (%llu records x %llu B)\n",
              static_cast<unsigned long long>(records),
              static_cast<unsigned long long>(value_bytes));
  std::printf("%12s %12s %10s %8s %10s %14s\n", "sync_every", "records/s",
              "MB/s", "fsyncs", "segments", "replay rec/s");
  for (uint32_t sync_every : {0u, 8u, 1u}) {
    ThroughputRow row = RunEngine(scratch, sync_every, records, value_bytes);
    std::printf("%12u %12.0f %10.1f %8llu %10llu %14.0f\n", row.sync_every,
                row.records_per_sec(), row.mb_per_sec(),
                static_cast<unsigned long long>(row.fsyncs),
                static_cast<unsigned long long>(row.segments),
                row.replay_records_per_sec());

    JsonValue j = JsonValue::Object();
    j.Set("sync_every", static_cast<uint64_t>(row.sync_every));
    j.Set("records", row.records);
    j.Set("value_bytes", row.value_bytes);
    j.Set("append_seconds", row.append_seconds);
    j.Set("records_per_sec", row.records_per_sec());
    j.Set("mb_per_sec", row.mb_per_sec());
    j.Set("fsyncs", row.fsyncs);
    j.Set("segments", row.segments);
    j.Set("replay_seconds", row.replay_seconds);
    j.Set("replayed_records", row.replayed_records);
    j.Set("replay_records_per_sec", row.replay_records_per_sec());
    json.AddRow("engine_throughput", std::move(j));
  }

  const int files = args.smoke ? 6 : 20;
  std::printf("\nreboot recovery (16 nodes, %d files, k=3, crash one holder)\n",
              files);
  std::printf("%10s %8s %12s %14s %18s %10s\n", "mode", "held", "recovered",
              "fetch@boot", "fetch@settled", "lookups");
  for (bool durable : {true, false}) {
    RebootResult r = RunReboot(durable, scratch.Sub("state"), 1401, files, &json);
    std::printf("%10s %8zu %12zu %14llu %18llu %7zu/%zu\n",
                durable ? "durable" : "volatile", r.held_before_crash,
                r.recovered_at_boot,
                static_cast<unsigned long long>(r.maintenance_fetches_at_boot),
                static_cast<unsigned long long>(r.maintenance_fetches_after_settle),
                r.lookups_ok, r.files_inserted);

    JsonValue j = JsonValue::Object();
    j.Set("mode", durable ? "durable" : "volatile");
    j.Set("files_inserted", static_cast<uint64_t>(r.files_inserted));
    j.Set("held_before_crash", static_cast<uint64_t>(r.held_before_crash));
    j.Set("recovered_at_boot", static_cast<uint64_t>(r.recovered_at_boot));
    j.Set("maintenance_fetches_at_boot", r.maintenance_fetches_at_boot);
    j.Set("maintenance_fetches_after_settle", r.maintenance_fetches_after_settle);
    j.Set("lookups_ok", static_cast<uint64_t>(r.lookups_ok));
    json.AddRow("reboot", std::move(j));

    if (durable) {
      // Contract with the issue/acceptance check: a durable reboot serves
      // every recovered replica without a single maintenance fetch.
      PAST_CHECK_MSG(r.recovered_at_boot == r.held_before_crash,
                 "durable reboot lost replicas");
      PAST_CHECK_MSG(r.maintenance_fetches_after_settle == 0,
                 "recovered replicas were re-fetched");
    }
  }

  std::printf("\nexpectation: durable reboot recovers all held replicas with "
              "0 maintenance fetches;\nvolatile reboot recovers none and "
              "relies on the surviving k-1 holders.\n");
  return json.Finish() ? 0 : 1;
}
