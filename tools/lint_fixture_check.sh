#!/bin/sh
# Asserts past_lint's verdict on a lint self-test fixture tree.
#
#   lint_fixture_check.sh <past_lint> <fixture-root> <rule> fail|pass
#
# `fail` demands exit code exactly 1 (violations found): the positive
# control — a rule that silently stops firing flips this to 0 and breaks
# CI. `pass` demands exit code exactly 0: the negative control — a rule
# that starts over-matching (strings, comments, suppressed lines) flips
# this to 1. Exact codes matter: a usage error (2) must never masquerade
# as a detected violation, which a plain WILL_FAIL inversion would allow.
set -u

lint="$1"
root="$2"
rule="$3"
expect="$4"

case "$expect" in
  fail) want=1 ;;
  pass) want=0 ;;
  *) echo "lint_fixture_check: unknown expectation '$expect'" >&2; exit 2 ;;
esac

"$lint" --root "$root" --rule "$rule"
code=$?

if [ "$code" -ne "$want" ]; then
  echo "lint_fixture_check: --rule $rule on $root exited $code," \
       "expected $want ($expect)" >&2
  exit 1
fi
exit 0
