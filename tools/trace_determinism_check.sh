#!/bin/sh
# Trace determinism gate: runs an exp_* binary with --json AND --trace-out at
# --threads 1 and --threads 4 and requires every artifact — stdout, the JSON
# document, the span dump, and the past_stats Chrome conversion of that dump
# — to be byte-identical. Spans carry sim-time timestamps and record-order
# ids, so arming the tracer must not perturb the simulation and the dump must
# not depend on the thread count.
#
# usage: trace_determinism_check.sh <exp-binary> <past_stats-binary> <out-dir> <tag>
set -eu
exe="$1"
stats="$2"
dir="$3"
tag="$4"

# Both runs write to the same thread-agnostic paths (renamed per thread count
# afterwards) so the "wrote <path>" lines in the captured stdout compare equal.
json="$dir/TDET_${tag}.json"
trace="$dir/TDET_${tag}_trace.json"
chrome="$dir/TDET_${tag}_chrome.json"
for t in 1 4; do
  "$exe" --smoke --threads "$t" --json "$json" --trace-out "$trace" \
    > "$dir/TDET_${tag}_t${t}.txt"
  "$stats" chrome "$trace" "$chrome" > /dev/null
  mv "$json" "$dir/TDET_${tag}_t${t}.json"
  mv "$trace" "$dir/TDET_${tag}_t${t}_trace.json"
  mv "$chrome" "$dir/TDET_${tag}_t${t}_chrome.json"
done

ok=0
for suffix in .txt .json _trace.json _chrome.json; do
  a="$dir/TDET_${tag}_t1${suffix}"
  b="$dir/TDET_${tag}_t4${suffix}"
  if ! cmp -s "$a" "$b"; then
    echo "trace_determinism_check: $exe ${suffix#_} differs between --threads 1 and --threads 4" >&2
    diff "$a" "$b" | head -20 >&2 || true
    ok=1
  fi
done

# The conversion must be structurally valid Chrome trace JSON with at least
# one event: {"traceEvents": [{"ph": "X", ...}, ...]}.
grep -q '"traceEvents"' "$dir/TDET_${tag}_t1_chrome.json" || {
  echo "trace_determinism_check: chrome output lacks traceEvents" >&2
  ok=1
}
grep -q '"ph": "X"' "$dir/TDET_${tag}_t1_chrome.json" || {
  echo "trace_determinism_check: chrome output has no complete events" >&2
  ok=1
}

[ "$ok" -eq 0 ] || exit 1
echo "trace_determinism_check: $exe traces are byte-identical at --threads 1 and 4"
