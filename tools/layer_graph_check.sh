#!/bin/sh
# Round-trips the layer-DAG include graph through JSON:
#
#   layer_graph_check.sh <past_lint> <past_stats> <repo-root> <out.json>
#
# past_lint --graph-out must emit the graph while reporting the repo clean,
# and past_stats layers must parse it back and print the per-layer rollup.
# Guards the emitter (well-formed JSON through the repo's own parser, every
# edge attributed) and the reader in one gate.
set -eu

lint="$1"
stats="$2"
root="$3"
out="$4"

"$lint" --root "$root" --rule layer-dag --graph-out "$out"

summary="$("$stats" layers "$out")"
echo "$summary"

case "$summary" in
  *"back-edges: 0"*) ;;
  *) echo "layer_graph_check: expected 'back-edges: 0' in the rollup" >&2
     exit 1 ;;
esac
case "$summary" in
  *"src/pastry/"*) ;;
  *) echo "layer_graph_check: rollup is missing the src/pastry/ layer" >&2
     exit 1 ;;
esac
exit 0
