#!/bin/sh
# Runs an exp_* binary twice with identical arguments and requires the two
# --json documents to be byte-identical. This is the runtime complement of
# past_lint's nondeterminism rule: the lint bans the sources of wall-clock
# and ambient randomness, this proves the seeded simulation actually replays.
#
# usage: determinism_check.sh <exp-binary> <out1.json> <out2.json>
set -eu
exe="$1"
out1="$2"
out2="$3"

"$exe" --smoke --json "$out1" > /dev/null
"$exe" --smoke --json "$out2" > /dev/null

if ! cmp -s "$out1" "$out2"; then
  echo "determinism_check: $exe produced different output across two runs" >&2
  diff "$out1" "$out2" | head -20 >&2 || true
  exit 1
fi
echo "determinism_check: $exe output is byte-identical across runs"
