#!/bin/sh
# CI entry point: configure, build, then run the correctness gates in order of
# increasing cost — static lint first, fuzz smoke next, full suite last. Any
# failure stops the run. Usage:
#
#   tools/check.sh            # release preset (build-release/)
#   tools/check.sh asan       # ASan+UBSan preset (build-asan/)
#   tools/check.sh tsan       # ThreadSanitizer preset (build-tsan/)
#   tools/check.sh tidy       # clang-tidy on every compile (build-tidy/)
#   tools/check.sh lint       # fast mode: build only past_lint/past_stats,
#                             # run the static rules + fixture self-tests
#   tools/check.sh scale      # fast mode: build the scale targets, run the
#                             # 100k-node gate + wheel determinism grid
#                             # (asserts the bytes-per-node budget)
#
# The asan run is the configuration the fuzz drivers are most valuable under:
# a decoder overread that slips past the invariant checks still aborts. The
# tsan run exists for the parallel TrialRunner (bench/exp_util.h): the
# parallel_determinism ctests drive exp binaries at --threads 4 under it.
# The lint mode is the pre-push loop: seconds, not minutes — everything in
# `ctest -L lint` except the determinism reruns that need experiment
# binaries.
set -eu

preset="${1:-release}"
repo="$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)"
cd "$repo"

if [ "$preset" = "lint" ]; then
  echo "== configure (preset: release)"
  cmake --preset release
  echo "== build (past_lint, past_stats only)"
  cmake --build --preset release --target past_lint past_stats \
    -j "$(nproc 2>/dev/null || echo 4)"
  echo "== lint gate (ctest -L lint, determinism reruns excluded)"
  ctest --test-dir build-release -L lint -LE determinism --output-on-failure
  echo "== check.sh: lint gate passed"
  exit 0
fi

if [ "$preset" = "scale" ]; then
  echo "== configure (preset: release)"
  cmake --preset release
  echo "== build (scale targets only)"
  cmake --build --preset release --target exp_scale exp_churn json_check \
    -j "$(nproc 2>/dev/null || echo 4)"
  echo "== scale gate (ctest -L scale)"
  ctest --test-dir build-release -L scale --output-on-failure
  echo "== check.sh: scale gate passed"
  exit 0
fi

echo "== configure (preset: $preset)"
cmake --preset "$preset"

echo "== build"
cmake --build --preset "$preset" -j "$(nproc 2>/dev/null || echo 4)"

build_dir="build-$preset"

echo "== lint gate (ctest -L lint)"
ctest --test-dir "$build_dir" -L lint --output-on-failure

echo "== fuzz smoke gate (ctest -L fuzz_smoke)"
ctest --test-dir "$build_dir" -L fuzz_smoke --output-on-failure

echo "== crypto differential gate (ctest -L crypto_diff)"
ctest --test-dir "$build_dir" -L crypto_diff --output-on-failure

echo "== trace determinism gate (ctest -R trace_determinism)"
ctest --test-dir "$build_dir" -R trace_determinism --output-on-failure

echo "== serving gate (ctest -R 'serving_smoke|serving_determinism')"
# The sharded group-commit engine under open-loop load: smoke sweep + JSON
# contract, then the shard/thread state-digest determinism check.
ctest --test-dir "$build_dir" -R "serving_smoke|serving_determinism" \
  --output-on-failure

echo "== scale gate (ctest -L scale)"
# Million-node-path acceptance: the 100k-node BuildFast overlay must route
# correctly within the log_16 hop bound and under the bytes-per-node budget,
# and output must be byte-identical across wheel granularities and threads.
ctest --test-dir "$build_dir" -L scale --output-on-failure

echo "== cluster gate (ctest -L cluster)"
# Real daemons over localhost sockets: N processes, cross-process
# insert/lookup/reclaim, kill-one-node survival. Bounded by both the ctest
# TIMEOUT property and this outer timeout so a wedged daemon cannot hang CI.
ctest --test-dir "$build_dir" -L cluster --timeout 300 --output-on-failure

echo "== full suite"
ctest --test-dir "$build_dir" -j "$(nproc 2>/dev/null || echo 4)" \
  --output-on-failure

echo "== check.sh: all gates passed ($preset)"
