#!/bin/sh
# Runs an exp_* binary at --threads 1 and --threads 4 and requires BOTH the
# stdout and the --json document to be byte-identical. This is the acceptance
# contract of the TrialRunner: trials execute on a worker pool in whatever
# order the scheduler picks, but results commit in trial-index order, so
# output must not depend on the thread count.
#
# usage: parallel_determinism_check.sh <exp-binary> <out-dir> <tag>
set -eu
exe="$1"
dir="$2"
tag="$3"

json="$dir/PDET_${tag}.json"

"$exe" --smoke --threads 1 --json "$json" > "$dir/PDET_${tag}_t1.txt"
mv "$json" "$dir/PDET_${tag}_t1.json"
"$exe" --smoke --threads 4 --json "$json" > "$dir/PDET_${tag}_t4.txt"
mv "$json" "$dir/PDET_${tag}_t4.json"

ok=0
if ! cmp -s "$dir/PDET_${tag}_t1.json" "$dir/PDET_${tag}_t4.json"; then
  echo "parallel_determinism_check: $exe JSON differs between --threads 1 and --threads 4" >&2
  diff "$dir/PDET_${tag}_t1.json" "$dir/PDET_${tag}_t4.json" | head -20 >&2 || true
  ok=1
fi
if ! cmp -s "$dir/PDET_${tag}_t1.txt" "$dir/PDET_${tag}_t4.txt"; then
  echo "parallel_determinism_check: $exe stdout differs between --threads 1 and --threads 4" >&2
  diff "$dir/PDET_${tag}_t1.txt" "$dir/PDET_${tag}_t4.txt" | head -20 >&2 || true
  ok=1
fi
[ "$ok" -eq 0 ] || exit 1
echo "parallel_determinism_check: $exe output is byte-identical at --threads 1 and 4"
