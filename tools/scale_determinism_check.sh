#!/bin/sh
# Runs an exp_* binary across the (timer-wheel granularity, thread count)
# grid {1, 64} x {1, 4} and requires stdout and the --json document to be
# byte-identical in every cell. This is the acceptance contract of the
# batched maintenance scheduler: the wheel may coalesce however many timers
# per bucket the granularity allows, but callbacks fire at their exact
# scheduled times in a bucket-independent order, so no simulation outcome —
# and therefore no output byte — may depend on the bucket width (or on the
# TrialRunner's worker count).
#
# usage: scale_determinism_check.sh <exp-binary> <out-dir> <tag>
set -eu
exe="$1"
dir="$2"
tag="$3"

ref_json=""
ref_txt=""
ok=0
for gran in 1 64; do
  for threads in 1 4; do
    cell="g${gran}_t${threads}"
    json="$dir/SDET_${tag}_${cell}.json"
    txt="$dir/SDET_${tag}_${cell}.txt"
    "$exe" --smoke --threads "$threads" --wheel-granularity "$gran" \
      --json "$json" > "$txt.raw"
    # The trailing "wrote <path>" line names the per-cell output file; drop
    # it so stdout comparison covers only simulation-derived bytes.
    sed '/^wrote /d' "$txt.raw" > "$txt"
    rm -f "$txt.raw"
    if [ -z "$ref_json" ]; then
      ref_json="$json"
      ref_txt="$txt"
      continue
    fi
    if ! cmp -s "$ref_json" "$json"; then
      echo "scale_determinism_check: $exe JSON differs at $cell" >&2
      diff "$ref_json" "$json" | head -20 >&2 || true
      ok=1
    fi
    if ! cmp -s "$ref_txt" "$txt"; then
      echo "scale_determinism_check: $exe stdout differs at $cell" >&2
      diff "$ref_txt" "$txt" | head -20 >&2 || true
      ok=1
    fi
  done
done
[ "$ok" -eq 0 ] || exit 1
echo "scale_determinism_check: $exe output is byte-identical across granularity {1,64} x threads {1,4}"
