// past_stats — offline reader for experiment --json and --trace-out dumps.
//
// Subcommands:
//   past_stats summary <exp.json>
//       Prints the quantile table of every log-histogram in the dump's
//       "metrics" section (count, p50/p90/p99/p999, mean, max) and the
//       per-rule routing-hop breakdown from the pastry.route.rule.* counters.
//   past_stats trace <trace.json>
//       Prints a per-name span summary (count, total/mean duration) of a
//       --trace-out dump, plus the dropped-span count.
//   past_stats chrome <trace.json> <out.json>
//       Converts a --trace-out dump to Chrome trace-event JSON (complete
//       "X" events, microsecond timestamps) loadable in Perfetto or
//       chrome://tracing. Spans keep their id/parent/trace_id and
//       annotations in "args"; the recording node becomes the tid.
//   past_stats layers <include-graph.json>
//       Renders the layer-DAG include graph that `past_lint --graph-out`
//       emits: one row per architecture layer with rank, group, include
//       fan-out/fan-in, and suppressed (lint:allow-layer) edge counts, plus
//       the total back-edge count (0 in a clean tree).
//
// Output is a pure function of the input file (no clocks, no locale), so
// ctest can diff it byte-for-byte across runs and thread counts.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/obs/json.h"

namespace past {
namespace {

bool ReadFile(const char* path, std::string* out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "past_stats: cannot open %s\n", path);
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

bool LoadJson(const char* path, JsonValue* doc) {
  std::string text;
  if (!ReadFile(path, &text)) {
    return false;
  }
  if (!JsonValue::Parse(text, doc)) {
    std::fprintf(stderr, "past_stats: %s is not valid JSON\n", path);
    return false;
  }
  return true;
}

double Num(const JsonValue* v) { return v != nullptr && v->is_number() ? v->AsDouble() : 0.0; }

// --- summary ----------------------------------------------------------------

int Summary(const char* path) {
  JsonValue doc;
  if (!LoadJson(path, &doc)) {
    return 1;
  }
  const JsonValue* experiment = doc.Find("experiment");
  std::printf("experiment: %s\n",
              experiment != nullptr && experiment->is_string()
                  ? experiment->AsString().c_str()
                  : "?");

  const JsonValue* log_hists = doc.FindPath("metrics/log_histograms");
  if (log_hists != nullptr && log_hists->is_object() &&
      !log_hists->members().empty()) {
    std::printf("\n%-28s %10s %10s %10s %10s %10s %12s %12s\n", "latency/value",
                "count", "p50", "p90", "p99", "p999", "mean", "max");
    for (const auto& [name, h] : log_hists->members()) {
      std::printf("%-28s %10.0f %10.1f %10.1f %10.1f %10.1f %12.1f %12.1f\n",
                  name.c_str(), Num(h.Find("count")), Num(h.Find("p50")),
                  Num(h.Find("p90")), Num(h.Find("p99")), Num(h.Find("p999")),
                  Num(h.Find("mean")), Num(h.Find("max")));
    }
  } else {
    std::printf("\n(no log_histograms section in %s)\n", path);
  }

  const JsonValue* counters = doc.FindPath("metrics/counters");
  if (counters != nullptr && counters->is_object()) {
    constexpr const char* kRulePrefix = "pastry.route.rule.";
    double total = 0.0;
    std::vector<std::pair<std::string, double>> rules;
    for (const auto& [name, v] : counters->members()) {
      if (name.rfind(kRulePrefix, 0) == 0) {
        rules.emplace_back(name.substr(std::strlen(kRulePrefix)), Num(&v));
        total += Num(&v);
      }
    }
    if (!rules.empty() && total > 0.0) {
      std::printf("\nrouting-hop attribution (%0.f hops):\n", total);
      for (const auto& [rule, count] : rules) {
        std::printf("  %-18s %10.0f  %5.1f%%\n", rule.c_str(), count,
                    100.0 * count / total);
      }
    }
  }

  const JsonValue* timeseries = doc.FindPath("results/timeseries");
  if (timeseries != nullptr && timeseries->is_array()) {
    std::printf("\ntimeseries: %zu rows", timeseries->size());
    if (timeseries->size() > 0) {
      const JsonValue& last = timeseries->at(timeseries->size() - 1);
      std::printf(" (t = %.0f us at last row)", Num(last.Find("t_us")));
    }
    std::printf("\n");
  }

  // exp_serving dumps: the offered-load sweep plus the ops/sec-at-SLO
  // summary row.
  const JsonValue* sweep = doc.FindPath("results/sweep");
  if (sweep != nullptr && sweep->is_array() && sweep->size() > 0) {
    std::printf("\nserving sweep (%zu rates):\n", sweep->size());
    std::printf("  %10s %10s %12s %12s %7s\n", "offered/s", "achieved/s",
                "ins p99 us", "look p99 us", "errors");
    for (size_t i = 0; i < sweep->size(); ++i) {
      const JsonValue& row = sweep->at(i);
      std::printf("  %10.0f %10.0f %12.0f %12.0f %7.0f\n",
                  Num(row.Find("offered_per_sec")),
                  Num(row.Find("achieved_per_sec")),
                  Num(row.Find("insert_p99_us")),
                  Num(row.Find("lookup_p99_us")), Num(row.Find("errors")));
    }
  }
  const JsonValue* slo = doc.FindPath("results/slo");
  if (slo != nullptr && slo->is_object()) {
    std::printf("\nSLO: insert p99 <= %.0f us -> %.0f ops/sec sustained "
                "(offered %.0f/s, %.0f shards, %.0f threads)\n",
                Num(slo->Find("slo_p99_us")), Num(slo->Find("max_ops_per_sec")),
                Num(slo->Find("offered_per_sec")), Num(slo->Find("shards")),
                Num(slo->Find("threads")));
  }
  return 0;
}

// --- trace ------------------------------------------------------------------

const JsonValue* SpansOf(const JsonValue& doc, const char* path) {
  const JsonValue* spans = doc.Find("spans");
  if (spans == nullptr || !spans->is_array()) {
    std::fprintf(stderr, "past_stats: %s has no \"spans\" array\n", path);
    return nullptr;
  }
  return spans;
}

int TraceSummary(const char* path) {
  JsonValue doc;
  if (!LoadJson(path, &doc)) {
    return 1;
  }
  const JsonValue* spans = SpansOf(doc, path);
  if (spans == nullptr) {
    return 1;
  }
  struct NameStats {
    uint64_t count = 0;
    double total_us = 0.0;
  };
  std::map<std::string, NameStats> by_name;  // sorted for stable output
  for (const JsonValue& s : spans->items()) {
    const JsonValue* name = s.Find("name");
    if (name == nullptr || !name->is_string()) {
      continue;
    }
    NameStats& st = by_name[name->AsString()];
    ++st.count;
    st.total_us += Num(s.Find("end_us")) - Num(s.Find("start_us"));
  }
  std::printf("%zu spans, %.0f dropped\n", spans->size(),
              Num(doc.Find("dropped")));
  std::printf("%-24s %10s %14s %14s\n", "span", "count", "total_us", "mean_us");
  for (const auto& [name, st] : by_name) {
    std::printf("%-24s %10llu %14.0f %14.1f\n", name.c_str(),
                static_cast<unsigned long long>(st.count), st.total_us,
                st.total_us / static_cast<double>(st.count));
  }
  return 0;
}

// --- chrome conversion ------------------------------------------------------

int Chrome(const char* in_path, const char* out_path) {
  JsonValue doc;
  if (!LoadJson(in_path, &doc)) {
    return 1;
  }
  const JsonValue* spans = SpansOf(doc, in_path);
  if (spans == nullptr) {
    return 1;
  }
  JsonValue events = JsonValue::Array();
  for (const JsonValue& s : spans->items()) {
    const JsonValue* name = s.Find("name");
    if (name == nullptr || !name->is_string()) {
      continue;
    }
    const std::string& full = name->AsString();
    JsonValue ev = JsonValue::Object();
    ev.Set("name", full);
    // Category = the layer prefix ("past", "pastry"), so the viewer can
    // filter by layer.
    ev.Set("cat", full.substr(0, full.find('.')));
    ev.Set("ph", "X");  // complete event: ts + dur, both microseconds
    ev.Set("ts", Num(s.Find("start_us")));
    ev.Set("dur", Num(s.Find("end_us")) - Num(s.Find("start_us")));
    ev.Set("pid", 0);
    ev.Set("tid", Num(s.Find("node")));
    JsonValue args = JsonValue::Object();
    args.Set("id", Num(s.Find("id")));
    args.Set("parent", Num(s.Find("parent")));
    args.Set("trace_id", Num(s.Find("trace_id")));
    if (const JsonValue* ann = s.Find("annotations");
        ann != nullptr && ann->is_object()) {
      for (const auto& [key, value] : ann->members()) {
        args.Set(key, value);
      }
    }
    ev.Set("args", std::move(args));
    events.Append(std::move(ev));
  }
  JsonValue root = JsonValue::Object();
  root.Set("traceEvents", std::move(events));
  root.Set("displayTimeUnit", "ms");
  std::ofstream out(out_path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "past_stats: cannot open %s for writing\n", out_path);
    return 1;
  }
  out << root.Dump(2) << "\n";
  out.flush();
  if (!out) {
    std::fprintf(stderr, "past_stats: failed writing %s\n", out_path);
    return 1;
  }
  std::printf("wrote %s (%zu events)\n", out_path,
              root.Find("traceEvents")->size());
  return 0;
}

// --- layer-DAG include graph ------------------------------------------------

// Renders the include graph past_lint --graph-out emits: one row per
// architecture layer with its file fan-out/fan-in and any surviving
// back-edges (allowed=false should be impossible in a clean tree — the lint
// gate fails first — but the reader still surfaces them).
int Layers(const char* path) {
  JsonValue doc;
  if (!LoadJson(path, &doc)) {
    return 1;
  }
  const JsonValue* layers = doc.Find("layers");
  const JsonValue* edges = doc.Find("edges");
  if (layers == nullptr || !layers->is_array() || edges == nullptr ||
      !edges->is_array()) {
    std::fprintf(stderr,
                 "past_stats: %s has no layers/edges arrays (emit it with "
                 "past_lint --graph-out)\n",
                 path);
    return 1;
  }
  struct LayerStats {
    double rank = 0;
    std::string group;
    uint64_t out_edges = 0;   // includes leaving this layer's files
    uint64_t in_edges = 0;    // includes pointing at this layer
    uint64_t suppressed = 0;  // lint:allow-layer edges from this layer
  };
  std::vector<std::string> order;  // table order = rank order as emitted
  std::map<std::string, LayerStats> by_dir;
  for (const JsonValue& l : layers->items()) {
    const JsonValue* dir = l.Find("dir");
    if (dir == nullptr || !dir->is_string()) {
      continue;
    }
    LayerStats& st = by_dir[dir->AsString()];
    st.rank = Num(l.Find("rank"));
    const JsonValue* group = l.Find("group");
    st.group = group != nullptr && group->is_string() ? group->AsString() : "?";
    order.push_back(dir->AsString());
  }
  uint64_t back_edges = 0;
  for (const JsonValue& e : edges->items()) {
    const JsonValue* from = e.Find("from_layer");
    const JsonValue* to = e.Find("to_layer");
    if (from == nullptr || !from->is_string() || to == nullptr ||
        !to->is_string()) {
      continue;
    }
    LayerStats& src = by_dir[from->AsString()];
    ++src.out_edges;
    ++by_dir[to->AsString()].in_edges;
    const JsonValue* allowed = e.Find("allowed");
    const JsonValue* suppressed = e.Find("suppressed");
    if (suppressed != nullptr && suppressed->is_bool() &&
        suppressed->AsBool()) {
      ++src.suppressed;
    }
    if (allowed != nullptr && allowed->is_bool() && !allowed->AsBool()) {
      ++back_edges;
    }
  }
  std::printf("%zu layers, %zu include edges, back-edges: %llu\n\n",
              order.size(), edges->size(),
              static_cast<unsigned long long>(back_edges));
  std::printf("%-18s %5s %-12s %9s %9s %10s\n", "layer", "rank", "group",
              "out-edges", "in-edges", "suppressed");
  for (const std::string& dir : order) {
    const LayerStats& st = by_dir[dir];
    std::printf("%-18s %5.0f %-12s %9llu %9llu %10llu\n", dir.c_str(), st.rank,
                st.group.c_str(),
                static_cast<unsigned long long>(st.out_edges),
                static_cast<unsigned long long>(st.in_edges),
                static_cast<unsigned long long>(st.suppressed));
  }
  return 0;
}

int Usage() {
  std::fprintf(stderr,
               "usage: past_stats summary <exp.json>\n"
               "       past_stats trace <trace.json>\n"
               "       past_stats chrome <trace.json> <out.json>\n"
               "       past_stats layers <include-graph.json>\n");
  return 2;
}

}  // namespace
}  // namespace past

int main(int argc, char** argv) {
  if (argc < 2) {
    return past::Usage();
  }
  if (std::strcmp(argv[1], "summary") == 0 && argc == 3) {
    return past::Summary(argv[2]);
  }
  if (std::strcmp(argv[1], "trace") == 0 && argc == 3) {
    return past::TraceSummary(argv[2]);
  }
  if (std::strcmp(argv[1], "chrome") == 0 && argc == 4) {
    return past::Chrome(argv[2], argv[3]);
  }
  if (std::strcmp(argv[1], "layers") == 0 && argc == 3) {
    return past::Layers(argv[2]);
  }
  return past::Usage();
}
