#!/bin/sh
# Acceptance contract of the sharded group-commit engine: the durable logical
# state is a function of the applied operations alone — never of how they
# were partitioned across shards or racing client threads. exp_serving
# --check applies the seeded serving schedule through the full concurrent
# engine (group commit, background compaction, block cache), reopens the
# store cold, and prints a sorted-key state digest plus order-independent
# lookup aggregates. This script runs it at every shard/thread combination
# and requires all outputs to be byte-identical.
#
# usage: serving_determinism_check.sh <exp_serving-binary> <out-dir>
set -eu
exe="$1"
dir="$2"

ref=""
for shards in 1 4; do
  for threads in 1 4; do
    out="$dir/SDET_s${shards}_t${threads}.txt"
    "$exe" --check --smoke --shards "$shards" --threads "$threads" > "$out"
    if [ -z "$ref" ]; then
      ref="$out"
    elif ! cmp -s "$ref" "$out"; then
      echo "serving_determinism_check: digest differs between" \
           "$(basename "$ref") and shards=$shards threads=$threads" >&2
      diff "$ref" "$out" >&2 || true
      exit 1
    fi
  done
done
echo "serving_determinism_check: state digest is byte-identical across" \
     "shards {1,4} x threads {1,4}"
