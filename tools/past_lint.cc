// past_lint — repo-specific static checks, run as `ctest -L lint`.
//
// Architecture (DESIGN.md §13): a small C++ lexer turns every source file
// into a token stream — line splices joined, // and /* */ comments dropped,
// string/char/raw-string literal bodies carried as single tokens,
// preprocessor lines flagged — and a rule engine matches token patterns
// instead of raw lines. That kills the two failure modes of the old
// line-regex scanner in one move: banned identifiers inside strings or
// comments can no longer match (false positives), and identifiers split
// across a backslash-newline splice can no longer hide (false negatives).
// Every rule has a positive/negative fixture pair under
// tests/lint/fixtures/<rule>/ run by the lint_fixture_* ctests, so a rule
// that silently stops firing breaks CI.
//
// Rules enforced over src/, tests/, bench/, examples/ and tools/:
//
//   nondeterminism   library code must not reach for wall clocks or ambient
//                    randomness — simulations replay bit-identically from a
//                    seed. Timing clocks are allowed in bench/ and tools/;
//                    ambient randomness is banned everywhere. Escape:
//                    `// lint:allow-nondeterminism <reason>` (clocks only).
//   header-hygiene   headers start with a doc comment and use #pragma once.
//   includes         quoted includes are repo-root-relative, resolve to real
//                    files, are not duplicated, and a foo.cc with a sibling
//                    foo.h includes it first.
//   nodiscard        fallible declarations in src/ headers — bool-returning
//                    Decode*/Encode*/Parse*/Verify* — carry [[nodiscard]],
//                    and the type-level attributes on StatusCode / Result
//                    stay in place.
//   codec-pairing    every EncodeBody has a DecodeBody, every EncodeTo a
//                    DecodeFrom, every payload Encode() a Decode(), per
//                    header, so no wire struct can lose its parser.
//   global-state     src/ must not hold mutable namespace-scope or static
//                    state: the parallel TrialRunner relies on sim stacks
//                    being fully isolated per trial. Escape:
//                    `// lint:allow-global-state <reason>`.
//   metric-name      string literals registered via GetCounter / GetGauge /
//                    GetHistogram / GetLogHistogram must follow the dotted
//                    lowercase "<layer>.<metric>" convention. Escape:
//                    `// lint:allow-metric-name <reason>`.
//   raw-socket       socket()/bind()/connect() calls outside src/net/ — all
//                    real networking goes through the Transport interface
//                    and the socket_util.h wrappers. Escape:
//                    `// lint:allow-raw-socket <reason>`.
//   layer-dag        the architecture-layer table below orders the source
//                    directories (common < obs|crypto < sim|net|diskstore <
//                    pastry < storage < workload < bench|examples|tools|
//                    tests); every quoted #include edge must point strictly
//                    downward (or stay inside its own layer group). Back- or
//                    cross-edges fail the build. `--graph-out <path>` dumps
//                    the full include graph as JSON for `past_stats layers`.
//                    Escape: `// lint:allow-layer <reason>`.
//   blocking-call    src/ runs on the event loop: blocking syscalls and
//                    unbounded waits (sleep family anywhere; fsync family
//                    outside src/diskstore/; blocking connect/accept/recv/
//                    poll/read outside src/net/; bare condition waits
//                    outside src/common/) stall every simulated node or
//                    served peer at once. Escape:
//                    `// lint:allow-blocking <reason>`.
//   bare-mutex       std::mutex and friends outside src/common/ — shared
//                    state locks through the annotated past::Mutex /
//                    MutexLock / CondVar (src/common/mutex.h) so Clang's
//                    -Wthread-safety can prove lock discipline at compile
//                    time. Escape: `// lint:allow-bare-mutex <reason>`.
//
// Exit status 0 when clean; 1 with one "file:line: [rule] message" line per
// violation; 2 on usage error.
#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

// --- lexer -------------------------------------------------------------------

enum class TokKind {
  kIdent,    // identifiers and keywords
  kNumber,   // pp-numbers (integer/float literals)
  kString,   // "...", raw strings, u8/L/U-prefixed; text = body, no quotes
  kChar,     // '...'; text = body
  kHeader,   // <...> target of an #include; text = path, no brackets
  kPunct,    // operators/punctuation; "::" and "->" kept as one token
};

struct Token {
  TokKind kind;
  std::string text;
  size_t line;  // 0-based line of the token's first character
  bool pp;      // token is part of a preprocessor directive
};

// A character of the logical (splice-joined) stream plus its physical line.
struct LChar {
  char c;
  uint32_t line;
};

struct File {
  std::string rel;                 // repo-root-relative path, '/'-separated
  std::vector<std::string> lines;  // raw text, for suppression markers
  std::vector<Token> toks;
};

// Joins backslash-newline splices into one logical stream. A spliced
// identifier like "ra\<newline>nd" lexes as the single token "rand" — the
// false negative the old line scanner had — while every logical char keeps
// the physical line it came from, so reports stay accurate.
std::vector<LChar> SpliceLines(const std::vector<std::string>& lines) {
  std::vector<LChar> out;
  for (size_t li = 0; li < lines.size(); ++li) {
    const std::string& line = lines[li];
    bool spliced = !line.empty() && line.back() == '\\';
    size_t n = spliced ? line.size() - 1 : line.size();
    for (size_t i = 0; i < n; ++i) {
      out.push_back({line[i], static_cast<uint32_t>(li)});
    }
    if (!spliced) {
      out.push_back({'\n', static_cast<uint32_t>(li)});
    }
  }
  return out;
}

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// True when `ident` is a string-literal prefix (L"", u8"", uR"()", ...).
bool IsStringPrefix(const std::string& ident) {
  return ident == "L" || ident == "u" || ident == "U" || ident == "u8" ||
         ident == "R" || ident == "LR" || ident == "uR" || ident == "UR" ||
         ident == "u8R";
}

std::vector<Token> Lex(const std::vector<std::string>& lines) {
  std::vector<LChar> s = SpliceLines(lines);
  std::vector<Token> toks;
  size_t i = 0;
  bool at_line_start = true;  // only whitespace seen on this logical line
  bool in_pp = false;         // inside a preprocessor directive
  bool expect_header = false; // just lexed `# include`, a <...> may follow

  auto peek = [&](size_t k) -> char {
    return i + k < s.size() ? s[i + k].c : '\0';
  };

  while (i < s.size()) {
    char c = s[i].c;
    size_t line = s[i].line;
    if (c == '\n') {
      in_pp = false;
      expect_header = false;
      at_line_start = true;
      ++i;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\f' || c == '\v') {
      ++i;
      continue;
    }
    // Comments vanish: nothing in them can match a rule.
    if (c == '/' && peek(1) == '/') {
      while (i < s.size() && s[i].c != '\n') {
        ++i;
      }
      continue;
    }
    if (c == '/' && peek(1) == '*') {
      i += 2;
      // Scan for the closing */ across lines.
      while (i < s.size()) {
        if (s[i].c == '*' && peek(1) == '/') {
          i += 2;
          break;
        }
        ++i;
      }
      continue;
    }
    if (c == '#' && at_line_start) {
      in_pp = true;
      toks.push_back({TokKind::kPunct, "#", line, true});
      at_line_start = false;
      ++i;
      continue;
    }
    at_line_start = false;
    // #include <...> header-name: only valid right after `# include`.
    if (c == '<' && expect_header) {
      std::string text;
      ++i;
      while (i < s.size() && s[i].c != '>' && s[i].c != '\n') {
        text.push_back(s[i].c);
        ++i;
      }
      if (i < s.size() && s[i].c == '>') {
        ++i;
      }
      expect_header = false;
      toks.push_back({TokKind::kHeader, std::move(text), line, in_pp});
      continue;
    }
    if (c == '"' || c == '\'') {
      char quote = c;
      std::string body;
      ++i;
      while (i < s.size() && s[i].c != quote && s[i].c != '\n') {
        if (s[i].c == '\\' && i + 1 < s.size()) {
          body.push_back(s[i].c);
          body.push_back(s[i + 1].c);
          i += 2;
          continue;
        }
        body.push_back(s[i].c);
        ++i;
      }
      if (i < s.size() && s[i].c == quote) {
        ++i;  // closing quote; an unterminated literal ends at the newline
      }
      toks.push_back({quote == '"' ? TokKind::kString : TokKind::kChar,
                      std::move(body), line, in_pp});
      continue;
    }
    if (IsIdentStart(c)) {
      std::string ident;
      while (i < s.size() && IsIdentChar(s[i].c)) {
        ident.push_back(s[i].c);
        ++i;
      }
      // String prefixes fold into the literal they introduce.
      if (i < s.size() && s[i].c == '"' && IsStringPrefix(ident)) {
        if (ident.back() == 'R') {
          // Raw string: R"delim( ... )delim" — newlines allowed inside.
          ++i;  // consume the quote
          std::string delim;
          while (i < s.size() && s[i].c != '(') {
            delim.push_back(s[i].c);
            ++i;
          }
          if (i < s.size()) {
            ++i;  // consume '('
          }
          std::string body;
          std::string close = ")" + delim + "\"";
          while (i < s.size()) {
            bool match = true;
            for (size_t k = 0; k < close.size(); ++k) {
              if (i + k >= s.size() || s[i + k].c != close[k]) {
                match = false;
                break;
              }
            }
            if (match) {
              i += close.size();
              break;
            }
            body.push_back(s[i].c);
            ++i;
          }
          toks.push_back({TokKind::kString, std::move(body), line, in_pp});
        } else {
          // Ordinary prefixed literal: re-lex as a plain string.
          continue;  // the next loop iteration sees the '"'
        }
        continue;
      }
      if (in_pp && ident == "include" && !toks.empty() &&
          toks.back().kind == TokKind::kPunct && toks.back().text == "#") {
        expect_header = true;
      }
      toks.push_back({TokKind::kIdent, std::move(ident), line, in_pp});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0 ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))) != 0)) {
      // pp-number: digits, identifier chars, '.', and exponent signs.
      std::string num;
      while (i < s.size()) {
        char d = s[i].c;
        if (IsIdentChar(d) || d == '.') {
          num.push_back(d);
          ++i;
          continue;
        }
        if ((d == '+' || d == '-') && !num.empty() &&
            (num.back() == 'e' || num.back() == 'E' || num.back() == 'p' ||
             num.back() == 'P')) {
          num.push_back(d);
          ++i;
          continue;
        }
        break;
      }
      toks.push_back({TokKind::kNumber, std::move(num), line, in_pp});
      continue;
    }
    // Punctuation. "::" and "->" stay fused: rules ask "is this token a
    // scope qualifier / member access" constantly.
    if (c == ':' && peek(1) == ':') {
      toks.push_back({TokKind::kPunct, "::", line, in_pp});
      i += 2;
      continue;
    }
    if (c == '-' && peek(1) == '>') {
      toks.push_back({TokKind::kPunct, "->", line, in_pp});
      i += 2;
      continue;
    }
    toks.push_back({TokKind::kPunct, std::string(1, c), line, in_pp});
    ++i;
  }
  return toks;
}

// --- reporting and shared helpers --------------------------------------------

int g_violations = 0;

void Report(const File& f, size_t line_index, const char* rule,
            const std::string& message) {
  std::fprintf(stderr, "%s:%zu: [%s] %s\n", f.rel.c_str(), line_index + 1, rule,
               message.c_str());
  ++g_violations;
}

bool HasSuffix(const std::string& s, const char* suffix) {
  size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

bool HasPrefix(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool IsHeader(const File& f) { return HasSuffix(f.rel, ".h"); }

// True when the raw text of the token's line (or the line above) carries the
// given `lint:allow-<rule>` marker. Markers live in comments, which the
// lexer drops, so suppression always consults the raw lines.
bool Suppressed(const File& f, size_t line, const char* marker) {
  return (line < f.lines.size() &&
          f.lines[line].find(marker) != std::string::npos) ||
         (line > 0 && f.lines[line - 1].find(marker) != std::string::npos);
}

bool IsIdent(const Token& t, const char* text) {
  return t.kind == TokKind::kIdent && t.text == text;
}

bool IsPunct(const Token& t, const char* text) {
  return t.kind == TokKind::kPunct && t.text == text;
}

// True when toks[i..] begins the identifier/punct sequence `seq` (kString /
// kChar / kHeader tokens never match).
bool MatchesSeq(const std::vector<Token>& toks, size_t i,
                const std::vector<const char*>& seq) {
  if (i + seq.size() > toks.size()) {
    return false;
  }
  for (size_t k = 0; k < seq.size(); ++k) {
    const Token& t = toks[i + k];
    if ((t.kind != TokKind::kIdent && t.kind != TokKind::kPunct) ||
        t.text != seq[k]) {
      return false;
    }
  }
  return true;
}

size_t CountSeq(const File& f, const std::vector<const char*>& seq) {
  size_t n = 0;
  for (size_t i = 0; i < f.toks.size(); ++i) {
    if (MatchesSeq(f.toks, i, seq)) {
      ++n;
    }
  }
  return n;
}

// Call-site detection: identifier token followed by '('.
bool IsCall(const File& f, size_t i) {
  return f.toks[i].kind == TokKind::kIdent && i + 1 < f.toks.size() &&
         IsPunct(f.toks[i + 1], "(");
}

// --- include-edge collection (shared by `includes` and `layer-dag`) ----------

struct IncludeEdge {
  std::string from_file;  // repo-relative path of the including file
  std::string target;     // include target as written
  size_t line;
  bool quoted;  // "..." (repo-relative) vs <...> (system)
};

std::vector<IncludeEdge> CollectIncludes(const File& f) {
  std::vector<IncludeEdge> edges;
  const std::vector<Token>& t = f.toks;
  for (size_t i = 0; i + 1 < t.size(); ++i) {
    if (!(t[i].pp && IsPunct(t[i], "#") && IsIdent(t[i + 1], "include"))) {
      continue;
    }
    if (i + 2 >= t.size()) {
      continue;
    }
    const Token& target = t[i + 2];
    if (target.kind == TokKind::kString) {
      edges.push_back({f.rel, target.text, target.line, true});
    } else if (target.kind == TokKind::kHeader) {
      edges.push_back({f.rel, target.text, target.line, false});
    }
  }
  return edges;
}

// --- rule: nondeterminism ----------------------------------------------------

void CheckNondeterminism(const File& f) {
  // Ambient randomness has no place anywhere: everything draws from the
  // seeded past::Rng so runs replay bit-identically. No escape hatch.
  static const char* kRandomness[] = {"rand", "srand", "rand_r",
                                      "random_device", "getentropy"};
  // Wall clocks are banned from deterministic code; simulated time comes
  // from the event queue. bench/ and tools/ may measure real elapsed time.
  static const char* kClocks[] = {"system_clock", "steady_clock",
                                  "high_resolution_clock", "gettimeofday",
                                  "clock_gettime"};
  bool clocks_allowed = HasPrefix(f.rel, "bench/") || HasPrefix(f.rel, "tools/");
  for (size_t i = 0; i < f.toks.size(); ++i) {
    const Token& t = f.toks[i];
    if (t.kind != TokKind::kIdent) {
      continue;
    }
    for (const char* token : kRandomness) {
      if (t.text == token) {
        Report(f, t.line, "nondeterminism",
               t.text + " is banned: draw from the seeded past::Rng");
      }
    }
    if (!clocks_allowed && !Suppressed(f, t.line, "lint:allow-nondeterminism")) {
      for (const char* token : kClocks) {
        if (t.text == token) {
          Report(f, t.line, "nondeterminism",
                 t.text +
                     " in deterministic code: simulated time comes from the "
                     "event queue (sim::EventQueue), real time only in bench/");
        }
      }
      // time(nullptr) / time(NULL): the call shape, not the word "time".
      if (t.text == "time" && i + 3 < f.toks.size() &&
          IsPunct(f.toks[i + 1], "(") &&
          (IsIdent(f.toks[i + 2], "nullptr") || IsIdent(f.toks[i + 2], "NULL")) &&
          IsPunct(f.toks[i + 3], ")")) {
        Report(f, t.line, "nondeterminism",
               "time(nullptr) in deterministic code: simulated time comes "
               "from the event queue (sim::EventQueue), real time only in "
               "bench/");
      }
    }
  }
}

// --- rule: header-hygiene ----------------------------------------------------

void CheckHeaderHygiene(const File& f) {
  if (!IsHeader(f)) {
    return;
  }
  if (f.lines.empty() || f.lines[0].rfind("//", 0) != 0) {
    Report(f, 0, "header-hygiene",
           "header must start with a // doc comment describing the component");
  }
  bool saw_pragma_once = false;
  for (size_t i = 0; i + 1 < f.toks.size(); ++i) {
    if (!(f.toks[i].pp && IsPunct(f.toks[i], "#"))) {
      continue;
    }
    if (IsIdent(f.toks[i + 1], "pragma") && i + 2 < f.toks.size() &&
        IsIdent(f.toks[i + 2], "once")) {
      saw_pragma_once = true;
    }
    if (IsIdent(f.toks[i + 1], "ifndef") && i + 2 < f.toks.size() &&
        f.toks[i + 2].kind == TokKind::kIdent &&
        HasSuffix(f.toks[i + 2].text, "_H_")) {
      Report(f, f.toks[i + 1].line, "header-hygiene",
             "include guard macro: use #pragma once instead");
    }
  }
  if (!saw_pragma_once) {
    Report(f, 0, "header-hygiene", "missing #pragma once");
  }
}

// --- rule: includes ----------------------------------------------------------

void CheckIncludes(const File& f, const fs::path& root) {
  std::set<std::string> seen;
  std::vector<IncludeEdge> edges = CollectIncludes(f);
  std::vector<std::string> quoted;  // in order of appearance
  for (const IncludeEdge& e : edges) {
    if (!seen.insert(e.target).second) {
      Report(f, e.line, "includes", "duplicate include of " + e.target);
    }
    if (!e.quoted) {
      continue;  // system header
    }
    quoted.push_back(e.target);
    if (!HasPrefix(e.target, "src/") && !HasPrefix(e.target, "tests/") &&
        !HasPrefix(e.target, "bench/") && !HasPrefix(e.target, "tools/")) {
      Report(f, e.line, "includes",
             "quoted include must be repo-root-relative (src/..., tests/..., "
             "bench/...): " + e.target);
      continue;
    }
    if (!fs::exists(root / e.target)) {
      Report(f, e.line, "includes",
             "include does not resolve to a file: " + e.target);
    }
  }
  // foo.cc / foo.cpp must include its own header (src/.../foo.h) first, so
  // every header is verified self-contained by its own translation unit.
  bool is_source = HasSuffix(f.rel, ".cc") || HasSuffix(f.rel, ".cpp");
  if (is_source) {
    std::string stem = f.rel.substr(0, f.rel.find_last_of('.'));
    std::string own_header = stem + ".h";
    if (fs::exists(root / own_header)) {
      if (quoted.empty() || quoted[0] != own_header) {
        Report(f, 0, "includes",
               "must include own header \"" + own_header + "\" first");
      }
    }
  }
}

// --- rule: nodiscard ---------------------------------------------------------

void CheckNodiscard(const File& f) {
  if (!IsHeader(f) || !HasPrefix(f.rel, "src/")) {
    return;
  }
  static const char* kVerbs[] = {"Decode", "Encode", "Parse", "Verify"};
  const std::vector<Token>& t = f.toks;
  for (size_t i = 0; i + 2 < t.size(); ++i) {
    // Declaration shape: `bool <Verb...>(` — one identifier between the
    // return type and the open paren.
    if (!IsIdent(t[i], "bool") || t[i + 1].kind != TokKind::kIdent ||
        !IsPunct(t[i + 2], "(")) {
      continue;
    }
    bool fallible = false;
    for (const char* verb : kVerbs) {
      if (HasPrefix(t[i + 1].text, verb)) {
        fallible = true;
      }
    }
    if (!fallible) {
      continue;
    }
    // Annotated when a `nodiscard` token appears shortly before on the same
    // or the previous physical line ([[nodiscard]] static bool Decode...).
    bool annotated = false;
    for (size_t j = i; j-- > 0;) {
      if (t[j].line + 1 < t[i].line) {
        break;
      }
      if (IsIdent(t[j], "nodiscard")) {
        annotated = true;
        break;
      }
      if (i - j > 8) {
        break;
      }
    }
    if (!annotated) {
      Report(f, t[i].line, "nodiscard",
             "fallible declaration must be [[nodiscard]]: bool " +
                 t[i + 1].text);
    }
  }
  if (f.rel == "src/common/status.h") {
    if (CountSeq(f, {"enum", "class", "[", "[", "nodiscard", "]", "]",
                     "StatusCode"}) == 0) {
      Report(f, 0, "nodiscard", "StatusCode must be a [[nodiscard]] enum");
    }
    if (CountSeq(f, {"class", "[", "[", "nodiscard", "]", "]", "Result"}) ==
        0) {
      Report(f, 0, "nodiscard", "Result<T> must be a [[nodiscard]] class");
    }
  }
}

// --- rule: codec-pairing -----------------------------------------------------

void CheckCodecPairing(const File& f) {
  if (!IsHeader(f) || !HasPrefix(f.rel, "src/")) {
    return;
  }
  struct Pair {
    std::vector<const char*> encode;
    std::vector<const char*> decode;
    const char* label;
  };
  static const std::vector<Pair> kPairs = {
      {{"void", "EncodeBody", "("},
       {"static", "bool", "DecodeBody", "("},
       "EncodeBody/DecodeBody"},
      {{"void", "EncodeTo", "("},
       {"static", "bool", "DecodeFrom", "("},
       "EncodeTo/DecodeFrom"},
      {{"Bytes", "Encode", "(", ")", "const"},
       {"static", "bool", "Decode", "("},
       "Encode()/Decode"},
  };
  for (const Pair& p : kPairs) {
    size_t enc = CountSeq(f, p.encode);
    size_t dec = CountSeq(f, p.decode);
    if (enc != dec) {
      std::ostringstream msg;
      msg << enc << " encoder(s) vs " << dec << " decoder(s) for " << p.label
          << ": every encoder needs its decoder";
      Report(f, 0, "codec-pairing", msg.str());
    }
  }
}

// --- rule: global-state ------------------------------------------------------
//
// Mutable namespace-scope or static state in src/ breaks trial isolation:
// the parallel TrialRunner (bench/exp_util.h) runs independent sim stacks on
// worker threads, which is only sound when every piece of library state
// lives inside objects owned by one trial. Constants are fine. Statements
// are assembled from the token stream, so braces and semicolons inside
// strings or comments can no longer desynchronize the scope tracker, and
// declarations wrapped across lines are seen whole.

bool AnyTokenIs(const std::vector<const Token*>& stmt,
                const char* const* names, size_t count) {
  for (const Token* t : stmt) {
    if (t->kind != TokKind::kIdent) {
      continue;
    }
    for (size_t k = 0; k < count; ++k) {
      if (t->text == names[k]) {
        return true;
      }
    }
  }
  return false;
}

void CheckGlobalState(const File& f) {
  if (!HasPrefix(f.rel, "src/")) {
    return;
  }
  // Keywords that mean a statement is not a mutable variable definition:
  // type/alias/template machinery, or const-qualified data.
  static const char* kNotAVariable[] = {
      "namespace", "using",  "typedef",      "class",    "struct",
      "enum",      "union",  "template",     "friend",   "static_assert",
      "operator",  "concept"};
  static const char* kImmutable[] = {"const", "constexpr", "constinit"};

  std::vector<char> brace_is_namespace;
  std::vector<const Token*> stmt;  // tokens since the last `;`, `{` or `}`
  for (const Token& tok : f.toks) {
    if (tok.pp) {
      continue;  // preprocessor lines are not statements
    }
    if (IsPunct(tok, "{")) {
      bool is_ns = false;
      for (const Token* t : stmt) {
        if (IsIdent(*t, "namespace") || IsIdent(*t, "extern")) {
          is_ns = true;
        }
      }
      brace_is_namespace.push_back(is_ns ? 1 : 0);
      stmt.clear();
      continue;
    }
    if (IsPunct(tok, "}")) {
      if (!brace_is_namespace.empty()) {
        brace_is_namespace.pop_back();
      }
      stmt.clear();
      continue;
    }
    if (!IsPunct(tok, ";")) {
      stmt.push_back(&tok);
      continue;
    }
    // End of statement: decide whether it declares mutable state.
    if (stmt.empty()) {
      continue;
    }
    size_t line = stmt.front()->line;
    bool namespace_scope = true;
    for (char ns : brace_is_namespace) {
      if (ns == 0) {
        namespace_scope = false;
      }
    }
    bool has_parens = false;
    for (const Token* t : stmt) {
      if (IsPunct(*t, "(") || IsPunct(*t, ")")) {
        has_parens = true;
      }
    }
    bool decl_like = !has_parens && !AnyTokenIs(stmt, kImmutable, 3);
    bool suppressed = Suppressed(f, line, "lint:allow-global-state");
    if (decl_like && !suppressed) {
      bool starts_ident = stmt.front()->kind == TokKind::kIdent ||
                          IsPunct(*stmt.front(), "::");
      if (namespace_scope && starts_ident &&
          !AnyTokenIs(stmt, kNotAVariable, 12)) {
        Report(f, line, "global-state",
               "mutable namespace-scope state breaks trial isolation; make it "
               "per-instance or annotate lint:allow-global-state: " +
                   stmt.front()->text);
      } else if (!namespace_scope && IsIdent(*stmt.front(), "static") &&
                 !AnyTokenIs(stmt, kNotAVariable, 12)) {
        Report(f, line, "global-state",
               "mutable static breaks trial isolation; make it per-instance "
               "or annotate lint:allow-global-state: " + stmt.front()->text);
      }
    }
    stmt.clear();
  }
}

// --- rule: metric-name -------------------------------------------------------
//
// Instrument names feed the JSON dumps that json_check, past_stats, and the
// bench baselines parse; one misnamed metric silently breaks every required
// key path downstream. A literal passed to GetCounter/GetGauge/GetHistogram/
// GetLogHistogram must be dotted lowercase "<layer>.<metric>" ([a-z0-9_]
// segments, >= 2 of them). A literal ending in '.' is allowed when the call
// concatenates a computed suffix onto it.

bool IsValidMetricName(const std::string& name, bool concatenated) {
  std::string s = name;
  bool prefix_only = false;
  if (concatenated && !s.empty() && s.back() == '.') {
    s.pop_back();
    prefix_only = true;
  }
  if (s.empty()) {
    return false;
  }
  size_t segments = 1;
  bool segment_empty = true;
  for (char c : s) {
    if (c == '.') {
      if (segment_empty) {
        return false;  // empty segment ("a..b", ".a")
      }
      ++segments;
      segment_empty = true;
    } else if ((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_') {
      segment_empty = false;
    } else {
      return false;  // uppercase, spaces, dashes, ...
    }
  }
  if (segment_empty) {
    return false;
  }
  return prefix_only || segments >= 2;
}

void CheckMetricNames(const File& f) {
  static const char* kGetters[] = {"GetCounter", "GetGauge", "GetHistogram",
                                   "GetLogHistogram"};
  const std::vector<Token>& t = f.toks;
  for (size_t i = 0; i + 1 < t.size(); ++i) {
    bool getter = false;
    for (const char* g : kGetters) {
      if (IsIdent(t[i], g)) {
        getter = true;
      }
    }
    if (!getter || !IsPunct(t[i + 1], "(")) {
      continue;  // declaration or mention, not a call
    }
    if (Suppressed(f, t[i].line, "lint:allow-metric-name")) {
      continue;
    }
    // The token stream sees through line wrapping: the name literal is the
    // call's first argument wherever the formatter put it. Non-literal
    // names cannot be checked statically; skip them.
    if (i + 2 >= t.size() || t[i + 2].kind != TokKind::kString) {
      continue;
    }
    // Adjacent string literals concatenate ("net." "sent").
    std::string name = t[i + 2].text;
    size_t j = i + 3;
    while (j < t.size() && t[j].kind == TokKind::kString) {
      name += t[j].text;
      ++j;
    }
    bool concatenated = j < t.size() && IsPunct(t[j], "+");
    if (!IsValidMetricName(name, concatenated)) {
      Report(f, t[i + 2].line, "metric-name",
             "\"" + name +
                 "\" violates the dotted-lowercase <layer>.<metric> naming "
                 "convention (annotate lint:allow-metric-name to override)");
    }
  }
}

// --- rule: raw-socket --------------------------------------------------------

// Direct socket-API calls belong in src/net/, behind the Transport
// abstraction: its wrappers (socket_util.h) make every fd non-blocking and
// close-on-exec, and the transport adds framing, decode hardening, and
// metrics that ad-hoc sockets silently bypass.
void CheckRawSocket(const File& f) {
  if (HasPrefix(f.rel, "src/net/")) {
    return;
  }
  static const char* kCalls[] = {"socket", "bind", "connect"};
  const std::vector<Token>& t = f.toks;
  for (size_t i = 0; i < t.size(); ++i) {
    if (!IsCall(f, i)) {
      continue;
    }
    bool banned = false;
    for (const char* call : kCalls) {
      if (t[i].text == call) {
        banned = true;
      }
    }
    if (!banned) {
      continue;
    }
    // std::bind and other std:: qualified names are not socket calls; an
    // explicit global qualifier (::socket) very much is.
    if (i >= 2 && IsPunct(t[i - 1], "::") && IsIdent(t[i - 2], "std")) {
      continue;
    }
    if (Suppressed(f, t[i].line, "lint:allow-raw-socket")) {
      continue;
    }
    Report(f, t[i].line, "raw-socket",
           t[i].text +
               "() outside src/net/: go through the Transport interface or "
               "the src/net/socket_util.h wrappers (annotate "
               "lint:allow-raw-socket to override)");
  }
}

// --- rule: layer-dag ---------------------------------------------------------
//
// The architecture-layer table. Lower rank = lower layer; an include edge
// must point at a strictly lower rank or stay inside its own group. Groups
// capture sanctioned same-rank visibility: sim and net share the event-loop
// spine (sim::Network implements net::Transport; the transports schedule on
// sim::EventQueue), so they see each other; everything else at equal rank is
// isolated. The table is the checked-in statement of the dependency
// architecture — changing it is an architecture decision, not a lint tweak.

struct Layer {
  const char* prefix;  // directory prefix, '/'-terminated
  int rank;
  const char* group;
};

// Order: common < obs|crypto < sim|net|diskstore < pastry < storage <
// workload < bench|examples|tools|tests. obs sits low because metrics/span
// primitives are instrumented into every layer above; crypto is a leaf
// library; diskstore is a storage-engine primitive below pastry (storage
// composes it, routing never sees it).
const Layer kLayers[] = {
    {"src/common/", 0, "common"},
    {"src/obs/", 1, "obs"},
    {"src/crypto/", 1, "crypto"},
    {"src/sim/", 2, "event-loop"},
    {"src/net/", 2, "event-loop"},
    {"src/diskstore/", 2, "diskstore"},
    {"src/pastry/", 3, "pastry"},
    {"src/storage/", 4, "storage"},
    {"src/workload/", 5, "workload"},
    {"bench/", 6, "harness"},
    {"examples/", 6, "harness"},
    {"tools/", 6, "harness"},
    {"tests/", 6, "harness"},
};

const Layer* LayerOf(const std::string& path) {
  for (const Layer& l : kLayers) {
    if (HasPrefix(path, l.prefix)) {
      return &l;
    }
  }
  return nullptr;
}

struct GraphEdge {
  std::string from_file;
  std::string target;
  std::string from_layer;
  std::string to_layer;
  bool allowed;
  bool suppressed;
};

std::vector<GraphEdge> g_graph;  // quoted edges, collected for --graph-out

void CheckLayerDag(const File& f) {
  const Layer* from = LayerOf(f.rel);
  for (const IncludeEdge& e : CollectIncludes(f)) {
    if (!e.quoted) {
      continue;  // system headers are outside the architecture
    }
    const Layer* to = LayerOf(e.target);
    if (from == nullptr || to == nullptr) {
      continue;  // not part of the layered tree (e.g. fixture scratch files)
    }
    bool allowed = to->rank < from->rank ||
                   std::strcmp(from->group, to->group) == 0;
    bool suppressed =
        !allowed && Suppressed(f, e.line, "lint:allow-layer");
    g_graph.push_back({f.rel, e.target, from->prefix, to->prefix,
                       allowed || suppressed, suppressed});
    if (allowed || suppressed) {
      continue;
    }
    std::ostringstream msg;
    if (to->rank > from->rank) {
      msg << "layer back-edge: " << from->prefix << " (rank " << from->rank
          << ") must not include " << e.target << " (" << to->prefix
          << ", rank " << to->rank << ")";
    } else {
      msg << "cross-layer include at equal rank: " << from->prefix << " ["
          << from->group << "] must not include " << e.target << " ("
          << to->prefix << " [" << to->group << "])";
    }
    msg << "; move the dependency down a layer or annotate lint:allow-layer "
           "with a justification";
    Report(f, e.line, "layer-dag", msg.str());
  }
}

// Emits the collected include graph as JSON: the layer table, every quoted
// edge with its layer attribution, and per-layer rollups. `past_stats
// layers <path>` renders it; any JSON tooling can consume it.
bool WriteGraphJson(const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "past_lint: cannot open %s for writing\n",
                 path.c_str());
    return false;
  }
  out << "{\n  \"layers\": [\n";
  for (size_t i = 0; i < sizeof(kLayers) / sizeof(kLayers[0]); ++i) {
    out << "    {\"dir\": \"" << kLayers[i].prefix
        << "\", \"rank\": " << kLayers[i].rank << ", \"group\": \""
        << kLayers[i].group << "\"}"
        << (i + 1 < sizeof(kLayers) / sizeof(kLayers[0]) ? "," : "") << "\n";
  }
  out << "  ],\n  \"edges\": [\n";
  for (size_t i = 0; i < g_graph.size(); ++i) {
    const GraphEdge& e = g_graph[i];
    out << "    {\"from\": \"" << e.from_file << "\", \"to\": \"" << e.target
        << "\", \"from_layer\": \"" << e.from_layer << "\", \"to_layer\": \""
        << e.to_layer << "\", \"allowed\": " << (e.allowed ? "true" : "false")
        << ", \"suppressed\": " << (e.suppressed ? "true" : "false") << "}"
        << (i + 1 < g_graph.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  out.flush();
  if (!out) {
    std::fprintf(stderr, "past_lint: failed writing %s\n", path.c_str());
    return false;
  }
  return true;
}

// --- rule: blocking-call -----------------------------------------------------
//
// Everything under src/ executes on an event-dispatch path: simulated nodes
// run inside EventQueue callbacks, daemon nodes inside the SocketTransport
// poll loop. One blocking syscall stalls every node in the process. The
// sleep family is banned outright (schedule an event instead); durability
// syncs belong behind the diskstore Env; blocking network I/O belongs
// behind the non-blocking Transport machinery in src/net/; condition waits
// belong behind the annotated primitives in src/common/mutex.h — and even
// those must never be held across dispatch.

void CheckBlockingCall(const File& f) {
  if (!HasPrefix(f.rel, "src/")) {
    return;  // bench/tools/tests run on their own threads and may block
  }
  static const char* kSleeps[] = {"sleep", "usleep", "nanosleep", "sleep_for",
                                  "sleep_until"};
  static const char* kSyncs[] = {"fsync", "fdatasync", "syncfs",
                                 "sync_file_range"};
  static const char* kNetBlocking[] = {"accept",  "recv",       "recvfrom",
                                       "recvmsg", "select",     "poll",
                                       "ppoll",   "epoll_wait", "getaddrinfo",
                                       "connect"};
  static const char* kWaits[] = {"wait", "pthread_cond_wait", "pthread_join"};
  const std::vector<Token>& t = f.toks;
  bool in_diskstore = HasPrefix(f.rel, "src/diskstore/");
  bool in_net = HasPrefix(f.rel, "src/net/");
  bool in_common = HasPrefix(f.rel, "src/common/");
  for (size_t i = 0; i < t.size(); ++i) {
    if (!IsCall(f, i)) {
      continue;
    }
    const std::string& name = t[i].text;
    const char* why = nullptr;
    bool hit = false;
    for (const char* s : kSleeps) {
      if (name == s) {
        hit = true;
        why = "the event loop owns time: schedule an event instead of "
              "sleeping";
      }
    }
    if (!hit && !in_diskstore) {
      for (const char* s : kSyncs) {
        if (name == s) {
          hit = true;
          why = "durability syncs belong behind the diskstore Env "
                "(src/diskstore/), where fsync policy is configured and "
                "measured";
        }
      }
    }
    if (!hit && !in_net) {
      for (const char* s : kNetBlocking) {
        if (name == s) {
          hit = true;
          why = "blocking network I/O belongs behind the non-blocking "
                "Transport machinery in src/net/";
        }
      }
      // Free or global-qualified read()/write() are the POSIX blocking
      // calls; member .read()/.write() (streams, wrappers) are judged by
      // their own layer, and `long read(...)` is a declaration, not a
      // call — only flag when the preceding token can start a call
      // expression. The diskstore Env owns file I/O.
      if (!hit && !in_diskstore && (name == "read" || name == "write")) {
        bool global_qualified =
            i > 0 && IsPunct(t[i - 1], "::") &&
            (i == 1 || t[i - 2].kind != TokKind::kIdent);
        bool call_context =
            i == 0 || IsIdent(t[i - 1], "return") ||
            (t[i - 1].kind == TokKind::kPunct && t[i - 1].text != "::" &&
             t[i - 1].text != "." && t[i - 1].text != "->" &&
             t[i - 1].text != "*" && t[i - 1].text != "&" &&
             t[i - 1].text != ">");
        if (global_qualified || call_context) {
          hit = true;
          why = "blocking file-descriptor I/O on the event loop: use the "
                "diskstore Env (files) or src/net/ (sockets)";
        }
      }
    }
    if (!hit && !in_common) {
      for (const char* s : kWaits) {
        if (name == s) {
          hit = true;
          why = "unbounded waits stall the event loop; condition waits live "
                "behind src/common/mutex.h primitives off the dispatch path";
        }
      }
    }
    if (!hit || Suppressed(f, t[i].line, "lint:allow-blocking")) {
      continue;
    }
    Report(f, t[i].line, "blocking-call",
           name + "() blocks the event-dispatch path: " + std::string(why) +
               " (annotate lint:allow-blocking to override)");
  }
}

// --- rule: bare-mutex --------------------------------------------------------
//
// Lock discipline is only provable when the locks are the annotated ones:
// past::Mutex / MutexLock / CondVar (src/common/mutex.h) carry Clang
// thread-safety capabilities, so -Wthread-safety can verify every guarded
// access at compile time. A bare std::mutex is invisible to the analysis.

void CheckBareMutex(const File& f) {
  if (HasPrefix(f.rel, "src/common/")) {
    return;  // the wrapper itself builds on std::mutex
  }
  static const char* kBare[] = {
      "mutex",          "timed_mutex",        "recursive_mutex",
      "shared_mutex",   "shared_timed_mutex", "recursive_timed_mutex",
      "lock_guard",     "unique_lock",        "scoped_lock",
      "shared_lock",    "condition_variable", "condition_variable_any"};
  const std::vector<Token>& t = f.toks;
  for (size_t i = 0; i + 2 < t.size(); ++i) {
    if (!(IsIdent(t[i], "std") && IsPunct(t[i + 1], "::") &&
          t[i + 2].kind == TokKind::kIdent)) {
      continue;
    }
    bool banned = false;
    for (const char* name : kBare) {
      if (t[i + 2].text == name) {
        banned = true;
      }
    }
    if (!banned || Suppressed(f, t[i].line, "lint:allow-bare-mutex")) {
      continue;
    }
    Report(f, t[i].line, "bare-mutex",
           "std::" + t[i + 2].text +
               " outside src/common/: use the annotated past::Mutex / "
               "MutexLock / CondVar (src/common/mutex.h) so -Wthread-safety "
               "can prove lock discipline (annotate lint:allow-bare-mutex to "
               "override)");
  }
}

// --- driver ------------------------------------------------------------------

bool WantFile(const fs::path& p) {
  std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".cpp";
}

}  // namespace

int main(int argc, char** argv) {
  std::string root_arg = ".";
  std::string rule = "all";
  std::string graph_out;
  static const char* kRules[] = {
      "nondeterminism", "header-hygiene", "includes",      "nodiscard",
      "codec-pairing",  "global-state",   "metric-name",   "raw-socket",
      "layer-dag",      "blocking-call",  "bare-mutex"};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--root") == 0 && i + 1 < argc) {
      root_arg = argv[++i];
    } else if (std::strcmp(argv[i], "--rule") == 0 && i + 1 < argc) {
      rule = argv[++i];
    } else if (std::strcmp(argv[i], "--graph-out") == 0 && i + 1 < argc) {
      graph_out = argv[++i];
    } else {
      std::string rules;
      for (const char* r : kRules) {
        rules += r;
        rules += "|";
      }
      std::fprintf(stderr,
                   "usage: past_lint [--root <repo>] [--rule %sall]\n"
                   "                 [--graph-out <include-graph.json>]\n",
                   rules.c_str());
      return 2;
    }
  }
  bool known = rule == "all";
  for (const char* r : kRules) {
    known = known || rule == r;
  }
  if (!known) {
    std::fprintf(stderr, "unknown rule: %s\n", rule.c_str());
    return 2;
  }
  if (!graph_out.empty() && rule != "all" && rule != "layer-dag") {
    std::fprintf(stderr, "--graph-out requires --rule layer-dag (or all)\n");
    return 2;
  }

  const fs::path root = fs::absolute(root_arg);
  std::vector<File> files;
  for (const char* dir : {"src", "tests", "bench", "examples", "tools"}) {
    fs::path base = root / dir;
    if (!fs::exists(base)) {
      continue;
    }
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file() || !WantFile(entry.path())) {
        continue;
      }
      File f;
      f.rel = fs::relative(entry.path(), root).generic_string();
      // Fixture trees deliberately violate rules; they are linted on their
      // own via --root by the lint_fixture_* ctests, never as repo sources.
      if (HasPrefix(f.rel, "tests/lint/fixtures/")) {
        continue;
      }
      std::ifstream in(entry.path());
      std::string line;
      while (std::getline(in, line)) {
        f.lines.push_back(line);
      }
      f.toks = Lex(f.lines);
      files.push_back(std::move(f));
    }
  }
  if (files.empty()) {
    std::fprintf(stderr, "no sources found under %s\n", root.c_str());
    return 2;
  }
  std::sort(files.begin(), files.end(),
            [](const File& a, const File& b) { return a.rel < b.rel; });

  for (const File& f : files) {
    if (rule == "all" || rule == "nondeterminism") {
      CheckNondeterminism(f);
    }
    if (rule == "all" || rule == "header-hygiene") {
      CheckHeaderHygiene(f);
    }
    if (rule == "all" || rule == "includes") {
      CheckIncludes(f, root);
    }
    if (rule == "all" || rule == "nodiscard") {
      CheckNodiscard(f);
    }
    if (rule == "all" || rule == "codec-pairing") {
      CheckCodecPairing(f);
    }
    if (rule == "all" || rule == "global-state") {
      CheckGlobalState(f);
    }
    if (rule == "all" || rule == "metric-name") {
      CheckMetricNames(f);
    }
    if (rule == "all" || rule == "raw-socket") {
      CheckRawSocket(f);
    }
    if (rule == "all" || rule == "layer-dag") {
      CheckLayerDag(f);
    }
    if (rule == "all" || rule == "blocking-call") {
      CheckBlockingCall(f);
    }
    if (rule == "all" || rule == "bare-mutex") {
      CheckBareMutex(f);
    }
  }
  if (!graph_out.empty() && !WriteGraphJson(graph_out)) {
    return 2;
  }
  if (g_violations > 0) {
    std::fprintf(stderr, "past_lint: %d violation(s)\n", g_violations);
    return 1;
  }
  std::printf("past_lint: %zu files clean (%s)\n", files.size(), rule.c_str());
  return 0;
}
