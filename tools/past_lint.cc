// past_lint — repo-specific static checks, run as `ctest -L lint`.
//
// Walks src/, tests/, bench/, examples/ and tools/ under --root and enforces
// the conventions DESIGN.md §8 documents:
//
//   nondeterminism   library code (src/ outside src/sim/) must not reach for
//                    wall clocks or ambient randomness — simulations replay
//                    bit-identically from a seed, and the determinism ctest
//                    checks that at runtime. Timing clocks are allowed in
//                    bench/ (throughput measurement) but ambient randomness
//                    is banned everywhere. Deliberate exceptions (the opt-in
//                    PAST_PROF profiling clock) carry
//                    `// lint:allow-nondeterminism <reason>`.
//   header-hygiene   headers start with a doc comment and use #pragma once
//                    (no #ifndef guards).
//   includes         quoted includes are repo-root-relative, resolve to real
//                    files, are not duplicated, and a foo.cc with a sibling
//                    foo.h includes it first.
//   nodiscard        fallible declarations in src/ headers — bool-returning
//                    Decode*/Encode*/Parse*/Verify* — carry [[nodiscard]],
//                    and the type-level attributes on StatusCode / Result
//                    stay in place.
//   codec-pairing    every EncodeBody has a DecodeBody, every EncodeTo a
//                    DecodeFrom, every payload Encode() a Decode(), per
//                    header, so no wire struct can lose its parser.
//   global-state     src/ must not hold mutable namespace-scope or static
//                    state: the parallel TrialRunner relies on sim stacks
//                    being fully isolated per trial. Deliberate exceptions
//                    carry `// lint:allow-global-state <reason>`.
//   metric-name      string literals registered via GetCounter / GetGauge /
//                    GetHistogram / GetLogHistogram must follow the dotted
//                    lowercase "<layer>.<metric>" convention, so the JSON
//                    dumps downstream tooling parses stay uniformly named.
//                    Escape hatch: `// lint:allow-metric-name <reason>`.
//   raw-socket       socket()/bind()/connect() calls outside src/net/ — all
//                    real networking goes through the Transport interface
//                    and the socket_util.h wrappers, which keep fds
//                    non-blocking/cloexec and route bytes through framing
//                    and decode hardening. Escape hatch:
//                    `// lint:allow-raw-socket <reason>`.
//
// Exit status 0 when clean; 1 with one "file:line: [rule] message" line per
// violation. A check is only as good as its scrubber: comments and string
// literals are blanked before token matching, so prose may mention banned
// identifiers freely.
#include <cctype>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct File {
  std::string rel;                  // repo-root-relative path, '/'-separated
  std::vector<std::string> lines;   // raw text
  std::vector<std::string> code;    // comments and string bodies blanked
};

int g_violations = 0;

void Report(const File& f, size_t line_index, const char* rule,
            const std::string& message) {
  std::fprintf(stderr, "%s:%zu: [%s] %s\n", f.rel.c_str(), line_index + 1, rule,
               message.c_str());
  ++g_violations;
}

bool HasSuffix(const std::string& s, const char* suffix) {
  size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

bool HasPrefix(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool IsHeader(const File& f) { return HasSuffix(f.rel, ".h"); }

// Blanks // and /* */ comments plus the contents of "..." and '...'
// literals, preserving line structure so reported line numbers stay true.
std::vector<std::string> ScrubbedLines(const std::vector<std::string>& lines) {
  std::vector<std::string> out;
  out.reserve(lines.size());
  bool in_block_comment = false;
  for (const std::string& line : lines) {
    std::string scrubbed;
    scrubbed.reserve(line.size());
    for (size_t i = 0; i < line.size();) {
      if (in_block_comment) {
        if (line.compare(i, 2, "*/") == 0) {
          in_block_comment = false;
          i += 2;
        } else {
          ++i;
        }
        continue;
      }
      if (line.compare(i, 2, "//") == 0) {
        break;  // rest of line is comment
      }
      if (line.compare(i, 2, "/*") == 0) {
        in_block_comment = true;
        i += 2;
        continue;
      }
      char c = line[i];
      if (c == '"' || c == '\'') {
        char quote = c;
        scrubbed.push_back(quote);
        ++i;
        while (i < line.size()) {
          if (line[i] == '\\' && i + 1 < line.size()) {
            i += 2;
            continue;
          }
          if (line[i] == quote) {
            break;
          }
          ++i;
        }
        if (i < line.size()) {
          scrubbed.push_back(quote);
          ++i;
        }
        continue;
      }
      scrubbed.push_back(c);
      ++i;
    }
    out.push_back(std::move(scrubbed));
  }
  return out;
}

// Identifier-boundary search: `needle` must not be preceded or followed by an
// identifier character, so "rand" does not match "operand".
bool ContainsToken(const std::string& line, const std::string& needle,
                   size_t* column) {
  auto is_ident = [](char c) {
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
  };
  for (size_t pos = line.find(needle); pos != std::string::npos;
       pos = line.find(needle, pos + 1)) {
    bool left_ok = pos == 0 || !is_ident(line[pos - 1]);
    size_t end = pos + needle.size();
    bool right_ok = end >= line.size() || !is_ident(line[end]);
    if (left_ok && right_ok) {
      *column = pos;
      return true;
    }
  }
  return false;
}

// --- rule: nondeterminism ----------------------------------------------------

// True when the raw text of line i (or the line above it) carries the given
// `lint:allow-<rule>` marker. Markers live in comments, which the scrubber
// blanks, so suppression always consults f.lines.
bool Suppressed(const File& f, size_t i, const char* marker) {
  return f.lines[i].find(marker) != std::string::npos ||
         (i > 0 && f.lines[i - 1].find(marker) != std::string::npos);
}

void CheckNondeterminism(const File& f) {
  // Ambient randomness has no place anywhere: everything draws from the
  // seeded past::Rng so runs replay bit-identically.
  static const char* kRandomness[] = {"std::rand", "srand", "random_device",
                                      "rand", "rand_r", "getentropy"};
  // Wall clocks are banned from library code; simulated time comes from the
  // event queue. bench/ and tools/ may measure real elapsed time.
  static const char* kClocks[] = {"system_clock", "steady_clock",
                                  "high_resolution_clock", "gettimeofday",
                                  "clock_gettime", "time(nullptr)", "time(NULL)"};
  bool library = HasPrefix(f.rel, "src/") && !HasPrefix(f.rel, "src/sim/");
  bool clocks_allowed = HasPrefix(f.rel, "bench/") || HasPrefix(f.rel, "tools/");
  for (size_t i = 0; i < f.code.size(); ++i) {
    size_t col;
    for (const char* token : kRandomness) {
      if (ContainsToken(f.code[i], token, &col)) {
        Report(f, i, "nondeterminism",
               std::string(token) + " is banned: draw from the seeded past::Rng");
      }
    }
    if ((library || !clocks_allowed) &&
        !Suppressed(f, i, "lint:allow-nondeterminism")) {
      for (const char* token : kClocks) {
        if (f.code[i].find(token) != std::string::npos) {
          Report(f, i, "nondeterminism",
                 std::string(token) +
                     " in deterministic code: simulated time comes from the "
                     "event queue (sim::EventQueue), real time only in bench/");
        }
      }
    }
  }
}

// --- rule: header-hygiene ----------------------------------------------------

void CheckHeaderHygiene(const File& f) {
  if (!IsHeader(f)) {
    return;
  }
  if (f.lines.empty() || f.lines[0].rfind("//", 0) != 0) {
    Report(f, 0, "header-hygiene",
           "header must start with a // doc comment describing the component");
  }
  bool saw_pragma_once = false;
  for (size_t i = 0; i < f.lines.size(); ++i) {
    const std::string& line = f.lines[i];
    if (line.rfind("#pragma once", 0) == 0) {
      saw_pragma_once = true;
      continue;
    }
    if (line.rfind("#ifndef", 0) == 0 && HasSuffix(line, "_H_")) {
      Report(f, i, "header-hygiene",
             "include guard macro: use #pragma once instead");
    }
  }
  if (!saw_pragma_once) {
    Report(f, 0, "header-hygiene", "missing #pragma once");
  }
}

// --- rule: includes ----------------------------------------------------------

void CheckIncludes(const File& f, const fs::path& root) {
  std::set<std::string> seen;
  std::vector<std::string> quoted;   // in order of appearance
  for (size_t i = 0; i < f.lines.size(); ++i) {
    const std::string& line = f.lines[i];
    if (line.rfind("#include", 0) != 0) {
      continue;
    }
    size_t open = line.find_first_of("\"<", 8);
    if (open == std::string::npos) {
      continue;
    }
    char close_char = line[open] == '"' ? '"' : '>';
    size_t close = line.find(close_char, open + 1);
    if (close == std::string::npos) {
      Report(f, i, "includes", "unterminated include");
      continue;
    }
    std::string target = line.substr(open + 1, close - open - 1);
    if (!seen.insert(target).second) {
      Report(f, i, "includes", "duplicate include of " + target);
    }
    if (close_char != '"') {
      continue;  // system header
    }
    quoted.push_back(target);
    if (!HasPrefix(target, "src/") && !HasPrefix(target, "tests/") &&
        !HasPrefix(target, "bench/") && !HasPrefix(target, "tools/")) {
      Report(f, i, "includes",
             "quoted include must be repo-root-relative (src/..., tests/..., "
             "bench/...): " + target);
      continue;
    }
    if (!fs::exists(root / target)) {
      Report(f, i, "includes", "include does not resolve to a file: " + target);
    }
  }
  // foo.cc / foo.cpp must include its own header (src/.../foo.h) first, so
  // every header is verified self-contained by its own translation unit.
  bool is_source = HasSuffix(f.rel, ".cc") || HasSuffix(f.rel, ".cpp");
  if (is_source) {
    std::string stem = f.rel.substr(0, f.rel.find_last_of('.'));
    std::string own_header = stem + ".h";
    if (fs::exists(root / own_header)) {
      if (quoted.empty() || quoted[0] != own_header) {
        Report(f, 0, "includes",
               "must include own header \"" + own_header + "\" first");
      }
    }
  }
}

// --- rule: nodiscard ---------------------------------------------------------

void CheckNodiscard(const File& f) {
  if (!IsHeader(f) || !HasPrefix(f.rel, "src/")) {
    return;
  }
  for (size_t i = 0; i < f.code.size(); ++i) {
    const std::string& line = f.code[i];
    // Fallible bool-returning codec/verification declarations. The pattern is
    // intentionally narrow: `bool <Name>(` where Name starts with one of the
    // fallible verbs, declared (ends with ';' somewhere below) not invoked.
    static const char* kVerbs[] = {"Decode", "Encode", "Parse", "Verify"};
    for (const char* verb : kVerbs) {
      size_t pos = line.find(std::string("bool ") + verb);
      if (pos == std::string::npos) {
        continue;
      }
      // Must look like a declaration: "bool Name(" with an identifier tail.
      size_t name_start = pos + 5;
      size_t paren = line.find('(', name_start);
      if (paren == std::string::npos) {
        continue;
      }
      bool ident_only = true;
      for (size_t j = name_start; j < paren; ++j) {
        if (std::isalnum(static_cast<unsigned char>(line[j])) == 0 &&
            line[j] != '_') {
          ident_only = false;
          break;
        }
      }
      if (!ident_only) {
        continue;
      }
      bool annotated = line.find("[[nodiscard]]") != std::string::npos ||
                       (i > 0 && f.code[i - 1].find("[[nodiscard]]") !=
                                     std::string::npos);
      if (!annotated) {
        Report(f, i, "nodiscard",
               "fallible declaration must be [[nodiscard]]: " +
                   line.substr(pos, paren - pos));
      }
      break;  // one report per line is enough
    }
  }
  if (f.rel == "src/common/status.h") {
    bool enum_attr = false, result_attr = false;
    for (const std::string& line : f.code) {
      if (line.find("enum class [[nodiscard]] StatusCode") != std::string::npos) {
        enum_attr = true;
      }
      if (line.find("class [[nodiscard]] Result") != std::string::npos) {
        result_attr = true;
      }
    }
    if (!enum_attr) {
      Report(f, 0, "nodiscard", "StatusCode must be a [[nodiscard]] enum");
    }
    if (!result_attr) {
      Report(f, 0, "nodiscard", "Result<T> must be a [[nodiscard]] class");
    }
  }
}

// --- rule: codec-pairing -----------------------------------------------------

void CheckCodecPairing(const File& f) {
  if (!IsHeader(f) || !HasPrefix(f.rel, "src/")) {
    return;
  }
  struct Pair {
    const char* encode;
    const char* decode;
  };
  static const Pair kPairs[] = {
      {"void EncodeBody(", "static bool DecodeBody("},
      {"void EncodeTo(", "static bool DecodeFrom("},
      {"Bytes Encode() const", "static bool Decode("},
  };
  for (const Pair& p : kPairs) {
    size_t enc = 0, dec = 0;
    for (const std::string& line : f.code) {
      if (line.find(p.encode) != std::string::npos) {
        ++enc;
      }
      if (line.find(p.decode) != std::string::npos) {
        ++dec;
      }
    }
    if (enc != dec) {
      std::ostringstream msg;
      msg << enc << " `" << p.encode << "` declarations vs " << dec << " `"
          << p.decode << "`: every encoder needs its decoder";
      Report(f, 0, "codec-pairing", msg.str());
    }
  }
}

// --- rule: global-state ------------------------------------------------------
//
// Mutable namespace-scope or static-local state in src/ breaks trial
// isolation: the parallel TrialRunner (bench/exp_util.h) runs independent sim
// stacks on worker threads, which is only sound when every piece of library
// state lives inside objects owned by one trial. Constants (const/constexpr)
// are fine. A deliberate exception carries a
// `// lint:allow-global-state <reason>` comment on the same line.

bool ContainsAnyToken(const std::string& line, const char* const* tokens,
                      size_t count) {
  size_t col;
  for (size_t i = 0; i < count; ++i) {
    if (ContainsToken(line, tokens[i], &col)) {
      return true;
    }
  }
  return false;
}

void CheckGlobalState(const File& f) {
  if (!HasPrefix(f.rel, "src/")) {
    return;
  }
  // Keywords that mean a namespace-scope line is not a mutable variable
  // definition: type/alias/template machinery, or const-qualified data.
  static const char* kNotAVariable[] = {
      "namespace", "using",  "typedef",   "class",     "struct",
      "enum",      "union",  "template",  "friend",    "static_assert",
      "operator",  "concept"};
  static const char* kImmutable[] = {"const", "constexpr", "constinit"};

  // Track brace nesting, remembering which braces were opened by `namespace`
  // (or `extern "C"`). When every open brace is a namespace brace we are at
  // namespace scope; otherwise we are inside a function/class body.
  std::vector<char> brace_is_namespace;
  std::string window;  // text since the last `;`, `{` or `}`
  for (size_t i = 0; i < f.code.size(); ++i) {
    const std::string& line = f.code[i];
    bool namespace_scope = true;
    for (char ns : brace_is_namespace) {
      if (!ns) {
        namespace_scope = false;
        break;
      }
    }

    std::string trimmed = line;
    size_t start = trimmed.find_first_not_of(" \t");
    trimmed = start == std::string::npos ? "" : trimmed.substr(start);
    bool suppressed =
        f.lines[i].find("lint:allow-global-state") != std::string::npos ||
        (i > 0 &&
         f.lines[i - 1].find("lint:allow-global-state") != std::string::npos);
    bool decl_like = !trimmed.empty() && trimmed[0] != '#' &&
                     trimmed.find(';') != std::string::npos &&
                     trimmed.find('(') == std::string::npos &&
                     trimmed.find(')') == std::string::npos &&
                     !ContainsAnyToken(trimmed, kImmutable, 3);
    if (!suppressed && decl_like) {
      bool starts_ident =
          std::isalpha(static_cast<unsigned char>(trimmed[0])) != 0 ||
          trimmed[0] == '_' || trimmed[0] == ':';
      if (namespace_scope && starts_ident &&
          !ContainsAnyToken(trimmed, kNotAVariable, 12)) {
        Report(f, i, "global-state",
               "mutable namespace-scope state breaks trial isolation; make it "
               "per-instance or annotate lint:allow-global-state: " + trimmed);
      } else if (!namespace_scope && HasPrefix(trimmed, "static ")) {
        Report(f, i, "global-state",
               "mutable static breaks trial isolation; make it per-instance "
               "or annotate lint:allow-global-state: " + trimmed);
      }
    }

    for (char c : line) {
      if (c == '{') {
        size_t col;
        bool is_ns = ContainsToken(window, "namespace", &col) ||
                     ContainsToken(window, "extern", &col);
        brace_is_namespace.push_back(is_ns ? 1 : 0);
        window.clear();
      } else if (c == '}') {
        if (!brace_is_namespace.empty()) {
          brace_is_namespace.pop_back();
        }
        window.clear();
      } else if (c == ';') {
        window.clear();
      } else {
        window.push_back(c);
      }
    }
    window.push_back(' ');  // token boundary at the line break
  }
}

// --- rule: metric-name -------------------------------------------------------
//
// Instrument names feed the JSON dumps that json_check, past_stats, and the
// bench baselines parse; one misnamed metric silently breaks every required
// key path downstream. Enforce the DESIGN.md convention at registration
// sites: a literal passed to GetCounter/GetGauge/GetHistogram/GetLogHistogram
// must be dotted lowercase "<layer>.<metric>" ([a-z0-9_] segments, >= 2 of
// them). A literal ending in '.' is allowed when the call concatenates a
// computed suffix onto it (e.g. "pastry.route.rule." + RouteRuleName(r)).

bool IsValidMetricName(const std::string& name, bool concatenated) {
  std::string s = name;
  bool prefix_only = false;
  if (concatenated && !s.empty() && s.back() == '.') {
    s.pop_back();
    prefix_only = true;
  }
  if (s.empty()) {
    return false;
  }
  size_t segments = 1;
  bool segment_empty = true;
  for (char c : s) {
    if (c == '.') {
      if (segment_empty) {
        return false;  // empty segment ("a..b", ".a")
      }
      ++segments;
      segment_empty = true;
    } else if ((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_') {
      segment_empty = false;
    } else {
      return false;  // uppercase, spaces, dashes, ...
    }
  }
  if (segment_empty) {
    return false;
  }
  // A concatenation prefix supplies the final segment elsewhere; a complete
  // name needs at least "<layer>.<metric>".
  return prefix_only || segments >= 2;
}

void CheckMetricNames(const File& f) {
  static const char* kGetters[] = {"GetCounter", "GetGauge", "GetHistogram",
                                   "GetLogHistogram"};
  for (size_t i = 0; i < f.code.size(); ++i) {
    for (const char* getter : kGetters) {
      size_t col;
      // Scrubbed match = a real call site, not prose or a string body.
      if (!ContainsToken(f.code[i], getter, &col)) {
        continue;
      }
      size_t after = col + std::strlen(getter);
      if (after >= f.code[i].size() || f.code[i][after] != '(') {
        continue;  // declaration or mention, not a call
      }
      if (Suppressed(f, i, "lint:allow-metric-name")) {
        break;
      }
      // The name literal sits on the call's raw line or (wrapped call) the
      // next one. Non-literal names cannot be checked statically; skip them.
      size_t lit_line = i;
      size_t raw_col = f.lines[i].find(std::string(getter) + "(");
      size_t q = raw_col == std::string::npos
                     ? std::string::npos
                     : f.lines[i].find('"', raw_col);
      if (q == std::string::npos && i + 1 < f.lines.size()) {
        lit_line = i + 1;
        q = f.lines[lit_line].find('"');
      }
      if (q == std::string::npos) {
        break;
      }
      const std::string& raw = f.lines[lit_line];
      size_t close = raw.find('"', q + 1);
      if (close == std::string::npos) {
        break;
      }
      std::string name = raw.substr(q + 1, close - q - 1);
      bool concatenated = raw.find('+', close + 1) != std::string::npos;
      if (!IsValidMetricName(name, concatenated)) {
        Report(f, lit_line, "metric-name",
               "\"" + name +
                   "\" violates the dotted-lowercase <layer>.<metric> naming "
                   "convention (annotate lint:allow-metric-name to override)");
      }
      break;  // one check per line is enough
    }
  }
}

// --- rule: raw-socket ---------------------------------------------------------

// Direct socket-API calls belong in src/net/, behind the Transport
// abstraction: its wrappers (socket_util.h) make every fd non-blocking and
// close-on-exec, and the transport adds framing, decode hardening, and
// metrics that ad-hoc sockets silently bypass. Escape hatch:
// `// lint:allow-raw-socket <reason>`.
void CheckRawSocket(const File& f) {
  if (HasPrefix(f.rel, "src/net/")) {
    return;
  }
  static const char* kCalls[] = {"socket", "bind", "connect"};
  for (size_t i = 0; i < f.code.size(); ++i) {
    const std::string& line = f.code[i];
    for (const char* call : kCalls) {
      size_t col;
      if (!ContainsToken(line, call, &col)) {
        continue;
      }
      size_t end = col + std::strlen(call);
      if (end >= line.size() || line[end] != '(') {
        continue;  // not a call of that name
      }
      if (col >= 5 && line.compare(col - 5, 5, "std::") == 0) {
        continue;  // std::bind and friends are not socket calls
      }
      if (Suppressed(f, i, "lint:allow-raw-socket")) {
        continue;
      }
      Report(f, i, "raw-socket",
             std::string(call) +
                 "() outside src/net/: go through the Transport interface or "
                 "the src/net/socket_util.h wrappers (annotate "
                 "lint:allow-raw-socket to override)");
    }
  }
}

// --- driver ------------------------------------------------------------------

bool WantFile(const fs::path& p) {
  std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".cpp";
}

}  // namespace

int main(int argc, char** argv) {
  std::string root_arg = ".";
  std::string rule = "all";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--root") == 0 && i + 1 < argc) {
      root_arg = argv[++i];
    } else if (std::strcmp(argv[i], "--rule") == 0 && i + 1 < argc) {
      rule = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: past_lint [--root <repo>] [--rule nondeterminism|"
                   "header-hygiene|includes|nodiscard|codec-pairing|"
                   "global-state|metric-name|raw-socket|all]\n");
      return 2;
    }
  }
  static const char* kRules[] = {"nondeterminism", "header-hygiene", "includes",
                                 "nodiscard",      "codec-pairing",  "global-state",
                                 "metric-name",    "raw-socket"};
  bool known = rule == "all";
  for (const char* r : kRules) {
    known = known || rule == r;
  }
  if (!known) {
    std::fprintf(stderr, "unknown rule: %s\n", rule.c_str());
    return 2;
  }

  const fs::path root = fs::absolute(root_arg);
  std::vector<File> files;
  for (const char* dir : {"src", "tests", "bench", "examples", "tools"}) {
    fs::path base = root / dir;
    if (!fs::exists(base)) {
      continue;
    }
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file() || !WantFile(entry.path())) {
        continue;
      }
      File f;
      f.rel = fs::relative(entry.path(), root).generic_string();
      std::ifstream in(entry.path());
      std::string line;
      while (std::getline(in, line)) {
        f.lines.push_back(line);
      }
      f.code = ScrubbedLines(f.lines);
      files.push_back(std::move(f));
    }
  }
  if (files.empty()) {
    std::fprintf(stderr, "no sources found under %s\n", root.c_str());
    return 2;
  }

  for (const File& f : files) {
    if (rule == "all" || rule == "nondeterminism") {
      CheckNondeterminism(f);
    }
    if (rule == "all" || rule == "header-hygiene") {
      CheckHeaderHygiene(f);
    }
    if (rule == "all" || rule == "includes") {
      CheckIncludes(f, root);
    }
    if (rule == "all" || rule == "nodiscard") {
      CheckNodiscard(f);
    }
    if (rule == "all" || rule == "codec-pairing") {
      CheckCodecPairing(f);
    }
    if (rule == "all" || rule == "global-state") {
      CheckGlobalState(f);
    }
    if (rule == "all" || rule == "metric-name") {
      CheckMetricNames(f);
    }
    if (rule == "all" || rule == "raw-socket") {
      CheckRawSocket(f);
    }
  }
  if (g_violations > 0) {
    std::fprintf(stderr, "past_lint: %d violation(s)\n", g_violations);
    return 1;
  }
  std::printf("past_lint: %zu files clean (%s)\n", files.size(), rule.c_str());
  return 0;
}
