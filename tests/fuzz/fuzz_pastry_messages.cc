// Fuzz driver for the Pastry wire codec (src/pastry/messages.h).
//
// Feeds arbitrary bytes through DecodeHeader + the per-type DecodeBodyStrict
// dispatch — exactly the path a node runs on every received packet. Decoding
// must never crash, and any accepted message must re-encode deterministically:
// decode -> EncodeMessage -> decode -> EncodeMessage is byte-stable.
#include <cstdint>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/serializer.h"
#include "src/pastry/messages.h"
#include "src/pastry/node_id.h"
#include "tests/fuzz/fuzz_util.h"

namespace {

using namespace past;  // NOLINT

NodeDescriptor SomeDescriptor(uint64_t tag) {
  NodeDescriptor d;
  d.id = U128(tag, ~tag);
  d.addr = static_cast<NodeAddr>(tag & 0xffff);
  return d;
}

// Decode the body as message type M; if accepted, require re-encode
// idempotence. (Re-encode may legitimately differ from the raw input — e.g.
// a bool decoded from byte 2 re-encodes as 1 — but a second decode/encode
// cycle must reproduce the first re-encoding exactly.)
template <typename M>
void CheckBody(Reader* r) {
  M msg;
  if (!DecodeBodyStrict(r, &msg)) {
    return;
  }
  Bytes once = EncodeMessage(msg);
  Reader r2(ByteSpan(once.data(), once.size()));
  PastryMsgType type2;
  FUZZ_ASSERT(DecodeHeader(&r2, &type2), "re-encoded header must decode");
  FUZZ_ASSERT(type2 == M::kType, "re-encoded type must match");
  M msg2;
  FUZZ_ASSERT(DecodeBodyStrict(&r2, &msg2), "re-encoded body must decode");
  Bytes twice = EncodeMessage(msg2);
  FUZZ_ASSERT(once == twice, "encode must be idempotent after one round trip");
}

void TestOneInput(ByteSpan data) {
  Reader r(data);
  PastryMsgType type;
  if (!DecodeHeader(&r, &type)) {
    return;
  }
  switch (type) {
    case PastryMsgType::kRoute:
      CheckBody<RouteMsg>(&r);
      break;
    case PastryMsgType::kRouteAck:
      CheckBody<RouteAckMsg>(&r);
      break;
    case PastryMsgType::kJoinRequest:
      CheckBody<JoinRequestMsg>(&r);
      break;
    case PastryMsgType::kJoinRows:
      CheckBody<JoinRowsMsg>(&r);
      break;
    case PastryMsgType::kJoinLeafSet:
      CheckBody<JoinLeafSetMsg>(&r);
      break;
    case PastryMsgType::kJoinNeighborhood:
      CheckBody<JoinNeighborhoodMsg>(&r);
      break;
    case PastryMsgType::kAnnounceArrival:
      CheckBody<AnnounceArrivalMsg>(&r);
      break;
    case PastryMsgType::kKeepAlive:
      CheckBody<KeepAliveMsg>(&r);
      break;
    case PastryMsgType::kKeepAliveAck:
      CheckBody<KeepAliveAckMsg>(&r);
      break;
    case PastryMsgType::kLeafSetRequest:
      CheckBody<LeafSetRequestMsg>(&r);
      break;
    case PastryMsgType::kLeafSetReply:
      CheckBody<LeafSetReplyMsg>(&r);
      break;
    case PastryMsgType::kRepairRequest:
      CheckBody<RepairRequestMsg>(&r);
      break;
    case PastryMsgType::kRepairReply:
      CheckBody<RepairReplyMsg>(&r);
      break;
    case PastryMsgType::kAppDirect:
      CheckBody<AppDirectMsg>(&r);
      break;
    default:
      break;  // unknown type: header decoded, no body to try
  }
}

std::vector<Bytes> SeedInputs() {
  std::vector<Bytes> seeds;

  RouteMsg route;
  route.key = U128(0x1234, 0x5678);
  route.source = SomeDescriptor(1);
  route.app_type = 7;
  route.seq = 42;
  route.hops = 3;
  route.replica_k = 5;
  route.distance = 123.5;
  route.path = {1, 2, 3};
  route.trace = {{1, RouteRule::kLeafSet, 10.0},
                 {2, RouteRule::kRoutingTable, 20.0},
                 {3, RouteRule::kReplicaShortcut, 30.0}};
  route.payload = {0xde, 0xad, 0xbe, 0xef};
  seeds.push_back(EncodeMessage(route));

  RouteAckMsg ack;
  ack.seq = 42;
  seeds.push_back(EncodeMessage(ack));

  JoinRequestMsg join;
  join.joiner = SomeDescriptor(2);
  join.hops = 1;
  join.seq = 9;
  seeds.push_back(EncodeMessage(join));

  JoinRowsMsg rows;
  rows.sender = SomeDescriptor(3);
  rows.row_indices = {0, 4};
  rows.rows = {{SomeDescriptor(4), SomeDescriptor(5)}, {SomeDescriptor(6)}};
  seeds.push_back(EncodeMessage(rows));

  JoinLeafSetMsg leaf;
  leaf.sender = SomeDescriptor(7);
  leaf.leaves = {SomeDescriptor(8), SomeDescriptor(9)};
  leaf.seq = 9;
  seeds.push_back(EncodeMessage(leaf));

  JoinNeighborhoodMsg hood;
  hood.sender = SomeDescriptor(10);
  hood.neighbors = {SomeDescriptor(11)};
  seeds.push_back(EncodeMessage(hood));

  AnnounceArrivalMsg announce;
  announce.joiner = SomeDescriptor(12);
  seeds.push_back(EncodeMessage(announce));

  KeepAliveMsg keep;
  keep.sender = SomeDescriptor(13);
  seeds.push_back(EncodeMessage(keep));

  KeepAliveAckMsg keep_ack;
  keep_ack.sender = SomeDescriptor(14);
  seeds.push_back(EncodeMessage(keep_ack));

  LeafSetRequestMsg ls_req;
  ls_req.sender = SomeDescriptor(15);
  seeds.push_back(EncodeMessage(ls_req));

  LeafSetReplyMsg ls_rep;
  ls_rep.sender = SomeDescriptor(16);
  ls_rep.leaves = {SomeDescriptor(17), SomeDescriptor(18), SomeDescriptor(19)};
  seeds.push_back(EncodeMessage(ls_rep));

  RepairRequestMsg rep_req;
  rep_req.sender = SomeDescriptor(20);
  rep_req.row = 2;
  rep_req.col = 11;
  seeds.push_back(EncodeMessage(rep_req));

  RepairReplyMsg rep_rep;
  rep_rep.sender = SomeDescriptor(21);
  rep_rep.row = 2;
  rep_rep.col = 11;
  rep_rep.has_entry = true;
  rep_rep.entry = SomeDescriptor(22);
  seeds.push_back(EncodeMessage(rep_rep));

  AppDirectMsg direct;
  direct.source = SomeDescriptor(23);
  direct.app_type = 110;
  direct.payload = {1, 2, 3, 4, 5};
  seeds.push_back(EncodeMessage(direct));

  return seeds;
}

}  // namespace

PAST_FUZZ_MAIN(TestOneInput, SeedInputs)
