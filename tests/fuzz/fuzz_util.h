// Deterministic fuzzing harness shared by the tests/fuzz/ drivers.
//
// Each driver defines two functions:
//
//   void TestOneInput(past::ByteSpan data);   // must not crash or leak
//   std::vector<past::Bytes> SeedInputs();    // structurally valid inputs
//
// and delegates to FuzzMain(), which (1) replays every file under each
// --corpus directory (checked-in regression inputs), (2) runs the pristine
// seeds, then (3) runs --iters structure-aware mutations of the seeds. All
// randomness flows through the seeded past::Rng, so a given (--seed, --iters)
// pair replays the exact same byte sequences on every run and every machine —
// a failure is reproducible from its iteration number alone.
//
// With PAST_USE_LIBFUZZER defined the same TestOneInput is exported as
// LLVMFuzzerTestOneInput and no main() is emitted (see tests/fuzz/CMakeLists).
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/rng.h"

namespace past {
namespace fuzz {

// Aborts with a message: under the fuzz_smoke ctest an invariant violation is
// a test failure, under libFuzzer it becomes a reported crash + repro input.
#define FUZZ_ASSERT(cond, what)                                             \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "FUZZ_ASSERT failed: %s (%s) at %s:%d\n", #cond, \
                   what, __FILE__, __LINE__);                               \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

// Values that exercise length-prefix and boundary handling.
inline uint64_t InterestingValue(Rng* rng) {
  static const uint64_t kValues[] = {
      0,    1,          2,          0x7f,       0x80,       0xff,
      0x100, 0x7fff,    0x8000,     0xffff,     0x10000,    0x7fffffff,
      0x80000000ULL,    0xffffffffULL,          0xffffffffffffffffULL};
  return kValues[rng->PickIndex(sizeof(kValues) / sizeof(kValues[0]))];
}

// One structure-aware mutation: bit flips, boundary-value overwrites of
// 1/2/4/8-byte windows (little-endian, matching the serializer), chunk
// erase/insert/duplicate, truncation, and splicing with another seed.
inline Bytes MutateOnce(const Bytes& input, const std::vector<Bytes>& seeds,
                        Rng* rng) {
  Bytes out = input;
  switch (rng->UniformU64(8)) {
    case 0: {  // flip one bit
      if (out.empty()) break;
      size_t i = rng->PickIndex(out.size());
      out[i] = static_cast<uint8_t>(out[i] ^ (1u << rng->UniformU64(8)));
      break;
    }
    case 1: {  // overwrite one byte
      if (out.empty()) break;
      out[rng->PickIndex(out.size())] = static_cast<uint8_t>(rng->NextU64());
      break;
    }
    case 2: {  // overwrite a 1/2/4/8-byte window with an interesting value
      if (out.empty()) break;
      size_t width = size_t{1} << rng->UniformU64(4);
      size_t i = rng->PickIndex(out.size());
      uint64_t v = InterestingValue(rng);
      for (size_t b = 0; b < width && i + b < out.size(); ++b) {
        out[i + b] = static_cast<uint8_t>(v >> (8 * b));
      }
      break;
    }
    case 3: {  // truncate a suffix
      if (out.empty()) break;
      out.resize(rng->PickIndex(out.size()));
      break;
    }
    case 4: {  // erase a middle chunk
      if (out.size() < 2) break;
      size_t start = rng->PickIndex(out.size());
      size_t len = 1 + rng->PickIndex(out.size() - start);
      out.erase(out.begin() + static_cast<long>(start),
                out.begin() + static_cast<long>(start + len));
      break;
    }
    case 5: {  // insert random bytes
      size_t at = out.empty() ? 0 : rng->PickIndex(out.size() + 1);
      Bytes chunk = rng->RandomBytes(1 + rng->UniformU64(16));
      out.insert(out.begin() + static_cast<long>(at), chunk.begin(), chunk.end());
      break;
    }
    case 6: {  // duplicate a chunk
      if (out.empty()) break;
      size_t start = rng->PickIndex(out.size());
      size_t len = 1 + rng->PickIndex(out.size() - start);
      Bytes chunk(out.begin() + static_cast<long>(start),
                  out.begin() + static_cast<long>(start + len));
      size_t at = rng->PickIndex(out.size() + 1);
      out.insert(out.begin() + static_cast<long>(at), chunk.begin(), chunk.end());
      break;
    }
    case 7: {  // splice: head of this input + tail of another seed
      if (seeds.empty()) break;
      const Bytes& other = seeds[rng->PickIndex(seeds.size())];
      if (other.empty() || out.empty()) break;
      size_t head = rng->PickIndex(out.size() + 1);
      size_t tail = rng->PickIndex(other.size());
      out.resize(head);
      out.insert(out.end(), other.begin() + static_cast<long>(tail), other.end());
      break;
    }
  }
  return out;
}

inline int FuzzMain(int argc, char** argv, void (*one_input)(ByteSpan),
                    std::vector<Bytes> (*seed_inputs)()) {
  uint64_t iters = 5000;
  uint64_t seed = 0x9a57f022;
  std::vector<std::string> corpus_dirs;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--iters") == 0 && i + 1 < argc) {
      iters = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--corpus") == 0 && i + 1 < argc) {
      corpus_dirs.push_back(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--iters N] [--seed S] [--corpus <dir>]...\n",
                   argv[0]);
      return 2;
    }
  }

  // Phase 1: checked-in regression corpus (sorted for a stable replay order).
  size_t corpus_files = 0;
  for (const std::string& dir : corpus_dirs) {
    std::vector<std::filesystem::path> paths;
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
      if (entry.is_regular_file()) {
        paths.push_back(entry.path());
      }
    }
    std::sort(paths.begin(), paths.end());
    for (const auto& path : paths) {
      std::ifstream in(path, std::ios::binary);
      Bytes data((std::istreambuf_iterator<char>(in)),
                 std::istreambuf_iterator<char>());
      one_input(ByteSpan(data.data(), data.size()));
      ++corpus_files;
    }
  }

  // Phase 2: pristine seeds (the round-trip property must hold on these).
  std::vector<Bytes> seeds = seed_inputs();
  for (const Bytes& s : seeds) {
    one_input(ByteSpan(s.data(), s.size()));
  }

  // Phase 3: deterministic mutation. Each iteration stacks 1-4 mutations on
  // a seed, so inputs range from near-valid (deep decoder paths) to mangled.
  Rng rng(seed);
  for (uint64_t i = 0; i < iters; ++i) {
    Bytes input = seeds[rng.PickIndex(seeds.size())];
    uint64_t stack = 1 + rng.UniformU64(4);
    for (uint64_t m = 0; m < stack; ++m) {
      input = MutateOnce(input, seeds, &rng);
    }
    one_input(ByteSpan(input.data(), input.size()));
  }
  std::printf("fuzz: %zu corpus files, %zu seeds, %llu mutated inputs clean\n",
              corpus_files, seeds.size(),
              static_cast<unsigned long long>(iters));
  return 0;
}

}  // namespace fuzz
}  // namespace past

// Shared entry-point boilerplate: libFuzzer export or deterministic main.
#ifdef PAST_USE_LIBFUZZER
#define PAST_FUZZ_MAIN(one_input, seed_inputs)                            \
  extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) { \
    one_input(past::ByteSpan(data, size));                                \
    return 0;                                                             \
  }
#else
#define PAST_FUZZ_MAIN(one_input, seed_inputs)                        \
  int main(int argc, char** argv) {                                   \
    return past::fuzz::FuzzMain(argc, argv, one_input, seed_inputs);  \
  }
#endif
