// Replays the checked-in fuzz corpus (tests/fuzz/corpus/) through the same
// decoder surfaces the fuzz drivers exercise, with explicit expectations for
// each named regression. The corpus directory is baked in at compile time
// (PAST_FUZZ_CORPUS_DIR), so these run in the default ctest sweep — a decoder
// regression fails here even when nobody runs `ctest -L fuzz_smoke`.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "src/common/bytes.h"
#include "src/diskstore/log_format.h"
#include "src/net/frame.h"
#include "src/obs/json.h"
#include "src/pastry/messages.h"
#include "src/storage/messages.h"

namespace past {
namespace {

std::filesystem::path CorpusDir() { return PAST_FUZZ_CORPUS_DIR; }

Bytes ReadFile(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing corpus file " << path;
  return Bytes((std::istreambuf_iterator<char>(in)),
               std::istreambuf_iterator<char>());
}

std::string ReadText(const std::string& name) {
  Bytes raw = ReadFile(CorpusDir() / "fuzz_obs_json" / name);
  return std::string(raw.begin(), raw.end());
}

// --- obs/json ----------------------------------------------------------------

TEST(FuzzCorpusJson, NumberOverflowRejected) {
  // 1e999 overflows to inf, which Dump() cannot represent; the parser must
  // reject it rather than accept a value that breaks dump round-trips.
  JsonValue doc;
  EXPECT_FALSE(JsonValue::Parse(ReadText("json_number_overflow.json"), &doc));
}

TEST(FuzzCorpusJson, SurrogateEscapeRejected) {
  // A lone \ud800 is not a code point; encoding it would emit invalid UTF-8.
  JsonValue doc;
  EXPECT_FALSE(JsonValue::Parse(ReadText("json_surrogate_escape.json"), &doc));
}

TEST(FuzzCorpusJson, PlusPrefixedNumberRejected) {
  // strtod accepts a leading '+' that JSON does not allow.
  JsonValue doc;
  EXPECT_FALSE(
      JsonValue::Parse(ReadText("json_plus_prefixed_number.json"), &doc));
}

TEST(FuzzCorpusJson, DeepNestingRejected) {
  JsonValue doc;
  EXPECT_FALSE(JsonValue::Parse(ReadText("json_deep_nesting.json"), &doc));
}

TEST(FuzzCorpusJson, ValidDocumentRoundTrips) {
  JsonValue doc;
  ASSERT_TRUE(JsonValue::Parse(ReadText("json_all_types.json"), &doc));
  std::string once = doc.Dump();
  JsonValue doc2;
  ASSERT_TRUE(JsonValue::Parse(once, &doc2));
  EXPECT_EQ(doc2.Dump(), once);
}

// --- pastry/messages ---------------------------------------------------------

TEST(FuzzCorpusPastry, TruncatedHeaderRejected) {
  Bytes raw = ReadFile(CorpusDir() / "fuzz_pastry_messages" /
                       "pastry_truncated_header.bin");
  Reader r(ByteSpan(raw.data(), raw.size()));
  PastryMsgType type;
  EXPECT_FALSE(DecodeHeader(&r, &type));
}

TEST(FuzzCorpusPastry, BadVersionRejected) {
  Bytes raw =
      ReadFile(CorpusDir() / "fuzz_pastry_messages" / "pastry_bad_version.bin");
  Reader r(ByteSpan(raw.data(), raw.size()));
  PastryMsgType type;
  EXPECT_FALSE(DecodeHeader(&r, &type));
}

TEST(FuzzCorpusPastry, AbsurdPathCountRejected) {
  // The path-count prefix claims ~4 billion entries; the decoder must fail on
  // the length guard instead of attempting the allocation.
  Bytes raw = ReadFile(CorpusDir() / "fuzz_pastry_messages" /
                       "pastry_route_absurd_count.bin");
  Reader r(ByteSpan(raw.data(), raw.size()));
  PastryMsgType type;
  ASSERT_TRUE(DecodeHeader(&r, &type));
  ASSERT_EQ(type, PastryMsgType::kRoute);
  RouteMsg msg;
  EXPECT_FALSE(DecodeBodyStrict(&r, &msg));
}

// --- storage/messages --------------------------------------------------------

TEST(FuzzCorpusStorage, TruncatedCertificateRejected) {
  Bytes raw = ReadFile(CorpusDir() / "fuzz_storage_messages" /
                       "storage_insert_truncated_cert.bin");
  ASSERT_GT(raw.size(), 1u);
  InsertRequestPayload payload;
  EXPECT_FALSE(InsertRequestPayload::Decode(
      ByteSpan(raw.data() + 1, raw.size() - 1), &payload));
}

TEST(FuzzCorpusStorage, ZeroModulusKeyRejected) {
  // A well-framed StoreReceipt whose embedded card key has n = 0: the key
  // decoder must reject it (a zero modulus can never verify and would abort
  // inside ModExp), which must fail the whole payload.
  Bytes raw = ReadFile(CorpusDir() / "fuzz_storage_messages" /
                       "storage_zero_modulus_key.bin");
  ASSERT_GT(raw.size(), 1u);
  StoreReceiptPayload payload;
  EXPECT_FALSE(StoreReceiptPayload::Decode(
      ByteSpan(raw.data() + 1, raw.size() - 1), &payload));
}

TEST(FuzzCorpusStorage, AbsurdBlobLengthRejected) {
  Bytes raw = ReadFile(CorpusDir() / "fuzz_storage_messages" /
                       "storage_lookup_reply_absurd_blob.bin");
  ASSERT_GT(raw.size(), 1u);
  LookupReplyPayload payload;
  EXPECT_FALSE(LookupReplyPayload::Decode(
      ByteSpan(raw.data() + 1, raw.size() - 1), &payload));
}

// --- diskstore/log_format ----------------------------------------------------

TEST(FuzzCorpusDiskstore, BadMagicRejected) {
  Bytes raw =
      ReadFile(CorpusDir() / "fuzz_diskstore_log" / "diskstore_bad_magic.bin");
  uint64_t seq = 0;
  EXPECT_FALSE(DecodeSegmentHeader(ByteSpan(raw.data(), raw.size()), &seq));
}

TEST(FuzzCorpusDiskstore, CrcMismatchIsCorrupt) {
  Bytes raw = ReadFile(CorpusDir() / "fuzz_diskstore_log" /
                       "diskstore_crc_mismatch.bin");
  uint64_t seq = 0;
  ASSERT_TRUE(DecodeSegmentHeader(ByteSpan(raw.data(), raw.size()), &seq));
  size_t offset = kSegmentHeaderSize;
  Record record;
  EXPECT_EQ(ParseRecord(ByteSpan(raw.data(), raw.size()), &offset, &record),
            ParseStatus::kCorrupt);
  EXPECT_EQ(offset, kSegmentHeaderSize);
}

TEST(FuzzCorpusDiskstore, LengthTooSmallIsCorrupt) {
  Bytes raw = ReadFile(CorpusDir() / "fuzz_diskstore_log" /
                       "diskstore_len_too_small.bin");
  uint64_t seq = 0;
  ASSERT_TRUE(DecodeSegmentHeader(ByteSpan(raw.data(), raw.size()), &seq));
  size_t offset = kSegmentHeaderSize;
  Record record;
  EXPECT_EQ(ParseRecord(ByteSpan(raw.data(), raw.size()), &offset, &record),
            ParseStatus::kCorrupt);
}

TEST(FuzzCorpusDiskstore, BadRecordTypeIsCorrupt) {
  Bytes raw = ReadFile(CorpusDir() / "fuzz_diskstore_log" /
                       "diskstore_bad_record_type.bin");
  uint64_t seq = 0;
  ASSERT_TRUE(DecodeSegmentHeader(ByteSpan(raw.data(), raw.size()), &seq));
  size_t offset = kSegmentHeaderSize;
  Record record;
  EXPECT_EQ(ParseRecord(ByteSpan(raw.data(), raw.size()), &offset, &record),
            ParseStatus::kCorrupt);
}

TEST(FuzzCorpusDiskstore, TornTailKeepsConsistentPrefix) {
  Bytes raw =
      ReadFile(CorpusDir() / "fuzz_diskstore_log" / "diskstore_torn_tail.bin");
  uint64_t seq = 0;
  ASSERT_TRUE(DecodeSegmentHeader(ByteSpan(raw.data(), raw.size()), &seq));
  size_t offset = kSegmentHeaderSize;
  Record record;
  ASSERT_EQ(ParseRecord(ByteSpan(raw.data(), raw.size()), &offset, &record),
            ParseStatus::kOk);
  EXPECT_EQ(record.type, RecordType::kPut);
  size_t cut = offset;
  EXPECT_EQ(ParseRecord(ByteSpan(raw.data(), raw.size()), &offset, &record),
            ParseStatus::kTruncated);
  EXPECT_EQ(offset, cut);
}

// --- net/frame ---------------------------------------------------------------

Bytes NetFrameFile(const std::string& name) {
  return ReadFile(CorpusDir() / "fuzz_net_frame" / name);
}

TEST(FuzzCorpusNetFrame, TruncatedHeaderNeedsMore) {
  Bytes raw = NetFrameFile("frame_truncated_header.bin");
  FrameHeader header;
  ByteSpan payload;
  EXPECT_EQ(DecodeFrame(ByteSpan(raw.data(), raw.size()), 1u << 20, &header,
                        &payload),
            FrameError::kNeedMore);
}

TEST(FuzzCorpusNetFrame, AbsurdLengthCappedBeforeAllocation) {
  // payload_len = 0xffffffff with valid magic/version: the cap must reject
  // it from the header alone, never trusting the length.
  Bytes raw = NetFrameFile("frame_absurd_length.bin");
  FrameHeader header;
  EXPECT_EQ(DecodeFrameHeader(ByteSpan(raw.data(), raw.size()), 1u << 20, &header),
            FrameError::kTooLarge);
}

TEST(FuzzCorpusNetFrame, BadMagicRejected) {
  Bytes raw = NetFrameFile("frame_bad_magic.bin");
  FrameHeader header;
  ByteSpan payload;
  EXPECT_EQ(DecodeFrame(ByteSpan(raw.data(), raw.size()), 1u << 20, &header,
                        &payload),
            FrameError::kBadMagic);
}

TEST(FuzzCorpusNetFrame, BadVersionRejected) {
  Bytes raw = NetFrameFile("frame_bad_version.bin");
  FrameHeader header;
  ByteSpan payload;
  EXPECT_EQ(DecodeFrame(ByteSpan(raw.data(), raw.size()), 1u << 20, &header,
                        &payload),
            FrameError::kBadVersion);
}

TEST(FuzzCorpusNetFrame, BadCrcRejectedAndPoisonsStream) {
  Bytes raw = NetFrameFile("frame_bad_crc.bin");
  FrameHeader header;
  ByteSpan payload;
  EXPECT_EQ(DecodeFrame(ByteSpan(raw.data(), raw.size()), 1u << 20, &header,
                        &payload),
            FrameError::kBadCrc);
  FrameReader reader(1u << 20);
  reader.Append(ByteSpan(raw.data(), raw.size()));
  FrameHeader fh;
  Bytes body;
  EXPECT_EQ(reader.Next(&fh, &body), FrameError::kBadCrc);
  EXPECT_TRUE(reader.failed());
}

// --- generic sweep -----------------------------------------------------------

// Every corpus file must at least decode-or-fail cleanly through its surface;
// this catches a crash on a checked-in input even if no named test pins it.
TEST(FuzzCorpus, EveryFileReplaysWithoutCrashing) {
  size_t replayed = 0;
  for (const auto& entry :
       std::filesystem::recursive_directory_iterator(CorpusDir())) {
    if (!entry.is_regular_file()) {
      continue;
    }
    Bytes raw = ReadFile(entry.path());
    ByteSpan data(raw.data(), raw.size());
    std::string surface = entry.path().parent_path().filename().string();
    if (surface == "fuzz_obs_json") {
      JsonValue doc;
      (void)JsonValue::Parse(std::string(raw.begin(), raw.end()), &doc);
    } else if (surface == "fuzz_pastry_messages") {
      Reader r(data);
      PastryMsgType type;
      (void)DecodeHeader(&r, &type);
    } else if (surface == "fuzz_storage_messages") {
      if (!raw.empty()) {
        InsertRequestPayload payload;
        (void)InsertRequestPayload::Decode(data.subspan(1), &payload);
      }
    } else if (surface == "fuzz_net_frame") {
      FrameHeader header;
      ByteSpan payload;
      (void)DecodeFrame(data, 1u << 20, &header, &payload);
    } else if (surface == "fuzz_diskstore_log") {
      uint64_t seq = 0;
      if (DecodeSegmentHeader(data, &seq)) {
        size_t offset = kSegmentHeaderSize;
        Record record;
        while (ParseRecord(data, &offset, &record) == ParseStatus::kOk) {
        }
      }
    } else {
      ADD_FAILURE() << "corpus dir with no replay surface: " << surface;
    }
    ++replayed;
  }
  EXPECT_GE(replayed, 22u);  // the named regressions above must all be present
}

}  // namespace
}  // namespace past
