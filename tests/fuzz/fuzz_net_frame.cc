// Fuzz driver for the socket-transport frame codec (src/net/frame.h).
//
// Runs every input through both decode surfaces: DecodeFrame (the UDP
// datagram path — exactly one frame, no trailing bytes) and FrameReader (the
// TCP stream path — incremental appends in several chunk sizes). Invariants:
// an accepted datagram re-encodes to exactly its input bytes, the stream
// reader at chunk size = input size agrees with the datagram decoder on a
// single-frame input, stream errors are sticky, and no input makes either
// path allocate beyond the configured payload cap or fail to terminate.
#include <cstdint>
#include <vector>

#include "src/common/bytes.h"
#include "src/net/frame.h"
#include "tests/fuzz/fuzz_util.h"

namespace {

using namespace past;  // NOLINT

constexpr size_t kMaxPayload = 1 << 20;

void TestOneInput(ByteSpan data) {
  // Datagram path.
  FrameHeader header;
  ByteSpan payload;
  FrameError datagram = DecodeFrame(data, kMaxPayload, &header, &payload);
  if (datagram == FrameError::kNone) {
    FUZZ_ASSERT(payload.size() == header.payload_len,
                "payload span must match the header length");
    FUZZ_ASSERT(data.size() == kFrameHeaderSize + header.payload_len,
                "an accepted datagram has no trailing bytes");
    // The codec is canonical: decode(encode) == identity and vice versa.
    Bytes reencoded = EncodeFrame(header.from, header.to, payload);
    FUZZ_ASSERT(reencoded.size() == data.size(), "re-encode size mismatch");
    FUZZ_ASSERT(std::equal(reencoded.begin(), reencoded.end(), data.begin()),
                "re-encode must reproduce the input bytes");
  }

  // Stream path, several chunkings of the same bytes.
  const size_t chunks[] = {1, 7, data.size() > 0 ? data.size() : 1};
  for (size_t chunk : chunks) {
    FrameReader reader(kMaxPayload);
    size_t offset = 0;
    size_t frames = 0;
    FrameError last = FrameError::kNeedMore;
    while (offset < data.size() && !reader.failed()) {
      size_t n = std::min(chunk, data.size() - offset);
      reader.Append(data.subspan(offset, n));
      offset += n;
      for (;;) {
        FrameHeader fh;
        Bytes body;
        last = reader.Next(&fh, &body);
        if (last != FrameError::kNone) {
          break;
        }
        FUZZ_ASSERT(body.size() == fh.payload_len,
                    "stream frame body must match its header length");
        FUZZ_ASSERT(fh.payload_len <= kMaxPayload,
                    "stream frame must respect the payload cap");
        ++frames;
      }
    }
    if (reader.failed()) {
      // Errors are sticky: the poisoned stream keeps reporting the same
      // error and never yields another frame.
      FrameHeader fh;
      Bytes body;
      FUZZ_ASSERT(reader.Next(&fh, &body) == last, "stream error must be sticky");
    }
    if (chunk >= data.size() && datagram == FrameError::kNone) {
      FUZZ_ASSERT(frames == 1 && !reader.failed(),
                  "stream and datagram decoders must agree on one-frame input");
    }
  }
}

std::vector<Bytes> SeedInputs() {
  std::vector<Bytes> seeds;

  // A small control frame and an empty-payload frame.
  Bytes payload = {0xde, 0xad, 0xbe, 0xef, 0x01, 0x02};
  seeds.push_back(EncodeFrame(7, 9, ByteSpan(payload.data(), payload.size())));
  seeds.push_back(EncodeFrame(1, 2, ByteSpan()));

  // Two frames back to back — the steady state of a TCP stream.
  Bytes stream = EncodeFrame(3, 4, ByteSpan(payload.data(), payload.size()));
  Bytes second = EncodeFrame(4, 3, ByteSpan(payload.data(), 3));
  stream.insert(stream.end(), second.begin(), second.end());
  seeds.push_back(stream);

  // A torn frame: header promises more payload than follows.
  Bytes torn = EncodeFrame(5, 6, ByteSpan(payload.data(), payload.size()));
  torn.resize(torn.size() - 3);
  seeds.push_back(torn);

  // A bulk frame, so length mutations cross the UDP/TCP size boundary.
  Bytes bulk_payload(4096, 0xa5);
  seeds.push_back(
      EncodeFrame(8, 1, ByteSpan(bulk_payload.data(), bulk_payload.size())));

  return seeds;
}

}  // namespace

PAST_FUZZ_MAIN(TestOneInput, SeedInputs)
