// Fuzz driver for the observability JSON codec (src/obs/json.h).
//
// Parses arbitrary bytes as a JSON document. Parsing must never crash, and an
// accepted document must satisfy: every number is finite (Dump() could not
// represent an inf/nan), and Dump -> Parse -> Dump is byte-stable for both
// compact and pretty-printed output. The corpus files pin the two parser bugs
// this driver found: overflowing number literals and lone \u surrogates.
#include <cmath>
#include <string>
#include <vector>

#include "src/common/bytes.h"
#include "src/obs/json.h"
#include "tests/fuzz/fuzz_util.h"

namespace {

using namespace past;  // NOLINT

void CheckFinite(const JsonValue& v) {
  switch (v.type()) {
    case JsonValue::Type::kNumber:
      FUZZ_ASSERT(std::isfinite(v.AsDouble()),
                  "an accepted number must be representable by Dump");
      break;
    case JsonValue::Type::kArray:
      for (const JsonValue& item : v.items()) {
        CheckFinite(item);
      }
      break;
    case JsonValue::Type::kObject:
      for (const auto& [key, member] : v.members()) {
        CheckFinite(member);
      }
      break;
    default:
      break;
  }
}

void TestOneInput(ByteSpan data) {
  std::string text(reinterpret_cast<const char*>(data.data()), data.size());
  JsonValue doc;
  if (!JsonValue::Parse(text, &doc)) {
    return;
  }
  CheckFinite(doc);

  std::string once = doc.Dump();
  JsonValue doc2;
  FUZZ_ASSERT(JsonValue::Parse(once, &doc2), "a dump must re-parse");
  FUZZ_ASSERT(doc2.Dump() == once, "compact dump must be byte-stable");

  std::string pretty = doc.Dump(2);
  JsonValue doc3;
  FUZZ_ASSERT(JsonValue::Parse(pretty, &doc3), "a pretty dump must re-parse");
  FUZZ_ASSERT(doc3.Dump() == once, "pretty and compact dumps must agree");
}

std::vector<Bytes> SeedInputs() {
  const char* docs[] = {
      "null",
      "true",
      "-17",
      "3.25e-3",
      "\"a \\\"quoted\\\" string with \\u00e9 and \\n\"",
      "[]",
      "[1,2,3,[4,[5]],null,false]",
      "{}",
      R"({"experiment":"routing_hops","nodes":1000,"metrics":{)"
      R"("counters":{"net.sent":12345,"net.dropped":0},)"
      R"("histos":{"hops":[0,12,480,508,0]}},)"
      R"("trace":{"trace_id":42,"hops":[)"
      R"({"node":7,"rule":"leaf_set","distance":10.5},)"
      R"({"node":9,"rule":"routing_table","distance":0.25}]},)"
      R"("ok":true,"notes":null})",
  };
  std::vector<Bytes> seeds;
  for (const char* doc : docs) {
    seeds.push_back(ToBytes(doc));
  }
  return seeds;
}

}  // namespace

PAST_FUZZ_MAIN(TestOneInput, SeedInputs)
