// Fuzz driver for the PAST application payload codecs (src/storage/messages.h).
//
// Input format: byte 0 selects one of the 16 payload types, the remainder is
// the payload buffer handed to that type's Decode(). Decoding arbitrary bytes
// must never crash, and an accepted payload must re-encode idempotently:
// Decode -> Encode -> Decode -> Encode is byte-stable.
#include <cstdint>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/rng.h"
#include "src/crypto/sha256.h"
#include "src/storage/messages.h"
#include "src/storage/smartcard.h"
#include "tests/fuzz/fuzz_util.h"

namespace {

using namespace past;  // NOLINT

// Payload types in a fixed dispatch order; byte 0 of the input indexes this
// list (mod 16).
enum Selector : uint8_t {
  kSelInsertRequest = 0,
  kSelStoreReplica,
  kSelDivertStore,
  kSelDivertResult,
  kSelStoreReceipt,
  kSelStoreNack,
  kSelLookupRequest,
  kSelLookupReply,
  kSelFetchRequest,
  kSelFetchReply,
  kSelReclaimRequest,
  kSelReclaimReceipt,
  kSelCachePush,
  kSelReplicaNotify,
  kSelAuditChallenge,
  kSelAuditResponse,
  kSelCount,
};

template <typename P>
void CheckPayload(ByteSpan body) {
  P payload;
  if (!P::Decode(body, &payload)) {
    return;
  }
  Bytes once = payload.Encode();
  P payload2;
  FUZZ_ASSERT(P::Decode(ByteSpan(once.data(), once.size()), &payload2),
              "re-encoded payload must decode");
  Bytes twice = payload2.Encode();
  FUZZ_ASSERT(once == twice, "encode must be idempotent after one round trip");
}

void TestOneInput(ByteSpan data) {
  if (data.empty()) {
    return;
  }
  ByteSpan body = data.subspan(1);
  switch (data[0] % kSelCount) {
    case kSelInsertRequest:
      CheckPayload<InsertRequestPayload>(body);
      break;
    case kSelStoreReplica:
      CheckPayload<StoreReplicaPayload>(body);
      break;
    case kSelDivertStore:
      CheckPayload<DivertStorePayload>(body);
      break;
    case kSelDivertResult:
      CheckPayload<DivertResultPayload>(body);
      break;
    case kSelStoreReceipt:
      CheckPayload<StoreReceiptPayload>(body);
      break;
    case kSelStoreNack:
      CheckPayload<StoreNackPayload>(body);
      break;
    case kSelLookupRequest:
      CheckPayload<LookupRequestPayload>(body);
      break;
    case kSelLookupReply:
      CheckPayload<LookupReplyPayload>(body);
      break;
    case kSelFetchRequest:
      CheckPayload<FetchRequestPayload>(body);
      break;
    case kSelFetchReply:
      CheckPayload<FetchReplyPayload>(body);
      break;
    case kSelReclaimRequest:
      CheckPayload<ReclaimRequestPayload>(body);
      break;
    case kSelReclaimReceipt:
      CheckPayload<ReclaimReceiptPayload>(body);
      break;
    case kSelCachePush:
      CheckPayload<CachePushPayload>(body);
      break;
    case kSelReplicaNotify:
      CheckPayload<ReplicaNotifyPayload>(body);
      break;
    case kSelAuditChallenge:
      CheckPayload<AuditChallengePayload>(body);
      break;
    case kSelAuditResponse:
      CheckPayload<AuditResponsePayload>(body);
      break;
  }
}

Bytes WithSelector(uint8_t selector, const Bytes& body) {
  Bytes out;
  out.reserve(body.size() + 1);
  out.push_back(selector);
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

std::vector<Bytes> SeedInputs() {
  // A real broker-issued certificate exercises the nested CardIdentity /
  // signature decoding paths; everything is seeded, so seeds are stable.
  Broker broker(3, BrokerOptions{});
  std::unique_ptr<Smartcard> card =
      std::move(broker.IssueCard(1 << 20, 1 << 20)).value();
  Rng rng(11);

  Bytes content = ToBytes("fuzz seed content");
  auto digest = Sha256::Hash(ByteSpan(content.data(), content.size()));
  FileCertificate cert =
      std::move(card->IssueFileCertificate(
                    "fuzz-file", content.size(),
                    ByteSpan(digest.data(), digest.size()), 3, 99, 7))
          .value();
  NodeDescriptor client{rng.NextU128(), 17};
  NodeDescriptor primary{rng.NextU128(), 23};

  std::vector<Bytes> seeds;

  InsertRequestPayload insert;
  insert.cert = cert;
  insert.content = content;
  insert.client = client;
  seeds.push_back(WithSelector(kSelInsertRequest, insert.Encode()));

  StoreReplicaPayload replica;
  replica.cert = cert;
  replica.content = content;
  replica.client = client;
  replica.divert_allowed = false;
  seeds.push_back(WithSelector(kSelStoreReplica, replica.Encode()));

  DivertStorePayload divert;
  divert.cert = cert;
  divert.content = content;
  divert.client = client;
  divert.primary = primary;
  seeds.push_back(WithSelector(kSelDivertStore, divert.Encode()));

  DivertResultPayload divert_result;
  divert_result.file_id = cert.file_id;
  divert_result.accepted = true;
  divert_result.client = client;
  seeds.push_back(WithSelector(kSelDivertResult, divert_result.Encode()));

  StoreReceiptPayload receipt;
  receipt.receipt = card->IssueStoreReceipt(cert.file_id, true, 1234);
  seeds.push_back(WithSelector(kSelStoreReceipt, receipt.Encode()));

  StoreNackPayload nack;
  nack.file_id = cert.file_id;
  nack.reason = 5;
  seeds.push_back(WithSelector(kSelStoreNack, nack.Encode()));

  LookupRequestPayload lookup;
  lookup.file_id = cert.file_id;
  lookup.client = client;
  seeds.push_back(WithSelector(kSelLookupRequest, lookup.Encode()));

  LookupReplyPayload reply;
  reply.cert = cert;
  reply.content = content;
  reply.from_cache = true;
  reply.replier = primary;
  seeds.push_back(WithSelector(kSelLookupReply, reply.Encode()));

  FetchRequestPayload fetch;
  fetch.file_id = cert.file_id;
  fetch.client = client;
  fetch.for_lookup = true;
  seeds.push_back(WithSelector(kSelFetchRequest, fetch.Encode()));

  FetchReplyPayload fetch_reply;
  fetch_reply.found = true;
  fetch_reply.cert = cert;
  fetch_reply.content = content;
  seeds.push_back(WithSelector(kSelFetchReply, fetch_reply.Encode()));

  ReclaimRequestPayload reclaim;
  reclaim.cert = card->IssueReclaimCertificate(cert.file_id, 5678);
  reclaim.client = client;
  seeds.push_back(WithSelector(kSelReclaimRequest, reclaim.Encode()));

  ReclaimReceiptPayload reclaim_receipt;
  reclaim_receipt.receipt =
      card->IssueReclaimReceipt(cert.file_id, content.size(), 5678);
  seeds.push_back(WithSelector(kSelReclaimReceipt, reclaim_receipt.Encode()));

  CachePushPayload cache;
  cache.cert = cert;
  cache.content = content;
  seeds.push_back(WithSelector(kSelCachePush, cache.Encode()));

  ReplicaNotifyPayload notify;
  notify.file_id = cert.file_id;
  notify.file_size = content.size();
  seeds.push_back(WithSelector(kSelReplicaNotify, notify.Encode()));

  AuditChallengePayload challenge;
  challenge.file_id = cert.file_id;
  challenge.nonce = 0xabcdef;
  seeds.push_back(WithSelector(kSelAuditChallenge, challenge.Encode()));

  AuditResponsePayload response;
  response.file_id = cert.file_id;
  response.nonce = 0xabcdef;
  response.has_file = true;
  response.digest = Bytes(digest.begin(), digest.end());
  seeds.push_back(WithSelector(kSelAuditResponse, response.Encode()));

  return seeds;
}

}  // namespace

PAST_FUZZ_MAIN(TestOneInput, SeedInputs)
