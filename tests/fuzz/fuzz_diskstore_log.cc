// Fuzz driver for the segment-log on-disk format (src/diskstore/log_format.h).
//
// Treats the input as the raw contents of one segment file and replays it the
// way DiskStore recovery does: DecodeSegmentHeader, then ParseRecord in a loop
// until the first non-kOk status (the consistent-prefix cut). Invariants: the
// offset advances on every kOk and never moves otherwise, an accepted record
// re-encodes to exactly the bytes it was parsed from, and the replay loop
// terminates.
#include <cstdint>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/u160.h"
#include "src/diskstore/log_format.h"
#include "tests/fuzz/fuzz_util.h"

namespace {

using namespace past;  // NOLINT

void TestOneInput(ByteSpan data) {
  uint64_t seq = 0;
  if (!DecodeSegmentHeader(data, &seq)) {
    return;
  }

  size_t offset = kSegmentHeaderSize;
  while (true) {
    size_t before = offset;
    Record record;
    ParseStatus status = ParseRecord(data, &offset, &record);
    if (status == ParseStatus::kOk) {
      FUZZ_ASSERT(offset > before, "kOk must advance the offset");
      FUZZ_ASSERT(offset <= data.size(), "offset must stay inside the buffer");
      // The record the parser accepted must be exactly what the encoder
      // produces for it — the CRC leaves no room for non-canonical bytes.
      Bytes reencoded =
          EncodeRecord(record.type, record.key,
                       ByteSpan(record.value.data(), record.value.size()));
      FUZZ_ASSERT(reencoded.size() == offset - before,
                  "re-encoded record must have the parsed size");
      FUZZ_ASSERT(std::equal(reencoded.begin(), reencoded.end(),
                             data.begin() + static_cast<long>(before)),
                  "re-encoded record must match the parsed bytes");
      continue;
    }
    // kAtEnd / kTruncated / kCorrupt: the offset marks the consistent prefix
    // and must not have moved.
    FUZZ_ASSERT(offset == before, "non-kOk must leave the offset unchanged");
    if (status == ParseStatus::kAtEnd) {
      FUZZ_ASSERT(offset == data.size(), "kAtEnd means the buffer is consumed");
    }
    break;
  }
}

std::vector<Bytes> SeedInputs() {
  std::vector<Bytes> seeds;

  auto key = [](uint8_t fill) {
    Bytes raw(U160::kBytes, fill);
    return U160::FromBytes(ByteSpan(raw.data(), raw.size()));
  };
  auto append = [](Bytes* out, const Bytes& part) {
    out->insert(out->end(), part.begin(), part.end());
  };

  // Header only: a freshly created, empty segment.
  seeds.push_back(EncodeSegmentHeader(1));

  // A typical segment: puts, a pointer put, a remove, a pointer remove.
  Bytes value = {0x10, 0x20, 0x30, 0x40, 0x50};
  Bytes seg = EncodeSegmentHeader(2);
  append(&seg, EncodeRecord(RecordType::kPut, key(0xaa),
                            ByteSpan(value.data(), value.size())));
  append(&seg, EncodeRecord(RecordType::kPointerPut, key(0xbb),
                            ByteSpan(value.data(), 2)));
  append(&seg, EncodeRecord(RecordType::kRemove, key(0xaa), ByteSpan()));
  append(&seg, EncodeRecord(RecordType::kPointerRemove, key(0xbb), ByteSpan()));
  seeds.push_back(seg);

  // A segment with a torn tail: a valid put followed by half a record.
  Bytes torn = EncodeSegmentHeader(3);
  append(&torn, EncodeRecord(RecordType::kPut, key(0xcc),
                             ByteSpan(value.data(), value.size())));
  Bytes partial = EncodeRecord(RecordType::kPut, key(0xdd),
                               ByteSpan(value.data(), value.size()));
  partial.resize(partial.size() / 2);
  append(&torn, partial);
  seeds.push_back(torn);

  // A large-value record, so length mutations cross size-class boundaries.
  Bytes big_value(4096, 0x5a);
  Bytes big = EncodeSegmentHeader(4);
  append(&big, EncodeRecord(RecordType::kPut, key(0xee),
                            ByteSpan(big_value.data(), big_value.size())));
  seeds.push_back(big);

  return seeds;
}

}  // namespace

PAST_FUZZ_MAIN(TestOneInput, SeedInputs)
