// Transport conformance suite.
//
// One set of behavioral expectations, run against every Transport backend:
// the deterministic simulator (Network) and the real socket transport
// (SocketTransport over loopback). Whatever backend carries the overlay,
// the protocol code above must observe the same contract:
//
//   * a sent payload is delivered verbatim, tagged with the sender address;
//   * messages between one (sender, receiver) pair of the same size class
//     arrive in send order;
//   * delivery is never synchronous with Send() — including self-sends;
//   * frames above the configured size cap are counted and dropped, never
//     truncated or delivered;
//   * a down endpoint receives nothing; traffic resumes after it comes up.
//
// The harness abstracts the only things that legitimately differ: how
// endpoints are created (one sim Network hosts many; one SocketTransport is
// one endpoint), how the world advances (virtual-time RunAll vs. real
// PollOnce), and which counter records oversize drops.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "src/net/socket_transport.h"
#include "src/net/transport.h"
#include "src/sim/network.h"
#include "src/sim/topology.h"

namespace past {
namespace {

constexpr size_t kMaxMessage = 256 * 1024;

struct Delivery {
  NodeAddr at;  // receiving endpoint
  NodeAddr from;
  Bytes wire;
};

class Recorder : public NetReceiver {
 public:
  explicit Recorder(std::vector<Delivery>* log) : log_(log) {}
  void OnMessage(NodeAddr from, ByteSpan wire) override {
    log_->push_back(Delivery{addr, from, Bytes(wire.begin(), wire.end())});
  }
  NodeAddr addr = kInvalidAddr;

 private:
  std::vector<Delivery>* log_;
};

class ConformanceHarness {
 public:
  virtual ~ConformanceHarness() = default;

  // Creates endpoint `i` (0-based, called in order) and returns its address.
  virtual NodeAddr AddEndpoint(NetReceiver* receiver) = 0;
  // The Transport to Send() through for traffic originating at endpoint `i`.
  virtual Transport* TransportOf(size_t i) = 0;
  // Advances the world until in-flight traffic has had time to deliver.
  virtual void Settle() = 0;
  virtual uint64_t OversizeDrops() = 0;
};

class SimHarness : public ConformanceHarness {
 public:
  SimHarness() : rng_(7), topology_(TopologyKind::kPlane, 100.0, &rng_) {
    NetworkConfig config;
    config.max_message_bytes = kMaxMessage;
    // Jitter models per-packet path variance, which deliberately reorders
    // messages; the ordering guarantee below holds for the sim's
    // deterministic-latency configuration (equal deadlines fire in schedule
    // order), which is what the conformance contract states.
    config.jitter_frac = 0.0;
    net_ = std::make_unique<Network>(&queue_, &topology_, config, 42);
  }

  NodeAddr AddEndpoint(NetReceiver* receiver) override {
    return net_->Register(receiver);
  }
  Transport* TransportOf(size_t) override { return net_.get(); }
  void Settle() override { queue_.RunAll(); }
  uint64_t OversizeDrops() override {
    return net_->metrics().GetCounter("net.dropped_oversize")->value();
  }

 private:
  EventQueue queue_;
  Rng rng_;
  Topology topology_;
  std::unique_ptr<Network> net_;
};

class SocketHarness : public ConformanceHarness {
 public:
  NodeAddr AddEndpoint(NetReceiver* receiver) override {
    SocketTransportOptions options;
    options.max_frame_bytes = kMaxMessage;
    // Low threshold so conformance traffic exercises the TCP path too.
    options.udp_max_payload = 512;
    auto transport = std::make_unique<SocketTransport>(options);
    EXPECT_EQ(transport->Open(), StatusCode::kOk);
    NodeAddr addr = transport->Register(receiver);
    transports_.push_back(std::move(transport));
    return addr;
  }

  Transport* TransportOf(size_t i) override { return transports_[i].get(); }

  void Settle() override {
    // Real sockets have no "queue empty" oracle; poll all endpoints through
    // a generous number of short rounds so connects, flushes, and deliveries
    // complete. Loopback makes this deterministic in practice.
    for (int round = 0; round < 300; ++round) {
      for (auto& t : transports_) {
        EXPECT_EQ(t->PollOnce(1), StatusCode::kOk);
      }
    }
  }

  uint64_t OversizeDrops() override {
    uint64_t total = 0;
    for (auto& t : transports_) {
      total += t->metrics().GetCounter("net.sock.dropped_oversize")->value();
    }
    return total;
  }

 private:
  std::vector<std::unique_ptr<SocketTransport>> transports_;
};

enum class Backend { kSim, kSocket };

class TransportConformanceTest : public ::testing::TestWithParam<Backend> {
 protected:
  void SetUp() override {
    if (GetParam() == Backend::kSim) {
      harness_ = std::make_unique<SimHarness>();
    } else {
      harness_ = std::make_unique<SocketHarness>();
    }
    for (int i = 0; i < 2; ++i) {
      auto recorder = std::make_unique<Recorder>(&log_);
      recorder->addr = harness_->AddEndpoint(recorder.get());
      ASSERT_NE(recorder->addr, kInvalidAddr);
      recorders_.push_back(std::move(recorder));
    }
  }

  NodeAddr addr(size_t i) const { return recorders_[i]->addr; }
  void Send(size_t from, size_t to, Bytes wire) {
    harness_->TransportOf(from)->Send(addr(from), addr(to), std::move(wire));
  }
  std::vector<Delivery> At(NodeAddr a) const {
    std::vector<Delivery> out;
    for (const Delivery& d : log_) {
      if (d.at == a) {
        out.push_back(d);
      }
    }
    return out;
  }

  std::vector<Delivery> log_;
  std::vector<std::unique_ptr<Recorder>> recorders_;
  std::unique_ptr<ConformanceHarness> harness_;
};

TEST_P(TransportConformanceTest, DeliversPayloadVerbatimWithSenderAddress) {
  // Sizes straddling the socket backend's UDP/TCP split (512 here).
  const size_t sizes[] = {1, 100, 511, 512, 513, 4096, 100000};
  for (size_t n : sizes) {
    Bytes payload(n, static_cast<uint8_t>(n % 251));
    payload[0] = 0x7e;
    Send(0, 1, payload);
  }
  harness_->Settle();

  // Messages of different size classes may legitimately interleave (UDP vs
  // TCP on the socket backend), so match deliveries by size, not position.
  std::vector<Delivery> got = At(addr(1));
  ASSERT_EQ(got.size(), std::size(sizes));
  for (size_t n : sizes) {
    auto it = std::find_if(got.begin(), got.end(),
                           [n](const Delivery& d) { return d.wire.size() == n; });
    ASSERT_NE(it, got.end()) << "no delivery of size " << n;
    EXPECT_EQ(it->from, addr(0));
    EXPECT_EQ(it->wire[0], 0x7e);
    EXPECT_EQ(it->wire.back(), n == 1 ? 0x7e : static_cast<uint8_t>(n % 251));
  }
}

TEST_P(TransportConformanceTest, PreservesOrderWithinPeerPairAndSizeClass) {
  // Same size class (all-small, then all-bulk): both backends guarantee
  // send order between one sender and one receiver.
  for (uint8_t i = 0; i < 32; ++i) {
    Send(0, 1, Bytes{i});
  }
  for (uint8_t i = 0; i < 8; ++i) {
    Bytes bulk(2000, i);
    Send(0, 1, std::move(bulk));
  }
  harness_->Settle();

  std::vector<Delivery> got = At(addr(1));
  ASSERT_EQ(got.size(), 40u);
  uint8_t small_next = 0;
  uint8_t bulk_next = 0;
  for (const Delivery& d : got) {
    if (d.wire.size() == 1) {
      EXPECT_EQ(d.wire[0], small_next++);
    } else {
      EXPECT_EQ(d.wire[0], bulk_next++);
    }
  }
  EXPECT_EQ(small_next, 32);
  EXPECT_EQ(bulk_next, 8);
}

TEST_P(TransportConformanceTest, SelfSendDeliversAsynchronously) {
  Send(0, 0, Bytes{0xaa, 0xbb});
  // Never synchronous with Send() — both backends defer through their queue.
  EXPECT_TRUE(log_.empty());
  harness_->Settle();
  std::vector<Delivery> got = At(addr(0));
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].from, addr(0));
  EXPECT_EQ(got[0].wire, (Bytes{0xaa, 0xbb}));
}

TEST_P(TransportConformanceTest, OversizeDroppedAndCounted) {
  Send(0, 1, Bytes(kMaxMessage + 1, 0x11));
  Send(0, 0, Bytes(kMaxMessage + 1, 0x22));  // loopback honors the cap too
  harness_->Settle();
  EXPECT_TRUE(log_.empty());
  EXPECT_EQ(harness_->OversizeDrops(), 2u);

  // At the cap is still deliverable.
  Send(0, 1, Bytes(kMaxMessage, 0x33));
  harness_->Settle();
  EXPECT_EQ(At(addr(1)).size(), 1u);
}

TEST_P(TransportConformanceTest, DownEndpointReceivesNothingUntilRecovery) {
  harness_->TransportOf(1)->SetUp(addr(1), false);
  EXPECT_FALSE(harness_->TransportOf(1)->IsUp(addr(1)));
  Send(0, 1, Bytes{0x01});
  harness_->Settle();
  EXPECT_TRUE(At(addr(1)).empty());

  harness_->TransportOf(1)->SetUp(addr(1), true);
  EXPECT_TRUE(harness_->TransportOf(1)->IsUp(addr(1)));
  Send(0, 1, Bytes{0x02});
  harness_->Settle();
  std::vector<Delivery> got = At(addr(1));
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].wire, (Bytes{0x02}));
}

INSTANTIATE_TEST_SUITE_P(Backends, TransportConformanceTest,
                         ::testing::Values(Backend::kSim, Backend::kSocket),
                         [](const ::testing::TestParamInfo<Backend>& pinfo) {
                           return pinfo.param == Backend::kSim ? "Sim" : "Socket";
                         });

}  // namespace
}  // namespace past
