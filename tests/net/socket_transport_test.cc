// Socket-backend behaviors beyond the cross-backend conformance suite:
// the UDP/TCP size split, reconnect after a peer restart, backpressure
// caps, decode hardening against hostile datagrams, misaddressed-frame
// drops, external fd watchers, and RTT-backed Proximity.
//
// All tests run real sockets on loopback with ephemeral ports, so they are
// parallel-safe and need no fixed port assignments.
#include "src/net/socket_transport.h"

#include <gtest/gtest.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <memory>
#include <vector>

#include "src/net/frame.h"
#include "src/net/socket_util.h"

namespace past {
namespace {

struct Received {
  NodeAddr from;
  Bytes wire;
};

class Sink : public NetReceiver {
 public:
  void OnMessage(NodeAddr from, ByteSpan wire) override {
    got.push_back(Received{from, Bytes(wire.begin(), wire.end())});
  }
  std::vector<Received> got;
};

// Polls every transport through `rounds` short rounds — enough for loopback
// connects, flushes, and deliveries to complete.
void Pump(std::initializer_list<SocketTransport*> transports, int rounds = 200) {
  for (int i = 0; i < rounds; ++i) {
    for (SocketTransport* t : transports) {
      ASSERT_EQ(t->PollOnce(1), StatusCode::kOk);
    }
  }
}

uint64_t CounterValue(SocketTransport& t, const char* name) {
  return t.metrics().GetCounter(name)->value();
}

// An opened transport with a registered sink, on an ephemeral port.
struct Endpoint {
  explicit Endpoint(SocketTransportOptions options = {}) : transport(options) {
    EXPECT_EQ(transport.Open(), StatusCode::kOk);
    addr = transport.Register(&sink);
  }
  SocketTransport transport;
  Sink sink;
  NodeAddr addr = kInvalidAddr;
};

TEST(SocketTransport, OpenBindsEphemeralPortAndPacksAddress) {
  Endpoint e;
  EXPECT_NE(e.transport.port(), 0);
  // Default single-host table: host_index 0, so addr == port.
  EXPECT_EQ(e.addr, MakeSockAddr(0, e.transport.port()));
  EXPECT_EQ(e.addr, e.transport.local_addr());
  EXPECT_TRUE(e.transport.IsUp(e.addr));
}

TEST(SocketTransport, SmallPayloadsTakeUdpAndBulkTakesTcp) {
  Endpoint a;
  Endpoint b;

  // At the default split (1200): one datagram, no TCP connection.
  a.transport.Send(a.addr, b.addr, Bytes(1200, 0x01));
  Pump({&a.transport, &b.transport});
  ASSERT_EQ(b.sink.got.size(), 1u);
  EXPECT_EQ(b.sink.got[0].from, a.addr);
  EXPECT_EQ(CounterValue(a.transport, "net.sock.udp_tx"), 1u);
  EXPECT_EQ(CounterValue(b.transport, "net.sock.udp_rx"), 1u);
  EXPECT_EQ(CounterValue(a.transport, "net.sock.conns_dialed"), 0u);

  // One byte past the split: streams over a dialed TCP connection.
  a.transport.Send(a.addr, b.addr, Bytes(1201, 0x02));
  Pump({&a.transport, &b.transport});
  ASSERT_EQ(b.sink.got.size(), 2u);
  EXPECT_EQ(b.sink.got[1].wire.size(), 1201u);
  EXPECT_EQ(CounterValue(a.transport, "net.sock.tcp_tx"), 1u);
  EXPECT_EQ(CounterValue(b.transport, "net.sock.tcp_rx"), 1u);
  EXPECT_EQ(CounterValue(a.transport, "net.sock.conns_dialed"), 1u);
  EXPECT_EQ(CounterValue(b.transport, "net.sock.conns_accepted"), 1u);

  // The cached connection is reused for the next bulk send.
  a.transport.Send(a.addr, b.addr, Bytes(5000, 0x03));
  Pump({&a.transport, &b.transport});
  ASSERT_EQ(b.sink.got.size(), 3u);
  EXPECT_EQ(CounterValue(a.transport, "net.sock.conns_dialed"), 1u);
}

TEST(SocketTransport, RedialsAfterPeerRestart) {
  Endpoint a;
  auto b = std::make_unique<Endpoint>();
  const uint16_t b_port = b->transport.port();
  const NodeAddr b_addr = b->addr;

  a.transport.Send(a.addr, b_addr, Bytes(3000, 0x01));
  Pump({&a.transport, &b->transport});
  ASSERT_EQ(b->sink.got.size(), 1u);
  EXPECT_EQ(CounterValue(a.transport, "net.sock.conns_dialed"), 1u);

  // Peer goes away; the sender notices the dead connection while polling.
  b->transport.Close();
  Pump({&a.transport}, 50);
  EXPECT_GE(CounterValue(a.transport, "net.sock.conns_dropped"), 1u);

  // Peer restarts on the same port (new process in real life).
  SocketTransportOptions options;
  options.port = b_port;
  Endpoint b2(options);
  ASSERT_EQ(b2.addr, b_addr);

  // The next bulk send dials a fresh connection and gets through. The first
  // attempt can race the sender's discovery of the dead socket, so retry.
  for (int attempt = 0; attempt < 5 && b2.sink.got.empty(); ++attempt) {
    a.transport.Send(a.addr, b_addr, Bytes(3000, 0x02));
    Pump({&a.transport, &b2.transport});
  }
  ASSERT_FALSE(b2.sink.got.empty());
  EXPECT_EQ(b2.sink.got[0].wire.size(), 3000u);
  EXPECT_GE(CounterValue(a.transport, "net.sock.conns_dialed"), 2u);
}

TEST(SocketTransport, BackpressureCapDropsInsteadOfBufferingUnbounded) {
  SocketTransportOptions options;
  options.max_peer_queue_bytes = 4096;
  Endpoint a(options);
  Endpoint b;

  // Queue bulk frames while the non-blocking connect is still resolving
  // (no PollOnce yet): the per-peer cap admits only the first two.
  for (int i = 0; i < 10; ++i) {
    a.transport.Send(a.addr, b.addr, Bytes(1800, static_cast<uint8_t>(i)));
  }
  EXPECT_EQ(CounterValue(a.transport, "net.sock.dropped_backpressure"), 8u);

  // What was admitted still flows once the connect resolves.
  Pump({&a.transport, &b.transport});
  ASSERT_EQ(b.sink.got.size(), 2u);
  EXPECT_EQ(b.sink.got[0].wire[0], 0x00);
  EXPECT_EQ(b.sink.got[1].wire[0], 0x01);
}

TEST(SocketTransport, HostileDatagramsAreCountedAndDropped) {
  Endpoint e;

  uint16_t injector_port = 0;
  Result<int> injector = UdpBind("127.0.0.1", 0, &injector_port);
  ASSERT_TRUE(injector.ok());
  sockaddr_in dest;
  ASSERT_EQ(ResolveIpv4("127.0.0.1", e.transport.port(), &dest), StatusCode::kOk);
  auto inject = [&](const Bytes& datagram) {
    ASSERT_GE(::sendto(injector.value(), datagram.data(), datagram.size(), 0,
                       reinterpret_cast<const sockaddr*>(&dest), sizeof(dest)),
              0);
  };

  inject(Bytes(64, 0xcd));                       // garbage: bad magic
  inject(Bytes(10, 0x50));                       // truncated header
  Bytes corrupt = EncodeFrame(1, e.addr, ByteSpan());
  corrupt.push_back(0xff);                        // trailing byte
  inject(corrupt);
  Pump({&e.transport}, 50);
  EXPECT_EQ(CounterValue(e.transport, "net.sock.dropped_decode"), 3u);

  // A well-formed frame addressed to someone else is dropped separately.
  inject(EncodeFrame(1, e.addr + 1, ByteSpan()));
  Pump({&e.transport}, 50);
  EXPECT_EQ(CounterValue(e.transport, "net.sock.dropped_misaddressed"), 1u);

  // None of it reached the receiver; a valid frame still does.
  EXPECT_TRUE(e.sink.got.empty());
  Bytes payload = {0x01, 0x02};
  inject(EncodeFrame(7, e.addr, ByteSpan(payload.data(), payload.size())));
  Pump({&e.transport}, 50);
  ASSERT_EQ(e.sink.got.size(), 1u);
  EXPECT_EQ(e.sink.got[0].from, 7u);
  EXPECT_EQ(e.sink.got[0].wire, payload);

  ::close(injector.value());
}

TEST(SocketTransport, SendToUnknownHostIndexIsMisaddressed) {
  Endpoint e;
  // Default host table has one entry; host_index 3 points nowhere.
  e.transport.Send(e.addr, MakeSockAddr(3, 12345), Bytes{0x01});
  EXPECT_EQ(CounterValue(e.transport, "net.sock.dropped_misaddressed"), 1u);
}

TEST(SocketTransport, WatchFdHooksExternalFdIntoTheLoop) {
  Endpoint e;
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  ASSERT_EQ(SetNonBlocking(fds[0]), StatusCode::kOk);

  int fired = 0;
  Bytes seen;
  e.transport.WatchFd(fds[0], POLLIN, [&](int fd, short revents) {
    EXPECT_EQ(fd, fds[0]);
    EXPECT_TRUE(revents & POLLIN);
    uint8_t buf[16];
    ssize_t n = ::read(fd, buf, sizeof(buf));
    ASSERT_GT(n, 0);
    seen.insert(seen.end(), buf, buf + n);
    ++fired;
  });

  ASSERT_EQ(::write(fds[1], "hi", 2), 2);
  Pump({&e.transport}, 20);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(seen, (Bytes{'h', 'i'}));

  // After UnwatchFd the loop ignores the fd.
  e.transport.UnwatchFd(fds[0]);
  ASSERT_EQ(::write(fds[1], "x", 1), 1);
  Pump({&e.transport}, 20);
  EXPECT_EQ(fired, 1);

  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(SocketTransport, ProximityComesFromMeasuredConnectRtt) {
  Endpoint a;
  Endpoint b;

  // No measurement yet — and a real endpoint cannot rank third parties.
  EXPECT_EQ(a.transport.Proximity(a.addr, b.addr), 0.0);
  EXPECT_EQ(a.transport.Proximity(a.addr, a.addr), 0.0);
  EXPECT_EQ(a.transport.Proximity(b.addr, b.addr + 1), 0.0);

  // A bulk send dials TCP; the connect handshake yields an RTT sample.
  a.transport.Send(a.addr, b.addr, Bytes(2000, 0x01));
  Pump({&a.transport, &b.transport});
  ASSERT_EQ(b.sink.got.size(), 1u);
  EXPECT_GT(a.transport.Proximity(a.addr, b.addr), 0.0);
  // Symmetric lookup order, same answer.
  EXPECT_EQ(a.transport.Proximity(b.addr, a.addr),
            a.transport.Proximity(a.addr, b.addr));
}

TEST(SocketTransport, LocalDownDropsSendsAndDeliveries) {
  Endpoint a;
  Endpoint b;

  a.transport.SetUp(a.addr, false);
  EXPECT_FALSE(a.transport.IsUp(a.addr));
  a.transport.Send(a.addr, b.addr, Bytes{0x01});
  EXPECT_EQ(CounterValue(a.transport, "net.sock.dropped_down"), 1u);
  // Only the local endpoint can be switched.
  a.transport.SetUp(b.addr, false);
  EXPECT_TRUE(a.transport.IsUp(b.addr));

  a.transport.SetUp(a.addr, true);
  a.transport.Send(a.addr, b.addr, Bytes{0x02});
  Pump({&a.transport, &b.transport}, 50);
  ASSERT_EQ(b.sink.got.size(), 1u);
  EXPECT_EQ(b.sink.got[0].wire, (Bytes{0x02}));
}

}  // namespace
}  // namespace past
