// Unit tests for the socket-transport frame codec (src/net/frame.h):
// header layout, every decode error path, and FrameReader's incremental
// stream extraction with sticky errors.
#include "src/net/frame.h"

#include <gtest/gtest.h>

#include "src/common/crc32c.h"

namespace past {
namespace {

Bytes Payload(size_t n, uint8_t fill = 0x42) { return Bytes(n, fill); }

ByteSpan Span(const Bytes& b) { return ByteSpan(b.data(), b.size()); }

TEST(FrameCodec, HeaderLayout) {
  Bytes payload = {0x01, 0x02, 0x03};
  Bytes frame = EncodeFrame(0x11223344, 0x55667788, Span(payload));
  ASSERT_EQ(frame.size(), kFrameHeaderSize + payload.size());
  // Magic spells "PSTF" on the wire.
  EXPECT_EQ(frame[0], 'P');
  EXPECT_EQ(frame[1], 'S');
  EXPECT_EQ(frame[2], 'T');
  EXPECT_EQ(frame[3], 'F');
  EXPECT_EQ(frame[4], kFrameVersion);
  EXPECT_EQ(frame[5], kFrameKindMessage);
  // from, little-endian.
  EXPECT_EQ(frame[8], 0x44);
  EXPECT_EQ(frame[11], 0x11);
  // payload_len.
  EXPECT_EQ(frame[16], 3);
  EXPECT_EQ(frame[17], 0);
}

TEST(FrameCodec, RoundTrip) {
  for (size_t n : {size_t{0}, size_t{1}, size_t{1200}, size_t{100000}}) {
    Bytes payload = Payload(n);
    Bytes frame = EncodeFrame(7, 9, Span(payload));
    FrameHeader header;
    ByteSpan body;
    ASSERT_EQ(DecodeFrame(Span(frame), 1u << 20, &header, &body), FrameError::kNone)
        << "payload size " << n;
    EXPECT_EQ(header.from, 7u);
    EXPECT_EQ(header.to, 9u);
    EXPECT_EQ(header.payload_len, n);
    EXPECT_EQ(header.payload_crc, Crc32c(Span(payload)));
    EXPECT_TRUE(std::equal(body.begin(), body.end(), payload.begin()));
  }
}

TEST(FrameCodec, ErrorPaths) {
  Bytes payload = Payload(8);
  Bytes frame = EncodeFrame(1, 2, Span(payload));
  FrameHeader header;
  ByteSpan body;

  // Truncated header.
  EXPECT_EQ(DecodeFrame(ByteSpan(frame.data(), 10), 1u << 20, &header, &body),
            FrameError::kNeedMore);

  // Truncated payload.
  EXPECT_EQ(DecodeFrame(ByteSpan(frame.data(), frame.size() - 1), 1u << 20,
                        &header, &body),
            FrameError::kNeedMore);

  // Trailing bytes (datagram must be exactly one frame).
  Bytes extra = frame;
  extra.push_back(0x00);
  EXPECT_EQ(DecodeFrame(Span(extra), 1u << 20, &header, &body),
            FrameError::kTrailingBytes);

  // Bad magic.
  Bytes bad = frame;
  bad[0] ^= 0xff;
  EXPECT_EQ(DecodeFrame(Span(bad), 1u << 20, &header, &body),
            FrameError::kBadMagic);

  // Bad version.
  bad = frame;
  bad[4] = kFrameVersion + 1;
  EXPECT_EQ(DecodeFrame(Span(bad), 1u << 20, &header, &body),
            FrameError::kBadVersion);

  // Bad kind.
  bad = frame;
  bad[5] = 0x7f;
  EXPECT_EQ(DecodeFrame(Span(bad), 1u << 20, &header, &body), FrameError::kBadKind);

  // Reserved bytes must be zero.
  bad = frame;
  bad[6] = 1;
  EXPECT_EQ(DecodeFrame(Span(bad), 1u << 20, &header, &body),
            FrameError::kBadReserved);

  // Length above the cap — rejected from the header alone.
  EXPECT_EQ(DecodeFrame(Span(frame), 4, &header, &body), FrameError::kTooLarge);

  // Corrupted payload fails the CRC.
  bad = frame;
  bad[kFrameHeaderSize] ^= 0x01;
  EXPECT_EQ(DecodeFrame(Span(bad), 1u << 20, &header, &body), FrameError::kBadCrc);
}

TEST(FrameReader, ExtractsFramesAcrossChunkBoundaries) {
  Bytes stream;
  for (int i = 0; i < 5; ++i) {
    Bytes payload = Payload(100 + static_cast<size_t>(i), static_cast<uint8_t>(i));
    Bytes frame = EncodeFrame(static_cast<NodeAddr>(i), 9, Span(payload));
    stream.insert(stream.end(), frame.begin(), frame.end());
  }
  // Feed one byte at a time — the worst case for reassembly.
  FrameReader reader(1u << 20);
  int frames = 0;
  for (size_t i = 0; i < stream.size(); ++i) {
    reader.Append(ByteSpan(&stream[i], 1));
    FrameHeader header;
    Bytes body;
    while (reader.Next(&header, &body) == FrameError::kNone) {
      EXPECT_EQ(header.from, static_cast<NodeAddr>(frames));
      EXPECT_EQ(body.size(), 100u + static_cast<size_t>(frames));
      EXPECT_EQ(body[0], static_cast<uint8_t>(frames));
      ++frames;
    }
  }
  EXPECT_EQ(frames, 5);
  EXPECT_EQ(reader.buffered(), 0u);
  EXPECT_FALSE(reader.failed());
}

TEST(FrameReader, MidFrameIsNeedMore) {
  Bytes frame = EncodeFrame(1, 2, Span(Payload(50)));
  FrameReader reader(1u << 20);
  reader.Append(ByteSpan(frame.data(), frame.size() - 10));
  FrameHeader header;
  Bytes body;
  EXPECT_EQ(reader.Next(&header, &body), FrameError::kNeedMore);
  EXPECT_FALSE(reader.failed());
  reader.Append(ByteSpan(frame.data() + frame.size() - 10, 10));
  EXPECT_EQ(reader.Next(&header, &body), FrameError::kNone);
  EXPECT_EQ(body.size(), 50u);
}

TEST(FrameReader, ErrorsAreSticky) {
  Bytes good = EncodeFrame(1, 2, Span(Payload(10)));
  Bytes garbage(64, 0xcd);
  FrameReader reader(1u << 20);
  reader.Append(Span(good));
  reader.Append(Span(garbage));
  FrameHeader header;
  Bytes body;
  // The valid frame comes out first...
  EXPECT_EQ(reader.Next(&header, &body), FrameError::kNone);
  // ...then the stream poisons and stays poisoned, even after more valid
  // bytes arrive (a length-prefixed stream cannot resync).
  EXPECT_EQ(reader.Next(&header, &body), FrameError::kBadMagic);
  EXPECT_TRUE(reader.failed());
  reader.Append(Span(good));
  EXPECT_EQ(reader.Next(&header, &body), FrameError::kBadMagic);
}

TEST(FrameReader, OversizeHeaderPoisons) {
  uint8_t header_bytes[kFrameHeaderSize];
  Bytes big = Payload(2048);
  EncodeFrameHeader(1, 2, Span(big), header_bytes);
  FrameReader reader(/*max_payload=*/1024);
  reader.Append(ByteSpan(header_bytes, kFrameHeaderSize));
  FrameHeader header;
  Bytes body;
  EXPECT_EQ(reader.Next(&header, &body), FrameError::kTooLarge);
  EXPECT_TRUE(reader.failed());
}

TEST(FrameReader, CompactsConsumedPrefix) {
  // Stream enough frames through a reader to force compaction; buffered()
  // must track only the unconsumed tail.
  Bytes frame = EncodeFrame(3, 4, Span(Payload(1000)));
  FrameReader reader(1u << 20);
  for (int i = 0; i < 50; ++i) {
    reader.Append(Span(frame));
    FrameHeader header;
    Bytes body;
    ASSERT_EQ(reader.Next(&header, &body), FrameError::kNone);
    EXPECT_EQ(reader.buffered(), 0u);
  }
}

}  // namespace
}  // namespace past
