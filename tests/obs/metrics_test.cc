// Unit tests for the observability subsystem: instrument semantics, registry
// idempotence, the JSON dump/parse round trip, and route-trace export.
#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "src/common/rng.h"
#include "src/obs/json.h"
#include "src/obs/metrics.h"
#include "src/obs/route_trace.h"

namespace past {
namespace {

TEST(CounterTest, IncrementAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Inc();
  c.Inc(4);
  EXPECT_EQ(c.value(), 5u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(GaugeTest, SetAddSub) {
  Gauge g;
  g.Set(10.0);
  g.Add(5.0);
  g.Sub(3.0);
  EXPECT_DOUBLE_EQ(g.value(), 12.0);
  g.Reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(HistogramTest, BucketBoundariesAreInclusiveUpperBounds) {
  Histogram h({1.0, 2.0, 4.0});
  h.Observe(0.5);  // <= 1
  h.Observe(1.0);  // <= 1 (inclusive)
  h.Observe(1.5);  // <= 2
  h.Observe(4.0);  // <= 4 (inclusive)
  h.Observe(9.0);  // overflow
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 16.0);
  ASSERT_EQ(h.buckets().size(), 4u);
  EXPECT_EQ(h.buckets()[0], 2u);
  EXPECT_EQ(h.buckets()[1], 1u);
  EXPECT_EQ(h.buckets()[2], 1u);
  EXPECT_EQ(h.buckets()[3], 1u);  // overflow bucket
}

TEST(HistogramTest, MeanOfObservations) {
  Histogram h({10.0});
  h.Observe(2.0);
  h.Observe(4.0);
  EXPECT_DOUBLE_EQ(h.mean(), 3.0);
}

// Regression: a single NaN (or infinite) sample must not poison `sum` — and
// through it the mean of the whole run. Non-finite samples are rejected into
// the `invalid` counter and leave every bucket untouched.
TEST(HistogramTest, NonFiniteSamplesAreRejectedNotFolded) {
  Histogram h({1.0, 2.0});
  h.Observe(1.5);
  h.Observe(std::numeric_limits<double>::quiet_NaN());
  h.Observe(std::numeric_limits<double>::infinity());
  h.Observe(-std::numeric_limits<double>::infinity());
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.invalid(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 1.5);
  EXPECT_DOUBLE_EQ(h.mean(), 1.5);
  ASSERT_EQ(h.buckets().size(), 3u);
  EXPECT_EQ(h.buckets()[0], 0u);
  EXPECT_EQ(h.buckets()[1], 1u);
  EXPECT_EQ(h.buckets()[2], 0u);  // overflow bucket untouched by +inf
}

TEST(MetricsRegistryTest, GetIsIdempotent) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("x.count");
  Counter* b = registry.GetCounter("x.count");
  EXPECT_EQ(a, b);
  a->Inc();
  EXPECT_EQ(b->value(), 1u);

  Histogram* h1 = registry.GetHistogram("x.hist", {1.0, 2.0});
  Histogram* h2 = registry.GetHistogram("x.hist", {5.0, 6.0});  // bounds ignored
  EXPECT_EQ(h1, h2);
}

TEST(MetricsRegistryTest, ResetAllClearsEveryInstrument) {
  MetricsRegistry registry;
  registry.GetCounter("t.count")->Inc(7);
  registry.GetGauge("t.gauge")->Set(3.0);
  registry.GetHistogram("t.hist", {1.0})->Observe(0.5);
  registry.GetLogHistogram("t.log_hist")->Observe(42.0);
  registry.ResetAll();
  EXPECT_EQ(registry.GetCounter("t.count")->value(), 0u);
  EXPECT_DOUBLE_EQ(registry.GetGauge("t.gauge")->value(), 0.0);
  EXPECT_EQ(registry.GetHistogram("t.hist", {1.0})->count(), 0u);
  EXPECT_EQ(registry.GetLogHistogram("t.log_hist")->count(), 0u);
}

TEST(MetricsRegistryTest, DumpJsonRoundTripsThroughParser) {
  MetricsRegistry registry;
  registry.GetCounter("net.sent")->Inc(42);
  registry.GetGauge("store.used_bytes")->Set(1024.0);
  Histogram* h = registry.GetHistogram("pastry.route.hops", {1.0, 2.0, 4.0});
  h->Observe(1.0);
  h->Observe(3.0);

  const std::string dumped = registry.DumpJson();
  JsonValue parsed;
  ASSERT_TRUE(JsonValue::Parse(dumped, &parsed));

  const JsonValue* sent = parsed.FindPath("counters/net.sent");
  ASSERT_NE(sent, nullptr);
  EXPECT_DOUBLE_EQ(sent->AsDouble(), 42.0);

  const JsonValue* used = parsed.FindPath("gauges/store.used_bytes");
  ASSERT_NE(used, nullptr);
  EXPECT_DOUBLE_EQ(used->AsDouble(), 1024.0);

  const JsonValue* hops = parsed.FindPath("histograms/pastry.route.hops");
  ASSERT_NE(hops, nullptr);
  EXPECT_DOUBLE_EQ(hops->FindPath("count")->AsDouble(), 2.0);
  EXPECT_DOUBLE_EQ(hops->FindPath("sum")->AsDouble(), 4.0);
  // 3 finite buckets + 1 overflow.
  EXPECT_EQ(hops->FindPath("buckets")->size(), 4u);
}

TEST(JsonTest, ParserRejectsMalformedInput) {
  JsonValue out;
  EXPECT_FALSE(JsonValue::Parse("{", &out));
  EXPECT_FALSE(JsonValue::Parse("{\"a\": }", &out));
  EXPECT_FALSE(JsonValue::Parse("[1, 2,]", &out));
  EXPECT_FALSE(JsonValue::Parse("{} trailing", &out));
  EXPECT_TRUE(JsonValue::Parse("{\"a\": [1, 2.5, \"s\", null, true]}", &out));
}

TEST(JsonTest, EscapesAndUnicodeRoundTrip) {
  JsonValue obj = JsonValue::Object();
  obj.Set("key \"quoted\"\n", "tab\there");
  JsonValue parsed;
  ASSERT_TRUE(JsonValue::Parse(obj.Dump(), &parsed));
  const JsonValue* v = parsed.Find("key \"quoted\"\n");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->AsString(), "tab\there");
}

TEST(RouteTraceTest, ToJsonEmitsEveryHop) {
  RouteTrace trace;
  trace.trace_id = 99;
  trace.hops.push_back({7, RouteRule::kRoutingTable, 120.5});
  trace.hops.push_back({12, RouteRule::kLeafSet, 30.0});

  JsonValue j = trace.ToJson();
  EXPECT_DOUBLE_EQ(j.FindPath("trace_id")->AsDouble(), 99.0);
  const JsonValue* hops = j.FindPath("hops");
  ASSERT_NE(hops, nullptr);
  ASSERT_EQ(hops->size(), 2u);
  EXPECT_DOUBLE_EQ(hops->at(0).Find("node")->AsDouble(), 7.0);
  EXPECT_EQ(hops->at(0).Find("rule")->AsString(), "routing_table");
  EXPECT_DOUBLE_EQ(hops->at(0).Find("distance")->AsDouble(), 120.5);
  EXPECT_EQ(hops->at(1).Find("rule")->AsString(), "leaf_set");
}

TEST(MergeTest, CounterAndGaugeMergeBySum) {
  Counter a, b;
  a.Inc(3);
  b.Inc(4);
  a.MergeFrom(b);
  EXPECT_EQ(a.value(), 7u);
  Gauge g, h;
  g.Add(1.5);
  h.Add(2.5);
  g.MergeFrom(h);
  EXPECT_DOUBLE_EQ(g.value(), 4.0);
}

TEST(MergeTest, HistogramMergeMatchesSequentialObservation) {
  const std::vector<double> bounds{1.0, 10.0, 100.0};
  Histogram merged(bounds);
  Histogram shard_a(bounds), shard_b(bounds);
  Histogram oracle(bounds);
  for (double v : {0.5, 5.0, 50.0, 500.0}) {
    shard_a.Observe(v);
    oracle.Observe(v);
  }
  for (double v : {2.0, 20.0, 200.0}) {
    shard_b.Observe(v);
    oracle.Observe(v);
  }
  merged.MergeFrom(shard_a);
  merged.MergeFrom(shard_b);
  EXPECT_EQ(merged.buckets(), oracle.buckets());
  EXPECT_EQ(merged.count(), oracle.count());
  EXPECT_DOUBLE_EQ(merged.sum(), oracle.sum());
}

TEST(MergeTest, LogHistogramMergeMatchesSequentialObservation) {
  LogHistogram merged, shard_a, shard_b, oracle;
  Rng rng(55);
  for (int i = 0; i < 500; ++i) {
    double v = 0.001 + rng.UniformDouble() * 1e6;
    (i % 2 == 0 ? shard_a : shard_b).Observe(v);
    oracle.Observe(v);
  }
  shard_a.Observe(0.0);
  oracle.Observe(0.0);
  merged.MergeFrom(shard_a);
  merged.MergeFrom(shard_b);
  EXPECT_EQ(merged.count(), oracle.count());
  EXPECT_EQ(merged.zero_count(), oracle.zero_count());
  EXPECT_DOUBLE_EQ(merged.min(), oracle.min());
  EXPECT_DOUBLE_EQ(merged.max(), oracle.max());
  for (double q : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(merged.Quantile(q), oracle.Quantile(q)) << "q=" << q;
  }
}

TEST(MergeTest, RegistryMergeRegistersMissingAndSumsExisting) {
  MetricsRegistry into, shard;
  into.GetCounter("net.sent")->Inc(10);
  shard.GetCounter("net.sent")->Inc(5);
  shard.GetCounter("net.delivered")->Inc(2);
  shard.GetGauge("sim.queue_depth")->Set(3.0);
  shard.GetHistogram("pastry.route.hops", {1.0, 2.0, 4.0})->Observe(3.0);
  shard.GetLogHistogram("past.lookup.latency_us")->Observe(123.0);
  into.MergeFrom(shard);
  EXPECT_EQ(into.FindCounter("net.sent")->value(), 15u);
  EXPECT_EQ(into.FindCounter("net.delivered")->value(), 2u);
  EXPECT_DOUBLE_EQ(into.FindGauge("sim.queue_depth")->value(), 3.0);
  ASSERT_NE(into.FindHistogram("pastry.route.hops"), nullptr);
  EXPECT_EQ(into.FindHistogram("pastry.route.hops")->count(), 1u);
  ASSERT_NE(into.FindLogHistogram("past.lookup.latency_us"), nullptr);
  EXPECT_EQ(into.FindLogHistogram("past.lookup.latency_us")->count(), 1u);
}

TEST(RunningStatTest, MatchesDirectComputation) {
  RunningStat s;
  const std::vector<double> values{4.0, 7.0, 13.0, 16.0};
  for (double v : values) {
    s.Observe(v);
  }
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 10.0);
  EXPECT_DOUBLE_EQ(s.min(), 4.0);
  EXPECT_DOUBLE_EQ(s.max(), 16.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
  EXPECT_DOUBLE_EQ(s.variance(), 22.5);  // population: ((36+9+9+36)/4)
}

TEST(RunningStatTest, EmptyAndSingleSampleEdgeCases) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  s.Observe(5.0);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStatTest, MergeMatchesSequentialObservation) {
  RunningStat merged, shard_a, shard_b, oracle;
  Rng rng(77);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.UniformDouble() * 100.0 - 50.0;
    (i < 300 ? shard_a : shard_b).Observe(v);
    oracle.Observe(v);
  }
  merged.MergeFrom(shard_a);
  merged.MergeFrom(shard_b);
  EXPECT_EQ(merged.count(), oracle.count());
  EXPECT_NEAR(merged.mean(), oracle.mean(), 1e-9);
  EXPECT_NEAR(merged.variance(), oracle.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(merged.min(), oracle.min());
  EXPECT_DOUBLE_EQ(merged.max(), oracle.max());
  // Merging into an empty stat adopts the other side wholesale.
  RunningStat empty;
  empty.MergeFrom(oracle);
  EXPECT_DOUBLE_EQ(empty.mean(), oracle.mean());
}

TEST(RouteTraceTest, RuleNamesCoverEveryEnumerator) {
  EXPECT_STREQ(RouteRuleName(RouteRule::kLeafSet), "leaf_set");
  EXPECT_STREQ(RouteRuleName(RouteRule::kRoutingTable), "routing_table");
  EXPECT_STREQ(RouteRuleName(RouteRule::kRareCase), "rare_case");
  EXPECT_STREQ(RouteRuleName(RouteRule::kReplicaShortcut), "replica_shortcut");
}

}  // namespace
}  // namespace past
