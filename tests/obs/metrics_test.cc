// Unit tests for the observability subsystem: instrument semantics, registry
// idempotence, the JSON dump/parse round trip, and route-trace export.
#include <gtest/gtest.h>

#include <limits>

#include "src/obs/json.h"
#include "src/obs/metrics.h"
#include "src/obs/route_trace.h"

namespace past {
namespace {

TEST(CounterTest, IncrementAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Inc();
  c.Inc(4);
  EXPECT_EQ(c.value(), 5u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(GaugeTest, SetAddSub) {
  Gauge g;
  g.Set(10.0);
  g.Add(5.0);
  g.Sub(3.0);
  EXPECT_DOUBLE_EQ(g.value(), 12.0);
  g.Reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(HistogramTest, BucketBoundariesAreInclusiveUpperBounds) {
  Histogram h({1.0, 2.0, 4.0});
  h.Observe(0.5);  // <= 1
  h.Observe(1.0);  // <= 1 (inclusive)
  h.Observe(1.5);  // <= 2
  h.Observe(4.0);  // <= 4 (inclusive)
  h.Observe(9.0);  // overflow
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 16.0);
  ASSERT_EQ(h.buckets().size(), 4u);
  EXPECT_EQ(h.buckets()[0], 2u);
  EXPECT_EQ(h.buckets()[1], 1u);
  EXPECT_EQ(h.buckets()[2], 1u);
  EXPECT_EQ(h.buckets()[3], 1u);  // overflow bucket
}

TEST(HistogramTest, MeanOfObservations) {
  Histogram h({10.0});
  h.Observe(2.0);
  h.Observe(4.0);
  EXPECT_DOUBLE_EQ(h.mean(), 3.0);
}

// Regression: a single NaN (or infinite) sample must not poison `sum` — and
// through it the mean of the whole run. Non-finite samples are rejected into
// the `invalid` counter and leave every bucket untouched.
TEST(HistogramTest, NonFiniteSamplesAreRejectedNotFolded) {
  Histogram h({1.0, 2.0});
  h.Observe(1.5);
  h.Observe(std::numeric_limits<double>::quiet_NaN());
  h.Observe(std::numeric_limits<double>::infinity());
  h.Observe(-std::numeric_limits<double>::infinity());
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.invalid(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 1.5);
  EXPECT_DOUBLE_EQ(h.mean(), 1.5);
  ASSERT_EQ(h.buckets().size(), 3u);
  EXPECT_EQ(h.buckets()[0], 0u);
  EXPECT_EQ(h.buckets()[1], 1u);
  EXPECT_EQ(h.buckets()[2], 0u);  // overflow bucket untouched by +inf
}

TEST(MetricsRegistryTest, GetIsIdempotent) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("x.count");
  Counter* b = registry.GetCounter("x.count");
  EXPECT_EQ(a, b);
  a->Inc();
  EXPECT_EQ(b->value(), 1u);

  Histogram* h1 = registry.GetHistogram("x.hist", {1.0, 2.0});
  Histogram* h2 = registry.GetHistogram("x.hist", {5.0, 6.0});  // bounds ignored
  EXPECT_EQ(h1, h2);
}

TEST(MetricsRegistryTest, ResetAllClearsEveryInstrument) {
  MetricsRegistry registry;
  registry.GetCounter("t.count")->Inc(7);
  registry.GetGauge("t.gauge")->Set(3.0);
  registry.GetHistogram("t.hist", {1.0})->Observe(0.5);
  registry.GetLogHistogram("t.log_hist")->Observe(42.0);
  registry.ResetAll();
  EXPECT_EQ(registry.GetCounter("t.count")->value(), 0u);
  EXPECT_DOUBLE_EQ(registry.GetGauge("t.gauge")->value(), 0.0);
  EXPECT_EQ(registry.GetHistogram("t.hist", {1.0})->count(), 0u);
  EXPECT_EQ(registry.GetLogHistogram("t.log_hist")->count(), 0u);
}

TEST(MetricsRegistryTest, DumpJsonRoundTripsThroughParser) {
  MetricsRegistry registry;
  registry.GetCounter("net.sent")->Inc(42);
  registry.GetGauge("store.used_bytes")->Set(1024.0);
  Histogram* h = registry.GetHistogram("pastry.route.hops", {1.0, 2.0, 4.0});
  h->Observe(1.0);
  h->Observe(3.0);

  const std::string dumped = registry.DumpJson();
  JsonValue parsed;
  ASSERT_TRUE(JsonValue::Parse(dumped, &parsed));

  const JsonValue* sent = parsed.FindPath("counters/net.sent");
  ASSERT_NE(sent, nullptr);
  EXPECT_DOUBLE_EQ(sent->AsDouble(), 42.0);

  const JsonValue* used = parsed.FindPath("gauges/store.used_bytes");
  ASSERT_NE(used, nullptr);
  EXPECT_DOUBLE_EQ(used->AsDouble(), 1024.0);

  const JsonValue* hops = parsed.FindPath("histograms/pastry.route.hops");
  ASSERT_NE(hops, nullptr);
  EXPECT_DOUBLE_EQ(hops->FindPath("count")->AsDouble(), 2.0);
  EXPECT_DOUBLE_EQ(hops->FindPath("sum")->AsDouble(), 4.0);
  // 3 finite buckets + 1 overflow.
  EXPECT_EQ(hops->FindPath("buckets")->size(), 4u);
}

TEST(JsonTest, ParserRejectsMalformedInput) {
  JsonValue out;
  EXPECT_FALSE(JsonValue::Parse("{", &out));
  EXPECT_FALSE(JsonValue::Parse("{\"a\": }", &out));
  EXPECT_FALSE(JsonValue::Parse("[1, 2,]", &out));
  EXPECT_FALSE(JsonValue::Parse("{} trailing", &out));
  EXPECT_TRUE(JsonValue::Parse("{\"a\": [1, 2.5, \"s\", null, true]}", &out));
}

TEST(JsonTest, EscapesAndUnicodeRoundTrip) {
  JsonValue obj = JsonValue::Object();
  obj.Set("key \"quoted\"\n", "tab\there");
  JsonValue parsed;
  ASSERT_TRUE(JsonValue::Parse(obj.Dump(), &parsed));
  const JsonValue* v = parsed.Find("key \"quoted\"\n");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->AsString(), "tab\there");
}

TEST(RouteTraceTest, ToJsonEmitsEveryHop) {
  RouteTrace trace;
  trace.trace_id = 99;
  trace.hops.push_back({7, RouteRule::kRoutingTable, 120.5});
  trace.hops.push_back({12, RouteRule::kLeafSet, 30.0});

  JsonValue j = trace.ToJson();
  EXPECT_DOUBLE_EQ(j.FindPath("trace_id")->AsDouble(), 99.0);
  const JsonValue* hops = j.FindPath("hops");
  ASSERT_NE(hops, nullptr);
  ASSERT_EQ(hops->size(), 2u);
  EXPECT_DOUBLE_EQ(hops->at(0).Find("node")->AsDouble(), 7.0);
  EXPECT_EQ(hops->at(0).Find("rule")->AsString(), "routing_table");
  EXPECT_DOUBLE_EQ(hops->at(0).Find("distance")->AsDouble(), 120.5);
  EXPECT_EQ(hops->at(1).Find("rule")->AsString(), "leaf_set");
}

TEST(RouteTraceTest, RuleNamesCoverEveryEnumerator) {
  EXPECT_STREQ(RouteRuleName(RouteRule::kLeafSet), "leaf_set");
  EXPECT_STREQ(RouteRuleName(RouteRule::kRoutingTable), "routing_table");
  EXPECT_STREQ(RouteRuleName(RouteRule::kRareCase), "rare_case");
  EXPECT_STREQ(RouteRuleName(RouteRule::kReplicaShortcut), "replica_shortcut");
}

}  // namespace
}  // namespace past
