// TimeSeriesSampler tests: row schema per instrument kind, late-registered
// instrument resolution, and the self-rescheduling timer on a real EventQueue.
#include <gtest/gtest.h>

#include "src/obs/json.h"
#include "src/obs/metrics.h"
#include "src/obs/timeseries.h"
#include "src/sim/event_queue.h"

namespace past {
namespace {

TEST(TimeSeriesSamplerTest, RowSchemaPerInstrumentKind) {
  MetricsRegistry m;
  m.GetCounter("net.sent")->Inc(5);
  m.GetGauge("sim.queue_depth")->Set(3.0);
  LogHistogram* h = m.GetLogHistogram("past.lookup.latency_us");
  h->Observe(100.0);
  h->Observe(300.0);

  TimeSeriesSampler s(&m, 1000);
  s.Track("net.sent");
  s.Track("sim.queue_depth");
  s.Track("past.lookup.latency_us");
  s.Track("no.such.metric");
  s.Sample(1000);

  JsonValue rows = s.ToJson();
  ASSERT_EQ(rows.size(), 1u);
  const JsonValue& row = rows.at(0);
  EXPECT_DOUBLE_EQ(row.Find("t_us")->AsDouble(), 1000.0);
  EXPECT_DOUBLE_EQ(row.Find("net.sent")->AsDouble(), 5.0);
  EXPECT_DOUBLE_EQ(row.Find("sim.queue_depth")->AsDouble(), 3.0);
  const JsonValue* quantiles = row.Find("past.lookup.latency_us");
  ASSERT_NE(quantiles, nullptr);
  EXPECT_DOUBLE_EQ(quantiles->Find("count")->AsDouble(), 2.0);
  EXPECT_NE(quantiles->Find("p50"), nullptr);
  EXPECT_NE(quantiles->Find("p99"), nullptr);
  // Unresolved names stay as a null column so rows are structurally uniform.
  const JsonValue* missing = row.Find("no.such.metric");
  ASSERT_NE(missing, nullptr);
  EXPECT_TRUE(missing->is_null());
}

TEST(TimeSeriesSamplerTest, InstrumentRegisteredAfterTrackingResolves) {
  MetricsRegistry m;
  TimeSeriesSampler s(&m, 1000);
  s.Track("past.demotions");
  s.Sample(1000);  // not registered yet -> null
  m.GetCounter("past.demotions")->Inc(4);
  s.Sample(2000);  // now resolves

  JsonValue rows = s.ToJson();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_TRUE(rows.at(0).Find("past.demotions")->is_null());
  EXPECT_DOUBLE_EQ(rows.at(1).Find("past.demotions")->AsDouble(), 4.0);
}

TEST(TimeSeriesSamplerTest, TimerSamplesAtFixedIntervalOnEventQueue) {
  MetricsRegistry m;
  Counter* sent = m.GetCounter("net.sent");
  EventQueue q;
  TimeSeriesSampler s(&m, /*interval_us=*/1000);
  s.Track("net.sent");
  s.Start(&q);

  // Workload: bump the counter at t=1500 and t=3500.
  q.After(1500, [&] { sent->Inc(); });
  q.After(3500, [&] { sent->Inc(2); });
  q.RunUntil(4500);
  s.Stop(&q);
  EXPECT_EQ(q.RunAll(), 0u);  // Stop cancelled the pending timer

  // Rows at t = 1000, 2000, 3000, 4000 with the counter values visible at
  // each sample instant.
  JsonValue rows = s.ToJson();
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_DOUBLE_EQ(rows.at(0).Find("t_us")->AsDouble(), 1000.0);
  EXPECT_DOUBLE_EQ(rows.at(0).Find("net.sent")->AsDouble(), 0.0);
  EXPECT_DOUBLE_EQ(rows.at(1).Find("net.sent")->AsDouble(), 1.0);
  EXPECT_DOUBLE_EQ(rows.at(2).Find("net.sent")->AsDouble(), 1.0);
  EXPECT_DOUBLE_EQ(rows.at(3).Find("t_us")->AsDouble(), 4000.0);
  EXPECT_DOUBLE_EQ(rows.at(3).Find("net.sent")->AsDouble(), 3.0);
}

TEST(TimeSeriesSamplerTest, StopBeforeFirstSampleLeavesNoRows) {
  MetricsRegistry m;
  EventQueue q;
  TimeSeriesSampler s(&m, 1000);
  s.Start(&q);
  s.Stop(&q);
  EXPECT_EQ(q.RunAll(), 0u);
  EXPECT_EQ(s.rows(), 0u);
}

}  // namespace
}  // namespace past
