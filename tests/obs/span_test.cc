// Tracer tests: span lifecycle, the disabled-by-default fast path, annotation
// on open and closed spans, parent/trace propagation, the capacity cap, and
// the JSON schema past_stats converts to Chrome trace events.
#include <gtest/gtest.h>

#include "src/obs/json.h"
#include "src/obs/span.h"

namespace past {
namespace {

TEST(TracerTest, DisabledTracerRecordsNothing) {
  Tracer t;
  EXPECT_FALSE(t.enabled());
  EXPECT_EQ(t.StartSpan("past.insert", 100, 7), 0u);
  EXPECT_EQ(t.RecordSpan("pastry.hop", 100, 200, 7), 0u);
  // All id-0 follow-ups are no-ops, so call sites need no branches.
  t.EndSpan(0, 300);
  t.Annotate(0, "k", "v");
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.dropped(), 0u);
}

TEST(TracerTest, StartEndAnnotateLifecycle) {
  Tracer t;
  t.Enable();
  uint64_t id = t.StartSpan("past.insert", 1000, 42);
  EXPECT_EQ(id, 1u);
  t.Annotate(id, "file", "f_001");
  t.EndSpan(id, 5000);
  ASSERT_EQ(t.size(), 1u);
  const Span& s = t.spans()[0];
  EXPECT_EQ(s.name, "past.insert");
  EXPECT_EQ(s.node, 42u);
  EXPECT_EQ(s.start, 1000);
  EXPECT_EQ(s.end, 5000);
  ASSERT_EQ(s.annotations.size(), 1u);
  EXPECT_EQ(s.annotations[0].first, "file");
  EXPECT_EQ(s.annotations[0].second, "f_001");
}

TEST(TracerTest, IdsAreSequentialInRecordOrder) {
  Tracer t;
  t.Enable();
  EXPECT_EQ(t.StartSpan("a.one", 0, 1), 1u);
  EXPECT_EQ(t.RecordSpan("a.two", 0, 1, 1), 2u);
  EXPECT_EQ(t.StartSpan("a.three", 0, 1), 3u);
  EXPECT_EQ(t.spans()[1].id, 2u);
}

TEST(TracerTest, AnnotateWorksOnClosedSpans) {
  // RecordSpan + Annotate is the receiver-side hop pattern: the span is
  // finished when recorded, and the routing-rule annotation lands after.
  Tracer t;
  t.Enable();
  uint64_t id = t.RecordSpan("pastry.hop", 10, 25, 3);
  t.Annotate(id, "rule", "leaf_set");
  ASSERT_EQ(t.spans()[0].annotations.size(), 1u);
  EXPECT_EQ(t.spans()[0].annotations[0].second, "leaf_set");
  // Out-of-range ids are ignored, never UB.
  t.Annotate(999, "k", "v");
  t.Annotate(0, "k", "v");
  EXPECT_EQ(t.spans()[0].annotations.size(), 1u);
}

TEST(TracerTest, ParentAndTraceIdPropagate) {
  Tracer t;
  t.Enable();
  uint64_t root = t.StartSpan("past.lookup", 0, 1, /*parent=*/0,
                              /*trace_id=*/77);
  uint64_t hop = t.RecordSpan("pastry.hop", 5, 9, 2, /*parent=*/root,
                              /*trace_id=*/77);
  t.EndSpan(root, 20);
  const Span& h = t.spans()[hop - 1];
  EXPECT_EQ(h.parent, root);
  EXPECT_EQ(h.trace_id, 77u);
  EXPECT_EQ(t.spans()[root - 1].parent, 0u);
}

TEST(TracerTest, CapacityCapCountsDropsInsteadOfGrowing) {
  Tracer t;
  t.Enable();
  t.SetCapacity(2);
  EXPECT_NE(t.StartSpan("a.x", 0, 1), 0u);
  EXPECT_NE(t.RecordSpan("a.y", 0, 1, 1), 0u);
  EXPECT_EQ(t.StartSpan("a.z", 0, 1), 0u);
  EXPECT_EQ(t.RecordSpan("a.w", 0, 1, 1), 0u);
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t.dropped(), 2u);
}

TEST(TracerTest, ClearResetsSpansIdsAndDropCount) {
  Tracer t;
  t.Enable();
  t.SetCapacity(1);
  (void)t.StartSpan("a.x", 0, 1);
  (void)t.StartSpan("a.y", 0, 1);  // dropped
  t.Clear();
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.dropped(), 0u);
  EXPECT_EQ(t.StartSpan("a.z", 0, 1), 1u);  // ids restart at 1
}

TEST(TracerTest, ToJsonEmitsTheTraceSchema) {
  Tracer t;
  t.Enable();
  uint64_t id = t.StartSpan("past.insert", 100, 9, 0, 55);
  t.Annotate(id, "status", "ok");
  t.EndSpan(id, 450);

  JsonValue j = t.ToJson();
  EXPECT_DOUBLE_EQ(j.Find("dropped")->AsDouble(), 0.0);
  const JsonValue* spans = j.Find("spans");
  ASSERT_NE(spans, nullptr);
  ASSERT_EQ(spans->size(), 1u);
  const JsonValue& s = spans->at(0);
  EXPECT_DOUBLE_EQ(s.Find("id")->AsDouble(), 1.0);
  EXPECT_DOUBLE_EQ(s.Find("parent")->AsDouble(), 0.0);
  EXPECT_DOUBLE_EQ(s.Find("trace_id")->AsDouble(), 55.0);
  EXPECT_EQ(s.Find("name")->AsString(), "past.insert");
  EXPECT_DOUBLE_EQ(s.Find("node")->AsDouble(), 9.0);
  EXPECT_DOUBLE_EQ(s.Find("start_us")->AsDouble(), 100.0);
  EXPECT_DOUBLE_EQ(s.Find("end_us")->AsDouble(), 450.0);
  const JsonValue* ann = s.Find("annotations");
  ASSERT_NE(ann, nullptr);
  ASSERT_NE(ann->Find("status"), nullptr);
  EXPECT_EQ(ann->Find("status")->AsString(), "ok");
}

}  // namespace
}  // namespace past
