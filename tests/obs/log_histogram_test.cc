// LogHistogram tests: the bounded-relative-error contract checked against a
// sorted-sample oracle, the value-domain rules (zero bucket, invalid
// rejection), and the registry integration the experiment dumps rely on.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "src/common/rng.h"
#include "src/obs/json.h"
#include "src/obs/log_histogram.h"
#include "src/obs/metrics.h"

namespace past {
namespace {

// Exact nearest-rank quantile of a sorted sample vector — the oracle the
// histogram's estimate is measured against.
double OracleQuantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) {
    return 0.0;
  }
  size_t rank = static_cast<size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  if (rank == 0) {
    rank = 1;
  }
  return sorted[std::min(rank, sorted.size()) - 1];
}

// For every positive sample, the histogram's estimate at any quantile must be
// within relative_error() of the oracle. Nearest-rank answers can straddle a
// bucket edge when duplicates are involved, so compare against the bucket the
// oracle value itself would land in: |est - oracle| / oracle <= 2 * rel_err
// is the loosest bound the midpoint scheme admits; the per-sample guarantee
// is rel_err, which is what we assert.
void ExpectQuantilesWithinBound(const LogHistogram& h,
                                std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  const double rel = h.relative_error();
  for (double q : {0.5, 0.9, 0.99, 0.999}) {
    const double oracle = OracleQuantile(samples, q);
    const double est = h.Quantile(q);
    if (oracle == 0.0) {
      EXPECT_EQ(est, 0.0) << "q=" << q;
      continue;
    }
    EXPECT_LE(std::abs(est - oracle) / oracle, rel)
        << "q=" << q << " oracle=" << oracle << " est=" << est;
  }
}

TEST(LogHistogramTest, EmptyHistogramReportsZeros) {
  LogHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.p50(), 0.0);
  EXPECT_DOUBLE_EQ(h.p999(), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
}

TEST(LogHistogramTest, SingleSampleIsExactAtEveryQuantile) {
  LogHistogram h;
  h.Observe(1234.5);
  // Quantile() clamps to the exact [min, max], so one sample reports itself.
  for (double q : {0.0, 0.5, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(h.Quantile(q), 1234.5) << "q=" << q;
  }
  EXPECT_DOUBLE_EQ(h.min(), 1234.5);
  EXPECT_DOUBLE_EQ(h.max(), 1234.5);
}

TEST(LogHistogramTest, ZeroIsCountedExactly) {
  LogHistogram h;
  h.Observe(0.0);
  h.Observe(0.0);
  h.Observe(8.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.zero_count(), 2u);
  // Two of three samples are zero, so p50 sits in the zero bucket.
  EXPECT_DOUBLE_EQ(h.p50(), 0.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 8.0);
}

TEST(LogHistogramTest, NegativeAndNonFiniteSamplesAreRejected) {
  LogHistogram h;
  h.Observe(-1.0);
  h.Observe(std::numeric_limits<double>::quiet_NaN());
  h.Observe(std::numeric_limits<double>::infinity());
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.invalid(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  h.Observe(2.0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.mean(), 2.0);
}

// Property: against uniform samples spanning several octaves, every reported
// quantile stays within the documented relative-error bound of the exact
// nearest-rank answer.
TEST(LogHistogramTest, QuantilesMatchSortedOracleUniform) {
  Rng rng(0x9e3779b97f4a7c15ull);
  LogHistogram h;
  std::vector<double> samples;
  samples.reserve(20000);
  for (int i = 0; i < 20000; ++i) {
    // [1, 1e6): about 20 octaves of spread, like microsecond latencies.
    double v = 1.0 + rng.UniformDouble() * (1e6 - 1.0);
    samples.push_back(v);
    h.Observe(v);
  }
  EXPECT_EQ(h.count(), 20000u);
  ExpectQuantilesWithinBound(h, samples);
}

// Property: heavy-tailed (log-normal) samples — the shape real latency
// distributions take — obey the same bound, including deep in the tail.
TEST(LogHistogramTest, QuantilesMatchSortedOracleLogNormal) {
  Rng rng(42);
  LogHistogram h;
  std::vector<double> samples;
  samples.reserve(50000);
  for (int i = 0; i < 50000; ++i) {
    double v = std::exp(6.0 + 2.0 * rng.Gaussian());
    samples.push_back(v);
    h.Observe(v);
  }
  ExpectQuantilesWithinBound(h, samples);
}

// Property: sub-microsecond values (fractions < 1) live in negative octaves;
// the dense window grows downward and the bound still holds.
TEST(LogHistogramTest, QuantilesMatchSortedOracleTinyValues) {
  Rng rng(7);
  LogHistogram h;
  std::vector<double> samples;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.UniformDouble() * 1e-3 + 1e-9;
    samples.push_back(v);
    h.Observe(v);
  }
  ExpectQuantilesWithinBound(h, samples);
}

TEST(LogHistogramTest, CoarserResolutionWidensTheBoundAccordingly) {
  // 8 sub-buckets per octave: rel error <= 1/16. Spot-check the contract is
  // parameterised, not hard-wired to the default resolution.
  Rng rng(3);
  LogHistogram h(8);
  EXPECT_DOUBLE_EQ(h.relative_error(), 1.0 / 16.0);
  std::vector<double> samples;
  for (int i = 0; i < 5000; ++i) {
    double v = 1.0 + rng.UniformDouble() * 9999.0;
    samples.push_back(v);
    h.Observe(v);
  }
  ExpectQuantilesWithinBound(h, samples);
}

TEST(LogHistogramTest, MinMaxSumAreExact) {
  LogHistogram h;
  h.Observe(3.0);
  h.Observe(100.0);
  h.Observe(7.0);
  EXPECT_DOUBLE_EQ(h.min(), 3.0);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  EXPECT_DOUBLE_EQ(h.sum(), 110.0);
  // Quantile clamping: estimates never escape the observed range.
  EXPECT_GE(h.Quantile(0.001), 3.0);
  EXPECT_LE(h.Quantile(0.999), 100.0);
}

TEST(LogHistogramTest, ResetClearsEverything) {
  LogHistogram h;
  h.Observe(5.0);
  h.Observe(-1.0);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.invalid(), 0u);
  EXPECT_DOUBLE_EQ(h.p99(), 0.0);
  h.Observe(9.0);
  EXPECT_DOUBLE_EQ(h.p50(), 9.0);
}

TEST(LogHistogramTest, ToJsonCarriesTheQuantileContract) {
  LogHistogram h;
  for (int i = 1; i <= 1000; ++i) {
    h.Observe(static_cast<double>(i));
  }
  JsonValue j = h.ToJson();
  // The keys json_check and past_stats depend on must always be present.
  for (const char* key :
       {"count", "invalid", "zero", "sum", "mean", "min", "max",
        "relative_error", "p50", "p90", "p99", "p999", "buckets"}) {
    EXPECT_NE(j.Find(key), nullptr) << key;
  }
  EXPECT_DOUBLE_EQ(j.Find("count")->AsDouble(), 1000.0);
  const double p50 = j.Find("p50")->AsDouble();
  EXPECT_NEAR(p50, 500.0, 500.0 * h.relative_error());
}

TEST(LogHistogramTest, RegistryPreRegistrationEmitsQuantileKeysAtCountZero) {
  // The Network constructor pre-registers the op-latency histograms so every
  // experiment dump carries the quantile keys even when no op ran; this is
  // the contract the bench_smoke_validate ctest checks end to end.
  MetricsRegistry registry;
  registry.GetLogHistogram("past.insert.latency_us");
  JsonValue parsed;
  ASSERT_TRUE(JsonValue::Parse(registry.DumpJson(), &parsed));
  const JsonValue* p999 =
      parsed.FindPath("log_histograms/past.insert.latency_us/p999");
  ASSERT_NE(p999, nullptr);
  EXPECT_DOUBLE_EQ(p999->AsDouble(), 0.0);
}

}  // namespace
}  // namespace past
