// Malformed-input coverage for the JSON parser: truncated documents,
// trailing garbage, depth overruns, and the two defects the fuzzer surfaced
// (overflowing number literals, lone surrogate escapes) must all be rejected
// — returning false, never crashing or accepting unrepresentable values.
#include "src/obs/json.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>

namespace past {
namespace {

bool Rejects(const std::string& text) {
  JsonValue doc;
  return !JsonValue::Parse(text, &doc);
}

TEST(JsonMalformedTest, TruncatedDocumentsRejected) {
  const std::string valid =
      R"({"a":[1,2.5],"b":{"c":null,"d":"text \u00e9"},"e":true})";
  JsonValue doc;
  ASSERT_TRUE(JsonValue::Parse(valid, &doc));
  for (size_t len = 0; len < valid.size(); ++len) {
    EXPECT_TRUE(Rejects(valid.substr(0, len)))
        << "prefix of length " << len << " parsed: " << valid.substr(0, len);
  }
}

TEST(JsonMalformedTest, TrailingGarbageRejected) {
  EXPECT_TRUE(Rejects("{} x"));
  EXPECT_TRUE(Rejects("null null"));
  EXPECT_TRUE(Rejects("1 2"));
  EXPECT_TRUE(Rejects("[1]]"));
}

TEST(JsonMalformedTest, BrokenLiteralsRejected) {
  EXPECT_TRUE(Rejects("tru"));
  EXPECT_TRUE(Rejects("falsey"));
  EXPECT_TRUE(Rejects("nul"));
  EXPECT_TRUE(Rejects("-"));
  EXPECT_TRUE(Rejects("1.2.3"));
  EXPECT_TRUE(Rejects("1e"));
  EXPECT_TRUE(Rejects("+1"));
}

TEST(JsonMalformedTest, BrokenStringsRejected) {
  EXPECT_TRUE(Rejects("\"unterminated"));
  EXPECT_TRUE(Rejects("\"bad escape \\q\""));
  EXPECT_TRUE(Rejects("\"short \\u12\""));
  EXPECT_TRUE(Rejects("\"not hex \\uZZZZ\""));
}

TEST(JsonMalformedTest, BrokenStructuresRejected) {
  EXPECT_TRUE(Rejects("{"));
  EXPECT_TRUE(Rejects("{\"a\"}"));
  EXPECT_TRUE(Rejects("{\"a\":}"));
  EXPECT_TRUE(Rejects("{\"a\":1,}"));
  EXPECT_TRUE(Rejects("{1:2}"));
  EXPECT_TRUE(Rejects("["));
  EXPECT_TRUE(Rejects("[1,]"));
  EXPECT_TRUE(Rejects("[1 2]"));
}

TEST(JsonMalformedTest, DepthOverrunRejected) {
  EXPECT_TRUE(Rejects(std::string(100, '[')));
  std::string nested;
  for (int i = 0; i < 100; ++i) {
    nested += "{\"k\":";
  }
  nested += "1";
  nested += std::string(100, '}');
  EXPECT_TRUE(Rejects(nested));
}

TEST(JsonMalformedTest, GarbageBytesRejected) {
  EXPECT_TRUE(Rejects(std::string("\xff\xfe\x00\x01", 4)));
  EXPECT_TRUE(Rejects(""));
  EXPECT_TRUE(Rejects("  \t\n"));
}

TEST(JsonMalformedTest, OverflowingNumbersRejected) {
  // strtod turns these into +/-inf, which Dump() cannot represent; the
  // parser must reject them (found by fuzz_obs_json).
  EXPECT_TRUE(Rejects("1e999"));
  EXPECT_TRUE(Rejects("-1e999"));
  EXPECT_TRUE(Rejects("[1, 1e309]"));
  // The largest finite doubles still parse.
  JsonValue doc;
  ASSERT_TRUE(JsonValue::Parse("1.7976931348623157e308", &doc));
  EXPECT_TRUE(std::isfinite(doc.AsDouble()));
  ASSERT_TRUE(JsonValue::Parse("-1.7976931348623157e308", &doc));
  EXPECT_TRUE(std::isfinite(doc.AsDouble()));
}

TEST(JsonMalformedTest, SurrogateEscapesRejected) {
  // Lone surrogates are not code points; UTF-8-encoding them would make the
  // parser emit invalid UTF-8 (found by fuzz_obs_json).
  EXPECT_TRUE(Rejects("\"\\ud800\""));
  EXPECT_TRUE(Rejects("\"\\udbff\""));
  EXPECT_TRUE(Rejects("\"\\udc00\""));
  EXPECT_TRUE(Rejects("\"\\udfff\""));
  // The code points flanking the surrogate range still parse.
  JsonValue doc;
  ASSERT_TRUE(JsonValue::Parse("\"\\ud7ff\"", &doc));
  ASSERT_TRUE(JsonValue::Parse("\"\\ue000\"", &doc));
}

}  // namespace
}  // namespace past
