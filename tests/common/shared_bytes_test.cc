#include "src/common/shared_bytes.h"

#include <gtest/gtest.h>

#include <utility>

namespace past {
namespace {

TEST(SharedBytesTest, DefaultIsEmpty) {
  SharedBytes s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0u);
  EXPECT_EQ(s.data(), nullptr);
  EXPECT_TRUE(s.span().empty());
  EXPECT_EQ(s.use_count(), 0);
}

TEST(SharedBytesTest, WrapsMovedInBytesWithoutCopy) {
  Bytes payload{1, 2, 3, 4};
  const uint8_t* raw = payload.data();
  SharedBytes s(std::move(payload));
  EXPECT_EQ(s.size(), 4u);
  EXPECT_EQ(s.data(), raw);  // the vector's storage was moved, not copied
  EXPECT_EQ(s.use_count(), 1);
}

TEST(SharedBytesTest, CopiesShareOneBuffer) {
  SharedBytes s(Bytes{9, 8, 7});
  SharedBytes t = s;
  SharedBytes u = t;
  EXPECT_EQ(s.use_count(), 3);
  EXPECT_EQ(t.data(), s.data());
  EXPECT_EQ(u.data(), s.data());
}

TEST(SharedBytesTest, BufferOutlivesOriginalHandle) {
  SharedBytes copy;
  {
    SharedBytes original(Bytes{42});
    copy = original;
    EXPECT_EQ(copy.use_count(), 2);
  }
  EXPECT_EQ(copy.use_count(), 1);
  ASSERT_EQ(copy.size(), 1u);
  EXPECT_EQ(copy.span()[0], 42);
}

TEST(SharedBytesTest, CopyFromSpanAllocatesFreshBuffer) {
  Bytes source{5, 5, 5};
  SharedBytes s = SharedBytes::Copy(ByteSpan(source.data(), source.size()));
  source[0] = 0;  // the copy must be unaffected
  EXPECT_EQ(s.span()[0], 5);
  EXPECT_NE(s.data(), source.data());
}

TEST(SharedBytesTest, MoveLeavesSourceEmpty) {
  SharedBytes s(Bytes{1});
  SharedBytes t = std::move(s);
  EXPECT_EQ(t.use_count(), 1);
  EXPECT_EQ(t.size(), 1u);
}

}  // namespace
}  // namespace past
