#include "src/common/status.h"

#include <gtest/gtest.h>

namespace past {
namespace {

TEST(StatusTest, NamesAreUnique) {
  const StatusCode all[] = {
      StatusCode::kOk,
      StatusCode::kInvalidArgument,
      StatusCode::kNotFound,
      StatusCode::kAlreadyExists,
      StatusCode::kOutOfRange,
      StatusCode::kUnavailable,
      StatusCode::kTimeout,
      StatusCode::kInternal,
      StatusCode::kInsufficientStorage,
      StatusCode::kQuotaExceeded,
      StatusCode::kInsertRejected,
      StatusCode::kVerificationFailed,
      StatusCode::kNotAuthorized,
      StatusCode::kCertificateExpired,
      StatusCode::kDecodeError,
  };
  std::set<std::string> names;
  for (StatusCode code : all) {
    names.insert(StatusCodeName(code));
  }
  EXPECT_EQ(names.size(), std::size(all));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.status(), StatusCode::kOk);
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(StatusCode::kNotFound);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status(), StatusCode::kNotFound);
}

TEST(ResultTest, ValueOr) {
  Result<int> ok(7);
  Result<int> err(StatusCode::kTimeout);
  EXPECT_EQ(ok.value_or(0), 7);
  EXPECT_EQ(err.value_or(9), 9);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "payload");
}

TEST(ResultTest, MutableValue) {
  Result<std::vector<int>> r(std::vector<int>{1});
  r.value().push_back(2);
  EXPECT_EQ(r.value().size(), 2u);
}

TEST(ResultDeathTest, ValueOnErrorAborts) {
  Result<int> r(StatusCode::kInternal);
  EXPECT_DEATH((void)r.value(), "value\\(\\) on failed Result");
}

TEST(ResultDeathTest, OkStatusWithoutValueAborts) {
  EXPECT_DEATH(Result<int>{StatusCode::kOk}, "ok result must carry a value");
}

}  // namespace
}  // namespace past
