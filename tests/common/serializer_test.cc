#include "src/common/serializer.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace past {
namespace {

TEST(SerializerTest, ScalarRoundTrip) {
  Writer w;
  w.U8(0xab);
  w.U16(0x1234);
  w.U32(0xdeadbeef);
  w.U64(0x0123456789abcdefULL);
  w.I64(-42);
  w.F64(3.14159);
  w.Bool(true);
  w.Bool(false);

  Reader r(ByteSpan(w.bytes().data(), w.bytes().size()));
  uint8_t u8;
  uint16_t u16;
  uint32_t u32;
  uint64_t u64;
  int64_t i64;
  double f64;
  bool b1, b2;
  ASSERT_TRUE(r.U8(&u8));
  ASSERT_TRUE(r.U16(&u16));
  ASSERT_TRUE(r.U32(&u32));
  ASSERT_TRUE(r.U64(&u64));
  ASSERT_TRUE(r.I64(&i64));
  ASSERT_TRUE(r.F64(&f64));
  ASSERT_TRUE(r.Bool(&b1));
  ASSERT_TRUE(r.Bool(&b2));
  EXPECT_TRUE(r.AtEnd());

  EXPECT_EQ(u8, 0xab);
  EXPECT_EQ(u16, 0x1234);
  EXPECT_EQ(u32, 0xdeadbeefu);
  EXPECT_EQ(u64, 0x0123456789abcdefULL);
  EXPECT_EQ(i64, -42);
  EXPECT_DOUBLE_EQ(f64, 3.14159);
  EXPECT_TRUE(b1);
  EXPECT_FALSE(b2);
}

TEST(SerializerTest, IdRoundTrip) {
  Rng rng(1);
  U128 id128 = rng.NextU128();
  U160 id160 = rng.NextU160();
  Writer w;
  w.Id128(id128);
  w.Id160(id160);
  Reader r(ByteSpan(w.bytes().data(), w.bytes().size()));
  U128 out128;
  U160 out160;
  ASSERT_TRUE(r.Id128(&out128));
  ASSERT_TRUE(r.Id160(&out160));
  EXPECT_EQ(out128, id128);
  EXPECT_EQ(out160, id160);
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerializerTest, BlobAndStringRoundTrip) {
  Writer w;
  w.Blob(Bytes{1, 2, 3});
  w.Str("hello");
  w.Blob({});
  Reader r(ByteSpan(w.bytes().data(), w.bytes().size()));
  Bytes blob;
  std::string str;
  Bytes empty;
  ASSERT_TRUE(r.Blob(&blob));
  ASSERT_TRUE(r.Str(&str));
  ASSERT_TRUE(r.Blob(&empty));
  EXPECT_EQ(blob, (Bytes{1, 2, 3}));
  EXPECT_EQ(str, "hello");
  EXPECT_TRUE(empty.empty());
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerializerTest, ReaderRejectsTruncation) {
  Writer w;
  w.U64(12345);
  const Bytes& buf = w.bytes();
  for (size_t len = 0; len < buf.size(); ++len) {
    Reader r(ByteSpan(buf.data(), len));
    uint64_t v;
    EXPECT_FALSE(r.U64(&v)) << "len " << len;
  }
}

TEST(SerializerTest, BlobRejectsTruncatedBody) {
  Writer w;
  w.Blob(Bytes(100, 0x5a));
  const Bytes& buf = w.bytes();
  Reader r(ByteSpan(buf.data(), buf.size() - 1));
  Bytes out;
  EXPECT_FALSE(r.Blob(&out));
}

TEST(SerializerTest, BlobRejectsLyingLengthPrefix) {
  Writer w;
  w.U32(0xffffffffu);  // claims 4 GiB follows
  Reader r(ByteSpan(w.bytes().data(), w.bytes().size()));
  Bytes out;
  EXPECT_FALSE(r.Blob(&out));
}

TEST(SerializerTest, RemainingAndAtEnd) {
  Writer w;
  w.U32(7);
  Reader r(ByteSpan(w.bytes().data(), w.bytes().size()));
  EXPECT_EQ(r.remaining(), 4u);
  uint32_t v;
  ASSERT_TRUE(r.U32(&v));
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerializerTest, FuzzRandomBuffersNeverCrash) {
  Rng rng(99);
  for (int trial = 0; trial < 500; ++trial) {
    Bytes buf = rng.RandomBytes(rng.UniformU64(64));
    Reader r(ByteSpan(buf.data(), buf.size()));
    // Attempt a mixed decode sequence; only invariant: no crash, bounded.
    uint32_t a;
    Bytes b;
    std::string s;
    (void)r.U32(&a);
    (void)r.Blob(&b);
    (void)r.Str(&s);
  }
}

}  // namespace
}  // namespace past
