#include "src/common/bytes.h"

#include <gtest/gtest.h>

namespace past {
namespace {

TEST(BytesTest, HexEncodeEmpty) { EXPECT_EQ(HexEncode({}), ""); }

TEST(BytesTest, HexEncodeKnown) {
  Bytes data = {0x00, 0x01, 0xab, 0xff};
  EXPECT_EQ(HexEncode(data), "0001abff");
}

TEST(BytesTest, HexDecodeRoundTrip) {
  Bytes data;
  for (int i = 0; i < 256; ++i) {
    data.push_back(static_cast<uint8_t>(i));
  }
  Bytes decoded;
  ASSERT_TRUE(HexDecode(HexEncode(data), &decoded));
  EXPECT_EQ(decoded, data);
}

TEST(BytesTest, HexDecodeUppercase) {
  Bytes decoded;
  ASSERT_TRUE(HexDecode("ABCDEF", &decoded));
  EXPECT_EQ(decoded, (Bytes{0xab, 0xcd, 0xef}));
}

TEST(BytesTest, HexDecodeRejectsOddLength) {
  Bytes decoded;
  EXPECT_FALSE(HexDecode("abc", &decoded));
  EXPECT_TRUE(decoded.empty());
}

TEST(BytesTest, HexDecodeRejectsNonHex) {
  Bytes decoded;
  EXPECT_FALSE(HexDecode("zz", &decoded));
  EXPECT_FALSE(HexDecode("0g", &decoded));
  EXPECT_TRUE(decoded.empty());
}

TEST(BytesTest, HexDecodeClearsOutput) {
  Bytes decoded = {1, 2, 3};
  ASSERT_TRUE(HexDecode("", &decoded));
  EXPECT_TRUE(decoded.empty());
}

TEST(BytesTest, ToBytes) {
  Bytes b = ToBytes("hi");
  EXPECT_EQ(b, (Bytes{'h', 'i'}));
}

TEST(BytesTest, ConstantTimeEqual) {
  Bytes a = {1, 2, 3};
  Bytes b = {1, 2, 3};
  Bytes c = {1, 2, 4};
  Bytes d = {1, 2};
  EXPECT_TRUE(ConstantTimeEqual(a, b));
  EXPECT_FALSE(ConstantTimeEqual(a, c));
  EXPECT_FALSE(ConstantTimeEqual(a, d));
  EXPECT_TRUE(ConstantTimeEqual({}, {}));
}

}  // namespace
}  // namespace past
