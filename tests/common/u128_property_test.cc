// Property tests over the U128 ring/digit algebra, parameterized by seed.
#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/common/u128.h"

namespace past {
namespace {

class U128Property : public ::testing::TestWithParam<uint64_t> {};

TEST_P(U128Property, RingDistanceIsAMetric) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 300; ++trial) {
    U128 a = rng.NextU128();
    U128 b = rng.NextU128();
    U128 c = rng.NextU128();
    // Identity and symmetry.
    EXPECT_EQ(a.RingDistance(a), U128::Zero());
    EXPECT_EQ(a.RingDistance(b), b.RingDistance(a));
    if (a != b) {
      EXPECT_NE(a.RingDistance(b), U128::Zero());
    }
    // Triangle inequality on the ring.
    U128 ac = a.RingDistance(c);
    U128 ab = a.RingDistance(b);
    U128 bc = b.RingDistance(c);
    // ab + bc cannot wrap below ac: both are <= 2^127 so the sum fits with at
    // most one carry into bit 128; compare via subtraction guard.
    U128 sum = ab.Add(bc);
    bool overflowed = sum < ab;  // wrapped past 2^128
    EXPECT_TRUE(overflowed || ac <= sum)
        << a.ToHex() << " " << b.ToHex() << " " << c.ToHex();
  }
}

TEST_P(U128Property, DigitDecompositionReconstructs) {
  Rng rng(GetParam() ^ 0xabc);
  for (int b : {1, 2, 4, 8}) {
    for (int trial = 0; trial < 50; ++trial) {
      U128 v = rng.NextU128();
      U128 rebuilt = U128::Zero();
      for (int i = 0; i < 128 / b; ++i) {
        rebuilt = rebuilt.WithDigit(i, b, v.Digit(i, b));
      }
      EXPECT_EQ(rebuilt, v);
    }
  }
}

TEST_P(U128Property, DigitsAgreeWithBits) {
  Rng rng(GetParam() ^ 0xdef);
  for (int trial = 0; trial < 100; ++trial) {
    U128 v = rng.NextU128();
    for (int i = 0; i < 32; ++i) {
      int digit = v.Digit(i, 4);
      for (int bit = 0; bit < 4; ++bit) {
        EXPECT_EQ((digit >> (3 - bit)) & 1, v.Bit(i * 4 + bit));
      }
    }
  }
}

TEST_P(U128Property, SharedPrefixConsistentAcrossBases) {
  Rng rng(GetParam() ^ 0x123);
  for (int trial = 0; trial < 200; ++trial) {
    U128 a = rng.NextU128();
    // Give b a shared prefix of `shared` whole bytes, then randomize.
    U128 b = rng.NextU128();
    int shared = static_cast<int>(rng.UniformU64(17));
    for (int i = 0; i < shared; ++i) {
      b = b.WithDigit(i, 8, a.Digit(i, 8));
    }
    int p1 = a.SharedPrefixLength(b, 1);
    int p4 = a.SharedPrefixLength(b, 4);
    int p8 = a.SharedPrefixLength(b, 8);
    // A prefix of p4 hex digits is 4*p4 bits, and the next digit differs
    // within its 4 bits: 4*p4 <= p1 < 4*p4 + 4 (unless identical).
    EXPECT_GE(p1, p4 * 4);
    if (p1 < 128) {
      EXPECT_LT(p1, p4 * 4 + 4);
    }
    EXPECT_GE(p8, shared);
    EXPECT_GE(p4, p8 * 2);
  }
}

TEST_P(U128Property, InArcMatchesOffsetDefinition) {
  Rng rng(GetParam() ^ 0x777);
  for (int trial = 0; trial < 300; ++trial) {
    U128 low = rng.NextU128();
    U128 high = rng.NextU128();
    U128 x = rng.NextU128();
    if (low == high) {
      continue;
    }
    // x in (low, high] iff walking up from low reaches x before/at high.
    bool expected = x.Sub(low) != U128::Zero() && x.Sub(low) <= high.Sub(low);
    EXPECT_EQ(x.InArc(low, high), expected);
  }
}

TEST_P(U128Property, AddSubFormAGroup) {
  Rng rng(GetParam() ^ 0x999);
  for (int trial = 0; trial < 200; ++trial) {
    U128 a = rng.NextU128();
    U128 b = rng.NextU128();
    U128 c = rng.NextU128();
    EXPECT_EQ(a.Add(b).Add(c), a.Add(b.Add(c)));  // associativity
    EXPECT_EQ(a.Add(U128::Zero()), a);            // identity
    EXPECT_EQ(a.Sub(a), U128::Zero());            // inverse
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, U128Property, ::testing::Values(1u, 42u, 1234u, 777777u));

}  // namespace
}  // namespace past
