#include "src/common/rng.h"

#include <cmath>

#include <gtest/gtest.h>

namespace past {
namespace {

TEST(RngTest, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, UniformU64InRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.UniformU64(17), 17u);
  }
}

TEST(RngTest, UniformU64CoversRange) {
  Rng rng(5);
  std::vector<int> counts(8, 0);
  for (int i = 0; i < 8000; ++i) {
    counts[rng.UniformU64(8)]++;
  }
  for (int c : counts) {
    EXPECT_GT(c, 800);  // expected 1000 each
    EXPECT_LT(c, 1200);
  }
}

TEST(RngTest, UniformIntInclusive) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(11);
  double sum = 0, sum_sq = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    double v = rng.Gaussian();
    sum += v;
    sum_sq += v * v;
  }
  double mean = sum / n;
  double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(13);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    sum += rng.Exponential(2.0);
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, ParetoAboveScale) {
  Rng rng(15);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(rng.Pareto(10.0, 1.5), 10.0);
  }
}

TEST(RngTest, LognormalPositive) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GT(rng.Lognormal(2.0, 1.0), 0.0);
  }
}

TEST(RngTest, RandomBytesLengthAndVariety) {
  Rng rng(19);
  Bytes b = rng.RandomBytes(1000);
  ASSERT_EQ(b.size(), 1000u);
  std::vector<int> counts(256, 0);
  for (uint8_t x : b) {
    counts[x]++;
  }
  int nonzero = 0;
  for (int c : counts) {
    nonzero += (c > 0);
  }
  EXPECT_GT(nonzero, 200);
}

TEST(RngTest, RandomBytesOddLength) {
  Rng rng(21);
  EXPECT_EQ(rng.RandomBytes(0).size(), 0u);
  EXPECT_EQ(rng.RandomBytes(3).size(), 3u);
  EXPECT_EQ(rng.RandomBytes(9).size(), 9u);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(23);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(RngTest, ForkIndependence) {
  Rng parent(25);
  Rng child = parent.Fork();
  EXPECT_NE(parent.NextU64(), child.NextU64());
}

TEST(ZipfTest, Rank0MostPopular) {
  Rng rng(27);
  ZipfDistribution zipf(100, 1.0);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 50000; ++i) {
    counts[zipf.Sample(&rng)]++;
  }
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[10], counts[99]);
}

TEST(ZipfTest, MatchesTheoreticalHead) {
  Rng rng(29);
  const size_t n = 1000;
  ZipfDistribution zipf(n, 1.0);
  double harmonic = 0;
  for (size_t i = 1; i <= n; ++i) {
    harmonic += 1.0 / static_cast<double>(i);
  }
  const int samples = 200000;
  int head = 0;
  for (int i = 0; i < samples; ++i) {
    head += (zipf.Sample(&rng) == 0);
  }
  double expect = 1.0 / harmonic;
  EXPECT_NEAR(static_cast<double>(head) / samples, expect, expect * 0.1);
}

TEST(ZipfTest, UniformWhenSZero) {
  Rng rng(31);
  ZipfDistribution zipf(10, 0.0);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 20000; ++i) {
    counts[zipf.Sample(&rng)]++;
  }
  for (int c : counts) {
    EXPECT_NEAR(c, 2000, 300);
  }
}

}  // namespace
}  // namespace past
