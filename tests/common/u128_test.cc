#include "src/common/u128.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace past {
namespace {

TEST(U128Test, DefaultIsZero) {
  U128 v;
  EXPECT_EQ(v, U128::Zero());
  EXPECT_EQ(v.hi(), 0u);
  EXPECT_EQ(v.lo(), 0u);
}

TEST(U128Test, Ordering) {
  EXPECT_LT(U128(0, 5), U128(0, 6));
  EXPECT_LT(U128(0, ~0ULL), U128(1, 0));
  EXPECT_GT(U128(2, 0), U128(1, ~0ULL));
  EXPECT_EQ(U128(3, 4), U128(3, 4));
}

TEST(U128Test, BytesRoundTrip) {
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    U128 v = rng.NextU128();
    auto bytes = v.ToBytes();
    EXPECT_EQ(U128::FromBytes(ByteSpan(bytes.data(), bytes.size())), v);
  }
}

TEST(U128Test, BytesAreBigEndian) {
  U128 v(0x0102030405060708ULL, 0x090a0b0c0d0e0f10ULL);
  auto bytes = v.ToBytes();
  EXPECT_EQ(bytes[0], 0x01);
  EXPECT_EQ(bytes[15], 0x10);
}

TEST(U128Test, HexRoundTrip) {
  U128 v(0xdeadbeef12345678ULL, 0x0123456789abcdefULL);
  EXPECT_EQ(v.ToHex(), "deadbeef123456780123456789abcdef");
  U128 parsed;
  ASSERT_TRUE(U128::FromHex(v.ToHex(), &parsed));
  EXPECT_EQ(parsed, v);
}

TEST(U128Test, FromHexRejectsBadInput) {
  U128 v;
  EXPECT_FALSE(U128::FromHex("xyz", &v));
  EXPECT_FALSE(U128::FromHex("abcd", &v));  // too short
}

TEST(U128Test, AddWraps) {
  EXPECT_EQ(U128::Max().Add(U128(0, 1)), U128::Zero());
  EXPECT_EQ(U128(0, ~0ULL).Add(U128(0, 1)), U128(1, 0));
}

TEST(U128Test, SubWraps) {
  EXPECT_EQ(U128::Zero().Sub(U128(0, 1)), U128::Max());
  EXPECT_EQ(U128(1, 0).Sub(U128(0, 1)), U128(0, ~0ULL));
}

TEST(U128Test, AddSubInverse) {
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    U128 a = rng.NextU128();
    U128 b = rng.NextU128();
    EXPECT_EQ(a.Add(b).Sub(b), a);
  }
}

TEST(U128Test, AbsDiff) {
  EXPECT_EQ(U128(0, 10).AbsDiff(U128(0, 3)), U128(0, 7));
  EXPECT_EQ(U128(0, 3).AbsDiff(U128(0, 10)), U128(0, 7));
  EXPECT_EQ(U128(5, 5).AbsDiff(U128(5, 5)), U128::Zero());
}

TEST(U128Test, RingDistanceSymmetric) {
  Rng rng(9);
  for (int i = 0; i < 200; ++i) {
    U128 a = rng.NextU128();
    U128 b = rng.NextU128();
    EXPECT_EQ(a.RingDistance(b), b.RingDistance(a));
  }
}

TEST(U128Test, RingDistanceWrapsAroundZero) {
  U128 a(0, 1);
  U128 b = U128::Max();  // distance should be 2 around the ring
  EXPECT_EQ(a.RingDistance(b), U128(0, 2));
}

TEST(U128Test, RingDistanceBoundedByHalfRing) {
  Rng rng(11);
  const U128 half(1ULL << 63, 0);
  for (int i = 0; i < 200; ++i) {
    U128 a = rng.NextU128();
    U128 b = rng.NextU128();
    EXPECT_LE(a.RingDistance(b), half);
  }
}

TEST(U128Test, InArcSimple) {
  U128 low(0, 10), high(0, 20);
  EXPECT_TRUE(U128(0, 15).InArc(low, high));
  EXPECT_TRUE(U128(0, 20).InArc(low, high));   // inclusive upper end
  EXPECT_FALSE(U128(0, 10).InArc(low, high));  // exclusive lower end
  EXPECT_FALSE(U128(0, 25).InArc(low, high));
}

TEST(U128Test, InArcWrapping) {
  U128 low = U128::Max().Sub(U128(0, 5));
  U128 high(0, 5);
  EXPECT_TRUE(U128(0, 1).InArc(low, high));
  EXPECT_TRUE(U128::Max().InArc(low, high));
  EXPECT_FALSE(U128(0, 100).InArc(low, high));
}

TEST(U128Test, DigitsBase16) {
  U128 v;
  ASSERT_TRUE(U128::FromHex("0123456789abcdef0123456789abcdef", &v));
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(v.Digit(i, 4), i % 16) << "digit " << i;
  }
}

TEST(U128Test, DigitsOtherBases) {
  U128 v(0x8000000000000000ULL, 0);
  EXPECT_EQ(v.Digit(0, 1), 1);
  EXPECT_EQ(v.Digit(0, 2), 2);
  EXPECT_EQ(v.Digit(0, 8), 0x80);
  EXPECT_EQ(v.Digit(1, 8), 0);
}

TEST(U128Test, WithDigitRoundTrip) {
  Rng rng(13);
  for (int b : {1, 2, 4, 8}) {
    U128 v = rng.NextU128();
    int digits = 128 / b;
    for (int trial = 0; trial < 20; ++trial) {
      int idx = static_cast<int>(rng.UniformU64(static_cast<uint64_t>(digits)));
      int val = static_cast<int>(rng.UniformU64(1ULL << b));
      U128 w = v.WithDigit(idx, b, val);
      EXPECT_EQ(w.Digit(idx, b), val);
      // Other digits untouched.
      for (int j = 0; j < digits; ++j) {
        if (j != idx) {
          EXPECT_EQ(w.Digit(j, b), v.Digit(j, b));
        }
      }
    }
  }
}

TEST(U128Test, SharedPrefixLength) {
  U128 a, b;
  ASSERT_TRUE(U128::FromHex("abcdef00000000000000000000000000", &a));
  ASSERT_TRUE(U128::FromHex("abcd0f00000000000000000000000000", &b));
  EXPECT_EQ(a.SharedPrefixLength(b, 4), 4);
  EXPECT_EQ(a.SharedPrefixLength(a, 4), 32);
  EXPECT_EQ(a.SharedPrefixLength(b, 8), 2);
}

TEST(U128Test, BitAccess) {
  U128 v(1ULL << 62, 1);
  EXPECT_EQ(v.Bit(0), 0);
  EXPECT_EQ(v.Bit(1), 1);
  EXPECT_EQ(v.Bit(127), 1);
  EXPECT_EQ(v.Bit(126), 0);
}

TEST(U128Test, HashDistributes) {
  Rng rng(17);
  std::unordered_map<size_t, int> buckets;
  for (int i = 0; i < 1000; ++i) {
    buckets[rng.NextU128().HashValue() % 16]++;
  }
  for (auto& [bucket, count] : buckets) {
    EXPECT_GT(count, 20) << "bucket " << bucket;
  }
}

}  // namespace
}  // namespace past
