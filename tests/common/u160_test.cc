#include "src/common/u160.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace past {
namespace {

TEST(U160Test, DefaultIsZero) {
  U160 v;
  for (uint8_t b : v.bytes()) {
    EXPECT_EQ(b, 0);
  }
}

TEST(U160Test, BytesRoundTrip) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    U160 v = rng.NextU160();
    EXPECT_EQ(U160::FromBytes(ByteSpan(v.bytes().data(), U160::kBytes)), v);
  }
}

TEST(U160Test, HexRoundTrip) {
  Rng rng(5);
  U160 v = rng.NextU160();
  U160 parsed;
  ASSERT_TRUE(U160::FromHex(v.ToHex(), &parsed));
  EXPECT_EQ(parsed, v);
  EXPECT_EQ(v.ToHex().size(), 40u);
}

TEST(U160Test, FromHexRejectsWrongLength) {
  U160 v;
  EXPECT_FALSE(U160::FromHex("abcd", &v));
  EXPECT_FALSE(U160::FromHex(std::string(42, 'a'), &v));
}

TEST(U160Test, OrderingIsLexicographic) {
  Bytes small(20, 0x00), big(20, 0x00);
  big[0] = 1;
  EXPECT_LT(U160::FromBytes(small), U160::FromBytes(big));
  small[19] = 0xff;
  EXPECT_LT(U160::FromBytes(small), U160::FromBytes(big));
}

TEST(U160Test, Top128TakesMostSignificantBits) {
  Bytes raw(20, 0);
  for (int i = 0; i < 20; ++i) {
    raw[static_cast<size_t>(i)] = static_cast<uint8_t>(i + 1);
  }
  U160 v = U160::FromBytes(raw);
  U128 top = v.Top128();
  auto top_bytes = top.ToBytes();
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(top_bytes[static_cast<size_t>(i)], raw[static_cast<size_t>(i)]);
  }
}

TEST(U160Test, HashDiffersForDifferentValues) {
  Rng rng(7);
  U160 a = rng.NextU160();
  U160 b = rng.NextU160();
  EXPECT_NE(a.HashValue(), b.HashValue());
}

}  // namespace
}  // namespace past
