#include "src/common/crc32c.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "src/common/rng.h"

namespace past {
namespace {

ByteSpan Span(const Bytes& b) { return ByteSpan(b.data(), b.size()); }

Bytes FromString(const std::string& s) {
  return Bytes(s.begin(), s.end());
}

// Bit-at-a-time reference implementation of the Castagnoli CRC.
uint32_t ReferenceCrc32c(ByteSpan data) {
  uint32_t crc = 0xffffffffu;
  for (uint8_t byte : data) {
    crc ^= byte;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1) ? 0x82f63b78u : 0);
    }
  }
  return ~crc;
}

// Known-answer vectors from RFC 3720 (iSCSI) appendix B.4.
TEST(Crc32cTest, KnownAnswers) {
  EXPECT_EQ(Crc32c(ByteSpan()), 0x00000000u);
  EXPECT_EQ(Crc32c(Span(FromString("a"))), 0xC1D04330u);
  EXPECT_EQ(Crc32c(Span(FromString("123456789"))), 0xE3069283u);

  Bytes zeros(32, 0x00);
  EXPECT_EQ(Crc32c(Span(zeros)), 0x8A9136AAu);
  Bytes ones(32, 0xff);
  EXPECT_EQ(Crc32c(Span(ones)), 0x62A8AB43u);
  Bytes ascending(32);
  for (size_t i = 0; i < ascending.size(); ++i) {
    ascending[i] = static_cast<uint8_t>(i);
  }
  EXPECT_EQ(Crc32c(Span(ascending)), 0x46DD794Eu);
}

TEST(Crc32cTest, MatchesBitwiseReferenceOnRandomInputs) {
  Rng rng(42);
  for (int trial = 0; trial < 200; ++trial) {
    Bytes data = rng.RandomBytes(rng.UniformU64(300));
    EXPECT_EQ(Crc32c(Span(data)), ReferenceCrc32c(Span(data)));
  }
}

// Extending over chunks must equal hashing the concatenation, regardless of
// how the input is split (this is what incremental record writers rely on).
TEST(Crc32cTest, ExtendIsChunkingInvariant) {
  Rng rng(7);
  Bytes data = rng.RandomBytes(1024);
  const uint32_t whole = Crc32c(Span(data));
  for (size_t split1 : {size_t{0}, size_t{1}, size_t{3}, size_t{512}, size_t{1023}}) {
    for (size_t split2 : {split1, split1 + (data.size() - split1) / 2, data.size()}) {
      uint32_t crc = Crc32cExtend(0, ByteSpan(data.data(), split1));
      crc = Crc32cExtend(crc, ByteSpan(data.data() + split1, split2 - split1));
      crc = Crc32cExtend(crc, ByteSpan(data.data() + split2, data.size() - split2));
      EXPECT_EQ(crc, whole);
    }
  }
}

TEST(Crc32cTest, DetectsSingleBitFlips) {
  Rng rng(11);
  Bytes data = rng.RandomBytes(64);
  const uint32_t original = Crc32c(Span(data));
  for (size_t byte = 0; byte < data.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      data[byte] ^= static_cast<uint8_t>(1u << bit);
      EXPECT_NE(Crc32c(Span(data)), original);
      data[byte] ^= static_cast<uint8_t>(1u << bit);
    }
  }
}

// Unaligned starting addresses exercise the byte-at-a-time head of the
// slice-by-4 loop.
TEST(Crc32cTest, AlignmentInvariant) {
  Rng rng(13);
  Bytes data = rng.RandomBytes(256);
  for (size_t lead = 0; lead < 8; ++lead) {
    Bytes shifted(lead, 0xab);
    shifted.insert(shifted.end(), data.begin(), data.end());
    EXPECT_EQ(Crc32c(ByteSpan(shifted.data() + lead, data.size())),
              Crc32c(Span(data)));
  }
}

}  // namespace
}  // namespace past
