#include "src/pastry/neighborhood_set.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace past {
namespace {

class NeighborhoodSetTest : public ::testing::Test {
 protected:
  NeighborhoodSetTest()
      : set_(U128(0, 1), 4, [this](NodeAddr a) { return proximity_[a]; }) {
    proximity_.resize(100, 0.0);
  }

  NodeDescriptor Desc(uint64_t id_lo, NodeAddr addr, double prox) {
    proximity_[addr] = prox;
    return NodeDescriptor{U128(0, id_lo), addr};
  }

  std::vector<double> proximity_;
  NeighborhoodSet set_;
};

TEST_F(NeighborhoodSetTest, OrdersByProximity) {
  set_.MaybeAdd(Desc(10, 1, 5.0));
  set_.MaybeAdd(Desc(20, 2, 1.0));
  set_.MaybeAdd(Desc(30, 3, 3.0));
  ASSERT_EQ(set_.size(), 3u);
  EXPECT_EQ(set_.Members()[0].addr, 2u);
  EXPECT_EQ(set_.Members()[1].addr, 3u);
  EXPECT_EQ(set_.Members()[2].addr, 1u);
}

TEST_F(NeighborhoodSetTest, EvictsFarthestAtCapacity) {
  set_.MaybeAdd(Desc(10, 1, 1.0));
  set_.MaybeAdd(Desc(20, 2, 2.0));
  set_.MaybeAdd(Desc(30, 3, 3.0));
  set_.MaybeAdd(Desc(40, 4, 4.0));
  EXPECT_TRUE(set_.MaybeAdd(Desc(50, 5, 0.5)));  // closer than all
  EXPECT_EQ(set_.size(), 4u);
  EXPECT_FALSE(set_.Contains(U128(0, 40)));
  EXPECT_TRUE(set_.Contains(U128(0, 50)));
}

TEST_F(NeighborhoodSetTest, RejectsFartherWhenFull) {
  for (int i = 1; i <= 4; ++i) {
    set_.MaybeAdd(Desc(static_cast<uint64_t>(i * 10), static_cast<NodeAddr>(i),
                       static_cast<double>(i)));
  }
  EXPECT_FALSE(set_.MaybeAdd(Desc(99, 9, 100.0)));
  EXPECT_EQ(set_.size(), 4u);
}

TEST_F(NeighborhoodSetTest, IgnoresSelfAndDuplicates) {
  EXPECT_FALSE(set_.MaybeAdd(Desc(1, 7, 1.0)));  // self id
  NodeDescriptor d = Desc(10, 1, 1.0);
  EXPECT_TRUE(set_.MaybeAdd(d));
  EXPECT_FALSE(set_.MaybeAdd(d));
  EXPECT_EQ(set_.size(), 1u);
}

TEST_F(NeighborhoodSetTest, AddressRefreshUpdatesDistance) {
  set_.MaybeAdd(Desc(10, 1, 1.0));
  set_.MaybeAdd(Desc(20, 2, 2.0));
  // Node 10 moves to a new address that is farther away.
  proximity_[5] = 9.0;
  EXPECT_TRUE(set_.MaybeAdd(NodeDescriptor{U128(0, 10), 5}));
  EXPECT_EQ(set_.size(), 2u);
  EXPECT_TRUE(set_.Contains(U128(0, 10)));
}

TEST_F(NeighborhoodSetTest, RemoveWorks) {
  set_.MaybeAdd(Desc(10, 1, 1.0));
  EXPECT_TRUE(set_.Remove(U128(0, 10)));
  EXPECT_FALSE(set_.Remove(U128(0, 10)));
  EXPECT_EQ(set_.size(), 0u);
}

TEST_F(NeighborhoodSetTest, ClearEmpties) {
  set_.MaybeAdd(Desc(10, 1, 1.0));
  set_.Clear();
  EXPECT_EQ(set_.size(), 0u);
}

TEST_F(NeighborhoodSetTest, PropertyKeepsClosestSubset) {
  Rng rng(3);
  NeighborhoodSet set(U128(0, 1), 8, [this](NodeAddr a) { return proximity_[a]; });
  proximity_.resize(300);
  std::vector<double> all;
  for (int i = 2; i < 200; ++i) {
    double prox = rng.UniformDouble() * 100.0;
    proximity_[static_cast<size_t>(i)] = prox;
    all.push_back(prox);
    set.MaybeAdd(NodeDescriptor{U128(1, static_cast<uint64_t>(i)),
                                static_cast<NodeAddr>(i)});
  }
  std::sort(all.begin(), all.end());
  ASSERT_EQ(set.size(), 8u);
  for (size_t i = 0; i < 8; ++i) {
    EXPECT_DOUBLE_EQ(proximity_[set.Members()[i].addr], all[i]);
  }
}

}  // namespace
}  // namespace past
