#include "src/pastry/leaf_set.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace past {
namespace {

NodeDescriptor Desc(uint64_t id_lo, NodeAddr addr) {
  return NodeDescriptor{U128(0, id_lo), addr};
}

TEST(LeafSetTest, StartsEmpty) {
  LeafSet leaf(U128(0, 100), 8);
  EXPECT_EQ(leaf.size(), 0u);
  EXPECT_FALSE(leaf.Complete());
  EXPECT_EQ(leaf.capacity_per_side(), 4);
}

TEST(LeafSetTest, IgnoresSelfAndInvalid) {
  LeafSet leaf(U128(0, 100), 8);
  EXPECT_FALSE(leaf.MaybeAdd(Desc(100, 1)));
  EXPECT_FALSE(leaf.MaybeAdd(NodeDescriptor{U128(0, 5), kInvalidAddr}));
  EXPECT_EQ(leaf.size(), 0u);
}

TEST(LeafSetTest, SidesOrderedByRingOffset) {
  LeafSet leaf(U128(0, 100), 8);
  leaf.MaybeAdd(Desc(110, 1));
  leaf.MaybeAdd(Desc(105, 2));
  leaf.MaybeAdd(Desc(120, 3));
  ASSERT_EQ(leaf.Larger().size(), 3u);
  EXPECT_EQ(leaf.Larger()[0].id, U128(0, 105));
  EXPECT_EQ(leaf.Larger()[1].id, U128(0, 110));
  EXPECT_EQ(leaf.Larger()[2].id, U128(0, 120));
}

TEST(LeafSetTest, KeepsOnlyClosestPerSide) {
  LeafSet leaf(U128(0, 100), 4);  // 2 per side
  // Populate the smaller side with genuinely close predecessors so distant
  // ids cannot sneak in via ring wraparound.
  leaf.MaybeAdd(Desc(95, 10));
  leaf.MaybeAdd(Desc(98, 11));
  leaf.MaybeAdd(Desc(110, 1));
  leaf.MaybeAdd(Desc(120, 2));
  EXPECT_TRUE(leaf.MaybeAdd(Desc(105, 3)));  // displaces 120 on the larger side
  std::vector<U128> larger_ids;
  for (const auto& d : leaf.Larger()) {
    larger_ids.push_back(d.id);
  }
  EXPECT_EQ(larger_ids, (std::vector<U128>{U128(0, 105), U128(0, 110)}));
  // A farther node no longer fits on either side.
  EXPECT_FALSE(leaf.MaybeAdd(Desc(130, 4)));
}

TEST(LeafSetTest, SmallRingNodeAppearsOnBothSides) {
  // With only 2 nodes, the other node is both the closest-larger and the
  // closest-smaller neighbor.
  LeafSet leaf(U128(0, 100), 8);
  leaf.MaybeAdd(Desc(200, 1));
  EXPECT_EQ(leaf.Larger().size(), 1u);
  EXPECT_EQ(leaf.Smaller().size(), 1u);
  EXPECT_EQ(leaf.Members().size(), 1u);  // deduplicated
}

TEST(LeafSetTest, WrapAroundSides) {
  // self near zero: smaller side wraps to large ids.
  LeafSet leaf(U128(0, 10), 4);
  leaf.MaybeAdd(NodeDescriptor{U128::Max(), 1});  // one below zero
  ASSERT_GE(leaf.Smaller().size(), 1u);
  EXPECT_EQ(leaf.Smaller()[0].id, U128::Max());
}

TEST(LeafSetTest, RemoveAndContains) {
  LeafSet leaf(U128(0, 100), 8);
  leaf.MaybeAdd(Desc(110, 1));
  EXPECT_TRUE(leaf.Contains(U128(0, 110)));
  EXPECT_TRUE(leaf.Remove(U128(0, 110)));
  EXPECT_FALSE(leaf.Contains(U128(0, 110)));
  EXPECT_FALSE(leaf.Remove(U128(0, 110)));
  EXPECT_EQ(leaf.size(), 0u);
}

TEST(LeafSetTest, AddressRefresh) {
  LeafSet leaf(U128(0, 100), 8);
  leaf.MaybeAdd(Desc(110, 1));
  EXPECT_TRUE(leaf.MaybeAdd(Desc(110, 99)));
  EXPECT_EQ(leaf.Larger()[0].addr, 99u);
  EXPECT_EQ(leaf.Members().size(), 1u);
}

TEST(LeafSetTest, IncompleteCoversEverything) {
  LeafSet leaf(U128(0, 100), 8);
  leaf.MaybeAdd(Desc(110, 1));
  EXPECT_TRUE(leaf.CoversKey(U128(1ULL << 63, 12345)));
}

TEST(LeafSetTest, CompleteCoversOnlySpannedArc) {
  LeafSet leaf(U128(0, 100), 4);  // 2 per side
  leaf.MaybeAdd(Desc(110, 1));
  leaf.MaybeAdd(Desc(120, 2));
  leaf.MaybeAdd(Desc(90, 3));
  leaf.MaybeAdd(Desc(80, 4));
  ASSERT_TRUE(leaf.Complete());
  EXPECT_TRUE(leaf.CoversKey(U128(0, 100)));  // self
  EXPECT_TRUE(leaf.CoversKey(U128(0, 115)));
  EXPECT_TRUE(leaf.CoversKey(U128(0, 120)));
  EXPECT_TRUE(leaf.CoversKey(U128(0, 85)));
  EXPECT_FALSE(leaf.CoversKey(U128(0, 121)));
  EXPECT_FALSE(leaf.CoversKey(U128(0, 79)));
  EXPECT_FALSE(leaf.CoversKey(U128(1, 0)));
}

TEST(LeafSetTest, ClosestToPrefersRingDistance) {
  LeafSet leaf(U128(0, 100), 8);
  NodeDescriptor self{U128(0, 100), 0};
  leaf.MaybeAdd(Desc(110, 1));
  leaf.MaybeAdd(Desc(90, 2));
  EXPECT_EQ(leaf.ClosestTo(U128(0, 108), self, true).id, U128(0, 110));
  EXPECT_EQ(leaf.ClosestTo(U128(0, 101), self, true).id, U128(0, 100));  // self
  EXPECT_EQ(leaf.ClosestTo(U128(0, 92), self, false).id, U128(0, 90));
}

TEST(LeafSetTest, ClosestToTieBreaksTowardSmallerId) {
  LeafSet leaf(U128(0, 100), 8);
  NodeDescriptor self{U128(0, 100), 0};
  leaf.MaybeAdd(Desc(104, 1));
  leaf.MaybeAdd(Desc(106, 2));
  // Key 105 is equidistant from 104 and 106.
  EXPECT_EQ(leaf.ClosestTo(U128(0, 105), self, true).id, U128(0, 104));
}

TEST(LeafSetTest, ClosestMembersReturnsKSortedByDistance) {
  LeafSet leaf(U128(0, 100), 8);
  NodeDescriptor self{U128(0, 100), 0};
  leaf.MaybeAdd(Desc(110, 1));
  leaf.MaybeAdd(Desc(120, 2));
  leaf.MaybeAdd(Desc(90, 3));
  leaf.MaybeAdd(Desc(80, 4));
  auto closest = leaf.ClosestMembers(U128(0, 100), self, 3);
  ASSERT_EQ(closest.size(), 3u);
  EXPECT_EQ(closest[0].id, U128(0, 100));  // self is closest to own id
  // Next two: 90 and 110 (distance 10 each).
  std::vector<U128> next = {closest[1].id, closest[2].id};
  std::sort(next.begin(), next.end());
  EXPECT_EQ(next, (std::vector<U128>{U128(0, 90), U128(0, 110)}));
}

TEST(LeafSetTest, ClosestMembersCapsAtPopulation) {
  LeafSet leaf(U128(0, 100), 8);
  NodeDescriptor self{U128(0, 100), 0};
  leaf.MaybeAdd(Desc(110, 1));
  EXPECT_EQ(leaf.ClosestMembers(U128(0, 100), self, 5).size(), 2u);
}

TEST(LeafSetTest, FarthestOnSideOf) {
  LeafSet leaf(U128(0, 100), 4);  // 2 per side
  leaf.MaybeAdd(Desc(110, 1));
  leaf.MaybeAdd(Desc(120, 2));
  leaf.MaybeAdd(Desc(90, 3));
  leaf.MaybeAdd(Desc(80, 4));
  // A failure at 115 (larger side) should point at the farthest larger leaf.
  EXPECT_EQ(leaf.FarthestOnSideOf(U128(0, 115)).id, U128(0, 120));
  EXPECT_EQ(leaf.FarthestOnSideOf(U128(0, 95)).id, U128(0, 80));
}

TEST(LeafSetTest, FarthestFallsBackToOtherSide) {
  LeafSet leaf(U128(0, 100), 4);
  leaf.MaybeAdd(Desc(90, 3));  // only smaller side populated
  NodeDescriptor d = leaf.FarthestOnSideOf(U128(0, 150));
  EXPECT_EQ(d.id, U128(0, 90));
}

TEST(LeafSetTest, PropertyMatchesBruteForceNeighbors) {
  // Insert many random ids; the sides must equal the true nearest ring
  // successors/predecessors.
  Rng rng(77);
  const int l = 16;
  U128 self = rng.NextU128();
  LeafSet leaf(self, l);
  std::vector<U128> ids;
  for (int i = 0; i < 500; ++i) {
    U128 id = rng.NextU128();
    ids.push_back(id);
    leaf.MaybeAdd(NodeDescriptor{id, static_cast<NodeAddr>(i + 1)});
  }
  std::sort(ids.begin(), ids.end(), [&](const U128& a, const U128& b) {
    return a.Sub(self) < b.Sub(self);  // by up-offset from self
  });
  ASSERT_EQ(leaf.Larger().size(), static_cast<size_t>(l / 2));
  for (int i = 0; i < l / 2; ++i) {
    EXPECT_EQ(leaf.Larger()[static_cast<size_t>(i)].id, ids[static_cast<size_t>(i)]);
  }
  ASSERT_EQ(leaf.Smaller().size(), static_cast<size_t>(l / 2));
  for (int i = 0; i < l / 2; ++i) {
    EXPECT_EQ(leaf.Smaller()[static_cast<size_t>(i)].id,
              ids[ids.size() - 1 - static_cast<size_t>(i)]);
  }
}

TEST(LeafSetTest, ClearEmptiesBothSides) {
  LeafSet leaf(U128(0, 100), 8);
  leaf.MaybeAdd(Desc(110, 1));
  leaf.MaybeAdd(Desc(90, 2));
  leaf.Clear();
  EXPECT_EQ(leaf.size(), 0u);
  EXPECT_TRUE(leaf.Larger().empty());
  EXPECT_TRUE(leaf.Smaller().empty());
}

}  // namespace
}  // namespace past
