// Behavioral tests of Pastry routing over full simulated overlays: delivery
// correctness (always the numerically closest live node), the < ceil(log_2b N)
// expected hop count, per-node state bounds, and the locality properties.
#include <cmath>

#include <gtest/gtest.h>

#include "src/pastry/overlay.h"

namespace past {
namespace {

struct RecordingApp : public PastryApp {
  std::vector<DeliverContext> delivered;
  void Deliver(const DeliverContext& ctx, ByteSpan) override {
    delivered.push_back(ctx);
  }
};

// Builds an overlay with apps attached and keep-alives disabled (no failures
// in these tests, so the queue can run to empty).
struct TestNet {
  explicit TestNet(int n, uint64_t seed, bool locality = true,
                   bool randomized = false) {
    OverlayOptions opts;
    opts.seed = seed;
    opts.pastry.keep_alive_period = 0;
    opts.pastry.locality_aware = locality;
    opts.pastry.randomized_routing = randomized;
    opts.nearest_bootstrap = locality;
    overlay = std::make_unique<Overlay>(opts);
    overlay->Build(n);
    apps.resize(overlay->size());
    for (size_t i = 0; i < overlay->size(); ++i) {
      overlay->node(i)->SetApp(&apps[i]);
    }
  }

  // Routes from a random node to `key`; returns the delivery context or
  // nullopt if nothing was delivered.
  std::optional<DeliverContext> RouteAndRun(const U128& key) {
    PastryNode* src = overlay->RandomLiveNode();
    src->Route(key, 1, {});
    overlay->RunAll();
    std::optional<DeliverContext> result;
    for (auto& app : apps) {
      for (auto& ctx : app.delivered) {
        if (ctx.key == key) {
          EXPECT_FALSE(result.has_value()) << "duplicate delivery";
          result = ctx;
        }
      }
      app.delivered.clear();
    }
    return result;
  }

  PastryNode* Deliverer(const DeliverContext& ctx) {
    return overlay->node(ctx.path.back());
  }

  std::unique_ptr<Overlay> overlay;
  std::vector<RecordingApp> apps;
};

TEST(RoutingTest, SingleNodeDeliversToItself) {
  TestNet net(1, 1);
  auto ctx = net.RouteAndRun(U128(123, 456));
  ASSERT_TRUE(ctx.has_value());
  EXPECT_EQ(ctx->hops, 0);
}

TEST(RoutingTest, TwoNodesRouteBetweenEachOther) {
  TestNet net(2, 2);
  for (int i = 0; i < 20; ++i) {
    U128 key = net.overlay->RandomKey();
    auto ctx = net.RouteAndRun(key);
    ASSERT_TRUE(ctx.has_value());
    PastryNode* expected = net.overlay->GloballyClosestLiveNode(key);
    EXPECT_EQ(net.overlay->node(ctx->path.back())->id(), expected->id());
  }
}

// Parameterized correctness sweep over network sizes and seeds.
class RoutingCorrectness : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(RoutingCorrectness, AlwaysDeliversAtNumericallyClosestNode) {
  auto [n, seed] = GetParam();
  TestNet net(n, seed);
  const int lookups = 100;
  for (int i = 0; i < lookups; ++i) {
    U128 key = net.overlay->RandomKey();
    PastryNode* expected = net.overlay->GloballyClosestLiveNode(key);
    auto ctx = net.RouteAndRun(key);
    ASSERT_TRUE(ctx.has_value()) << "no delivery for key " << key.ToHex();
    EXPECT_EQ(net.overlay->node(ctx->path.back())->id(), expected->id())
        << "key " << key.ToHex();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RoutingCorrectness,
    ::testing::Values(std::make_tuple(10, 3u), std::make_tuple(50, 4u),
                      std::make_tuple(100, 5u), std::make_tuple(250, 6u),
                      std::make_tuple(250, 7u)));

TEST(RoutingTest, AverageHopsBelowLogBound) {
  const int n = 400;
  TestNet net(n, 11);
  double total_hops = 0;
  const int lookups = 300;
  for (int i = 0; i < lookups; ++i) {
    auto ctx = net.RouteAndRun(net.overlay->RandomKey());
    ASSERT_TRUE(ctx.has_value());
    total_hops += ctx->hops;
  }
  double avg = total_hops / lookups;
  double bound = std::ceil(std::log(n) / std::log(16.0));
  EXPECT_LT(avg, bound) << "paper: avg hops < ceil(log_16 N)";
  EXPECT_GT(avg, 0.5);  // sanity: routing does take hops
}

TEST(RoutingTest, StateSizeWithinPaperFormula) {
  const int n = 300;
  TestNet net(n, 13);
  PastryConfig config;
  const double log16_n = std::log(n) / std::log(16.0);
  const size_t max_rt = static_cast<size_t>(
      (config.cols() - 1) * std::ceil(log16_n) + 2 * config.cols());  // slack row
  for (size_t i = 0; i < net.overlay->size(); ++i) {
    PastryNode* node = net.overlay->node(i);
    EXPECT_LE(node->routing_table().EntryCount(), max_rt);
    EXPECT_LE(node->leaf_set().size(), static_cast<size_t>(config.leaf_set_size));
    EXPECT_LE(node->neighborhood_set().size(),
              static_cast<size_t>(config.neighborhood_size));
    // Populated rows ~= log_16 N.
    EXPECT_LE(node->routing_table().PopulatedRows(),
              static_cast<int>(std::ceil(log16_n)) + 2);
  }
}

TEST(RoutingTest, LeafSetsMatchGlobalTruth) {
  const int n = 150;
  TestNet net(n, 17);
  std::vector<U128> ids;
  for (size_t i = 0; i < net.overlay->size(); ++i) {
    ids.push_back(net.overlay->node(i)->id());
  }
  std::sort(ids.begin(), ids.end());
  int total_missing = 0;
  for (size_t i = 0; i < net.overlay->size(); ++i) {
    PastryNode* node = net.overlay->node(i);
    size_t rank = static_cast<size_t>(
        std::lower_bound(ids.begin(), ids.end(), node->id()) - ids.begin());
    int half = node->leaf_set().capacity_per_side();
    for (int s = 1; s <= half; ++s) {
      U128 successor = ids[(rank + static_cast<size_t>(s)) % ids.size()];
      if (!node->leaf_set().Contains(successor) && successor != node->id()) {
        ++total_missing;
      }
      U128 predecessor =
          ids[(rank + ids.size() - static_cast<size_t>(s)) % ids.size()];
      if (!node->leaf_set().Contains(predecessor) && predecessor != node->id()) {
        ++total_missing;
      }
    }
  }
  // Joins are driven to completion, so leaf sets should be essentially
  // perfect; allow a tiny slack for in-flight announcements.
  EXPECT_LE(total_missing, n / 30);
}

TEST(RoutingTest, RouteDistanceReasonableWithLocality) {
  // The locality heuristics should keep the traveled distance within a small
  // multiple of the direct proximity distance (paper: ~1.5x on average).
  const int n = 200;
  TestNet net(n, 19, /*locality=*/true);
  double ratio_sum = 0;
  int counted = 0;
  for (int i = 0; i < 200; ++i) {
    U128 key = net.overlay->RandomKey();
    PastryNode* src = net.overlay->RandomLiveNode();
    src->Route(key, 1, {});
    net.overlay->RunAll();
    for (auto& app : net.apps) {
      for (auto& ctx : app.delivered) {
        double direct =
            net.overlay->network().Proximity(ctx.path.front(), ctx.path.back());
        if (direct > 1.0 && ctx.hops >= 1) {
          ratio_sum += ctx.distance / direct;
          ++counted;
        }
      }
      app.delivered.clear();
    }
  }
  ASSERT_GT(counted, 50);
  double avg_ratio = ratio_sum / counted;
  EXPECT_LT(avg_ratio, 2.5) << "locality-aware routes should be short";
}

TEST(RoutingTest, RandomizedRoutingStillCorrect) {
  TestNet net(120, 23, /*locality=*/true, /*randomized=*/true);
  for (int i = 0; i < 100; ++i) {
    U128 key = net.overlay->RandomKey();
    PastryNode* expected = net.overlay->GloballyClosestLiveNode(key);
    auto ctx = net.RouteAndRun(key);
    ASSERT_TRUE(ctx.has_value());
    EXPECT_EQ(net.overlay->node(ctx->path.back())->id(), expected->id());
  }
}

TEST(RoutingTest, RandomizedRoutingTakesDiversePaths) {
  TestNet net(150, 29, true, /*randomized=*/true);
  U128 key = net.overlay->RandomKey();
  PastryNode* src = net.overlay->node(5);
  std::set<std::vector<NodeAddr>> paths;
  for (int i = 0; i < 30; ++i) {
    src->Route(key, 1, {});
    net.overlay->RunAll();
    for (auto& app : net.apps) {
      for (auto& ctx : app.delivered) {
        paths.insert(ctx.path);
      }
      app.delivered.clear();
    }
  }
  // With randomization on, repeated routes should not always take one path.
  EXPECT_GT(paths.size(), 1u);
}

TEST(RoutingTest, DeterministicRoutingTakesOnePath) {
  TestNet net(150, 29, true, /*randomized=*/false);
  U128 key = net.overlay->RandomKey();
  PastryNode* src = net.overlay->node(5);
  std::set<std::vector<NodeAddr>> paths;
  for (int i = 0; i < 10; ++i) {
    src->Route(key, 1, {});
    net.overlay->RunAll();
    for (auto& app : net.apps) {
      for (auto& ctx : app.delivered) {
        paths.insert(ctx.path);
      }
      app.delivered.clear();
    }
  }
  EXPECT_EQ(paths.size(), 1u);
}

// The tentpole observability invariant: every delivered message carries a
// route trace whose length equals its recorded hop count, with one record
// per forwarding decision (node, rule used, proximity distance).
TEST(RoutingTest, RouteTraceMatchesHopCountAndPath) {
  TestNet net(200, 43);
  for (int i = 0; i < 100; ++i) {
    U128 key = net.overlay->RandomKey();
    auto ctx = net.RouteAndRun(key);
    ASSERT_TRUE(ctx.has_value());
    ASSERT_EQ(ctx->trace.hops.size(), static_cast<size_t>(ctx->hops));
    // trace.hops[i] was recorded by path[i] when it chose the next hop.
    double distance_sum = 0;
    for (size_t h = 0; h < ctx->trace.hops.size(); ++h) {
      const RouteHop& hop = ctx->trace.hops[h];
      EXPECT_EQ(hop.node, ctx->path[h]);
      EXPECT_LT(static_cast<uint8_t>(hop.rule), kRouteRuleCount);
      EXPECT_GE(hop.distance, 0.0);
      distance_sum += hop.distance;
    }
    // Per-hop distances add up to the context's total traveled distance.
    EXPECT_NEAR(distance_sum, ctx->distance, 1e-6);
  }
}

TEST(RoutingTest, RouteRuleCountersMatchObservedTraces) {
  TestNet net(150, 47);
  MetricsRegistry& metrics = net.overlay->network().metrics();
  uint64_t rule_before[kRouteRuleCount];
  uint64_t traced[kRouteRuleCount] = {0, 0, 0, 0};
  for (uint8_t r = 0; r < kRouteRuleCount; ++r) {
    rule_before[r] = metrics
                         .GetCounter(std::string("pastry.route.rule.") +
                                     RouteRuleName(static_cast<RouteRule>(r)))
                         ->value();
  }
  const Histogram* hops_hist = metrics.FindHistogram("pastry.route.hops");
  ASSERT_NE(hops_hist, nullptr);
  uint64_t deliveries_before = hops_hist->count();

  const int lookups = 50;
  uint64_t total_hops = 0;
  for (int i = 0; i < lookups; ++i) {
    auto ctx = net.RouteAndRun(net.overlay->RandomKey());
    ASSERT_TRUE(ctx.has_value());
    total_hops += ctx->hops;
    for (const RouteHop& hop : ctx->trace.hops) {
      ++traced[static_cast<uint8_t>(hop.rule)];
    }
  }
  // Every delivery was observed into the hop histogram...
  EXPECT_EQ(hops_hist->count() - deliveries_before,
            static_cast<uint64_t>(lookups));
  // ...and the per-rule counters grew by at least what the traces recorded
  // (other traffic, e.g. join-protocol routing, may also have contributed).
  uint64_t counted = 0;
  for (uint8_t r = 0; r < kRouteRuleCount; ++r) {
    uint64_t delta = metrics
                         .GetCounter(std::string("pastry.route.rule.") +
                                     RouteRuleName(static_cast<RouteRule>(r)))
                         ->value() -
                     rule_before[r];
    EXPECT_GE(delta, traced[r]);
    counted += delta;
  }
  EXPECT_GE(counted, total_hops);
}

TEST(RoutingTest, PayloadSurvivesRouting) {
  TestNet net(60, 31);
  struct PayloadApp : public PastryApp {
    Bytes last;
    void Deliver(const DeliverContext&, ByteSpan payload) override {
      last.assign(payload.begin(), payload.end());
    }
  } payload_app;
  U128 key = net.overlay->RandomKey();
  PastryNode* target = net.overlay->GloballyClosestLiveNode(key);
  target->SetApp(&payload_app);
  Bytes payload = ToBytes("hello across the overlay");
  net.overlay->RandomLiveNode()->Route(key, 42, payload);
  net.overlay->RunAll();
  EXPECT_EQ(payload_app.last, payload);
}

TEST(RoutingTest, ForwardHookCanAbsorbMessage) {
  TestNet net(80, 37);
  struct AbsorbApp : public PastryApp {
    int forwarded = 0;
    void Deliver(const DeliverContext&, ByteSpan) override {}
    bool Forward(const U128&, uint32_t, const NodeDescriptor&, Bytes*) override {
      ++forwarded;
      return false;  // absorb everything
    }
  } absorber;
  // Find a key whose route from src passes through an intermediate node.
  for (int attempt = 0; attempt < 50; ++attempt) {
    U128 key = net.overlay->RandomKey();
    PastryNode* src = net.overlay->RandomLiveNode();
    src->SetApp(&absorber);
    int before = absorber.forwarded;
    src->Route(key, 1, {});
    net.overlay->RunAll();
    if (absorber.forwarded > before) {
      // Absorbed at source: nothing must have been delivered anywhere.
      for (auto& app : net.apps) {
        EXPECT_TRUE(app.delivered.empty());
      }
      return;
    }
    src->SetApp(&net.apps[src->addr()]);
    for (auto& app : net.apps) {
      app.delivered.clear();
    }
  }
  FAIL() << "no multi-hop route found to exercise the forward hook";
}

TEST(RoutingTest, SendDirectReachesApp) {
  TestNet net(20, 41);
  struct DirectApp : public PastryApp {
    NodeDescriptor from;
    uint32_t type = 0;
    Bytes payload;
    void Deliver(const DeliverContext&, ByteSpan) override {}
    void ReceiveDirect(const NodeDescriptor& f, uint32_t t, ByteSpan p) override {
      from = f;
      type = t;
      payload.assign(p.begin(), p.end());
    }
  } direct;
  PastryNode* a = net.overlay->node(3);
  PastryNode* b = net.overlay->node(9);
  b->SetApp(&direct);
  a->SendDirect(b->addr(), 1234, ToBytes("direct hello"));
  net.overlay->RunAll();
  EXPECT_EQ(direct.type, 1234u);
  EXPECT_EQ(direct.from.id, a->id());
  EXPECT_EQ(direct.payload, ToBytes("direct hello"));
}

}  // namespace
}  // namespace past
