// Overlay builder tests: determinism, helper queries, growth.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/pastry/overlay.h"

namespace past {
namespace {

OverlayOptions QuietOptions(uint64_t seed) {
  OverlayOptions opts;
  opts.seed = seed;
  opts.pastry.keep_alive_period = 0;
  return opts;
}

TEST(OverlayTest, DeterministicFromSeed) {
  Overlay a(QuietOptions(1234));
  Overlay b(QuietOptions(1234));
  a.Build(40);
  b.Build(40);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.node(i)->id(), b.node(i)->id());
    EXPECT_EQ(a.node(i)->routing_table().EntryCount(),
              b.node(i)->routing_table().EntryCount());
  }
  EXPECT_EQ(a.network().stats().sent, b.network().stats().sent);
}

TEST(OverlayTest, DifferentSeedsDifferentIds) {
  Overlay a(QuietOptions(1));
  Overlay b(QuietOptions(2));
  a.Build(5);
  b.Build(5);
  EXPECT_NE(a.node(0)->id(), b.node(0)->id());
}

TEST(OverlayTest, AllNodesActiveAfterBuild) {
  Overlay overlay(QuietOptions(3));
  overlay.Build(60);
  for (size_t i = 0; i < overlay.size(); ++i) {
    EXPECT_TRUE(overlay.node(i)->active());
  }
}

TEST(OverlayTest, GloballyClosestLiveNodeMatchesBruteForce) {
  Overlay overlay(QuietOptions(5));
  overlay.Build(50);
  Rng rng(1);
  for (int t = 0; t < 50; ++t) {
    U128 key = rng.NextU128();
    PastryNode* got = overlay.GloballyClosestLiveNode(key);
    U128 best = U128::Max();
    for (size_t i = 0; i < overlay.size(); ++i) {
      best = std::min(best, overlay.node(i)->id().RingDistance(key));
    }
    EXPECT_EQ(got->id().RingDistance(key), best);
  }
}

TEST(OverlayTest, GloballyClosestSkipsDeadNodes) {
  Overlay overlay(QuietOptions(7));
  overlay.Build(20);
  PastryNode* victim = overlay.node(10);
  U128 key = victim->id();  // exact hit
  EXPECT_EQ(overlay.GloballyClosestLiveNode(key), victim);
  victim->Fail();
  EXPECT_NE(overlay.GloballyClosestLiveNode(key), victim);
}

TEST(OverlayTest, NearestLiveNodeIsProximallyNearest) {
  Overlay overlay(QuietOptions(9));
  overlay.Build(30);
  NodeAddr probe = overlay.node(7)->addr();
  PastryNode* nearest = overlay.NearestLiveNode(probe);
  ASSERT_NE(nearest, nullptr);
  EXPECT_NE(nearest->addr(), probe);
  double nearest_dist = overlay.network().Proximity(probe, nearest->addr());
  for (size_t i = 0; i < overlay.size(); ++i) {
    if (overlay.node(i)->addr() != probe) {
      EXPECT_LE(nearest_dist,
                overlay.network().Proximity(probe, overlay.node(i)->addr()) + 1e-9);
    }
  }
}

TEST(OverlayTest, RandomLiveNodeOnlyReturnsLive) {
  Overlay overlay(QuietOptions(11));
  overlay.Build(10);
  for (size_t i = 0; i < 5; ++i) {
    overlay.node(i)->Fail();
  }
  for (int t = 0; t < 50; ++t) {
    PastryNode* node = overlay.RandomLiveNode();
    ASSERT_NE(node, nullptr);
    EXPECT_TRUE(node->active());
  }
}

TEST(OverlayTest, GrowsIncrementallyAfterBuild) {
  Overlay overlay(QuietOptions(13));
  overlay.Build(10);
  PastryNode* extra = overlay.AddNode();
  EXPECT_TRUE(extra->active());
  EXPECT_EQ(overlay.size(), 11u);
}

TEST(OverlayTest, ExplicitIdIsUsed) {
  Overlay overlay(QuietOptions(15));
  overlay.Build(5);
  U128 id(0x1234567890abcdefULL, 0xfedcba0987654321ULL);
  PastryNode* node = overlay.AddNodeWithId(id);
  EXPECT_EQ(node->id(), id);
  EXPECT_TRUE(node->active());
}

struct CollectApp : public PastryApp {
  std::vector<DeliverContext> delivered;
  void Deliver(const DeliverContext& ctx, ByteSpan) override {
    delivered.push_back(ctx);
  }
};

TEST(OverlayTest, BuildFastRoutesCorrectlyWithinHopBound) {
  Overlay overlay(QuietOptions(501));
  const int n = 500;
  overlay.BuildFast(n);
  ASSERT_EQ(overlay.size(), static_cast<size_t>(n));
  for (size_t i = 0; i < overlay.size(); ++i) {
    EXPECT_TRUE(overlay.node(i)->active());
  }
  CollectApp app;
  for (size_t i = 0; i < overlay.size(); ++i) {
    overlay.node(i)->SetApp(&app);
  }
  const double bound = std::ceil(std::log(n) / std::log(16.0));
  double total_hops = 0;
  const int kLookups = 200;
  for (int i = 0; i < kLookups; ++i) {
    U128 key = overlay.RandomKey();
    PastryNode* expected = overlay.GloballyClosestLiveNode(key);
    app.delivered.clear();
    overlay.RandomLiveNode()->Route(key, 1, {});
    overlay.RunAll();
    ASSERT_EQ(app.delivered.size(), 1u) << "lookup " << i << " not delivered";
    const DeliverContext& ctx = app.delivered.back();
    // The global-knowledge construction must yield exact delivery: leaf
    // sets are the true ring neighbors, so the last hop cannot miss.
    EXPECT_EQ(overlay.node(ctx.path.back())->id(), expected->id());
    total_hops += ctx.hops;
  }
  EXPECT_LT(total_hops / kLookups, bound);
}

TEST(OverlayTest, BuildFastIsDeterministic) {
  Overlay a(QuietOptions(77));
  Overlay b(QuietOptions(77));
  a.BuildFast(300);
  b.BuildFast(300);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.node(i)->id(), b.node(i)->id());
    EXPECT_EQ(a.node(i)->routing_table().EntryCount(),
              b.node(i)->routing_table().EntryCount());
    EXPECT_EQ(a.node(i)->leaf_set().size(), b.node(i)->leaf_set().size());
  }
}

TEST(OverlayTest, RecordMemoryMetricsPublishesPlausibleGauges) {
  Overlay overlay(QuietOptions(91));
  overlay.BuildFast(400);
  overlay.RecordMemoryMetrics();
  const Gauge* per_node =
      overlay.network().metrics().FindGauge("sim.mem.bytes_per_node");
  const Gauge* total =
      overlay.network().metrics().FindGauge("sim.mem.total_bytes");
  ASSERT_NE(per_node, nullptr);
  ASSERT_NE(total, nullptr);
  EXPECT_GT(per_node->value(), 0.0);
  // The compact-state budget the scale gate enforces at 100k, checked here
  // at unit scale too (shared simulation overheads amortize worse at N=400,
  // so this is the harder direction).
  EXPECT_LT(per_node->value(), 8192.0);
  EXPECT_NEAR(total->value(), per_node->value() * 400.0, per_node->value());
}

TEST(OverlayTest, RemoveNodeFreesSlotAndKeepsQueriesSafe) {
  Overlay overlay(QuietOptions(31));
  overlay.Build(12);
  const size_t victim = 5;
  overlay.RemoveNode(victim);
  EXPECT_EQ(overlay.node(victim), nullptr);
  EXPECT_EQ(overlay.network().free_endpoint_count(), 1u);
  // Live-node queries must skip the destroyed slot.
  for (int i = 0; i < 20; ++i) {
    PastryNode* n = overlay.RandomLiveNode();
    ASSERT_NE(n, nullptr);
  }
  U128 key = overlay.RandomKey();
  EXPECT_NE(overlay.GloballyClosestLiveNode(key), nullptr);
  // A later join re-lets the endpoint slot.
  PastryNode* extra = overlay.AddNode();
  EXPECT_TRUE(extra->active());
  EXPECT_EQ(overlay.network().free_endpoint_count(), 0u);
}

}  // namespace
}  // namespace past
