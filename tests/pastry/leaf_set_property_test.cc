// Property tests of LeafSet against a brute-force reference model, across
// seeds, capacities and churn patterns.
#include <algorithm>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/pastry/leaf_set.h"

namespace past {
namespace {

struct LeafSetCase {
  uint64_t seed;
  int leaf_size;
  int population;
};

class LeafSetProperty : public ::testing::TestWithParam<LeafSetCase> {};

// Reference: sorted ids by up-offset from self.
std::vector<U128> SortedByUpOffset(const U128& self, const std::vector<U128>& ids) {
  std::vector<U128> sorted = ids;
  std::sort(sorted.begin(), sorted.end(), [&](const U128& a, const U128& b) {
    return a.Sub(self) < b.Sub(self);
  });
  return sorted;
}

TEST_P(LeafSetProperty, MatchesBruteForceUnderInsertAndRemove) {
  const LeafSetCase& c = GetParam();
  Rng rng(c.seed);
  U128 self = rng.NextU128();
  LeafSet leaf(self, c.leaf_size);
  std::vector<U128> alive;

  for (int op = 0; op < c.population * 3; ++op) {
    if (alive.empty() || rng.Bernoulli(0.7)) {
      U128 id = rng.NextU128();
      if (id == self) {
        continue;
      }
      alive.push_back(id);
      leaf.MaybeAdd(NodeDescriptor{id, static_cast<NodeAddr>(op + 1)});
    } else {
      size_t victim = rng.PickIndex(alive.size());
      leaf.Remove(alive[victim]);
      alive.erase(alive.begin() + static_cast<long>(victim));
      // Removal is allowed to leave the side short (repair refills it in the
      // protocol); re-add everything so the invariant below is about
      // membership selection, not repair.
      for (size_t i = 0; i < alive.size(); ++i) {
        leaf.MaybeAdd(NodeDescriptor{alive[i], static_cast<NodeAddr>(1000 + i)});
      }
    }

    // Invariant: larger side == first min(l/2, n) ids by up-offset,
    // smaller side == last ones (reversed).
    std::vector<U128> sorted = SortedByUpOffset(self, alive);
    size_t half = static_cast<size_t>(c.leaf_size / 2);
    size_t expect_larger = std::min(half, sorted.size());
    ASSERT_EQ(leaf.Larger().size(), expect_larger);
    for (size_t i = 0; i < expect_larger; ++i) {
      ASSERT_EQ(leaf.Larger()[i].id, sorted[i]) << "op " << op;
    }
    size_t expect_smaller = std::min(half, sorted.size());
    ASSERT_EQ(leaf.Smaller().size(), expect_smaller);
    for (size_t i = 0; i < expect_smaller; ++i) {
      ASSERT_EQ(leaf.Smaller()[i].id, sorted[sorted.size() - 1 - i]) << "op " << op;
    }
  }
}

TEST_P(LeafSetProperty, ClosestMembersMatchBruteForce) {
  const LeafSetCase& c = GetParam();
  Rng rng(c.seed ^ 0xfeed);
  U128 self = rng.NextU128();
  NodeDescriptor self_desc{self, 0};
  LeafSet leaf(self, c.leaf_size);
  std::vector<NodeDescriptor> members;
  for (int i = 0; i < c.population; ++i) {
    NodeDescriptor d{rng.NextU128(), static_cast<NodeAddr>(i + 1)};
    if (leaf.MaybeAdd(d) && leaf.Contains(d.id)) {
      // Track actual membership (insertions can be rejected at capacity).
    }
  }
  members = leaf.Members();
  members.push_back(self_desc);

  for (int trial = 0; trial < 40; ++trial) {
    U128 key = rng.NextU128();
    int k = 1 + static_cast<int>(rng.UniformU64(6));
    auto got = leaf.ClosestMembers(key, self_desc, k);
    // Reference: sort all members+self by ring distance.
    std::vector<NodeDescriptor> ref = members;
    std::sort(ref.begin(), ref.end(), [&](const NodeDescriptor& a, const NodeDescriptor& b) {
      U128 da = a.id.RingDistance(key);
      U128 db = b.id.RingDistance(key);
      if (da != db) {
        return da < db;
      }
      return a.id < b.id;
    });
    ASSERT_EQ(got.size(), std::min(static_cast<size_t>(k), ref.size()));
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].id, ref[i].id) << "k=" << k << " i=" << i;
    }
  }
}

TEST_P(LeafSetProperty, CoversKeyConsistentWithDeliveryCorrectness) {
  // If a complete leaf set covers a key, the ClosestTo answer must equal the
  // brute-force closest over members+self.
  const LeafSetCase& c = GetParam();
  Rng rng(c.seed ^ 0xcafe);
  U128 self = rng.NextU128();
  NodeDescriptor self_desc{self, 0};
  LeafSet leaf(self, c.leaf_size);
  for (int i = 0; i < c.population; ++i) {
    leaf.MaybeAdd(NodeDescriptor{rng.NextU128(), static_cast<NodeAddr>(i + 1)});
  }
  for (int trial = 0; trial < 100; ++trial) {
    U128 key = rng.NextU128();
    if (!leaf.CoversKey(key)) {
      continue;
    }
    NodeDescriptor got = leaf.ClosestTo(key, self_desc, true);
    auto ref = leaf.ClosestMembers(key, self_desc, 1);
    ASSERT_EQ(ref.size(), 1u);
    EXPECT_EQ(got.id, ref[0].id);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, LeafSetProperty,
    ::testing::Values(LeafSetCase{1, 8, 30}, LeafSetCase{2, 16, 100},
                      LeafSetCase{3, 32, 200}, LeafSetCase{4, 32, 10},
                      LeafSetCase{5, 2, 50}));

}  // namespace
}  // namespace past
