#include "src/pastry/messages.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace past {
namespace {

Rng* TestRng() {
  static Rng rng(4711);
  return &rng;
}

NodeDescriptor RandomDesc() {
  return NodeDescriptor{TestRng()->NextU128(),
                        static_cast<NodeAddr>(TestRng()->UniformU64(10000))};
}

template <typename M>
M RoundTrip(const M& msg) {
  Bytes wire = EncodeMessage(msg);
  Reader r(ByteSpan(wire.data(), wire.size()));
  PastryMsgType type;
  EXPECT_TRUE(DecodeHeader(&r, &type));
  EXPECT_EQ(type, M::kType);
  M out;
  EXPECT_TRUE(DecodeBodyStrict(&r, &out));
  return out;
}

// Every wire message must survive truncation at any byte without crashing and
// without decoding successfully.
template <typename M>
void CheckTruncationRejected(const M& msg) {
  Bytes wire = EncodeMessage(msg);
  for (size_t len = 2; len < wire.size(); ++len) {
    Reader r(ByteSpan(wire.data(), len));
    PastryMsgType type;
    if (!DecodeHeader(&r, &type)) {
      continue;
    }
    M out;
    EXPECT_FALSE(DecodeBodyStrict(&r, &out)) << "len " << len;
  }
}

TEST(PastryMessagesTest, RouteMsgRoundTrip) {
  RouteMsg msg;
  msg.key = TestRng()->NextU128();
  msg.source = RandomDesc();
  msg.app_type = 77;
  msg.seq = 123456789;
  msg.parent_span = 0xdeadbeefcafe;
  msg.hops = 3;
  msg.distance = 42.5;
  msg.path = {1, 2, 3};
  msg.trace = {RouteHop{1, RouteRule::kRoutingTable, 17.25, 1000},
               RouteHop{2, RouteRule::kLeafSet, 3.5, 2500},
               RouteHop{3, RouteRule::kRareCase, 0.0, 0}};
  msg.payload = TestRng()->RandomBytes(50);
  RouteMsg out = RoundTrip(msg);
  EXPECT_EQ(out.key, msg.key);
  EXPECT_EQ(out.source, msg.source);
  EXPECT_EQ(out.app_type, msg.app_type);
  EXPECT_EQ(out.seq, msg.seq);
  EXPECT_EQ(out.parent_span, msg.parent_span);
  EXPECT_EQ(out.hops, msg.hops);
  EXPECT_DOUBLE_EQ(out.distance, msg.distance);
  EXPECT_EQ(out.path, msg.path);
  EXPECT_EQ(out.trace, msg.trace);
  EXPECT_EQ(out.payload, msg.payload);
  CheckTruncationRejected(msg);
}

TEST(PastryMessagesTest, RouteAckRoundTrip) {
  RouteAckMsg msg;
  msg.seq = 999;
  EXPECT_EQ(RoundTrip(msg).seq, 999u);
}

TEST(PastryMessagesTest, JoinRequestRoundTrip) {
  JoinRequestMsg msg;
  msg.joiner = RandomDesc();
  msg.hops = 2;
  msg.seq = 55;
  JoinRequestMsg out = RoundTrip(msg);
  EXPECT_EQ(out.joiner, msg.joiner);
  EXPECT_EQ(out.hops, 2);
  EXPECT_EQ(out.seq, 55u);
}

TEST(PastryMessagesTest, JoinRowsRoundTrip) {
  JoinRowsMsg msg;
  msg.sender = RandomDesc();
  msg.row_indices = {0, 3, 7};
  msg.rows.resize(3);
  for (auto& row : msg.rows) {
    for (int i = 0; i < 5; ++i) {
      row.push_back(RandomDesc());
    }
  }
  JoinRowsMsg out = RoundTrip(msg);
  EXPECT_EQ(out.sender, msg.sender);
  EXPECT_EQ(out.row_indices, msg.row_indices);
  EXPECT_EQ(out.rows, msg.rows);
  CheckTruncationRejected(msg);
}

TEST(PastryMessagesTest, JoinLeafSetRoundTrip) {
  JoinLeafSetMsg msg;
  msg.sender = RandomDesc();
  msg.seq = 8;
  for (int i = 0; i < 16; ++i) {
    msg.leaves.push_back(RandomDesc());
  }
  JoinLeafSetMsg out = RoundTrip(msg);
  EXPECT_EQ(out.leaves, msg.leaves);
  EXPECT_EQ(out.seq, 8u);
}

TEST(PastryMessagesTest, JoinNeighborhoodRoundTrip) {
  JoinNeighborhoodMsg msg;
  msg.sender = RandomDesc();
  msg.neighbors = {RandomDesc(), RandomDesc()};
  EXPECT_EQ(RoundTrip(msg).neighbors, msg.neighbors);
}

TEST(PastryMessagesTest, SmallMessagesRoundTrip) {
  AnnounceArrivalMsg announce;
  announce.joiner = RandomDesc();
  EXPECT_EQ(RoundTrip(announce).joiner, announce.joiner);

  KeepAliveMsg ka;
  ka.sender = RandomDesc();
  EXPECT_EQ(RoundTrip(ka).sender, ka.sender);

  KeepAliveAckMsg ack;
  ack.sender = RandomDesc();
  EXPECT_EQ(RoundTrip(ack).sender, ack.sender);

  LeafSetRequestMsg req;
  req.sender = RandomDesc();
  EXPECT_EQ(RoundTrip(req).sender, req.sender);
}

TEST(PastryMessagesTest, LeafSetReplyRoundTrip) {
  LeafSetReplyMsg msg;
  msg.sender = RandomDesc();
  for (int i = 0; i < 32; ++i) {
    msg.leaves.push_back(RandomDesc());
  }
  EXPECT_EQ(RoundTrip(msg).leaves, msg.leaves);
}

TEST(PastryMessagesTest, RepairMessagesRoundTrip) {
  RepairRequestMsg req;
  req.sender = RandomDesc();
  req.row = 5;
  req.col = 12;
  RepairRequestMsg req_out = RoundTrip(req);
  EXPECT_EQ(req_out.row, 5);
  EXPECT_EQ(req_out.col, 12);

  RepairReplyMsg with_entry;
  with_entry.sender = RandomDesc();
  with_entry.row = 1;
  with_entry.col = 2;
  with_entry.has_entry = true;
  with_entry.entry = RandomDesc();
  RepairReplyMsg out = RoundTrip(with_entry);
  EXPECT_TRUE(out.has_entry);
  EXPECT_EQ(out.entry, with_entry.entry);

  RepairReplyMsg without_entry;
  without_entry.sender = RandomDesc();
  without_entry.has_entry = false;
  EXPECT_FALSE(RoundTrip(without_entry).has_entry);
}

TEST(PastryMessagesTest, AppDirectRoundTrip) {
  AppDirectMsg msg;
  msg.source = RandomDesc();
  msg.app_type = 119;
  msg.payload = TestRng()->RandomBytes(200);
  AppDirectMsg out = RoundTrip(msg);
  EXPECT_EQ(out.source, msg.source);
  EXPECT_EQ(out.app_type, msg.app_type);
  EXPECT_EQ(out.payload, msg.payload);
  CheckTruncationRejected(msg);
}

TEST(PastryMessagesTest, HeaderRejectsBadVersionAndType) {
  Writer w;
  w.U8(99);  // wrong version
  w.U8(1);
  Reader r1(ByteSpan(w.bytes().data(), w.bytes().size()));
  PastryMsgType type;
  EXPECT_FALSE(DecodeHeader(&r1, &type));

  Writer w2;
  w2.U8(kPastryWireVersion);
  w2.U8(0);  // invalid type
  Reader r2(ByteSpan(w2.bytes().data(), w2.bytes().size()));
  EXPECT_FALSE(DecodeHeader(&r2, &type));

  Writer w3;
  w3.U8(kPastryWireVersion);
  w3.U8(200);  // out of range
  Reader r3(ByteSpan(w3.bytes().data(), w3.bytes().size()));
  EXPECT_FALSE(DecodeHeader(&r3, &type));
}

TEST(PastryMessagesTest, TrailingGarbageRejected) {
  KeepAliveMsg msg;
  msg.sender = RandomDesc();
  Bytes wire = EncodeMessage(msg);
  wire.push_back(0xee);
  Reader r(ByteSpan(wire.data(), wire.size()));
  PastryMsgType type;
  ASSERT_TRUE(DecodeHeader(&r, &type));
  KeepAliveMsg out;
  EXPECT_FALSE(DecodeBodyStrict(&r, &out));
}

TEST(PastryMessagesTest, DescriptorListRejectsLyingCount) {
  Writer w;
  w.U32(1000000);  // claims a million descriptors
  w.U32(0);
  Reader r(ByteSpan(w.bytes().data(), w.bytes().size()));
  std::vector<NodeDescriptor> list;
  EXPECT_FALSE(DecodeDescriptorList(&r, &list));
}

TEST(PastryMessagesTest, FuzzRandomBytesNeverCrash) {
  Rng rng(31337);
  for (int trial = 0; trial < 2000; ++trial) {
    Bytes wire = rng.RandomBytes(rng.UniformU64(128));
    Reader r(ByteSpan(wire.data(), wire.size()));
    PastryMsgType type;
    if (!DecodeHeader(&r, &type)) {
      continue;
    }
    // Attempt decode as the named type; must never crash.
    switch (type) {
      case PastryMsgType::kRoute: {
        RouteMsg m;
        (void)DecodeBodyStrict(&r, &m);
        break;
      }
      case PastryMsgType::kJoinRows: {
        JoinRowsMsg m;
        (void)DecodeBodyStrict(&r, &m);
        break;
      }
      default: {
        AppDirectMsg m;
        (void)DecodeBodyStrict(&r, &m);
        break;
      }
    }
  }
}

}  // namespace
}  // namespace past
