// Focused PastryNode behavior tests: replica-aware routing, per-hop ack
// re-routing, death quarantine, and statistics.
#include <gtest/gtest.h>

#include "src/pastry/overlay.h"

namespace past {
namespace {

struct RecApp : public PastryApp {
  std::vector<DeliverContext> delivered;
  void Deliver(const DeliverContext& ctx, ByteSpan) override {
    delivered.push_back(ctx);
  }
};

struct Net {
  explicit Net(int n, uint64_t seed, SimTime keep_alive = 0) {
    OverlayOptions opts;
    opts.seed = seed;
    opts.pastry.keep_alive_period = keep_alive;
    opts.pastry.failure_timeout = 3 * kMicrosPerSecond;
    opts.pastry.death_quarantine = 6 * kMicrosPerSecond;
    overlay = std::make_unique<Overlay>(opts);
    overlay->Build(n);
    apps.resize(overlay->size());
    for (size_t i = 0; i < overlay->size(); ++i) {
      overlay->node(i)->SetApp(&apps[i]);
    }
  }

  // Returns the single node that delivered, or nullptr.
  PastryNode* WhoDelivered() {
    PastryNode* result = nullptr;
    for (size_t i = 0; i < apps.size(); ++i) {
      if (!apps[i].delivered.empty()) {
        EXPECT_EQ(result, nullptr) << "duplicate delivery";
        result = overlay->node(i);
        apps[i].delivered.clear();
      }
    }
    return result;
  }

  std::unique_ptr<Overlay> overlay;
  std::vector<RecApp> apps;
};

TEST(ReplicaRoutingTest, DeliversAtOneOfKClosest) {
  Net net(200, 71);
  for (int trial = 0; trial < 100; ++trial) {
    U128 key = net.overlay->RandomKey();
    // Global truth: the 5 ring-closest nodes.
    std::vector<std::pair<U128, PastryNode*>> ranked;
    for (size_t i = 0; i < net.overlay->size(); ++i) {
      ranked.emplace_back(net.overlay->node(i)->id().RingDistance(key),
                          net.overlay->node(i));
    }
    std::sort(ranked.begin(), ranked.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    net.overlay->RandomLiveNode()->Route(key, 1, {}, /*replica_k=*/5);
    net.overlay->RunAll();
    PastryNode* deliverer = net.WhoDelivered();
    ASSERT_NE(deliverer, nullptr);
    bool in_top5 = false;
    for (int i = 0; i < 5; ++i) {
      in_top5 |= ranked[static_cast<size_t>(i)].second == deliverer;
    }
    EXPECT_TRUE(in_top5) << "delivered outside the replica set, key "
                         << key.ToHex();
  }
}

TEST(ReplicaRoutingTest, ReplicaKOneMatchesExactRouting) {
  Net net(150, 73);
  for (int trial = 0; trial < 50; ++trial) {
    U128 key = net.overlay->RandomKey();
    PastryNode* expected = net.overlay->GloballyClosestLiveNode(key);
    net.overlay->RandomLiveNode()->Route(key, 1, {}, /*replica_k=*/1);
    net.overlay->RunAll();
    EXPECT_EQ(net.WhoDelivered(), expected);
  }
}

TEST(ReplicaRoutingTest, PrefersProximallyCloseReplica) {
  Net net(400, 79);
  // Statistically, replica-aware delivery should land on the client-nearest
  // replica much more often than 1/5 of the time.
  int nearest_hits = 0, classified = 0;
  Rng rng(5);
  for (int trial = 0; trial < 150; ++trial) {
    U128 key = net.overlay->RandomKey();
    PastryNode* client = net.overlay->node(rng.PickIndex(net.overlay->size()));
    std::vector<std::pair<U128, PastryNode*>> ranked;
    for (size_t i = 0; i < net.overlay->size(); ++i) {
      ranked.emplace_back(net.overlay->node(i)->id().RingDistance(key),
                          net.overlay->node(i));
    }
    std::sort(ranked.begin(), ranked.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    std::vector<PastryNode*> replicas;
    for (int i = 0; i < 5; ++i) {
      replicas.push_back(ranked[static_cast<size_t>(i)].second);
    }
    client->Route(key, 1, {}, 5);
    net.overlay->RunAll();
    PastryNode* deliverer = net.WhoDelivered();
    if (deliverer == nullptr) {
      continue;
    }
    PastryNode* proximally_nearest = nullptr;
    double best = 0;
    for (PastryNode* r : replicas) {
      double d = net.overlay->network().Proximity(client->addr(), r->addr());
      if (proximally_nearest == nullptr || d < best) {
        proximally_nearest = r;
        best = d;
      }
    }
    ++classified;
    nearest_hits += deliverer == proximally_nearest ? 1 : 0;
  }
  ASSERT_GT(classified, 100);
  EXPECT_GT(static_cast<double>(nearest_hits) / classified, 0.45);
}

TEST(PerHopAckTest, ReroutesAroundSilentlyDeadHop) {
  Net net(150, 83);
  // Fail a set of nodes with NO repair time and NO heartbeats: only the
  // per-hop ack timeout can save messages that would transit them.
  for (int i = 0; i < 20; ++i) {
    net.overlay->node(static_cast<size_t>(3 + i * 7))->Fail();
  }
  int delivered = 0;
  uint64_t reroutes_before = 0;
  for (size_t i = 0; i < net.overlay->size(); ++i) {
    reroutes_before += net.overlay->node(i)->stats().reroutes;
  }
  const int kQueries = 50;
  for (int q = 0; q < kQueries; ++q) {
    U128 key = net.overlay->RandomKey();
    PastryNode* expected = net.overlay->GloballyClosestLiveNode(key);
    net.overlay->RandomLiveNode()->Route(key, 1, {});
    net.overlay->Run(20 * kMicrosPerSecond);
    for (size_t i = 0; i < net.apps.size(); ++i) {
      for (auto& ctx : net.apps[i].delivered) {
        if (ctx.key == key && net.overlay->node(i) == expected) {
          ++delivered;
        }
      }
      net.apps[i].delivered.clear();
    }
  }
  EXPECT_GE(delivered, kQueries - 2);
  uint64_t reroutes_after = 0;
  for (size_t i = 0; i < net.overlay->size(); ++i) {
    reroutes_after += net.overlay->node(i)->stats().reroutes;
  }
  EXPECT_GT(reroutes_after, reroutes_before) << "some hops must have re-routed";
}

TEST(DeathQuarantineTest, StaleGossipCannotResurrectFailedNode) {
  Net net(60, 89, /*keep_alive=*/1 * kMicrosPerSecond);
  PastryNode* victim = net.overlay->node(30);
  NodeId victim_id = victim->id();
  victim->Fail();
  net.overlay->Run(30 * kMicrosPerSecond);
  // Converged: nobody holds the victim.
  for (size_t i = 0; i < net.overlay->size(); ++i) {
    PastryNode* node = net.overlay->node(i);
    if (node->active()) {
      ASSERT_FALSE(node->leaf_set().Contains(victim_id));
    }
  }
  // A genuine rejoin (which announces itself) IS accepted again.
  victim->Recover(net.overlay->node(0)->addr());
  net.overlay->Run(30 * kMicrosPerSecond);
  ASSERT_TRUE(victim->active());
  int holders = 0;
  for (size_t i = 0; i < net.overlay->size(); ++i) {
    PastryNode* node = net.overlay->node(i);
    if (node != victim && node->active() && node->leaf_set().Contains(victim_id)) {
      ++holders;
    }
  }
  EXPECT_GT(holders, 10);
}

TEST(StatsTest, CountersTrackActivity) {
  Net net(50, 97);
  PastryNode* src = net.overlay->node(5);
  uint64_t sent_before = src->stats().msgs_sent;
  for (int i = 0; i < 10; ++i) {
    src->Route(net.overlay->RandomKey(), 1, {});
    net.overlay->RunAll();
  }
  EXPECT_GT(src->stats().msgs_sent, sent_before);
  EXPECT_GT(src->stats().routed_seen, 0u);
  uint64_t total_delivered = 0;
  for (size_t i = 0; i < net.overlay->size(); ++i) {
    total_delivered += net.overlay->node(i)->stats().delivered;
  }
  EXPECT_EQ(total_delivered, 10u);
  src->ResetStats();
  EXPECT_EQ(src->stats().msgs_sent, 0u);
}

TEST(MaxHopGuardTest, HopCountsStayWellBelowCap) {
  Net net(300, 101);
  for (int i = 0; i < 100; ++i) {
    net.overlay->RandomLiveNode()->Route(net.overlay->RandomKey(), 1, {});
    net.overlay->RunAll();
  }
  for (auto& app : net.apps) {
    for (auto& ctx : app.delivered) {
      EXPECT_LT(ctx.hops, 10);
    }
  }
}

}  // namespace
}  // namespace past
