// Property tests of RoutingTable against its slot-placement contract, across
// seeds and digit widths.
#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/pastry/routing_table.h"

namespace past {
namespace {

struct TableCase {
  uint64_t seed;
  int b;
};

class RoutingTableProperty : public ::testing::TestWithParam<TableCase> {};

TEST_P(RoutingTableProperty, EveryOccupantSatisfiesItsSlotContract) {
  const TableCase& c = GetParam();
  Rng rng(c.seed);
  PastryConfig config;
  config.b = c.b;
  NodeId self = rng.NextU128();
  RoutingTable table(self, config, nullptr);
  for (int i = 0; i < 2000; ++i) {
    table.MaybeAdd(NodeDescriptor{rng.NextU128(), static_cast<NodeAddr>(i + 1)});
  }
  size_t counted = 0;
  for (int row = 0; row < table.rows(); ++row) {
    for (int col = 0; col < table.cols(); ++col) {
      auto entry = table.Get(row, col);
      if (!entry.has_value()) {
        continue;
      }
      ++counted;
      // Occupant of (row, col) shares exactly `row` digits with self and its
      // next digit is `col` (never self's own digit).
      EXPECT_EQ(entry->id.SharedPrefixLength(self, config.b), row);
      EXPECT_EQ(entry->id.Digit(row, config.b), col);
      EXPECT_NE(col, self.Digit(row, config.b));
    }
  }
  EXPECT_EQ(counted, table.EntryCount());
}

TEST_P(RoutingTableProperty, EntryForKeyAlwaysMakesPrefixProgress) {
  const TableCase& c = GetParam();
  Rng rng(c.seed ^ 0xbeef);
  PastryConfig config;
  config.b = c.b;
  NodeId self = rng.NextU128();
  RoutingTable table(self, config, nullptr);
  for (int i = 0; i < 3000; ++i) {
    table.MaybeAdd(NodeDescriptor{rng.NextU128(), static_cast<NodeAddr>(i + 1)});
  }
  for (int trial = 0; trial < 300; ++trial) {
    U128 key = rng.NextU128();
    auto hop = table.EntryForKey(key);
    if (!hop.has_value()) {
      continue;
    }
    // The paper's invariant: the next hop shares a strictly longer prefix
    // with the key than this node does.
    EXPECT_GT(hop->id.SharedPrefixLength(key, config.b),
              self.SharedPrefixLength(key, config.b));
  }
}

TEST_P(RoutingTableProperty, RemoveIsExactInverseOfOccupancy) {
  const TableCase& c = GetParam();
  Rng rng(c.seed ^ 0xf00d);
  PastryConfig config;
  config.b = c.b;
  NodeId self = rng.NextU128();
  RoutingTable table(self, config, nullptr);
  std::vector<NodeDescriptor> added;
  for (int i = 0; i < 500; ++i) {
    NodeDescriptor d{rng.NextU128(), static_cast<NodeAddr>(i + 1)};
    if (table.MaybeAdd(d)) {
      added.push_back(d);
    }
  }
  // Remove everything that still occupies a slot; the table must end empty.
  for (const NodeDescriptor& d : table.Entries()) {
    auto vacated = table.RemoveNode(d.id);
    EXPECT_EQ(vacated.size(), 1u);
  }
  EXPECT_EQ(table.EntryCount(), 0u);
  EXPECT_EQ(table.PopulatedRows(), 0);
}

INSTANTIATE_TEST_SUITE_P(Cases, RoutingTableProperty,
                         ::testing::Values(TableCase{1, 4}, TableCase{2, 4},
                                           TableCase{3, 2}, TableCase{4, 8},
                                           TableCase{5, 1}));

}  // namespace
}  // namespace past
