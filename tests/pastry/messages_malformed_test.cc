// Malformed-input coverage for the Pastry wire codec: every strict prefix of
// a valid message must be rejected, as must trailing garbage and absurd
// length prefixes. Complements the round-trip tests in messages_test.cc and
// the deterministic fuzzer in tests/fuzz/fuzz_pastry_messages.cc.
#include "src/pastry/messages.h"

#include <gtest/gtest.h>

namespace past {
namespace {

NodeDescriptor Desc(uint64_t tag) {
  return NodeDescriptor{U128(tag, ~tag), static_cast<NodeAddr>(tag)};
}

RouteMsg MakeRouteMsg() {
  RouteMsg msg;
  msg.key = U128(0xaaaa, 0xbbbb);
  msg.source = Desc(1);
  msg.app_type = 7;
  msg.seq = 42;
  msg.hops = 2;
  msg.replica_k = 3;
  msg.distance = 55.25;
  msg.path = {1, 2};
  msg.trace = {{1, RouteRule::kLeafSet, 10.0},
               {2, RouteRule::kRoutingTable, 20.0}};
  msg.payload = {9, 8, 7};
  return msg;
}

template <typename M>
bool DecodeWire(ByteSpan wire, M* out) {
  Reader r(wire);
  PastryMsgType type;
  if (!DecodeHeader(&r, &type) || type != M::kType) {
    return false;
  }
  return DecodeBodyStrict(&r, out);
}

TEST(PastryMalformedTest, EveryStrictPrefixFails) {
  Bytes wire = EncodeMessage(MakeRouteMsg());
  for (size_t len = 0; len < wire.size(); ++len) {
    RouteMsg out;
    EXPECT_FALSE(DecodeWire(ByteSpan(wire.data(), len), &out))
        << "prefix of length " << len << " decoded";
  }
  RouteMsg out;
  EXPECT_TRUE(DecodeWire(ByteSpan(wire.data(), wire.size()), &out));
}

TEST(PastryMalformedTest, TrailingByteFailsStrictDecode) {
  Bytes wire = EncodeMessage(MakeRouteMsg());
  wire.push_back(0x00);
  RouteMsg out;
  EXPECT_FALSE(DecodeWire(ByteSpan(wire.data(), wire.size()), &out));
}

TEST(PastryMalformedTest, EveryStrictPrefixFailsForJoinRows) {
  JoinRowsMsg msg;
  msg.sender = Desc(3);
  msg.row_indices = {0, 5};
  msg.rows = {{Desc(4), Desc(5)}, {Desc(6)}};
  Bytes wire = EncodeMessage(msg);
  for (size_t len = 0; len < wire.size(); ++len) {
    JoinRowsMsg out;
    EXPECT_FALSE(DecodeWire(ByteSpan(wire.data(), len), &out))
        << "prefix of length " << len << " decoded";
  }
  JoinRowsMsg out;
  EXPECT_TRUE(DecodeWire(ByteSpan(wire.data(), wire.size()), &out));
}

TEST(PastryMalformedTest, AbsurdListCountFailsWithoutAllocating) {
  // Header + key + source descriptor + app_type/seq/hops/replica_k/distance,
  // then a path-count prefix claiming 2^32-1 entries with no bytes behind it.
  RouteMsg msg = MakeRouteMsg();
  msg.path.clear();
  msg.trace.clear();
  msg.payload.clear();
  msg.hops = 0;
  Bytes wire = EncodeMessage(msg);
  // The empty path's count prefix is the u32 right after the fixed fields;
  // locate it by re-encoding with one path entry and diffing sizes.
  RouteMsg with_one = msg;
  with_one.path = {7};
  Bytes wire_one = EncodeMessage(with_one);
  ASSERT_GT(wire_one.size(), wire.size());
  // Find the first byte where the encodings diverge: that is inside the
  // path-count field.
  size_t diverge = 0;
  while (diverge < wire.size() && wire[diverge] == wire_one[diverge]) {
    ++diverge;
  }
  ASSERT_LT(diverge, wire.size());
  size_t count_start = diverge < 3 ? 0 : diverge - 3;
  for (size_t i = count_start; i < count_start + 4 && i < wire.size(); ++i) {
    wire[i] = 0xff;
  }
  RouteMsg out;
  EXPECT_FALSE(DecodeWire(ByteSpan(wire.data(), wire.size()), &out));
}

TEST(PastryMalformedTest, UnknownVersionAndTypeRejected) {
  Bytes wire = EncodeMessage(MakeRouteMsg());
  Bytes bad_version = wire;
  bad_version[0] = kPastryWireVersion + 1;
  Reader r1(ByteSpan(bad_version.data(), bad_version.size()));
  PastryMsgType type;
  EXPECT_FALSE(DecodeHeader(&r1, &type));

  Bytes garbage = {0xde, 0xad, 0xbe, 0xef, 0x00, 0x01, 0x02};
  Reader r2(ByteSpan(garbage.data(), garbage.size()));
  EXPECT_FALSE(DecodeHeader(&r2, &type));
}

}  // namespace
}  // namespace past
