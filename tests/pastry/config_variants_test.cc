// Routing correctness must hold across the whole PastryConfig parameter
// space the paper discusses: digit widths b, leaf-set sizes l, locality and
// randomization switches, and every proximity topology.
#include <gtest/gtest.h>

#include "src/pastry/overlay.h"

namespace past {
namespace {

struct VariantApp : public PastryApp {
  int delivered = 0;
  U128 last_key;
  void Deliver(const DeliverContext& ctx, ByteSpan) override {
    ++delivered;
    last_key = ctx.key;
  }
};

struct VariantParams {
  int b;
  int leaf_set_size;
  bool locality;
  bool randomized;
  TopologyKind topology;
};

class ConfigVariants : public ::testing::TestWithParam<VariantParams> {};

TEST_P(ConfigVariants, RoutingCorrectAndStateBounded) {
  const VariantParams& p = GetParam();
  OverlayOptions opts;
  opts.seed = 4000 + static_cast<uint64_t>(p.b * 100 + p.leaf_set_size);
  opts.pastry.b = p.b;
  opts.pastry.leaf_set_size = p.leaf_set_size;
  opts.pastry.locality_aware = p.locality;
  opts.pastry.randomized_routing = p.randomized;
  opts.pastry.keep_alive_period = 0;
  opts.topology = p.topology;
  opts.nearest_bootstrap = p.locality;
  Overlay overlay(opts);
  overlay.Build(120);

  std::vector<VariantApp> apps(overlay.size());
  for (size_t i = 0; i < overlay.size(); ++i) {
    overlay.node(i)->SetApp(&apps[i]);
  }
  for (int t = 0; t < 60; ++t) {
    U128 key = overlay.RandomKey();
    PastryNode* expected = overlay.GloballyClosestLiveNode(key);
    int before = apps[expected->addr()].delivered;
    overlay.RandomLiveNode()->Route(key, 1, {});
    overlay.RunAll();
    ASSERT_EQ(apps[expected->addr()].delivered, before + 1)
        << "b=" << p.b << " l=" << p.leaf_set_size << " key=" << key.ToHex();
  }
  // Per-node state respects the configured shapes.
  for (size_t i = 0; i < overlay.size(); ++i) {
    PastryNode* node = overlay.node(i);
    EXPECT_LE(node->leaf_set().size(),
              static_cast<size_t>(p.leaf_set_size));
    EXPECT_EQ(node->routing_table().rows(), 128 / p.b);
    EXPECT_EQ(node->routing_table().cols(), 1 << p.b);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ConfigVariants,
    ::testing::Values(
        VariantParams{2, 16, true, false, TopologyKind::kSphere},
        VariantParams{8, 32, true, false, TopologyKind::kSphere},
        VariantParams{4, 8, true, false, TopologyKind::kSphere},
        VariantParams{4, 32, false, false, TopologyKind::kSphere},
        VariantParams{4, 32, true, true, TopologyKind::kPlane},
        VariantParams{4, 16, true, false, TopologyKind::kClustered},
        VariantParams{1, 8, true, false, TopologyKind::kPlane}));

TEST(ConfigVariantsTest, DigitWidthControlsHopStateTradeoff) {
  // Larger b -> fewer hops, bigger tables (HotOS: b is the knob).
  double hops_by_b[2];
  double state_by_b[2];
  int idx = 0;
  for (int b : {2, 8}) {
    OverlayOptions opts;
    opts.seed = 4321;
    opts.pastry.b = b;
    opts.pastry.keep_alive_period = 0;
    Overlay overlay(opts);
    overlay.Build(250);
    std::vector<VariantApp> apps(overlay.size());
    for (size_t i = 0; i < overlay.size(); ++i) {
      overlay.node(i)->SetApp(&apps[i]);
    }
    // Hop counts are reported through DeliverContext; sample keys.
    double hops = 0;
    int delivered = 0;
    struct HopApp : public PastryApp {
      double hops = 0;
      int count = 0;
      void Deliver(const DeliverContext& ctx, ByteSpan) override {
        hops += ctx.hops;
        ++count;
      }
    };
    std::vector<HopApp> hop_apps(overlay.size());
    for (size_t i = 0; i < overlay.size(); ++i) {
      overlay.node(i)->SetApp(&hop_apps[i]);
    }
    for (int t = 0; t < 100; ++t) {
      overlay.RandomLiveNode()->Route(overlay.RandomKey(), 1, {});
      overlay.RunAll();
    }
    for (auto& app : hop_apps) {
      hops += app.hops;
      delivered += app.count;
    }
    double state = 0;
    for (size_t i = 0; i < overlay.size(); ++i) {
      state += static_cast<double>(overlay.node(i)->routing_table().EntryCount());
    }
    hops_by_b[idx] = hops / delivered;
    state_by_b[idx] = state / static_cast<double>(overlay.size());
    ++idx;
  }
  EXPECT_GT(hops_by_b[0], hops_by_b[1]);    // b=2 takes more hops
  EXPECT_LT(state_by_b[0], state_by_b[1]);  // ...with smaller tables
}

}  // namespace
}  // namespace past
