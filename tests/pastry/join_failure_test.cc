// Tests of Pastry's self-organization: join cost and invariants, failure
// detection and leaf-set repair, routing around failed and malicious nodes,
// and node recovery via the last known leaf set.
#include <cmath>

#include <gtest/gtest.h>

#include "src/pastry/overlay.h"

namespace past {
namespace {

struct CountingApp : public PastryApp {
  int delivered = 0;
  int leaf_changes = 0;
  void Deliver(const DeliverContext&, ByteSpan) override { ++delivered; }
  void OnLeafSetChanged() override { ++leaf_changes; }
};

OverlayOptions FailureOptions(uint64_t seed) {
  OverlayOptions opts;
  opts.seed = seed;
  // Heartbeats on, tightened for test speed.
  opts.pastry.keep_alive_period = 1 * kMicrosPerSecond;
  opts.pastry.failure_timeout = 3 * kMicrosPerSecond;
  opts.pastry.death_quarantine = 6 * kMicrosPerSecond;
  opts.pastry.ack_timeout = 800 * kMicrosPerMilli;
  return opts;
}

TEST(JoinTest, JoinCostScalesLogarithmically) {
  OverlayOptions opts;
  opts.seed = 5;
  opts.pastry.keep_alive_period = 0;
  Overlay overlay(opts);
  overlay.Build(20);

  // Measure network messages for joins into a small vs larger overlay; the
  // per-join cost should grow slowly (O(log N)), not linearly.
  uint64_t before_small = overlay.network().stats().sent;
  overlay.AddNode();
  uint64_t cost_small = overlay.network().stats().sent - before_small;

  overlay.Build(200);
  uint64_t before_large = overlay.network().stats().sent;
  overlay.AddNode();
  uint64_t cost_large = overlay.network().stats().sent - before_large;

  EXPECT_GT(cost_small, 0u);
  // 10x more nodes must cost far less than 10x more messages.
  EXPECT_LT(cost_large, cost_small * 5);
}

TEST(JoinTest, NewNodeIsImmediatelyRoutable) {
  OverlayOptions opts;
  opts.seed = 7;
  opts.pastry.keep_alive_period = 0;
  Overlay overlay(opts);
  overlay.Build(100);

  PastryNode* fresh = overlay.AddNode();
  CountingApp app;
  fresh->SetApp(&app);
  // Routing to the new node's own id from anywhere must reach it.
  for (int i = 0; i < 10; ++i) {
    overlay.RandomLiveNode()->Route(fresh->id(), 1, {});
  }
  overlay.RunAll();
  EXPECT_EQ(app.delivered, 10);
}

TEST(JoinTest, JoinNotifiesExistingNodesLeafSets) {
  OverlayOptions opts;
  opts.seed = 9;
  opts.pastry.keep_alive_period = 0;
  Overlay overlay(opts);
  overlay.Build(50);
  PastryNode* fresh = overlay.AddNode();
  // The l/2 true ring neighbors on each side must have folded the new node
  // into their leaf sets.
  std::vector<std::pair<U128, size_t>> by_offset;  // up-offset from fresh
  for (size_t i = 0; i + 1 < overlay.size(); ++i) {
    by_offset.emplace_back(overlay.node(i)->id().Sub(fresh->id()), i);
  }
  std::sort(by_offset.begin(), by_offset.end());
  const int half = fresh->config().leaf_set_size / 2;
  int missing = 0;
  for (int s = 0; s < half; ++s) {
    // s-th successor and s-th predecessor of the fresh node.
    size_t succ = by_offset[static_cast<size_t>(s)].second;
    size_t pred = by_offset[by_offset.size() - 1 - static_cast<size_t>(s)].second;
    missing += overlay.node(succ)->leaf_set().Contains(fresh->id()) ? 0 : 1;
    missing += overlay.node(pred)->leaf_set().Contains(fresh->id()) ? 0 : 1;
  }
  EXPECT_LE(missing, 1);
}

TEST(JoinTest, JoinRetriesAfterLostRequest) {
  OverlayOptions opts;
  opts.seed = 11;
  opts.network.loss_rate = 0.2;  // lossy network
  opts.pastry.keep_alive_period = 0;
  Overlay overlay(opts);
  overlay.Build(40);  // joins must all complete despite loss (via retry)
  for (size_t i = 0; i < overlay.size(); ++i) {
    EXPECT_TRUE(overlay.node(i)->active());
  }
}

TEST(FailureTest, LeafSetsHealAfterCrash) {
  Overlay overlay(FailureOptions(13));
  overlay.Build(60);
  // Pick a victim and snapshot who holds it.
  PastryNode* victim = overlay.node(30);
  NodeId victim_id = victim->id();
  victim->Fail();
  overlay.Run(30 * kMicrosPerSecond);
  for (size_t i = 0; i < overlay.size(); ++i) {
    PastryNode* node = overlay.node(i);
    if (node->active()) {
      EXPECT_FALSE(node->leaf_set().Contains(victim_id))
          << "node " << i << " still holds the failed node";
    }
  }
}

TEST(FailureTest, LeafSetsRefillAfterCrash) {
  Overlay overlay(FailureOptions(17));
  overlay.Build(80);
  overlay.node(10)->Fail();
  overlay.node(20)->Fail();
  overlay.Run(40 * kMicrosPerSecond);
  PastryConfig config;
  // Leaf sets must be full again (N-3 >> l/2 per side).
  for (size_t i = 0; i < overlay.size(); ++i) {
    PastryNode* node = overlay.node(i);
    if (node->active()) {
      EXPECT_TRUE(node->leaf_set().Complete()) << "node " << i;
      (void)config;
    }
  }
}

TEST(FailureTest, RoutingSurvivesFailures) {
  Overlay overlay(FailureOptions(19));
  overlay.Build(100);
  // Kill 10% of nodes.
  for (int i = 0; i < 10; ++i) {
    overlay.node(static_cast<size_t>(i * 7 + 3))->Fail();
  }
  overlay.Run(40 * kMicrosPerSecond);  // allow detection + repair

  std::vector<CountingApp> apps(overlay.size());
  for (size_t i = 0; i < overlay.size(); ++i) {
    overlay.node(i)->SetApp(&apps[i]);
  }
  int correct = 0;
  const int lookups = 60;
  for (int t = 0; t < lookups; ++t) {
    U128 key = overlay.RandomKey();
    PastryNode* expected = overlay.GloballyClosestLiveNode(key);
    int before = apps[expected->addr()].delivered;
    overlay.RandomLiveNode()->Route(key, 1, {});
    overlay.Run(10 * kMicrosPerSecond);
    if (apps[expected->addr()].delivered > before) {
      ++correct;
    }
  }
  EXPECT_GE(correct, lookups - 2);
}

TEST(FailureTest, PerHopAcksRerouteAroundSilentlyDeadHop) {
  // Fail nodes *without* giving the overlay time to repair; per-hop acks must
  // still get messages through by detecting dead hops inline.
  Overlay overlay(FailureOptions(23));
  overlay.Build(100);
  std::vector<CountingApp> apps(overlay.size());
  for (size_t i = 0; i < overlay.size(); ++i) {
    overlay.node(i)->SetApp(&apps[i]);
  }
  for (int i = 0; i < 15; ++i) {
    overlay.node(static_cast<size_t>(i * 6 + 1))->Fail();
  }
  // Immediately route (no repair window).
  int correct = 0;
  const int lookups = 40;
  for (int t = 0; t < lookups; ++t) {
    U128 key = overlay.RandomKey();
    PastryNode* expected = overlay.GloballyClosestLiveNode(key);
    int before = apps[expected->addr()].delivered;
    PastryNode* src = overlay.RandomLiveNode();
    src->Route(key, 1, {});
    overlay.Run(15 * kMicrosPerSecond);
    if (apps[expected->addr()].delivered > before) {
      ++correct;
    }
  }
  EXPECT_GE(correct, lookups * 9 / 10);
}

TEST(FailureTest, RandomizedRetryEvadesMaliciousForwarder) {
  OverlayOptions opts = FailureOptions(29);
  opts.pastry.randomized_routing = true;
  opts.pastry.randomize_epsilon = 0.3;
  opts.pastry.per_hop_acks = false;  // the malicious node acks but drops
  Overlay overlay(opts);
  overlay.Build(80);

  std::vector<CountingApp> apps(overlay.size());
  for (size_t i = 0; i < overlay.size(); ++i) {
    overlay.node(i)->SetApp(&apps[i]);
  }
  // Find a (src, key) pair whose deterministic route transits some node, and
  // make that node malicious.
  PastryNode* src = overlay.node(2);
  U128 key = overlay.RandomKey();
  PastryNode* expected = overlay.GloballyClosestLiveNode(key);
  if (expected == src) {
    key = key.Add(U128(1ULL << 60, 0));
    expected = overlay.GloballyClosestLiveNode(key);
  }

  // The client retries the query up to R times; with randomization, some
  // retry should avoid the malicious hop. Mark ALL direct next-hop candidates
  // except the destination as malicious to force mid-route diversity.
  for (size_t i = 0; i < overlay.size(); ++i) {
    if (overlay.node(i) != src && overlay.node(i) != expected &&
        overlay.rng().Bernoulli(0.15)) {
      overlay.node(i)->SetMalicious(true);
    }
  }
  int before = apps[expected->addr()].delivered;
  bool reached = false;
  for (int retry = 0; retry < 20 && !reached; ++retry) {
    src->Route(key, 1, {});
    overlay.Run(10 * kMicrosPerSecond);
    reached = apps[expected->addr()].delivered > before;
  }
  EXPECT_TRUE(reached) << "randomized retries failed to evade malicious nodes";
}

TEST(RecoveryTest, FailedNodeRejoinsViaLastLeafSet) {
  Overlay overlay(FailureOptions(31));
  overlay.Build(50);
  PastryNode* victim = overlay.node(25);
  victim->Fail();
  overlay.Run(20 * kMicrosPerSecond);
  EXPECT_FALSE(victim->active());

  victim->Recover(overlay.node(0)->addr());
  for (int i = 0; i < 100 && !victim->active(); ++i) {
    overlay.Run(1 * kMicrosPerSecond);
  }
  ASSERT_TRUE(victim->active());
  overlay.Run(20 * kMicrosPerSecond);

  // The recovered node must be routable again.
  CountingApp app;
  victim->SetApp(&app);
  overlay.RandomLiveNode()->Route(victim->id(), 1, {});
  overlay.Run(10 * kMicrosPerSecond);
  EXPECT_EQ(app.delivered, 1);
}

TEST(RecoveryTest, MassiveChurnKeepsOverlayCorrect) {
  Overlay overlay(FailureOptions(37));
  overlay.Build(80);
  Rng churn_rng(99);
  // Alternate failures and joins.
  for (int round = 0; round < 5; ++round) {
    size_t victim = churn_rng.UniformU64(overlay.size());
    if (overlay.node(victim)->active()) {
      overlay.node(victim)->Fail();
    }
    overlay.AddNode();
    overlay.Run(10 * kMicrosPerSecond);
  }
  overlay.Run(40 * kMicrosPerSecond);

  std::vector<CountingApp> apps(overlay.size());
  for (size_t i = 0; i < overlay.size(); ++i) {
    overlay.node(i)->SetApp(&apps[i]);
  }
  int correct = 0;
  const int lookups = 40;
  for (int t = 0; t < lookups; ++t) {
    U128 key = overlay.RandomKey();
    PastryNode* expected = overlay.GloballyClosestLiveNode(key);
    int before = apps[expected->addr()].delivered;
    overlay.RandomLiveNode()->Route(key, 1, {});
    overlay.Run(10 * kMicrosPerSecond);
    if (apps[expected->addr()].delivered > before) {
      ++correct;
    }
  }
  EXPECT_GE(correct, lookups - 2);
}

TEST(FailureTest, EventualDeliveryBoundFromPaper) {
  // Delivery is guaranteed unless floor(l/2) nodes with adjacent ids fail
  // simultaneously. Kill floor(l/2) - 1 = 7 adjacent nodes (l=16 here) and
  // verify keys in that region still resolve.
  OverlayOptions opts = FailureOptions(41);
  opts.pastry.leaf_set_size = 16;
  Overlay overlay(opts);
  overlay.Build(60);

  // Sort nodes by id and kill 7 adjacent ones.
  std::vector<std::pair<U128, size_t>> by_id;
  for (size_t i = 0; i < overlay.size(); ++i) {
    by_id.emplace_back(overlay.node(i)->id(), i);
  }
  std::sort(by_id.begin(), by_id.end());
  const size_t start = 20;
  for (size_t i = 0; i < 7; ++i) {
    overlay.node(by_id[start + i].second)->Fail();
  }
  overlay.Run(40 * kMicrosPerSecond);

  std::vector<CountingApp> apps(overlay.size());
  for (size_t i = 0; i < overlay.size(); ++i) {
    overlay.node(i)->SetApp(&apps[i]);
  }
  // Keys in the dead region must route to the surviving closest node.
  int correct = 0;
  for (int t = 0; t < 20; ++t) {
    U128 key = by_id[start + static_cast<size_t>(t) % 7].first.Add(U128(0, 12345));
    PastryNode* expected = overlay.GloballyClosestLiveNode(key);
    int before = apps[expected->addr()].delivered;
    overlay.RandomLiveNode()->Route(key, 1, {});
    overlay.Run(10 * kMicrosPerSecond);
    if (apps[expected->addr()].delivered > before) {
      ++correct;
    }
  }
  EXPECT_GE(correct, 19);
}

}  // namespace
}  // namespace past
