#include "src/pastry/node_id.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace past {
namespace {

TEST(NodeIdTest, DerivedFromPublicKeyIsDeterministic) {
  Bytes key = ToBytes("some public key bytes");
  EXPECT_EQ(NodeIdFromPublicKey(key), NodeIdFromPublicKey(key));
}

TEST(NodeIdTest, DifferentKeysDifferentIds) {
  EXPECT_NE(NodeIdFromPublicKey(ToBytes("key A")), NodeIdFromPublicKey(ToBytes("key B")));
}

TEST(NodeIdTest, IdsAreUniformlyDistributed) {
  // The paper relies on hash-derived nodeIds covering the id space uniformly;
  // check the top digit distribution over many derived ids.
  Rng rng(5);
  std::vector<int> buckets(16, 0);
  const int n = 4800;
  for (int i = 0; i < n; ++i) {
    Bytes key = rng.RandomBytes(32);
    buckets[NodeIdFromPublicKey(key).Digit(0, 4)]++;
  }
  for (int count : buckets) {
    EXPECT_GT(count, n / 16 / 2);
    EXPECT_LT(count, n / 16 * 2);
  }
}

TEST(NodeDescriptorTest, ValidityTracksAddr) {
  NodeDescriptor d;
  EXPECT_FALSE(d.valid());
  d.addr = 3;
  EXPECT_TRUE(d.valid());
}

TEST(NodeDescriptorTest, ToStringContainsAddr) {
  NodeDescriptor d{U128(0xabcd000000000000ULL, 0), 17};
  std::string s = d.ToString();
  EXPECT_NE(s.find("@17"), std::string::npos);
  EXPECT_NE(s.find("abcd"), std::string::npos);
}

TEST(PastryConfigTest, DerivedQuantities) {
  PastryConfig config;
  EXPECT_EQ(config.b, 4);
  EXPECT_EQ(config.digits(), 32);
  EXPECT_EQ(config.cols(), 16);
  config.b = 2;
  EXPECT_EQ(config.digits(), 64);
  EXPECT_EQ(config.cols(), 4);
}

TEST(PastryConfigTest, PaperStateSizeFormula) {
  // (2^b - 1) * ceil(log_2b N) + 2l for b=4, l=32, N=10^5:
  // ceil(log16(100000)) = 5 -> 15*5 + 64 = 139 entries.
  PastryConfig config;
  double log16_n = std::log(100000.0) / std::log(16.0);
  int expected = (config.cols() - 1) * static_cast<int>(std::ceil(log16_n)) +
                 2 * config.leaf_set_size;
  EXPECT_EQ(expected, 15 * 5 + 64);
}

}  // namespace
}  // namespace past
