#include "src/pastry/node_intern.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/common/rng.h"
#include "src/pastry/node_id.h"

namespace past {
namespace {

NodeDescriptor Desc(uint64_t id_lo, NodeAddr addr) {
  return NodeDescriptor{U128(0, id_lo), addr};
}

TEST(NodeInternTest, InternIsIdempotent) {
  NodeInternTable table;
  NodeInternTable::Handle a = table.Intern(Desc(1, 10));
  NodeInternTable::Handle b = table.Intern(Desc(1, 10));
  EXPECT_EQ(a, b);
  EXPECT_EQ(table.size(), 1u);
}

TEST(NodeInternTest, HandleZeroIsReservedForEmpty) {
  NodeInternTable table;
  NodeInternTable::Handle h = table.Intern(Desc(1, 10));
  EXPECT_NE(h, NodeInternTable::kNoHandle);
  // The sentinel resolves to the invalid descriptor, never a real node.
  EXPECT_FALSE(table.Get(NodeInternTable::kNoHandle).valid());
}

TEST(NodeInternTest, ResolvesIdAndAddr) {
  NodeInternTable table;
  NodeDescriptor d = Desc(42, 7);
  NodeInternTable::Handle h = table.Intern(d);
  EXPECT_EQ(table.id(h), d.id);
  EXPECT_EQ(table.addr(h), d.addr);
  EXPECT_EQ(table.Get(h).id, d.id);
  EXPECT_EQ(table.Get(h).addr, d.addr);
}

TEST(NodeInternTest, RejoinAtNewAddressGetsNewHandle) {
  NodeInternTable table;
  NodeInternTable::Handle old_h = table.Intern(Desc(42, 7));
  NodeInternTable::Handle new_h = table.Intern(Desc(42, 8));
  EXPECT_NE(old_h, new_h);
  // The stale pair stays resolvable for as long as anything still holds it.
  EXPECT_EQ(table.addr(old_h), 7u);
  EXPECT_EQ(table.addr(new_h), 8u);
  EXPECT_EQ(table.size(), 2u);
}

TEST(NodeInternTest, HandlesAreDenseAndStable) {
  NodeInternTable table;
  Rng rng(99);
  std::vector<NodeDescriptor> descs;
  std::vector<NodeInternTable::Handle> handles;
  for (int i = 0; i < 1000; ++i) {
    descs.push_back(NodeDescriptor{rng.NextU128(), static_cast<NodeAddr>(i + 1)});
    handles.push_back(table.Intern(descs.back()));
  }
  EXPECT_EQ(table.size(), 1000u);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(table.Intern(descs[static_cast<size_t>(i)]),
              handles[static_cast<size_t>(i)]);
    EXPECT_EQ(table.id(handles[static_cast<size_t>(i)]),
              descs[static_cast<size_t>(i)].id);
  }
}

TEST(NodeInternTest, ReserveDoesNotChangeContents) {
  NodeInternTable table;
  NodeInternTable::Handle h = table.Intern(Desc(5, 50));
  table.Reserve(100000);
  EXPECT_EQ(table.Intern(Desc(5, 50)), h);
  EXPECT_EQ(table.size(), 1u);
}

TEST(NodeInternTest, MemoryUsageGrowsWithEntries) {
  NodeInternTable small;
  NodeInternTable big;
  Rng rng(7);
  for (int i = 0; i < 4096; ++i) {
    NodeDescriptor d{rng.NextU128(), static_cast<NodeAddr>(i + 1)};
    if (i < 4) {
      small.Intern(d);
    }
    big.Intern(d);
  }
  EXPECT_GT(big.MemoryUsage(), small.MemoryUsage());
  // SoA storage: well under the ~56+ bytes/entry an unordered_map of full
  // descriptors would cost twice over.
  EXPECT_LT(big.MemoryUsage() / 4096, 120u);
}

}  // namespace
}  // namespace past
