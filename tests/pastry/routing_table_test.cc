#include "src/pastry/routing_table.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace past {
namespace {

NodeId IdFromHex(const std::string& hex32) {
  U128 v;
  EXPECT_TRUE(U128::FromHex(hex32, &v));
  return v;
}

class RoutingTableTest : public ::testing::Test {
 protected:
  RoutingTableTest()
      : self_(IdFromHex("00000000000000000000000000000000")),
        table_(self_, config_, [this](NodeAddr a) { return proximity_[a]; }) {
    proximity_.resize(1000, 1.0);
  }

  NodeDescriptor Desc(const std::string& hex32, NodeAddr addr, double prox = 1.0) {
    if (addr >= proximity_.size()) {
      proximity_.resize(addr + 1, 1.0);
    }
    proximity_[addr] = prox;
    return NodeDescriptor{IdFromHex(hex32), addr};
  }

  PastryConfig config_;
  NodeId self_;
  std::vector<double> proximity_;
  RoutingTable table_;
};

TEST_F(RoutingTableTest, StartsEmpty) {
  EXPECT_EQ(table_.EntryCount(), 0u);
  EXPECT_EQ(table_.PopulatedRows(), 0);
  EXPECT_EQ(table_.rows(), 32);
  EXPECT_EQ(table_.cols(), 16);
}

TEST_F(RoutingTableTest, AddPlacesInCorrectSlot) {
  // Shares 0 digits with self (all-zero id); first digit is 'a'.
  NodeDescriptor d = Desc("a0000000000000000000000000000000", 1);
  EXPECT_TRUE(table_.MaybeAdd(d));
  auto got = table_.Get(0, 0xa);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->id, d.id);
}

TEST_F(RoutingTableTest, DeeperPrefixDeeperRow) {
  NodeDescriptor d = Desc("000a0000000000000000000000000000", 2);
  EXPECT_TRUE(table_.MaybeAdd(d));
  EXPECT_TRUE(table_.Get(3, 0xa).has_value());
  EXPECT_EQ(table_.PopulatedRows(), 1);
}

TEST_F(RoutingTableTest, SelfIsIgnored) {
  EXPECT_FALSE(table_.MaybeAdd(NodeDescriptor{self_, 5}));
  EXPECT_EQ(table_.EntryCount(), 0u);
}

TEST_F(RoutingTableTest, InvalidDescriptorIgnored) {
  NodeDescriptor d;
  d.id = IdFromHex("a0000000000000000000000000000000");
  EXPECT_FALSE(table_.MaybeAdd(d));
}

TEST_F(RoutingTableTest, LocalityPrefersCloserNode) {
  NodeDescriptor far = Desc("a0000000000000000000000000000000", 1, /*prox=*/10.0);
  NodeDescriptor near = Desc("a1000000000000000000000000000000", 2, /*prox=*/1.0);
  ASSERT_TRUE(table_.MaybeAdd(far));
  EXPECT_TRUE(table_.MaybeAdd(near));  // replaces: same slot, closer
  EXPECT_EQ(table_.Get(0, 0xa)->id, near.id);
  // A farther candidate does not displace the occupant.
  NodeDescriptor farther = Desc("a2000000000000000000000000000000", 3, /*prox=*/50.0);
  EXPECT_FALSE(table_.MaybeAdd(farther));
  EXPECT_EQ(table_.Get(0, 0xa)->id, near.id);
}

TEST_F(RoutingTableTest, NoLocalityKeepsFirstOccupant) {
  PastryConfig config;
  config.locality_aware = false;
  RoutingTable table(self_, config, nullptr);
  NodeDescriptor first = Desc("a0000000000000000000000000000000", 1, 10.0);
  NodeDescriptor second = Desc("a1000000000000000000000000000000", 2, 1.0);
  EXPECT_TRUE(table.MaybeAdd(first));
  EXPECT_FALSE(table.MaybeAdd(second));
  EXPECT_EQ(table.Get(0, 0xa)->id, first.id);
}

TEST_F(RoutingTableTest, AddressRefreshForSameId) {
  NodeDescriptor d = Desc("a0000000000000000000000000000000", 1);
  ASSERT_TRUE(table_.MaybeAdd(d));
  d.addr = 42;
  EXPECT_TRUE(table_.MaybeAdd(d));
  EXPECT_EQ(table_.Get(0, 0xa)->addr, 42u);
  EXPECT_EQ(table_.EntryCount(), 1u);
}

TEST_F(RoutingTableTest, EntryForKeyUsesSharedPrefixRow) {
  NodeDescriptor d = Desc("00b00000000000000000000000000000", 1);
  ASSERT_TRUE(table_.MaybeAdd(d));
  // Key shares 2 digits with self, third digit is b.
  NodeId key = IdFromHex("00b12345000000000000000000000000");
  auto hop = table_.EntryForKey(key);
  ASSERT_TRUE(hop.has_value());
  EXPECT_EQ(hop->id, d.id);
}

TEST_F(RoutingTableTest, EntryForKeyOwnIdIsEmpty) {
  EXPECT_FALSE(table_.EntryForKey(self_).has_value());
}

TEST_F(RoutingTableTest, RemoveNodeVacatesSlot) {
  NodeDescriptor d = Desc("a0000000000000000000000000000000", 1);
  ASSERT_TRUE(table_.MaybeAdd(d));
  auto vacated = table_.RemoveNode(d.id);
  ASSERT_EQ(vacated.size(), 1u);
  EXPECT_EQ(vacated[0], std::make_pair(0, 0xa));
  EXPECT_FALSE(table_.Get(0, 0xa).has_value());
  EXPECT_EQ(table_.EntryCount(), 0u);
}

TEST_F(RoutingTableTest, RemoveUnknownNodeIsNoop) {
  EXPECT_TRUE(table_.RemoveNode(IdFromHex("ff000000000000000000000000000000")).empty());
}

TEST_F(RoutingTableTest, EntriesAndRowEnumeration) {
  table_.MaybeAdd(Desc("a0000000000000000000000000000000", 1));
  table_.MaybeAdd(Desc("b0000000000000000000000000000000", 2));
  table_.MaybeAdd(Desc("0c000000000000000000000000000000", 3));
  EXPECT_EQ(table_.Entries().size(), 3u);
  EXPECT_EQ(table_.Row(0).size(), 2u);
  EXPECT_EQ(table_.Row(1).size(), 1u);
  EXPECT_EQ(table_.PopulatedRows(), 2);
}

TEST_F(RoutingTableTest, ClearDropsEverything) {
  table_.MaybeAdd(Desc("a0000000000000000000000000000000", 1));
  table_.Clear();
  EXPECT_EQ(table_.EntryCount(), 0u);
  EXPECT_FALSE(table_.Get(0, 0xa).has_value());
}

TEST_F(RoutingTableTest, RandomFillRespectsCapacityBound) {
  Rng rng(9);
  PastryConfig config;
  for (int i = 0; i < 5000; ++i) {
    NodeDescriptor d{rng.NextU128(), static_cast<NodeAddr>(i + 1)};
    table_.MaybeAdd(d);
  }
  // At most (2^b - 1) entries per populated row.
  for (int r = 0; r < table_.rows(); ++r) {
    EXPECT_LE(table_.Row(r).size(), static_cast<size_t>(config.cols() - 1));
  }
  // With 5000 random ids, rows beyond ~log16(5000)+slack stay empty.
  EXPECT_LE(table_.PopulatedRows(), 8);
}

}  // namespace
}  // namespace past
