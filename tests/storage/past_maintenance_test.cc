// Persistence and availability: replica restoration after node failures,
// availability while >= 1 replica lives, caching behavior.
#include <gtest/gtest.h>

#include "tests/storage/past_test_util.h"

namespace past {
namespace {

TEST(PastMaintenanceTest, ReplicasRestoredAfterSingleFailure) {
  PastNetwork net(SmallNetOptions(301));
  net.Build(40);
  PastNode* client = net.node(1);
  auto inserted = net.InsertSync(client, "file", ToBytes("persist me"), 4);
  ASSERT_TRUE(inserted.ok());
  FileId id = inserted.value();

  for (size_t i = 0; i < net.size(); ++i) {
    if (net.node(i)->store().Has(id)) {
      net.CrashNode(i);
      break;
    }
  }
  net.Run(40 * kMicrosPerSecond);
  EXPECT_EQ(net.CountReplicas(id), 4) << "k must be restored after recovery";
}

TEST(PastMaintenanceTest, FileAvailableWhileOneReplicaAlive) {
  PastNetwork net(SmallNetOptions(303));
  net.Build(40);
  PastNode* client = net.node(1);
  Bytes content = ToBytes("survivor");
  auto inserted = net.InsertSync(client, "s", content, 3);
  ASSERT_TRUE(inserted.ok());
  FileId id = inserted.value();

  // Kill replica holders two at a time *quickly* (before repair), leaving one.
  std::vector<size_t> holders;
  for (size_t i = 0; i < net.size(); ++i) {
    if (net.node(i)->store().Has(id)) {
      holders.push_back(i);
    }
  }
  ASSERT_EQ(holders.size(), 3u);
  net.CrashNode(holders[0]);
  net.CrashNode(holders[1]);

  // Lookup right away (clients may need the root's replica-probing path).
  PastNode* reader = net.node(holders[2] == 5 ? 6 : 5);
  auto looked = net.LookupSync(reader, id);
  ASSERT_TRUE(looked.ok()) << StatusCodeName(looked.status());
  EXPECT_EQ(looked.value().content, content);

  // And after the repair window, k is back to 3.
  net.Run(60 * kMicrosPerSecond);
  EXPECT_EQ(net.CountReplicas(id), 3);
}

TEST(PastMaintenanceTest, NewCloserNodeTakesOverReplica) {
  PastNetwork net(SmallNetOptions(305));
  net.Build(30);
  PastNode* client = net.node(2);
  auto inserted = net.InsertSync(client, "handover", ToBytes("x"), 3);
  ASSERT_TRUE(inserted.ok());
  FileId id = inserted.value();

  // Add many nodes; statistically some land closer to the fileId than the
  // current holders, and maintenance should hand the file to them.
  for (int i = 0; i < 30; ++i) {
    net.AddNode();
  }
  net.Run(40 * kMicrosPerSecond);

  // Verify the holders now are the 3 globally closest live nodes.
  std::vector<std::pair<U128, bool>> ranked;
  for (size_t i = 0; i < net.size(); ++i) {
    if (net.node(i)->overlay()->active()) {
      ranked.emplace_back(net.node(i)->overlay()->id().RingDistance(id.Top128()),
                          net.node(i)->store().Has(id));
    }
  }
  std::sort(ranked.begin(), ranked.end());
  int held_in_top3 = 0;
  for (int i = 0; i < 3; ++i) {
    held_in_top3 += ranked[static_cast<size_t>(i)].second ? 1 : 0;
  }
  EXPECT_GE(held_in_top3, 2) << "replicas should migrate toward closest nodes";
  EXPECT_GE(net.CountReplicas(id), 3);
}

TEST(PastMaintenanceTest, MassFailureWithRecoveryKeepsAllFiles) {
  PastNetwork net(SmallNetOptions(307));
  net.Build(50);
  PastNode* client = net.node(0);
  std::vector<FileId> files;
  std::vector<Bytes> contents;
  for (int i = 0; i < 20; ++i) {
    Bytes content = ToBytes("content-" + std::to_string(i));
    auto r = net.InsertSync(client, "mass-" + std::to_string(i), content, 4);
    ASSERT_TRUE(r.ok());
    files.push_back(r.value());
    contents.push_back(content);
  }
  // Kill 10 random non-client nodes (20%), in two waves with a repair gap.
  Rng rng(17);
  int killed = 0;
  for (int wave = 0; wave < 2; ++wave) {
    while (killed < 5 * (wave + 1)) {
      size_t victim = 1 + rng.UniformU64(net.size() - 1);
      if (net.node(victim)->overlay()->active()) {
        net.CrashNode(victim);
        ++killed;
      }
    }
    net.Run(40 * kMicrosPerSecond);
  }
  // Every file must still be readable with correct content.
  for (size_t i = 0; i < files.size(); ++i) {
    auto looked = net.LookupSync(client, files[i]);
    ASSERT_TRUE(looked.ok()) << "file " << i;
    EXPECT_EQ(looked.value().content, contents[i]);
  }
}

TEST(PastMaintenanceTest, CachePushPopulatesPathNode) {
  PastNetworkOptions options = SmallNetOptions(309);
  options.past.cache_push_on_lookup = true;
  options.past.cache_policy = CachePolicy::kGreedyDualSize;
  PastNetwork net(options);
  net.Build(60);
  PastNode* client = net.node(3);
  Bytes content = ToBytes("popular content");
  auto inserted = net.InsertSync(client, "pop", content, 3);
  ASSERT_TRUE(inserted.ok());

  // Repeated lookups from many clients should create cached copies.
  for (size_t i = 0; i < net.size(); i += 4) {
    (void)net.LookupSync(net.node(i), inserted.value());
  }
  net.Run(5 * kMicrosPerSecond);
  size_t cached_copies = 0;
  for (size_t i = 0; i < net.size(); ++i) {
    if (net.node(i)->file_cache().Contains(inserted.value())) {
      ++cached_copies;
    }
  }
  EXPECT_GT(cached_copies, 0u);
}

TEST(PastMaintenanceTest, CachedCopyServesLookupAndIsMarked) {
  PastNetworkOptions options = SmallNetOptions(311);
  PastNetwork net(options);
  net.Build(40);
  PastNode* client = net.node(2);
  Bytes content = ToBytes("cache me");
  auto inserted = net.InsertSync(client, "c", content, 2);
  ASSERT_TRUE(inserted.ok());

  // Drive lookups until one is answered from a cache.
  bool saw_cache_hit = false;
  for (int round = 0; round < 10 && !saw_cache_hit; ++round) {
    for (size_t i = 0; i < net.size() && !saw_cache_hit; i += 3) {
      auto looked = net.LookupSync(net.node(i), inserted.value());
      ASSERT_TRUE(looked.ok());
      EXPECT_EQ(looked.value().content, content);
      saw_cache_hit = looked.value().from_cache;
    }
  }
  EXPECT_TRUE(saw_cache_hit);
}

TEST(PastMaintenanceTest, CacheDisabledMeansNoCachedCopies) {
  PastNetworkOptions options = SmallNetOptions(313);
  options.past.cache_policy = CachePolicy::kNone;
  options.past.cache_on_insert_path = false;
  options.past.cache_push_on_lookup = false;
  PastNetwork net(options);
  net.Build(30);
  PastNode* client = net.node(1);
  auto inserted = net.InsertSync(client, "nc", ToBytes("data"), 2);
  ASSERT_TRUE(inserted.ok());
  for (size_t i = 0; i < net.size(); i += 2) {
    (void)net.LookupSync(net.node(i), inserted.value());
  }
  for (size_t i = 0; i < net.size(); ++i) {
    EXPECT_EQ(net.node(i)->file_cache().entry_count(), 0u);
  }
}

TEST(PastMaintenanceTest, CacheYieldsSpaceToPrimaries) {
  PastNetworkOptions options = SmallNetOptions(315);
  options.default_node_capacity = 3000;
  options.past.policy.t_pri = 1.0;
  options.past.default_replication = 2;
  PastNetwork net(options);
  net.Build(15);
  PastNode* client = net.node(0);
  // Seed caches via inserts (insert-path caching is on by default).
  for (int i = 0; i < 10; ++i) {
    (void)net.InsertSyntheticSync(client, "warm-" + std::to_string(i), 200, 2);
  }
  // Now fill primaries to capacity; cache must shrink, never block storage.
  int stored = 0;
  for (int i = 0; i < 30; ++i) {
    auto r = net.InsertSyntheticSync(client, "press-" + std::to_string(i), 800, 2);
    stored += r.ok() ? 1 : 0;
  }
  EXPECT_GT(stored, 5);
  for (size_t i = 0; i < net.size(); ++i) {
    const PastNode* node = net.node(i);
    EXPECT_LE(node->store().used() + node->file_cache().used(),
              node->store().capacity())
        << "node " << i << " overcommitted its disk";
  }
}

}  // namespace
}  // namespace past
