// Read-only client access points (Section 2.1: "read-only users do not need
// a smartcard"): they can route and look up files with full verification but
// cannot insert, reclaim, or hold replicas.
#include <gtest/gtest.h>

#include "tests/storage/past_test_util.h"

namespace past {
namespace {

class PastReadOnlyTest : public ::testing::Test {
 protected:
  PastReadOnlyTest() : net_(SmallNetOptions(601)) {
    net_.Build(30);
    reader_ = net_.AddReadOnlyClient();
  }

  PastNetwork net_;
  PastNode* reader_;
};

TEST_F(PastReadOnlyTest, HasNoCardAndNoStorage) {
  EXPECT_FALSE(reader_->has_card());
  EXPECT_EQ(reader_->store().capacity(), 0u);
  EXPECT_TRUE(reader_->overlay()->active());
}

TEST_F(PastReadOnlyTest, CanLookupAndVerify) {
  PastNode* writer = net_.node(3);
  Bytes content = ToBytes("public document");
  auto inserted = net_.InsertSync(writer, "doc", content, 3);
  ASSERT_TRUE(inserted.ok());
  auto looked = net_.LookupSync(reader_, inserted.value());
  ASSERT_TRUE(looked.ok());
  EXPECT_EQ(looked.value().content, content);
  EXPECT_TRUE(looked.value().cert.Verify(reader_->broker_key()));
}

TEST_F(PastReadOnlyTest, InsertRefusedLocally) {
  bool done = false;
  StatusCode status = StatusCode::kOk;
  reader_->Insert("nope", ToBytes("x"), 3, [&](Result<FileId> r) {
    done = true;
    status = r.status();
  });
  EXPECT_TRUE(done);  // refused synchronously, no traffic generated
  EXPECT_EQ(status, StatusCode::kNotAuthorized);
}

TEST_F(PastReadOnlyTest, ReclaimRefusedLocally) {
  bool done = false;
  StatusCode status = StatusCode::kOk;
  Rng rng(1);
  reader_->Reclaim(rng.NextU160(), [&](StatusCode s) {
    done = true;
    status = s;
  });
  EXPECT_TRUE(done);
  EXPECT_EQ(status, StatusCode::kNotAuthorized);
}

TEST_F(PastReadOnlyTest, NeverAcceptsReplicas) {
  // Insert many files; none may land on the read-only node even when its id
  // is among the numerically closest.
  PastNode* writer = net_.node(5);
  for (int i = 0; i < 40; ++i) {
    (void)net_.InsertSyntheticSync(writer, "r-" + std::to_string(i), 128, 3);
  }
  EXPECT_EQ(reader_->store().file_count(), 0u);
  EXPECT_EQ(reader_->store().used(), 0u);
}

TEST_F(PastReadOnlyTest, ParticipatesInRoutingAsTransit) {
  // The read-only node is a full overlay member: messages can transit it.
  // (Indirectly verified: lookups from other nodes keep working with it in
  // the overlay, and its own routing state is populated.)
  EXPECT_GT(reader_->overlay()->routing_table().EntryCount(), 0u);
  EXPECT_GT(reader_->overlay()->leaf_set().size(), 0u);
  PastNode* writer = net_.node(7);
  auto inserted = net_.InsertSync(writer, "transit", ToBytes("y"), 2);
  ASSERT_TRUE(inserted.ok());
  auto looked = net_.LookupSync(net_.node(11), inserted.value());
  EXPECT_TRUE(looked.ok());
}

TEST_F(PastReadOnlyTest, MayStillCacheForOthers) {
  // Caching needs no card: a read-only node can hold cached copies (they
  // carry the owner's certificate and are verifiable by anyone).
  PastNode* writer = net_.node(9);
  Bytes content = ToBytes("cacheable");
  auto inserted = net_.InsertSync(writer, "pop", content, 2);
  ASSERT_TRUE(inserted.ok());
  // Reader looks it up; with cache_push_on_lookup the reply path may seed its
  // own cache (client-side caching).
  auto looked = net_.LookupSync(reader_, inserted.value());
  ASSERT_TRUE(looked.ok());
  // A second lookup is served locally from cache if the first one cached it.
  if (reader_->file_cache().Contains(inserted.value())) {
    auto again = net_.LookupSync(reader_, inserted.value());
    ASSERT_TRUE(again.ok());
    EXPECT_TRUE(again.value().from_cache);
  }
}

}  // namespace
}  // namespace past
