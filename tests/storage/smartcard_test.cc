#include "src/storage/smartcard.h"

#include <gtest/gtest.h>

#include "src/crypto/sha256.h"

namespace past {
namespace {

Bytes ContentHash(std::string_view content) {
  Bytes raw = ToBytes(content);
  auto digest = Sha256::Hash(ByteSpan(raw.data(), raw.size()));
  return Bytes(digest.begin(), digest.end());
}

class SmartcardTest : public ::testing::Test {
 protected:
  SmartcardTest() : broker_(7, BrokerOptions{}) {
    card_ = std::move(broker_.IssueCard(1000, 500)).value();
  }

  Result<FileCertificate> Issue(uint64_t size, uint32_t k, uint64_t salt = 1) {
    Bytes hash = ContentHash("x");
    return card_->IssueFileCertificate("f", size, hash, k, salt, 10);
  }

  Broker broker_;
  std::unique_ptr<Smartcard> card_;
};

TEST_F(SmartcardTest, QuotaDebitOnIssue) {
  EXPECT_EQ(card_->quota_remaining(), 1000u);
  auto cert = Issue(100, 3);
  ASSERT_TRUE(cert.ok());
  EXPECT_EQ(card_->quota_used(), 300u);
  EXPECT_EQ(card_->quota_remaining(), 700u);
}

TEST_F(SmartcardTest, QuotaExceededRejected) {
  auto cert = Issue(400, 3);  // 1200 > 1000
  EXPECT_FALSE(cert.ok());
  EXPECT_EQ(cert.status(), StatusCode::kQuotaExceeded);
  EXPECT_EQ(card_->quota_used(), 0u);
}

TEST_F(SmartcardTest, QuotaExactFitAccepted) {
  auto cert = Issue(500, 2);  // exactly 1000
  EXPECT_TRUE(cert.ok());
  EXPECT_EQ(card_->quota_remaining(), 0u);
  EXPECT_FALSE(Issue(1, 1, 2).ok());
}

TEST_F(SmartcardTest, InvalidParamsRejected) {
  EXPECT_EQ(Issue(0, 3).status(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Issue(100, 0).status(), StatusCode::kInvalidArgument);
}

TEST_F(SmartcardTest, OverflowingChargeRejected) {
  auto cert = card_->IssueFileCertificate("f", ~0ULL / 2, ContentHash("x"), 3, 1, 0);
  EXPECT_EQ(cert.status(), StatusCode::kQuotaExceeded);
}

TEST_F(SmartcardTest, ExpiredCardRejectsIssuance) {
  auto expiring = std::move(broker_.IssueCard(1000, 0, /*expiry=*/100)).value();
  auto ok = expiring->IssueFileCertificate("f", 10, ContentHash("x"), 1, 1, /*date=*/50);
  EXPECT_TRUE(ok.ok());
  auto expired =
      expiring->IssueFileCertificate("f", 10, ContentHash("x"), 1, 2, /*date=*/200);
  EXPECT_EQ(expired.status(), StatusCode::kCertificateExpired);
}

TEST_F(SmartcardTest, RefundRestoresQuotaOnce) {
  auto cert = Issue(100, 3);
  ASSERT_TRUE(cert.ok());
  EXPECT_EQ(card_->RefundFileCertificate(cert.value()), StatusCode::kOk);
  EXPECT_EQ(card_->quota_used(), 0u);
  // Double refund refused.
  EXPECT_EQ(card_->RefundFileCertificate(cert.value()), StatusCode::kAlreadyExists);
}

TEST_F(SmartcardTest, RefundOfForeignCertRejected) {
  auto other = std::move(broker_.IssueCard(1000, 0)).value();
  auto cert = Issue(100, 3);
  EXPECT_EQ(other->RefundFileCertificate(cert.value()), StatusCode::kNotAuthorized);
}

TEST_F(SmartcardTest, CreditReclaimRoundTrip) {
  auto cert = Issue(100, 3);
  ASSERT_TRUE(cert.ok());
  auto node_card = std::move(broker_.IssueCard(0, 1 << 20)).value();
  ReclaimReceipt receipt =
      node_card->IssueReclaimReceipt(cert.value().file_id, 100, 50);
  EXPECT_EQ(card_->CreditReclaim(receipt, cert.value()), StatusCode::kOk);
  EXPECT_EQ(card_->quota_used(), 0u);
  // Further receipts for the same file do not double-credit.
  ReclaimReceipt receipt2 =
      node_card->IssueReclaimReceipt(cert.value().file_id, 100, 51);
  EXPECT_EQ(card_->CreditReclaim(receipt2, cert.value()), StatusCode::kAlreadyExists);
}

TEST_F(SmartcardTest, CreditReclaimRejectsForgedReceipt) {
  auto cert = Issue(100, 3);
  auto node_card = std::move(broker_.IssueCard(0, 1 << 20)).value();
  ReclaimReceipt receipt =
      node_card->IssueReclaimReceipt(cert.value().file_id, 100, 50);
  receipt.bytes_reclaimed = 999999;  // tampered
  EXPECT_EQ(card_->CreditReclaim(receipt, cert.value()),
            StatusCode::kVerificationFailed);
  EXPECT_EQ(card_->quota_used(), 300u);
}

TEST_F(SmartcardTest, CreditReclaimRejectsMismatchedFile) {
  auto cert = Issue(100, 3, 1);
  auto cert2 = Issue(50, 2, 2);
  auto node_card = std::move(broker_.IssueCard(0, 1 << 20)).value();
  ReclaimReceipt receipt =
      node_card->IssueReclaimReceipt(cert.value().file_id, 100, 50);
  EXPECT_EQ(card_->CreditReclaim(receipt, cert2.value()),
            StatusCode::kInvalidArgument);
}

TEST_F(SmartcardTest, NodeIdDerivation) {
  NodeId id = card_->DerivedNodeId();
  EXPECT_EQ(id, NodeIdFromPublicKey(card_->identity().public_key.Encode()));
  EXPECT_NE(id, U128::Zero());
}

TEST(BrokerTest, TracksSupplyAndDemand) {
  Broker broker(11, BrokerOptions{});
  (void)broker.IssueCard(100, 50);
  (void)broker.IssueCard(200, 0);
  EXPECT_EQ(broker.total_demand(), 300u);
  EXPECT_EQ(broker.total_supply(), 50u);
  EXPECT_EQ(broker.cards_issued(), 2u);
}

TEST(BrokerTest, BalanceEnforcementRefusesExcessDemand) {
  BrokerOptions options;
  options.enforce_balance = true;
  options.max_demand_supply_ratio = 1.0;
  Broker broker(13, options);
  // A card that both contributes and uses balances out.
  EXPECT_TRUE(broker.IssueCard(100, 100).ok());
  // Pure demand beyond supply is refused.
  auto refused = broker.IssueCard(500, 0);
  EXPECT_EQ(refused.status(), StatusCode::kQuotaExceeded);
  // More supply unlocks more demand.
  EXPECT_TRUE(broker.IssueCard(0, 500).ok());
  EXPECT_TRUE(broker.IssueCard(400, 0).ok());
}

TEST(BrokerTest, PooledModulusCardsHaveDistinctIdentities) {
  BrokerOptions options;
  options.modulus_pool = 2;
  Broker broker(17, options);
  auto a = std::move(broker.IssueCard(10, 10)).value();
  auto b = std::move(broker.IssueCard(10, 10)).value();
  auto c = std::move(broker.IssueCard(10, 10)).value();
  EXPECT_NE(a->DerivedNodeId(), b->DerivedNodeId());
  EXPECT_NE(a->DerivedNodeId(), c->DerivedNodeId());
  // Pooled cards still produce verifiable signatures.
  StoreReceipt receipt = a->IssueStoreReceipt(FileId{}, false, 1);
  EXPECT_TRUE(receipt.Verify(broker.public_key()));
  // And cross-card forgery fails: b cannot sign as a.
  StoreReceipt forged = b->IssueStoreReceipt(FileId{}, false, 1);
  forged.node_card = a->identity();
  EXPECT_FALSE(forged.Verify(broker.public_key()));
}

}  // namespace
}  // namespace past
