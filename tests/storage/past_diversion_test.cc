// Storage-management behavior: replica diversion, file diversion and the
// admission policy under constrained capacities (SOSP scheme, ref [12]).
#include <gtest/gtest.h>

#include "tests/storage/past_test_util.h"

namespace past {
namespace {

TEST(PastDiversionTest, ReplicaDiversionCreatesConsistentPointers) {
  // Small capacities with a lenient diverted threshold: as the system fills,
  // overloaded replica-set members divert replicas into their leaf sets and
  // keep pointers.
  PastNetworkOptions options = SmallNetOptions(201);
  options.default_node_capacity = 2000;
  options.past.policy.t_pri = 0.2;
  options.past.policy.t_div = 0.6;
  options.past.default_replication = 2;
  PastNetwork net(options);
  net.Build(25);
  PastNode* client = net.node(0);
  for (int i = 0; i < 60; ++i) {
    (void)net.InsertSyntheticSync(client, "rd-" + std::to_string(i), 390, 2);
  }
  uint64_t diversions_ok = 0, diverted_accepted = 0, pointers = 0;
  for (size_t i = 0; i < net.size(); ++i) {
    diversions_ok += net.node(i)->stats().diversions_ok;
    diverted_accepted += net.node(i)->stats().diverted_accepted;
    pointers += net.node(i)->store().pointer_count();
  }
  ASSERT_GT(diversions_ok, 0u);
  // Each diversion left a pointer; some were since removed by the reclaim
  // cleanup of failed insert attempts, so pointers <= diversions.
  EXPECT_GT(pointers, 0u);
  EXPECT_LE(pointers, diversions_ok);
  EXPECT_GE(diverted_accepted, diversions_ok);

  // Follow each pointer: the target must hold the file, marked diverted.
  int checked = 0;
  for (size_t i = 0; i < net.size(); ++i) {
    for (const FileId& id : net.node(i)->store().FileIds()) {
      (void)id;
    }
    // Walk pointers via the public accessors.
    PastNode* primary = net.node(i);
    for (size_t j = 0; j < net.size(); ++j) {
      PastNode* target = net.node(j);
      for (const FileId& id : target->store().FileIds()) {
        const StoredFile* f = target->store().Get(id);
        if (f->diverted) {
          auto ptr = f->diverted_from;
          PastNode* holder = net.NodeByAddr(ptr.addr);
          ASSERT_NE(holder, nullptr);
          auto pointer = holder->store().GetPointer(id);
          ASSERT_TRUE(pointer.has_value());
          EXPECT_EQ(pointer->addr, target->overlay()->addr());
          ++checked;
        }
      }
    }
    (void)primary;
    break;  // the j-loop already covered every node
  }
  EXPECT_GT(checked, 0);
}

TEST(PastDiversionTest, DivertedLookupThroughPointer) {
  // Lookup must succeed when the responsible node holds only a pointer.
  PastNetworkOptions options = SmallNetOptions(203);
  options.default_node_capacity = 2000;
  options.past.policy.t_pri = 0.2;
  options.past.policy.t_div = 0.6;
  options.past.default_replication = 2;
  PastNetwork net(options);
  net.Build(25);
  PastNode* client = net.node(0);

  int diverted_total = 0;
  std::vector<FileId> files;
  for (int i = 0; i < 60; ++i) {
    auto r = net.InsertSyntheticSync(client, "d-" + std::to_string(i), 390, 2);
    if (r.ok()) {
      files.push_back(r.value());
    }
  }
  for (size_t i = 0; i < net.size(); ++i) {
    diverted_total += static_cast<int>(net.node(i)->stats().diverted_accepted);
  }
  ASSERT_GT(diverted_total, 0) << "workload produced no diversions";
  // Every successfully inserted file must still resolve.
  int found = 0;
  for (const FileId& id : files) {
    if (net.LookupSync(net.node(11), id).ok()) {
      ++found;
    }
  }
  EXPECT_EQ(found, static_cast<int>(files.size()));
}

TEST(PastDiversionTest, FileDiversionRescuesInsertsRetryVsNoRetry) {
  // Half the nodes have no usable storage. With k=1, an insert fails whenever
  // the fileId lands on a broke node; the salt retry (file diversion) remaps
  // the file to a new region. Compare success with and without retries.
  auto run = [](int retries, uint64_t seed) {
    PastNetworkOptions options = SmallNetOptions(seed);
    options.past.enable_replica_diversion = false;
    options.past.file_diversion_retries = retries;
    options.past.default_replication = 1;
    options.past.policy.t_pri = 1.0;
    options.past.request_timeout = 5 * kMicrosPerSecond;
    PastNetwork net(options);
    for (int i = 0; i < 20; ++i) {
      // Alternate roomy and broke nodes.
      net.AddNode(i % 2 == 0 ? 200000 : 10, 1ULL << 30);
    }
    PastNode* client = net.node(0);
    int ok = 0;
    for (int i = 0; i < 40; ++i) {
      auto r = net.InsertSyntheticSync(client, "fd-" + std::to_string(i), 120, 1);
      ok += r.ok() ? 1 : 0;
    }
    return ok;
  };
  int with_retries = run(5, 205);
  int without_retries = run(0, 205);
  EXPECT_GT(with_retries, 35);  // 1 - 0.5^6 ~ 98% per insert
  EXPECT_GT(with_retries, without_retries + 5);
}

TEST(PastDiversionTest, InsertRejectedWhenSystemTrulyFull) {
  PastNetworkOptions options = SmallNetOptions(207);
  options.default_node_capacity = 500;
  options.past.default_replication = 2;
  options.past.policy.t_pri = 1.0;
  options.past.policy.t_div = 1.0;
  options.past.request_timeout = 5 * kMicrosPerSecond;
  PastNetwork net(options);
  net.Build(10);
  PastNode* client = net.node(0);
  // Total capacity 5000 bytes; pour in 24000 bytes of replicas.
  int rejected = 0;
  for (int i = 0; i < 60; ++i) {
    auto r = net.InsertSyntheticSync(client, "full-" + std::to_string(i), 200, 2);
    if (!r.ok()) {
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 10);
  auto summary = net.Summary();
  EXPECT_GT(summary.utilization(), 0.5);
}

TEST(PastDiversionTest, RejectionsBiasedTowardLargeFiles) {
  // The paper: "failed insertions are heavily biased towards large files".
  PastNetworkOptions options = SmallNetOptions(209);
  options.default_node_capacity = 4000;
  options.past.default_replication = 2;
  options.past.policy.t_pri = 1.0;
  options.past.policy.t_div = 1.0;
  options.past.request_timeout = 5 * kMicrosPerSecond;
  PastNetwork net(options);
  net.Build(15);
  PastNode* client = net.node(0);
  Rng rng(5);
  uint64_t accepted_size_sum = 0, rejected_size_sum = 0;
  int accepted = 0, rejected = 0;
  for (int i = 0; i < 120; ++i) {
    uint64_t size = rng.Bernoulli(0.3) ? 1500 : 60;
    auto r = net.InsertSyntheticSync(client, "bias-" + std::to_string(i), size, 2);
    if (r.ok()) {
      accepted_size_sum += size;
      ++accepted;
    } else {
      rejected_size_sum += size;
      ++rejected;
    }
  }
  ASSERT_GT(rejected, 0);
  ASSERT_GT(accepted, 0);
  double avg_accepted = static_cast<double>(accepted_size_sum) / accepted;
  double avg_rejected = static_cast<double>(rejected_size_sum) / rejected;
  EXPECT_GT(avg_rejected, avg_accepted);
}

}  // namespace
}  // namespace past
