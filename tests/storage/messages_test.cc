#include "src/storage/messages.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/crypto/sha256.h"
#include "src/storage/smartcard.h"

namespace past {
namespace {

class StorageMessagesTest : public ::testing::Test {
 protected:
  StorageMessagesTest() : broker_(3, BrokerOptions{}), rng_(5) {
    card_ = std::move(broker_.IssueCard(1 << 20, 1 << 20)).value();
  }

  FileCertificate MakeCert() {
    Bytes content = ToBytes("content");
    auto digest = Sha256::Hash(ByteSpan(content.data(), content.size()));
    return std::move(card_->IssueFileCertificate(
                         "f", content.size(), ByteSpan(digest.data(), digest.size()),
                         3, rng_.NextU64(), 7))
        .value();
  }

  NodeDescriptor RandomDesc() {
    return NodeDescriptor{rng_.NextU128(), static_cast<NodeAddr>(rng_.UniformU64(99))};
  }

  Broker broker_;
  std::unique_ptr<Smartcard> card_;
  Rng rng_;
};

TEST_F(StorageMessagesTest, InsertRequestRoundTrip) {
  InsertRequestPayload p;
  p.cert = MakeCert();
  p.content = rng_.RandomBytes(64);
  p.client = RandomDesc();
  InsertRequestPayload out;
  ASSERT_TRUE(InsertRequestPayload::Decode(p.Encode(), &out));
  EXPECT_EQ(out.cert.file_id, p.cert.file_id);
  EXPECT_EQ(out.content, p.content);
  EXPECT_EQ(out.client, p.client);
  EXPECT_TRUE(out.cert.Verify(broker_.public_key()));
}

TEST_F(StorageMessagesTest, StoreReplicaRoundTrip) {
  StoreReplicaPayload p;
  p.cert = MakeCert();
  p.content = rng_.RandomBytes(16);
  p.client = RandomDesc();
  p.divert_allowed = false;
  StoreReplicaPayload out;
  ASSERT_TRUE(StoreReplicaPayload::Decode(p.Encode(), &out));
  EXPECT_FALSE(out.divert_allowed);
  EXPECT_EQ(out.cert.file_id, p.cert.file_id);
}

TEST_F(StorageMessagesTest, DivertMessagesRoundTrip) {
  DivertStorePayload p;
  p.cert = MakeCert();
  p.content = rng_.RandomBytes(8);
  p.client = RandomDesc();
  p.primary = RandomDesc();
  DivertStorePayload out;
  ASSERT_TRUE(DivertStorePayload::Decode(p.Encode(), &out));
  EXPECT_EQ(out.primary, p.primary);

  DivertResultPayload res;
  res.file_id = p.cert.file_id;
  res.accepted = true;
  res.client = p.client;
  DivertResultPayload res_out;
  ASSERT_TRUE(DivertResultPayload::Decode(res.Encode(), &res_out));
  EXPECT_TRUE(res_out.accepted);
  EXPECT_EQ(res_out.file_id, res.file_id);
}

TEST_F(StorageMessagesTest, ReceiptAndNackRoundTrip) {
  StoreReceiptPayload p;
  p.receipt = card_->IssueStoreReceipt(MakeCert().file_id, true, 9);
  StoreReceiptPayload out;
  ASSERT_TRUE(StoreReceiptPayload::Decode(p.Encode(), &out));
  EXPECT_TRUE(out.receipt.Verify(broker_.public_key()));
  EXPECT_TRUE(out.receipt.diverted);

  StoreNackPayload nack;
  nack.file_id = p.receipt.file_id;
  nack.reason = static_cast<uint8_t>(StatusCode::kInsufficientStorage);
  StoreNackPayload nack_out;
  ASSERT_TRUE(StoreNackPayload::Decode(nack.Encode(), &nack_out));
  EXPECT_EQ(nack_out.reason, nack.reason);
}

TEST_F(StorageMessagesTest, LookupMessagesRoundTrip) {
  LookupRequestPayload req;
  req.file_id = MakeCert().file_id;
  req.client = RandomDesc();
  LookupRequestPayload req_out;
  ASSERT_TRUE(LookupRequestPayload::Decode(req.Encode(), &req_out));
  EXPECT_EQ(req_out.file_id, req.file_id);

  LookupReplyPayload reply;
  reply.cert = MakeCert();
  reply.content = rng_.RandomBytes(32);
  reply.from_cache = true;
  reply.replier = RandomDesc();
  LookupReplyPayload reply_out;
  ASSERT_TRUE(LookupReplyPayload::Decode(reply.Encode(), &reply_out));
  EXPECT_TRUE(reply_out.from_cache);
  EXPECT_EQ(reply_out.content, reply.content);
}

TEST_F(StorageMessagesTest, FetchMessagesRoundTrip) {
  FetchRequestPayload req;
  req.file_id = MakeCert().file_id;
  req.client = RandomDesc();
  req.for_lookup = true;
  FetchRequestPayload req_out;
  ASSERT_TRUE(FetchRequestPayload::Decode(req.Encode(), &req_out));
  EXPECT_TRUE(req_out.for_lookup);

  FetchReplyPayload reply;
  reply.found = true;
  reply.cert = MakeCert();
  reply.content = rng_.RandomBytes(10);
  FetchReplyPayload reply_out;
  ASSERT_TRUE(FetchReplyPayload::Decode(reply.Encode(), &reply_out));
  EXPECT_TRUE(reply_out.found);
  EXPECT_EQ(reply_out.cert.file_id, reply.cert.file_id);
}

TEST_F(StorageMessagesTest, ReclaimMessagesRoundTrip) {
  ReclaimRequestPayload req;
  req.cert = card_->IssueReclaimCertificate(MakeCert().file_id, 5);
  req.client = RandomDesc();
  ReclaimRequestPayload req_out;
  ASSERT_TRUE(ReclaimRequestPayload::Decode(req.Encode(), &req_out));
  EXPECT_TRUE(req_out.cert.Verify(broker_.public_key()));

  ReclaimReceiptPayload receipt;
  receipt.receipt = card_->IssueReclaimReceipt(req.cert.file_id, 100, 6);
  ReclaimReceiptPayload receipt_out;
  ASSERT_TRUE(ReclaimReceiptPayload::Decode(receipt.Encode(), &receipt_out));
  EXPECT_EQ(receipt_out.receipt.bytes_reclaimed, 100u);
}

TEST_F(StorageMessagesTest, CacheAndMaintenanceRoundTrip) {
  CachePushPayload push;
  push.cert = MakeCert();
  push.content = rng_.RandomBytes(5);
  CachePushPayload push_out;
  ASSERT_TRUE(CachePushPayload::Decode(push.Encode(), &push_out));
  EXPECT_EQ(push_out.content, push.content);

  ReplicaNotifyPayload notify;
  notify.file_id = push.cert.file_id;
  notify.file_size = 4242;
  ReplicaNotifyPayload notify_out;
  ASSERT_TRUE(ReplicaNotifyPayload::Decode(notify.Encode(), &notify_out));
  EXPECT_EQ(notify_out.file_size, 4242u);
}

TEST_F(StorageMessagesTest, AuditMessagesRoundTrip) {
  AuditChallengePayload ch;
  ch.file_id = MakeCert().file_id;
  ch.nonce = 0xdeadbeef;
  AuditChallengePayload ch_out;
  ASSERT_TRUE(AuditChallengePayload::Decode(ch.Encode(), &ch_out));
  EXPECT_EQ(ch_out.nonce, 0xdeadbeefu);

  AuditResponsePayload resp;
  resp.file_id = ch.file_id;
  resp.nonce = ch.nonce;
  resp.has_file = true;
  resp.digest = rng_.RandomBytes(32);
  AuditResponsePayload resp_out;
  ASSERT_TRUE(AuditResponsePayload::Decode(resp.Encode(), &resp_out));
  EXPECT_TRUE(resp_out.has_file);
  EXPECT_EQ(resp_out.digest, resp.digest);
}

TEST_F(StorageMessagesTest, TruncationRejected) {
  InsertRequestPayload p;
  p.cert = MakeCert();
  p.content = rng_.RandomBytes(20);
  p.client = RandomDesc();
  Bytes wire = p.Encode();
  for (size_t len = 0; len < wire.size(); len += 3) {
    InsertRequestPayload out;
    EXPECT_FALSE(InsertRequestPayload::Decode(ByteSpan(wire.data(), len), &out));
  }
}

TEST_F(StorageMessagesTest, TrailingGarbageRejected) {
  LookupRequestPayload req;
  req.file_id = MakeCert().file_id;
  req.client = RandomDesc();
  Bytes wire = req.Encode();
  wire.push_back(0);
  LookupRequestPayload out;
  EXPECT_FALSE(LookupRequestPayload::Decode(wire, &out));
}

TEST_F(StorageMessagesTest, FuzzDecodersNeverCrash) {
  Rng fuzz(31);
  for (int trial = 0; trial < 1000; ++trial) {
    Bytes wire = fuzz.RandomBytes(fuzz.UniformU64(200));
    InsertRequestPayload a;
    (void)InsertRequestPayload::Decode(wire, &a);
    LookupReplyPayload b;
    (void)LookupReplyPayload::Decode(wire, &b);
    ReclaimRequestPayload c;
    (void)ReclaimRequestPayload::Decode(wire, &c);
    AuditResponsePayload d;
    (void)AuditResponsePayload::Decode(wire, &d);
  }
}

}  // namespace
}  // namespace past
