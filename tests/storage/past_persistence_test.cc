// Durable node state: a PAST network run with a state_dir keeps every
// node's replica store on disk, so a crashed-and-rebooted node comes back
// already holding its replicas — serving lookups without re-fetching them
// through maintenance.
#include <gtest/gtest.h>

#include "src/storage/past_network.h"
#include "tests/diskstore/temp_dir.h"
#include "tests/storage/past_test_util.h"

namespace past {
namespace {

PastNetworkOptions DurableNetOptions(uint64_t seed, const std::string& state_dir) {
  PastNetworkOptions options = SmallNetOptions(seed);
  options.past.state_dir = state_dir;
  options.past.disk.sync_every = 1;  // write-through: nothing acked is lost
  return options;
}

TEST(PastPersistenceTest, RebootedNodeRecoversReplicasFromDisk) {
  TempDir tmp;
  PastNetwork net(DurableNetOptions(401, tmp.Sub("state")));
  net.Build(16);
  PastNode* client = net.node(1);

  std::vector<FileId> ids;
  for (int i = 0; i < 6; ++i) {
    auto inserted = net.InsertSync(client, "file-" + std::to_string(i),
                                   ToBytes("payload-" + std::to_string(i)), 3);
    ASSERT_TRUE(inserted.ok()) << StatusCodeName(inserted.status());
    ids.push_back(inserted.value());
  }

  // Crash some replica holder of the first file (not the client).
  size_t victim = SIZE_MAX;
  for (size_t i = 0; i < net.size(); ++i) {
    if (net.node(i) != client && net.node(i)->store().Has(ids[0])) {
      victim = i;
      break;
    }
  }
  ASSERT_NE(victim, SIZE_MAX);
  std::vector<FileId> held;
  for (const FileId& id : ids) {
    if (net.node(victim)->store().Has(id)) {
      held.push_back(id);
    }
  }
  net.CrashNode(victim);
  net.Run(2 * kMicrosPerSecond);  // crash detected, but well before repair

  PastNode* rebooted = net.RestartNode(victim);
  // Recovery happens at construction, before any network traffic: the store
  // is already populated.
  for (const FileId& id : held) {
    EXPECT_TRUE(rebooted->store().Has(id));
  }
  EXPECT_EQ(rebooted->stats().maintenance_fetches, 0u);

  // Let the overlay re-admit the node, then verify it still holds the
  // replicas WITHOUT having fetched them over the network.
  net.Run(30 * kMicrosPerSecond);
  for (const FileId& id : held) {
    EXPECT_TRUE(rebooted->store().Has(id));
  }
  EXPECT_EQ(rebooted->stats().maintenance_fetches, 0u)
      << "recovered replicas must not be re-fetched";

  // And every file is still readable from an unrelated node.
  for (size_t i = 0; i < ids.size(); ++i) {
    auto looked = net.LookupSync(net.node(3), ids[i]);
    ASSERT_TRUE(looked.ok()) << StatusCodeName(looked.status());
    EXPECT_EQ(looked.value().content, ToBytes("payload-" + std::to_string(i)));
  }
}

TEST(PastPersistenceTest, WithoutStateDirRebootLosesTheStore) {
  PastNetwork net(SmallNetOptions(403));
  net.Build(16);
  PastNode* client = net.node(1);
  auto inserted = net.InsertSync(client, "volatile", ToBytes("gone"), 3);
  ASSERT_TRUE(inserted.ok());
  const FileId id = inserted.value();

  size_t victim = SIZE_MAX;
  for (size_t i = 0; i < net.size(); ++i) {
    if (net.node(i) != client && net.node(i)->store().Has(id)) {
      victim = i;
      break;
    }
  }
  ASSERT_NE(victim, SIZE_MAX);
  net.CrashNode(victim);
  PastNode* rebooted = net.RestartNode(victim);
  EXPECT_FALSE(rebooted->store().Has(id));
  EXPECT_EQ(rebooted->store().used(), 0u);
}

TEST(PastPersistenceTest, PointersSurviveReboot) {
  TempDir tmp;
  PastNetwork net(DurableNetOptions(405, tmp.Sub("state")));
  net.Build(12);
  // Plant a pointer directly (the network paths for diversion are exercised
  // elsewhere; here we only care that it survives the reboot).
  const size_t victim = 4;
  PastNode* node = net.node(victim);
  Bytes raw(20, 0xcd);
  const FileId id = U160::FromBytes(ByteSpan(raw.data(), raw.size()));
  const NodeDescriptor holder{U128(7, 8), 3};
  ASSERT_EQ(node->store().PutPointer(id, holder), StatusCode::kOk);
  ASSERT_EQ(node->store().Sync(), StatusCode::kOk);

  net.CrashNode(victim);
  PastNode* rebooted = net.RestartNode(victim);
  auto recovered = rebooted->store().GetPointer(id);
  ASSERT_TRUE(recovered.has_value());
  EXPECT_EQ(recovered->addr, holder.addr);
  EXPECT_EQ(recovered->id, holder.id);
}

}  // namespace
}  // namespace past
