#include "src/storage/certificates.h"

#include <gtest/gtest.h>

#include "src/crypto/sha256.h"
#include "src/storage/smartcard.h"

namespace past {
namespace {

class CertificatesTest : public ::testing::Test {
 protected:
  CertificatesTest() : broker_(1, BrokerOptions{}) {
    auto user = broker_.IssueCard(1 << 20, 0);
    auto node = broker_.IssueCard(0, 1 << 20);
    user_card_ = std::move(user).value();
    node_card_ = std::move(node).value();
  }

  FileCertificate MakeCert(const std::string& name = "file.txt") {
    Bytes content = ToBytes("file content");
    auto digest = Sha256::Hash(ByteSpan(content.data(), content.size()));
    auto result = user_card_->IssueFileCertificate(
        name, content.size(), ByteSpan(digest.data(), digest.size()),
        /*k=*/3, /*salt=*/42, /*date=*/1000);
    return std::move(result).value();
  }

  Broker broker_;
  std::unique_ptr<Smartcard> user_card_;
  std::unique_ptr<Smartcard> node_card_;
};

TEST_F(CertificatesTest, CardIdentityVerifies) {
  EXPECT_TRUE(user_card_->identity().VerifyIssuedBy(broker_.public_key()));
}

TEST_F(CertificatesTest, CardIdentityFromOtherBrokerRejected) {
  Broker rogue(99, BrokerOptions{});
  EXPECT_FALSE(user_card_->identity().VerifyIssuedBy(rogue.public_key()));
}

TEST_F(CertificatesTest, CardIdentityRoundTrip) {
  Writer w;
  user_card_->identity().EncodeTo(&w);
  Reader r(ByteSpan(w.bytes().data(), w.bytes().size()));
  CardIdentity decoded;
  ASSERT_TRUE(CardIdentity::DecodeFrom(&r, &decoded));
  EXPECT_EQ(decoded, user_card_->identity());
}

TEST_F(CertificatesTest, FileCertificateVerifies) {
  FileCertificate cert = MakeCert();
  EXPECT_TRUE(cert.Verify(broker_.public_key()));
}

TEST_F(CertificatesTest, FileCertificateRoundTrip) {
  FileCertificate cert = MakeCert();
  Writer w;
  cert.EncodeTo(&w);
  Reader r(ByteSpan(w.bytes().data(), w.bytes().size()));
  FileCertificate decoded;
  ASSERT_TRUE(FileCertificate::DecodeFrom(&r, &decoded));
  EXPECT_EQ(decoded.file_id, cert.file_id);
  EXPECT_EQ(decoded.file_size, cert.file_size);
  EXPECT_EQ(decoded.replication_factor, cert.replication_factor);
  EXPECT_EQ(decoded.salt, cert.salt);
  EXPECT_TRUE(decoded.Verify(broker_.public_key()));
}

TEST_F(CertificatesTest, TamperedFieldBreaksSignature) {
  FileCertificate cert = MakeCert();
  FileCertificate bumped_size = cert;
  bumped_size.file_size += 1;
  EXPECT_FALSE(bumped_size.Verify(broker_.public_key()));

  FileCertificate bumped_k = cert;
  bumped_k.replication_factor = 100;
  EXPECT_FALSE(bumped_k.Verify(broker_.public_key()));

  FileCertificate changed_hash = cert;
  changed_hash.content_hash[0] ^= 1;
  EXPECT_FALSE(changed_hash.Verify(broker_.public_key()));
}

TEST_F(CertificatesTest, FileIdBoundToNameOwnerSalt) {
  FileCertificate a = MakeCert("a.txt");
  FileCertificate b = MakeCert("b.txt");
  EXPECT_NE(a.file_id, b.file_id);
  // Same name, different salt -> different id (file diversion relies on it).
  Bytes content = ToBytes("file content");
  auto digest = Sha256::Hash(ByteSpan(content.data(), content.size()));
  auto c1 = user_card_->IssueFileCertificate("same", content.size(),
                                             ByteSpan(digest.data(), digest.size()),
                                             3, 1, 0);
  auto c2 = user_card_->IssueFileCertificate("same", content.size(),
                                             ByteSpan(digest.data(), digest.size()),
                                             3, 2, 0);
  EXPECT_NE(c1.value().file_id, c2.value().file_id);
}

TEST_F(CertificatesTest, ContentMatching) {
  FileCertificate cert = MakeCert();
  Bytes content = ToBytes("file content");
  EXPECT_TRUE(cert.MatchesContent(content));
  Bytes corrupted = ToBytes("file CONTENT");
  EXPECT_FALSE(cert.MatchesContent(corrupted));
}

TEST_F(CertificatesTest, StoreReceiptRoundTripAndVerify) {
  StoreReceipt receipt = node_card_->IssueStoreReceipt(MakeCert().file_id,
                                                       /*diverted=*/true, 777);
  EXPECT_TRUE(receipt.Verify(broker_.public_key()));
  EXPECT_TRUE(receipt.diverted);

  Writer w;
  receipt.EncodeTo(&w);
  Reader r(ByteSpan(w.bytes().data(), w.bytes().size()));
  StoreReceipt decoded;
  ASSERT_TRUE(StoreReceipt::DecodeFrom(&r, &decoded));
  EXPECT_TRUE(decoded.Verify(broker_.public_key()));
  EXPECT_EQ(decoded.timestamp, 777);
}

TEST_F(CertificatesTest, StoreReceiptTamperRejected) {
  StoreReceipt receipt = node_card_->IssueStoreReceipt(MakeCert().file_id, false, 1);
  receipt.diverted = true;  // flip the flag after signing
  EXPECT_FALSE(receipt.Verify(broker_.public_key()));
}

TEST_F(CertificatesTest, ReclaimCertificateVerifiesAndBindsOwner) {
  FileCertificate cert = MakeCert();
  ReclaimCertificate rc = user_card_->IssueReclaimCertificate(cert.file_id, 2000);
  EXPECT_TRUE(rc.Verify(broker_.public_key()));
  // The reclaim cert's owner key matches the file cert's owner key — the
  // check storage nodes perform.
  EXPECT_EQ(rc.owner.public_key, cert.owner.public_key);

  // Another user's reclaim certificate does not match.
  auto other = broker_.IssueCard(1 << 20, 0);
  ReclaimCertificate forged =
      other.value()->IssueReclaimCertificate(cert.file_id, 2000);
  EXPECT_TRUE(forged.Verify(broker_.public_key()));  // validly signed...
  EXPECT_FALSE(forged.owner.public_key == cert.owner.public_key);  // ...wrong owner
}

TEST_F(CertificatesTest, ReclaimReceiptRoundTrip) {
  ReclaimReceipt receipt =
      node_card_->IssueReclaimReceipt(MakeCert().file_id, 12345, 3000);
  EXPECT_TRUE(receipt.Verify(broker_.public_key()));
  Writer w;
  receipt.EncodeTo(&w);
  Reader r(ByteSpan(w.bytes().data(), w.bytes().size()));
  ReclaimReceipt decoded;
  ASSERT_TRUE(ReclaimReceipt::DecodeFrom(&r, &decoded));
  EXPECT_EQ(decoded.bytes_reclaimed, 12345u);
  EXPECT_TRUE(decoded.Verify(broker_.public_key()));
}

TEST_F(CertificatesTest, ReclaimReceiptTamperRejected) {
  ReclaimReceipt receipt = node_card_->IssueReclaimReceipt(MakeCert().file_id, 100, 1);
  receipt.bytes_reclaimed = 1 << 30;  // inflate the credit
  EXPECT_FALSE(receipt.Verify(broker_.public_key()));
}

TEST_F(CertificatesTest, DecodeRejectsGarbage) {
  Bytes garbage = ToBytes("not a certificate at all");
  Reader r(ByteSpan(garbage.data(), garbage.size()));
  FileCertificate cert;
  EXPECT_FALSE(FileCertificate::DecodeFrom(&r, &cert));
}

}  // namespace
}  // namespace past
