// Backend parity: FileStore must behave identically — same status codes,
// same accounting invariants, same round-tripped contents — whether its
// replicas live in a MemoryBackend or go through the durable DiskBackend.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/common/rng.h"
#include "src/storage/disk_backend.h"
#include "src/storage/file_store.h"
#include "tests/diskstore/temp_dir.h"

namespace past {
namespace {

FileCertificate CertOfSize(uint64_t size, uint64_t tag) {
  FileCertificate cert;
  Bytes raw(20, 0);
  for (int i = 0; i < 8; ++i) {
    raw[static_cast<size_t>(i)] = static_cast<uint8_t>(tag >> (8 * i));
  }
  cert.file_id = U160::FromBytes(raw);
  cert.file_size = size;
  cert.replication_factor = 3;
  // A syntactically valid (nonzero) key: the disk backend re-decodes stored
  // certificates on reopen, and the key decoder rejects n = 0 / e = 0.
  cert.owner.public_key.n = BigNum::FromU64(0xD00000000000000DULL);
  cert.owner.public_key.e = BigNum::FromU64(65537);
  return cert;
}

StoredFile FileOfSize(uint64_t size, uint64_t tag) {
  StoredFile f;
  f.cert = CertOfSize(size, tag);
  return f;
}

class BackendParityTest : public ::testing::TestWithParam<std::string> {
 protected:
  std::unique_ptr<FileStore> MakeStore(uint64_t capacity) {
    return std::make_unique<FileStore>(capacity, MakeBackend());
  }

  std::unique_ptr<StoreBackend> MakeBackend() {
    if (GetParam() == "memory") {
      return std::make_unique<MemoryBackend>();
    }
    // "disk" = legacy single-log engine defaults; "disk4" = the sharded
    // engine with every concurrent feature on (4 shards, group commit,
    // background compaction, block cache). Parity across all three is the
    // contract: sharding is invisible above the StoreBackend seam.
    DiskStoreOptions options;
    if (GetParam() == "disk4") {
      options.shard_count = 4;
      options.group_commit = true;
      options.commit_delay_us = 100;
      options.background_compaction = true;
      options.cache_bytes = 1ULL << 20;
    }
    // A distinct directory per backend keeps reopen semantics out of the
    // shared tests (covered separately below).
    auto backend = DiskBackend::Open(
        tmp_.Sub("db-" + std::to_string(next_dir_++)), options);
    EXPECT_TRUE(backend.ok()) << StatusCodeName(backend.status());
    return std::move(backend).value();
  }

  TempDir tmp_;
  int next_dir_ = 0;
};

TEST_P(BackendParityTest, AccountingInvariantUnderMixedWorkload) {
  auto store = MakeStore(100000);
  Rng rng(17);
  uint64_t expected_used = 0;
  for (int op = 0; op < 300; ++op) {
    const uint64_t tag = rng.UniformU64(40);
    if (rng.UniformU64(3) != 0) {
      const uint64_t size = 1 + rng.UniformU64(900);
      StoredFile f = FileOfSize(size, tag);
      f.content = rng.RandomBytes(16);
      f.diverted = (tag % 2) == 0;
      StatusCode status = store->Put(std::move(f));
      if (status == StatusCode::kOk) {
        expected_used += size;
      } else {
        EXPECT_TRUE(status == StatusCode::kAlreadyExists ||
                    status == StatusCode::kInsufficientStorage);
      }
    } else {
      auto freed = store->Remove(CertOfSize(0, tag).file_id);
      if (freed.has_value()) {
        expected_used -= *freed;
      }
    }
    ASSERT_EQ(store->used(), expected_used);
    ASSERT_EQ(store->used() + store->free_space(), store->capacity());
  }
  EXPECT_GT(store->file_count(), 0u);
}

TEST_P(BackendParityTest, DuplicateAndCapacityRejects) {
  auto store = MakeStore(1000);
  EXPECT_EQ(store->Put(FileOfSize(600, 1)), StatusCode::kOk);
  EXPECT_EQ(store->Put(FileOfSize(600, 1)), StatusCode::kAlreadyExists);
  EXPECT_EQ(store->Put(FileOfSize(600, 2)), StatusCode::kInsufficientStorage);
  EXPECT_EQ(store->used(), 600u);
  EXPECT_EQ(store->Put(FileOfSize(400, 3)), StatusCode::kOk);  // exact fit
  EXPECT_EQ(store->free_space(), 0u);
}

TEST_P(BackendParityTest, StoredFileRoundTripsAllFields) {
  auto store = MakeStore(1000);
  StoredFile f = FileOfSize(50, 3);
  f.content = ToBytes("diverted payload");
  f.cert.salt = 1234;
  f.cert.insertion_date = -7;
  f.diverted = true;
  f.diverted_from = NodeDescriptor{U128(1, 2), 9};
  const FileId id = f.cert.file_id;
  ASSERT_EQ(store->Put(std::move(f)), StatusCode::kOk);

  const StoredFile* got = store->Get(id);
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->content, ToBytes("diverted payload"));
  EXPECT_EQ(got->cert.salt, 1234u);
  EXPECT_EQ(got->cert.insertion_date, -7);
  EXPECT_TRUE(got->diverted);
  EXPECT_EQ(got->diverted_from.addr, 9u);
  EXPECT_EQ(got->diverted_from.id, U128(1, 2));
}

TEST_P(BackendParityTest, PointerRoundTripAndRemoval) {
  auto store = MakeStore(1000);
  const FileId id = CertOfSize(1, 5).file_id;
  EXPECT_FALSE(store->GetPointer(id).has_value());
  EXPECT_EQ(store->PutPointer(id, NodeDescriptor{U128(3, 4), 17}), StatusCode::kOk);
  auto ptr = store->GetPointer(id);
  ASSERT_TRUE(ptr.has_value());
  EXPECT_EQ(ptr->addr, 17u);
  EXPECT_EQ(store->pointer_count(), 1u);
  EXPECT_EQ(store->used(), 0u);  // pointers use no replica space
  EXPECT_TRUE(store->RemovePointer(id));
  EXPECT_FALSE(store->RemovePointer(id));
}

TEST_P(BackendParityTest, RemoveReleasesSpace) {
  auto store = MakeStore(1000);
  StoredFile f = FileOfSize(100, 1);
  const FileId id = f.cert.file_id;
  ASSERT_EQ(store->Put(std::move(f)), StatusCode::kOk);
  auto freed = store->Remove(id);
  ASSERT_TRUE(freed.has_value());
  EXPECT_EQ(*freed, 100u);
  EXPECT_EQ(store->used(), 0u);
  EXPECT_FALSE(store->Remove(id).has_value());
}

INSTANTIATE_TEST_SUITE_P(Backends, BackendParityTest,
                         ::testing::Values("memory", "disk", "disk4"),
                         [](const auto& info) { return info.param; });

// Disk-only: a FileStore rebuilt over a reopened DiskBackend recovers the
// replicas, the pointers, AND the used-bytes accounting.
TEST(DiskBackendReopenTest, FileStoreAccountingSurvivesReopen) {
  TempDir tmp;
  const std::string dir = tmp.Sub("db");
  {
    auto backend = DiskBackend::Open(dir, {});
    ASSERT_TRUE(backend.ok());
    FileStore store(10000, std::move(backend).value());
    for (uint64_t tag = 0; tag < 12; ++tag) {
      StoredFile f = FileOfSize(100 + tag, tag);
      f.content = ToBytes("c" + std::to_string(tag));
      ASSERT_EQ(store.Put(std::move(f)), StatusCode::kOk);
    }
    ASSERT_TRUE(store.Remove(CertOfSize(0, 3).file_id).has_value());
    ASSERT_EQ(store.PutPointer(CertOfSize(0, 77).file_id, NodeDescriptor{U128(5, 6), 31}),
              StatusCode::kOk);
    ASSERT_EQ(store.Sync(), StatusCode::kOk);
  }
  auto backend = DiskBackend::Open(dir, {});
  ASSERT_TRUE(backend.ok());
  FileStore store(10000, std::move(backend).value());
  EXPECT_EQ(store.file_count(), 11u);
  EXPECT_EQ(store.pointer_count(), 1u);
  uint64_t expected_used = 0;
  for (uint64_t tag = 0; tag < 12; ++tag) {
    if (tag == 3) {
      EXPECT_FALSE(store.Has(CertOfSize(0, tag).file_id));
      continue;
    }
    expected_used += 100 + tag;
    const StoredFile* got = store.Get(CertOfSize(0, tag).file_id);
    ASSERT_NE(got, nullptr);
    EXPECT_EQ(got->content, ToBytes("c" + std::to_string(tag)));
  }
  EXPECT_EQ(store.used(), expected_used);
  EXPECT_EQ(store.GetPointer(CertOfSize(0, 77).file_id)->addr, 31u);
  // Recovered replicas count against free space: a duplicate is still a
  // duplicate after reboot.
  EXPECT_EQ(store.Put(FileOfSize(100, 0)), StatusCode::kAlreadyExists);
}

// Same reopen-accounting contract over the sharded engine: replicas,
// pointers, and used-bytes all survive a reboot of a 4-shard group-commit
// store.
TEST(DiskBackendReopenTest, ShardedEngineAccountingSurvivesReopen) {
  TempDir tmp;
  const std::string dir = tmp.Sub("db");
  DiskStoreOptions options;
  options.shard_count = 4;
  options.group_commit = true;
  options.commit_delay_us = 100;
  options.cache_bytes = 1ULL << 20;
  {
    auto backend = DiskBackend::Open(dir, options);
    ASSERT_TRUE(backend.ok());
    FileStore store(10000, std::move(backend).value());
    for (uint64_t tag = 0; tag < 12; ++tag) {
      StoredFile f = FileOfSize(100 + tag, tag);
      f.content = ToBytes("c" + std::to_string(tag));
      ASSERT_EQ(store.Put(std::move(f)), StatusCode::kOk);
    }
    ASSERT_TRUE(store.Remove(CertOfSize(0, 3).file_id).has_value());
    ASSERT_EQ(store.PutPointer(CertOfSize(0, 77).file_id,
                               NodeDescriptor{U128(5, 6), 31}),
              StatusCode::kOk);
    // No explicit Sync: group commit means every acknowledged mutation is
    // already durable.
  }
  auto backend = DiskBackend::Open(dir, options);
  ASSERT_TRUE(backend.ok());
  FileStore store(10000, std::move(backend).value());
  EXPECT_EQ(store.file_count(), 11u);
  EXPECT_EQ(store.pointer_count(), 1u);
  uint64_t expected_used = 0;
  for (uint64_t tag = 0; tag < 12; ++tag) {
    if (tag == 3) {
      EXPECT_FALSE(store.Has(CertOfSize(0, tag).file_id));
      continue;
    }
    expected_used += 100 + tag;
    const StoredFile* got = store.Get(CertOfSize(0, tag).file_id);
    ASSERT_NE(got, nullptr);
    EXPECT_EQ(got->content, ToBytes("c" + std::to_string(tag)));
  }
  EXPECT_EQ(store.used(), expected_used);
  EXPECT_EQ(store.Put(FileOfSize(100, 0)), StatusCode::kAlreadyExists);
}

// Upgrade path: a state dir written by the legacy single-log layout reopens
// under the sharded engine (migrating the segments into shard directories)
// with every replica, pointer, and byte of accounting intact — and migrates
// back down to a single log just as losslessly.
TEST(DiskBackendReopenTest, LegacyStateDirUpgradesToShardedLayout) {
  TempDir tmp;
  const std::string dir = tmp.Sub("db");
  {
    auto backend = DiskBackend::Open(dir, {});  // legacy defaults
    ASSERT_TRUE(backend.ok());
    FileStore store(10000, std::move(backend).value());
    for (uint64_t tag = 0; tag < 10; ++tag) {
      StoredFile f = FileOfSize(50 + tag, tag);
      f.content = ToBytes("v" + std::to_string(tag));
      ASSERT_EQ(store.Put(std::move(f)), StatusCode::kOk);
    }
    ASSERT_EQ(store.PutPointer(CertOfSize(0, 99).file_id,
                               NodeDescriptor{U128(7, 8), 42}),
              StatusCode::kOk);
    ASSERT_EQ(store.Sync(), StatusCode::kOk);
  }
  uint64_t expected_used = 0;
  for (uint64_t tag = 0; tag < 10; ++tag) {
    expected_used += 50 + tag;
  }
  for (uint32_t shard_count : {4u, 1u}) {
    SCOPED_TRACE("shard count " + std::to_string(shard_count));
    DiskStoreOptions options;
    options.shard_count = shard_count;
    auto backend = DiskBackend::Open(dir, options);
    ASSERT_TRUE(backend.ok()) << StatusCodeName(backend.status());
    FileStore store(10000, std::move(backend).value());
    EXPECT_EQ(store.file_count(), 10u);
    EXPECT_EQ(store.used(), expected_used);
    for (uint64_t tag = 0; tag < 10; ++tag) {
      const StoredFile* got = store.Get(CertOfSize(0, tag).file_id);
      ASSERT_NE(got, nullptr);
      EXPECT_EQ(got->content, ToBytes("v" + std::to_string(tag)));
    }
    EXPECT_EQ(store.GetPointer(CertOfSize(0, 99).file_id)->addr, 42u);
    ASSERT_EQ(store.Sync(), StatusCode::kOk);
  }
}

}  // namespace
}  // namespace past
