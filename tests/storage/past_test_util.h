// Shared fixture helpers for PAST storage-layer tests.
#pragma once

#include "src/storage/past_network.h"

namespace past {

inline PastNetworkOptions SmallNetOptions(uint64_t seed) {
  PastNetworkOptions options;
  options.overlay.seed = seed;
  options.broker.modulus_pool = 4;  // cheap mass card issuance in tests
  // Tight failure-detection timings keep failure tests fast.
  options.overlay.pastry.keep_alive_period = 1 * kMicrosPerSecond;
  options.overlay.pastry.failure_timeout = 3 * kMicrosPerSecond;
  options.overlay.pastry.death_quarantine = 6 * kMicrosPerSecond;
  options.past.request_timeout = 20 * kMicrosPerSecond;
  return options;
}

}  // namespace past

