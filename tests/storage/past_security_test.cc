// Security properties (Section 2.1): forged certificates are refused by
// storage nodes, corrupted content is detected, unauthorized reclaims fail,
// freeloading nodes are exposed by audits, and quota cheating is impossible
// through the protocol.
#include <gtest/gtest.h>

#include "src/crypto/sha256.h"
#include "tests/storage/past_test_util.h"

namespace past {
namespace {

class PastSecurityTest : public ::testing::Test {
 protected:
  PastSecurityTest() : net_(SmallNetOptions(401)) { net_.Build(30); }

  PastNetwork net_;
};

TEST_F(PastSecurityTest, UncertifiedCardsCertificatesRejected) {
  // A self-made card (not issued by the broker) produces certificates that
  // storage nodes refuse.
  Rng rng(1);
  RsaKeyPair rogue_key = RsaKeyPair::Generate(256, &rng);
  Bytes fake_sig(32, 0xaa);
  Smartcard rogue(rogue_key, fake_sig, net_.broker().public_key(),
                  /*usage_quota=*/1 << 30, /*contributed=*/0, INT64_MAX);
  Bytes content = ToBytes("evil");
  auto digest = Sha256::Hash(ByteSpan(content.data(), content.size()));
  auto cert = rogue.IssueFileCertificate("evil", content.size(),
                                         ByteSpan(digest.data(), digest.size()),
                                         3, 1, 0);
  ASSERT_TRUE(cert.ok());
  EXPECT_FALSE(cert.value().Verify(net_.broker().public_key()));

  // Ship it through the real insert path by injecting the payload directly.
  PastNode* root = net_.node(5);
  InsertRequestPayload payload;
  payload.cert = cert.value();
  payload.content = content;
  payload.client = net_.node(6)->overlay()->descriptor();
  net_.node(6)->overlay()->Route(cert.value().file_id.Top128(),
                                 static_cast<uint32_t>(PastOp::kInsertRequest),
                                 payload.Encode());
  net_.Run(10 * kMicrosPerSecond);
  EXPECT_EQ(net_.CountReplicas(cert.value().file_id), 0);
  (void)root;
}

TEST_F(PastSecurityTest, CorruptedContentEnRouteDetected) {
  // A certificate for content A paired with content B (as a malicious
  // intermediate would forward it) must be refused by every storage node.
  PastNode* client = net_.node(3);
  Bytes content = ToBytes("genuine bytes");
  auto digest = Sha256::Hash(ByteSpan(content.data(), content.size()));
  auto cert = client->card().IssueFileCertificate(
      "swap", content.size(), ByteSpan(digest.data(), digest.size()), 3, 99, 0);
  ASSERT_TRUE(cert.ok());

  InsertRequestPayload payload;
  payload.cert = cert.value();
  payload.content = ToBytes("swapped bytes");  // corrupted en route
  payload.client = client->overlay()->descriptor();
  client->overlay()->Route(cert.value().file_id.Top128(),
                           static_cast<uint32_t>(PastOp::kInsertRequest),
                           payload.Encode());
  net_.Run(10 * kMicrosPerSecond);
  EXPECT_EQ(net_.CountReplicas(cert.value().file_id), 0);
}

TEST_F(PastSecurityTest, ForgedReclaimIsIgnoredByStorageNodes) {
  PastNode* owner = net_.node(2);
  PastNode* attacker = net_.node(19);
  auto inserted = net_.InsertSync(owner, "victim-file", ToBytes("keep me"), 3);
  ASSERT_TRUE(inserted.ok());
  FileId id = inserted.value();

  // The attacker crafts a reclaim certificate with its own (valid) card and
  // routes it: storage nodes must reject the owner mismatch.
  ReclaimRequestPayload payload;
  payload.cert = attacker->card().IssueReclaimCertificate(id, 0);
  payload.client = attacker->overlay()->descriptor();
  attacker->overlay()->Route(id.Top128(),
                             static_cast<uint32_t>(PastOp::kReclaimRequest),
                             payload.Encode());
  net_.Run(10 * kMicrosPerSecond);
  EXPECT_EQ(net_.CountReplicas(id), 3) << "replicas must survive forged reclaim";
  auto looked = net_.LookupSync(net_.node(9), id);
  EXPECT_TRUE(looked.ok());
}

TEST_F(PastSecurityTest, AuditDistinguishesHoldersFromNonHolders) {
  PastNetwork net(SmallNetOptions(403));
  net.Build(20);
  PastNode* client = net.node(0);
  auto inserted = net.InsertSync(client, "audit-me", ToBytes("proof"), 3);
  ASSERT_TRUE(inserted.ok());
  const FileCertificate* cert = client->OwnedFileCert(inserted.value());
  ASSERT_NE(cert, nullptr);

  // Honest holders pass the audit.
  for (size_t i = 0; i < net.size(); ++i) {
    if (net.node(i)->store().Has(inserted.value())) {
      EXPECT_TRUE(net.AuditSync(client, net.node(i)->overlay()->addr(),
                                inserted.value(), *cert));
    }
  }
  // A node that does not hold the file fails the audit.
  for (size_t i = 0; i < net.size(); ++i) {
    if (!net.node(i)->store().Has(inserted.value()) && net.node(i) != client) {
      EXPECT_FALSE(net.AuditSync(client, net.node(i)->overlay()->addr(),
                                 inserted.value(), *cert));
      break;
    }
  }
}

TEST_F(PastSecurityTest, FreeloaderIssuesReceiptsButFailsAudit) {
  // A network whose nodes are all dishonest: inserts "succeed" (receipts
  // arrive) but every audit fails — exactly the attack audits exist for.
  PastNetworkOptions options = SmallNetOptions(405);
  options.past.honest = false;
  PastNetwork net(options);
  net.Build(15);
  PastNode* client = net.node(0);
  auto inserted = net.InsertSync(client, "phantom", ToBytes("never stored"), 3);
  ASSERT_TRUE(inserted.ok()) << "freeloaders do return receipts";
  EXPECT_EQ(net.CountReplicas(inserted.value()), 0) << "nothing actually stored";
  const FileCertificate* cert = client->OwnedFileCert(inserted.value());
  ASSERT_NE(cert, nullptr);
  int failures = 0;
  for (size_t i = 1; i < 6; ++i) {
    if (!net.AuditSync(client, net.node(i)->overlay()->addr(), inserted.value(),
                       *cert)) {
      ++failures;
    }
  }
  EXPECT_EQ(failures, 5);
}

TEST_F(PastSecurityTest, QuotaCannotGoNegativeViaDoubleReclaim) {
  PastNode* client = net_.node(4);
  auto inserted = net_.InsertSync(client, "dd", Bytes(100, 1), 2);
  ASSERT_TRUE(inserted.ok());
  uint64_t used_after_insert = client->card().quota_used();
  ASSERT_EQ(net_.ReclaimSync(client, inserted.value()), StatusCode::kOk);
  uint64_t used_after_reclaim = client->card().quota_used();
  EXPECT_EQ(used_after_reclaim, used_after_insert - 200);
  // Replaying stray receipts can never credit again (card tracks fileIds).
  EXPECT_EQ(net_.ReclaimSync(client, inserted.value()), StatusCode::kNotFound);
  EXPECT_EQ(client->card().quota_used(), used_after_reclaim);
}

TEST_F(PastSecurityTest, LookupVerifiesContentAgainstCertificate) {
  // A malicious replier returning bogus content with a mismatched hash is
  // ignored by the client (which then times out or accepts a honest reply).
  PastNode* client = net_.node(8);
  Bytes content = ToBytes("authentic");
  auto inserted = net_.InsertSync(client, "verify", content, 3);
  ASSERT_TRUE(inserted.ok());
  auto looked = net_.LookupSync(net_.node(15), inserted.value());
  ASSERT_TRUE(looked.ok());
  // The returned certificate is broker-certified and matches the content.
  EXPECT_TRUE(looked.value().cert.Verify(net_.broker().public_key()));
  EXPECT_TRUE(looked.value().cert.MatchesContent(looked.value().content));
}

TEST_F(PastSecurityTest, NodeIdsAreBoundToCards) {
  // Every node's overlay id equals the hash of its card's public key, so an
  // attacker cannot choose its position in the id space.
  for (size_t i = 0; i < net_.size(); ++i) {
    EXPECT_EQ(net_.node(i)->overlay()->id(), net_.node(i)->card().DerivedNodeId());
  }
}

}  // namespace
}  // namespace past
