// PastNetwork builder tests: accounting, helpers, determinism.
#include <gtest/gtest.h>

#include "tests/storage/past_test_util.h"

namespace past {
namespace {

TEST(PastNetworkTest, BuildWiresCardsToOverlayIds) {
  PastNetwork net(SmallNetOptions(701));
  net.Build(15);
  EXPECT_EQ(net.size(), 15u);
  EXPECT_EQ(net.broker().cards_issued(), 15u);
  for (size_t i = 0; i < net.size(); ++i) {
    EXPECT_EQ(net.node(i)->overlay()->id(), net.node(i)->card().DerivedNodeId());
    EXPECT_TRUE(net.node(i)->overlay()->active());
  }
}

TEST(PastNetworkTest, NodeByAddrFindsEveryNode) {
  PastNetwork net(SmallNetOptions(703));
  net.Build(10);
  for (size_t i = 0; i < net.size(); ++i) {
    EXPECT_EQ(net.NodeByAddr(net.node(i)->overlay()->addr()), net.node(i));
  }
  EXPECT_EQ(net.NodeByAddr(9999), nullptr);
}

TEST(PastNetworkTest, SummaryStartsEmptyAndTracksInserts) {
  PastNetwork net(SmallNetOptions(705));
  net.Build(12);
  auto empty = net.Summary();
  EXPECT_EQ(empty.primary_used, 0u);
  EXPECT_EQ(empty.files, 0u);
  EXPECT_GT(empty.capacity, 0u);

  auto r = net.InsertSyntheticSync(net.node(0), "s", 1000, 3);
  ASSERT_TRUE(r.ok());
  auto after = net.Summary();
  EXPECT_EQ(after.primary_used, 3000u);
  EXPECT_EQ(after.files, 3u);
}

TEST(PastNetworkTest, SummaryExcludesCrashedNodes) {
  PastNetwork net(SmallNetOptions(707));
  net.Build(10);
  uint64_t full_capacity = net.Summary().capacity;
  net.CrashNode(4);
  EXPECT_LT(net.Summary().capacity, full_capacity);
}

TEST(PastNetworkTest, CountReplicasSeesOnlyLiveHolders) {
  PastNetwork net(SmallNetOptions(709));
  net.Build(20);
  auto r = net.InsertSyntheticSync(net.node(0), "c", 100, 3);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(net.CountReplicas(r.value()), 3);
  for (size_t i = 0; i < net.size(); ++i) {
    if (net.node(i)->store().Has(r.value())) {
      net.CrashNode(i);
      break;
    }
  }
  EXPECT_EQ(net.CountReplicas(r.value()), 2);  // before any repair
}

TEST(PastNetworkTest, CustomCapacityAndQuotaRespected) {
  PastNetwork net(SmallNetOptions(711));
  PastNode* node = net.AddNode(/*capacity=*/12345, /*quota=*/999);
  ASSERT_NE(node, nullptr);
  EXPECT_EQ(node->store().capacity(), 12345u);
  EXPECT_EQ(node->card().usage_quota(), 999u);
  EXPECT_EQ(node->card().contributed_storage(), 12345u);
}

TEST(PastNetworkTest, BrokerBalanceRefusalPropagates) {
  PastNetworkOptions options = SmallNetOptions(713);
  options.broker.enforce_balance = true;
  options.broker.max_demand_supply_ratio = 1.0;
  PastNetwork net(options);
  EXPECT_NE(net.AddNode(/*capacity=*/1000, /*quota=*/500), nullptr);
  EXPECT_EQ(net.AddNode(/*capacity=*/0, /*quota=*/10000), nullptr);
}

TEST(PastNetworkTest, ReadOnlyClientCountsInSizeButNotCapacity) {
  PastNetwork net(SmallNetOptions(715));
  net.Build(8);
  uint64_t capacity_before = net.Summary().capacity;
  PastNode* reader = net.AddReadOnlyClient();
  ASSERT_NE(reader, nullptr);
  EXPECT_EQ(net.size(), 9u);
  EXPECT_EQ(net.Summary().capacity, capacity_before);
  EXPECT_EQ(net.broker().cards_issued(), 8u);  // no card for the reader
}

TEST(PastNetworkTest, DeterministicAcrossRunsWithSameSeed) {
  auto run = [] {
    PastNetwork net(SmallNetOptions(717));
    net.Build(10);
    auto r = net.InsertSyntheticSync(net.node(2), "det", 512, 3);
    return r.ok() ? r.value() : FileId{};
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace past
