// Malformed-input coverage for the PAST payload codecs: strict-prefix
// truncation sweeps, trailing garbage, and absurd length prefixes must all be
// rejected. Complements messages_test.cc (valid round trips) and
// tests/fuzz/fuzz_storage_messages.cc (deterministic mutation).
#include "src/storage/messages.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/crypto/sha256.h"
#include "src/storage/smartcard.h"

namespace past {
namespace {

class StorageMalformedTest : public ::testing::Test {
 protected:
  StorageMalformedTest() : broker_(3, BrokerOptions{}), rng_(5) {
    card_ = std::move(broker_.IssueCard(1 << 20, 1 << 20)).value();
  }

  FileCertificate MakeCert() {
    Bytes content = ToBytes("content");
    auto digest = Sha256::Hash(ByteSpan(content.data(), content.size()));
    return std::move(card_->IssueFileCertificate(
                         "f", content.size(),
                         ByteSpan(digest.data(), digest.size()), 3,
                         rng_.NextU64(), 7))
        .value();
  }

  NodeDescriptor RandomDesc() {
    return NodeDescriptor{rng_.NextU128(),
                          static_cast<NodeAddr>(rng_.UniformU64(99))};
  }

  Broker broker_;
  std::unique_ptr<Smartcard> card_;
  Rng rng_;
};

// Every strict prefix of a valid encoding must fail, and the full buffer
// plus one trailing byte must fail (payload decoding requires AtEnd).
template <typename P>
void ExpectPrefixAndSuffixRejected(const P& payload) {
  Bytes wire = payload.Encode();
  for (size_t len = 0; len < wire.size(); ++len) {
    P out;
    EXPECT_FALSE(P::Decode(ByteSpan(wire.data(), len), &out))
        << "prefix of length " << len << " of " << wire.size() << " decoded";
  }
  P ok;
  EXPECT_TRUE(P::Decode(ByteSpan(wire.data(), wire.size()), &ok));
  wire.push_back(0x5a);
  P out;
  EXPECT_FALSE(P::Decode(ByteSpan(wire.data(), wire.size()), &out));
}

TEST_F(StorageMalformedTest, InsertRequestPrefixSweep) {
  InsertRequestPayload p;
  p.cert = MakeCert();
  p.content = rng_.RandomBytes(32);
  p.client = RandomDesc();
  ExpectPrefixAndSuffixRejected(p);
}

TEST_F(StorageMalformedTest, StoreReceiptPrefixSweep) {
  StoreReceiptPayload p;
  p.receipt = card_->IssueStoreReceipt(MakeCert().file_id, true, 99);
  ExpectPrefixAndSuffixRejected(p);
}

TEST_F(StorageMalformedTest, LookupReplyPrefixSweep) {
  LookupReplyPayload p;
  p.cert = MakeCert();
  p.content = rng_.RandomBytes(16);
  p.from_cache = true;
  p.replier = RandomDesc();
  ExpectPrefixAndSuffixRejected(p);
}

TEST_F(StorageMalformedTest, AuditResponsePrefixSweep) {
  AuditResponsePayload p;
  p.file_id = MakeCert().file_id;
  p.nonce = 123;
  p.has_file = true;
  p.digest = rng_.RandomBytes(32);
  ExpectPrefixAndSuffixRejected(p);
}

TEST_F(StorageMalformedTest, AbsurdContentLengthRejected) {
  // Corrupt the content-blob length prefix of an InsertRequest to claim
  // ~4 GiB; the bounds-checked reader must fail instead of allocating.
  InsertRequestPayload p;
  p.cert = MakeCert();
  p.content = rng_.RandomBytes(8);
  p.client = RandomDesc();
  Bytes wire = p.Encode();

  InsertRequestPayload small = p;
  small.content.clear();
  Bytes wire_small = small.Encode();
  ASSERT_EQ(wire.size(), wire_small.size() + 8);
  // The encodings diverge inside the content length prefix.
  size_t diverge = 0;
  while (diverge < wire_small.size() && wire[diverge] == wire_small[diverge]) {
    ++diverge;
  }
  size_t count_start = diverge < 3 ? 0 : diverge - 3;
  for (size_t i = count_start; i < count_start + 4 && i < wire.size(); ++i) {
    wire[i] = 0xff;
  }
  InsertRequestPayload out;
  EXPECT_FALSE(
      InsertRequestPayload::Decode(ByteSpan(wire.data(), wire.size()), &out));
}

TEST_F(StorageMalformedTest, GarbageBuffersRejected) {
  Rng garbage_rng(77);
  for (size_t size : {size_t{1}, size_t{13}, size_t{64}, size_t{257}}) {
    Bytes garbage = garbage_rng.RandomBytes(size);
    InsertRequestPayload insert;
    EXPECT_FALSE(InsertRequestPayload::Decode(
        ByteSpan(garbage.data(), garbage.size()), &insert));
    ReclaimRequestPayload reclaim;
    EXPECT_FALSE(ReclaimRequestPayload::Decode(
        ByteSpan(garbage.data(), garbage.size()), &reclaim));
  }
}

}  // namespace
}  // namespace past
