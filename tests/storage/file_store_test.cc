#include "src/storage/file_store.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace past {
namespace {

FileCertificate CertOfSize(uint64_t size, uint64_t tag) {
  FileCertificate cert;
  Bytes raw(20, 0);
  for (int i = 0; i < 8; ++i) {
    raw[static_cast<size_t>(i)] = static_cast<uint8_t>(tag >> (8 * i));
  }
  cert.file_id = U160::FromBytes(raw);
  cert.file_size = size;
  cert.replication_factor = 3;
  return cert;
}

StoredFile FileOfSize(uint64_t size, uint64_t tag) {
  StoredFile f;
  f.cert = CertOfSize(size, tag);
  return f;
}

TEST(FileStoreTest, AccountingBasics) {
  FileStore store(1000);
  EXPECT_EQ(store.capacity(), 1000u);
  EXPECT_EQ(store.used(), 0u);
  EXPECT_EQ(store.free_space(), 1000u);
  EXPECT_DOUBLE_EQ(store.utilization(), 0.0);

  EXPECT_EQ(store.Put(FileOfSize(400, 1)), StatusCode::kOk);
  EXPECT_EQ(store.used(), 400u);
  EXPECT_DOUBLE_EQ(store.utilization(), 0.4);
}

TEST(FileStoreTest, RejectsOverCapacity) {
  FileStore store(1000);
  EXPECT_EQ(store.Put(FileOfSize(600, 1)), StatusCode::kOk);
  EXPECT_EQ(store.Put(FileOfSize(600, 2)), StatusCode::kInsufficientStorage);
  EXPECT_EQ(store.used(), 600u);
  EXPECT_EQ(store.Put(FileOfSize(400, 3)), StatusCode::kOk);  // exact fit
  EXPECT_EQ(store.free_space(), 0u);
}

TEST(FileStoreTest, RejectsDuplicates) {
  FileStore store(1000);
  EXPECT_EQ(store.Put(FileOfSize(100, 1)), StatusCode::kOk);
  EXPECT_EQ(store.Put(FileOfSize(100, 1)), StatusCode::kAlreadyExists);
  EXPECT_EQ(store.used(), 100u);
}

TEST(FileStoreTest, GetAndHas) {
  FileStore store(1000);
  StoredFile f = FileOfSize(100, 7);
  f.content = ToBytes("data");
  FileId id = f.cert.file_id;
  ASSERT_EQ(store.Put(std::move(f)), StatusCode::kOk);
  EXPECT_TRUE(store.Has(id));
  const StoredFile* got = store.Get(id);
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->content, ToBytes("data"));
  EXPECT_EQ(store.Get(CertOfSize(1, 999).file_id), nullptr);
}

TEST(FileStoreTest, RemoveReleasesSpace) {
  FileStore store(1000);
  StoredFile f = FileOfSize(100, 1);
  FileId id = f.cert.file_id;
  ASSERT_EQ(store.Put(std::move(f)), StatusCode::kOk);
  auto freed = store.Remove(id);
  ASSERT_TRUE(freed.has_value());
  EXPECT_EQ(*freed, 100u);
  EXPECT_EQ(store.used(), 0u);
  EXPECT_FALSE(store.Remove(id).has_value());
}

TEST(FileStoreTest, DivertedFlagPreserved) {
  FileStore store(1000);
  StoredFile f = FileOfSize(50, 3);
  f.diverted = true;
  f.diverted_from = NodeDescriptor{U128(1, 2), 9};
  FileId id = f.cert.file_id;
  ASSERT_EQ(store.Put(std::move(f)), StatusCode::kOk);
  const StoredFile* got = store.Get(id);
  ASSERT_NE(got, nullptr);
  EXPECT_TRUE(got->diverted);
  EXPECT_EQ(got->diverted_from.addr, 9u);
}

TEST(FileStoreTest, Pointers) {
  FileStore store(1000);
  FileId id = CertOfSize(1, 5).file_id;
  EXPECT_FALSE(store.GetPointer(id).has_value());
  EXPECT_EQ(store.PutPointer(id, NodeDescriptor{U128(3, 4), 17}), StatusCode::kOk);
  auto ptr = store.GetPointer(id);
  ASSERT_TRUE(ptr.has_value());
  EXPECT_EQ(ptr->addr, 17u);
  EXPECT_EQ(store.pointer_count(), 1u);
  EXPECT_TRUE(store.RemovePointer(id));
  EXPECT_FALSE(store.RemovePointer(id));
}

TEST(FileStoreTest, PointersDoNotUseSpace) {
  FileStore store(1000);
  EXPECT_EQ(store.PutPointer(CertOfSize(1, 5).file_id, NodeDescriptor{U128(3, 4), 17}),
            StatusCode::kOk);
  EXPECT_EQ(store.used(), 0u);
}

TEST(FileStoreTest, FileIdsEnumeration) {
  FileStore store(10000);
  for (uint64_t i = 0; i < 10; ++i) {
    ASSERT_EQ(store.Put(FileOfSize(10, i)), StatusCode::kOk);
  }
  EXPECT_EQ(store.FileIds().size(), 10u);
  EXPECT_EQ(store.file_count(), 10u);
}

TEST(FileStoreTest, ZeroCapacityStoresNothing) {
  FileStore store(0);
  EXPECT_EQ(store.Put(FileOfSize(1, 1)), StatusCode::kInsufficientStorage);
}

TEST(StoragePolicyTest, PrimaryThreshold) {
  StoragePolicy policy;  // t_pri = 0.1
  EXPECT_TRUE(policy.AcceptPrimary(10, 1000));   // 1% of free
  EXPECT_TRUE(policy.AcceptPrimary(100, 1000));  // exactly 10%
  EXPECT_FALSE(policy.AcceptPrimary(101, 1000));
  EXPECT_FALSE(policy.AcceptPrimary(2000, 1000));  // larger than free
}

TEST(StoragePolicyTest, DivertedThresholdIsStricter) {
  StoragePolicy policy;  // t_div = 0.05
  EXPECT_TRUE(policy.AcceptDiverted(50, 1000));
  EXPECT_FALSE(policy.AcceptDiverted(51, 1000));
  // A file the primary threshold accepts can still be refused as diverted.
  EXPECT_TRUE(policy.AcceptPrimary(80, 1000));
  EXPECT_FALSE(policy.AcceptDiverted(80, 1000));
}

TEST(StoragePolicyTest, ZeroFreeRejectsEverything) {
  StoragePolicy policy;
  EXPECT_FALSE(policy.AcceptPrimary(1, 0));
  EXPECT_FALSE(policy.AcceptDiverted(1, 0));
}

}  // namespace
}  // namespace past
