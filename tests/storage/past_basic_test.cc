// Insert / lookup / reclaim semantics of PAST, including quota accounting,
// the immutability of files and the paper's weak reclaim semantics.
#include <gtest/gtest.h>

#include "tests/storage/past_test_util.h"

namespace past {
namespace {

class PastBasicTest : public ::testing::Test {
 protected:
  PastBasicTest() : net_(SmallNetOptions(101)) { net_.Build(40); }

  PastNetwork net_;
};

TEST_F(PastBasicTest, InsertStoresKReplicasOnClosestNodes) {
  PastNode* client = net_.node(3);
  Bytes content = ToBytes("hello PAST");
  auto result = net_.InsertSync(client, "hello.txt", content, 4);
  ASSERT_TRUE(result.ok()) << StatusCodeName(result.status());
  FileId id = result.value();
  EXPECT_EQ(net_.CountReplicas(id), 4);

  // The replica holders are exactly the 4 live nodes with ids closest to the
  // fileId's 128 msbs.
  std::vector<std::pair<U128, bool>> nodes;  // (ring distance, has replica)
  for (size_t i = 0; i < net_.size(); ++i) {
    nodes.emplace_back(net_.node(i)->overlay()->id().RingDistance(id.Top128()),
                       net_.node(i)->store().Has(id));
  }
  std::sort(nodes.begin(), nodes.end());
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(nodes[static_cast<size_t>(i)].second) << "closest node " << i;
  }
  for (size_t i = 4; i < nodes.size(); ++i) {
    EXPECT_FALSE(nodes[i].second) << "node rank " << i;
  }
}

TEST_F(PastBasicTest, LookupFromAnywhereReturnsAuthenticContent) {
  PastNode* client = net_.node(5);
  Bytes content = ToBytes("some file payload with more than a few bytes in it");
  auto inserted = net_.InsertSync(client, "f.bin", content, 3);
  ASSERT_TRUE(inserted.ok());
  for (size_t i = 0; i < net_.size(); i += 7) {
    auto looked = net_.LookupSync(net_.node(i), inserted.value());
    ASSERT_TRUE(looked.ok()) << "from node " << i;
    EXPECT_EQ(looked.value().content, content);
    EXPECT_TRUE(looked.value().cert.MatchesContent(content));
  }
}

TEST_F(PastBasicTest, QuotaDebitAndReclaimCredit) {
  PastNode* client = net_.node(9);
  const uint64_t before = client->card().quota_used();
  Bytes content(1000, 0x5a);
  auto inserted = net_.InsertSync(client, "quota.bin", content, 5);
  ASSERT_TRUE(inserted.ok());
  EXPECT_EQ(client->card().quota_used(), before + 5000);

  EXPECT_EQ(net_.ReclaimSync(client, inserted.value()), StatusCode::kOk);
  EXPECT_EQ(client->card().quota_used(), before);
}

TEST_F(PastBasicTest, InsertRejectedWhenQuotaExhausted) {
  PastNetworkOptions options = SmallNetOptions(103);
  options.default_user_quota = 100;  // tiny quota
  PastNetwork net(options);
  net.Build(10);
  auto result = net.InsertSync(net.node(0), "big.bin", Bytes(200, 1), 3);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status(), StatusCode::kQuotaExceeded);
}

TEST_F(PastBasicTest, FilesAreImmutableDistinctSaltsDistinctIds) {
  PastNode* client = net_.node(2);
  auto a = net_.InsertSync(client, "same-name", ToBytes("v1"), 3);
  auto b = net_.InsertSync(client, "same-name", ToBytes("v2"), 3);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Random salts give distinct fileIds; both versions coexist.
  EXPECT_NE(a.value(), b.value());
  EXPECT_EQ(net_.LookupSync(net_.node(11), a.value()).value().content, ToBytes("v1"));
  EXPECT_EQ(net_.LookupSync(net_.node(11), b.value()).value().content, ToBytes("v2"));
}

TEST_F(PastBasicTest, LookupOfNonexistentFileFails) {
  Rng rng(1);
  FileId bogus = rng.NextU160();
  auto result = net_.LookupSync(net_.node(1), bogus);
  EXPECT_FALSE(result.ok());
}

TEST_F(PastBasicTest, ReclaimRemovesObligationButIsNotDelete) {
  PastNode* client = net_.node(7);
  auto inserted = net_.InsertSync(client, "gone.txt", ToBytes("bye"), 3);
  ASSERT_TRUE(inserted.ok());
  ASSERT_EQ(net_.ReclaimSync(client, inserted.value()), StatusCode::kOk);
  // All primary replicas are gone.
  EXPECT_EQ(net_.CountReplicas(inserted.value()), 0);
  // Reclaiming again fails: the client no longer owns the record.
  EXPECT_EQ(net_.ReclaimSync(client, inserted.value()), StatusCode::kNotFound);
}

TEST_F(PastBasicTest, ReclaimByNonOwnerDoesNothing) {
  PastNode* owner = net_.node(4);
  PastNode* other = net_.node(21);
  auto inserted = net_.InsertSync(owner, "mine.txt", ToBytes("private"), 3);
  ASSERT_TRUE(inserted.ok());
  // The other client has no certificate -> local refusal.
  EXPECT_EQ(net_.ReclaimSync(other, inserted.value()), StatusCode::kNotFound);
  EXPECT_EQ(net_.CountReplicas(inserted.value()), 3);
}

TEST_F(PastBasicTest, DefaultReplicationFactorUsedWhenZero) {
  PastNode* client = net_.node(13);
  auto inserted = net_.InsertSync(client, "default-k.txt", ToBytes("k"), 0);
  ASSERT_TRUE(inserted.ok());
  EXPECT_EQ(net_.CountReplicas(inserted.value()),
            static_cast<int>(net_.options().past.default_replication));
}

TEST_F(PastBasicTest, SyntheticInsertTracksSizesWithoutContent) {
  PastNode* client = net_.node(17);
  auto inserted = net_.InsertSyntheticSync(client, "synthetic.dat", 50000, 3);
  ASSERT_TRUE(inserted.ok());
  EXPECT_EQ(net_.CountReplicas(inserted.value()), 3);
  uint64_t stored_bytes = 0;
  for (size_t i = 0; i < net_.size(); ++i) {
    if (net_.node(i)->store().Has(inserted.value())) {
      const StoredFile* f = net_.node(i)->store().Get(inserted.value());
      EXPECT_TRUE(f->content.empty());
      stored_bytes += f->cert.file_size;
    }
  }
  EXPECT_EQ(stored_bytes, 150000u);
}

TEST_F(PastBasicTest, ManyFilesRoughlyBalanceAcrossNodes) {
  // Uniform fileIds should balance the *number* of files per node (paper
  // property 3). Insert many small files and check no node dominates.
  PastNode* client = net_.node(0);
  for (int i = 0; i < 150; ++i) {
    auto r = net_.InsertSyntheticSync(client, "bal-" + std::to_string(i), 100, 3);
    ASSERT_TRUE(r.ok()) << i;
  }
  size_t max_files = 0;
  size_t total = 0;
  for (size_t i = 0; i < net_.size(); ++i) {
    max_files = std::max(max_files, net_.node(i)->store().file_count());
    total += net_.node(i)->store().file_count();
  }
  EXPECT_EQ(total, 450u);  // 150 files x k=3
  double mean = static_cast<double>(total) / static_cast<double>(net_.size());
  EXPECT_LT(static_cast<double>(max_files), mean * 4.0);
}

TEST_F(PastBasicTest, LookupFindsFileWithSmallerKThanRoutingAssumes) {
  // Replica-aware lookup routing assumes default_replication (5) holders, but
  // this file only has k=2. Delivery may land on a non-holder, whose
  // replica-set fallback must still locate the file.
  PastNode* client = net_.node(6);
  Bytes content = ToBytes("sparse replication");
  auto inserted = net_.InsertSync(client, "k2", content, 2);
  ASSERT_TRUE(inserted.ok());
  for (size_t i = 0; i < net_.size(); i += 5) {
    auto looked = net_.LookupSync(net_.node(i), inserted.value());
    ASSERT_TRUE(looked.ok()) << "from node " << i;
    EXPECT_EQ(looked.value().content, content);
  }
}

TEST_F(PastBasicTest, LookupThroughPointerAfterTargetedDiversion) {
  // Force a diverted replica by filling the replica-set nodes, then verify
  // lookups still resolve through the pointer chain. (Covered statistically
  // in past_diversion_test; this exercises the path within this fixture's
  // crypto-on configuration.)
  PastNode* client = net_.node(8);
  auto inserted = net_.InsertSync(client, "ptr", ToBytes("indirect"), 3);
  ASSERT_TRUE(inserted.ok());
  auto looked = net_.LookupSync(net_.node(25), inserted.value());
  ASSERT_TRUE(looked.ok());
  EXPECT_TRUE(looked.value().cert.Verify(net_.broker().public_key()));
}

TEST_F(PastBasicTest, InsertFromEveryNodeWorks) {
  for (size_t i = 0; i < net_.size(); i += 9) {
    auto r = net_.InsertSync(net_.node(i), "from-" + std::to_string(i),
                             ToBytes("data"), 2);
    EXPECT_TRUE(r.ok()) << "client " << i;
  }
}

}  // namespace
}  // namespace past
