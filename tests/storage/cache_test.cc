#include "src/storage/cache.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace past {
namespace {

FileCertificate Cert(uint64_t size, uint64_t tag) {
  FileCertificate cert;
  Bytes raw(20, 0);
  for (int i = 0; i < 8; ++i) {
    raw[static_cast<size_t>(i)] = static_cast<uint8_t>(tag >> (8 * i));
  }
  cert.file_id = U160::FromBytes(raw);
  cert.file_size = size;
  return cert;
}

TEST(CacheTest, NonePolicyRefusesEverything) {
  Cache cache(CachePolicy::kNone);
  EXPECT_FALSE(cache.Insert(Cert(10, 1), {}, 1000));
  EXPECT_EQ(cache.used(), 0u);
}

TEST(CacheTest, InsertAndGet) {
  Cache cache(CachePolicy::kGreedyDualSize);
  EXPECT_TRUE(cache.Insert(Cert(10, 1), ToBytes("x"), 1000));
  EXPECT_EQ(cache.used(), 10u);
  EXPECT_TRUE(cache.Contains(Cert(10, 1).file_id));
  const CachedFile* f = cache.Get(Cert(10, 1).file_id);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->content, ToBytes("x"));
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(CacheTest, MissCounts) {
  Cache cache(CachePolicy::kGreedyDualSize);
  EXPECT_EQ(cache.Get(Cert(1, 9).file_id), nullptr);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(CacheTest, DuplicateInsertRefused) {
  Cache cache(CachePolicy::kGreedyDualSize);
  EXPECT_TRUE(cache.Insert(Cert(10, 1), {}, 1000));
  EXPECT_FALSE(cache.Insert(Cert(10, 1), {}, 1000));
  EXPECT_EQ(cache.used(), 10u);
}

TEST(CacheTest, TooLargeRefused) {
  Cache cache(CachePolicy::kGreedyDualSize);
  EXPECT_FALSE(cache.Insert(Cert(2000, 1), {}, 1000));
}

TEST(CacheTest, EvictsToMakeRoom) {
  Cache cache(CachePolicy::kGreedyDualSize);
  EXPECT_TRUE(cache.Insert(Cert(600, 1), {}, 1000));
  EXPECT_TRUE(cache.Insert(Cert(600, 2), {}, 1000));  // evicts the first
  EXPECT_EQ(cache.entry_count(), 1u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_LE(cache.used(), 1000u);
}

TEST(CacheTest, GreedyDualSizePrefersSmallFiles) {
  // With equal access counts, GD-S evicts the *largest* file first (priority
  // = 1/size above the inflation floor).
  Cache cache(CachePolicy::kGreedyDualSize);
  EXPECT_TRUE(cache.Insert(Cert(500, 1), {}, 1000));  // large
  EXPECT_TRUE(cache.Insert(Cert(100, 2), {}, 1000));  // small
  EXPECT_TRUE(cache.Insert(Cert(450, 3), {}, 1000));  // forces one eviction
  EXPECT_FALSE(cache.Contains(Cert(500, 1).file_id));  // large one went
  EXPECT_TRUE(cache.Contains(Cert(100, 2).file_id));
}

TEST(CacheTest, LruEvictsLeastRecentlyUsed) {
  Cache cache(CachePolicy::kLru);
  EXPECT_TRUE(cache.Insert(Cert(400, 1), {}, 1000));
  EXPECT_TRUE(cache.Insert(Cert(400, 2), {}, 1000));
  // Touch 1 so that 2 is the LRU victim.
  EXPECT_NE(cache.Get(Cert(400, 1).file_id), nullptr);
  EXPECT_TRUE(cache.Insert(Cert(400, 3), {}, 1000));
  EXPECT_TRUE(cache.Contains(Cert(400, 1).file_id));
  EXPECT_FALSE(cache.Contains(Cert(400, 2).file_id));
}

TEST(CacheTest, GdsPopularSmallFileSurvivesChurn) {
  // A frequently-hit small file keeps a high H (= L + 1/size) and outlives a
  // stream of larger one-shot files.
  Cache cache(CachePolicy::kGreedyDualSize);
  EXPECT_TRUE(cache.Insert(Cert(100, 1), {}, 1000));
  for (int round = 0; round < 20; ++round) {
    EXPECT_NE(cache.Get(Cert(100, 1).file_id), nullptr);
    cache.Insert(Cert(400, static_cast<uint64_t>(100 + round)), {}, 1000);
  }
  EXPECT_TRUE(cache.Contains(Cert(100, 1).file_id));
}

TEST(CacheTest, RemoveFreesSpace) {
  Cache cache(CachePolicy::kGreedyDualSize);
  cache.Insert(Cert(100, 1), {}, 1000);
  EXPECT_TRUE(cache.Remove(Cert(100, 1).file_id));
  EXPECT_EQ(cache.used(), 0u);
  EXPECT_FALSE(cache.Remove(Cert(100, 1).file_id));
}

TEST(CacheTest, ShrinkToEvictsDownToBudget) {
  Cache cache(CachePolicy::kGreedyDualSize);
  for (uint64_t i = 0; i < 10; ++i) {
    cache.Insert(Cert(100, i), {}, 10000);
  }
  ASSERT_EQ(cache.used(), 1000u);
  uint64_t evicted = cache.ShrinkTo(250);
  EXPECT_GE(evicted, 750u);
  EXPECT_LE(cache.used(), 250u);
}

TEST(CacheTest, ShrinkToZeroEmptiesCache) {
  Cache cache(CachePolicy::kLru);
  cache.Insert(Cert(100, 1), {}, 1000);
  cache.Insert(Cert(100, 2), {}, 1000);
  cache.ShrinkTo(0);
  EXPECT_EQ(cache.used(), 0u);
  EXPECT_EQ(cache.entry_count(), 0u);
}

TEST(CacheTest, AvailableShrinkageEvictsOnInsert) {
  // The available budget can shrink between inserts (primary store grew);
  // inserting then must evict enough to fit the new budget.
  Cache cache(CachePolicy::kGreedyDualSize);
  cache.Insert(Cert(400, 1), {}, 1000);
  cache.Insert(Cert(400, 2), {}, 1000);
  EXPECT_TRUE(cache.Insert(Cert(100, 3), {}, 500));  // budget now 500
  EXPECT_LE(cache.used(), 500u);
}

TEST(CacheTest, StressRandomOperationsKeepInvariants) {
  Rng rng(1234);
  Cache cache(CachePolicy::kGreedyDualSize);
  const uint64_t budget = 5000;
  for (int op = 0; op < 2000; ++op) {
    uint64_t tag = rng.UniformU64(200);
    if (rng.Bernoulli(0.5)) {
      cache.Insert(Cert(1 + rng.UniformU64(800), tag), {}, budget);
    } else {
      cache.Get(Cert(1, tag).file_id);
    }
    ASSERT_LE(cache.used(), budget);
  }
  EXPECT_GT(cache.stats().insertions, 100u);
}

}  // namespace
}  // namespace past
