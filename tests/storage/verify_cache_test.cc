// VerifyCache unit tests plus metric pinning for the crypto.* counters.
//
// The pinning tests hold the instrument names and semantics stable: an
// insert-then-lookup of the same file must produce verify-cache hits on a
// live network, and a restarted node must start from an empty cache rather
// than serving memoized verdicts from its previous life.
#include "src/storage/verify_cache.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/obs/metrics.h"
#include "src/storage/past_network.h"

namespace past {
namespace {

Bytes Msg(const char* s) { return ToBytes(s); }

class VerifyCacheTest : public ::testing::Test {
 protected:
  uint64_t Count(const char* name) const {
    const Counter* c = metrics_.FindCounter(name);
    return c == nullptr ? 0 : c->value();
  }

  MetricsRegistry metrics_;
  Rng rng_{31337};
  RsaKeyPair key_ = RsaKeyPair::Generate(256, &rng_);
};

TEST_F(VerifyCacheTest, MemoizesValidSignature) {
  VerifyCache cache(16, &metrics_);
  Bytes msg = Msg("memoized message");
  Bytes sig = RsaSignMessage(key_, msg);
  EXPECT_TRUE(cache.VerifyMessage(key_.pub, msg, sig));
  EXPECT_TRUE(cache.VerifyMessage(key_.pub, msg, sig));
  EXPECT_EQ(Count("crypto.verify_total"), 2u);
  EXPECT_EQ(Count("crypto.verify_cache_miss"), 1u);
  EXPECT_EQ(Count("crypto.verify_cache_hit"), 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST_F(VerifyCacheTest, MemoizesFailedVerification) {
  VerifyCache cache(16, &metrics_);
  Bytes msg = Msg("message");
  Bytes sig = RsaSignMessage(key_, msg);
  sig[3] ^= 0x40;
  EXPECT_FALSE(cache.VerifyMessage(key_.pub, msg, sig));
  EXPECT_FALSE(cache.VerifyMessage(key_.pub, msg, sig));  // hit, still false
  EXPECT_EQ(Count("crypto.verify_cache_hit"), 1u);
}

TEST_F(VerifyCacheTest, DistinctInputsNeverShareEntries) {
  VerifyCache cache(16, &metrics_);
  Bytes msg = Msg("one message");
  Bytes sig = RsaSignMessage(key_, msg);
  EXPECT_TRUE(cache.VerifyMessage(key_.pub, msg, sig));
  // Different message, different signature, different key: all misses.
  Bytes other = Msg("another message");
  EXPECT_FALSE(cache.VerifyMessage(key_.pub, other, sig));
  Bytes tampered = sig;
  tampered.back() ^= 0x01;
  EXPECT_FALSE(cache.VerifyMessage(key_.pub, msg, tampered));
  RsaKeyPair other_key = RsaKeyPair::Generate(256, &rng_);
  EXPECT_FALSE(cache.VerifyMessage(other_key.pub, msg, sig));
  EXPECT_EQ(Count("crypto.verify_cache_hit"), 0u);
  EXPECT_EQ(Count("crypto.verify_cache_miss"), 4u);
}

TEST_F(VerifyCacheTest, FifoEvictionBoundsTheTable) {
  VerifyCache cache(2, &metrics_);
  Bytes sigs[3];
  Bytes msgs[3] = {Msg("a"), Msg("b"), Msg("c")};
  for (int i = 0; i < 3; ++i) {
    sigs[i] = RsaSignMessage(key_, msgs[i]);
    EXPECT_TRUE(cache.VerifyMessage(key_.pub, msgs[i], sigs[i]));
  }
  EXPECT_EQ(cache.size(), 2u);
  // "a" was evicted (oldest), so re-checking it is a miss; "c" is a hit.
  EXPECT_TRUE(cache.VerifyMessage(key_.pub, msgs[2], sigs[2]));
  EXPECT_EQ(Count("crypto.verify_cache_hit"), 1u);
  EXPECT_TRUE(cache.VerifyMessage(key_.pub, msgs[0], sigs[0]));
  EXPECT_EQ(Count("crypto.verify_cache_miss"), 4u);
}

TEST_F(VerifyCacheTest, ZeroCapacityDisablesMemoization) {
  VerifyCache cache(0, &metrics_);
  Bytes msg = Msg("uncached");
  Bytes sig = RsaSignMessage(key_, msg);
  EXPECT_TRUE(cache.VerifyMessage(key_.pub, msg, sig));
  EXPECT_TRUE(cache.VerifyMessage(key_.pub, msg, sig));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(Count("crypto.verify_total"), 2u);
  EXPECT_EQ(Count("crypto.verify_cache_hit"), 0u);
}

TEST_F(VerifyCacheTest, ClearEmptiesTheTable) {
  VerifyCache cache(16, &metrics_);
  Bytes msg = Msg("cleared");
  Bytes sig = RsaSignMessage(key_, msg);
  EXPECT_TRUE(cache.VerifyMessage(key_.pub, msg, sig));
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_TRUE(cache.VerifyMessage(key_.pub, msg, sig));
  EXPECT_EQ(Count("crypto.verify_cache_miss"), 2u);
}

TEST_F(VerifyCacheTest, NullMetricsIsFine) {
  VerifyCache cache(4, nullptr);
  Bytes msg = Msg("no registry");
  Bytes sig = RsaSignMessage(key_, msg);
  EXPECT_TRUE(cache.VerifyMessage(key_.pub, msg, sig));
  EXPECT_TRUE(cache.VerifyMessage(key_.pub, msg, sig));
}

// --- metric pinning on a live network ----------------------------------------

class VerifyCacheMetricsTest : public ::testing::Test {
 protected:
  static PastNetworkOptions Options() {
    PastNetworkOptions opts;
    opts.broker.key_bits = 256;
    opts.past.verify_crypto = true;
    return opts;
  }

  static uint64_t Count(PastNetwork& net, const char* name) {
    const Counter* c = net.overlay().network().metrics().FindCounter(name);
    return c == nullptr ? 0 : c->value();
  }
};

TEST_F(VerifyCacheMetricsTest, InsertThenLookupProducesCacheHits) {
  PastNetwork net(Options());
  net.Build(8);
  PastNode* client = net.node(0);
  auto inserted = net.InsertSync(client, "pinned-file", ToBytes("file body"), 3);
  ASSERT_TRUE(inserted.ok());
  ASSERT_TRUE(net.LookupSync(client, inserted.value()).ok());
  // Replication re-verifies the same certificate on several nodes, and the
  // lookup re-verifies it again at the client: hits must have happened.
  EXPECT_GT(Count(net, "crypto.verify_total"), 0u);
  EXPECT_GT(Count(net, "crypto.verify_cache_hit"), 0u);
  EXPECT_GT(Count(net, "crypto.verify_cache_miss"), 0u);
  EXPECT_EQ(Count(net, "crypto.verify_total"),
            Count(net, "crypto.verify_cache_hit") +
                Count(net, "crypto.verify_cache_miss"));
}

TEST_F(VerifyCacheMetricsTest, RestartedNodeStartsWithEmptyCache) {
  PastNetwork net(Options());
  net.Build(8);
  PastNode* client = net.node(0);
  auto inserted = net.InsertSync(client, "restart-file", ToBytes("contents"), 3);
  ASSERT_TRUE(inserted.ok());

  // Pick a node whose cache saw traffic (the client's did: it verified k
  // store receipts).
  EXPECT_GT(client->verify_cache().size(), 0u);

  size_t victim = net.size() - 1;
  net.CrashNode(victim);
  PastNode* rebooted = net.RestartNode(victim);
  ASSERT_NE(rebooted, nullptr);
  // A fresh node must never inherit memoized verdicts from its prior life.
  EXPECT_EQ(rebooted->verify_cache().size(), 0u);
}

TEST_F(VerifyCacheMetricsTest, DisabledCacheStillCountsVerifies) {
  PastNetworkOptions opts = Options();
  opts.past.verify_cache_entries = 0;
  PastNetwork net(opts);
  net.Build(8);
  PastNode* client = net.node(0);
  ASSERT_TRUE(net.InsertSync(client, "nocache-file", ToBytes("body"), 3).ok());
  EXPECT_GT(Count(net, "crypto.verify_total"), 0u);
  EXPECT_EQ(Count(net, "crypto.verify_cache_hit"), 0u);
  EXPECT_EQ(client->verify_cache().size(), 0u);
}

}  // namespace
}  // namespace past
