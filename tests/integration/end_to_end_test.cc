// Full-system integration tests: realistic mixed workloads over a complete
// PAST deployment — joins, inserts, lookups, reclaims, churn, caching and
// quota accounting all interacting.
#include <gtest/gtest.h>

#include "src/workload/workload.h"
#include "tests/storage/past_test_util.h"

namespace past {
namespace {

TEST(EndToEndTest, MixedWorkloadWithChurn) {
  PastNetworkOptions options = SmallNetOptions(501);
  options.default_node_capacity = 1ULL << 20;
  PastNetwork net(options);
  net.Build(50);
  Rng rng(21);

  struct LiveFile {
    FileId id;
    Bytes content;
    PastNode* owner;
  };
  std::vector<LiveFile> live;
  int inserts = 0, insert_fail = 0;
  int lookups = 0, lookup_fail = 0;
  int reclaims = 0;
  int churn_events = 0;

  for (int step = 0; step < 120; ++step) {
    double dice = rng.UniformDouble();
    if (dice < 0.35 || live.empty()) {
      Bytes content = rng.RandomBytes(64 + rng.UniformU64(512));
      PastNode* owner = net.RandomLiveNode();
      auto r = net.InsertSync(owner, "e2e-" + std::to_string(step), content, 3);
      ++inserts;
      if (r.ok()) {
        live.push_back({r.value(), content, owner});
      } else {
        ++insert_fail;
      }
    } else if (dice < 0.75) {
      const LiveFile& f = live[rng.PickIndex(live.size())];
      auto r = net.LookupSync(net.RandomLiveNode(), f.id);
      ++lookups;
      if (!r.ok() || r.value().content != f.content) {
        ++lookup_fail;
      }
    } else if (dice < 0.85 && live.size() > 3) {
      size_t idx = rng.PickIndex(live.size());
      if (live[idx].owner->overlay()->active()) {
        if (net.ReclaimSync(live[idx].owner, live[idx].id) == StatusCode::kOk) {
          ++reclaims;
          live.erase(live.begin() + static_cast<long>(idx));
        }
      }
    } else {
      // Churn: fail one node or add one.
      if (rng.Bernoulli(0.5)) {
        size_t victim = rng.UniformU64(net.size());
        if (net.node(victim)->overlay()->active() &&
            net.node(victim) != net.node(0)) {
          net.CrashNode(victim);
          ++churn_events;
        }
      } else {
        net.AddNode();
        ++churn_events;
      }
      net.Run(15 * kMicrosPerSecond);  // repair window
    }
  }

  EXPECT_GT(inserts, 20);
  EXPECT_GT(lookups, 20);
  EXPECT_GT(churn_events, 3);
  EXPECT_EQ(lookup_fail, 0) << "all lookups of live files must succeed";
  EXPECT_LT(insert_fail, inserts / 4);

  // Final audit: every live file still has full replication after settling.
  net.Run(60 * kMicrosPerSecond);
  int under_replicated = 0;
  for (const auto& f : live) {
    if (net.CountReplicas(f.id) < 3) {
      ++under_replicated;
    }
  }
  EXPECT_LE(under_replicated, static_cast<int>(live.size()) / 10);
}

TEST(EndToEndTest, RealisticWorkloadModelsDriveSystem) {
  PastNetworkOptions options = SmallNetOptions(503);
  options.default_node_capacity = 0;  // per-node capacities from the model
  PastNetwork net(options);
  Rng rng(31);
  CapacityModel capacities;
  capacities.base = 1 << 16;
  for (int i = 0; i < 40; ++i) {
    ASSERT_NE(net.AddNode(capacities.Sample(&rng), 1ULL << 30), nullptr);
  }

  FileSizeModel sizes;
  sizes.max_size = 1 << 15;  // keep test runtime bounded
  auto files = GenerateFiles(80, sizes, &rng);
  std::vector<FileId> stored;
  for (const auto& f : files) {
    auto r = net.InsertSyntheticSync(net.RandomLiveNode(), f.name, f.size, 3);
    if (r.ok()) {
      stored.push_back(r.value());
    }
  }
  EXPECT_GT(stored.size(), files.size() / 2);

  LookupTrace trace(stored.size(), 1.0);
  int ok = 0;
  for (int i = 0; i < 100; ++i) {
    const FileId& id = stored[trace.Next(&rng)];
    ok += net.LookupSync(net.RandomLiveNode(), id).ok() ? 1 : 0;
  }
  EXPECT_EQ(ok, 100);
}

TEST(EndToEndTest, StorageAccountingConsistentAcrossSystem) {
  PastNetwork net(SmallNetOptions(505));
  net.Build(25);
  PastNode* client = net.node(0);
  uint64_t expected_bytes = 0;
  for (int i = 0; i < 30; ++i) {
    uint64_t size = 100 + static_cast<uint64_t>(i) * 37;
    auto r = net.InsertSyntheticSync(client, "acct-" + std::to_string(i), size, 2);
    if (r.ok()) {
      expected_bytes += size * 2;
    }
  }
  auto summary = net.Summary();
  EXPECT_EQ(summary.primary_used, expected_bytes);
  EXPECT_EQ(client->card().quota_used(), expected_bytes);
}

TEST(EndToEndTest, WireSerializationCoversAllTraffic) {
  // Sanity check: a full workload runs entirely over encoded bytes; message
  // and byte counters grow accordingly.
  PastNetwork net(SmallNetOptions(507));
  net.Build(20);
  uint64_t sent_before = net.overlay().network().stats().sent;
  auto r = net.InsertSync(net.node(1), "wired", Bytes(1000, 7), 3);
  ASSERT_TRUE(r.ok());
  uint64_t sent_after = net.overlay().network().stats().sent;
  EXPECT_GT(sent_after, sent_before + 5);
  EXPECT_GT(net.overlay().network().stats().bytes_sent, 3000u);
}

}  // namespace
}  // namespace past
