#!/usr/bin/env bash
# Multi-process PAST cluster integration test.
#
# Spawns N past_cli daemons on localhost — one bootstrap, the rest joining
# through it — then drives real insert/lookup/reclaim traffic through the
# control ports:
#
#   1. every daemon reaches active (joined the overlay);
#   2. a bulk file (TCP path) and a small file (UDP path) inserted at node 1
#      are retrievable from other daemons with matching size and CRC;
#   3. after SIGKILLing one replica-holding daemon, lookups still succeed
#      from the survivors (replica failover);
#   4. a reclaim at the inserting daemon makes the file unretrievable.
#
# Usage: cluster_test.sh /path/to/past_cli
set -u

CLI="${1:?usage: cluster_test.sh /path/to/past_cli}"
N=5
# Derive the port block from the PID so parallel ctest runs don't collide.
BASE=$((21000 + ($$ % 2000) * 16))
WORKDIR="$(mktemp -d)"
PIDS=()

cleanup() {
  for pid in "${PIDS[@]}"; do
    kill -9 "$pid" 2>/dev/null
  done
  wait 2>/dev/null
  rm -rf "$WORKDIR"
}
trap cleanup EXIT

fail() {
  echo "FAIL: $*" >&2
  for i in $(seq 1 $N); do
    echo "--- daemon $i log ---" >&2
    cat "$WORKDIR/daemon$i.log" >&2 2>/dev/null
  done
  exit 1
}

port() { echo $((BASE + $1)); }
ctl_port() { echo $((BASE + 100 + $1)); }
ctl() { # ctl <node> <command...>
  local node=$1
  shift
  "$CLI" ctl "127.0.0.1:$(ctl_port "$node")" "$@"
}

start_daemon() { # start_daemon <i> [join_port]
  local i=$1 join=${2:-}
  local args=(daemon --port "$(port "$i")" --ctl-port "$(ctl_port "$i")"
              --node-seed "$i" --state-dir "$WORKDIR/state$i" --k 3)
  if [ -n "$join" ]; then
    args+=(--join "127.0.0.1:$join")
  fi
  "$CLI" "${args[@]}" >"$WORKDIR/daemon$i.log" 2>&1 &
  PIDS+=($!)
}

wait_active() { # wait_active <i>
  local i=$1
  for _ in $(seq 1 100); do
    if ctl "$i" status 2>/dev/null | grep -q "active=1"; then
      return 0
    fi
    sleep 0.2
  done
  fail "daemon $i never became active"
}

# --- 1. bring up the cluster ---------------------------------------------------

start_daemon 1
wait_active 1
for i in $(seq 2 $N); do
  start_daemon "$i" "$(port 1)"
  wait_active "$i"
done
echo "cluster: $N daemons active"

# --- 2. insert at node 1, look up elsewhere ------------------------------------

# Bulk file: payload far above the UDP threshold, so replicas travel over TCP.
BULK=$(ctl 1 insert bulk.bin 200000 3) || fail "bulk insert: $BULK"
BULK_ID=$(echo "$BULK" | awk '{print $2}')
BULK_CRC=$(echo "$BULK" | awk '{print $3}')
[ -n "$BULK_ID" ] || fail "bulk insert gave no id: $BULK"

# Small file: fits in one UDP datagram end to end.
SMALL=$(ctl 1 insert small.txt 400 3) || fail "small insert: $SMALL"
SMALL_ID=$(echo "$SMALL" | awk '{print $2}')
SMALL_CRC=$(echo "$SMALL" | awk '{print $3}')

for node in 3 5; do
  GOT=$(ctl "$node" lookup "$BULK_ID") || fail "bulk lookup at node $node: $GOT"
  echo "$GOT" | grep -q "size=200000" || fail "bulk size mismatch at node $node: $GOT"
  echo "$GOT" | grep -q "$BULK_CRC" || fail "bulk crc mismatch at node $node: $GOT"
done
GOT=$(ctl 4 lookup "$SMALL_ID") || fail "small lookup: $GOT"
echo "$GOT" | grep -q "$SMALL_CRC" || fail "small crc mismatch: $GOT"
echo "inserts verified across daemons"

# --- 3. kill a replica holder; lookups must survive ----------------------------

VICTIM=""
for i in 2 3 4; do
  if ctl "$i" status | grep -qv "files=0"; then
    VICTIM=$i
    break
  fi
done
[ -n "$VICTIM" ] || VICTIM=2
kill -9 "${PIDS[$((VICTIM - 1))]}" 2>/dev/null
echo "killed daemon $VICTIM"
# Let keep-alives notice the death (failure_timeout is 3 s in daemon mode)
# and replica maintenance run.
sleep 6

for node in 1 5; do
  if [ "$node" = "$VICTIM" ]; then
    continue
  fi
  GOT=$(ctl "$node" lookup "$BULK_ID") || fail "post-kill lookup at node $node: $GOT"
  echo "$GOT" | grep -q "$BULK_CRC" || fail "post-kill crc mismatch at node $node: $GOT"
done
echo "lookups survived daemon kill"

# --- 4. reclaim ----------------------------------------------------------------

GOT=$(ctl 1 reclaim "$SMALL_ID") || fail "reclaim: $GOT"
sleep 1
GOT=$(ctl 5 lookup "$SMALL_ID") && fail "reclaimed file still retrievable: $GOT"
echo "reclaim verified"

echo "PASS"
exit 0
