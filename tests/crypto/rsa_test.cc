#include "src/crypto/rsa.h"

#include <gtest/gtest.h>

#include "src/crypto/sha1.h"

namespace past {
namespace {

class RsaTest : public ::testing::Test {
 protected:
  Rng rng_{4242};
};

TEST_F(RsaTest, KeyGenerationProducesValidKey) {
  RsaKeyPair kp = RsaKeyPair::Generate(256, &rng_);
  EXPECT_GE(kp.pub.n.BitLength(), 255);
  EXPECT_EQ(kp.pub.e, BigNum::FromU64(65537));
  EXPECT_FALSE(kp.d.IsZero());
}

TEST_F(RsaTest, SignVerifyRoundTrip) {
  RsaKeyPair kp = RsaKeyPair::Generate(256, &rng_);
  Bytes msg = ToBytes("persistent peer-to-peer storage utility");
  Bytes sig = RsaSignMessage(kp, msg);
  EXPECT_TRUE(RsaVerifyMessage(kp.pub, msg, sig));
}

TEST_F(RsaTest, TamperedMessageRejected) {
  RsaKeyPair kp = RsaKeyPair::Generate(256, &rng_);
  Bytes msg = ToBytes("original");
  Bytes sig = RsaSignMessage(kp, msg);
  EXPECT_FALSE(RsaVerifyMessage(kp.pub, ToBytes("originaL"), sig));
}

TEST_F(RsaTest, TamperedSignatureRejected) {
  RsaKeyPair kp = RsaKeyPair::Generate(256, &rng_);
  Bytes msg = ToBytes("payload");
  Bytes sig = RsaSignMessage(kp, msg);
  for (size_t i = 0; i < sig.size(); i += 7) {
    Bytes bad = sig;
    bad[i] ^= 0x01;
    EXPECT_FALSE(RsaVerifyMessage(kp.pub, msg, bad)) << "byte " << i;
  }
}

TEST_F(RsaTest, WrongKeyRejected) {
  RsaKeyPair kp1 = RsaKeyPair::Generate(256, &rng_);
  RsaKeyPair kp2 = RsaKeyPair::Generate(256, &rng_);
  Bytes msg = ToBytes("payload");
  Bytes sig = RsaSignMessage(kp1, msg);
  EXPECT_FALSE(RsaVerifyMessage(kp2.pub, msg, sig));
}

TEST_F(RsaTest, WrongLengthSignatureRejected) {
  RsaKeyPair kp = RsaKeyPair::Generate(256, &rng_);
  Bytes msg = ToBytes("payload");
  Bytes sig = RsaSignMessage(kp, msg);
  Bytes truncated(sig.begin(), sig.end() - 1);
  EXPECT_FALSE(RsaVerifyMessage(kp.pub, msg, truncated));
  Bytes extended = sig;
  extended.push_back(0);
  EXPECT_FALSE(RsaVerifyMessage(kp.pub, msg, extended));
}

TEST_F(RsaTest, SignatureIsModulusWidth) {
  for (int bits : {256, 384, 512}) {
    RsaKeyPair kp = RsaKeyPair::Generate(bits, &rng_);
    Bytes sig = RsaSignMessage(kp, ToBytes("x"));
    EXPECT_EQ(sig.size(), kp.pub.n.ToBytes().size());
  }
}

TEST_F(RsaTest, DigestSigningDirect) {
  RsaKeyPair kp = RsaKeyPair::Generate(384, &rng_);
  auto digest = Sha1::Hash(ToBytes("abc"));
  Bytes sig = RsaSignDigest(kp, ByteSpan(digest.data(), digest.size()));
  EXPECT_TRUE(RsaVerifyDigest(kp.pub, ByteSpan(digest.data(), digest.size()), sig));
  auto other = Sha1::Hash(ToBytes("abd"));
  EXPECT_FALSE(RsaVerifyDigest(kp.pub, ByteSpan(other.data(), other.size()), sig));
}

TEST_F(RsaTest, PublicKeyEncodingRoundTrip) {
  RsaKeyPair kp = RsaKeyPair::Generate(256, &rng_);
  Bytes encoded = kp.pub.Encode();
  RsaPublicKey decoded;
  ASSERT_TRUE(RsaPublicKey::Decode(encoded, &decoded));
  EXPECT_EQ(decoded, kp.pub);
}

TEST_F(RsaTest, PublicKeyDecodeRejectsGarbage) {
  RsaPublicKey decoded;
  EXPECT_FALSE(RsaPublicKey::Decode(ToBytes("nonsense"), &decoded));
  EXPECT_FALSE(RsaPublicKey::Decode({}, &decoded));
}

TEST_F(RsaTest, DistinctKeysPerGeneration) {
  RsaKeyPair a = RsaKeyPair::Generate(256, &rng_);
  RsaKeyPair b = RsaKeyPair::Generate(256, &rng_);
  EXPECT_FALSE(a.pub == b.pub);
}

}  // namespace
}  // namespace past
