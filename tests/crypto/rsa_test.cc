#include "src/crypto/rsa.h"

#include <gtest/gtest.h>

#include "src/common/serializer.h"
#include "src/crypto/sha1.h"

namespace past {
namespace {

class RsaTest : public ::testing::Test {
 protected:
  Rng rng_{4242};
};

TEST_F(RsaTest, KeyGenerationProducesValidKey) {
  RsaKeyPair kp = RsaKeyPair::Generate(256, &rng_);
  EXPECT_GE(kp.pub.n.BitLength(), 255);
  EXPECT_EQ(kp.pub.e, BigNum::FromU64(65537));
  EXPECT_FALSE(kp.d.IsZero());
}

TEST_F(RsaTest, SignVerifyRoundTrip) {
  RsaKeyPair kp = RsaKeyPair::Generate(256, &rng_);
  Bytes msg = ToBytes("persistent peer-to-peer storage utility");
  Bytes sig = RsaSignMessage(kp, msg);
  EXPECT_TRUE(RsaVerifyMessage(kp.pub, msg, sig));
}

TEST_F(RsaTest, TamperedMessageRejected) {
  RsaKeyPair kp = RsaKeyPair::Generate(256, &rng_);
  Bytes msg = ToBytes("original");
  Bytes sig = RsaSignMessage(kp, msg);
  EXPECT_FALSE(RsaVerifyMessage(kp.pub, ToBytes("originaL"), sig));
}

TEST_F(RsaTest, TamperedSignatureRejected) {
  RsaKeyPair kp = RsaKeyPair::Generate(256, &rng_);
  Bytes msg = ToBytes("payload");
  Bytes sig = RsaSignMessage(kp, msg);
  for (size_t i = 0; i < sig.size(); i += 7) {
    Bytes bad = sig;
    bad[i] ^= 0x01;
    EXPECT_FALSE(RsaVerifyMessage(kp.pub, msg, bad)) << "byte " << i;
  }
}

TEST_F(RsaTest, WrongKeyRejected) {
  RsaKeyPair kp1 = RsaKeyPair::Generate(256, &rng_);
  RsaKeyPair kp2 = RsaKeyPair::Generate(256, &rng_);
  Bytes msg = ToBytes("payload");
  Bytes sig = RsaSignMessage(kp1, msg);
  EXPECT_FALSE(RsaVerifyMessage(kp2.pub, msg, sig));
}

TEST_F(RsaTest, WrongLengthSignatureRejected) {
  RsaKeyPair kp = RsaKeyPair::Generate(256, &rng_);
  Bytes msg = ToBytes("payload");
  Bytes sig = RsaSignMessage(kp, msg);
  Bytes truncated(sig.begin(), sig.end() - 1);
  EXPECT_FALSE(RsaVerifyMessage(kp.pub, msg, truncated));
  Bytes extended = sig;
  extended.push_back(0);
  EXPECT_FALSE(RsaVerifyMessage(kp.pub, msg, extended));
}

TEST_F(RsaTest, SignatureIsModulusWidth) {
  for (int bits : {256, 384, 512}) {
    RsaKeyPair kp = RsaKeyPair::Generate(bits, &rng_);
    Bytes sig = RsaSignMessage(kp, ToBytes("x"));
    EXPECT_EQ(sig.size(), kp.pub.n.ToBytes().size());
  }
}

TEST_F(RsaTest, DigestSigningDirect) {
  RsaKeyPair kp = RsaKeyPair::Generate(384, &rng_);
  auto digest = Sha1::Hash(ToBytes("abc"));
  Bytes sig = RsaSignDigest(kp, ByteSpan(digest.data(), digest.size()));
  EXPECT_TRUE(RsaVerifyDigest(kp.pub, ByteSpan(digest.data(), digest.size()), sig));
  auto other = Sha1::Hash(ToBytes("abd"));
  EXPECT_FALSE(RsaVerifyDigest(kp.pub, ByteSpan(other.data(), other.size()), sig));
}

TEST_F(RsaTest, PublicKeyEncodingRoundTrip) {
  RsaKeyPair kp = RsaKeyPair::Generate(256, &rng_);
  Bytes encoded = kp.pub.Encode();
  RsaPublicKey decoded;
  ASSERT_TRUE(RsaPublicKey::Decode(encoded, &decoded));
  EXPECT_EQ(decoded, kp.pub);
}

TEST_F(RsaTest, PublicKeyDecodeRejectsGarbage) {
  RsaPublicKey decoded;
  EXPECT_FALSE(RsaPublicKey::Decode(ToBytes("nonsense"), &decoded));
  EXPECT_FALSE(RsaPublicKey::Decode({}, &decoded));
}

TEST_F(RsaTest, DistinctKeysPerGeneration) {
  RsaKeyPair a = RsaKeyPair::Generate(256, &rng_);
  RsaKeyPair b = RsaKeyPair::Generate(256, &rng_);
  EXPECT_FALSE(a.pub == b.pub);
}

// A well-framed encoding whose modulus or exponent is zero must be rejected
// at Decode time: such a key can never verify anything, and letting it
// through would abort inside ModExp instead of failing cleanly.
TEST_F(RsaTest, PublicKeyDecodeRejectsZeroModulus) {
  Writer w;
  w.Blob(Bytes{});  // n = 0 encodes as an empty blob
  w.Blob(BigNum::FromU64(65537).ToBytes());
  RsaPublicKey decoded;
  EXPECT_FALSE(RsaPublicKey::Decode(w.Take(), &decoded));
}

TEST_F(RsaTest, PublicKeyDecodeRejectsZeroExponent) {
  RsaKeyPair kp = RsaKeyPair::Generate(256, &rng_);
  Writer w;
  w.Blob(kp.pub.n.ToBytes());
  w.Blob(Bytes{});  // e = 0
  RsaPublicKey decoded;
  EXPECT_FALSE(RsaPublicKey::Decode(w.Take(), &decoded));
}

TEST_F(RsaTest, PublicKeyDecodeRejectsTrailingBytes) {
  RsaKeyPair kp = RsaKeyPair::Generate(256, &rng_);
  Bytes encoded = kp.pub.Encode();
  encoded.push_back(0x00);
  RsaPublicKey decoded;
  EXPECT_FALSE(RsaPublicKey::Decode(encoded, &decoded));
}

// RFC 8017 requires the signature representative to be < n; a forger could
// otherwise shift s by multiples of n without changing s^e mod n.
TEST_F(RsaTest, SignatureNotBelowModulusRejected) {
  RsaKeyPair kp = RsaKeyPair::Generate(256, &rng_);
  Bytes msg = ToBytes("payload");
  size_t width = RsaSignMessage(kp, msg).size();
  Bytes sig_n = kp.pub.n.ToBytes(width);  // s == n
  EXPECT_FALSE(RsaVerifyMessage(kp.pub, msg, sig_n));
  Bytes sig_max(width, 0xFF);             // s far above n
  EXPECT_FALSE(RsaVerifyMessage(kp.pub, msg, sig_max));
}

TEST_F(RsaTest, HandBuiltZeroKeyFailsVerification) {
  RsaKeyPair kp = RsaKeyPair::Generate(256, &rng_);
  Bytes msg = ToBytes("payload");
  Bytes sig = RsaSignMessage(kp, msg);
  RsaPublicKey zero_n;
  zero_n.e = kp.pub.e;
  EXPECT_FALSE(RsaVerifyMessage(zero_n, msg, sig));
  RsaPublicKey zero_e;
  zero_e.n = kp.pub.n;
  EXPECT_FALSE(RsaVerifyMessage(zero_e, msg, sig));
}

// The CRT path is a pure speedup: a pair with the CRT components stripped
// must produce the exact same signature bytes through the plain-d path.
TEST_F(RsaTest, CrtSignatureMatchesPlainPath) {
  for (int bits : {256, 384, 512}) {
    RsaKeyPair kp = RsaKeyPair::Generate(bits, &rng_);
    ASSERT_TRUE(kp.HasCrt());
    RsaKeyPair plain;
    plain.pub = kp.pub;
    plain.d = kp.d;
    ASSERT_FALSE(plain.HasCrt());
    Bytes msg = ToBytes("crt signatures must be byte-identical");
    EXPECT_EQ(RsaSignMessage(kp, msg), RsaSignMessage(plain, msg)) << bits;
  }
}

}  // namespace
}  // namespace past
