// Differential suite holding the crypto fast paths equal to their reference
// implementations:
//
//  * BigNum::ModExp (Montgomery CIOS under the hood for odd moduli) against
//    BigNum::ModExpReference, across modulus widths that hit every kernel
//    (the unrolled k = 2/4/8 cases and the generic fallback), bases at and
//    above the modulus, and degenerate exponents;
//  * CRT signing (RsaSignDigest with p/q/dp/dq/qinv) against the plain
//    m^d mod n path, which must produce byte-identical signatures;
//  * fixed known-answer vectors, so a bug that breaks both paths the same
//    way still fails.
//
// Registered as the standalone `crypto_differential` ctest (LABELS
// crypto_diff) so tools/check.sh runs it as an explicit gate, including
// under the asan preset.
#include "src/crypto/bignum.h"

#include <gtest/gtest.h>

#include "src/common/bytes.h"
#include "src/common/rng.h"
#include "src/crypto/rsa.h"

namespace past {
namespace {

BigNum FromHex(const std::string& hex) {
  Bytes raw;
  EXPECT_TRUE(HexDecode(hex, &raw));
  return BigNum::FromBytes(raw);
}

// A random value of exactly `bits` bits (top bit set).
BigNum RandomBits(int bits, Rng* rng) {
  if (bits <= 0) {
    return BigNum();
  }
  Bytes raw((static_cast<size_t>(bits) + 7) / 8);
  for (auto& b : raw) {
    b = static_cast<uint8_t>(rng->NextU64());
  }
  raw[0] |= static_cast<uint8_t>(1u << ((bits - 1) % 8));
  raw[0] &= static_cast<uint8_t>(0xFF >> (7 - (bits - 1) % 8));
  return BigNum::FromBytes(raw);
}

BigNum RandomOdd(int bits, Rng* rng) {
  BigNum v = RandomBits(bits, rng);
  return v.IsOdd() ? v : v.Add(BigNum::FromU64(1));
}

class ModExpDifferentialTest : public ::testing::Test {
 protected:
  void ExpectEqualPaths(const BigNum& base, const BigNum& exp, const BigNum& mod) {
    EXPECT_EQ(BigNum::ModExp(base, exp, mod), BigNum::ModExpReference(base, exp, mod))
        << "base bits=" << base.BitLength() << " exp bits=" << exp.BitLength()
        << " mod bits=" << mod.BitLength();
  }

  Rng rng_{20260806};
};

TEST_F(ModExpDifferentialTest, RandomOddModuliAllKernelWidths) {
  // 65..128 bits exercise the k=2 kernel, 129..256 k=4, 257..512 k=8; the
  // in-between widths (129, 191, 320...) also stress partial top words, and
  // 513/576 fall through to the generic kernel.
  for (int mod_bits : {33, 64, 65, 127, 128, 129, 160, 191, 192, 256, 257,
                       320, 384, 512, 513, 576}) {
    for (int rep = 0; rep < 8; ++rep) {
      BigNum mod = RandomOdd(mod_bits, &rng_);
      BigNum base = RandomBits(mod_bits - (rep % 3), &rng_);
      BigNum exp = RandomBits(1 + (rep * mod_bits) / 4, &rng_);
      ExpectEqualPaths(base, exp, mod);
    }
  }
}

TEST_F(ModExpDifferentialTest, BaseAtAndAboveModulus) {
  for (int mod_bits : {64, 128, 192, 512}) {
    BigNum mod = RandomOdd(mod_bits, &rng_);
    BigNum exp = BigNum::FromU64(65537);
    ExpectEqualPaths(mod, exp, mod);                          // base == modulus
    ExpectEqualPaths(mod.Add(BigNum::FromU64(1)), exp, mod);  // base == modulus + 1
    ExpectEqualPaths(RandomBits(mod_bits + 40, &rng_), exp, mod);
    ExpectEqualPaths(mod.Mul(mod), exp, mod);                 // base == modulus^2
  }
}

TEST_F(ModExpDifferentialTest, DegenerateExponents) {
  for (int mod_bits : {33, 128, 512}) {
    BigNum mod = RandomOdd(mod_bits, &rng_);
    BigNum base = RandomBits(mod_bits - 1, &rng_);
    ExpectEqualPaths(base, BigNum(), mod);               // exponent 0 -> 1
    ExpectEqualPaths(base, BigNum::FromU64(1), mod);     // exponent 1 -> base mod n
    ExpectEqualPaths(BigNum(), RandomBits(40, &rng_), mod);            // base 0
    ExpectEqualPaths(BigNum::FromU64(1), RandomBits(40, &rng_), mod);  // base 1
  }
}

TEST_F(ModExpDifferentialTest, EdgeModuli) {
  // The smallest odd modulus Montgomery accepts, and the exponent widths
  // right at the small-exponent/window crossover.
  BigNum three = BigNum::FromU64(3);
  ExpectEqualPaths(BigNum::FromU64(2), BigNum::FromU64(1000), three);
  BigNum mod = RandomOdd(256, &rng_);
  BigNum base = RandomBits(255, &rng_);
  for (int exp_bits : {23, 24, 25, 26}) {
    ExpectEqualPaths(base, RandomBits(exp_bits, &rng_), mod);
  }
}

TEST_F(ModExpDifferentialTest, EvenModuliUseReferencePath) {
  for (int mod_bits : {34, 130, 514}) {
    BigNum mod = RandomBits(mod_bits, &rng_);
    if (mod.IsOdd()) {
      mod = mod.Add(BigNum::FromU64(1));
    }
    ExpectEqualPaths(RandomBits(mod_bits - 1, &rng_), BigNum::FromU64(65537), mod);
  }
}

// Fixed vectors (computed with an independent bignum implementation) catch a
// systematic error that corrupts ModExp and ModExpReference identically.
TEST(ModExpKat, PublicExponent512BitOddModulus) {
  BigNum n = FromHex(
      "b6f675cc81e74ef5e8e25d940ed904759531985d5d9dc9f81818e811892f902b"
      "d23f0824128b2f330c5c7fd0a6a3a4506513270e269e0d37f2a74de452e6b439");
  BigNum b = FromHex(
      "a170b33839263059f28c105d1fb17c2390c192cfd3ac94af0f21ddb66cad4a26"
      "8d116ece1738f7d93d9c172411e20b8f6b0d549b6f03675a1600a35a099950d8");
  BigNum want = FromHex(
      "311d1a6b2f2532878c56eabe2a716efb3b113b182e0f2d22d9997cc936253a2d"
      "bd0a20cbec9b4922bc7778a4e1471d37277c72025df80edbdf1e2ec6d6c2c9aa");
  EXPECT_EQ(BigNum::ModExp(b, BigNum::FromU64(65537), n), want);
  EXPECT_EQ(BigNum::ModExpReference(b, BigNum::FromU64(65537), n), want);
}

TEST(ModExpKat, LargeExponent192BitOddModulus) {
  BigNum n = FromHex("95e60af593bd04cf0fd630f1f29d0da9953f48f1a09f76b5");
  BigNum b = FromHex("0becd7b03898d190f9ebdacc0cb1e29c658cda14");
  BigNum e = FromHex("24ede6a46b4cb2424a23d5962217beaddbc496cb8e81973e");
  BigNum want = FromHex("24945dfe2d6066dfbfd8079c2950d950fdc78e1e2c2b4fb8");
  EXPECT_EQ(BigNum::ModExp(b, e, n), want);
  EXPECT_EQ(BigNum::ModExpReference(b, e, n), want);
}

TEST(ModExpKat, EvenModulus) {
  BigNum n = FromHex("cef8aa38922766581e27a1c08a6a63ec");
  BigNum b = FromHex("2e44158bae97ba94d0eda82f8f6d0558");
  BigNum want = FromHex("4c7345922d67e52584162ba3fd547730");
  EXPECT_EQ(BigNum::ModExp(b, BigNum::FromU64(65537), n), want);
}

// CRT signing must be indistinguishable, byte for byte, from the plain
// private-exponent path — the simulator's JSON determinism depends on it.
TEST(CrtDifferential, SignaturesByteIdenticalAcrossSizesAndDigests) {
  Rng rng(977);
  for (int bits : {256, 384, 512}) {
    RsaKeyPair crt = RsaKeyPair::Generate(bits, &rng);
    ASSERT_TRUE(crt.HasCrt());
    RsaKeyPair plain;
    plain.pub = crt.pub;
    plain.d = crt.d;
    for (int i = 0; i < 16; ++i) {
      Bytes digest(20);
      for (auto& byte : digest) {
        byte = static_cast<uint8_t>(rng.NextU64());
      }
      Bytes a = RsaSignDigest(crt, digest);
      Bytes b = RsaSignDigest(plain, digest);
      EXPECT_EQ(a, b) << "bits=" << bits << " digest " << i;
      EXPECT_TRUE(RsaVerifyDigest(crt.pub, digest, a));
    }
  }
}

TEST(CrtDifferential, PopulateCrtMatchesGeneratedComponents) {
  Rng rng(978);
  RsaKeyPair kp = RsaKeyPair::Generate(256, &rng);
  RsaKeyPair rebuilt;
  rebuilt.pub = kp.pub;
  rebuilt.d = kp.d;
  rebuilt.PopulateCrt(kp.p, kp.q);
  EXPECT_EQ(rebuilt.dp, kp.dp);
  EXPECT_EQ(rebuilt.dq, kp.dq);
  EXPECT_EQ(rebuilt.qinv, kp.qinv);
  Bytes digest(20, 0x5a);
  EXPECT_EQ(RsaSignDigest(rebuilt, digest), RsaSignDigest(kp, digest));
}

}  // namespace
}  // namespace past
