#include "src/crypto/sha1.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace past {
namespace {

std::string HashHex(std::string_view msg) {
  auto digest = Sha1::Hash(ToBytes(msg));
  return HexEncode(ByteSpan(digest.data(), digest.size()));
}

// FIPS 180-1 / well-known test vectors.
TEST(Sha1Test, EmptyString) {
  EXPECT_EQ(HashHex(""), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
}

TEST(Sha1Test, Abc) {
  EXPECT_EQ(HashHex("abc"), "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1Test, TwoBlockMessage) {
  EXPECT_EQ(HashHex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1Test, MillionAs) {
  Sha1 h;
  Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) {
    h.Update(ByteSpan(chunk.data(), chunk.size()));
  }
  auto digest = h.Finish();
  EXPECT_EQ(HexEncode(ByteSpan(digest.data(), digest.size())),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1Test, ExactBlockBoundary) {
  // 64-byte message exercises the padding block path.
  std::string msg(64, 'x');
  std::string msg63(63, 'x');
  std::string msg65(65, 'x');
  EXPECT_NE(HashHex(msg), HashHex(msg63));
  EXPECT_NE(HashHex(msg), HashHex(msg65));
}

TEST(Sha1Test, IncrementalMatchesOneShot) {
  Rng rng(42);
  for (int trial = 0; trial < 50; ++trial) {
    Bytes data = rng.RandomBytes(1 + rng.UniformU64(500));
    auto oneshot = Sha1::Hash(ByteSpan(data.data(), data.size()));
    Sha1 h;
    size_t pos = 0;
    while (pos < data.size()) {
      size_t n = 1 + rng.UniformU64(data.size() - pos);
      h.Update(ByteSpan(data.data() + pos, n));
      pos += n;
    }
    EXPECT_EQ(h.Finish(), oneshot);
  }
}

TEST(Sha1Test, HashToU160MatchesDigest) {
  Bytes msg = ToBytes("past");
  auto digest = Sha1::Hash(ByteSpan(msg.data(), msg.size()));
  U160 id = Sha1::HashToU160(ByteSpan(msg.data(), msg.size()));
  EXPECT_EQ(id, U160::FromBytes(ByteSpan(digest.data(), digest.size())));
}

TEST(Sha1Test, AvalancheEffect) {
  Bytes a = ToBytes("message A");
  Bytes b = ToBytes("message B");
  auto da = Sha1::Hash(ByteSpan(a.data(), a.size()));
  auto db = Sha1::Hash(ByteSpan(b.data(), b.size()));
  int differing_bits = 0;
  for (size_t i = 0; i < da.size(); ++i) {
    differing_bits += __builtin_popcount(da[i] ^ db[i]);
  }
  // ~half of 160 bits should differ.
  EXPECT_GT(differing_bits, 40);
  EXPECT_LT(differing_bits, 120);
}

}  // namespace
}  // namespace past
