#include "src/crypto/sha256.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace past {
namespace {

std::string HashHex(std::string_view msg) {
  auto digest = Sha256::Hash(ToBytes(msg));
  return HexEncode(ByteSpan(digest.data(), digest.size()));
}

// FIPS 180-4 test vectors.
TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(HashHex(""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(HashHex("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(HashHex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  Sha256 h;
  Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) {
    h.Update(ByteSpan(chunk.data(), chunk.size()));
  }
  auto digest = h.Finish();
  EXPECT_EQ(HexEncode(ByteSpan(digest.data(), digest.size())),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    Bytes data = rng.RandomBytes(1 + rng.UniformU64(500));
    auto oneshot = Sha256::Hash(ByteSpan(data.data(), data.size()));
    Sha256 h;
    size_t pos = 0;
    while (pos < data.size()) {
      size_t n = 1 + rng.UniformU64(data.size() - pos);
      h.Update(ByteSpan(data.data() + pos, n));
      pos += n;
    }
    EXPECT_EQ(h.Finish(), oneshot);
  }
}

// RFC 4231 HMAC-SHA256 test vectors.
TEST(HmacSha256Test, Rfc4231Case1) {
  Bytes key(20, 0x0b);
  Bytes msg = ToBytes("Hi There");
  auto mac = HmacSha256(key, msg);
  EXPECT_EQ(HexEncode(ByteSpan(mac.data(), mac.size())),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacSha256Test, Rfc4231Case2) {
  Bytes key = ToBytes("Jefe");
  Bytes msg = ToBytes("what do ya want for nothing?");
  auto mac = HmacSha256(key, msg);
  EXPECT_EQ(HexEncode(ByteSpan(mac.data(), mac.size())),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacSha256Test, Rfc4231Case3) {
  Bytes key(20, 0xaa);
  Bytes msg(50, 0xdd);
  auto mac = HmacSha256(key, msg);
  EXPECT_EQ(HexEncode(ByteSpan(mac.data(), mac.size())),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(HmacSha256Test, LongKeyIsHashedFirst) {
  // RFC 4231 case 6: 131-byte key.
  Bytes key(131, 0xaa);
  Bytes msg = ToBytes("Test Using Larger Than Block-Size Key - Hash Key First");
  auto mac = HmacSha256(key, msg);
  EXPECT_EQ(HexEncode(ByteSpan(mac.data(), mac.size())),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacSha256Test, KeySensitivity) {
  Bytes msg = ToBytes("payload");
  auto mac1 = HmacSha256(ToBytes("key1"), msg);
  auto mac2 = HmacSha256(ToBytes("key2"), msg);
  EXPECT_NE(Bytes(mac1.begin(), mac1.end()), Bytes(mac2.begin(), mac2.end()));
}

}  // namespace
}  // namespace past
