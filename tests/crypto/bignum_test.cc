#include "src/crypto/bignum.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace past {
namespace {

TEST(BigNumTest, ZeroProperties) {
  BigNum z;
  EXPECT_TRUE(z.IsZero());
  EXPECT_FALSE(z.IsOdd());
  EXPECT_EQ(z.BitLength(), 0);
  EXPECT_EQ(z, BigNum::FromU64(0));
}

TEST(BigNumTest, FromU64RoundTrip) {
  for (uint64_t v : {0ULL, 1ULL, 255ULL, 65536ULL, ~0ULL, 0x123456789abcdefULL}) {
    EXPECT_EQ(BigNum::FromU64(v).ToU64(), v);
  }
}

TEST(BigNumTest, BytesRoundTrip) {
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    Bytes raw = rng.RandomBytes(1 + rng.UniformU64(40));
    raw[0] |= 1;  // avoid a leading zero changing the minimal width
    BigNum v = BigNum::FromBytes(raw);
    EXPECT_EQ(v.ToBytes(), raw);
  }
}

TEST(BigNumTest, ToBytesFixedWidthPads) {
  BigNum v = BigNum::FromU64(0xabcd);
  Bytes b = v.ToBytes(8);
  ASSERT_EQ(b.size(), 8u);
  EXPECT_EQ(b[6], 0xab);
  EXPECT_EQ(b[7], 0xcd);
  EXPECT_EQ(b[0], 0x00);
}

TEST(BigNumTest, Comparison) {
  EXPECT_LT(BigNum::FromU64(3), BigNum::FromU64(5));
  EXPECT_GT(BigNum::FromU64(1).ShiftLeft(100), BigNum::FromU64(~0ULL));
}

TEST(BigNumTest, AddCommutesAndCarries) {
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    BigNum a = BigNum::RandomWithBits(1 + static_cast<int>(rng.UniformU64(200)), &rng);
    BigNum b = BigNum::RandomWithBits(1 + static_cast<int>(rng.UniformU64(200)), &rng);
    EXPECT_EQ(a.Add(b), b.Add(a));
    EXPECT_EQ(a.Add(b).Sub(b), a);
  }
}

TEST(BigNumTest, Add64BitCheck) {
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    uint64_t a = rng.NextU64() >> 1;
    uint64_t b = rng.NextU64() >> 1;
    EXPECT_EQ(BigNum::FromU64(a).Add(BigNum::FromU64(b)).ToU64(), a + b);
  }
}

TEST(BigNumTest, MulMatches64Bit) {
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    uint64_t a = rng.NextU64() >> 33;
    uint64_t b = rng.NextU64() >> 33;
    EXPECT_EQ(BigNum::FromU64(a).Mul(BigNum::FromU64(b)).ToU64(), a * b);
  }
}

TEST(BigNumTest, MulByZero) {
  Rng rng(9);
  BigNum big = BigNum::RandomWithBits(300, &rng);
  EXPECT_TRUE(big.Mul(BigNum()).IsZero());
  EXPECT_TRUE(BigNum().Mul(big).IsZero());
}

TEST(BigNumTest, ShiftRoundTrip) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    BigNum v = BigNum::RandomWithBits(150, &rng);
    int shift = static_cast<int>(rng.UniformU64(200));
    EXPECT_EQ(v.ShiftLeft(shift).ShiftRight(shift), v);
  }
}

TEST(BigNumTest, ShiftLeftIsMulByPowerOfTwo) {
  BigNum v = BigNum::FromU64(13);
  EXPECT_EQ(v.ShiftLeft(5), BigNum::FromU64(13 << 5));
  EXPECT_EQ(v.ShiftLeft(64), v.Mul(BigNum::FromU64(1).ShiftLeft(64)));
}

// Property sweep: fast DivMod must agree with the bitwise reference across a
// range of operand sizes, including the qhat-correction edge cases that only
// appear with particular limb patterns.
class BigNumDivModProperty : public ::testing::TestWithParam<int> {};

TEST_P(BigNumDivModProperty, MatchesReferenceAndReconstructs) {
  Rng rng(100 + static_cast<uint64_t>(GetParam()));
  for (int trial = 0; trial < 300; ++trial) {
    int abits = 1 + static_cast<int>(rng.UniformU64(static_cast<uint64_t>(GetParam())));
    int bbits = 1 + static_cast<int>(rng.UniformU64(static_cast<uint64_t>(GetParam())));
    BigNum a = BigNum::RandomWithBits(abits, &rng);
    BigNum b = BigNum::RandomWithBits(bbits, &rng);
    BigNum q1, r1, q2, r2;
    a.DivMod(b, &q1, &r1);
    a.DivModBitwise(b, &q2, &r2);
    ASSERT_EQ(q1, q2);
    ASSERT_EQ(r1, r2);
    ASSERT_EQ(q1.Mul(b).Add(r1), a);
    ASSERT_LT(r1, b);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, BigNumDivModProperty,
                         ::testing::Values(32, 64, 128, 256, 512, 1024));

TEST(BigNumTest, DivModEdgeCases) {
  BigNum a = BigNum::FromU64(100);
  BigNum q, r;
  // Dividend smaller than divisor.
  a.DivMod(BigNum::FromU64(1000), &q, &r);
  EXPECT_TRUE(q.IsZero());
  EXPECT_EQ(r, a);
  // Exact division.
  a.DivMod(BigNum::FromU64(25), &q, &r);
  EXPECT_EQ(q, BigNum::FromU64(4));
  EXPECT_TRUE(r.IsZero());
  // Divide by one.
  a.DivMod(BigNum::FromU64(1), &q, &r);
  EXPECT_EQ(q, a);
  EXPECT_TRUE(r.IsZero());
  // Self-division.
  a.DivMod(a, &q, &r);
  EXPECT_EQ(q, BigNum::FromU64(1));
  EXPECT_TRUE(r.IsZero());
}

TEST(BigNumTest, ModExpSmallCases) {
  // 3^5 mod 7 = 243 mod 7 = 5.
  EXPECT_EQ(BigNum::ModExp(BigNum::FromU64(3), BigNum::FromU64(5), BigNum::FromU64(7)),
            BigNum::FromU64(5));
  // x^0 = 1.
  EXPECT_EQ(
      BigNum::ModExp(BigNum::FromU64(10), BigNum(), BigNum::FromU64(13)),
      BigNum::FromU64(1));
  // Fermat: a^(p-1) = 1 mod p.
  EXPECT_EQ(BigNum::ModExp(BigNum::FromU64(2), BigNum::FromU64(1'000'002),
                           BigNum::FromU64(1'000'003)),
            BigNum::FromU64(1));
}

TEST(BigNumTest, ModExpMatchesNaive) {
  Rng rng(13);
  for (int trial = 0; trial < 50; ++trial) {
    uint64_t base = rng.UniformU64(1000);
    uint64_t exp = rng.UniformU64(20);
    uint64_t mod = 2 + rng.UniformU64(10000);
    uint64_t expect = 1 % mod;
    for (uint64_t i = 0; i < exp; ++i) {
      expect = (expect * base) % mod;
    }
    EXPECT_EQ(BigNum::ModExp(BigNum::FromU64(base), BigNum::FromU64(exp),
                             BigNum::FromU64(mod)),
              BigNum::FromU64(expect));
  }
}

TEST(BigNumTest, GcdBasics) {
  EXPECT_EQ(BigNum::Gcd(BigNum::FromU64(12), BigNum::FromU64(18)), BigNum::FromU64(6));
  EXPECT_EQ(BigNum::Gcd(BigNum::FromU64(17), BigNum::FromU64(13)), BigNum::FromU64(1));
  EXPECT_EQ(BigNum::Gcd(BigNum::FromU64(0), BigNum::FromU64(5)), BigNum::FromU64(5));
}

TEST(BigNumTest, ModInverseProperty) {
  Rng rng(15);
  for (int trial = 0; trial < 100; ++trial) {
    BigNum m = BigNum::RandomWithBits(64, &rng);
    BigNum a = BigNum::RandomBelow(m, &rng);
    if (a.IsZero()) {
      continue;
    }
    BigNum inv;
    if (BigNum::ModInverse(a, m, &inv)) {
      EXPECT_EQ(a.Mul(inv).Mod(m), BigNum::FromU64(1).Mod(m));
    } else {
      EXPECT_NE(BigNum::Gcd(a, m), BigNum::FromU64(1));
    }
  }
}

TEST(BigNumTest, ModInverseOfEvenModEven) {
  BigNum inv;
  EXPECT_FALSE(BigNum::ModInverse(BigNum::FromU64(4), BigNum::FromU64(8), &inv));
}

TEST(BigNumTest, RandomWithBitsHasExactBitLength) {
  Rng rng(17);
  for (int bits : {1, 7, 32, 33, 100, 256}) {
    for (int i = 0; i < 20; ++i) {
      EXPECT_EQ(BigNum::RandomWithBits(bits, &rng).BitLength(), bits);
    }
  }
}

TEST(BigNumTest, RandomBelowInRange) {
  Rng rng(19);
  BigNum bound = BigNum::FromU64(1000);
  for (int i = 0; i < 200; ++i) {
    EXPECT_LT(BigNum::RandomBelow(bound, &rng), bound);
  }
}

TEST(BigNumTest, MillerRabinKnownPrimes) {
  Rng rng(21);
  for (uint64_t p : {2ULL, 3ULL, 5ULL, 97ULL, 65537ULL, 1000003ULL, 2147483647ULL}) {
    EXPECT_TRUE(BigNum::IsProbablePrime(BigNum::FromU64(p), 20, &rng)) << p;
  }
}

TEST(BigNumTest, MillerRabinKnownComposites) {
  Rng rng(23);
  // Includes Carmichael numbers (561, 1105, 1729), which fool Fermat tests.
  for (uint64_t c : {1ULL, 4ULL, 100ULL, 561ULL, 1105ULL, 1729ULL, 65536ULL,
                     1000001ULL}) {
    EXPECT_FALSE(BigNum::IsProbablePrime(BigNum::FromU64(c), 20, &rng)) << c;
  }
}

TEST(BigNumTest, GeneratePrimeIsPrimeAndSized) {
  Rng rng(25);
  for (int bits : {16, 32, 64, 128}) {
    BigNum p = BigNum::GeneratePrime(bits, &rng);
    EXPECT_EQ(p.BitLength(), bits);
    EXPECT_TRUE(BigNum::IsProbablePrime(p, 30, &rng));
  }
}

TEST(BigNumTest, ToHex) {
  EXPECT_EQ(BigNum().ToHex(), "0");
  EXPECT_EQ(BigNum::FromU64(255).ToHex(), "ff");
  EXPECT_EQ(BigNum::FromU64(0x1234).ToHex(), "1234");
}

}  // namespace
}  // namespace past
