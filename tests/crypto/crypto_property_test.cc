// Property tests over the crypto substrate: BigNum algebraic identities and
// RSA correctness across key sizes, parameterized by seed/size.
#include <gtest/gtest.h>

#include "src/crypto/bignum.h"
#include "src/crypto/rsa.h"

namespace past {
namespace {

class BigNumAlgebra : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BigNumAlgebra, DistributivityAndAssociativity) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 100; ++trial) {
    BigNum a = BigNum::RandomWithBits(1 + static_cast<int>(rng.UniformU64(200)), &rng);
    BigNum b = BigNum::RandomWithBits(1 + static_cast<int>(rng.UniformU64(200)), &rng);
    BigNum c = BigNum::RandomWithBits(1 + static_cast<int>(rng.UniformU64(200)), &rng);
    EXPECT_EQ(a.Mul(b.Add(c)), a.Mul(b).Add(a.Mul(c)));
    EXPECT_EQ(a.Mul(b).Mul(c), a.Mul(b.Mul(c)));
    EXPECT_EQ(a.Mul(b), b.Mul(a));
  }
}

TEST_P(BigNumAlgebra, ModularIdentities) {
  Rng rng(GetParam() ^ 0x55);
  for (int trial = 0; trial < 100; ++trial) {
    BigNum a = BigNum::RandomWithBits(128, &rng);
    BigNum b = BigNum::RandomWithBits(96, &rng);
    BigNum m = BigNum::RandomWithBits(1 + static_cast<int>(rng.UniformU64(100)), &rng);
    // (a mod m + b mod m) mod m == (a + b) mod m
    EXPECT_EQ(a.Mod(m).Add(b.Mod(m)).Mod(m), a.Add(b).Mod(m));
    // (a mod m * b mod m) mod m == (a * b) mod m
    EXPECT_EQ(a.Mod(m).Mul(b.Mod(m)).Mod(m), a.Mul(b).Mod(m));
  }
}

TEST_P(BigNumAlgebra, ModExpHomomorphism) {
  Rng rng(GetParam() ^ 0x77);
  for (int trial = 0; trial < 30; ++trial) {
    BigNum base = BigNum::RandomWithBits(64, &rng);
    BigNum e1 = BigNum::RandomWithBits(16, &rng);
    BigNum e2 = BigNum::RandomWithBits(16, &rng);
    BigNum m = BigNum::RandomWithBits(80, &rng);
    // base^(e1+e2) == base^e1 * base^e2 (mod m)
    EXPECT_EQ(BigNum::ModExp(base, e1.Add(e2), m),
              BigNum::ModExp(base, e1, m).Mul(BigNum::ModExp(base, e2, m)).Mod(m));
  }
}

TEST_P(BigNumAlgebra, FermatLittleTheoremOnGeneratedPrimes) {
  Rng rng(GetParam() ^ 0x99);
  BigNum p = BigNum::GeneratePrime(96, &rng);
  for (int trial = 0; trial < 20; ++trial) {
    BigNum a = BigNum::RandomBelow(p, &rng);
    if (a.IsZero()) {
      continue;
    }
    EXPECT_EQ(BigNum::ModExp(a, p.Sub(BigNum::FromU64(1)), p), BigNum::FromU64(1));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BigNumAlgebra, ::testing::Values(11u, 2222u, 31415u));

class RsaKeySizes : public ::testing::TestWithParam<int> {};

TEST_P(RsaKeySizes, SignVerifyAndRejectionAcrossSizes) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  RsaKeyPair kp = RsaKeyPair::Generate(GetParam(), &rng);
  for (int trial = 0; trial < 10; ++trial) {
    Bytes msg = rng.RandomBytes(1 + rng.UniformU64(300));
    Bytes sig = RsaSignMessage(kp, msg);
    EXPECT_TRUE(RsaVerifyMessage(kp.pub, msg, sig));
    Bytes tampered = msg;
    tampered.push_back(0x01);
    EXPECT_FALSE(RsaVerifyMessage(kp.pub, tampered, sig));
  }
  // Deterministic signatures (textbook RSA over a digest).
  Bytes msg = ToBytes("stable");
  EXPECT_EQ(RsaSignMessage(kp, msg), RsaSignMessage(kp, msg));
}

INSTANTIATE_TEST_SUITE_P(Sizes, RsaKeySizes, ::testing::Values(256, 384, 512, 768));

}  // namespace
}  // namespace past
