// Crash-injection sweep over the durable storage engine.
//
// A DiskStore runs a randomized workload on a FaultInjectionEnv that records
// every filesystem mutation. For EVERY prefix of that operation log — i.e.
// a simulated crash between any two filesystem operations, plus a variant
// where the final write itself is torn in half — the post-crash directory is
// materialized and reopened. Recovery must always succeed and yield exactly
// the state after some logical-operation prefix of the workload:
//   * at least everything acknowledged before the last completed Sync()
//     (durability: nothing synced is ever lost), and
//   * never state that was not actually written (no invented records).
// A separate case drops a write from a sealed segment (a page lost by the
// kernel) and requires Open() to report kCorruption rather than crash or
// silently serve a hole.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/diskstore/disk_store.h"
#include "src/diskstore/fault_env.h"
#include "src/diskstore/sharded_store.h"
#include "tests/diskstore/temp_dir.h"

namespace past {
namespace {

ByteSpan Span(const Bytes& b) { return ByteSpan(b.data(), b.size()); }

// Logical contents of the store: both keyspaces, value bytes included.
struct ModelState {
  std::map<U160, Bytes> files;
  std::map<U160, Bytes> pointers;

  bool operator==(const ModelState& other) const = default;
};

template <typename Store>
ModelState Snapshot(const Store& store) {
  ModelState out;
  for (const U160& key : store.Keys()) {
    out.files[key] = store.Get(key).value();
  }
  for (const U160& key : store.PointerKeys()) {
    out.pointers[key] = store.GetPointer(key).value();
  }
  return out;
}

struct WorkloadTrace {
  // snapshots[j] = logical state after the first j workload operations;
  // env_ops_after[j] = how many filesystem ops had happened by then.
  std::vector<ModelState> snapshots;
  std::vector<size_t> env_ops_after;
  // (env op count, logical op count) at each completed Sync().
  std::vector<std::pair<size_t, size_t>> sync_points;
};

// Small segments, aggressive compaction, periodic syncs: a few hundred
// filesystem ops covering rollover, compaction, and both keyspaces.
DiskStoreOptions SweepOptions(Env* env) {
  DiskStoreOptions options;
  options.segment_target_bytes = 512;
  options.compact_min_bytes = 600;
  options.compact_garbage_ratio = 0.5;
  options.sync_every = 0;
  options.env = env;
  return options;
}

void RunWorkload(DiskStore* store, const FaultInjectionEnv& env,
                 WorkloadTrace* out) {
  Rng rng(2024);
  WorkloadTrace& trace = *out;
  trace.snapshots.push_back(Snapshot(*store));
  trace.env_ops_after.push_back(env.ops().size());
  for (int op = 0; op < 140; ++op) {
    const U160 key = U160::FromBytes(
        Span(Bytes(U160::kBytes, static_cast<uint8_t>(rng.UniformU64(12)))));
    const uint64_t kind = rng.UniformU64(10);
    if (kind < 5) {
      Bytes value = rng.RandomBytes(rng.UniformU64(61));
      ASSERT_EQ(store->Put(key, Span(value)), StatusCode::kOk)
          << "workload op " << op;
    } else if (kind < 7) {
      StatusCode status = store->Remove(key);
      ASSERT_TRUE(status == StatusCode::kOk || status == StatusCode::kNotFound);
    } else if (kind < 9) {
      Bytes value = rng.RandomBytes(1 + rng.UniformU64(24));
      ASSERT_EQ(store->PutPointer(key, Span(value)), StatusCode::kOk);
    } else {
      StatusCode status = store->RemovePointer(key);
      ASSERT_TRUE(status == StatusCode::kOk || status == StatusCode::kNotFound);
    }
    trace.snapshots.push_back(Snapshot(*store));
    trace.env_ops_after.push_back(env.ops().size());
    if (op % 7 == 6) {
      ASSERT_EQ(store->Sync(), StatusCode::kOk);
      trace.sync_points.emplace_back(env.ops().size(), trace.snapshots.size() - 1);
    }
  }
}


// The latest logical op count guaranteed durable when the first `op_count`
// filesystem ops survived the crash.
size_t GuaranteedPrefix(const WorkloadTrace& trace, size_t op_count) {
  size_t guaranteed = 0;
  for (const auto& [env_ops, logical_ops] : trace.sync_points) {
    if (env_ops <= op_count) {
      guaranteed = logical_ops;
    }
  }
  return guaranteed;
}

void CheckRecovery(const FaultInjectionEnv& env, const WorkloadTrace& trace,
                   const TempDir& tmp, const MaterializeOptions& crash,
                   const std::string& label) {
  const std::string dir = tmp.Sub(label);
  ASSERT_EQ(env.Materialize(dir, crash), StatusCode::kOk);
  Result<std::unique_ptr<DiskStore>> reopened =
      DiskStore::Open(dir, SweepOptions(nullptr));
  ASSERT_TRUE(reopened.ok())
      << label << ": recovery failed with " << StatusCodeName(reopened.status());
  const ModelState recovered = Snapshot(*reopened.value());

  const size_t guaranteed = GuaranteedPrefix(trace, crash.op_count);
  bool matched = false;
  for (size_t j = guaranteed; j < trace.snapshots.size(); ++j) {
    if (trace.snapshots[j] == recovered) {
      matched = true;
      break;
    }
  }
  EXPECT_TRUE(matched)
      << label << ": recovered state matches no logical prefix >= " << guaranteed
      << " (files=" << recovered.files.size()
      << " pointers=" << recovered.pointers.size() << ")";
}

TEST(CrashRecoverySweep, EveryCrashPointRecoversAConsistentPrefix) {
  TempDir tmp;
  FaultInjectionEnv env(Env::Default(), tmp.Sub("live"));
  WorkloadTrace trace;
  {
    DiskStoreOptions options = SweepOptions(&env);
    Result<std::unique_ptr<DiskStore>> store =
        DiskStore::Open(tmp.Sub("live"), options);
    ASSERT_TRUE(store.ok());
    RunWorkload(store.value().get(), env, &trace);
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
  }
  ASSERT_GT(env.ops().size(), 100u);
  ASSERT_GT(trace.sync_points.size(), 10u);

  for (size_t p = 0; p <= env.ops().size(); ++p) {
    MaterializeOptions crash;
    crash.op_count = p;
    CheckRecovery(env, trace, tmp, crash, "crash-" + std::to_string(p));
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
    // Torn variant: the crash interrupts the final write halfway.
    if (p > 0 && env.ops()[p - 1].kind == EnvOp::Kind::kWrite &&
        env.ops()[p - 1].data.size() > 1) {
      crash.torn_tail_bytes = env.ops()[p - 1].data.size() / 2;
      CheckRecovery(env, trace, tmp, crash, "torn-" + std::to_string(p));
      if (::testing::Test::HasFatalFailure()) {
        return;
      }
    }
  }
}

// Group-commit variant of the sweep. In group-commit mode an acknowledged
// Put/Remove is durable the moment it returns — the shard's committer fsyncs
// the batch before waking the waiter — so the guaranteed prefix at a crash
// point is the last *acknowledged* operation, not merely the last explicit
// Sync(). With a single client thread at most one operation is in flight at
// any filesystem-op boundary, so the recovered state (all shards combined)
// must equal some acknowledged logical prefix.
DiskStoreOptions GroupCommitSweepOptions(Env* env) {
  DiskStoreOptions options;
  options.segment_target_bytes = 512;
  options.compact_min_bytes = 600;
  options.compact_garbage_ratio = 0.5;
  options.shard_count = 2;
  options.group_commit = true;
  options.commit_batch_max = 8;
  options.commit_delay_us = 0;  // ack immediately; batching is not under test
  options.env = env;
  return options;
}

TEST(CrashRecoverySweep, GroupCommitAckIsDurableAtEveryCrashPoint) {
  TempDir tmp;
  FaultInjectionEnv env(Env::Default(), tmp.Sub("live"));
  // snapshots[j] = state after j acknowledged ops; env_ops_after[j] = the
  // filesystem-op count once that ack (and hence its fsync) completed.
  std::vector<ModelState> snapshots;
  std::vector<size_t> env_ops_after;
  {
    Result<std::unique_ptr<ShardedDiskStore>> store =
        ShardedDiskStore::Open(tmp.Sub("live"), GroupCommitSweepOptions(&env));
    ASSERT_TRUE(store.ok());
    Rng rng(4242);
    snapshots.push_back(Snapshot(*store.value()));
    env_ops_after.push_back(env.ops().size());
    for (int op = 0; op < 80; ++op) {
      const U160 key = U160::FromBytes(
          Span(Bytes(U160::kBytes, static_cast<uint8_t>(rng.UniformU64(12)))));
      const uint64_t kind = rng.UniformU64(10);
      if (kind < 5) {
        Bytes value = rng.RandomBytes(rng.UniformU64(61));
        ASSERT_EQ(store.value()->Put(key, Span(value)), StatusCode::kOk);
      } else if (kind < 7) {
        StatusCode status = store.value()->Remove(key);
        ASSERT_TRUE(status == StatusCode::kOk ||
                    status == StatusCode::kNotFound);
      } else if (kind < 9) {
        Bytes value = rng.RandomBytes(1 + rng.UniformU64(24));
        ASSERT_EQ(store.value()->PutPointer(key, Span(value)), StatusCode::kOk);
      } else {
        StatusCode status = store.value()->RemovePointer(key);
        ASSERT_TRUE(status == StatusCode::kOk ||
                    status == StatusCode::kNotFound);
      }
      // The ack already implies durability; the store is quiescent here, so
      // the op-log size is a stable ack boundary.
      snapshots.push_back(Snapshot(*store.value()));
      env_ops_after.push_back(env.ops().size());
    }
  }
  ASSERT_GT(env.ops().size(), 100u);

  for (size_t p = 0; p <= env.ops().size(); ++p) {
    SCOPED_TRACE("crash point " + std::to_string(p));
    MaterializeOptions crash;
    crash.op_count = p;
    const std::string dir = tmp.Sub("gc-crash-" + std::to_string(p));
    ASSERT_EQ(env.Materialize(dir, crash), StatusCode::kOk);
    // Recover without threads: same layout, group commit off.
    DiskStoreOptions reopen_options = GroupCommitSweepOptions(nullptr);
    reopen_options.group_commit = false;
    Result<std::unique_ptr<ShardedDiskStore>> reopened =
        ShardedDiskStore::Open(dir, reopen_options);
    ASSERT_TRUE(reopened.ok())
        << "recovery failed with " << StatusCodeName(reopened.status());
    const ModelState recovered = Snapshot(*reopened.value());

    size_t guaranteed = 0;
    for (size_t j = 0; j < env_ops_after.size(); ++j) {
      if (env_ops_after[j] <= p) {
        guaranteed = j;
      }
    }
    bool matched = false;
    for (size_t j = guaranteed; j < snapshots.size(); ++j) {
      if (snapshots[j] == recovered) {
        matched = true;
        break;
      }
    }
    EXPECT_TRUE(matched)
        << "recovered state matches no acknowledged prefix >= " << guaranteed
        << " (files=" << recovered.files.size()
        << " pointers=" << recovered.pointers.size() << ")";
    if (::testing::Test::HasFatalFailure() || !matched) {
      return;
    }
  }
}

TEST(CrashRecoverySweep, DroppedWriteInSealedSegmentReportsCorruption) {
  TempDir tmp;
  FaultInjectionEnv env(Env::Default(), tmp.Sub("live"));
  DiskStoreOptions options = SweepOptions(&env);
  options.compact_min_bytes = 1ULL << 30;  // keep old segments around
  Result<std::unique_ptr<DiskStore>> store =
      DiskStore::Open(tmp.Sub("live"), options);
  ASSERT_TRUE(store.ok());
  Rng rng(99);
  for (int i = 0; i < 40; ++i) {
    Bytes value = rng.RandomBytes(40);
    Bytes raw(U160::kBytes, static_cast<uint8_t>(i));
    ASSERT_EQ(store.value()->Put(U160::FromBytes(Span(raw)), Span(value)),
              StatusCode::kOk);
  }
  ASSERT_GT(store.value()->stats().segments, 2u);

  // Find a record write to the FIRST segment (not its header) and drop it:
  // the hole reads back as zeros under later intact segments.
  const std::string first_seg = SegmentFileName(1);
  size_t drop = SIZE_MAX;
  for (size_t i = 0; i < env.ops().size(); ++i) {
    const EnvOp& op = env.ops()[i];
    if (op.kind == EnvOp::Kind::kWrite && op.path == first_seg &&
        op.offset >= kSegmentHeaderSize) {
      drop = i;
      break;
    }
  }
  ASSERT_NE(drop, SIZE_MAX);

  MaterializeOptions crash;
  crash.op_count = env.ops().size();
  crash.drop_op = drop;
  ASSERT_EQ(env.Materialize(tmp.Sub("dropped"), crash), StatusCode::kOk);
  Result<std::unique_ptr<DiskStore>> reopened =
      DiskStore::Open(tmp.Sub("dropped"), SweepOptions(nullptr));
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status(), StatusCode::kCorruption);
}

}  // namespace
}  // namespace past
