// Scoped temporary directory for diskstore tests.
#pragma once

#include <cstdlib>
#include <filesystem>
#include <string>

#include "src/common/check.h"

namespace past {

class TempDir {
 public:
  TempDir() {
    std::string templ =
        (std::filesystem::temp_directory_path() / "past-state-XXXXXX").string();
    PAST_CHECK(::mkdtemp(templ.data()) != nullptr);
    path_ = templ;
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }

  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;

  const std::string& path() const { return path_; }
  std::string Sub(const std::string& name) const { return path_ + "/" + name; }

 private:
  std::string path_;
};

}  // namespace past

