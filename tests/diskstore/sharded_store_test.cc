// ShardedDiskStore: routing, single-shard layout parity, group-commit
// durability and batching, block-cache coherence, background compaction, and
// layout migration (including crashed-migration cleanup).
#include "src/diskstore/sharded_store.h"

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <map>
#include <thread>
#include <vector>

#include "src/common/crc32c.h"
#include "src/common/rng.h"
#include "src/diskstore/disk_store.h"
#include "src/diskstore/log_format.h"
#include "src/obs/metrics.h"
#include "tests/diskstore/temp_dir.h"

namespace past {
namespace {

ByteSpan Span(const Bytes& b) { return ByteSpan(b.data(), b.size()); }

U160 KeyOf(uint8_t fill) {
  Bytes raw(U160::kBytes, fill);
  return U160::FromBytes(Span(raw));
}

std::unique_ptr<ShardedDiskStore> MustOpen(const std::string& dir,
                                           const DiskStoreOptions& options) {
  Result<std::unique_ptr<ShardedDiskStore>> opened =
      ShardedDiskStore::Open(dir, options);
  EXPECT_TRUE(opened.ok()) << StatusCodeName(opened.status());
  return opened.ok() ? std::move(opened).value() : nullptr;
}

TEST(ShardIndex, MatchesCrc32cModuloAndIsPinned) {
  Rng rng(7);
  for (int i = 0; i < 64; ++i) {
    Bytes raw = rng.RandomBytes(U160::kBytes);
    const U160 key = U160::FromBytes(Span(raw));
    const uint32_t crc = Crc32c(ByteSpan(key.bytes().data(), U160::kBytes));
    for (uint32_t count : {1u, 2u, 4u, 64u}) {
      EXPECT_EQ(ShardedDiskStore::ShardIndex(key, count), crc % count);
    }
  }
  // Shard count 1 always routes to 0, and the routing function itself is
  // pinned: changing CRC32C (or the modulus) would orphan on-disk layouts.
  EXPECT_EQ(ShardedDiskStore::ShardIndex(KeyOf(0x00), 1), 0u);
  EXPECT_EQ(ShardedDiskStore::ShardIndex(KeyOf(0xab), 4),
            Crc32c(ByteSpan(KeyOf(0xab).bytes().data(), U160::kBytes)) % 4);
}

// With shard_count == 1 and the concurrent features off, the sharded engine
// must produce a byte-identical directory to a plain DiskStore fed the same
// operations — the upgrade story for existing state dirs is "nothing
// changes".
TEST(ShardedDiskStore, SingleShardLayoutIsByteIdenticalToDiskStore) {
  TempDir tmp;
  Rng rng(11);
  std::vector<std::pair<U160, Bytes>> ops;
  for (int i = 0; i < 60; ++i) {
    ops.emplace_back(KeyOf(static_cast<uint8_t>(rng.UniformU64(16))),
                     rng.RandomBytes(1 + rng.UniformU64(120)));
  }

  DiskStoreOptions options;
  options.segment_target_bytes = 512;
  {
    Result<std::unique_ptr<DiskStore>> plain =
        DiskStore::Open(tmp.Sub("plain"), options);
    ASSERT_TRUE(plain.ok());
    for (const auto& [key, value] : ops) {
      ASSERT_EQ(plain.value()->Put(key, Span(value)), StatusCode::kOk);
    }
    ASSERT_EQ(plain.value()->Sync(), StatusCode::kOk);
  }
  {
    std::unique_ptr<ShardedDiskStore> sharded =
        MustOpen(tmp.Sub("sharded"), options);
    ASSERT_NE(sharded, nullptr);
    for (const auto& [key, value] : ops) {
      ASSERT_EQ(sharded->Put(key, Span(value)), StatusCode::kOk);
    }
    ASSERT_EQ(sharded->Sync(), StatusCode::kOk);
  }

  auto slurp = [](const std::string& dir) {
    std::map<std::string, std::string> files;
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
      std::ifstream in(entry.path(), std::ios::binary);
      std::string data((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
      files[entry.path().filename().string()] = data;
    }
    return files;
  };
  EXPECT_EQ(slurp(tmp.Sub("plain")), slurp(tmp.Sub("sharded")));
}

TEST(ShardedDiskStore, GroupCommitAcksAreDurableAndBatch) {
  TempDir tmp;
  MetricsRegistry metrics;
  DiskStoreOptions options;
  options.shard_count = 2;
  options.group_commit = true;
  options.commit_batch_max = 64;
  options.commit_delay_us = 3000;  // wide window so concurrent appends batch
  options.metrics = &metrics;
  const std::string dir = tmp.Sub("store");
  std::vector<std::pair<U160, Bytes>> written;
  {
    std::unique_ptr<ShardedDiskStore> store = MustOpen(dir, options);
    ASSERT_NE(store, nullptr);
    constexpr int kThreads = 8;
    constexpr int kPerThread = 32;
    std::vector<std::vector<std::pair<U160, Bytes>>> per_thread(kThreads);
    std::vector<std::thread> pool;
    for (int t = 0; t < kThreads; ++t) {
      pool.emplace_back([&, t] {
        Rng rng(100 + static_cast<uint64_t>(t));
        for (int i = 0; i < kPerThread; ++i) {
          const U160 key = rng.NextU160();
          Bytes value = rng.RandomBytes(1 + rng.UniformU64(100));
          ASSERT_EQ(store->Put(key, Span(value)), StatusCode::kOk);
          per_thread[t].emplace_back(key, std::move(value));
        }
      });
    }
    for (auto& t : pool) {
      t.join();
    }
    for (auto& v : per_thread) {
      written.insert(written.end(), v.begin(), v.end());
    }

    const ShardedDiskStore::CommitStats cs = store->commit_stats();
    EXPECT_EQ(cs.batched_appends, written.size());
    EXPECT_GT(cs.batches, 0u);
    // Batching actually happened: strictly fewer fsync batches than
    // acknowledged appends (8 threads inside a 3 ms window must coalesce).
    EXPECT_LT(cs.batches, cs.batched_appends);
    EXPECT_EQ(metrics.GetCounter("disk.commit.batches")->value(), cs.batches);
    EXPECT_EQ(metrics.GetLogHistogram("disk.commit.batch_size")->count(),
              cs.batches);
  }
  // Every acknowledged Put survives reopen with no extra Sync: the ack was
  // the durability point.
  DiskStoreOptions reopen;
  reopen.shard_count = 2;
  std::unique_ptr<ShardedDiskStore> store = MustOpen(dir, reopen);
  ASSERT_NE(store, nullptr);
  EXPECT_EQ(store->key_count(), written.size());
  for (const auto& [key, value] : written) {
    Result<Bytes> got = store->Get(key);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got.value(), value);
  }
}

TEST(ShardedDiskStore, BlockCacheHitsAndStaysCoherent) {
  TempDir tmp;
  MetricsRegistry metrics;
  DiskStoreOptions options;
  options.cache_bytes = 1ULL << 20;
  options.metrics = &metrics;
  std::unique_ptr<ShardedDiskStore> store = MustOpen(tmp.Sub("store"), options);
  ASSERT_NE(store, nullptr);
  ASSERT_NE(store->cache(), nullptr);

  const U160 key = KeyOf(1);
  Bytes v1(64, 0x11);
  Bytes v2(64, 0x22);
  ASSERT_EQ(store->Put(key, Span(v1)), StatusCode::kOk);
  // First Get misses (Put does not populate, it invalidates), second hits.
  ASSERT_EQ(store->Get(key).value(), v1);
  ASSERT_EQ(store->Get(key).value(), v1);
  EXPECT_EQ(store->cache()->stats().misses, 1u);
  EXPECT_EQ(store->cache()->stats().hits, 1u);
  EXPECT_EQ(metrics.GetCounter("disk.cache.hits")->value(), 1u);
  EXPECT_EQ(metrics.GetCounter("disk.cache.misses")->value(), 1u);

  // Overwrite invalidates: the next Get must see v2, not the cached v1.
  ASSERT_EQ(store->Put(key, Span(v2)), StatusCode::kOk);
  EXPECT_EQ(store->Get(key).value(), v2);
  // Remove invalidates too.
  ASSERT_EQ(store->Remove(key), StatusCode::kOk);
  EXPECT_FALSE(store->Get(key).ok());
}

TEST(ShardedDiskStore, BlockCacheEvictsUnderCapacity) {
  TempDir tmp;
  MetricsRegistry metrics;
  DiskStoreOptions options;
  options.cache_bytes = 1024;
  options.metrics = &metrics;
  std::unique_ptr<ShardedDiskStore> store = MustOpen(tmp.Sub("store"), options);
  ASSERT_NE(store, nullptr);
  Rng rng(5);
  std::vector<U160> keys;
  for (int i = 0; i < 8; ++i) {
    keys.push_back(rng.NextU160());
    Bytes value(400, static_cast<uint8_t>(i));
    ASSERT_EQ(store->Put(keys.back(), Span(value)), StatusCode::kOk);
  }
  for (const U160& key : keys) {
    ASSERT_TRUE(store->Get(key).ok());
  }
  EXPECT_GT(store->cache()->stats().evictions, 0u);
  EXPECT_LE(store->cache()->used_bytes(), 1024u);
  EXPECT_EQ(metrics.GetCounter("disk.cache.evictions")->value(),
            store->cache()->stats().evictions);
  EXPECT_EQ(static_cast<uint64_t>(
                metrics.GetGauge("disk.cache.used_bytes")->value()),
            store->cache()->used_bytes());
}

TEST(ShardedDiskStore, BackgroundCompactionReclaimsGarbage) {
  TempDir tmp;
  MetricsRegistry metrics;
  DiskStoreOptions options;
  options.shard_count = 2;
  options.background_compaction = true;
  options.segment_target_bytes = 512;
  options.compact_min_bytes = 600;
  options.compact_garbage_ratio = 0.5;
  options.metrics = &metrics;
  std::unique_ptr<ShardedDiskStore> store = MustOpen(tmp.Sub("store"), options);
  ASSERT_NE(store, nullptr);

  // Overwrite a small key set until compaction triggers; the serving thread
  // never runs Compact() itself, so reclamation proves the worker ran.
  Rng rng(17);
  std::vector<std::pair<U160, Bytes>> latest;
  for (int round = 0; round < 40; ++round) {
    latest.clear();
    for (uint8_t k = 0; k < 8; ++k) {
      Bytes value = rng.RandomBytes(64);
      ASSERT_EQ(store->Put(KeyOf(k), Span(value)), StatusCode::kOk);
      latest.emplace_back(KeyOf(k), std::move(value));
    }
  }
  // Real-time polling is unavoidable here: the compaction worker is a real
  // thread, not an event-queue actor.
  const auto deadline = std::chrono::steady_clock::now() +  // lint:allow-nondeterminism
                        std::chrono::seconds(10);
  while (store->commit_stats().background_compactions == 0 &&
         std::chrono::steady_clock::now() < deadline) {  // lint:allow-nondeterminism
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GT(store->commit_stats().background_compactions, 0u);
  EXPECT_EQ(metrics.GetCounter("disk.compact.background")->value(),
            store->commit_stats().background_compactions);
  EXPECT_EQ(metrics.GetLogHistogram("disk.compact.pause_us")->count(),
            store->commit_stats().background_compactions);
  // Latest values still served after compaction.
  for (const auto& [key, value] : latest) {
    Result<Bytes> got = store->Get(key);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got.value(), value);
  }
}

std::map<U160, Bytes> Contents(ShardedDiskStore* store) {
  std::map<U160, Bytes> out;
  for (const U160& key : store->Keys()) {
    out[key] = store->Get(key).value();
  }
  return out;
}

TEST(ShardedDiskStore, MigrationPreservesStateAcrossShardCounts) {
  TempDir tmp;
  const std::string dir = tmp.Sub("store");
  Rng rng(23);
  std::map<U160, Bytes> model;
  std::map<U160, Bytes> pointer_model;
  {
    DiskStoreOptions options;  // shard_count = 1
    std::unique_ptr<ShardedDiskStore> store = MustOpen(dir, options);
    ASSERT_NE(store, nullptr);
    for (int i = 0; i < 50; ++i) {
      const U160 key = rng.NextU160();
      Bytes value = rng.RandomBytes(1 + rng.UniformU64(80));
      ASSERT_EQ(store->Put(key, Span(value)), StatusCode::kOk);
      model[key] = std::move(value);
    }
    for (int i = 0; i < 10; ++i) {
      const U160 key = rng.NextU160();
      Bytes value = rng.RandomBytes(16);
      ASSERT_EQ(store->PutPointer(key, Span(value)), StatusCode::kOk);
      pointer_model[key] = std::move(value);
    }
    ASSERT_EQ(store->Sync(), StatusCode::kOk);
  }
  for (uint32_t count : {4u, 2u, 1u}) {
    SCOPED_TRACE("shard count " + std::to_string(count));
    DiskStoreOptions options;
    options.shard_count = count;
    std::unique_ptr<ShardedDiskStore> store = MustOpen(dir, options);
    ASSERT_NE(store, nullptr);
    EXPECT_EQ(Contents(store.get()), model);
    EXPECT_EQ(store->PointerKeys().size(), pointer_model.size());
    for (const auto& [key, value] : pointer_model) {
      Result<Bytes> got = store->GetPointer(key);
      ASSERT_TRUE(got.ok());
      EXPECT_EQ(got.value(), value);
    }
    // Mutate a key inside each layout so migration replays fresh state too.
    const U160 key = model.begin()->first;
    Bytes value = rng.RandomBytes(32);
    ASSERT_EQ(store->Put(key, Span(value)), StatusCode::kOk);
    model[key] = std::move(value);
    ASSERT_EQ(store->Sync(), StatusCode::kOk);
    // Layout on disk matches the requested shape.
    const bool sharded_dirs =
        std::filesystem::exists(dir + "/shard-" + std::to_string(count) + "-0");
    EXPECT_EQ(sharded_dirs, count > 1);
  }
}

TEST(ShardedDiskStore, CrashedMigrationWithoutCommitMarkerIsRolledBack) {
  TempDir tmp;
  const std::string dir = tmp.Sub("store");
  Rng rng(29);
  std::map<U160, Bytes> model;
  {
    DiskStoreOptions options;
    std::unique_ptr<ShardedDiskStore> store = MustOpen(dir, options);
    ASSERT_NE(store, nullptr);
    for (int i = 0; i < 20; ++i) {
      const U160 key = rng.NextU160();
      Bytes value = rng.RandomBytes(40);
      ASSERT_EQ(store->Put(key, Span(value)), StatusCode::kOk);
      model[key] = std::move(value);
    }
    ASSERT_EQ(store->Sync(), StatusCode::kOk);
  }
  // Simulate a crash mid-migration: the intent marker exists and a partial
  // target shard was written, but the commit marker never landed.
  const std::string partial = dir + "/shard-4-0/" + SegmentFileName(1);
  std::filesystem::create_directories(dir + "/shard-4-0");
  {
    std::ofstream junk(partial, std::ios::binary);
    junk << "partial migration garbage";
    std::ofstream marker(dir + "/migrate-to-4", std::ios::binary);
  }
  DiskStoreOptions options;  // reopen at the source count
  std::unique_ptr<ShardedDiskStore> store = MustOpen(dir, options);
  ASSERT_NE(store, nullptr);
  EXPECT_EQ(Contents(store.get()), model);
  EXPECT_FALSE(std::filesystem::exists(dir + "/migrate-to-4"));
  EXPECT_FALSE(std::filesystem::exists(partial));
}

TEST(ShardedDiskStore, StatsAggregateAcrossShards) {
  TempDir tmp;
  DiskStoreOptions options;
  options.shard_count = 4;
  std::unique_ptr<ShardedDiskStore> store = MustOpen(tmp.Sub("store"), options);
  ASSERT_NE(store, nullptr);
  Rng rng(31);
  for (int i = 0; i < 64; ++i) {
    Bytes value = rng.RandomBytes(64);
    ASSERT_EQ(store->Put(rng.NextU160(), Span(value)), StatusCode::kOk);
  }
  const ShardedDiskStore::Stats stats = store->stats();
  EXPECT_EQ(store->key_count(), 64u);
  EXPECT_GT(stats.live_bytes, 64u * 64u);
  EXPECT_GE(stats.segments, 4u);
  EXPECT_EQ(store->shard_count(), 4u);
}

}  // namespace
}  // namespace past
