#include "src/diskstore/disk_store.h"

#include <gtest/gtest.h>

#include <fstream>
#include <string>

#include "src/common/rng.h"
#include "src/obs/metrics.h"
#include "tests/diskstore/temp_dir.h"

namespace past {
namespace {

U160 KeyOf(uint32_t i) {
  std::array<uint8_t, U160::kBytes> raw{};
  raw[0] = static_cast<uint8_t>(i);
  raw[1] = static_cast<uint8_t>(i >> 8);
  raw[2] = static_cast<uint8_t>(i >> 16);
  raw[3] = static_cast<uint8_t>(i >> 24);
  raw[19] = 0x5a;
  return U160::FromBytes(ByteSpan(raw.data(), raw.size()));
}

Bytes ValueOf(uint32_t i, size_t len) {
  Bytes out(len);
  for (size_t j = 0; j < len; ++j) {
    out[j] = static_cast<uint8_t>(i * 31 + j);
  }
  return out;
}

ByteSpan Span(const Bytes& b) { return ByteSpan(b.data(), b.size()); }

std::unique_ptr<DiskStore> MustOpen(const std::string& dir,
                                    const DiskStoreOptions& options = {}) {
  Result<std::unique_ptr<DiskStore>> store = DiskStore::Open(dir, options);
  EXPECT_TRUE(store.ok()) << StatusCodeName(store.status());
  return std::move(store).value();
}

TEST(DiskStoreTest, PutGetRemoveRoundTrip) {
  TempDir tmp;
  auto store = MustOpen(tmp.Sub("db"));
  EXPECT_FALSE(store->Has(KeyOf(1)));
  EXPECT_EQ(store->Get(KeyOf(1)).status(), StatusCode::kNotFound);
  EXPECT_EQ(store->Remove(KeyOf(1)), StatusCode::kNotFound);

  EXPECT_EQ(store->Put(KeyOf(1), Span(ValueOf(1, 100))), StatusCode::kOk);
  EXPECT_EQ(store->Put(KeyOf(2), ByteSpan()), StatusCode::kOk);  // empty value
  EXPECT_TRUE(store->Has(KeyOf(1)));
  EXPECT_EQ(store->Get(KeyOf(1)).value(), ValueOf(1, 100));
  EXPECT_EQ(store->Get(KeyOf(2)).value(), Bytes{});
  EXPECT_EQ(store->key_count(), 2u);

  EXPECT_EQ(store->Remove(KeyOf(1)), StatusCode::kOk);
  EXPECT_FALSE(store->Has(KeyOf(1)));
  EXPECT_EQ(store->key_count(), 1u);
}

TEST(DiskStoreTest, OverwriteIsLastWriteWins) {
  TempDir tmp;
  auto store = MustOpen(tmp.Sub("db"));
  EXPECT_EQ(store->Put(KeyOf(1), Span(ValueOf(1, 40))), StatusCode::kOk);
  EXPECT_EQ(store->Put(KeyOf(1), Span(ValueOf(2, 17))), StatusCode::kOk);
  EXPECT_EQ(store->Get(KeyOf(1)).value(), ValueOf(2, 17));
  EXPECT_EQ(store->key_count(), 1u);
  EXPECT_GT(store->stats().garbage_bytes, 0u);
}

TEST(DiskStoreTest, PointerKeyspaceIsIndependent) {
  TempDir tmp;
  auto store = MustOpen(tmp.Sub("db"));
  EXPECT_EQ(store->Put(KeyOf(1), Span(ValueOf(1, 10))), StatusCode::kOk);
  EXPECT_EQ(store->PutPointer(KeyOf(1), Span(ValueOf(9, 6))), StatusCode::kOk);
  EXPECT_TRUE(store->Has(KeyOf(1)));
  EXPECT_TRUE(store->HasPointer(KeyOf(1)));
  EXPECT_EQ(store->GetPointer(KeyOf(1)).value(), ValueOf(9, 6));

  EXPECT_EQ(store->RemovePointer(KeyOf(1)), StatusCode::kOk);
  EXPECT_FALSE(store->HasPointer(KeyOf(1)));
  EXPECT_TRUE(store->Has(KeyOf(1)));  // file untouched
  EXPECT_EQ(store->RemovePointer(KeyOf(2)), StatusCode::kNotFound);
}

TEST(DiskStoreTest, ReopenRecoversEverything) {
  TempDir tmp;
  const std::string dir = tmp.Sub("db");
  {
    auto store = MustOpen(dir);
    for (uint32_t i = 0; i < 50; ++i) {
      EXPECT_EQ(store->Put(KeyOf(i), Span(ValueOf(i, i % 37))), StatusCode::kOk);
    }
    for (uint32_t i = 0; i < 50; i += 3) {
      EXPECT_EQ(store->Remove(KeyOf(i)), StatusCode::kOk);
    }
    EXPECT_EQ(store->PutPointer(KeyOf(1000), Span(ValueOf(7, 8))), StatusCode::kOk);
  }
  auto store = MustOpen(dir);
  EXPECT_GT(store->stats().replayed_records, 0u);
  for (uint32_t i = 0; i < 50; ++i) {
    if (i % 3 == 0) {
      EXPECT_FALSE(store->Has(KeyOf(i)));
    } else {
      ASSERT_TRUE(store->Has(KeyOf(i)));
      EXPECT_EQ(store->Get(KeyOf(i)).value(), ValueOf(i, i % 37));
    }
  }
  EXPECT_EQ(store->GetPointer(KeyOf(1000)).value(), ValueOf(7, 8));
}

TEST(DiskStoreTest, ActiveSegmentRollsOverAtTarget) {
  TempDir tmp;
  DiskStoreOptions options;
  options.segment_target_bytes = 256;
  options.compact_min_bytes = 1ULL << 30;  // keep compaction out of this test
  auto store = MustOpen(tmp.Sub("db"), options);
  for (uint32_t i = 0; i < 40; ++i) {
    EXPECT_EQ(store->Put(KeyOf(i), Span(ValueOf(i, 50))), StatusCode::kOk);
  }
  EXPECT_GT(store->stats().segments, 3u);

  // Everything survives a reopen across many segments.
  store.reset();
  store = MustOpen(tmp.Sub("db"), options);
  EXPECT_EQ(store->key_count(), 40u);
}

TEST(DiskStoreTest, CompactionReclaimsGarbageAndPreservesState) {
  TempDir tmp;
  DiskStoreOptions options;
  options.segment_target_bytes = 512;
  options.compact_min_bytes = 1ULL << 30;  // only explicit Compact()
  const std::string dir = tmp.Sub("db");
  auto store = MustOpen(dir, options);
  for (uint32_t round = 0; round < 10; ++round) {
    for (uint32_t i = 0; i < 8; ++i) {
      EXPECT_EQ(store->Put(KeyOf(i), Span(ValueOf(round * 8 + i, 60))),
                StatusCode::kOk);
    }
  }
  EXPECT_EQ(store->Remove(KeyOf(0)), StatusCode::kOk);
  EXPECT_EQ(store->PutPointer(KeyOf(99), Span(ValueOf(3, 9))), StatusCode::kOk);
  const uint64_t garbage_before = store->stats().garbage_bytes;
  EXPECT_GT(garbage_before, 0u);

  EXPECT_EQ(store->Compact(), StatusCode::kOk);
  EXPECT_EQ(store->stats().garbage_bytes, 0u);
  EXPECT_EQ(store->stats().compactions, 1u);
  EXPECT_EQ(store->stats().segments, 2u);  // compacted + fresh active
  for (uint32_t i = 1; i < 8; ++i) {
    EXPECT_EQ(store->Get(KeyOf(i)).value(), ValueOf(72 + i, 60));
  }
  EXPECT_FALSE(store->Has(KeyOf(0)));
  EXPECT_EQ(store->GetPointer(KeyOf(99)).value(), ValueOf(3, 9));

  // And the compacted log still replays.
  store.reset();
  store = MustOpen(dir, options);
  EXPECT_EQ(store->key_count(), 7u);
  EXPECT_EQ(store->pointer_count(), 1u);
  EXPECT_EQ(store->Get(KeyOf(5)).value(), ValueOf(77, 60));
}

TEST(DiskStoreTest, CompactionTriggersFromGarbageThresholds) {
  TempDir tmp;
  DiskStoreOptions options;
  options.segment_target_bytes = 512;
  options.compact_min_bytes = 512;
  options.compact_garbage_ratio = 0.5;
  auto store = MustOpen(tmp.Sub("db"), options);
  // Hammer one key: almost everything becomes garbage.
  for (uint32_t i = 0; i < 200; ++i) {
    EXPECT_EQ(store->Put(KeyOf(1), Span(ValueOf(i, 40))), StatusCode::kOk);
  }
  EXPECT_GT(store->stats().compactions, 0u);
  EXPECT_EQ(store->Get(KeyOf(1)).value(), ValueOf(199, 40));
}

TEST(DiskStoreTest, SyncPolicyControlsFsyncCadence) {
  TempDir tmp;
  DiskStoreOptions write_through;
  write_through.sync_every = 1;
  {
    auto store = MustOpen(tmp.Sub("wt"), write_through);
    for (uint32_t i = 0; i < 10; ++i) {
      EXPECT_EQ(store->Put(KeyOf(i), Span(ValueOf(i, 10))), StatusCode::kOk);
    }
    EXPECT_GE(store->stats().syncs, 10u);
  }
  DiskStoreOptions lazy;
  lazy.sync_every = 0;
  {
    auto store = MustOpen(tmp.Sub("lazy"), lazy);
    for (uint32_t i = 0; i < 10; ++i) {
      EXPECT_EQ(store->Put(KeyOf(i), Span(ValueOf(i, 10))), StatusCode::kOk);
    }
    EXPECT_EQ(store->stats().syncs, 0u);
    EXPECT_EQ(store->Sync(), StatusCode::kOk);
    EXPECT_EQ(store->stats().syncs, 1u);
  }
}

TEST(DiskStoreTest, TornTailIsTruncatedOnReopen) {
  TempDir tmp;
  const std::string dir = tmp.Sub("db");
  {
    auto store = MustOpen(dir);
    EXPECT_EQ(store->Put(KeyOf(1), Span(ValueOf(1, 30))), StatusCode::kOk);
    EXPECT_EQ(store->Put(KeyOf(2), Span(ValueOf(2, 30))), StatusCode::kOk);
  }
  // Simulate a crash mid-append: garbage half-record at the end of the only
  // segment.
  {
    std::ofstream f(dir + "/" + SegmentFileName(1),
                    std::ios::binary | std::ios::app);
    const char torn[] = {0x12, 0x34, 0x56};
    f.write(torn, sizeof(torn));
  }
  auto store = MustOpen(dir);
  EXPECT_EQ(store->stats().torn_tails, 1u);
  EXPECT_EQ(store->Get(KeyOf(1)).value(), ValueOf(1, 30));
  EXPECT_EQ(store->Get(KeyOf(2)).value(), ValueOf(2, 30));

  // After truncation the log is clean again: appends and reopen still work.
  EXPECT_EQ(store->Put(KeyOf(3), Span(ValueOf(3, 30))), StatusCode::kOk);
  store.reset();
  store = MustOpen(dir);
  EXPECT_EQ(store->stats().torn_tails, 0u);
  EXPECT_EQ(store->key_count(), 3u);
}

TEST(DiskStoreTest, MidLogCorruptionIsReportedNotDropped) {
  TempDir tmp;
  DiskStoreOptions options;
  options.segment_target_bytes = 128;  // force several segments
  options.compact_min_bytes = 1ULL << 30;
  const std::string dir = tmp.Sub("db");
  {
    auto store = MustOpen(dir, options);
    for (uint32_t i = 0; i < 12; ++i) {
      EXPECT_EQ(store->Put(KeyOf(i), Span(ValueOf(i, 40))), StatusCode::kOk);
    }
    EXPECT_GT(store->stats().segments, 2u);
  }
  // Flip one byte of a record in the FIRST segment: valid data follows it,
  // so this is corruption, not a torn tail.
  {
    std::fstream f(dir + "/" + SegmentFileName(1),
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(static_cast<std::streamoff>(kSegmentHeaderSize + 12));
    char byte = 0;
    f.seekg(static_cast<std::streamoff>(kSegmentHeaderSize + 12));
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x40);
    f.seekp(static_cast<std::streamoff>(kSegmentHeaderSize + 12));
    f.write(&byte, 1);
  }
  Result<std::unique_ptr<DiskStore>> reopened = DiskStore::Open(dir, options);
  EXPECT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status(), StatusCode::kCorruption);
}

TEST(DiskStoreTest, BadSegmentHeaderIsCorruption) {
  TempDir tmp;
  const std::string dir = tmp.Sub("db");
  {
    auto store = MustOpen(dir);
    EXPECT_EQ(store->Put(KeyOf(1), Span(ValueOf(1, 10))), StatusCode::kOk);
  }
  {
    std::fstream f(dir + "/" + SegmentFileName(1),
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(0);
    f.write("XXXX", 4);  // destroy the magic
  }
  // Even in the last segment a wrong magic is corruption: the header was
  // written and synced before any record was acknowledged.
  EXPECT_EQ(DiskStore::Open(dir, {}).status(), StatusCode::kCorruption);
}

TEST(DiskStoreTest, MetricsMirrorIntoSharedRegistry) {
  TempDir tmp;
  MetricsRegistry metrics;
  DiskStoreOptions options;
  options.metrics = &metrics;
  options.sync_every = 2;
  const std::string dir = tmp.Sub("db");
  {
    auto store = MustOpen(dir, options);
    for (uint32_t i = 0; i < 6; ++i) {
      EXPECT_EQ(store->Put(KeyOf(i), Span(ValueOf(i, 20))), StatusCode::kOk);
    }
    EXPECT_GT(metrics.GetCounter("disk.bytes_written")->value(), 0u);
    EXPECT_GE(metrics.GetCounter("disk.fsyncs")->value(), 3u);
    EXPECT_EQ(metrics.GetGauge("disk.segments")->value(), 1.0);
  }
  // The destructor hands back the gauge; reopening replays into the counter.
  EXPECT_EQ(metrics.GetGauge("disk.segments")->value(), 0.0);
  auto store = MustOpen(dir, options);
  EXPECT_EQ(metrics.GetCounter("disk.recovery_replayed")->value(), 6u);
  EXPECT_EQ(metrics.GetGauge("disk.segments")->value(), 1.0);
}

}  // namespace
}  // namespace past
