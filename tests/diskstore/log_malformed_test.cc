// Malformed-input coverage for the segment-log format: truncated headers,
// oversized and undersized length prefixes, and garbage buffers must map to
// the right ParseStatus without reading out of bounds. Complements
// disk_store_test.cc (engine behavior) and tests/fuzz/fuzz_diskstore_log.cc.
#include "src/diskstore/log_format.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace past {
namespace {

U160 Key(uint8_t fill) {
  Bytes raw(U160::kBytes, fill);
  return U160::FromBytes(ByteSpan(raw.data(), raw.size()));
}

TEST(LogMalformedTest, TruncatedHeaderRejected) {
  Bytes header = EncodeSegmentHeader(42);
  ASSERT_EQ(header.size(), kSegmentHeaderSize);
  uint64_t seq = 0;
  for (size_t len = 0; len < header.size(); ++len) {
    EXPECT_FALSE(DecodeSegmentHeader(ByteSpan(header.data(), len), &seq))
        << "header prefix of length " << len << " decoded";
  }
  ASSERT_TRUE(DecodeSegmentHeader(ByteSpan(header.data(), header.size()), &seq));
  EXPECT_EQ(seq, 42u);
}

TEST(LogMalformedTest, WrongMagicAndVersionRejected) {
  Bytes header = EncodeSegmentHeader(1);
  uint64_t seq = 0;
  Bytes bad_magic = header;
  bad_magic[0] ^= 0xff;
  EXPECT_FALSE(
      DecodeSegmentHeader(ByteSpan(bad_magic.data(), bad_magic.size()), &seq));
  Bytes bad_version = header;
  bad_version[4] += 1;
  EXPECT_FALSE(DecodeSegmentHeader(
      ByteSpan(bad_version.data(), bad_version.size()), &seq));
}

TEST(LogMalformedTest, RecordTruncationSweep) {
  Bytes value = {1, 2, 3, 4, 5, 6, 7};
  Bytes record =
      EncodeRecord(RecordType::kPut, Key(0xab), ByteSpan(value.data(), value.size()));
  // Every strict prefix is kTruncated (never kOk, never a crash); the parser
  // must also leave the offset pinned at the record start.
  for (size_t len = 0; len < record.size(); ++len) {
    size_t offset = 0;
    Record out;
    ParseStatus status = ParseRecord(ByteSpan(record.data(), len), &offset, &out);
    if (len == 0) {
      EXPECT_EQ(status, ParseStatus::kAtEnd);
    } else {
      EXPECT_EQ(status, ParseStatus::kTruncated) << "prefix length " << len;
    }
    EXPECT_EQ(offset, 0u);
  }
  size_t offset = 0;
  Record out;
  ASSERT_EQ(ParseRecord(ByteSpan(record.data(), record.size()), &offset, &out),
            ParseStatus::kOk);
  EXPECT_EQ(out.type, RecordType::kPut);
  EXPECT_EQ(out.key, Key(0xab));
  EXPECT_EQ(out.value, value);
  EXPECT_EQ(offset, record.size());
}

TEST(LogMalformedTest, OversizedLengthPrefixIsTruncated) {
  Bytes record = EncodeRecord(RecordType::kPut, Key(0x01), ByteSpan());
  // Claim a body far larger than the buffer: must read as a torn tail, not
  // an overread.
  record[4] = 0xff;
  record[5] = 0xff;
  record[6] = 0xff;
  record[7] = 0x7f;
  size_t offset = 0;
  Record out;
  EXPECT_EQ(ParseRecord(ByteSpan(record.data(), record.size()), &offset, &out),
            ParseStatus::kTruncated);
  EXPECT_EQ(offset, 0u);
}

TEST(LogMalformedTest, UndersizedLengthPrefixIsCorrupt) {
  // A length too small to hold type+key cannot be a record boundary.
  Bytes buf(kRecordPrefixSize + 4, 0);
  buf[4] = 4;  // len = 4 < kRecordBodyMinSize
  size_t offset = 0;
  Record out;
  EXPECT_EQ(ParseRecord(ByteSpan(buf.data(), buf.size()), &offset, &out),
            ParseStatus::kCorrupt);
  EXPECT_EQ(offset, 0u);
}

TEST(LogMalformedTest, FlippedBytesNeverParseOk) {
  // Flipping any single byte of a record must fail CRC (or the type check);
  // no flip may yield a different, accepted record.
  Bytes value = {0x10, 0x20, 0x30};
  Bytes record =
      EncodeRecord(RecordType::kRemove, Key(0xcd), ByteSpan(value.data(), value.size()));
  for (size_t i = 0; i < record.size(); ++i) {
    Bytes mutated = record;
    mutated[i] ^= 0x01;
    size_t offset = 0;
    Record out;
    ParseStatus status =
        ParseRecord(ByteSpan(mutated.data(), mutated.size()), &offset, &out);
    // A flip in the length prefix can also make the record look torn.
    EXPECT_TRUE(status == ParseStatus::kCorrupt ||
                status == ParseStatus::kTruncated)
        << "flip at byte " << i << " gave status "
        << static_cast<int>(status);
    EXPECT_EQ(offset, 0u);
  }
}

TEST(LogMalformedTest, GarbageBuffersNeverParseOk) {
  Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    Bytes garbage = rng.RandomBytes(1 + rng.UniformU64(128));
    uint64_t seq = 0;
    if (DecodeSegmentHeader(ByteSpan(garbage.data(), garbage.size()), &seq)) {
      continue;  // would need the magic by chance: 2^-64
    }
    size_t offset = 0;
    Record out;
    ParseStatus status =
        ParseRecord(ByteSpan(garbage.data(), garbage.size()), &offset, &out);
    EXPECT_TRUE(status == ParseStatus::kCorrupt ||
                status == ParseStatus::kTruncated)
        << "trial " << trial;
    EXPECT_EQ(offset, 0u);
  }
}

TEST(LogMalformedTest, SegmentFileNameParsing) {
  uint64_t seq = 0;
  EXPECT_TRUE(ParseSegmentFileName(SegmentFileName(0xdeadbeef), &seq));
  EXPECT_EQ(seq, 0xdeadbeefu);
  EXPECT_FALSE(ParseSegmentFileName("", &seq));
  EXPECT_FALSE(ParseSegmentFileName("seg-.log", &seq));
  EXPECT_FALSE(ParseSegmentFileName("seg-00000000deadbeef.LOG", &seq));
  EXPECT_FALSE(ParseSegmentFileName("seg-00000000deadbeeg.log", &seq));
  EXPECT_FALSE(ParseSegmentFileName("seg-00000000DEADBEEF.log", &seq));
  EXPECT_FALSE(ParseSegmentFileName("segx00000000deadbeef.log", &seq));
  EXPECT_FALSE(ParseSegmentFileName("seg-00000000deadbeef.log2", &seq));
}

}  // namespace
}  // namespace past
