// Compile-fail probe for the nodiscard policy (DESIGN.md §8).
//
// This file deliberately ignores fallible results. It is NEVER built into a
// target: the lint_nodiscard_compile_fail ctest runs the compiler on it with
// the repo's flags (-Werror=unused-result) and PASSES only when compilation
// FAILS. If this file ever compiles, the enforcement that keeps call sites
// honest has silently rotted — see tests/lint/nodiscard_checked.cc for the
// matching positive control.
#include "src/common/serializer.h"
#include "src/common/status.h"
#include "src/obs/json.h"
#include "src/pastry/messages.h"
#include "src/storage/file_store.h"

namespace past {

void IgnoresFallibleResults(Reader* r, FileStore* store, StoredFile file) {
  uint8_t v;
  r->U8(&v);  // ignored [[nodiscard]] bool: must not compile

  store->Put(std::move(file));  // ignored StatusCode (type-level attribute)

  store->Sync();  // ignored StatusCode via type-level attribute

  JsonValue doc;
  JsonValue::Parse("{}", &doc);  // ignored [[nodiscard]] bool

  RouteMsg msg;
  RouteMsg::DecodeBody(r, &msg);  // ignored [[nodiscard]] bool
}

}  // namespace past
