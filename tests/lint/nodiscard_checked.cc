// Positive control for the nodiscard compile-fail probe.
//
// The same calls as tests/lint/nodiscard_ignored.cc, with every result
// checked (or explicitly discarded through IgnoreStatus). The
// lint_nodiscard_compile_ok ctest compiles this file with the repo's flags
// and expects success, proving that the compile-fail probe fails for the
// right reason (ignored results) and not a broken include or flag.
#include <utility>

#include "src/common/serializer.h"
#include "src/common/status.h"
#include "src/obs/json.h"
#include "src/pastry/messages.h"
#include "src/storage/file_store.h"

namespace past {

int ChecksFallibleResults(Reader* r, FileStore* store, StoredFile file) {
  int failures = 0;
  uint8_t v;
  if (!r->U8(&v)) {
    ++failures;
  }
  if (store->Put(std::move(file)) != StatusCode::kOk) {
    ++failures;
  }
  IgnoreStatus(store->Sync());  // deliberate discard, spelled out
  JsonValue doc;
  if (!JsonValue::Parse("{}", &doc)) {
    ++failures;
  }
  RouteMsg msg;
  if (!RouteMsg::DecodeBody(r, &msg)) {
    ++failures;
  }
  return failures;
}

}  // namespace past
