// Positive control for the layer-dag rule: src/sim/ and src/diskstore/
// share rank 2 but sit in different groups (event-loop vs diskstore), so
// this cross-layer include must fail too.
#include "src/diskstore/env.h"
