// Positive control for the layer-dag rule: src/common/ (rank 0) reaching up
// into src/storage/ (rank 4) is a back-edge and must fail.
#include "src/storage/file_store.h"
