// Negative control for the layer-dag escape hatch: a deliberate upward
// include carrying lint:allow-layer with a justification passes (and is
// marked suppressed in the --graph-out JSON).
// lint:allow-layer fixture: deliberate upward edge to prove the escape works
#include "src/obs/metrics.h"
