// Negative control for the layer-dag rule: storage (rank 4) looking down
// at common (rank 0) and pastry (rank 3) is the sanctioned direction.
#include "src/common/bytes.h"
#include "src/pastry/node_id.h"
