// Negative control for the raw-socket rule: std::bind is not a socket
// call, prose and string literals mentioning socket()/bind()/connect() are
// invisible to the tokenizer, and an annotated exception passes.
#include <functional>

int Handler(int a, int b);

void Wire() {
  auto f = std::bind(&Handler, 1, 2);
  f();
  const char* doc = "socket() bind() connect() are banned out here";
  (void)doc;
}

// lint:allow-raw-socket fixture: pretend bootstrap probe, mirrors tools/
int Probe() { return socket(2, 2, 0); }
