// Positive control for the raw-socket rule: direct socket creation and a
// global-qualified connect outside src/net/.
struct sockaddr;

int Dial(const sockaddr* addr, unsigned len) {
  int fd = socket(2, 1, 0);
  if (::connect(fd, addr, len) != 0) {
    return -1;
  }
  return fd;
}
