// Positive control for the nondeterminism rule. The first call hides the
// banned identifier behind a backslash-newline splice — the exact false
// negative the old line-regex scanner had; the token lexer joins splices
// before matching, so both sites must be reported.
int Draw() {
  int r = ra\
nd();
  return r;
}

long Now() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}
