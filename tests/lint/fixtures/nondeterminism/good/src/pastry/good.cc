// Negative control for the nondeterminism rule: every banned name below
// sits in token context the rule must ignore — prose in comments, string
// literal bodies, and identifiers that merely contain a banned name. The
// old line scanner matched some of these; the token lexer must not.
//
// Prose may mention rand(), srand(), std::random_device and steady_clock
// freely: comments never reach the token stream.
const char* kBannedNames = "rand srand random_device steady_clock time(nullptr)";
const char* kRawDoc = R"(calling rand() or gettimeofday() here is fine:
raw-string bodies are literals, not code, even across lines)";

int Operand(int brand, int strand) {
  // "rand" inside operand/brand/strand is not the identifier rand.
  return brand + strand;
}

// lint:allow-nondeterminism deliberate: profiling hook mirrors src/obs/prof.h
long AnnotatedClock() { return std::chrono::steady_clock::now().time_since_epoch().count(); }
