// Positive control for the metric-name rule: the invalid literal sits two
// lines below the wrapped call — the old scanner only looked one line down
// and missed it; the token stream must find and reject it.
struct Registry {
  long* GetCounter(const char* name);
};

void Register(Registry& reg) {
  long* c =
      reg.GetCounter(

          "BadName");
  *c = 1;
}
