// Negative control for the metric-name rule: valid dotted-lowercase names
// (including one two lines below its wrapped call and one concatenation
// prefix ending in '.'), plus a comment mentioning GetCounter("NotAName")
// that must stay invisible to the rule.
struct Registry {
  long* GetCounter(const char* name);
  long* GetCounter(const char* name, int);
};

const char* Reason();

void Register(Registry& reg) {
  long* a = reg.GetCounter("net.sent");
  long* b =
      reg.GetCounter(

          "pastry.route.hops");
  long* c = reg.GetCounter("net.drop." + std::string(Reason()));
  *a = *b = *c = 0;
}
