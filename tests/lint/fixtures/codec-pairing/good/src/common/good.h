// Negative control for the codec-pairing rule: every encoder has its
// decoder, and the comment mentioning a lone void EncodeBody( is prose the
// tokenizer never sees.
#pragma once

struct Paired {
  void EncodeBody(unsigned char* out) const;
  static bool DecodeBody(const unsigned char* data, Paired* out);
};
