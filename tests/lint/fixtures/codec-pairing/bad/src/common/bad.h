// Positive control for the codec-pairing rule: an EncodeBody with no
// DecodeBody — a wire struct that lost its parser.
#pragma once

struct Orphan {
  void EncodeBody(unsigned char* out) const;
};
