// Positive control for the nodiscard rule. The declaration is wrapped so
// `bool` and the Decode name sit on different physical lines — the false
// negative the old line scanner had; the token stream sees the declaration
// whole and must report it.
#pragma once

struct Wire {
  bool
  DecodeFrame(const unsigned char* data, unsigned long size);
};
