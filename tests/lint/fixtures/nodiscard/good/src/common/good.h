// Negative control for the nodiscard rule: annotated declarations pass,
// and the string/comment mentions of bool DecodeFake( must not match —
// literal bodies and prose never reach the token stream.
#pragma once

struct Wire {
  [[nodiscard]] bool DecodeFrame(const unsigned char* data,
                                 unsigned long size);
  [[nodiscard]] static bool
  ParseHeader(const unsigned char* data, unsigned long size);
};

inline const char* Doc() { return "bool DecodeFake(int) needs no attribute"; }
