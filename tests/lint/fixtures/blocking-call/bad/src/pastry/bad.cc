// Positive control for the blocking-call rule: a sleep, a stray fsync
// outside src/diskstore/, a blocking poll outside src/net/, and a bare
// POSIX read on the event-dispatch path.
struct pollfd;

void Stall(int fd, pollfd* fds, unsigned char* buf) {
  sleep(1);
  fsync(fd);
  poll(fds, 1, -1);
  read(fd, buf, 64);
}
