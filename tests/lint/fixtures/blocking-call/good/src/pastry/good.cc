// Negative control for the blocking-call rule outside the sanctioned
// directories: member .read()/.write() calls are stream/wrapper APIs judged
// by their own layer, prose and strings are invisible, and the escape hatch
// works.
struct Stream {
  long read(unsigned char* buf, long n);
  long write(const unsigned char* buf, long n);
};

long Copy(Stream& in, Stream& out, unsigned char* buf) {
  // Calling sleep() or fsync() here would stall the whole event loop.
  const char* doc = "sleep(1) fsync(fd) poll(fds, 1, -1)";
  (void)doc;
  long n = in.read(buf, 64);
  return out.write(buf, n);
}

// lint:allow-blocking fixture: deliberate, proves the escape hatch
void Nap() { sleep(1); }
