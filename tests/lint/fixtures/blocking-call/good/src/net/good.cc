// Negative control: poll/recv/connect inside src/net/ are the transport's
// own non-blocking machinery (fds are O_NONBLOCK; poll is the loop).
struct pollfd;
struct sockaddr;

int Pump(pollfd* fds, int fd, const sockaddr* addr, unsigned len) {
  if (connect(fd, addr, len) != 0) {
    return -1;
  }
  return poll(fds, 1, 0);
}
