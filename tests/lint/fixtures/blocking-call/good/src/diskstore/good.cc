// Negative control: fsync inside src/diskstore/ is the sanctioned home of
// durability syncs (the Env measures and batches it).
void Sync(int fd) { fsync(fd); }
