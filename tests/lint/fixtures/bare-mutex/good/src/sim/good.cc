// Negative control for the bare-mutex rule: the annotated past::Mutex
// wrappers are the sanctioned lock, prose and strings mentioning std::mutex
// are invisible to the tokenizer, and the escape hatch works.
#include "src/common/mutex.h"

struct Queue {
  past::Mutex mu;
  int depth PAST_GUARDED_BY(mu);
};

int Probe(Queue& q) {
  // std::mutex in a comment is prose, not a lock.
  const char* doc = "std::mutex std::condition_variable";
  (void)doc;
  past::MutexLock lock(&q.mu);
  return q.depth;
}

#include <mutex>

// lint:allow-bare-mutex fixture: deliberate, proves the escape hatch
std::mutex g_escape_hatch_mu;
