// Positive control for the bare-mutex rule: a std::mutex and a
// std::lock_guard outside src/common/ — invisible to -Wthread-safety, so
// banned in favor of the annotated past::Mutex wrappers.
#include <mutex>

std::mutex g_mu;

void Touch() { std::lock_guard<std::mutex> lock(g_mu); }
