// Sibling header included first by good.cc.
#pragma once
