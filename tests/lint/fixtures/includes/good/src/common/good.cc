// Negative control for the includes rule: own header first, every quoted
// include repo-root-relative and resolving, no duplicates. The comment
// mentioning #include "not/a/real/path.h" must not count as a directive.
#include "src/common/good.h"

#include <vector>

#include "src/common/other.h"
