// A second header so good.cc has a resolving non-own include.
#pragma once
