// Sibling header for the own-header-first check: bad.cc must include this
// file before any other quoted include, and does not.
#pragma once
