// Positive control for the includes rule: the own header is not first, one
// include is not repo-root-relative, one does not resolve, and one is
// duplicated.
#include "other.h"
#include "src/common/bad.h"
#include "src/common/missing.h"
#include "src/common/bad.h"
