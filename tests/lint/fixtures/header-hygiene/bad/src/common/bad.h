#ifndef PAST_FIXTURE_BAD_H_
#define PAST_FIXTURE_BAD_H_

struct Undocumented {};

#endif  // PAST_FIXTURE_BAD_H_
