// A documented header: doc comment first, #pragma once, no guard macros.
// The string below mentions "#ifndef FAKE_H_" — literal bodies are not
// directives, so the rule must not fire on it.
#pragma once

inline const char* GuardProse() { return "#ifndef FAKE_H_"; }
