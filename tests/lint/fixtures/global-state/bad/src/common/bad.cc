// Positive control for the global-state rule: a mutable namespace-scope
// variable wrapped across two lines (the old scanner required the whole
// declaration on one line) and a mutable function-local static.
namespace past {

unsigned long
    g_total_bytes;

int Count() {
  static int calls;
  calls = calls + 1;
  return calls;
}

}  // namespace past
