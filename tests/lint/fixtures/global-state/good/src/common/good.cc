// Negative control for the global-state rule: constants are fine, braces
// and semicolons inside string literals must not desynchronize the scope
// tracker, and an annotated exception passes.
namespace past {

constexpr int kLimit = 16;
const char* const kSnippet = "namespace { int fake_global; } extern {";

// lint:allow-global-state fixture: deliberate, mirrors tools/ counters
int g_annotated_counter;

int Use() { return kLimit + static_cast<int>(kSnippet[0]) + g_annotated_counter; }

}  // namespace past
