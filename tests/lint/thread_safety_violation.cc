// Compile-fail probe for the Clang thread-safety wiring (mirrors the
// nodiscard probe): reading and writing a PAST_GUARDED_BY field without
// holding its mutex must fail the build under
// `-Wthread-safety -Werror=thread-safety`. The lint_thread_safety_compile_fail
// ctest compiles this file with the repo's flags and passes only when the
// compiler rejects it (WILL_FAIL inverts the result); the positive control
// thread_safety_ok.cc proves the rejection is for the right reason. Only
// registered under Clang — GCC has no thread-safety analysis, so there the
// annotations expand to nothing and this file compiles.
#include "src/common/mutex.h"

namespace past {

class Counter {
 public:
  // BAD: touches value_ without holding mu_. The analysis must reject both
  // the write and the read.
  void Increment() { value_ = value_ + 1; }
  int Get() const { return value_; }

 private:
  mutable Mutex mu_;
  int value_ PAST_GUARDED_BY(mu_) = 0;
};

}  // namespace past

int main() {
  past::Counter c;
  c.Increment();
  return c.Get();
}
