// Positive control for the thread-safety compile-fail probe: the same
// guarded field accessed correctly — through MutexLock scopes and a
// PAST_REQUIRES helper — compiles cleanly with
// `-Wthread-safety -Werror=thread-safety`, proving the probe's rejection of
// thread_safety_violation.cc is about lock discipline, not the wrappers.
#include "src/common/mutex.h"

namespace past {

class Counter {
 public:
  void Increment() {
    MutexLock lock(&mu_);
    IncrementLocked();
  }
  int Get() const {
    MutexLock lock(&mu_);
    return value_;
  }

 private:
  void IncrementLocked() PAST_REQUIRES(mu_) { value_ = value_ + 1; }

  mutable Mutex mu_;
  int value_ PAST_GUARDED_BY(mu_) = 0;
};

}  // namespace past

int main() {
  past::Counter c;
  c.Increment();
  return c.Get();
}
