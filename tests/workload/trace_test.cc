#include "src/workload/trace.h"

#include <gtest/gtest.h>

#include "src/workload/replay.h"
#include "tests/storage/past_test_util.h"

namespace past {
namespace {

TEST(TraceTest, SerializeParseRoundTrip) {
  Trace trace;
  trace.Add({TraceOpType::kInsert, 3, "doc-a", 1024, 3, -1});
  trace.Add({TraceOpType::kLookup, 7, "", 0, 0, 0});
  trace.Add({TraceOpType::kInsert, 1, "doc-b", 99, 2, -1});
  trace.Add({TraceOpType::kReclaim, 3, "", 0, 0, 0});
  trace.Add({TraceOpType::kCrash, 5, "", 0, 0, -1});
  trace.Add({TraceOpType::kJoin, 0, "", 0, 0, -1});
  auto parsed = Trace::Parse(trace.Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), trace);
}

TEST(TraceTest, ParseSkipsCommentsAndBlankLines) {
  auto parsed = Trace::Parse("# header\n\ninsert 0 f 100 3\n# trailing\n");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().size(), 1u);
  EXPECT_EQ(parsed.value().ops()[0].name, "f");
}

TEST(TraceTest, ParseRejectsUnknownVerb) {
  EXPECT_FALSE(Trace::Parse("destroy 1 2\n").ok());
}

TEST(TraceTest, ParseRejectsMalformedFields) {
  EXPECT_FALSE(Trace::Parse("insert 0 f\n").ok());            // missing fields
  EXPECT_FALSE(Trace::Parse("insert 0 f 0 3\n").ok());        // zero size
  EXPECT_FALSE(Trace::Parse("insert 0 f 10 0\n").ok());       // zero k
  EXPECT_FALSE(Trace::Parse("insert -1 f 10 3\n").ok());      // negative client
  EXPECT_FALSE(Trace::Parse("insert 0 f 10 3 junk\n").ok());  // trailing field
}

TEST(TraceTest, ParseRejectsDanglingFileRef) {
  // A lookup cannot reference an insert that has not appeared yet.
  EXPECT_FALSE(Trace::Parse("lookup 0 0\n").ok());
  EXPECT_FALSE(Trace::Parse("insert 0 f 10 3\nlookup 0 1\n").ok());
  EXPECT_TRUE(Trace::Parse("insert 0 f 10 3\nlookup 0 0\n").ok());
}

TEST(TraceTest, GenerateRespectsStructure) {
  Rng rng(1);
  TraceWorkloadOptions options;
  options.operations = 400;
  Trace trace = GenerateTrace(options, &rng);
  EXPECT_EQ(trace.size(), 400u);
  size_t inserts = trace.InsertCount();
  EXPECT_GT(inserts, 80u);
  // Every reference points at an earlier insert.
  size_t seen = 0;
  for (const TraceOp& op : trace.ops()) {
    if (op.type == TraceOpType::kInsert) {
      ++seen;
    }
    if (op.type == TraceOpType::kLookup || op.type == TraceOpType::kReclaim) {
      EXPECT_GE(op.file_ref, 0);
      EXPECT_LT(static_cast<size_t>(op.file_ref), seen);
    }
  }
  // Generated traces round-trip through the text form.
  auto parsed = Trace::Parse(trace.Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), trace);
}

TEST(TraceTest, GenerateNeverReclaimsTwice) {
  Rng rng(3);
  TraceWorkloadOptions options;
  options.operations = 600;
  options.reclaim_weight = 0.3;
  Trace trace = GenerateTrace(options, &rng);
  std::set<int> reclaimed;
  for (const TraceOp& op : trace.ops()) {
    if (op.type == TraceOpType::kReclaim) {
      EXPECT_TRUE(reclaimed.insert(op.file_ref).second)
          << "file " << op.file_ref << " reclaimed twice";
    }
  }
}

TEST(ReplayTest, EndToEndAgainstNetwork) {
  PastNetworkOptions net_options = SmallNetOptions(801);
  PastNetwork net(net_options);
  net.Build(25);

  Rng rng(7);
  TraceWorkloadOptions options;
  options.operations = 120;
  options.clients = 25;
  options.churn_weight = 0.03;
  options.sizes.max_size = 8 << 10;
  Trace trace = GenerateTrace(options, &rng);

  ReplayResult result = ReplayTrace(trace, &net);
  EXPECT_GT(result.inserts_ok, 10);
  EXPECT_EQ(result.lookups_failed, 0) << "live files must always resolve";
  EXPECT_EQ(result.reclaims_failed, 0);
  EXPECT_EQ(result.inserts_ok + result.inserts_failed,
            static_cast<int>(trace.InsertCount()));
}

TEST(ReplayTest, DeterministicForSameSeedAndTrace) {
  Rng rng(9);
  TraceWorkloadOptions options;
  options.operations = 60;
  options.churn_weight = 0.0;
  Trace trace = GenerateTrace(options, &rng);

  auto run = [&trace] {
    PastNetwork net(SmallNetOptions(803));
    net.Build(15);
    return ReplayTrace(trace, &net);
  };
  ReplayResult a = run();
  ReplayResult b = run();
  EXPECT_EQ(a.inserts_ok, b.inserts_ok);
  EXPECT_EQ(a.lookups_ok, b.lookups_ok);
  EXPECT_EQ(a.reclaims_ok, b.reclaims_ok);
}

}  // namespace
}  // namespace past
