#include "src/workload/workload.h"

#include <cmath>

#include <gtest/gtest.h>

namespace past {
namespace {

TEST(FileSizeModelTest, SamplesWithinClamp) {
  Rng rng(1);
  FileSizeModel model;
  for (int i = 0; i < 5000; ++i) {
    uint64_t size = model.Sample(&rng);
    EXPECT_GE(size, model.min_size);
    EXPECT_LE(size, model.max_size);
  }
}

TEST(FileSizeModelTest, MedianNearLognormalMedian) {
  Rng rng(3);
  FileSizeModel model;
  std::vector<uint64_t> samples;
  for (int i = 0; i < 20000; ++i) {
    samples.push_back(model.Sample(&rng));
  }
  std::sort(samples.begin(), samples.end());
  double median = static_cast<double>(samples[samples.size() / 2]);
  double expected = std::exp(model.lognormal_mu);  // ~4 KiB
  EXPECT_GT(median, expected * 0.6);
  EXPECT_LT(median, expected * 1.6);
}

TEST(FileSizeModelTest, HeavyTailPresent) {
  Rng rng(5);
  FileSizeModel model;
  uint64_t max_seen = 0;
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    uint64_t s = model.Sample(&rng);
    max_seen = std::max(max_seen, s);
    sum += static_cast<double>(s);
  }
  double mean = sum / n;
  // Heavy tail: the max dwarfs the mean.
  EXPECT_GT(static_cast<double>(max_seen), mean * 50);
}

TEST(CapacityModelTest, MultiplesOfBaseWithinSpread) {
  Rng rng(7);
  CapacityModel model;
  for (int i = 0; i < 2000; ++i) {
    uint64_t c = model.Sample(&rng);
    EXPECT_EQ(c % model.base, 0u);
    EXPECT_GE(c, model.base * static_cast<uint64_t>(model.min_multiple));
    EXPECT_LE(c, model.base * static_cast<uint64_t>(model.max_multiple));
  }
}

TEST(CapacityModelTest, SpreadCoversRange) {
  Rng rng(9);
  CapacityModel model;
  std::set<uint64_t> seen;
  for (int i = 0; i < 5000; ++i) {
    seen.insert(model.Sample(&rng) / model.base);
  }
  // Most multiples in [2,100] should occur.
  EXPECT_GT(seen.size(), 80u);
}

TEST(GenerateFilesTest, NamesUniqueSizesSampled) {
  Rng rng(11);
  auto files = GenerateFiles(100, FileSizeModel{}, &rng);
  ASSERT_EQ(files.size(), 100u);
  std::set<std::string> names;
  for (const auto& f : files) {
    names.insert(f.name);
    EXPECT_GT(f.size, 0u);
  }
  EXPECT_EQ(names.size(), 100u);
}

TEST(LookupTraceTest, PopularityIsZipfish) {
  Rng rng(13);
  LookupTrace trace(1000, 1.0);
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < 50000; ++i) {
    counts[trace.Next(&rng)]++;
  }
  EXPECT_GT(counts[0], counts[100]);
  EXPECT_GT(counts[10], counts[500]);
}

}  // namespace
}  // namespace past
