#include "src/sim/event_queue.h"

#include <gtest/gtest.h>

namespace past {
namespace {

TEST(EventQueueTest, StartsAtTimeZeroEmpty) {
  EventQueue q;
  EXPECT_EQ(q.Now(), 0);
  EXPECT_TRUE(q.Empty());
}

TEST(EventQueueTest, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.At(30, [&] { order.push_back(3); });
  q.At(10, [&] { order.push_back(1); });
  q.At(20, [&] { order.push_back(2); });
  q.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.Now(), 30);
}

TEST(EventQueueTest, TiesBreakByScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  q.At(5, [&] { order.push_back(1); });
  q.At(5, [&] { order.push_back(2); });
  q.At(5, [&] { order.push_back(3); });
  q.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, AfterUsesCurrentTime) {
  EventQueue q;
  SimTime fired_at = -1;
  q.At(100, [&] { q.After(50, [&] { fired_at = q.Now(); }); });
  q.RunAll();
  EXPECT_EQ(fired_at, 150);
}

TEST(EventQueueTest, RunUntilStopsAtDeadline) {
  EventQueue q;
  int fired = 0;
  q.At(10, [&] { ++fired; });
  q.At(20, [&] { ++fired; });
  q.At(30, [&] { ++fired; });
  EXPECT_EQ(q.RunUntil(20), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(q.Now(), 20);
  EXPECT_EQ(q.PendingCount(), 1u);
}

TEST(EventQueueTest, RunUntilAdvancesClockWhenIdle) {
  EventQueue q;
  q.RunUntil(500);
  EXPECT_EQ(q.Now(), 500);
}

TEST(EventQueueTest, CancelPreventsExecution) {
  EventQueue q;
  int fired = 0;
  auto id = q.At(10, [&] { ++fired; });
  q.At(20, [&] { ++fired; });
  q.Cancel(id);
  q.RunAll();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueueTest, CancelIsIdempotent) {
  EventQueue q;
  auto id = q.At(10, [] {});
  q.Cancel(id);
  q.Cancel(id);
  q.Cancel(9999);  // never existed
  EXPECT_EQ(q.RunAll(), 0u);
}

TEST(EventQueueTest, CancelledEventDoesNotAdvanceClock) {
  EventQueue q;
  auto id = q.At(1000, [] {});
  q.At(10, [] {});
  q.Cancel(id);
  q.RunAll();
  EXPECT_EQ(q.Now(), 10);
}

TEST(EventQueueTest, PendingCountTracksCancellation) {
  EventQueue q;
  auto a = q.At(1, [] {});
  q.At(2, [] {});
  EXPECT_EQ(q.PendingCount(), 2u);
  q.Cancel(a);
  EXPECT_EQ(q.PendingCount(), 1u);
  EXPECT_FALSE(q.Empty());
}

TEST(EventQueueTest, EventsScheduledDuringRunExecute) {
  EventQueue q;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) {
      q.After(1, recurse);
    }
  };
  q.After(1, recurse);
  q.RunAll();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(q.Now(), 5);
}

TEST(EventQueueTest, RunAllRespectsEventCap) {
  EventQueue q;
  std::function<void()> forever = [&] { q.After(1, forever); };
  q.After(1, forever);
  EXPECT_EQ(q.RunAll(100), 100u);
}

TEST(EventQueueDeathTest, SchedulingInPastAborts) {
  EventQueue q;
  q.At(100, [] {});
  q.RunAll();
  EXPECT_DEATH(q.At(50, [] {}), "cannot schedule events in the past");
}

}  // namespace
}  // namespace past
