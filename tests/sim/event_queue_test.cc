#include "src/sim/event_queue.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/common/rng.h"

namespace past {
namespace {

TEST(EventQueueTest, StartsAtTimeZeroEmpty) {
  EventQueue q;
  EXPECT_EQ(q.Now(), 0);
  EXPECT_TRUE(q.Empty());
}

TEST(EventQueueTest, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.At(30, [&] { order.push_back(3); });
  q.At(10, [&] { order.push_back(1); });
  q.At(20, [&] { order.push_back(2); });
  q.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.Now(), 30);
}

TEST(EventQueueTest, TiesBreakByScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  q.At(5, [&] { order.push_back(1); });
  q.At(5, [&] { order.push_back(2); });
  q.At(5, [&] { order.push_back(3); });
  q.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, AfterUsesCurrentTime) {
  EventQueue q;
  SimTime fired_at = -1;
  q.At(100, [&] { q.After(50, [&] { fired_at = q.Now(); }); });
  q.RunAll();
  EXPECT_EQ(fired_at, 150);
}

TEST(EventQueueTest, RunUntilStopsAtDeadline) {
  EventQueue q;
  int fired = 0;
  q.At(10, [&] { ++fired; });
  q.At(20, [&] { ++fired; });
  q.At(30, [&] { ++fired; });
  EXPECT_EQ(q.RunUntil(20), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(q.Now(), 20);
  EXPECT_EQ(q.PendingCount(), 1u);
}

TEST(EventQueueTest, RunUntilAdvancesClockWhenIdle) {
  EventQueue q;
  q.RunUntil(500);
  EXPECT_EQ(q.Now(), 500);
}

TEST(EventQueueTest, CancelPreventsExecution) {
  EventQueue q;
  int fired = 0;
  auto id = q.At(10, [&] { ++fired; });
  q.At(20, [&] { ++fired; });
  q.Cancel(id);
  q.RunAll();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueueTest, CancelIsIdempotent) {
  EventQueue q;
  auto id = q.At(10, [] {});
  q.Cancel(id);
  q.Cancel(id);
  q.Cancel(9999);  // never existed
  EXPECT_EQ(q.RunAll(), 0u);
}

TEST(EventQueueTest, CancelledEventDoesNotAdvanceClock) {
  EventQueue q;
  auto id = q.At(1000, [] {});
  q.At(10, [] {});
  q.Cancel(id);
  q.RunAll();
  EXPECT_EQ(q.Now(), 10);
}

TEST(EventQueueTest, PendingCountTracksCancellation) {
  EventQueue q;
  auto a = q.At(1, [] {});
  q.At(2, [] {});
  EXPECT_EQ(q.PendingCount(), 2u);
  q.Cancel(a);
  EXPECT_EQ(q.PendingCount(), 1u);
  EXPECT_FALSE(q.Empty());
}

TEST(EventQueueTest, EventsScheduledDuringRunExecute) {
  EventQueue q;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) {
      q.After(1, recurse);
    }
  };
  q.After(1, recurse);
  q.RunAll();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(q.Now(), 5);
}

TEST(EventQueueTest, RunAllRespectsEventCap) {
  EventQueue q;
  std::function<void()> forever = [&] { q.After(1, forever); };
  q.After(1, forever);
  EXPECT_EQ(q.RunAll(100), 100u);
}

// Regression: cancelling an already-fired id used to insert a tombstone that
// was never erased and double-decrement the live count, so Empty() could
// report true while events were still pending.
TEST(EventQueueTest, CancelAfterFireIsNoOp) {
  EventQueue q;
  int fired = 0;
  auto id = q.At(10, [&] { ++fired; });
  q.RunAll();
  EXPECT_EQ(fired, 1);
  q.Cancel(id);  // id already fired: must not touch any live state
  q.At(20, [&] { ++fired; });
  EXPECT_EQ(q.PendingCount(), 1u);
  EXPECT_FALSE(q.Empty());
  EXPECT_EQ(q.RunAll(), 1u);
  EXPECT_EQ(fired, 2);
  EXPECT_TRUE(q.Empty());
}

// Regression: a stale id whose slot has been recycled must not cancel the new
// occupant (the generation tag distinguishes incarnations).
TEST(EventQueueTest, StaleIdCannotCancelRecycledSlot) {
  EventQueue q;
  int fired = 0;
  auto old_id = q.At(10, [&] { ++fired; });
  q.RunAll();
  // The next event reuses the freed slot.
  auto new_id = q.At(20, [&] { ++fired; });
  EXPECT_NE(old_id, new_id);
  q.Cancel(old_id);
  EXPECT_EQ(q.PendingCount(), 1u);
  EXPECT_EQ(q.RunAll(), 1u);
  EXPECT_EQ(fired, 2);
}

TEST(EventQueueTest, RepeatedCancelDecrementsOnce) {
  EventQueue q;
  int fired = 0;
  auto a = q.At(10, [&] { ++fired; });
  q.At(20, [&] { ++fired; });
  q.Cancel(a);
  q.Cancel(a);
  q.Cancel(a);
  EXPECT_EQ(q.PendingCount(), 1u);
  EXPECT_FALSE(q.Empty());
  EXPECT_EQ(q.RunAll(), 1u);
  EXPECT_EQ(fired, 1);
}

TEST(EventQueueTest, CancelFromInsideOwnCallbackIsNoOp) {
  EventQueue q;
  EventQueue::EventId self_id = 0;
  int fired = 0;
  self_id = q.At(10, [&] {
    ++fired;
    q.Cancel(self_id);  // own id is already dead while the callback runs
    q.At(20, [&] { ++fired; });
  });
  EXPECT_EQ(q.RunAll(), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_TRUE(q.Empty());
}

TEST(EventQueueTest, CancelReleasesCapturesImmediately) {
  EventQueue q;
  auto token = std::make_shared<int>(7);
  auto id = q.At(10, [token] { (void)*token; });
  EXPECT_EQ(token.use_count(), 2);
  q.Cancel(id);
  // The callback (and its captured copy) must be destroyed at cancel time,
  // not when the dead heap entry eventually surfaces.
  EXPECT_EQ(token.use_count(), 1);
  q.RunAll();
}

TEST(EventQueueTest, MoveOnlyCallablesAreSupported) {
  EventQueue q;
  auto payload = std::make_unique<int>(41);
  int result = 0;
  q.At(5, [p = std::move(payload), &result] { result = *p + 1; });
  q.RunAll();
  EXPECT_EQ(result, 42);
}

TEST(EventQueueTest, LargeCapturesFallBackToHeapStorage) {
  EventQueue q;
  // 128 bytes of captured state: far beyond EventFn's inline buffer.
  struct Big {
    int64_t values[16] = {};
  } big;
  big.values[15] = 99;
  int64_t seen = 0;
  q.At(5, [big, &seen] { seen = big.values[15]; });
  q.RunAll();
  EXPECT_EQ(seen, 99);
}

// A steady-state schedule/fire workload must recycle pooled slots instead of
// growing the slab.
TEST(EventQueueTest, SlabPlateausInSteadyState) {
  EventQueue q;
  int fired = 0;
  for (int i = 0; i < 10'000; ++i) {
    q.After(3, [&fired] { ++fired; });
    q.After(1, [&fired] { ++fired; });
    q.RunAll();
  }
  EXPECT_EQ(fired, 20'000);
  EXPECT_LE(q.SlabSize(), 4u);
}

// Cancelled events must also recycle: repeated schedule+cancel cannot grow
// auxiliary state without bound (the old tombstone-set design did).
TEST(EventQueueTest, CancelledSlotsAreRecycled) {
  EventQueue q;
  for (int round = 0; round < 1'000; ++round) {
    auto a = q.After(10, [] {});
    auto b = q.After(20, [] {});
    q.Cancel(a);
    q.Cancel(b);
    q.RunUntil(q.Now() + 30);
    EXPECT_TRUE(q.Empty());
  }
  EXPECT_LE(q.SlabSize(), 4u);
}

// Randomized schedule/cancel/fire interleavings: every scheduled event either
// fires exactly once or was cancelled exactly once, and the pool's live count
// matches ground truth throughout. Run under -DPAST_SANITIZE=ON in CI.
TEST(EventQueueTest, PoolStressRandomInterleavings) {
  Rng rng(20260806);
  EventQueue q;
  uint64_t fired = 0;
  uint64_t scheduled = 0;
  uint64_t cancelled = 0;
  std::vector<EventQueue::EventId> pending;
  for (int step = 0; step < 20'000; ++step) {
    uint64_t action = rng.UniformU64(10);
    if (action < 5) {
      SimTime delay = static_cast<SimTime>(rng.UniformU64(50));
      pending.push_back(q.After(delay, [&fired] { ++fired; }));
      ++scheduled;
    } else if (action < 7 && !pending.empty()) {
      size_t pick = rng.UniformU64(pending.size());
      // May be live, fired, or already cancelled — all must be safe, and
      // only a live cancel may change PendingCount.
      size_t before = q.PendingCount();
      q.Cancel(pending[pick]);
      size_t after = q.PendingCount();
      ASSERT_LE(before - after, 1u);
      cancelled += before - after;
    } else if (action < 9) {
      q.RunUntil(q.Now() + static_cast<SimTime>(rng.UniformU64(25)));
    } else {
      q.RunAll();
    }
  }
  q.RunAll();
  EXPECT_TRUE(q.Empty());
  EXPECT_EQ(q.PendingCount(), 0u);
  EXPECT_EQ(fired + cancelled, scheduled);
  // Generation reuse: the slab stays bounded by the peak in-flight count,
  // not the 10k+ events scheduled.
  EXPECT_LT(q.SlabSize(), 1'000u);
}

TEST(EventQueueTest, MaintenanceBandFiresAfterNormalEventsAtSameTime) {
  EventQueue q;
  std::vector<int> order;
  // Schedule order deliberately interleaved: the maintenance band must sort
  // after every normal event at the same timestamp regardless.
  q.AtMaintenance(10, [&] { order.push_back(100); });
  q.At(10, [&] { order.push_back(1); });
  q.AtMaintenance(10, [&] { order.push_back(101); });
  q.At(10, [&] { order.push_back(2); });
  q.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 100, 101}));
}

TEST(EventQueueTest, MaintenanceBandStillOrdersByTime) {
  EventQueue q;
  std::vector<int> order;
  q.AtMaintenance(10, [&] { order.push_back(1); });
  q.At(20, [&] { order.push_back(2); });
  q.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(q.Now(), 20);
}

TEST(EventQueueTest, MaintenanceEventsCancelLikeNormalOnes) {
  EventQueue q;
  int fired = 0;
  EventQueue::EventId id = q.AtMaintenance(10, [&] { ++fired; });
  q.Cancel(id);
  q.AtMaintenance(10, [&] { ++fired; });
  q.RunAll();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueueDeathTest, SchedulingInPastAborts) {
  EventQueue q;
  q.At(100, [] {});
  q.RunAll();
  EXPECT_DEATH(q.At(50, [] {}), "cannot schedule events in the past");
}

}  // namespace
}  // namespace past
