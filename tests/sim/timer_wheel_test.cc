#include "src/sim/timer_wheel.h"

#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "src/sim/event_queue.h"

namespace past {
namespace {

TEST(TimerWheelTest, FiresAtExactScheduledTime) {
  EventQueue q;
  TimerWheel wheel(&q, 64);
  std::vector<SimTime> fired;
  // Deadlines scattered inside one bucket: batching must not round them.
  wheel.At(130, [&] { fired.push_back(q.Now()); });
  wheel.At(100, [&] { fired.push_back(q.Now()); });
  wheel.At(127, [&] { fired.push_back(q.Now()); });
  q.RunAll();
  EXPECT_EQ(fired, (std::vector<SimTime>{100, 127, 130}));
}

TEST(TimerWheelTest, TiesFireInScheduleOrder) {
  EventQueue q;
  TimerWheel wheel(&q, 64);
  std::vector<int> order;
  wheel.At(50, [&] { order.push_back(1); });
  wheel.At(50, [&] { order.push_back(2); });
  wheel.At(50, [&] { order.push_back(3); });
  q.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(TimerWheelTest, WheelFiresAfterNormalEventsAtSameInstant) {
  EventQueue q;
  TimerWheel wheel(&q, 64);
  std::vector<int> order;
  // The wheel timer is scheduled FIRST but must still fire after the plain
  // event at the same timestamp: bucket dispatches ride the maintenance
  // band, which is what makes firing order granularity-independent.
  wheel.At(50, [&] { order.push_back(1); });
  q.At(50, [&] { order.push_back(0); });
  q.RunAll();
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
}

TEST(TimerWheelTest, AfterSchedulesRelativeToNow) {
  EventQueue q;
  TimerWheel wheel(&q, 64);
  SimTime fired_at = -1;
  q.At(100, [&] { wheel.After(50, [&] { fired_at = q.Now(); }); });
  q.RunAll();
  EXPECT_EQ(fired_at, 150);
}

TEST(TimerWheelTest, CancelPreventsFiring) {
  EventQueue q;
  TimerWheel wheel(&q, 64);
  int fired = 0;
  TimerWheel::TimerId id = wheel.At(100, [&] { ++fired; });
  wheel.At(110, [&] { ++fired; });
  wheel.Cancel(id);
  EXPECT_EQ(wheel.PendingCount(), 1u);
  q.RunAll();
  EXPECT_EQ(fired, 1);
}

TEST(TimerWheelTest, CancelIsIdempotentAndGenerationSafe) {
  EventQueue q;
  TimerWheel wheel(&q, 64);
  int fired = 0;
  TimerWheel::TimerId id = wheel.At(10, [&] { ++fired; });
  wheel.Cancel(0);   // never-issued sentinel
  wheel.Cancel(id);
  wheel.Cancel(id);  // double-cancel
  q.RunAll();
  // A new timer may reuse the slot; the stale id must not touch it.
  TimerWheel::TimerId id2 = wheel.At(20, [&] { ++fired; });
  wheel.Cancel(id);
  EXPECT_EQ(wheel.PendingCount(), 1u);
  q.RunAll();
  EXPECT_EQ(fired, 1);
  wheel.Cancel(id2);  // fired: no-op
}

TEST(TimerWheelTest, CancelAndRescheduleAcrossBucketBoundary) {
  EventQueue q;
  TimerWheel wheel(&q, 64);
  std::vector<SimTime> fired;
  // Pin the armed deadline of bucket 1 (times [64, 128)) at 70, then cancel
  // it: the bucket must re-arm at the true next minimum (100), not fire a
  // stale pass at 70. The replacement lands two buckets later.
  TimerWheel::TimerId early = wheel.At(70, [&] { fired.push_back(q.Now()); });
  wheel.At(100, [&] { fired.push_back(q.Now()); });
  wheel.Cancel(early);
  wheel.At(200, [&] { fired.push_back(q.Now()); });
  q.RunAll();
  EXPECT_EQ(fired, (std::vector<SimTime>{100, 200}));
  EXPECT_EQ(q.Now(), 200);
}

TEST(TimerWheelTest, AllCancelledBucketIsDropped) {
  EventQueue q;
  TimerWheel wheel(&q, 64);
  TimerWheel::TimerId a = wheel.At(70, [] {});
  TimerWheel::TimerId b = wheel.At(90, [] {});
  EXPECT_EQ(wheel.BucketCount(), 1u);
  EXPECT_EQ(wheel.ArmedBuckets(), 1u);
  wheel.Cancel(a);
  wheel.Cancel(b);
  // Every entry cancelled: the bucket and its armed event are gone, so the
  // queue never advances to 70.
  EXPECT_EQ(wheel.BucketCount(), 0u);
  EXPECT_EQ(wheel.ArmedBuckets(), 0u);
  EXPECT_EQ(wheel.PendingCount(), 0u);
  q.RunAll();
  EXPECT_EQ(q.Now(), 0);
}

TEST(TimerWheelTest, ManyTimersOneBucketOneArmedEvent) {
  EventQueue q;
  TimerWheel wheel(&q, 1000);
  int fired = 0;
  for (int i = 0; i < 100; ++i) {
    wheel.At(500 + (i % 10), [&] { ++fired; });
  }
  EXPECT_EQ(wheel.PendingCount(), 100u);
  EXPECT_EQ(wheel.ArmedBuckets(), 1u);
  // One hundred timers, one heap entry.
  EXPECT_EQ(q.PendingCount(), 1u);
  q.RunAll();
  EXPECT_EQ(fired, 100);
  EXPECT_EQ(wheel.PendingCount(), 0u);
  EXPECT_EQ(wheel.BucketCount(), 0u);
}

TEST(TimerWheelTest, RescheduleFromCallbackSameBucket) {
  EventQueue q;
  TimerWheel wheel(&q, 64);
  std::vector<SimTime> fired;
  // A callback that re-arms at Now() + 10 within the same bucket window:
  // the dispatch pass must pick up entries added at the current instant's
  // bucket without re-entering, and later deadlines must still fire.
  wheel.At(66, [&] {
    fired.push_back(q.Now());
    wheel.After(10, [&] { fired.push_back(q.Now()); });
  });
  q.RunAll();
  EXPECT_EQ(fired, (std::vector<SimTime>{66, 76}));
}

TEST(TimerWheelTest, PeriodicRescheduleMatchesAtAnyGranularity) {
  // The keep-alive pattern: every tick re-arms period microseconds out.
  // Firing times must be identical for a degenerate 1us wheel and a coarse
  // one.
  auto run = [](SimTime granularity) {
    EventQueue q;
    TimerWheel wheel(&q, granularity);
    std::vector<SimTime> fired;
    std::function<void()> tick = [&] {
      fired.push_back(q.Now());
      if (fired.size() < 8) {
        wheel.After(97, tick);
      }
    };
    wheel.After(97, tick);
    q.RunAll();
    return fired;
  };
  EXPECT_EQ(run(1), run(64));
  EXPECT_EQ(run(1), run(1000));
}

TEST(TimerWheelTest, SlabPlateausUnderSteadyChurn) {
  EventQueue q;
  TimerWheel wheel(&q, 64);
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 16; ++i) {
      wheel.After(10 + i, [] {});
    }
    q.RunAll();
  }
  // Slots recycle: the slab never grows past one round's worth.
  EXPECT_LE(wheel.SlabSize(), 16u);
  EXPECT_GT(wheel.MemoryUsage(), 0u);
}

TEST(TimerWheelTest, MixedBucketsDispatchInGlobalTimeOrder) {
  EventQueue q;
  TimerWheel wheel(&q, 100);
  std::vector<SimTime> fired;
  for (SimTime t : {350, 50, 250, 150, 125, 275}) {
    wheel.At(t, [&, t] {
      fired.push_back(t);
      EXPECT_EQ(q.Now(), t);
    });
  }
  q.RunAll();
  EXPECT_EQ(fired, (std::vector<SimTime>{50, 125, 150, 250, 275, 350}));
}

}  // namespace
}  // namespace past
