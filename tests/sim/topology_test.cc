#include "src/sim/topology.h"

#include <cmath>

#include <gtest/gtest.h>

namespace past {
namespace {

class TopologyParamTest : public ::testing::TestWithParam<TopologyKind> {};

TEST_P(TopologyParamTest, MetricProperties) {
  Rng rng(11);
  Topology topo(GetParam(), 100.0, &rng);
  for (int i = 0; i < 50; ++i) {
    topo.AddHost();
  }
  for (int i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(topo.Distance(i, i), 0.0);
  }
  for (int trial = 0; trial < 100; ++trial) {
    int a = static_cast<int>(rng.UniformU64(50));
    int b = static_cast<int>(rng.UniformU64(50));
    double d = topo.Distance(a, b);
    EXPECT_GE(d, 0.0);
    EXPECT_LE(d, topo.MaxDistance() * 1.0001);
    EXPECT_DOUBLE_EQ(d, topo.Distance(b, a));  // symmetry
  }
}

TEST_P(TopologyParamTest, TriangleInequality) {
  Rng rng(13);
  Topology topo(GetParam(), 100.0, &rng);
  for (int i = 0; i < 30; ++i) {
    topo.AddHost();
  }
  for (int trial = 0; trial < 200; ++trial) {
    int a = static_cast<int>(rng.UniformU64(30));
    int b = static_cast<int>(rng.UniformU64(30));
    int c = static_cast<int>(rng.UniformU64(30));
    EXPECT_LE(topo.Distance(a, c), topo.Distance(a, b) + topo.Distance(b, c) + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, TopologyParamTest,
                         ::testing::Values(TopologyKind::kPlane, TopologyKind::kSphere,
                                           TopologyKind::kClustered));

TEST(TopologyTest, HostCountTracksAdds) {
  Rng rng(1);
  Topology topo(TopologyKind::kPlane, 10.0, &rng);
  EXPECT_EQ(topo.host_count(), 0);
  EXPECT_EQ(topo.AddHost(), 0);
  EXPECT_EQ(topo.AddHost(), 1);
  EXPECT_EQ(topo.host_count(), 2);
}

TEST(TopologyTest, SphereDistancesBoundedByPiR) {
  Rng rng(3);
  Topology topo(TopologyKind::kSphere, 1.0, &rng);
  for (int i = 0; i < 100; ++i) {
    topo.AddHost();
  }
  double max_seen = 0;
  for (int i = 0; i < 100; ++i) {
    for (int j = i + 1; j < 100; ++j) {
      max_seen = std::max(max_seen, topo.Distance(i, j));
    }
  }
  EXPECT_LE(max_seen, M_PI + 1e-9);
  EXPECT_GT(max_seen, 2.0);  // nearly antipodal pairs exist among 100 points
}

TEST(TopologyTest, ClusteredHasShortIntraClusterDistances) {
  Rng rng(5);
  Topology topo(TopologyKind::kClustered, 1000.0, &rng);
  for (int i = 0; i < 200; ++i) {
    topo.AddHost();
  }
  // Count pairs closer than 5% of scale: clustering should make these common
  // compared to a uniform plane.
  int close_pairs = 0, total = 0;
  for (int i = 0; i < 200; ++i) {
    for (int j = i + 1; j < 200; ++j) {
      ++total;
      if (topo.Distance(i, j) < 50.0) {
        ++close_pairs;
      }
    }
  }
  // With 20 clusters, ~1/20 of pairs are intra-cluster (and thus very close).
  EXPECT_GT(static_cast<double>(close_pairs) / total, 0.02);
}

}  // namespace
}  // namespace past
