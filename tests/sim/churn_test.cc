#include "src/sim/churn.h"

#include <gtest/gtest.h>

namespace past {
namespace {

TEST(ChurnTest, AlternatesFailureAndRecovery) {
  EventQueue queue;
  ChurnConfig config;
  config.mean_session = 10 * kMicrosPerSecond;
  config.mean_downtime = 5 * kMicrosPerSecond;
  ChurnDriver churn(&queue, config, 1);
  int fails = 0, recovers = 0;
  bool up = true;
  churn.Manage(
      [&] {
        EXPECT_TRUE(up) << "fail while down";
        up = false;
        ++fails;
      },
      [&] {
        EXPECT_FALSE(up) << "recover while up";
        up = true;
        ++recovers;
      });
  churn.Start();
  queue.RunUntil(600 * kMicrosPerSecond);
  EXPECT_GT(fails, 10);
  EXPECT_GE(fails, recovers);
  EXPECT_LE(fails - recovers, 1);
  EXPECT_EQ(churn.stats().failures, static_cast<uint64_t>(fails));
  EXPECT_EQ(churn.stats().recoveries, static_cast<uint64_t>(recovers));
}

TEST(ChurnTest, NoRecoveryMeansPermanentDeparture) {
  EventQueue queue;
  ChurnConfig config;
  config.mean_session = 5 * kMicrosPerSecond;
  config.recover = false;
  ChurnDriver churn(&queue, config, 2);
  int fails = 0, recovers = 0;
  churn.Manage([&] { ++fails; }, [&] { ++recovers; });
  churn.Start();
  queue.RunUntil(300 * kMicrosPerSecond);
  EXPECT_EQ(fails, 1);
  EXPECT_EQ(recovers, 0);
}

TEST(ChurnTest, MeanSessionRoughlyRespected) {
  EventQueue queue;
  ChurnConfig config;
  config.mean_session = 20 * kMicrosPerSecond;
  config.mean_downtime = 1 * kMicrosPerSecond;
  ChurnDriver churn(&queue, config, 3);
  int fails = 0;
  for (int i = 0; i < 50; ++i) {
    churn.Manage([&] { ++fails; }, [] {});
  }
  churn.Start();
  const SimTime horizon = 400 * kMicrosPerSecond;
  queue.RunUntil(horizon);
  // Each node cycles in ~21s, so ~19 failures per node over 400s.
  double per_node = static_cast<double>(fails) / 50.0;
  EXPECT_GT(per_node, 12.0);
  EXPECT_LT(per_node, 28.0);
}

TEST(ChurnTest, StopCancelsPendingEvents) {
  EventQueue queue;
  ChurnConfig config;
  config.mean_session = 10 * kMicrosPerSecond;
  ChurnDriver churn(&queue, config, 4);
  int fails = 0;
  churn.Manage([&] { ++fails; }, [] {});
  churn.Start();
  churn.Stop();
  queue.RunUntil(1000 * kMicrosPerSecond);
  EXPECT_EQ(fails, 0);
}

TEST(ChurnTest, ManageAfterStartSchedulesImmediately) {
  EventQueue queue;
  ChurnConfig config;
  config.mean_session = 10 * kMicrosPerSecond;
  ChurnDriver churn(&queue, config, 5);
  churn.Start();
  int fails = 0;
  churn.Manage([&] { ++fails; }, [] {});
  queue.RunUntil(200 * kMicrosPerSecond);
  EXPECT_GT(fails, 0);
}

}  // namespace
}  // namespace past
