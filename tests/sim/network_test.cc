#include "src/sim/network.h"

#include <gtest/gtest.h>

namespace past {
namespace {

class Recorder : public NetReceiver {
 public:
  struct Received {
    NodeAddr from;
    Bytes data;
  };
  void OnMessage(NodeAddr from, ByteSpan wire) override {
    received.push_back({from, Bytes(wire.begin(), wire.end())});
  }
  std::vector<Received> received;
};

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest() : rng_(1), topo_(TopologyKind::kPlane, 100.0, &rng_) {}

  Network MakeNetwork(const NetworkConfig& config) {
    return Network(&queue_, &topo_, config, 7);
  }

  Rng rng_;
  EventQueue queue_;
  Topology topo_;
};

TEST_F(NetworkTest, DeliversPayloadAndSender) {
  Network net = MakeNetwork({});
  Recorder a, b;
  NodeAddr addr_a = net.Register(&a);
  NodeAddr addr_b = net.Register(&b);
  net.Send(addr_a, addr_b, Bytes{1, 2, 3});
  queue_.RunAll();
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(b.received[0].from, addr_a);
  EXPECT_EQ(b.received[0].data, (Bytes{1, 2, 3}));
  EXPECT_TRUE(a.received.empty());
}

TEST_F(NetworkTest, LatencyIsPositiveAndDistanceDependent) {
  NetworkConfig config;
  config.base_latency = 100;
  config.latency_per_unit = 1000.0;
  config.jitter_frac = 0.0;
  Network net = MakeNetwork(config);
  Recorder a, b;
  NodeAddr addr_a = net.Register(&a);
  NodeAddr addr_b = net.Register(&b);
  net.Send(addr_a, addr_b, Bytes{1});
  queue_.RunAll();
  SimTime expected = 100 + static_cast<SimTime>(net.Proximity(addr_a, addr_b) * 1000.0);
  EXPECT_EQ(queue_.Now(), expected);
}

TEST_F(NetworkTest, MessagesToDownNodesAreDropped) {
  Network net = MakeNetwork({});
  Recorder a, b;
  NodeAddr addr_a = net.Register(&a);
  NodeAddr addr_b = net.Register(&b);
  net.SetUp(addr_b, false);
  net.Send(addr_a, addr_b, Bytes{1});
  queue_.RunAll();
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(net.stats().dropped_down, 1u);
}

TEST_F(NetworkTest, InFlightMessagesDropWhenDestinationDies) {
  Network net = MakeNetwork({});
  Recorder a, b;
  NodeAddr addr_a = net.Register(&a);
  NodeAddr addr_b = net.Register(&b);
  net.Send(addr_a, addr_b, Bytes{1});
  net.SetUp(addr_b, false);  // dies while the message is in flight
  queue_.RunAll();
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(net.stats().dropped_down, 1u);
}

TEST_F(NetworkTest, NodeCanComeBackUp) {
  Network net = MakeNetwork({});
  Recorder a, b;
  NodeAddr addr_a = net.Register(&a);
  NodeAddr addr_b = net.Register(&b);
  net.SetUp(addr_b, false);
  net.SetUp(addr_b, true);
  net.Send(addr_a, addr_b, Bytes{1});
  queue_.RunAll();
  EXPECT_EQ(b.received.size(), 1u);
}

TEST_F(NetworkTest, LossRateDropsRoughlyThatFraction) {
  NetworkConfig config;
  config.loss_rate = 0.3;
  Network net = MakeNetwork(config);
  Recorder a, b;
  NodeAddr addr_a = net.Register(&a);
  NodeAddr addr_b = net.Register(&b);
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    net.Send(addr_a, addr_b, Bytes{1});
  }
  queue_.RunAll();
  double delivered = static_cast<double>(b.received.size()) / n;
  EXPECT_NEAR(delivered, 0.7, 0.05);
  EXPECT_EQ(net.stats().dropped_loss + net.stats().delivered, static_cast<uint64_t>(n));
}

TEST_F(NetworkTest, StatsCountBytes) {
  Network net = MakeNetwork({});
  Recorder a, b;
  NodeAddr addr_a = net.Register(&a);
  NodeAddr addr_b = net.Register(&b);
  net.Send(addr_a, addr_b, Bytes(100, 0));
  net.Send(addr_a, addr_b, Bytes(50, 0));
  EXPECT_EQ(net.stats().sent, 2u);
  EXPECT_EQ(net.stats().bytes_sent, 150u);
  net.ResetStats();
  EXPECT_EQ(net.stats().sent, 0u);
}

TEST_F(NetworkTest, ProximityIsSymmetricAndZeroToSelf) {
  Network net = MakeNetwork({});
  Recorder a, b;
  NodeAddr addr_a = net.Register(&a);
  NodeAddr addr_b = net.Register(&b);
  EXPECT_DOUBLE_EQ(net.Proximity(addr_a, addr_b), net.Proximity(addr_b, addr_a));
  EXPECT_DOUBLE_EQ(net.Proximity(addr_a, addr_a), 0.0);
}

TEST_F(NetworkTest, SelfSendDelivers) {
  Network net = MakeNetwork({});
  Recorder a;
  NodeAddr addr_a = net.Register(&a);
  net.Send(addr_a, addr_a, Bytes{9});
  queue_.RunAll();
  ASSERT_EQ(a.received.size(), 1u);
  EXPECT_EQ(a.received[0].from, addr_a);
}

// Self-sends are loopback: zero-distance latency, never lost, and pinned
// metric counts (counted as sent + delivered + self_sends, nothing else).
TEST_F(NetworkTest, SelfSendMetricCountsArePinned) {
  NetworkConfig config;
  config.loss_rate = 1.0;  // every wire message is lost...
  Network net = MakeNetwork(config);
  Recorder a, b;
  NodeAddr addr_a = net.Register(&a);
  NodeAddr addr_b = net.Register(&b);
  net.Send(addr_a, addr_a, Bytes{1, 2});  // ...but loopback never is
  net.Send(addr_a, addr_b, Bytes{3});
  queue_.RunAll();
  ASSERT_EQ(a.received.size(), 1u);
  EXPECT_TRUE(b.received.empty());
  Network::Stats s = net.stats();
  EXPECT_EQ(s.sent, 2u);
  EXPECT_EQ(s.self_sends, 1u);
  EXPECT_EQ(s.delivered, 1u);
  EXPECT_EQ(s.dropped_loss, 1u);
  EXPECT_EQ(s.dropped_down, 0u);
  EXPECT_EQ(s.bytes_sent, 3u);
}

TEST_F(NetworkTest, SelfSendUsesBaseLatencyOnly) {
  NetworkConfig config;
  config.base_latency = 250;
  config.latency_per_unit = 1e9;  // would be astronomical if distance counted
  config.jitter_frac = 0.5;
  Network net = MakeNetwork(config);
  Recorder a;
  NodeAddr addr_a = net.Register(&a);
  net.Send(addr_a, addr_a, Bytes{1});
  queue_.RunAll();
  ASSERT_EQ(a.received.size(), 1u);
  EXPECT_EQ(queue_.Now(), 250);
}

// Loopback traffic must not perturb the latency/loss RNG stream of real
// sends: a wire send behaves identically whether or not self-sends preceded
// it.
TEST(NetworkSelfSendTest, SelfSendsConsumeNoRng) {
  NetworkConfig config;
  config.jitter_frac = 0.5;
  SimTime arrival[2] = {0, 0};
  int idx = 0;
  for (int self_sends : {0, 100}) {
    Rng rng(9);
    EventQueue queue;
    Topology topo(TopologyKind::kPlane, 100.0, &rng);
    Network net(&queue, &topo, config, 42);
    Recorder a, b;
    NodeAddr addr_a = net.Register(&a);
    NodeAddr addr_b = net.Register(&b);
    for (int i = 0; i < self_sends; ++i) {
      net.Send(addr_a, addr_a, Bytes{1});
    }
    net.Send(addr_a, addr_b, Bytes{2});
    queue.RunAll();
    ASSERT_EQ(b.received.size(), 1u);
    // The a->b delivery is the last event (self-sends land at base latency).
    arrival[idx++] = queue.Now();
  }
  EXPECT_EQ(arrival[0], arrival[1]);
}

// Zero-copy delivery: all in-flight closures and the caller share one buffer.
TEST_F(NetworkTest, MultiRecipientSendsShareOneBuffer) {
  Network net = MakeNetwork({});
  Recorder a, b, c;
  NodeAddr addr_a = net.Register(&a);
  NodeAddr addr_b = net.Register(&b);
  NodeAddr addr_c = net.Register(&c);
  SharedBytes wire(Bytes{5, 6, 7});
  EXPECT_EQ(wire.use_count(), 1);
  net.Send(addr_a, addr_b, wire);
  net.Send(addr_a, addr_c, wire);
  net.Send(addr_a, addr_a, wire);
  // Caller's handle + three in-flight closures, zero buffer copies.
  EXPECT_EQ(wire.use_count(), 4);
  queue_.RunAll();
  EXPECT_EQ(wire.use_count(), 1);
  ASSERT_EQ(b.received.size(), 1u);
  ASSERT_EQ(c.received.size(), 1u);
  ASSERT_EQ(a.received.size(), 1u);
  EXPECT_EQ(b.received[0].data, (Bytes{5, 6, 7}));
  EXPECT_EQ(c.received[0].data, (Bytes{5, 6, 7}));
}

TEST_F(NetworkTest, ManyEndpointsDistinctAddresses) {
  Network net = MakeNetwork({});
  std::vector<std::unique_ptr<Recorder>> receivers;
  std::set<NodeAddr> addrs;
  for (int i = 0; i < 100; ++i) {
    receivers.push_back(std::make_unique<Recorder>());
    addrs.insert(net.Register(receivers.back().get()));
  }
  EXPECT_EQ(addrs.size(), 100u);
  EXPECT_EQ(net.endpoint_count(), 100u);
}

TEST_F(NetworkTest, UnregisterReleasesSlotForReuse) {
  Network net = MakeNetwork({});
  Recorder a, b, c;
  NodeAddr addr_a = net.Register(&a);
  NodeAddr addr_b = net.Register(&b);
  net.Unregister(addr_b);
  EXPECT_EQ(net.free_endpoint_count(), 1u);
  // The freed slot is re-let instead of growing the endpoint table.
  NodeAddr addr_c = net.Register(&c);
  EXPECT_EQ(addr_c, addr_b);
  EXPECT_EQ(net.endpoint_count(), 2u);
  EXPECT_EQ(net.free_endpoint_count(), 0u);
  net.Send(addr_a, addr_c, Bytes{9});
  queue_.RunAll();
  ASSERT_EQ(c.received.size(), 1u);
  EXPECT_TRUE(b.received.empty());
}

TEST_F(NetworkTest, InFlightMessageToRecycledSlotIsDropped) {
  Network net = MakeNetwork({});
  Recorder a, b, c;
  NodeAddr addr_a = net.Register(&a);
  NodeAddr addr_b = net.Register(&b);
  // The message is in flight when b's endpoint is torn down and re-let to a
  // new tenant; the epoch guard must drop it rather than deliver one node's
  // traffic to its slot successor.
  net.Send(addr_a, addr_b, Bytes{1, 2});
  net.Unregister(addr_b);
  NodeAddr addr_c = net.Register(&c);
  ASSERT_EQ(addr_c, addr_b);
  queue_.RunAll();
  EXPECT_TRUE(b.received.empty());
  EXPECT_TRUE(c.received.empty());
  EXPECT_EQ(net.metrics().FindCounter("net.dropped_down")->value(), 1u);
}

TEST_F(NetworkTest, ReserveEndpointsPreallocatesWithoutRegistering) {
  NetworkConfig config;
  config.expected_endpoints = 64;
  Network net = MakeNetwork(config);
  EXPECT_EQ(net.endpoint_count(), 0u);
  Recorder a;
  NodeAddr addr_a = net.Register(&a);
  EXPECT_EQ(addr_a, 0u);
  EXPECT_EQ(net.endpoint_count(), 1u);
  EXPECT_GT(net.EndpointMemoryUsage(), 0u);
}

TEST_F(NetworkTest, ReusedSlotKeepsTrafficFlowingBothWays) {
  Network net = MakeNetwork({});
  Recorder a, b, c;
  NodeAddr addr_a = net.Register(&a);
  NodeAddr addr_b = net.Register(&b);
  net.Unregister(addr_b);
  NodeAddr addr_c = net.Register(&c);
  ASSERT_EQ(addr_c, addr_b);
  net.Send(addr_c, addr_a, Bytes{3});
  net.Send(addr_a, addr_c, Bytes{4});
  queue_.RunAll();
  ASSERT_EQ(a.received.size(), 1u);
  EXPECT_EQ(a.received[0].from, addr_c);
  ASSERT_EQ(c.received.size(), 1u);
  EXPECT_EQ(c.received[0].data, (Bytes{4}));
}

}  // namespace
}  // namespace past
