// Discrete-event scheduler with a virtual clock.
//
// All protocol timing (message latency, keep-alive periods, failure timeouts)
// runs on this queue. Events at equal timestamps fire in scheduling order
// (sequence-number tie-break), which makes every simulation deterministic.
// Time is in integer microseconds.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

namespace past {

using SimTime = int64_t;  // microseconds

constexpr SimTime kMicrosPerMilli = 1000;
constexpr SimTime kMicrosPerSecond = 1000 * 1000;

class EventQueue {
 public:
  using EventId = uint64_t;

  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  SimTime Now() const { return now_; }

  // Schedules `fn` at absolute time `when` (must be >= Now()).
  EventId At(SimTime when, std::function<void()> fn);
  // Schedules `fn` after `delay` microseconds.
  EventId After(SimTime delay, std::function<void()> fn);

  // Cancels a pending event. Idempotent; cancelling an already-fired event is
  // a no-op.
  void Cancel(EventId id);

  // Runs events until the queue is empty or the clock passes `deadline`.
  // Returns the number of events executed.
  size_t RunUntil(SimTime deadline);

  // Runs every pending event (including ones scheduled while running), up to
  // `max_events` as a runaway guard. Returns events executed.
  size_t RunAll(size_t max_events = SIZE_MAX);

  bool Empty() const { return live_count_ == 0; }
  size_t PendingCount() const { return live_count_; }

 private:
  struct Entry {
    SimTime when;
    EventId id;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.id > b.id;
    }
  };

  bool PopAndRunOne();

  SimTime now_ = 0;
  EventId next_id_ = 1;
  size_t live_count_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_set<EventId> cancelled_;
};

}  // namespace past

