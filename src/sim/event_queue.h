// Discrete-event scheduler with a virtual clock.
//
// All protocol timing (message latency, keep-alive periods, failure timeouts)
// runs on this queue. Events at equal timestamps fire in scheduling order
// (sequence-number tie-break), which makes every simulation deterministic.
// Time is in integer microseconds.
//
// Storage layout: events live in a slab of pooled slots indexed by a binary
// heap of slot numbers. An EventId is (generation << 32) | slot_index; the
// generation is bumped every time a slot is released, so Cancel() on a stale
// id (already fired, already cancelled, or a recycled slot) is a cheap no-op
// that never grows auxiliary state. Cancellation is lazy: the slot is marked
// dead and its callback released immediately, and the heap entry is discarded
// when it surfaces at the top. Callbacks are stored in an EventFn with inline
// space for the capture sizes the simulator actually schedules, so the
// steady-state schedule/fire path performs no heap allocation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace past {

class LogHistogram;

using SimTime = int64_t;  // microseconds

constexpr SimTime kMicrosPerMilli = 1000;
constexpr SimTime kMicrosPerSecond = 1000 * 1000;

// Move-only callable of signature void(). Callables whose size fits
// kInlineSize (and that are nothrow-move-constructible) are stored inline;
// larger ones fall back to a single heap allocation. Unlike std::function,
// move-only captures (e.g. a moved-in SharedBytes) are supported.
class EventFn {
 public:
  // Sized for the network delivery closure (this + from + to + SharedBytes)
  // and the protocol timer closures, with headroom for one extra word.
  static constexpr size_t kInlineSize = 48;

  EventFn() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EventFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventFn(F&& fn) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineSize &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(fn));
      ops_ = &kInlineOps<Fn>;
    } else {
      ::new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(fn)));
      ops_ = &kHeapOps<Fn>;
    }
  }

  EventFn(EventFn&& other) noexcept { MoveFrom(other); }
  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }
  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;
  ~EventFn() { Reset(); }

  void operator()() { ops_->invoke(storage_); }
  explicit operator bool() const { return ops_ != nullptr; }

  // Destroys the held callable (releasing its captures) and becomes empty.
  void Reset() {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    // Move-constructs dst's storage from src's storage and destroys src's.
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void* storage);
  };

  template <typename Fn>
  static constexpr Ops kInlineOps = {
      [](void* s) { (*std::launder(reinterpret_cast<Fn*>(s)))(); },
      [](void* dst, void* src) {
        Fn* from = std::launder(reinterpret_cast<Fn*>(src));
        ::new (dst) Fn(std::move(*from));
        from->~Fn();
      },
      [](void* s) { std::launder(reinterpret_cast<Fn*>(s))->~Fn(); },
  };

  template <typename Fn>
  static constexpr Ops kHeapOps = {
      [](void* s) { (**std::launder(reinterpret_cast<Fn**>(s)))(); },
      [](void* dst, void* src) {
        // Pointers are trivially destructible; just copy the pointer over.
        ::new (dst) Fn*(*std::launder(reinterpret_cast<Fn**>(src)));
      },
      [](void* s) { delete *std::launder(reinterpret_cast<Fn**>(s)); },
  };

  void MoveFrom(EventFn& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineSize];
  const Ops* ops_ = nullptr;
};

class EventQueue {
 public:
  // (generation << 32) | slot_index. Generations start at 1, so no valid id
  // is ever 0 — callers use 0 as the "no timer armed" sentinel.
  using EventId = uint64_t;

  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  SimTime Now() const { return now_; }

  // Schedules `fn` at absolute time `when` (must be >= Now()).
  EventId At(SimTime when, EventFn fn);
  // Schedules `fn` after `delay` microseconds.
  EventId After(SimTime delay, EventFn fn);

  // Schedules `fn` in the *maintenance band*: at equal timestamps it fires
  // after every normally-scheduled event, regardless of the order the two
  // were scheduled in. The timer wheel arms its bucket-dispatch events here,
  // which makes tie-breaking independent of the wheel granularity (a bucket
  // event's heap seq depends on scheduling history; its band does not) —
  // the property the granularity-determinism ctests check. Within the band,
  // equal-time events still fire in schedule order.
  EventId AtMaintenance(SimTime when, EventFn fn);

  // Cancels a pending event; the callback's captures are released
  // immediately. Idempotent; cancelling an already-fired, already-cancelled,
  // or never-issued id is a no-op (the generation tag rejects stale ids even
  // after the slot has been recycled).
  void Cancel(EventId id);

  // Runs events until the queue is empty or the clock passes `deadline`.
  // Returns the number of events executed.
  size_t RunUntil(SimTime deadline);

  // Runs every pending event (including ones scheduled while running), up to
  // `max_events` as a runaway guard. Returns events executed.
  size_t RunAll(size_t max_events = SIZE_MAX);

  bool Empty() const { return live_count_ == 0; }
  size_t PendingCount() const { return live_count_; }

  // The timestamp of the earliest pending event, or kNoDeadline when the
  // queue is empty. Real-time backends (SocketTransport) bound their poll
  // timeout with this so timers fire promptly. May conservatively report a
  // cancelled event's time (the heap removes cancellations lazily), which
  // only causes a harmless early wake-up.
  static constexpr SimTime kNoDeadline = INT64_MAX;
  SimTime NextDeadline() const {
    return heap_.empty() ? kNoDeadline : slots_[heap_[0]].when;
  }

  // Introspection for tests: the number of pooled slots ever allocated. A
  // workload that schedules and fires in a steady state should plateau.
  size_t SlabSize() const { return slots_.size(); }

  // Approximate heap footprint in bytes (slot slab + heap array).
  size_t MemoryUsage() const {
    return slots_.capacity() * sizeof(Slot) + heap_.capacity() * sizeof(uint32_t);
  }

  // Optional callback-dispatch-time instrument, observed (wall-clock
  // microseconds) around every fired event — but only in opt-in PAST_PROF
  // builds; default builds never read it, keeping dispatch deterministic
  // and branch-free.
  void set_dispatch_prof(LogHistogram* hist) { dispatch_prof_ = hist; }

 private:
  static constexpr uint32_t kNoSlot = 0xffffffff;
  // High bit of a slot's seq: the maintenance tie-break band. Sequence
  // numbers count up from 1, so the bit can never be reached by counting.
  static constexpr uint64_t kMaintenanceBand = 1ULL << 63;

  struct Slot {
    SimTime when = 0;
    uint64_t seq = 0;          // tie-break: equal timestamps fire in schedule order
    uint32_t generation = 1;   // current incarnation; bumped on release
    uint32_t next_free = kNoSlot;
    bool live = false;         // scheduled and not cancelled
    EventFn fn;
  };

  uint32_t AllocSlot();
  void ReleaseSlot(uint32_t index);

  EventId Schedule(SimTime when, EventFn fn, uint64_t band);

  // (when, seq) strict ordering between two slots in the heap.
  bool Earlier(uint32_t a, uint32_t b) const {
    const Slot& sa = slots_[a];
    const Slot& sb = slots_[b];
    if (sa.when != sb.when) {
      return sa.when < sb.when;
    }
    return sa.seq < sb.seq;
  }

  void SiftUp(size_t pos);
  void SiftDown(size_t pos);
  void PopTop();

  bool PopAndRunOne();

  SimTime now_ = 0;
  uint64_t next_seq_ = 1;
  size_t live_count_ = 0;
  LogHistogram* dispatch_prof_ = nullptr;
  std::vector<Slot> slots_;      // the pool
  std::vector<uint32_t> heap_;   // binary min-heap of slot indices
  uint32_t free_head_ = kNoSlot;
};

}  // namespace past
