#include "src/sim/network.h"

#include <utility>

#include "src/common/check.h"

namespace past {

Network::Network(EventQueue* queue, Topology* topology, const NetworkConfig& config,
                 uint64_t seed)
    : queue_(queue), topology_(topology), config_(config), rng_(seed),
      wheel_(queue, config.timer_wheel_granularity) {
  PAST_CHECK(queue != nullptr && topology != nullptr);
  if (config_.expected_endpoints > 0) {
    ReserveEndpoints(config_.expected_endpoints);
  }
  sent_ = metrics_.GetCounter("net.sent");
  delivered_ = metrics_.GetCounter("net.delivered");
  dropped_loss_ = metrics_.GetCounter("net.dropped_loss");
  dropped_down_ = metrics_.GetCounter("net.dropped_down");
  dropped_oversize_ = metrics_.GetCounter("net.dropped_oversize");
  bytes_sent_ = metrics_.GetCounter("net.bytes_sent");
  self_sends_ = metrics_.GetCounter("net.self_sends");
  msg_bytes_ = metrics_.GetHistogram(
      "net.msg_bytes", {64, 128, 256, 512, 1024, 4096, 16384, 65536, 262144, 1048576});
  queue_depth_ = metrics_.GetGauge("sim.queue_depth");
  // Registry contract for downstream tooling (json_check, past_stats): every
  // experiment dump carries the end-to-end op-latency quantiles, even for
  // workloads that never issue the op (count 0, quantiles 0).
  metrics_.GetLogHistogram("past.insert.latency_us");
  metrics_.GetLogHistogram("past.lookup.latency_us");
  // Memory gauges, refreshed by Overlay::RecordMemoryMetrics; pre-registered
  // so every dump carries them even when no one measures.
  metrics_.GetGauge("sim.mem.bytes_per_node");
  metrics_.GetGauge("sim.mem.total_bytes");
#if defined(PAST_PROF)
  queue_->set_dispatch_prof(metrics_.GetLogHistogram("sim.dispatch_us"));
#endif
}

NodeAddr Network::Register(NetReceiver* receiver) {
  PAST_CHECK(receiver != nullptr);
  if (!free_endpoints_.empty()) {
    NodeAddr addr = free_endpoints_.back();
    free_endpoints_.pop_back();
    Endpoint& ep = endpoints_[addr];
    ep.receiver = receiver;
    ep.up = true;
    ep.in_use = true;
    // A recycled slot is a different physical host: give it a fresh position
    // (same RNG draws as AddHost, so churned and churn-free runs of equal
    // registration counts consume identical topology randomness).
    topology_->ResampleHost(ep.topo_index);
    return addr;
  }
  Endpoint ep;
  ep.receiver = receiver;
  ep.topo_index = topology_->AddHost();
  endpoints_.push_back(ep);
  return static_cast<NodeAddr>(endpoints_.size() - 1);
}

void Network::Unregister(NodeAddr addr) {
  PAST_CHECK(addr < endpoints_.size());
  Endpoint& ep = endpoints_[addr];
  PAST_CHECK_MSG(ep.in_use, "double Unregister of an endpoint");
  ep.receiver = nullptr;
  ep.up = false;
  ep.in_use = false;
  ++ep.epoch;  // orphan in-flight deliveries addressed to the old tenant
  free_endpoints_.push_back(addr);
}

void Network::ReserveEndpoints(size_t n) {
  endpoints_.reserve(n);
  topology_->Reserve(n);
}

void Network::SetUp(NodeAddr addr, bool up) {
  PAST_CHECK(addr < endpoints_.size());
  endpoints_[addr].up = up;
}

bool Network::IsUp(NodeAddr addr) const {
  PAST_CHECK(addr < endpoints_.size());
  return endpoints_[addr].up;
}

SimTime Network::SampleLatency(NodeAddr from, NodeAddr to) {
  double dist_term = Proximity(from, to) * config_.latency_per_unit;
  if (config_.jitter_frac > 0.0) {
    double jitter = (rng_.UniformDouble() * 2.0 - 1.0) * config_.jitter_frac;
    dist_term *= (1.0 + jitter);
  }
  SimTime latency = config_.base_latency + static_cast<SimTime>(dist_term);
  return latency < 1 ? 1 : latency;
}

void Network::SampleQueueDepth() {
  // Logical depth: every wheel timer counts as one pending event and the
  // armed per-bucket dispatch events are subtracted, so the gauge reads the
  // same at every wheel granularity.
  size_t depth = queue_->PendingCount() - wheel_.ArmedBuckets() + wheel_.PendingCount();
  queue_depth_->Set(static_cast<double>(depth));
}

void Network::Send(NodeAddr from, NodeAddr to, SharedBytes wire) {
  PAST_CHECK(from < endpoints_.size() && to < endpoints_.size());
  sent_->Inc();
  bytes_sent_->Inc(wire.size());
  msg_bytes_->Observe(static_cast<double>(wire.size()));
  if (++sends_since_depth_sample_ >= kQueueDepthSampleInterval) {
    sends_since_depth_sample_ = 0;
    SampleQueueDepth();
  }
  if (wire.size() > config_.max_message_bytes) {
    // Mirrors the socket backend's frame-size cap so the Transport
    // conformance suite can exercise oversize rejection on both backends.
    // Checked before any RNG draw: with the default (unlimited) cap the
    // branch never fires and the latency/loss stream is untouched.
    dropped_oversize_->Inc();
    return;
  }
  SimTime latency;
  if (to == from) {
    // Loopback: zero distance, so no proximity lookup, no jitter draw, and no
    // loss — the message never touches the wire. Keeping the RNG untouched
    // means loopback traffic cannot perturb the latency/loss stream of real
    // sends.
    self_sends_->Inc();
    latency = config_.base_latency < 1 ? 1 : config_.base_latency;
  } else {
    if (config_.loss_rate > 0.0 && rng_.Bernoulli(config_.loss_rate)) {
      dropped_loss_->Inc();
      return;
    }
    latency = SampleLatency(from, to);
  }
  // Zero-copy: the closure holds a refcounted handle onto the caller's
  // buffer. EventFn stores move-only callables inline, so neither the
  // payload nor the closure is heap-allocated here.
  uint32_t to_epoch = endpoints_[to].epoch;
  queue_->After(latency, [this, from, to, to_epoch, wire = std::move(wire)] {
    Endpoint& dest = endpoints_[to];
    if (!dest.up || dest.epoch != to_epoch) {
      // Down, or the slot was re-let to a new tenant after this message left.
      dropped_down_->Inc();
      return;
    }
    delivered_->Inc();
    dest.receiver->OnMessage(from, wire.span());
  });
}

size_t Network::EndpointMemoryUsage() const {
  return endpoints_.capacity() * sizeof(Endpoint) +
         free_endpoints_.capacity() * sizeof(NodeAddr) + wheel_.MemoryUsage();
}

Network::Stats Network::stats() const {
  Stats s;
  s.sent = sent_->value();
  s.delivered = delivered_->value();
  s.dropped_loss = dropped_loss_->value();
  s.dropped_down = dropped_down_->value();
  s.dropped_oversize = dropped_oversize_->value();
  s.bytes_sent = bytes_sent_->value();
  s.self_sends = self_sends_->value();
  return s;
}

void Network::ResetStats() {
  sent_->Reset();
  delivered_->Reset();
  dropped_loss_->Reset();
  dropped_down_->Reset();
  dropped_oversize_->Reset();
  bytes_sent_->Reset();
  self_sends_->Reset();
  msg_bytes_->Reset();
}

double Network::Proximity(NodeAddr a, NodeAddr b) const {
  PAST_CHECK(a < endpoints_.size() && b < endpoints_.size());
  return topology_->Distance(endpoints_[a].topo_index, endpoints_[b].topo_index);
}

}  // namespace past
