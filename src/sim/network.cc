#include "src/sim/network.h"

#include <memory>
#include <utility>

#include "src/common/check.h"

namespace past {

Network::Network(EventQueue* queue, Topology* topology, const NetworkConfig& config,
                 uint64_t seed)
    : queue_(queue), topology_(topology), config_(config), rng_(seed) {
  PAST_CHECK(queue != nullptr && topology != nullptr);
}

NodeAddr Network::Register(NetReceiver* receiver) {
  PAST_CHECK(receiver != nullptr);
  Endpoint ep;
  ep.receiver = receiver;
  ep.topo_index = topology_->AddHost();
  endpoints_.push_back(ep);
  return static_cast<NodeAddr>(endpoints_.size() - 1);
}

void Network::SetUp(NodeAddr addr, bool up) {
  PAST_CHECK(addr < endpoints_.size());
  endpoints_[addr].up = up;
}

bool Network::IsUp(NodeAddr addr) const {
  PAST_CHECK(addr < endpoints_.size());
  return endpoints_[addr].up;
}

SimTime Network::SampleLatency(NodeAddr from, NodeAddr to) {
  double dist_term = Proximity(from, to) * config_.latency_per_unit;
  if (config_.jitter_frac > 0.0) {
    double jitter = (rng_.UniformDouble() * 2.0 - 1.0) * config_.jitter_frac;
    dist_term *= (1.0 + jitter);
  }
  SimTime latency = config_.base_latency + static_cast<SimTime>(dist_term);
  return latency < 1 ? 1 : latency;
}

void Network::Send(NodeAddr from, NodeAddr to, Bytes wire) {
  PAST_CHECK(from < endpoints_.size() && to < endpoints_.size());
  ++stats_.sent;
  stats_.bytes_sent += wire.size();
  if (config_.loss_rate > 0.0 && rng_.Bernoulli(config_.loss_rate)) {
    ++stats_.dropped_loss;
    return;
  }
  SimTime latency = SampleLatency(from, to);
  // The payload is owned by the closure; shared_ptr keeps the closure
  // copyable for std::function.
  auto payload = std::make_shared<Bytes>(std::move(wire));
  queue_->After(latency, [this, from, to, payload] {
    Endpoint& dest = endpoints_[to];
    if (!dest.up) {
      ++stats_.dropped_down;
      return;
    }
    ++stats_.delivered;
    dest.receiver->OnMessage(from, ByteSpan(payload->data(), payload->size()));
  });
}

double Network::Proximity(NodeAddr a, NodeAddr b) const {
  PAST_CHECK(a < endpoints_.size() && b < endpoints_.size());
  return topology_->Distance(endpoints_[a].topo_index, endpoints_[b].topo_index);
}

}  // namespace past
