// TimerWheel — bucketed maintenance timers over an EventQueue.
//
// Protocol maintenance (keep-alive heartbeats, join retries) at large N would
// otherwise keep one live heap event per node at all times: a million idle
// nodes is a million-entry binary heap that every routing event then pays
// O(log N) to push past. The wheel coalesces timers into buckets of
// `granularity` microseconds and keeps exactly ONE EventQueue event armed per
// non-empty bucket — at the earliest pending deadline in that bucket — so a
// node with an armed keep-alive costs a 16-byte wheel slot, not a heap entry,
// and thousands of ticks due in the same bucket dispatch from one fired
// event.
//
// Determinism contract (checked by the scale determinism ctests):
//  * Callbacks fire at their EXACT scheduled microsecond — the bucket event
//    is armed at the minimum pending deadline and re-armed at the next
//    minimum after each dispatch, so granularity affects batching, never
//    firing times.
//  * At one timestamp, wheel callbacks fire in schedule order (a wheel-global
//    sequence number), and always AFTER every normally-scheduled event at
//    that timestamp: the bucket event is scheduled in the EventQueue's
//    maintenance band. Both orders are independent of the granularity and of
//    how buckets happened to be armed, so experiment output is byte-identical
//    at any granularity and any --threads count.
//
// Single-threaded, like the EventQueue it rides on. TimerIds follow the
// EventQueue convention: (generation << 32) | slot, 0 = "no timer armed".
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/sim/event_queue.h"

namespace past {

class TimerWheel {
 public:
  using TimerId = uint64_t;  // (generation << 32) | slot; 0 is never issued

  // `granularity` is the bucket width in microseconds (>= 1; 1 degenerates
  // to one bucket per distinct deadline).
  TimerWheel(EventQueue* queue, SimTime granularity);
  TimerWheel(const TimerWheel&) = delete;
  TimerWheel& operator=(const TimerWheel&) = delete;
  ~TimerWheel();

  // Schedules `fn` at absolute time `when` (>= queue->Now()).
  TimerId At(SimTime when, EventFn fn);
  // Schedules `fn` after `delay` microseconds.
  TimerId After(SimTime delay, EventFn fn);

  // Cancels a pending timer and releases its callback's captures. Idempotent:
  // stale, fired, and never-issued ids are cheap no-ops (generation-tagged,
  // like EventQueue::Cancel).
  void Cancel(TimerId id);

  SimTime granularity() const { return granularity_; }
  // Pending (scheduled, not yet fired or cancelled) timers.
  size_t PendingCount() const { return live_count_; }
  // Buckets currently holding an armed EventQueue event. The simulator's
  // queue-depth gauge reports queue.PendingCount() - ArmedBuckets() +
  // wheel.PendingCount() so the depth it publishes is the logical timer count,
  // independent of how the wheel batched them.
  size_t ArmedBuckets() const { return armed_buckets_; }
  size_t BucketCount() const { return buckets_.size(); }
  // Pooled slots ever allocated; a steady-state schedule/fire workload
  // plateaus (same introspection contract as EventQueue::SlabSize).
  size_t SlabSize() const { return slots_.size(); }

  // Approximate heap footprint in bytes (slab + bucket table). Deterministic
  // for a given schedule history at a given granularity.
  size_t MemoryUsage() const;

 private:
  static constexpr uint32_t kNoSlot = 0xffffffff;

  struct Slot {
    SimTime when = 0;
    uint64_t seq = 0;  // wheel-global schedule order; ties fire in this order
    int64_t bucket = 0;
    uint32_t generation = 1;
    uint32_t next_free = kNoSlot;
    bool live = false;
    EventFn fn;
  };

  struct Bucket {
    std::vector<uint32_t> entries;  // slot indices, live and cancelled mixed
    size_t live = 0;                // live entries among `entries`
    EventQueue::EventId event = 0;  // armed dispatch event (0 = none)
    SimTime armed_for = 0;
    bool dispatching = false;
  };

  uint32_t AllocSlot();
  void ReleaseSlot(uint32_t index);
  // Fires every live entry due at Now() in this bucket (including entries the
  // callbacks themselves add at Now()), then sweeps dead slots and re-arms
  // the bucket at its next minimum deadline (or erases it when empty).
  void Dispatch(int64_t bucket_index);
  void DisarmBucket(Bucket* bucket);
  void DropBucket(int64_t bucket_index);

  EventQueue* queue_;
  SimTime granularity_;
  std::vector<Slot> slots_;
  uint32_t free_head_ = kNoSlot;
  // Keyed by when / granularity. Never iterated in an order-sensitive way
  // (lint:allow-nondeterminism would not even be needed: lookups are by key
  // and MemoryUsage sums sizes).
  std::unordered_map<int64_t, Bucket> buckets_;
  uint64_t next_seq_ = 1;
  size_t live_count_ = 0;
  size_t armed_buckets_ = 0;
};

}  // namespace past
