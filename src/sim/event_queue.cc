#include "src/sim/event_queue.h"

#include "src/common/check.h"
#include "src/obs/prof.h"

namespace past {

uint32_t EventQueue::AllocSlot() {
  if (free_head_ != kNoSlot) {
    uint32_t index = free_head_;
    free_head_ = slots_[index].next_free;
    slots_[index].next_free = kNoSlot;
    return index;
  }
  PAST_CHECK_MSG(slots_.size() < kNoSlot, "event pool exhausted");
  slots_.emplace_back();
  return static_cast<uint32_t>(slots_.size() - 1);
}

void EventQueue::ReleaseSlot(uint32_t index) {
  Slot& slot = slots_[index];
  ++slot.generation;  // invalidates every outstanding id for this slot
  slot.live = false;
  slot.fn.Reset();
  slot.next_free = free_head_;
  free_head_ = index;
}

EventQueue::EventId EventQueue::Schedule(SimTime when, EventFn fn, uint64_t band) {
  PAST_CHECK_MSG(when >= now_, "cannot schedule events in the past");
  uint32_t index = AllocSlot();
  Slot& slot = slots_[index];
  slot.when = when;
  slot.seq = next_seq_++ | band;
  slot.live = true;
  slot.fn = std::move(fn);
  heap_.push_back(index);
  SiftUp(heap_.size() - 1);
  ++live_count_;
  return (static_cast<EventId>(slot.generation) << 32) | index;
}

EventQueue::EventId EventQueue::At(SimTime when, EventFn fn) {
  return Schedule(when, std::move(fn), 0);
}

EventQueue::EventId EventQueue::AtMaintenance(SimTime when, EventFn fn) {
  return Schedule(when, std::move(fn), kMaintenanceBand);
}

EventQueue::EventId EventQueue::After(SimTime delay, EventFn fn) {
  PAST_CHECK(delay >= 0);
  return At(now_ + delay, std::move(fn));
}

void EventQueue::Cancel(EventId id) {
  uint32_t index = static_cast<uint32_t>(id & 0xffffffff);
  uint32_t generation = static_cast<uint32_t>(id >> 32);
  if (index >= slots_.size()) {
    return;
  }
  Slot& slot = slots_[index];
  if (slot.generation != generation || !slot.live) {
    return;  // already fired, already cancelled, or a recycled/stale id
  }
  // Lazy cancel: drop the callback now (releasing its captures) and leave the
  // heap entry to be discarded when it reaches the top.
  slot.live = false;
  slot.fn.Reset();
  --live_count_;
}

void EventQueue::SiftUp(size_t pos) {
  uint32_t moving = heap_[pos];
  while (pos > 0) {
    size_t parent = (pos - 1) / 2;
    if (!Earlier(moving, heap_[parent])) {
      break;
    }
    heap_[pos] = heap_[parent];
    pos = parent;
  }
  heap_[pos] = moving;
}

void EventQueue::SiftDown(size_t pos) {
  uint32_t moving = heap_[pos];
  const size_t size = heap_.size();
  while (true) {
    size_t child = 2 * pos + 1;
    if (child >= size) {
      break;
    }
    if (child + 1 < size && Earlier(heap_[child + 1], heap_[child])) {
      ++child;
    }
    if (!Earlier(heap_[child], moving)) {
      break;
    }
    heap_[pos] = heap_[child];
    pos = child;
  }
  heap_[pos] = moving;
}

void EventQueue::PopTop() {
  heap_[0] = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    SiftDown(0);
  }
}

bool EventQueue::PopAndRunOne() {
  while (!heap_.empty()) {
    uint32_t index = heap_[0];
    Slot& slot = slots_[index];
    if (!slot.live) {
      // Cancelled; discard without advancing the clock.
      PopTop();
      ReleaseSlot(index);
      continue;
    }
    now_ = slot.when;
    EventFn fn = std::move(slot.fn);
    PopTop();
    // Release before invoking: the slot (and its id's generation) is dead the
    // moment the event fires, so Cancel() from inside the callback is a no-op
    // and the slot is immediately reusable for events the callback schedules.
    ReleaseSlot(index);
    --live_count_;
    {
      PAST_PROF_SCOPE(dispatch_prof_);
      fn();
    }
    return true;
  }
  return false;
}

size_t EventQueue::RunUntil(SimTime deadline) {
  size_t executed = 0;
  while (!heap_.empty()) {
    uint32_t index = heap_[0];
    if (!slots_[index].live) {
      PopTop();
      ReleaseSlot(index);
      continue;
    }
    if (slots_[index].when > deadline) {
      break;
    }
    if (PopAndRunOne()) {
      ++executed;
    }
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
  return executed;
}

size_t EventQueue::RunAll(size_t max_events) {
  size_t executed = 0;
  while (executed < max_events && PopAndRunOne()) {
    ++executed;
  }
  return executed;
}

}  // namespace past
