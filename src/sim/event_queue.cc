#include "src/sim/event_queue.h"

#include "src/common/check.h"

namespace past {

EventQueue::EventId EventQueue::At(SimTime when, std::function<void()> fn) {
  PAST_CHECK_MSG(when >= now_, "cannot schedule events in the past");
  EventId id = next_id_++;
  heap_.push(Entry{when, id, std::move(fn)});
  ++live_count_;
  return id;
}

EventQueue::EventId EventQueue::After(SimTime delay, std::function<void()> fn) {
  PAST_CHECK(delay >= 0);
  return At(now_ + delay, std::move(fn));
}

void EventQueue::Cancel(EventId id) {
  if (id == 0 || id >= next_id_) {
    return;
  }
  // Mark cancelled; the entry is discarded when it reaches the heap top.
  auto [it, inserted] = cancelled_.insert(id);
  (void)it;
  if (inserted && live_count_ > 0) {
    --live_count_;
  }
}

bool EventQueue::PopAndRunOne() {
  while (!heap_.empty()) {
    Entry top = std::move(const_cast<Entry&>(heap_.top()));
    heap_.pop();
    auto it = cancelled_.find(top.id);
    if (it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    now_ = top.when;
    --live_count_;
    top.fn();
    return true;
  }
  return false;
}

size_t EventQueue::RunUntil(SimTime deadline) {
  size_t executed = 0;
  while (!heap_.empty()) {
    // Skip cancelled entries at the top without advancing time.
    if (cancelled_.count(heap_.top().id)) {
      cancelled_.erase(heap_.top().id);
      heap_.pop();
      continue;
    }
    if (heap_.top().when > deadline) {
      break;
    }
    if (PopAndRunOne()) {
      ++executed;
    }
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
  return executed;
}

size_t EventQueue::RunAll(size_t max_events) {
  size_t executed = 0;
  while (executed < max_events && PopAndRunOne()) {
    ++executed;
  }
  return executed;
}

}  // namespace past
