#include "src/sim/topology.h"

#include <cmath>

#include "src/common/check.h"

namespace past {
namespace {

constexpr int kNumClusters = 20;
// Within a cluster, hosts sit within this fraction of the scale from the
// cluster center; clusters themselves are spread over the full scale.
constexpr double kClusterSpread = 0.02;

}  // namespace

Topology::Topology(TopologyKind kind, double scale, Rng* rng)
    : kind_(kind), scale_(scale), rng_(rng) {
  PAST_CHECK(scale > 0);
  PAST_CHECK(rng != nullptr);
  if (kind_ == TopologyKind::kClustered) {
    for (int i = 0; i < kNumClusters; ++i) {
      cluster_centers_.push_back(
          Point{rng_->UniformDouble() * scale_, rng_->UniformDouble() * scale_, 0.0});
    }
  }
}

Topology::Point Topology::SamplePoint(size_t slot) {
  Point p{0, 0, 0};
  switch (kind_) {
    case TopologyKind::kPlane: {
      p.x = rng_->UniformDouble() * scale_;
      p.y = rng_->UniformDouble() * scale_;
      break;
    }
    case TopologyKind::kSphere: {
      // Uniform on the sphere via normalized Gaussians.
      double x = rng_->Gaussian(), y = rng_->Gaussian(), z = rng_->Gaussian();
      double norm = std::sqrt(x * x + y * y + z * z);
      if (norm < 1e-12) {
        x = 1.0;
        norm = 1.0;
      }
      p.x = scale_ * x / norm;
      p.y = scale_ * y / norm;
      p.z = scale_ * z / norm;
      break;
    }
    case TopologyKind::kClustered: {
      int c = static_cast<int>(rng_->UniformU64(cluster_centers_.size()));
      if (slot < cluster_of_.size()) {
        cluster_of_[slot] = c;
      } else {
        cluster_of_.push_back(c);
      }
      const Point& center = cluster_centers_[c];
      p.x = center.x + (rng_->UniformDouble() - 0.5) * scale_ * kClusterSpread;
      p.y = center.y + (rng_->UniformDouble() - 0.5) * scale_ * kClusterSpread;
      break;
    }
  }
  return p;
}

int Topology::AddHost() {
  points_.push_back(SamplePoint(points_.size()));
  return static_cast<int>(points_.size()) - 1;
}

void Topology::ResampleHost(int index) {
  PAST_CHECK(index >= 0 && index < host_count());
  points_[static_cast<size_t>(index)] = SamplePoint(static_cast<size_t>(index));
}

void Topology::Reserve(size_t n) {
  points_.reserve(n);
  if (kind_ == TopologyKind::kClustered) {
    cluster_of_.reserve(n);
  }
}

double Topology::Distance(int a, int b) const {
  PAST_CHECK(a >= 0 && a < host_count() && b >= 0 && b < host_count());
  if (a == b) {
    return 0.0;  // avoid acos() rounding producing a tiny self-distance
  }
  const Point& pa = points_[a];
  const Point& pb = points_[b];
  if (kind_ == TopologyKind::kSphere) {
    // Great-circle distance.
    double dot = (pa.x * pb.x + pa.y * pb.y + pa.z * pb.z) / (scale_ * scale_);
    dot = std::max(-1.0, std::min(1.0, dot));
    return scale_ * std::acos(dot);
  }
  double dx = pa.x - pb.x;
  double dy = pa.y - pb.y;
  double dz = pa.z - pb.z;
  return std::sqrt(dx * dx + dy * dy + dz * dz);
}

double Topology::MaxDistance() const {
  switch (kind_) {
    case TopologyKind::kPlane:
      return scale_ * std::sqrt(2.0);
    case TopologyKind::kSphere:
      return scale_ * M_PI;
    case TopologyKind::kClustered:
      return scale_ * std::sqrt(2.0) * (1.0 + kClusterSpread);
  }
  return scale_;
}

size_t Topology::MemoryUsage() const {
  return sizeof(*this) + points_.capacity() * sizeof(Point) +
         cluster_centers_.capacity() * sizeof(Point) +
         cluster_of_.capacity() * sizeof(int);
}

}  // namespace past
