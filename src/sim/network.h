// Simulated message network.
//
// Endpoints register to get an address and a position in the proximity
// space. Send() delivers a byte string to the destination after a latency
// proportional to the proximity distance (plus jitter), unless the message is
// lost or the destination is down. There is no delivery notification and no
// failure notification — exactly the asymmetric-knowledge environment PAST
// assumes (nodes "may silently leave the system without warning").
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/rng.h"
#include "src/common/shared_bytes.h"
#include "src/net/transport.h"
#include "src/obs/metrics.h"
#include "src/obs/span.h"
#include "src/sim/event_queue.h"
#include "src/sim/topology.h"

namespace past {

// Defaults give Internet-like one-way latencies of roughly 1-200 ms with the
// default topology scale of 1000 proximity units (max distance ~3141 units on
// the sphere).
struct NetworkConfig {
  SimTime base_latency = 1000;         // fixed per-message latency (us)
  double latency_per_unit = 60.0;      // us per proximity unit
  double jitter_frac = 0.05;           // +/- fraction of the distance term
  double loss_rate = 0.0;              // iid message loss probability
  // Messages larger than this are dropped at Send() (net.dropped_oversize),
  // mirroring the socket backend's frame-size cap. Unlimited by default so
  // existing simulations are unaffected.
  size_t max_message_bytes = SIZE_MAX;
};

class Network : public Transport {
 public:
  Network(EventQueue* queue, Topology* topology, const NetworkConfig& config,
          uint64_t seed);
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // Registers a receiver; assigns it an address and a topology position.
  NodeAddr Register(NetReceiver* receiver) override;

  // Node liveness. A down node neither receives nor (by protocol convention)
  // sends; in-flight messages to it are dropped at delivery time.
  void SetUp(NodeAddr addr, bool up) override;
  bool IsUp(NodeAddr addr) const override;

  // Queues `wire` for delivery. Zero-copy: the in-flight closure holds a
  // handle onto the caller's buffer, so sending one SharedBytes to many
  // recipients shares a single allocation. Self-sends (to == from) are
  // short-circuited to the zero-distance latency (base_latency) and consume
  // no RNG draws and no loss check — loopback does not traverse the wire.
  void Send(NodeAddr from, NodeAddr to, SharedBytes wire) override;
  using Transport::Send;  // the Bytes convenience overload

  // The scalar proximity metric between two registered endpoints.
  double Proximity(NodeAddr a, NodeAddr b) const override;

  EventQueue* queue() override { return queue_; }
  Topology* topology() { return topology_; }
  size_t endpoint_count() const { return endpoints_.size(); }

  // The per-simulation metrics registry. Every layer riding on this network
  // (Pastry nodes, the PAST storage layer, experiment drivers) records into
  // this registry, so one dump captures the whole stack.
  MetricsRegistry& metrics() override { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

  // The per-simulation span collector. Disabled (and nearly free) by default;
  // experiments that take --trace-out call tracer().Enable() before the run
  // and export tracer().ToJson() after.
  Tracer& tracer() override { return tracer_; }
  const Tracer& tracer() const { return tracer_; }

  // Legacy aggregate view over the "net.*" registry counters. The counters
  // are the source of truth; this struct is assembled on read.
  struct Stats {
    uint64_t sent = 0;
    uint64_t delivered = 0;
    uint64_t dropped_loss = 0;
    uint64_t dropped_down = 0;
    uint64_t dropped_oversize = 0;
    uint64_t bytes_sent = 0;
    uint64_t self_sends = 0;
  };
  Stats stats() const;
  void ResetStats();

 private:
  struct Endpoint {
    NetReceiver* receiver = nullptr;
    int topo_index = -1;
    bool up = true;
  };

  SimTime SampleLatency(NodeAddr from, NodeAddr to);

  // The queue-depth gauge is refreshed once per this many sends instead of on
  // every send: PendingCount() is cheap but the gauge store was measurable on
  // the hot path, and a sampled depth is just as useful for dashboards.
  static constexpr uint64_t kQueueDepthSampleInterval = 64;

  EventQueue* queue_;
  Topology* topology_;
  NetworkConfig config_;
  Rng rng_;
  std::vector<Endpoint> endpoints_;
  uint64_t sends_since_depth_sample_ = 0;

  MetricsRegistry metrics_;
  Tracer tracer_;
  // Cached instrument handles for the send/deliver hot path.
  Counter* sent_;
  Counter* delivered_;
  Counter* dropped_loss_;
  Counter* dropped_down_;
  Counter* dropped_oversize_;
  Counter* bytes_sent_;
  Counter* self_sends_;
  Histogram* msg_bytes_;
  Gauge* queue_depth_;
};

}  // namespace past

