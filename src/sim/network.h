// Simulated message network.
//
// Endpoints register to get an address and a position in the proximity
// space. Send() delivers a byte string to the destination after a latency
// proportional to the proximity distance (plus jitter), unless the message is
// lost or the destination is down. There is no delivery notification and no
// failure notification — exactly the asymmetric-knowledge environment PAST
// assumes (nodes "may silently leave the system without warning").
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/rng.h"
#include "src/common/shared_bytes.h"
#include "src/net/transport.h"
#include "src/obs/metrics.h"
#include "src/obs/span.h"
#include "src/sim/event_queue.h"
#include "src/sim/timer_wheel.h"
#include "src/sim/topology.h"

namespace past {

// Defaults give Internet-like one-way latencies of roughly 1-200 ms with the
// default topology scale of 1000 proximity units (max distance ~3141 units on
// the sphere).
struct NetworkConfig {
  SimTime base_latency = 1000;         // fixed per-message latency (us)
  double latency_per_unit = 60.0;      // us per proximity unit
  double jitter_frac = 0.05;           // +/- fraction of the distance term
  double loss_rate = 0.0;              // iid message loss probability
  // Messages larger than this are dropped at Send() (net.dropped_oversize),
  // mirroring the socket backend's frame-size cap. Unlimited by default so
  // existing simulations are unaffected.
  size_t max_message_bytes = SIZE_MAX;
  // Bucket width of the maintenance timer wheel (see sim/timer_wheel.h).
  // Purely a heap-batching knob: timers fire at their exact scheduled
  // microsecond at every granularity, so simulation output is
  // granularity-invariant.
  SimTime timer_wheel_granularity = 64;
  // When > 0, endpoint and topology storage is reserved up front so a trial
  // that registers this many endpoints never reallocates mid-run.
  size_t expected_endpoints = 0;
};

class Network : public Transport {
 public:
  Network(EventQueue* queue, Topology* topology, const NetworkConfig& config,
          uint64_t seed);
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // Registers a receiver; assigns it an address and a topology position.
  // Slots freed by Unregister() are reused (most recently freed first) with a
  // bumped epoch and a freshly sampled topology position, so endpoint storage
  // is bounded by the peak live count, not the cumulative churn count.
  NodeAddr Register(NetReceiver* receiver) override;

  // Releases an endpoint slot for reuse. In-flight messages to the old
  // tenant are dropped at delivery time (counted as net.dropped_down): each
  // send captures the destination epoch, and Unregister bumps it.
  void Unregister(NodeAddr addr);

  // Pre-sizes endpoint and topology storage (idempotent; also driven by
  // NetworkConfig::expected_endpoints).
  void ReserveEndpoints(size_t n);

  // Node liveness. A down node neither receives nor (by protocol convention)
  // sends; in-flight messages to it are dropped at delivery time.
  void SetUp(NodeAddr addr, bool up) override;
  bool IsUp(NodeAddr addr) const override;

  // Queues `wire` for delivery. Zero-copy: the in-flight closure holds a
  // handle onto the caller's buffer, so sending one SharedBytes to many
  // recipients shares a single allocation. Self-sends (to == from) are
  // short-circuited to the zero-distance latency (base_latency) and consume
  // no RNG draws and no loss check — loopback does not traverse the wire.
  void Send(NodeAddr from, NodeAddr to, SharedBytes wire) override;
  using Transport::Send;  // the Bytes convenience overload

  // The scalar proximity metric between two registered endpoints.
  double Proximity(NodeAddr a, NodeAddr b) const override;

  EventQueue* queue() override { return queue_; }
  TimerWheel* wheel() override { return &wheel_; }
  Topology* topology() { return topology_; }
  size_t endpoint_count() const { return endpoints_.size(); }
  size_t free_endpoint_count() const { return free_endpoints_.size(); }

  // Heap footprint of the endpoint table plus the timer wheel, in bytes
  // (topology storage is reported by Topology::MemoryUsage).
  size_t EndpointMemoryUsage() const;

  // The per-simulation metrics registry. Every layer riding on this network
  // (Pastry nodes, the PAST storage layer, experiment drivers) records into
  // this registry, so one dump captures the whole stack.
  MetricsRegistry& metrics() override { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

  // The per-simulation span collector. Disabled (and nearly free) by default;
  // experiments that take --trace-out call tracer().Enable() before the run
  // and export tracer().ToJson() after.
  Tracer& tracer() override { return tracer_; }
  const Tracer& tracer() const { return tracer_; }

  // Legacy aggregate view over the "net.*" registry counters. The counters
  // are the source of truth; this struct is assembled on read.
  struct Stats {
    uint64_t sent = 0;
    uint64_t delivered = 0;
    uint64_t dropped_loss = 0;
    uint64_t dropped_down = 0;
    uint64_t dropped_oversize = 0;
    uint64_t bytes_sent = 0;
    uint64_t self_sends = 0;
  };
  Stats stats() const;
  void ResetStats();

 private:
  struct Endpoint {
    NetReceiver* receiver = nullptr;
    int topo_index = -1;
    bool up = true;
    bool in_use = true;
    // Incremented on Unregister; in-flight deliveries carry the epoch they
    // were sent under and are dropped if the slot has been re-let since.
    uint32_t epoch = 0;
  };

  SimTime SampleLatency(NodeAddr from, NodeAddr to);
  void SampleQueueDepth();

  // The queue-depth gauge is refreshed once per this many sends instead of on
  // every send: PendingCount() is cheap but the gauge store was measurable on
  // the hot path, and a sampled depth is just as useful for dashboards.
  static constexpr uint64_t kQueueDepthSampleInterval = 64;

  EventQueue* queue_;
  Topology* topology_;
  NetworkConfig config_;
  Rng rng_;
  TimerWheel wheel_;
  std::vector<Endpoint> endpoints_;
  std::vector<NodeAddr> free_endpoints_;  // LIFO of unregistered slots
  uint64_t sends_since_depth_sample_ = 0;

  MetricsRegistry metrics_;
  Tracer tracer_;
  // Cached instrument handles for the send/deliver hot path.
  Counter* sent_;
  Counter* delivered_;
  Counter* dropped_loss_;
  Counter* dropped_down_;
  Counter* dropped_oversize_;
  Counter* bytes_sent_;
  Counter* self_sends_;
  Histogram* msg_bytes_;
  Gauge* queue_depth_;
};

}  // namespace past

