// Proximity topologies for the simulated network.
//
// The paper defines network proximity as "a scalar metric, such as the number
// of IP hops, geographic distance, or a combination". We model hosts as
// points in a metric space and use distance as that scalar. Three spaces are
// provided, mirroring the topologies used in the Pastry evaluation:
//   kPlane     — uniform points in a square (Euclidean distance)
//   kSphere    — uniform points on a sphere (great-circle distance)
//   kClustered — Internet-like: dense clusters (sites) joined by long links;
//                intra-cluster distances are small, inter-cluster large.
#pragma once

#include <vector>

#include "src/common/rng.h"

namespace past {

enum class TopologyKind { kPlane, kSphere, kClustered };

class Topology {
 public:
  // `scale` is the edge length (plane), sphere radius, or cluster-spread
  // scale, in abstract proximity units.
  Topology(TopologyKind kind, double scale, Rng* rng);

  // Samples a position for a new host and returns its index.
  int AddHost();

  // Re-samples the position of an existing host, drawing exactly the RNG
  // stream AddHost would. Used when a network endpoint slot is recycled: the
  // new tenant is a different physical host and must not inherit the old
  // tenant's position.
  void ResampleHost(int index);

  // Pre-sizes point storage for `n` hosts (no positions are sampled).
  void Reserve(size_t n);

  double Distance(int a, int b) const;
  int host_count() const { return static_cast<int>(points_.size()); }
  TopologyKind kind() const { return kind_; }

  // Largest possible distance between two hosts in this space (used to
  // normalize locality metrics).
  double MaxDistance() const;

  // Heap footprint in bytes.
  size_t MemoryUsage() const;

 private:
  struct Point {
    double x, y, z;
  };

  // Samples a fresh position (and, for kClustered, a cluster assignment
  // written to cluster_of_[slot]).
  Point SamplePoint(size_t slot);

  TopologyKind kind_;
  double scale_;
  Rng* rng_;
  std::vector<Point> points_;
  // For kClustered: centers of the clusters, fixed at construction.
  std::vector<Point> cluster_centers_;
  std::vector<int> cluster_of_;
};

}  // namespace past

