// Churn driver: continuous, randomized node failure and recovery.
//
// PAST nodes "may join the system at any time and may silently leave the
// system without warning". The driver models each managed node as an
// alternating renewal process: exponentially distributed sessions (up-time)
// and downtimes, after which the node recovers (rejoins). Experiments and
// tests register fail/recover callbacks; the driver owns only timers.
#pragma once

#include <functional>
#include <vector>

#include "src/common/rng.h"
#include "src/sim/event_queue.h"

namespace past {

struct ChurnConfig {
  SimTime mean_session = 600 * kMicrosPerSecond;   // mean up-time
  SimTime mean_downtime = 60 * kMicrosPerSecond;   // mean time to recovery
  bool recover = true;  // false: failures are permanent departures
};

class ChurnDriver {
 public:
  ChurnDriver(EventQueue* queue, const ChurnConfig& config, uint64_t seed);
  ~ChurnDriver();

  ChurnDriver(const ChurnDriver&) = delete;
  ChurnDriver& operator=(const ChurnDriver&) = delete;

  // Registers a node. `fail` is invoked when its session expires; `recover`
  // when its downtime ends (never, if config.recover is false). Both run on
  // the event loop. Returns the managed index.
  size_t Manage(std::function<void()> fail, std::function<void()> recover);

  // Schedules the first failure for every managed node. Idempotent per node.
  void Start();
  // Cancels all pending churn events.
  void Stop();

  struct Stats {
    uint64_t failures = 0;
    uint64_t recoveries = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  struct Managed {
    std::function<void()> fail;
    std::function<void()> recover;
    EventQueue::EventId timer = 0;
    bool scheduled = false;
  };

  SimTime SampleExp(SimTime mean);
  void ScheduleFailure(size_t index);
  void ScheduleRecovery(size_t index);

  EventQueue* queue_;
  ChurnConfig config_;
  Rng rng_;
  std::vector<Managed> managed_;
  bool running_ = false;
  Stats stats_;
};

}  // namespace past

