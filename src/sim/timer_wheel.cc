#include "src/sim/timer_wheel.h"

#include <algorithm>

#include "src/common/check.h"

namespace past {

TimerWheel::TimerWheel(EventQueue* queue, SimTime granularity)
    : queue_(queue), granularity_(granularity) {
  PAST_CHECK(queue != nullptr);
  PAST_CHECK_MSG(granularity >= 1, "wheel granularity must be >= 1 us");
}

TimerWheel::~TimerWheel() {
  // Disarm every bucket so the queue does not keep dangling `this` captures.
  for (auto& [index, bucket] : buckets_) {
    if (bucket.event != 0) {
      queue_->Cancel(bucket.event);
      bucket.event = 0;
    }
  }
}

uint32_t TimerWheel::AllocSlot() {
  if (free_head_ != kNoSlot) {
    uint32_t index = free_head_;
    free_head_ = slots_[index].next_free;
    slots_[index].next_free = kNoSlot;
    return index;
  }
  PAST_CHECK_MSG(slots_.size() < kNoSlot, "timer wheel pool exhausted");
  slots_.emplace_back();
  return static_cast<uint32_t>(slots_.size() - 1);
}

void TimerWheel::ReleaseSlot(uint32_t index) {
  Slot& slot = slots_[index];
  ++slot.generation;  // invalidates every outstanding id for this slot
  slot.live = false;
  slot.fn.Reset();
  slot.next_free = free_head_;
  free_head_ = index;
}

TimerWheel::TimerId TimerWheel::At(SimTime when, EventFn fn) {
  PAST_CHECK_MSG(when >= queue_->Now(), "cannot schedule timers in the past");
  const int64_t bucket_index = when / granularity_;
  uint32_t index = AllocSlot();
  Slot& slot = slots_[index];
  slot.when = when;
  slot.seq = next_seq_++;
  slot.bucket = bucket_index;
  slot.live = true;
  slot.fn = std::move(fn);
  ++live_count_;

  Bucket& bucket = buckets_[bucket_index];
  bucket.entries.push_back(index);
  ++bucket.live;
  // Keep the bucket's queue event armed at its minimum pending deadline.
  // While the bucket is mid-dispatch its epilogue re-arms, so arming here
  // would double up.
  if (!bucket.dispatching && (bucket.event == 0 || when < bucket.armed_for)) {
    DisarmBucket(&bucket);
    bucket.event = queue_->AtMaintenance(
        when, [this, bucket_index] { Dispatch(bucket_index); });
    bucket.armed_for = when;
    ++armed_buckets_;
  }
  return (static_cast<TimerId>(slot.generation) << 32) | index;
}

TimerWheel::TimerId TimerWheel::After(SimTime delay, EventFn fn) {
  PAST_CHECK(delay >= 0);
  return At(queue_->Now() + delay, std::move(fn));
}

void TimerWheel::DisarmBucket(Bucket* bucket) {
  if (bucket->event != 0) {
    queue_->Cancel(bucket->event);
    bucket->event = 0;
    --armed_buckets_;
  }
}

void TimerWheel::DropBucket(int64_t bucket_index) {
  auto it = buckets_.find(bucket_index);
  PAST_CHECK(it != buckets_.end());
  DisarmBucket(&it->second);
  for (uint32_t entry : it->second.entries) {
    ReleaseSlot(entry);
  }
  buckets_.erase(it);
}

void TimerWheel::Cancel(TimerId id) {
  uint32_t index = static_cast<uint32_t>(id & 0xffffffff);
  uint32_t generation = static_cast<uint32_t>(id >> 32);
  if (index >= slots_.size()) {
    return;
  }
  Slot& slot = slots_[index];
  if (slot.generation != generation || !slot.live) {
    return;  // already fired, already cancelled, or a recycled/stale id
  }
  slot.live = false;
  slot.fn.Reset();
  --live_count_;

  auto it = buckets_.find(slot.bucket);
  PAST_CHECK(it != buckets_.end());
  Bucket& bucket = it->second;
  PAST_CHECK(bucket.live > 0);
  --bucket.live;
  if (bucket.dispatching) {
    return;  // the dispatch epilogue sweeps dead slots and re-arms
  }
  if (bucket.live == 0) {
    // An all-cancelled bucket frees its heap event immediately — a node whose
    // maintenance was cancelled costs nothing until it schedules again.
    DropBucket(slot.bucket);
    return;
  }
  if (bucket.event != 0 && slot.when == bucket.armed_for) {
    // The armed deadline may have belonged to the cancelled entry. Re-arm at
    // the true minimum so the queue event always matches a live deadline —
    // firing at a dead deadline would advance the clock at times that depend
    // on the granularity.
    SimTime min_when = 0;
    bool any = false;
    for (uint32_t entry : bucket.entries) {
      if (slots_[entry].live && (!any || slots_[entry].when < min_when)) {
        min_when = slots_[entry].when;
        any = true;
      }
    }
    PAST_CHECK(any);
    if (min_when != bucket.armed_for) {
      const int64_t bucket_index = slot.bucket;
      DisarmBucket(&bucket);
      bucket.event = queue_->AtMaintenance(
          min_when, [this, bucket_index] { Dispatch(bucket_index); });
      bucket.armed_for = min_when;
      ++armed_buckets_;
    }
  }
}

void TimerWheel::Dispatch(int64_t bucket_index) {
  auto it = buckets_.find(bucket_index);
  if (it == buckets_.end()) {
    return;  // defensive: a dropped bucket cancels its event first
  }
  it->second.event = 0;  // this event is the one firing
  --armed_buckets_;
  it->second.dispatching = true;
  const SimTime now = queue_->Now();

  // Fire every live entry due exactly now, in wheel schedule order. Loop:
  // callbacks may schedule further timers at `now` into this same bucket,
  // which must also fire in this dispatch (exactly as they would at
  // granularity 1). References into `buckets_`/`slots_` are re-resolved
  // around callbacks: both containers may reallocate while user code runs.
  std::vector<uint32_t> due;
  while (true) {
    due.clear();
    for (uint32_t entry : buckets_.find(bucket_index)->second.entries) {
      if (slots_[entry].live && slots_[entry].when == now) {
        due.push_back(entry);
      }
    }
    if (due.empty()) {
      break;
    }
    std::sort(due.begin(), due.end(), [this](uint32_t a, uint32_t b) {
      return slots_[a].seq < slots_[b].seq;
    });
    for (uint32_t entry : due) {
      Slot& slot = slots_[entry];
      if (!slot.live || slot.when != now) {
        continue;  // cancelled by an earlier callback in this batch
      }
      slot.live = false;
      --live_count_;
      --buckets_.find(bucket_index)->second.live;
      EventFn fn = std::move(slot.fn);
      // The slot stays unreleased (generation unbumped) until the sweep below
      // so its bucket entry stays valid; Cancel() on the fired id is already
      // a no-op via the live flag.
      fn();
    }
  }

  auto post = buckets_.find(bucket_index);
  Bucket& bucket = post->second;
  bucket.dispatching = false;
  // Sweep: release fired and cancelled slots, keep live ones.
  size_t kept = 0;
  for (uint32_t entry : bucket.entries) {
    if (slots_[entry].live) {
      bucket.entries[kept++] = entry;
    } else {
      ReleaseSlot(entry);
    }
  }
  bucket.entries.resize(kept);
  PAST_CHECK(bucket.live == kept);
  if (bucket.entries.empty()) {
    PAST_CHECK(bucket.event == 0);  // At() defers arming while dispatching
    buckets_.erase(post);
    return;
  }
  SimTime min_when = slots_[bucket.entries[0]].when;
  for (size_t i = 1; i < bucket.entries.size(); ++i) {
    min_when = std::min(min_when, slots_[bucket.entries[i]].when);
  }
  bucket.event = queue_->AtMaintenance(
      min_when, [this, bucket_index] { Dispatch(bucket_index); });
  bucket.armed_for = min_when;
  ++armed_buckets_;
}

size_t TimerWheel::MemoryUsage() const {
  size_t bytes = sizeof(*this) + slots_.capacity() * sizeof(Slot);
  // Hash-map overhead: one bucket-array pointer per hash bucket plus a node
  // per element (key + value + a next pointer, approximated).
  bytes += buckets_.bucket_count() * sizeof(void*);
  for (const auto& [index, bucket] : buckets_) {
    (void)index;
    bytes += sizeof(int64_t) + sizeof(Bucket) + sizeof(void*);
    bytes += bucket.entries.capacity() * sizeof(uint32_t);
  }
  return bytes;
}

}  // namespace past
