#include "src/sim/churn.h"

#include "src/common/check.h"

namespace past {

ChurnDriver::ChurnDriver(EventQueue* queue, const ChurnConfig& config, uint64_t seed)
    : queue_(queue), config_(config), rng_(seed) {
  PAST_CHECK(queue != nullptr);
  PAST_CHECK(config.mean_session > 0);
  PAST_CHECK(config.mean_downtime > 0);
}

ChurnDriver::~ChurnDriver() { Stop(); }

SimTime ChurnDriver::SampleExp(SimTime mean) {
  double sample = rng_.Exponential(1.0 / static_cast<double>(mean));
  SimTime t = static_cast<SimTime>(sample);
  return t < 1 ? 1 : t;
}

size_t ChurnDriver::Manage(std::function<void()> fail, std::function<void()> recover) {
  Managed m;
  m.fail = std::move(fail);
  m.recover = std::move(recover);
  managed_.push_back(std::move(m));
  size_t index = managed_.size() - 1;
  if (running_) {
    ScheduleFailure(index);
  }
  return index;
}

void ChurnDriver::Start() {
  running_ = true;
  for (size_t i = 0; i < managed_.size(); ++i) {
    if (!managed_[i].scheduled) {
      ScheduleFailure(i);
    }
  }
}

void ChurnDriver::Stop() {
  running_ = false;
  for (Managed& m : managed_) {
    if (m.timer != 0) {
      queue_->Cancel(m.timer);
      m.timer = 0;
    }
    m.scheduled = false;
  }
}

void ChurnDriver::ScheduleFailure(size_t index) {
  Managed& m = managed_[index];
  m.scheduled = true;
  m.timer = queue_->After(SampleExp(config_.mean_session), [this, index] {
    Managed& node = managed_[index];
    node.timer = 0;
    ++stats_.failures;
    node.fail();
    if (config_.recover) {
      ScheduleRecovery(index);
    } else {
      node.scheduled = false;
    }
  });
}

void ChurnDriver::ScheduleRecovery(size_t index) {
  Managed& m = managed_[index];
  m.timer = queue_->After(SampleExp(config_.mean_downtime), [this, index] {
    Managed& node = managed_[index];
    node.timer = 0;
    ++stats_.recoveries;
    node.recover();
    ScheduleFailure(index);
  });
}

}  // namespace past
