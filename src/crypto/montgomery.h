// Montgomery-form modular arithmetic — the fast path under BigNum::ModExp.
//
// A MontgomeryContext precomputes, for one odd modulus n, the negated word
// inverse n' = -n^-1 mod 2^64 and R^2 mod n (R = 2^(64*k) for k words), then
// multiplies in Montgomery form with the CIOS (coarsely integrated operand
// scanning) method: one fused multiply/reduce pass per operand word, no
// division anywhere. BigNum's 32-bit limbs are packed pairwise into 64-bit
// words for the kernel, so the inner loop runs on half the limb count with
// 128-bit products. Exponentiation uses a fixed 4-bit window (squarings plus
// one table multiply per window) for signing-sized exponents and plain
// square-and-multiply for short public exponents, where a window table costs
// more than it saves.
//
// Montgomery reduction is exact, so results are bit-identical to
// BigNum::ModExpReference — the differential suite in
// tests/crypto/modexp_differential_test.cc holds the two paths equal.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/crypto/bignum.h"

namespace past {

class MontgomeryContext {
 public:
  // The modulus must be odd and > 1 (use BigNum::ModExpReference otherwise);
  // BigNum::ModExp dispatches accordingly.
  explicit MontgomeryContext(const BigNum& modulus);

  const BigNum& modulus() const { return modulus_; }

  // (base^exponent) mod modulus. base may be >= modulus; exponent 0 yields
  // 1 mod modulus, matching the reference implementation exactly.
  BigNum ModExp(const BigNum& base, const BigNum& exponent) const;

 private:
  using Word = uint64_t;
  using Words = std::vector<Word>;

  // out = a * b * R^-1 mod n (fused CIOS: the multiply and reduce passes for
  // each word of b run in one loop with two carry chains). a, b, out are k_
  // words; out may alias a or b. scratch must hold k_ + 1 words.
  void MontMul(const Word* a, const Word* b, Word* out, Word* scratch) const;

  Words ToWords(const BigNum& value) const;  // value < modulus, k_ words
  BigNum FromWords(const Word* words) const;

  BigNum modulus_;
  size_t k_ = 0;     // modulus width in 64-bit words
  Words n_;          // modulus, little-endian words
  Word n0inv_ = 0;   // -n^-1 mod 2^64
  Words rr_;         // R^2 mod n
  Words one_;        // R mod n (1 in Montgomery form)
};

}  // namespace past
