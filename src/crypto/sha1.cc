#include "src/crypto/sha1.h"

#include <cstring>

namespace past {
namespace {

uint32_t Rotl32(uint32_t x, int k) { return (x << k) | (x >> (32 - k)); }

}  // namespace

Sha1::Sha1() : total_bytes_(0), buffered_(0) {
  h_[0] = 0x67452301;
  h_[1] = 0xEFCDAB89;
  h_[2] = 0x98BADCFE;
  h_[3] = 0x10325476;
  h_[4] = 0xC3D2E1F0;
}

void Sha1::Update(ByteSpan data) {
  total_bytes_ += data.size();
  size_t offset = 0;
  if (buffered_ > 0) {
    size_t take = std::min(data.size(), sizeof(buffer_) - buffered_);
    std::memcpy(buffer_ + buffered_, data.data(), take);
    buffered_ += take;
    offset = take;
    if (buffered_ == sizeof(buffer_)) {
      ProcessBlock(buffer_);
      buffered_ = 0;
    }
  }
  while (offset + 64 <= data.size()) {
    ProcessBlock(data.data() + offset);
    offset += 64;
  }
  if (offset < data.size()) {
    std::memcpy(buffer_, data.data() + offset, data.size() - offset);
    buffered_ = data.size() - offset;
  }
}

std::array<uint8_t, Sha1::kDigestBytes> Sha1::Finish() {
  uint64_t bit_len = total_bytes_ * 8;
  uint8_t pad = 0x80;
  Update(ByteSpan(&pad, 1));
  uint8_t zero = 0;
  while (buffered_ != 56) {
    Update(ByteSpan(&zero, 1));
  }
  uint8_t len_bytes[8];
  for (int i = 0; i < 8; ++i) {
    len_bytes[i] = static_cast<uint8_t>(bit_len >> (56 - 8 * i));
  }
  Update(ByteSpan(len_bytes, 8));

  std::array<uint8_t, kDigestBytes> out;
  for (int i = 0; i < 5; ++i) {
    out[4 * i] = static_cast<uint8_t>(h_[i] >> 24);
    out[4 * i + 1] = static_cast<uint8_t>(h_[i] >> 16);
    out[4 * i + 2] = static_cast<uint8_t>(h_[i] >> 8);
    out[4 * i + 3] = static_cast<uint8_t>(h_[i]);
  }
  return out;
}

void Sha1::ProcessBlock(const uint8_t* block) {
  uint32_t w[80];
  for (int i = 0; i < 16; ++i) {
    w[i] = (static_cast<uint32_t>(block[4 * i]) << 24) |
           (static_cast<uint32_t>(block[4 * i + 1]) << 16) |
           (static_cast<uint32_t>(block[4 * i + 2]) << 8) |
           static_cast<uint32_t>(block[4 * i + 3]);
  }
  for (int i = 16; i < 80; ++i) {
    w[i] = Rotl32(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
  }

  uint32_t a = h_[0], b = h_[1], c = h_[2], d = h_[3], e = h_[4];
  for (int i = 0; i < 80; ++i) {
    uint32_t f, k;
    if (i < 20) {
      f = (b & c) | ((~b) & d);
      k = 0x5A827999;
    } else if (i < 40) {
      f = b ^ c ^ d;
      k = 0x6ED9EBA1;
    } else if (i < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8F1BBCDC;
    } else {
      f = b ^ c ^ d;
      k = 0xCA62C1D6;
    }
    uint32_t temp = Rotl32(a, 5) + f + e + k + w[i];
    e = d;
    d = c;
    c = Rotl32(b, 30);
    b = a;
    a = temp;
  }
  h_[0] += a;
  h_[1] += b;
  h_[2] += c;
  h_[3] += d;
  h_[4] += e;
}

std::array<uint8_t, Sha1::kDigestBytes> Sha1::Hash(ByteSpan data) {
  Sha1 h;
  h.Update(data);
  return h.Finish();
}

U160 Sha1::HashToU160(ByteSpan data) {
  auto digest = Hash(data);
  return U160::FromBytes(ByteSpan(digest.data(), digest.size()));
}

}  // namespace past
