#include "src/crypto/sha1.h"

#include <cstring>

#if defined(__x86_64__) && defined(__GNUC__)
#include <immintrin.h>
#define PAST_SHA1_HAS_NI 1
#endif

namespace past {
namespace {

uint32_t Rotl32(uint32_t x, int k) { return (x << k) | (x >> (32 - k)); }

#if PAST_SHA1_HAS_NI
// One-block SHA-1 compression using the SHA-NI instructions, selected at
// runtime when the CPU supports them. Twenty groups of four rounds: each
// _mm_sha1rnds4_epu32 executes four rounds, the four message vectors rotate
// through sha1msg1/xor/sha1msg2 to extend the W schedule, and the running E
// term alternates between two accumulators (sha1nexte folds the rotated `a`
// word of the previous group into the next group's W block). The loop is
// fully unrolled, so every msg index and round constant is compile-time.
__attribute__((target("sha,sse4.1,ssse3"))) void ProcessBlockShaNi(
    uint32_t* h, const uint8_t* block) {
  const __m128i kByteReverse =
      _mm_set_epi64x(0x0001020304050607ULL, 0x08090a0b0c0d0e0fULL);
  __m128i abcd = _mm_loadu_si128(reinterpret_cast<const __m128i*>(h));
  abcd = _mm_shuffle_epi32(abcd, 0x1B);
  __m128i e0 = _mm_set_epi32(static_cast<int>(h[4]), 0, 0, 0);
  __m128i e1 = _mm_setzero_si128();
  const __m128i abcd_save = abcd;
  const __m128i e0_save = e0;
  __m128i msg[4];
#pragma GCC unroll 20
  for (int g = 0; g < 20; ++g) {
    if (g < 4) {
      msg[g] = _mm_loadu_si128(reinterpret_cast<const __m128i*>(block + 16 * g));
      msg[g] = _mm_shuffle_epi8(msg[g], kByteReverse);
    }
    __m128i e;
    if (g == 0) {
      e0 = _mm_add_epi32(e0, msg[0]);
      e = e0;
      e1 = abcd;
    } else if (g % 2 == 1) {
      e1 = _mm_sha1nexte_epu32(e1, msg[g % 4]);
      e = e1;
      e0 = abcd;
    } else {
      e0 = _mm_sha1nexte_epu32(e0, msg[g % 4]);
      e = e0;
      e1 = abcd;
    }
    if (g >= 3 && g <= 18) {
      msg[(g + 1) % 4] = _mm_sha1msg2_epu32(msg[(g + 1) % 4], msg[g % 4]);
    }
    switch (g / 5) {  // the round-constant immediate must be a literal
      case 0: abcd = _mm_sha1rnds4_epu32(abcd, e, 0); break;
      case 1: abcd = _mm_sha1rnds4_epu32(abcd, e, 1); break;
      case 2: abcd = _mm_sha1rnds4_epu32(abcd, e, 2); break;
      case 3: abcd = _mm_sha1rnds4_epu32(abcd, e, 3); break;
    }
    if (g >= 1 && g <= 16) {
      msg[(g + 3) % 4] = _mm_sha1msg1_epu32(msg[(g + 3) % 4], msg[g % 4]);
    }
    if (g >= 2 && g <= 17) {
      msg[(g + 2) % 4] = _mm_xor_si128(msg[(g + 2) % 4], msg[g % 4]);
    }
  }
  e0 = _mm_sha1nexte_epu32(e0, e0_save);
  abcd = _mm_add_epi32(abcd, abcd_save);
  abcd = _mm_shuffle_epi32(abcd, 0x1B);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(h), abcd);
  h[4] = static_cast<uint32_t>(_mm_extract_epi32(e0, 3));
}
#endif  // PAST_SHA1_HAS_NI

}  // namespace

Sha1::Sha1() : total_bytes_(0), buffered_(0) {
  h_[0] = 0x67452301;
  h_[1] = 0xEFCDAB89;
  h_[2] = 0x98BADCFE;
  h_[3] = 0x10325476;
  h_[4] = 0xC3D2E1F0;
}

void Sha1::Update(ByteSpan data) {
  total_bytes_ += data.size();
  size_t offset = 0;
  if (buffered_ > 0) {
    size_t take = std::min(data.size(), sizeof(buffer_) - buffered_);
    std::memcpy(buffer_ + buffered_, data.data(), take);
    buffered_ += take;
    offset = take;
    if (buffered_ == sizeof(buffer_)) {
      ProcessBlock(buffer_);
      buffered_ = 0;
    }
  }
  while (offset + 64 <= data.size()) {
    ProcessBlock(data.data() + offset);
    offset += 64;
  }
  if (offset < data.size()) {
    std::memcpy(buffer_, data.data() + offset, data.size() - offset);
    buffered_ = data.size() - offset;
  }
}

std::array<uint8_t, Sha1::kDigestBytes> Sha1::Finish() {
  uint64_t bit_len = total_bytes_ * 8;
  // One padding buffer (0x80, zeros, big-endian bit length) instead of
  // byte-at-a-time Update calls.
  uint8_t pad[64 + 8] = {0x80};
  size_t pad_len = (buffered_ < 56 ? 56 : 120) - buffered_;
  for (int i = 0; i < 8; ++i) {
    pad[pad_len + i] = static_cast<uint8_t>(bit_len >> (56 - 8 * i));
  }
  Update(ByteSpan(pad, pad_len + 8));

  std::array<uint8_t, kDigestBytes> out;
  for (int i = 0; i < 5; ++i) {
    out[4 * i] = static_cast<uint8_t>(h_[i] >> 24);
    out[4 * i + 1] = static_cast<uint8_t>(h_[i] >> 16);
    out[4 * i + 2] = static_cast<uint8_t>(h_[i] >> 8);
    out[4 * i + 3] = static_cast<uint8_t>(h_[i]);
  }
  return out;
}

void Sha1::ProcessBlock(const uint8_t* block) {
#if PAST_SHA1_HAS_NI
  if (__builtin_cpu_supports("sha")) {
    ProcessBlockShaNi(h_, block);
    return;
  }
#endif
  uint32_t w[80];
  for (int i = 0; i < 16; ++i) {
    uint32_t v;
    std::memcpy(&v, block + 4 * i, 4);
    w[i] = __builtin_bswap32(v);
  }
  for (int i = 16; i < 80; ++i) {
    w[i] = Rotl32(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
  }

  uint32_t a = h_[0], b = h_[1], c = h_[2], d = h_[3], e = h_[4];
  // Four branch-free round groups (one per round constant) so the compiler
  // can unroll; the register rotation compiles down to renames.
#define PAST_SHA1_ROUND(i, f, k)                            \
  do {                                                      \
    uint32_t temp = Rotl32(a, 5) + (f) + e + (k) + w[(i)];  \
    e = d;                                                  \
    d = c;                                                  \
    c = Rotl32(b, 30);                                      \
    b = a;                                                  \
    a = temp;                                               \
  } while (0)
  for (int i = 0; i < 20; ++i) {
    PAST_SHA1_ROUND(i, (b & c) | ((~b) & d), 0x5A827999);
  }
  for (int i = 20; i < 40; ++i) {
    PAST_SHA1_ROUND(i, b ^ c ^ d, 0x6ED9EBA1);
  }
  for (int i = 40; i < 60; ++i) {
    PAST_SHA1_ROUND(i, (b & c) | (b & d) | (c & d), 0x8F1BBCDC);
  }
  for (int i = 60; i < 80; ++i) {
    PAST_SHA1_ROUND(i, b ^ c ^ d, 0xCA62C1D6);
  }
#undef PAST_SHA1_ROUND
  h_[0] += a;
  h_[1] += b;
  h_[2] += c;
  h_[3] += d;
  h_[4] += e;
}

std::array<uint8_t, Sha1::kDigestBytes> Sha1::Hash(ByteSpan data) {
  Sha1 h;
  h.Update(data);
  return h.Finish();
}

U160 Sha1::HashToU160(ByteSpan data) {
  auto digest = Hash(data);
  return U160::FromBytes(ByteSpan(digest.data(), digest.size()));
}

}  // namespace past
