#include "src/crypto/rsa.h"

#include "src/common/check.h"
#include "src/common/serializer.h"
#include "src/crypto/sha1.h"

namespace past {
namespace {

// PKCS#1 v1.5-style padding: 0x00 0x01 0xFF... 0x00 digest, sized to the
// modulus width. Guarantees the padded value is < n (leading zero byte).
Bytes PadDigest(ByteSpan digest, size_t modulus_bytes) {
  PAST_CHECK_MSG(digest.size() + 11 <= modulus_bytes, "digest too long for modulus");
  Bytes padded(modulus_bytes, 0xFF);
  padded[0] = 0x00;
  padded[1] = 0x01;
  padded[modulus_bytes - digest.size() - 1] = 0x00;
  std::copy(digest.begin(), digest.end(), padded.end() - digest.size());
  return padded;
}

}  // namespace

Bytes RsaPublicKey::Encode() const {
  Writer w;
  w.Blob(n.ToBytes());
  w.Blob(e.ToBytes());
  return w.Take();
}

bool RsaPublicKey::Decode(ByteSpan data, RsaPublicKey* out) {
  Reader r(data);
  Bytes n_bytes, e_bytes;
  if (!r.Blob(&n_bytes) || !r.Blob(&e_bytes) || !r.AtEnd()) {
    return false;
  }
  out->n = BigNum::FromBytes(n_bytes);
  out->e = BigNum::FromBytes(e_bytes);
  return true;
}

RsaKeyPair RsaKeyPair::Generate(int modulus_bits, Rng* rng) {
  PAST_CHECK(modulus_bits >= 128);
  const BigNum e = BigNum::FromU64(65537);
  while (true) {
    BigNum p = BigNum::GeneratePrime(modulus_bits / 2, rng);
    BigNum q = BigNum::GeneratePrime(modulus_bits - modulus_bits / 2, rng);
    if (p == q) {
      continue;
    }
    BigNum n = p.Mul(q);
    BigNum phi = p.Sub(BigNum::FromU64(1)).Mul(q.Sub(BigNum::FromU64(1)));
    BigNum d;
    if (!BigNum::ModInverse(e, phi, &d)) {
      continue;  // gcd(e, phi) != 1; re-draw primes
    }
    RsaKeyPair pair;
    pair.pub.n = std::move(n);
    pair.pub.e = e;
    pair.d = std::move(d);
    return pair;
  }
}

Bytes RsaSignDigest(const RsaKeyPair& key, ByteSpan digest) {
  size_t modulus_bytes = key.pub.n.ToBytes().size();
  Bytes padded = PadDigest(digest, modulus_bytes);
  BigNum m = BigNum::FromBytes(padded);
  BigNum s = BigNum::ModExp(m, key.d, key.pub.n);
  return s.ToBytes(modulus_bytes);
}

bool RsaVerifyDigest(const RsaPublicKey& key, ByteSpan digest, ByteSpan signature) {
  size_t modulus_bytes = key.n.ToBytes().size();
  if (signature.size() != modulus_bytes || digest.size() + 11 > modulus_bytes) {
    return false;
  }
  BigNum s = BigNum::FromBytes(signature);
  if (s >= key.n) {
    return false;
  }
  BigNum m = BigNum::ModExp(s, key.e, key.n);
  Bytes recovered = m.ToBytes(modulus_bytes);
  Bytes expected = PadDigest(digest, modulus_bytes);
  return ConstantTimeEqual(recovered, expected);
}

Bytes RsaSignMessage(const RsaKeyPair& key, ByteSpan message) {
  auto digest = Sha1::Hash(message);
  return RsaSignDigest(key, ByteSpan(digest.data(), digest.size()));
}

bool RsaVerifyMessage(const RsaPublicKey& key, ByteSpan message, ByteSpan signature) {
  auto digest = Sha1::Hash(message);
  return RsaVerifyDigest(key, ByteSpan(digest.data(), digest.size()), signature);
}

}  // namespace past
