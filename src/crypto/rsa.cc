#include "src/crypto/rsa.h"

#include "src/common/check.h"
#include "src/common/serializer.h"
#include "src/crypto/sha1.h"

namespace past {
namespace {

// PKCS#1 v1.5-style padding: 0x00 0x01 0xFF... 0x00 digest, sized to the
// modulus width. Guarantees the padded value is < n (leading zero byte).
Bytes PadDigest(ByteSpan digest, size_t modulus_bytes) {
  PAST_CHECK_MSG(digest.size() + 11 <= modulus_bytes, "digest too long for modulus");
  Bytes padded(modulus_bytes, 0xFF);
  padded[0] = 0x00;
  padded[1] = 0x01;
  padded[modulus_bytes - digest.size() - 1] = 0x00;
  std::copy(digest.begin(), digest.end(), padded.end() - digest.size());
  return padded;
}

}  // namespace

const MontgomeryContext& RsaPublicKey::MontContext() const {
  if (!mont_ || !(mont_->modulus() == n)) {
    mont_ = std::make_shared<const MontgomeryContext>(n);
  }
  return *mont_;
}

Bytes RsaPublicKey::Encode() const {
  Writer w;
  w.Blob(n.ToBytes());
  w.Blob(e.ToBytes());
  return w.Take();
}

bool RsaPublicKey::Decode(ByteSpan data, RsaPublicKey* out) {
  Reader r(data);
  Bytes n_bytes, e_bytes;
  if (!r.Blob(&n_bytes) || !r.Blob(&e_bytes) || !r.AtEnd()) {
    return false;
  }
  out->n = BigNum::FromBytes(n_bytes);
  out->e = BigNum::FromBytes(e_bytes);
  // A zero modulus or exponent can never verify anything and would trip
  // PAST_CHECK(!modulus.IsZero()) inside ModExp; reject it here so malformed
  // wire input fails cleanly.
  return !out->n.IsZero() && !out->e.IsZero();
}

void RsaKeyPair::PopulateCrt(BigNum prime_p, BigNum prime_q) {
  PAST_CHECK(prime_p.Mul(prime_q) == pub.n);
  const BigNum one = BigNum::FromU64(1);
  dp = d.Mod(prime_p.Sub(one));
  dq = d.Mod(prime_q.Sub(one));
  PAST_CHECK(BigNum::ModInverse(prime_q, prime_p, &qinv));
  p = std::move(prime_p);
  q = std::move(prime_q);
}

RsaKeyPair RsaKeyPair::Generate(int modulus_bits, Rng* rng) {
  PAST_CHECK(modulus_bits >= 128);
  const BigNum e = BigNum::FromU64(65537);
  while (true) {
    BigNum p = BigNum::GeneratePrime(modulus_bits / 2, rng);
    BigNum q = BigNum::GeneratePrime(modulus_bits - modulus_bits / 2, rng);
    if (p == q) {
      continue;
    }
    BigNum n = p.Mul(q);
    BigNum phi = p.Sub(BigNum::FromU64(1)).Mul(q.Sub(BigNum::FromU64(1)));
    BigNum d;
    if (!BigNum::ModInverse(e, phi, &d)) {
      continue;  // gcd(e, phi) != 1; re-draw primes
    }
    RsaKeyPair pair;
    pair.pub.n = std::move(n);
    pair.pub.e = e;
    pair.d = std::move(d);
    pair.PopulateCrt(std::move(p), std::move(q));
    return pair;
  }
}

Bytes RsaSignDigest(const RsaKeyPair& key, ByteSpan digest) {
  size_t modulus_bytes = (static_cast<size_t>(key.pub.n.BitLength()) + 7) / 8;
  Bytes padded = PadDigest(digest, modulus_bytes);
  BigNum m = BigNum::FromBytes(padded);
  BigNum s;
  if (key.HasCrt()) {
    // Garner recombination: s = m2 + q * (qinv * (m1 - m2) mod p). Exactly
    // equal to m^d mod n, so signatures are byte-identical to the plain path.
    BigNum m1 = BigNum::ModExp(m, key.dp, key.p);
    BigNum m2 = BigNum::ModExp(m, key.dq, key.q);
    BigNum m2p = m2.Mod(key.p);
    BigNum diff = m1 >= m2p ? m1.Sub(m2p) : m1.Add(key.p).Sub(m2p);
    BigNum h = key.qinv.Mul(diff).Mod(key.p);
    s = m2.Add(h.Mul(key.q));
  } else {
    s = BigNum::ModExp(m, key.d, key.pub.n);
  }
  return s.ToBytes(modulus_bytes);
}

bool RsaVerifyDigest(const RsaPublicKey& key, ByteSpan digest, ByteSpan signature) {
  // Guard hand-built keys too, not just decoded ones: a zero modulus or
  // exponent must fail verification, not abort inside ModExp.
  if (key.n.IsZero() || key.e.IsZero()) {
    return false;
  }
  size_t modulus_bytes = (static_cast<size_t>(key.n.BitLength()) + 7) / 8;
  if (signature.size() != modulus_bytes || digest.size() + 11 > modulus_bytes) {
    return false;
  }
  BigNum s = BigNum::FromBytes(signature);
  if (s >= key.n) {
    return false;
  }
  BigNum m = key.n.IsOdd() ? key.MontContext().ModExp(s, key.e)
                           : BigNum::ModExp(s, key.e, key.n);
  Bytes recovered = m.ToBytes(modulus_bytes);
  Bytes expected = PadDigest(digest, modulus_bytes);
  return ConstantTimeEqual(recovered, expected);
}

Bytes RsaSignMessage(const RsaKeyPair& key, ByteSpan message) {
  auto digest = Sha1::Hash(message);
  return RsaSignDigest(key, ByteSpan(digest.data(), digest.size()));
}

bool RsaVerifyMessage(const RsaPublicKey& key, ByteSpan message, ByteSpan signature) {
  auto digest = Sha1::Hash(message);
  return RsaVerifyDigest(key, ByteSpan(digest.data(), digest.size()), signature);
}

}  // namespace past
