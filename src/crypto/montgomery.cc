#include "src/crypto/montgomery.h"

#include <algorithm>

#include "src/common/check.h"

namespace past {
namespace {

using U128Word = unsigned __int128;

// Plain square-and-multiply beats a window table for exponents this short
// (the table costs 14 multiplies up front; 65537 needs only 17 squarings and
// one multiply without it).
constexpr int kSmallExponentBits = 24;

constexpr int kWindowBits = 4;
constexpr size_t kTableSize = size_t{1} << kWindowBits;

// Inverse of an odd word modulo 2^64 by Newton iteration: each step doubles
// the number of correct low bits, so five steps from a 5-bit-correct start
// cover all 64.
uint64_t InverseMod2Pow64(uint64_t odd) {
  uint64_t x = odd;  // correct to 5 bits for odd inputs
  for (int i = 0; i < 5; ++i) {
    x *= 2 - odd * x;
  }
  return x;
}

// Fused CIOS multiply/reduce. kFixed > 0 compiles a fully-unrolled kernel
// with the temporary row held in a stack array the compiler can promote to
// registers (about 1.7x faster than the generic loop for 512-bit moduli);
// kFixed == 0 is the any-width fallback driven by runtime_k and scratch.
template <size_t kFixed>
void MontMulKernel(const uint64_t* a, const uint64_t* b, const uint64_t* n,
                   uint64_t n0inv, uint64_t* out, uint64_t* scratch,
                   size_t runtime_k) {
  const size_t k = kFixed != 0 ? kFixed : runtime_k;
  uint64_t local_t[kFixed != 0 ? kFixed + 1 : 1];
  uint64_t* t = kFixed != 0 ? local_t : scratch;
  std::fill(t, t + k + 1, 0);
  // Invariant: t < 2n before and after every outer iteration, so t fits in
  // k + 1 words with t[k] <= 1.
  for (size_t i = 0; i < k; ++i) {
    // One pass computes t = (t + a * b[i] + m * n) >> 64 with two carry
    // chains (ca for the a*b[i] products, cm for the m*n products); m is
    // chosen so the shifted-out low word is exactly zero.
    const uint64_t bi = b[i];
    U128Word za = static_cast<U128Word>(a[0]) * bi + t[0];
    uint64_t ca = static_cast<uint64_t>(za >> 64);
    const uint64_t m = static_cast<uint64_t>(za) * n0inv;
    U128Word zm = static_cast<U128Word>(m) * n[0] + static_cast<uint64_t>(za);
    uint64_t cm = static_cast<uint64_t>(zm >> 64);
#pragma GCC unroll 16
    for (size_t j = 1; j < k; ++j) {
      za = static_cast<U128Word>(a[j]) * bi + t[j] + ca;
      ca = static_cast<uint64_t>(za >> 64);
      zm = static_cast<U128Word>(m) * n[j] + static_cast<uint64_t>(za) + cm;
      cm = static_cast<uint64_t>(zm >> 64);
      t[j - 1] = static_cast<uint64_t>(zm);
    }
    const U128Word zt = static_cast<U128Word>(t[k]) + ca + cm;
    t[k - 1] = static_cast<uint64_t>(zt);
    t[k] = static_cast<uint64_t>(zt >> 64);
  }
  // t < 2n: one conditional subtraction brings it below n.
  bool ge = t[k] != 0;
  if (!ge) {
    ge = true;
    for (size_t i = k; i-- > 0;) {
      if (t[i] != n[i]) {
        ge = t[i] > n[i];
        break;
      }
    }
  }
  if (ge) {
    uint64_t borrow = 0;
#pragma GCC unroll 16
    for (size_t i = 0; i < k; ++i) {
      U128Word diff = static_cast<U128Word>(t[i]) - n[i] - borrow;
      out[i] = static_cast<uint64_t>(diff);
      borrow = static_cast<uint64_t>((diff >> 64) != 0 ? 1 : 0);
    }
  } else {
    std::copy(t, t + k, out);
  }
}

}  // namespace

MontgomeryContext::MontgomeryContext(const BigNum& modulus) : modulus_(modulus) {
  PAST_CHECK_MSG(modulus.IsOdd(), "Montgomery modulus must be odd");
  PAST_CHECK_MSG(modulus.BitLength() > 1, "Montgomery modulus must be > 1");
  const std::vector<uint32_t> limbs = modulus.ToLimbs(0);
  k_ = (limbs.size() + 1) / 2;
  n_.assign(k_, 0);
  for (size_t i = 0; i < limbs.size(); ++i) {
    n_[i / 2] |= static_cast<Word>(limbs[i]) << (32 * (i % 2));
  }
  n0inv_ = ~InverseMod2Pow64(n_[0]) + 1;  // -n^-1 mod 2^64
  // R^2 mod n via one division; everything after runs division-free.
  BigNum r2 = BigNum::FromU64(1).ShiftLeft(static_cast<int>(128 * k_)).Mod(modulus_);
  rr_ = ToWords(r2);
  Words plain_one(k_, 0);
  plain_one[0] = 1;
  one_.assign(k_, 0);
  Words scratch(k_ + 1);
  MontMul(plain_one.data(), rr_.data(), one_.data(), scratch.data());
}

MontgomeryContext::Words MontgomeryContext::ToWords(const BigNum& value) const {
  const std::vector<uint32_t> limbs = value.ToLimbs(2 * k_);
  Words out(k_, 0);
  for (size_t i = 0; i < limbs.size(); ++i) {
    out[i / 2] |= static_cast<Word>(limbs[i]) << (32 * (i % 2));
  }
  return out;
}

BigNum MontgomeryContext::FromWords(const Word* words) const {
  std::vector<uint32_t> limbs(2 * k_);
  for (size_t i = 0; i < limbs.size(); ++i) {
    limbs[i] = static_cast<uint32_t>(words[i / 2] >> (32 * (i % 2)));
  }
  return BigNum::FromLimbs(limbs);
}

void MontgomeryContext::MontMul(const Word* a, const Word* b, Word* out,
                                Word* scratch) const {
  // Dispatch to fully-unrolled kernels for the widths RSA actually uses
  // (k = 2/4/8 covers 128..512-bit moduli: verification moduli and the
  // half-width CRT primes).
  const Word* n = n_.data();
  switch (k_) {
    case 2:
      MontMulKernel<2>(a, b, n, n0inv_, out, scratch, k_);
      break;
    case 4:
      MontMulKernel<4>(a, b, n, n0inv_, out, scratch, k_);
      break;
    case 8:
      MontMulKernel<8>(a, b, n, n0inv_, out, scratch, k_);
      break;
    default:
      MontMulKernel<0>(a, b, n, n0inv_, out, scratch, k_);
      break;
  }
}

BigNum MontgomeryContext::ModExp(const BigNum& base, const BigNum& exponent) const {
  // One allocation for all temporaries: [xm | result | plain_one | scratch].
  Words arena(4 * k_ + 1, 0);
  Word* xm = arena.data();
  Word* result = xm + k_;
  Word* plain_one = result + k_;
  Word* scratch = plain_one + k_;
  plain_one[0] = 1;

  const int bits = exponent.BitLength();
  if (bits == 0) {
    std::copy(one_.begin(), one_.end(), result);
  } else {
    const Words x = ToWords(base < modulus_ ? base : base.Mod(modulus_));
    MontMul(x.data(), rr_.data(), xm, scratch);
    if (bits <= kSmallExponentBits) {
      std::copy(xm, xm + k_, result);
      for (int i = bits - 2; i >= 0; --i) {
        MontMul(result, result, result, scratch);
        if (exponent.Bit(i)) {
          MontMul(result, xm, result, scratch);
        }
      }
    } else {
      // Fixed 4-bit window: table[w] = x^w in Montgomery form, then per
      // window four squarings and one table multiply (no data-dependent
      // skips).
      std::vector<Words> table(kTableSize, Words(k_));
      table[0] = one_;
      table[1].assign(xm, xm + k_);
      for (size_t w = 2; w < kTableSize; ++w) {
        MontMul(table[w - 1].data(), xm, table[w].data(), scratch);
      }
      const int windows = (bits + kWindowBits - 1) / kWindowBits;
      auto window_value = [&exponent](int w) {
        size_t v = 0;
        for (int b = kWindowBits - 1; b >= 0; --b) {
          v = (v << 1) | static_cast<size_t>(exponent.Bit(w * kWindowBits + b));
        }
        return v;
      };
      const Words& top = table[window_value(windows - 1)];
      std::copy(top.begin(), top.end(), result);
      for (int w = windows - 2; w >= 0; --w) {
        for (int s = 0; s < kWindowBits; ++s) {
          MontMul(result, result, result, scratch);
        }
        MontMul(result, table[window_value(w)].data(), result, scratch);
      }
    }
  }
  // Leave the Montgomery domain: multiply by plain 1, reusing xm as the
  // output slot.
  MontMul(result, plain_one, xm, scratch);
  return FromWords(xm);
}

}  // namespace past
