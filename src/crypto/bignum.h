// Arbitrary-precision unsigned integers, from scratch.
//
// Just enough number theory for the smartcard substrate: schoolbook
// arithmetic, binary long division, modular exponentiation (Montgomery CIOS
// fast path for odd moduli, square-and-multiply reference kept as the
// differential-test oracle), extended Euclid for modular inverses, and
// Miller-Rabin primality testing for RSA key generation. Little-endian
// 32-bit limbs.
#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/rng.h"

namespace past {

class BigNum {
 public:
  BigNum() = default;
  static BigNum FromU64(uint64_t v);
  // Big-endian byte import/export. ToBytes pads/truncates to `width` bytes if
  // width > 0 (the value must fit), else emits the minimal encoding.
  static BigNum FromBytes(ByteSpan bytes);
  Bytes ToBytes(size_t width = 0) const;

  // Raw little-endian 32-bit limb export/import, for the Montgomery kernel
  // (src/crypto/montgomery.h). ToLimbs pads with zero limbs to `width` limbs
  // if width > 0 (the value must fit), else emits exactly the significant
  // limbs. FromLimbs accepts leading zero limbs and trims them.
  std::vector<uint32_t> ToLimbs(size_t width) const;
  static BigNum FromLimbs(const std::vector<uint32_t>& limbs);

  bool IsZero() const { return limbs_.empty(); }
  bool IsOdd() const { return !limbs_.empty() && (limbs_[0] & 1); }
  // Number of significant bits (0 for zero).
  int BitLength() const;
  int Bit(int i) const;
  uint64_t ToU64() const;  // value must fit in 64 bits

  friend bool operator==(const BigNum& a, const BigNum& b) = default;
  friend std::strong_ordering operator<=>(const BigNum& a, const BigNum& b);

  BigNum Add(const BigNum& other) const;
  // Requires *this >= other.
  BigNum Sub(const BigNum& other) const;
  BigNum Mul(const BigNum& other) const;
  // Quotient and remainder; divisor must be non-zero. Knuth Algorithm D.
  void DivMod(const BigNum& divisor, BigNum* quotient, BigNum* remainder) const;
  // Bit-at-a-time reference implementation, kept for property tests that
  // cross-check the fast path.
  void DivModBitwise(const BigNum& divisor, BigNum* quotient, BigNum* remainder) const;
  BigNum Mod(const BigNum& modulus) const;

  BigNum ShiftLeft(int bits) const;
  BigNum ShiftRight(int bits) const;

  // (base^exponent) mod modulus; modulus must be non-zero. Odd moduli > 1
  // take the Montgomery fast path (src/crypto/montgomery.h); everything else
  // falls back to the reference implementation. Both produce identical
  // results.
  static BigNum ModExp(const BigNum& base, const BigNum& exponent, const BigNum& modulus);
  // Square-and-multiply with a full division per step. Slow; kept as the
  // differential-test oracle for the Montgomery path.
  static BigNum ModExpReference(const BigNum& base, const BigNum& exponent,
                                const BigNum& modulus);
  // Multiplicative inverse of a modulo m, if gcd(a, m) == 1. Returns false
  // otherwise.
  static bool ModInverse(const BigNum& a, const BigNum& m, BigNum* inverse);
  static BigNum Gcd(BigNum a, BigNum b);

  // Uniform random value with exactly `bits` significant bits (top bit set).
  static BigNum RandomWithBits(int bits, Rng* rng);
  // Uniform in [0, bound).
  static BigNum RandomBelow(const BigNum& bound, Rng* rng);

  // Miller-Rabin with `rounds` random bases.
  static bool IsProbablePrime(const BigNum& n, int rounds, Rng* rng);
  // Random prime with exactly `bits` bits.
  static BigNum GeneratePrime(int bits, Rng* rng);

  std::string ToHex() const;

 private:
  void Trim();

  // Little-endian limbs; empty means zero. Invariant: no leading zero limb.
  std::vector<uint32_t> limbs_;
};

}  // namespace past

