// RSA signatures over SHA-1 digests, built on the from-scratch BigNum.
//
// This is the signature scheme held inside each PAST smartcard. Key sizes are
// configurable; simulations default to 512-bit moduli so that thousands of
// smartcards can be generated quickly, while the algorithmic path (keygen,
// PKCS#1-style padding, sign, verify) is the real one.
#pragma once

#include <memory>
#include <string>

#include "src/common/bytes.h"
#include "src/common/rng.h"
#include "src/crypto/bignum.h"
#include "src/crypto/montgomery.h"

namespace past {

struct RsaPublicKey {
  BigNum n;  // modulus
  BigNum e;  // public exponent

  // Montgomery context for n, built on first use and shared by copies of
  // this key. Revalidated against the current modulus on every call, so
  // assigning a new n never serves a stale context. Not safe for concurrent
  // first use of one key object from multiple threads (the simulator
  // verifies on a single thread per trial).
  const MontgomeryContext& MontContext() const;

  // Deterministic byte encoding (length-prefixed n, e). NodeIds and
  // pseudonyms are hashes of this encoding. Decode rejects malformed wire
  // input (truncated blobs, trailing bytes, n = 0, e = 0) rather than
  // letting a zero modulus reach ModExp.
  Bytes Encode() const;
  [[nodiscard]] static bool Decode(ByteSpan data, RsaPublicKey* out);

  // Equality is over the key material only; the cached context is derived
  // state.
  bool operator==(const RsaPublicKey& other) const {
    return n == other.n && e == other.e;
  }

 private:
  mutable std::shared_ptr<const MontgomeryContext> mont_;
};

struct RsaKeyPair {
  RsaPublicKey pub;
  BigNum d;  // private exponent

  // CRT components for fast signing: two half-width exponentiations plus
  // Garner recombination instead of one full-width exponentiation. Empty on
  // externally-built pairs; RsaSignDigest falls back to the plain d path
  // then (same signature bytes either way).
  BigNum p;     // first prime factor of n
  BigNum q;     // second prime factor of n
  BigNum dp;    // d mod (p - 1)
  BigNum dq;    // d mod (q - 1)
  BigNum qinv;  // q^-1 mod p

  bool HasCrt() const { return !p.IsZero(); }
  // Derives dp/dq/qinv from the prime factors (prime_p * prime_q must equal
  // pub.n and d must already be set).
  void PopulateCrt(BigNum prime_p, BigNum prime_q);

  // Generates a fresh key pair with a modulus of `modulus_bits`, CRT
  // components included.
  static RsaKeyPair Generate(int modulus_bits, Rng* rng);
};

// Signs a message digest (any length < modulus size - 16 bytes). Returns a
// signature of exactly the modulus width.
Bytes RsaSignDigest(const RsaKeyPair& key, ByteSpan digest);

// Verifies a signature produced by RsaSignDigest.
[[nodiscard]] bool RsaVerifyDigest(const RsaPublicKey& key, ByteSpan digest, ByteSpan signature);

// Convenience: SHA-1 the message (20-byte digest fits a 256-bit modulus,
// the smallest size simulations use), then sign/verify the digest.
Bytes RsaSignMessage(const RsaKeyPair& key, ByteSpan message);
[[nodiscard]] bool RsaVerifyMessage(const RsaPublicKey& key, ByteSpan message, ByteSpan signature);

}  // namespace past

