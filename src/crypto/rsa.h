// RSA signatures over SHA-1 digests, built on the from-scratch BigNum.
//
// This is the signature scheme held inside each PAST smartcard. Key sizes are
// configurable; simulations default to 512-bit moduli so that thousands of
// smartcards can be generated quickly, while the algorithmic path (keygen,
// PKCS#1-style padding, sign, verify) is the real one.
#pragma once

#include <string>

#include "src/common/bytes.h"
#include "src/common/rng.h"
#include "src/crypto/bignum.h"

namespace past {

struct RsaPublicKey {
  BigNum n;  // modulus
  BigNum e;  // public exponent

  // Deterministic byte encoding (length-prefixed n, e). NodeIds and
  // pseudonyms are hashes of this encoding.
  Bytes Encode() const;
  [[nodiscard]] static bool Decode(ByteSpan data, RsaPublicKey* out);

  bool operator==(const RsaPublicKey& other) const = default;
};

struct RsaKeyPair {
  RsaPublicKey pub;
  BigNum d;  // private exponent

  // Generates a fresh key pair with a modulus of `modulus_bits`.
  static RsaKeyPair Generate(int modulus_bits, Rng* rng);
};

// Signs a message digest (any length < modulus size - 16 bytes). Returns a
// signature of exactly the modulus width.
Bytes RsaSignDigest(const RsaKeyPair& key, ByteSpan digest);

// Verifies a signature produced by RsaSignDigest.
[[nodiscard]] bool RsaVerifyDigest(const RsaPublicKey& key, ByteSpan digest, ByteSpan signature);

// Convenience: SHA-1 the message (20-byte digest fits a 256-bit modulus,
// the smallest size simulations use), then sign/verify the digest.
Bytes RsaSignMessage(const RsaKeyPair& key, ByteSpan message);
[[nodiscard]] bool RsaVerifyMessage(const RsaPublicKey& key, ByteSpan message, ByteSpan signature);

}  // namespace past

