// SHA-256 (FIPS 180-4), implemented from scratch.
//
// Used for HMAC keying, content hashes in file certificates, and anywhere a
// 256-bit digest is preferable to SHA-1 (the paper only mandates SHA-1 for
// fileIds).
#pragma once

#include <array>
#include <cstdint>

#include "src/common/bytes.h"

namespace past {

class Sha256 {
 public:
  static constexpr size_t kDigestBytes = 32;

  Sha256();

  void Update(ByteSpan data);
  std::array<uint8_t, kDigestBytes> Finish();

  static std::array<uint8_t, kDigestBytes> Hash(ByteSpan data);

 private:
  void ProcessBlock(const uint8_t* block);

  uint32_t h_[8];
  uint64_t total_bytes_;
  uint8_t buffer_[64];
  size_t buffered_;
};

// HMAC-SHA256 (RFC 2104).
std::array<uint8_t, Sha256::kDigestBytes> HmacSha256(ByteSpan key, ByteSpan message);

}  // namespace past

