// SHA-1 (FIPS 180-1), implemented from scratch.
//
// PAST derives 160-bit fileIds from SHA-1 of (file name, owner public key,
// salt) and 128-bit nodeIds from a hash of the node's public key. SHA-1's
// collision weaknesses do not matter here: the system needs uniform,
// hard-to-target ids, and the reproduction keeps the paper's exact choice.
#pragma once

#include <array>
#include <cstdint>

#include "src/common/bytes.h"
#include "src/common/u160.h"

namespace past {

class Sha1 {
 public:
  static constexpr size_t kDigestBytes = 20;

  Sha1();

  void Update(ByteSpan data);
  std::array<uint8_t, kDigestBytes> Finish();

  // One-shot helpers.
  static std::array<uint8_t, kDigestBytes> Hash(ByteSpan data);
  static U160 HashToU160(ByteSpan data);

 private:
  void ProcessBlock(const uint8_t* block);

  uint32_t h_[5];
  uint64_t total_bytes_;
  uint8_t buffer_[64];
  size_t buffered_;
};

}  // namespace past

