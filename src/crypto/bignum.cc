#include "src/crypto/bignum.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/crypto/montgomery.h"

namespace past {

void BigNum::Trim() {
  while (!limbs_.empty() && limbs_.back() == 0) {
    limbs_.pop_back();
  }
}

BigNum BigNum::FromU64(uint64_t v) {
  BigNum out;
  if (v != 0) {
    out.limbs_.push_back(static_cast<uint32_t>(v));
    if (v >> 32) {
      out.limbs_.push_back(static_cast<uint32_t>(v >> 32));
    }
  }
  return out;
}

BigNum BigNum::FromBytes(ByteSpan bytes) {
  BigNum out;
  out.limbs_.assign((bytes.size() + 3) / 4, 0);
  for (size_t i = 0; i < bytes.size(); ++i) {
    // bytes[0] is most significant.
    size_t bit_index = (bytes.size() - 1 - i);
    out.limbs_[bit_index / 4] |= static_cast<uint32_t>(bytes[i]) << (8 * (bit_index % 4));
  }
  out.Trim();
  return out;
}

Bytes BigNum::ToBytes(size_t width) const {
  size_t min_bytes = (static_cast<size_t>(BitLength()) + 7) / 8;
  size_t n = width == 0 ? std::max<size_t>(min_bytes, 1) : width;
  PAST_CHECK_MSG(min_bytes <= n, "value does not fit in requested width");
  Bytes out(n, 0);
  for (size_t i = 0; i < min_bytes; ++i) {
    uint32_t limb = limbs_[i / 4];
    out[n - 1 - i] = static_cast<uint8_t>(limb >> (8 * (i % 4)));
  }
  return out;
}

std::vector<uint32_t> BigNum::ToLimbs(size_t width) const {
  if (width == 0) {
    return limbs_;
  }
  PAST_CHECK_MSG(limbs_.size() <= width, "value does not fit in requested width");
  std::vector<uint32_t> out = limbs_;
  out.resize(width, 0);
  return out;
}

BigNum BigNum::FromLimbs(const std::vector<uint32_t>& limbs) {
  BigNum out;
  out.limbs_ = limbs;
  out.Trim();
  return out;
}

int BigNum::BitLength() const {
  if (limbs_.empty()) {
    return 0;
  }
  uint32_t top = limbs_.back();
  int bits = 32 * static_cast<int>(limbs_.size() - 1);
  while (top) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

int BigNum::Bit(int i) const {
  PAST_CHECK(i >= 0);
  size_t limb = static_cast<size_t>(i) / 32;
  if (limb >= limbs_.size()) {
    return 0;
  }
  return (limbs_[limb] >> (i % 32)) & 1;
}

uint64_t BigNum::ToU64() const {
  PAST_CHECK_MSG(BitLength() <= 64, "value exceeds 64 bits");
  uint64_t v = 0;
  if (limbs_.size() > 1) {
    v = static_cast<uint64_t>(limbs_[1]) << 32;
  }
  if (!limbs_.empty()) {
    v |= limbs_[0];
  }
  return v;
}

std::strong_ordering operator<=>(const BigNum& a, const BigNum& b) {
  if (a.limbs_.size() != b.limbs_.size()) {
    return a.limbs_.size() <=> b.limbs_.size();
  }
  for (size_t i = a.limbs_.size(); i-- > 0;) {
    if (a.limbs_[i] != b.limbs_[i]) {
      return a.limbs_[i] <=> b.limbs_[i];
    }
  }
  return std::strong_ordering::equal;
}

BigNum BigNum::Add(const BigNum& other) const {
  BigNum out;
  size_t n = std::max(limbs_.size(), other.limbs_.size());
  out.limbs_.resize(n, 0);
  uint64_t carry = 0;
  for (size_t i = 0; i < n; ++i) {
    uint64_t sum = carry;
    if (i < limbs_.size()) {
      sum += limbs_[i];
    }
    if (i < other.limbs_.size()) {
      sum += other.limbs_[i];
    }
    out.limbs_[i] = static_cast<uint32_t>(sum);
    carry = sum >> 32;
  }
  if (carry) {
    out.limbs_.push_back(static_cast<uint32_t>(carry));
  }
  return out;
}

BigNum BigNum::Sub(const BigNum& other) const {
  PAST_CHECK_MSG(*this >= other, "BigNum::Sub underflow");
  BigNum out;
  out.limbs_.resize(limbs_.size(), 0);
  int64_t borrow = 0;
  for (size_t i = 0; i < limbs_.size(); ++i) {
    int64_t diff = static_cast<int64_t>(limbs_[i]) - borrow -
                   (i < other.limbs_.size() ? static_cast<int64_t>(other.limbs_[i]) : 0);
    if (diff < 0) {
      diff += (1LL << 32);
      borrow = 1;
    } else {
      borrow = 0;
    }
    out.limbs_[i] = static_cast<uint32_t>(diff);
  }
  out.Trim();
  return out;
}

BigNum BigNum::Mul(const BigNum& other) const {
  if (IsZero() || other.IsZero()) {
    return BigNum();
  }
  BigNum out;
  out.limbs_.assign(limbs_.size() + other.limbs_.size(), 0);
  for (size_t i = 0; i < limbs_.size(); ++i) {
    uint64_t carry = 0;
    for (size_t j = 0; j < other.limbs_.size(); ++j) {
      uint64_t cur = static_cast<uint64_t>(limbs_[i]) * other.limbs_[j] +
                     out.limbs_[i + j] + carry;
      out.limbs_[i + j] = static_cast<uint32_t>(cur);
      carry = cur >> 32;
    }
    size_t k = i + other.limbs_.size();
    while (carry) {
      uint64_t cur = out.limbs_[k] + carry;
      out.limbs_[k] = static_cast<uint32_t>(cur);
      carry = cur >> 32;
      ++k;
    }
  }
  out.Trim();
  return out;
}

void BigNum::DivMod(const BigNum& divisor, BigNum* quotient, BigNum* remainder) const {
  PAST_CHECK_MSG(!divisor.IsZero(), "division by zero");
  if (*this < divisor) {
    if (quotient != nullptr) {
      *quotient = BigNum();
    }
    if (remainder != nullptr) {
      *remainder = *this;
    }
    return;
  }
  const size_t n = divisor.limbs_.size();
  if (n == 1) {
    // Single-limb fast path.
    const uint64_t d = divisor.limbs_[0];
    BigNum q;
    q.limbs_.assign(limbs_.size(), 0);
    uint64_t rem = 0;
    for (size_t i = limbs_.size(); i-- > 0;) {
      uint64_t cur = (rem << 32) | limbs_[i];
      q.limbs_[i] = static_cast<uint32_t>(cur / d);
      rem = cur % d;
    }
    q.Trim();
    if (quotient != nullptr) {
      *quotient = std::move(q);
    }
    if (remainder != nullptr) {
      *remainder = FromU64(rem);
    }
    return;
  }

  // Knuth TAOCP vol. 2, Algorithm D, base 2^32.
  const size_t m = limbs_.size() - n;
  int shift = 0;
  {
    uint32_t top = divisor.limbs_.back();
    while ((top & 0x80000000u) == 0) {
      top <<= 1;
      ++shift;
    }
  }
  // Normalized copies: u has an extra high limb.
  std::vector<uint32_t> u(limbs_.size() + 1, 0);
  std::vector<uint32_t> v(n, 0);
  for (size_t i = 0; i < limbs_.size(); ++i) {
    u[i] = limbs_[i] << shift;
    if (shift > 0 && i > 0) {
      u[i] |= static_cast<uint32_t>(static_cast<uint64_t>(limbs_[i - 1]) >> (32 - shift));
    }
  }
  if (shift > 0) {
    u[limbs_.size()] =
        static_cast<uint32_t>(static_cast<uint64_t>(limbs_.back()) >> (32 - shift));
  }
  for (size_t i = 0; i < n; ++i) {
    v[i] = divisor.limbs_[i] << shift;
    if (shift > 0 && i > 0) {
      v[i] |= static_cast<uint32_t>(static_cast<uint64_t>(divisor.limbs_[i - 1]) >>
                                    (32 - shift));
    }
  }

  BigNum q;
  q.limbs_.assign(m + 1, 0);
  const uint64_t base = 1ULL << 32;
  for (size_t j = m + 1; j-- > 0;) {
    uint64_t numerator = (static_cast<uint64_t>(u[j + n]) << 32) | u[j + n - 1];
    uint64_t qhat = numerator / v[n - 1];
    uint64_t rhat = numerator % v[n - 1];
    while (qhat >= base ||
           qhat * v[n - 2] > ((rhat << 32) | u[j + n - 2])) {
      --qhat;
      rhat += v[n - 1];
      if (rhat >= base) {
        break;
      }
    }
    // Multiply and subtract: u[j..j+n] -= qhat * v.
    int64_t borrow = 0;
    uint64_t carry = 0;
    for (size_t i = 0; i < n; ++i) {
      uint64_t product = qhat * v[i] + carry;
      carry = product >> 32;
      int64_t diff = static_cast<int64_t>(u[i + j]) -
                     static_cast<int64_t>(product & 0xffffffffULL) + borrow;
      u[i + j] = static_cast<uint32_t>(diff);
      borrow = diff >> 32;  // arithmetic shift: 0 or -1
    }
    int64_t diff = static_cast<int64_t>(u[j + n]) - static_cast<int64_t>(carry) + borrow;
    u[j + n] = static_cast<uint32_t>(diff);
    if (diff < 0) {
      // qhat was one too large: add v back.
      --qhat;
      uint64_t carry2 = 0;
      for (size_t i = 0; i < n; ++i) {
        uint64_t sum = static_cast<uint64_t>(u[i + j]) + v[i] + carry2;
        u[i + j] = static_cast<uint32_t>(sum);
        carry2 = sum >> 32;
      }
      u[j + n] += static_cast<uint32_t>(carry2);
    }
    q.limbs_[j] = static_cast<uint32_t>(qhat);
  }
  q.Trim();

  BigNum r;
  r.limbs_.assign(n, 0);
  for (size_t i = 0; i < n; ++i) {
    r.limbs_[i] = u[i] >> shift;
    if (shift > 0 && i + 1 < u.size()) {
      r.limbs_[i] |= static_cast<uint32_t>(static_cast<uint64_t>(u[i + 1])
                                           << (32 - shift));
    }
  }
  r.Trim();

  if (quotient != nullptr) {
    *quotient = std::move(q);
  }
  if (remainder != nullptr) {
    *remainder = std::move(r);
  }
}

void BigNum::DivModBitwise(const BigNum& divisor, BigNum* quotient,
                           BigNum* remainder) const {
  PAST_CHECK_MSG(!divisor.IsZero(), "division by zero");
  BigNum q, r;
  int bits = BitLength();
  q.limbs_.assign(limbs_.size(), 0);
  for (int i = bits - 1; i >= 0; --i) {
    // r = (r << 1) | bit(i)
    r = r.ShiftLeft(1);
    if (Bit(i)) {
      if (r.limbs_.empty()) {
        r.limbs_.push_back(1);
      } else {
        r.limbs_[0] |= 1;
      }
    }
    if (r >= divisor) {
      r = r.Sub(divisor);
      q.limbs_[static_cast<size_t>(i) / 32] |= (1u << (i % 32));
    }
  }
  q.Trim();
  r.Trim();
  if (quotient != nullptr) {
    *quotient = std::move(q);
  }
  if (remainder != nullptr) {
    *remainder = std::move(r);
  }
}

BigNum BigNum::Mod(const BigNum& modulus) const {
  if (*this < modulus) {
    return *this;
  }
  BigNum r;
  DivMod(modulus, nullptr, &r);
  return r;
}

BigNum BigNum::ShiftLeft(int bits) const {
  if (IsZero() || bits == 0) {
    return *this;
  }
  PAST_CHECK(bits > 0);
  int limb_shift = bits / 32;
  int bit_shift = bits % 32;
  BigNum out;
  out.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
  for (size_t i = 0; i < limbs_.size(); ++i) {
    uint64_t v = static_cast<uint64_t>(limbs_[i]) << bit_shift;
    out.limbs_[i + limb_shift] |= static_cast<uint32_t>(v);
    out.limbs_[i + limb_shift + 1] |= static_cast<uint32_t>(v >> 32);
  }
  out.Trim();
  return out;
}

BigNum BigNum::ShiftRight(int bits) const {
  if (IsZero() || bits == 0) {
    return *this;
  }
  PAST_CHECK(bits > 0);
  int limb_shift = bits / 32;
  int bit_shift = bits % 32;
  if (static_cast<size_t>(limb_shift) >= limbs_.size()) {
    return BigNum();
  }
  BigNum out;
  out.limbs_.assign(limbs_.size() - limb_shift, 0);
  for (size_t i = 0; i < out.limbs_.size(); ++i) {
    uint64_t v = limbs_[i + limb_shift] >> bit_shift;
    if (bit_shift > 0 && i + limb_shift + 1 < limbs_.size()) {
      v |= static_cast<uint64_t>(limbs_[i + limb_shift + 1]) << (32 - bit_shift);
    }
    out.limbs_[i] = static_cast<uint32_t>(v);
  }
  out.Trim();
  return out;
}

BigNum BigNum::ModExp(const BigNum& base, const BigNum& exponent, const BigNum& modulus) {
  PAST_CHECK(!modulus.IsZero());
  if (modulus.IsOdd() && modulus.BitLength() > 1) {
    return MontgomeryContext(modulus).ModExp(base, exponent);
  }
  return ModExpReference(base, exponent, modulus);
}

BigNum BigNum::ModExpReference(const BigNum& base, const BigNum& exponent,
                               const BigNum& modulus) {
  PAST_CHECK(!modulus.IsZero());
  BigNum result = FromU64(1).Mod(modulus);
  BigNum b = base.Mod(modulus);
  int bits = exponent.BitLength();
  for (int i = bits - 1; i >= 0; --i) {
    result = result.Mul(result).Mod(modulus);
    if (exponent.Bit(i)) {
      result = result.Mul(b).Mod(modulus);
    }
  }
  return result;
}

BigNum BigNum::Gcd(BigNum a, BigNum b) {
  while (!b.IsZero()) {
    BigNum r = a.Mod(b);
    a = std::move(b);
    b = std::move(r);
  }
  return a;
}

bool BigNum::ModInverse(const BigNum& a, const BigNum& m, BigNum* inverse) {
  // Extended Euclid tracking only the coefficient of `a`, with sign handled
  // by keeping values reduced modulo m.
  PAST_CHECK(!m.IsZero());
  BigNum r0 = m, r1 = a.Mod(m);
  // t coefficients, with parallel sign flags (true = negative).
  BigNum t0 = BigNum(), t1 = FromU64(1);
  bool t0_neg = false, t1_neg = false;
  while (!r1.IsZero()) {
    BigNum q, r2;
    r0.DivMod(r1, &q, &r2);
    // t2 = t0 - q*t1 (signed arithmetic on magnitude+sign pairs).
    BigNum qt1 = q.Mul(t1);
    BigNum t2;
    bool t2_neg;
    if (t0_neg == t1_neg) {
      // t0 and q*t1 have the same sign: subtract magnitudes.
      if (t0 >= qt1) {
        t2 = t0.Sub(qt1);
        t2_neg = t0_neg;
      } else {
        t2 = qt1.Sub(t0);
        t2_neg = !t0_neg;
      }
    } else {
      t2 = t0.Add(qt1);
      t2_neg = t0_neg;
    }
    r0 = std::move(r1);
    r1 = std::move(r2);
    t0 = std::move(t1);
    t0_neg = t1_neg;
    t1 = std::move(t2);
    t1_neg = t2_neg;
  }
  if (!(r0 == FromU64(1))) {
    return false;
  }
  BigNum inv = t0.Mod(m);
  if (t0_neg && !inv.IsZero()) {
    inv = m.Sub(inv);
  }
  *inverse = inv;
  return true;
}

BigNum BigNum::RandomWithBits(int bits, Rng* rng) {
  PAST_CHECK(bits > 0);
  BigNum out;
  out.limbs_.assign((static_cast<size_t>(bits) + 31) / 32, 0);
  for (auto& limb : out.limbs_) {
    limb = rng->NextU32();
  }
  // Clear bits above `bits`, then force the top bit.
  int top_limb_bits = bits - 32 * (static_cast<int>(out.limbs_.size()) - 1);
  if (top_limb_bits < 32) {
    out.limbs_.back() &= (1u << top_limb_bits) - 1;
  }
  out.limbs_.back() |= 1u << (top_limb_bits - 1);
  out.Trim();
  return out;
}

BigNum BigNum::RandomBelow(const BigNum& bound, Rng* rng) {
  PAST_CHECK(!bound.IsZero());
  int bits = bound.BitLength();
  while (true) {
    BigNum candidate;
    candidate.limbs_.assign((static_cast<size_t>(bits) + 31) / 32, 0);
    for (auto& limb : candidate.limbs_) {
      limb = rng->NextU32();
    }
    int top_limb_bits = bits - 32 * (static_cast<int>(candidate.limbs_.size()) - 1);
    if (top_limb_bits < 32) {
      candidate.limbs_.back() &= (1u << top_limb_bits) - 1;
    }
    candidate.Trim();
    if (candidate < bound) {
      return candidate;
    }
  }
}

bool BigNum::IsProbablePrime(const BigNum& n, int rounds, Rng* rng) {
  if (n < FromU64(2)) {
    return false;
  }
  static const uint64_t kSmallPrimes[] = {2,  3,  5,  7,  11, 13, 17, 19,
                                          23, 29, 31, 37, 41, 43, 47};
  for (uint64_t p : kSmallPrimes) {
    BigNum bp = FromU64(p);
    if (n == bp) {
      return true;
    }
    if (n.Mod(bp).IsZero()) {
      return false;
    }
  }
  // n - 1 = d * 2^r with d odd.
  BigNum n_minus_1 = n.Sub(FromU64(1));
  BigNum d = n_minus_1;
  int r = 0;
  while (!d.IsOdd()) {
    d = d.ShiftRight(1);
    ++r;
  }
  BigNum two = FromU64(2);
  BigNum n_minus_3 = n.Sub(FromU64(3));
  for (int i = 0; i < rounds; ++i) {
    BigNum a = RandomBelow(n_minus_3, rng).Add(two);  // a in [2, n-2]
    BigNum x = ModExp(a, d, n);
    if (x == FromU64(1) || x == n_minus_1) {
      continue;
    }
    bool witness = true;
    for (int j = 0; j < r - 1; ++j) {
      x = x.Mul(x).Mod(n);
      if (x == n_minus_1) {
        witness = false;
        break;
      }
    }
    if (witness) {
      return false;
    }
  }
  return true;
}

BigNum BigNum::GeneratePrime(int bits, Rng* rng) {
  PAST_CHECK(bits >= 8);
  while (true) {
    BigNum candidate = RandomWithBits(bits, rng);
    if (!candidate.IsOdd()) {
      candidate = candidate.Add(FromU64(1));
    }
    if (IsProbablePrime(candidate, 20, rng)) {
      return candidate;
    }
  }
}

std::string BigNum::ToHex() const {
  if (IsZero()) {
    return "0";
  }
  Bytes bytes = ToBytes();
  std::string hex = HexEncode(bytes);
  size_t start = hex.find_first_not_of('0');
  return hex.substr(start == std::string::npos ? hex.size() - 1 : start);
}

}  // namespace past
