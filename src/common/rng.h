// Deterministic random number generation for simulations and workloads.
//
// All randomness in the library flows through Rng (xoshiro256** seeded via
// splitmix64), so that every experiment is reproducible from a single seed.
// ZipfDistribution implements the heavy-tailed popularity model used by the
// caching and storage-management experiments.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/u128.h"
#include "src/common/u160.h"

namespace past {

class Rng {
 public:
  explicit Rng(uint64_t seed);

  uint64_t NextU64();
  uint32_t NextU32() { return static_cast<uint32_t>(NextU64() >> 32); }

  // Uniform in [0, n). n must be > 0. Uses rejection to avoid modulo bias.
  uint64_t UniformU64(uint64_t n);
  // Uniform in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi);
  // Uniform in [0, 1).
  double UniformDouble();
  // True with probability p.
  bool Bernoulli(double p) { return UniformDouble() < p; }

  // Standard normal via Box-Muller.
  double Gaussian();
  // exp(mu + sigma * N(0,1)).
  double Lognormal(double mu, double sigma);
  // Pareto with scale xm > 0 and shape alpha > 0.
  double Pareto(double xm, double alpha);
  // Exponential with the given rate (> 0).
  double Exponential(double rate);

  U128 NextU128();
  U160 NextU160();
  Bytes RandomBytes(size_t n);

  // Derives an independent child generator (for per-node RNGs).
  Rng Fork();

  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = UniformU64(i);
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  // Picks a uniformly random element index; container must be non-empty.
  size_t PickIndex(size_t size) { return static_cast<size_t>(UniformU64(size)); }

 private:
  uint64_t state_[4];
  bool have_spare_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

// Zipf distribution over ranks {0, ..., n-1} with exponent s:
// P(rank = i) proportional to 1 / (i+1)^s. Sampling is O(log n) via binary
// search over the precomputed CDF.
class ZipfDistribution {
 public:
  ZipfDistribution(size_t n, double s);

  size_t Sample(Rng* rng) const;
  size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace past

