// Bounds-checked binary serialization.
//
// Every wire message in the Pastry/PAST protocols encodes to bytes through
// Writer and decodes through Reader. Reader never reads past the end of the
// buffer: each accessor returns false on truncation, and decoding code
// propagates that as StatusCode::kDecodeError. Integers are little-endian.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "src/common/bytes.h"
#include "src/common/u128.h"
#include "src/common/u160.h"

namespace past {

class Writer {
 public:
  Writer() = default;

  void U8(uint8_t v) { out_.push_back(v); }
  void U16(uint16_t v);
  void U32(uint32_t v);
  void U64(uint64_t v);
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  void F64(double v);
  void Bool(bool v) { U8(v ? 1 : 0); }
  void Id128(const U128& v);
  void Id160(const U160& v);
  // Length-prefixed (u32) byte string.
  void Blob(ByteSpan data);
  void Str(std::string_view s);

  const Bytes& bytes() const { return out_; }
  Bytes Take() { return std::move(out_); }

 private:
  Bytes out_;
};

class Reader {
 public:
  explicit Reader(ByteSpan data) : data_(data) {}

  [[nodiscard]] bool U8(uint8_t* v);
  [[nodiscard]] bool U16(uint16_t* v);
  [[nodiscard]] bool U32(uint32_t* v);
  [[nodiscard]] bool U64(uint64_t* v);
  [[nodiscard]] bool I64(int64_t* v);
  [[nodiscard]] bool F64(double* v);
  [[nodiscard]] bool Bool(bool* v);
  [[nodiscard]] bool Id128(U128* v);
  [[nodiscard]] bool Id160(U160* v);
  [[nodiscard]] bool Blob(Bytes* out);
  [[nodiscard]] bool Str(std::string* out);

  // True when the whole buffer has been consumed; decoders should require
  // this to reject trailing garbage.
  bool AtEnd() const { return pos_ == data_.size(); }
  size_t remaining() const { return data_.size() - pos_; }

 private:
  bool Take(size_t n, const uint8_t** p);

  ByteSpan data_;
  size_t pos_ = 0;
};

}  // namespace past

