#include "src/common/crc32c.h"

#include <array>
#include <cstring>

namespace past {
namespace {

// Reflected Castagnoli polynomial.
constexpr uint32_t kPoly = 0x82f63b78u;

struct Tables {
  // tables[0] is the classic byte-at-a-time table; tables[1..3] fold in the
  // remaining bytes of a 32-bit word so four bytes advance in one step.
  std::array<std::array<uint32_t, 256>, 4> t;

  constexpr Tables() : t{} {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int k = 0; k < 8; ++k) {
        crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      t[1][i] = (t[0][i] >> 8) ^ t[0][t[0][i] & 0xff];
      t[2][i] = (t[1][i] >> 8) ^ t[0][t[1][i] & 0xff];
      t[3][i] = (t[2][i] >> 8) ^ t[0][t[2][i] & 0xff];
    }
  }
};

constexpr Tables kTables;

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, ByteSpan data) {
  const auto& t = kTables.t;
  uint32_t c = ~crc;
  const uint8_t* p = data.data();
  size_t n = data.size();

  // Align to a 4-byte boundary so the word loads below are aligned.
  while (n > 0 && (reinterpret_cast<uintptr_t>(p) & 3) != 0) {
    c = t[0][(c ^ *p++) & 0xff] ^ (c >> 8);
    --n;
  }
  // Slice-by-4: one table lookup per input byte, but only one XOR chain and
  // one load per 32-bit word.
  while (n >= 4) {
    uint32_t word;
    std::memcpy(&word, p, 4);  // little-endian hosts only (as the serializer)
    c ^= word;
    c = t[3][c & 0xff] ^ t[2][(c >> 8) & 0xff] ^ t[1][(c >> 16) & 0xff] ^
        t[0][(c >> 24) & 0xff];
    p += 4;
    n -= 4;
  }
  while (n > 0) {
    c = t[0][(c ^ *p++) & 0xff] ^ (c >> 8);
    --n;
  }
  return ~c;
}

}  // namespace past
