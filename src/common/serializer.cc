#include "src/common/serializer.h"

#include <cstring>

namespace past {

void Writer::U16(uint16_t v) {
  U8(static_cast<uint8_t>(v));
  U8(static_cast<uint8_t>(v >> 8));
}

void Writer::U32(uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    U8(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void Writer::U64(uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    U8(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void Writer::F64(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  U64(bits);
}

void Writer::Id128(const U128& v) {
  auto bytes = v.ToBytes();
  out_.insert(out_.end(), bytes.begin(), bytes.end());
}

void Writer::Id160(const U160& v) {
  const auto& bytes = v.bytes();
  out_.insert(out_.end(), bytes.begin(), bytes.end());
}

void Writer::Blob(ByteSpan data) {
  U32(static_cast<uint32_t>(data.size()));
  out_.insert(out_.end(), data.begin(), data.end());
}

void Writer::Str(std::string_view s) {
  Blob(ByteSpan(reinterpret_cast<const uint8_t*>(s.data()), s.size()));
}

bool Reader::Take(size_t n, const uint8_t** p) {
  if (data_.size() - pos_ < n) {
    return false;
  }
  *p = data_.data() + pos_;
  pos_ += n;
  return true;
}

bool Reader::U8(uint8_t* v) {
  const uint8_t* p;
  if (!Take(1, &p)) {
    return false;
  }
  *v = *p;
  return true;
}

bool Reader::U16(uint16_t* v) {
  const uint8_t* p;
  if (!Take(2, &p)) {
    return false;
  }
  *v = static_cast<uint16_t>(p[0] | (p[1] << 8));
  return true;
}

bool Reader::U32(uint32_t* v) {
  const uint8_t* p;
  if (!Take(4, &p)) {
    return false;
  }
  *v = 0;
  for (int i = 3; i >= 0; --i) {
    *v = (*v << 8) | p[i];
  }
  return true;
}

bool Reader::U64(uint64_t* v) {
  const uint8_t* p;
  if (!Take(8, &p)) {
    return false;
  }
  *v = 0;
  for (int i = 7; i >= 0; --i) {
    *v = (*v << 8) | p[i];
  }
  return true;
}

bool Reader::I64(int64_t* v) {
  uint64_t raw;
  if (!U64(&raw)) {
    return false;
  }
  *v = static_cast<int64_t>(raw);
  return true;
}

bool Reader::F64(double* v) {
  uint64_t bits;
  if (!U64(&bits)) {
    return false;
  }
  std::memcpy(v, &bits, sizeof(*v));
  return true;
}

bool Reader::Bool(bool* v) {
  uint8_t raw;
  if (!U8(&raw)) {
    return false;
  }
  *v = raw != 0;
  return true;
}

bool Reader::Id128(U128* v) {
  const uint8_t* p;
  if (!Take(16, &p)) {
    return false;
  }
  *v = U128::FromBytes(ByteSpan(p, 16));
  return true;
}

bool Reader::Id160(U160* v) {
  const uint8_t* p;
  if (!Take(U160::kBytes, &p)) {
    return false;
  }
  *v = U160::FromBytes(ByteSpan(p, U160::kBytes));
  return true;
}

bool Reader::Blob(Bytes* out) {
  uint32_t len;
  if (!U32(&len)) {
    return false;
  }
  const uint8_t* p;
  if (!Take(len, &p)) {
    return false;
  }
  out->assign(p, p + len);
  return true;
}

bool Reader::Str(std::string* out) {
  Bytes raw;
  if (!Blob(&raw)) {
    return false;
  }
  out->assign(raw.begin(), raw.end());
  return true;
}

}  // namespace past
