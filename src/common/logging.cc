#include "src/common/logging.h"

#include <atomic>
#include <cstdarg>
#include <cstdio>

namespace past {
namespace {

// Process-wide log level: atomic, and only the stderr stream depends on it,
// never simulation results, so parallel trials stay isolated.
// lint:allow-global-state diagnostic verbosity only, atomic
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load()); }

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

void LogWrite(LogLevel level, const char* fmt, ...) {
  std::fprintf(stderr, "[%s] ", LogLevelName(level));
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace past
