#include "src/common/bytes.h"

namespace past {
namespace {

int HexNibble(char c) {
  if (c >= '0' && c <= '9') {
    return c - '0';
  }
  if (c >= 'a' && c <= 'f') {
    return c - 'a' + 10;
  }
  if (c >= 'A' && c <= 'F') {
    return c - 'A' + 10;
  }
  return -1;
}

}  // namespace

std::string HexEncode(ByteSpan data) {
  static const char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(data.size() * 2);
  for (uint8_t b : data) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0x0f]);
  }
  return out;
}

bool HexDecode(std::string_view hex, Bytes* out) {
  out->clear();
  if (hex.size() % 2 != 0) {
    return false;
  }
  out->reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    int hi = HexNibble(hex[i]);
    int lo = HexNibble(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      out->clear();
      return false;
    }
    out->push_back(static_cast<uint8_t>((hi << 4) | lo));
  }
  return true;
}

Bytes ToBytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

bool ConstantTimeEqual(ByteSpan a, ByteSpan b) {
  if (a.size() != b.size()) {
    return false;
  }
  uint8_t acc = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    acc |= static_cast<uint8_t>(a[i] ^ b[i]);
  }
  return acc == 0;
}

}  // namespace past
