// Byte-buffer aliases and hex helpers shared across the library.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace past {

using Bytes = std::vector<uint8_t>;
using ByteSpan = std::span<const uint8_t>;

// Lower-case hex encoding of `data`.
std::string HexEncode(ByteSpan data);

// Decodes a hex string (case-insensitive). Returns false on odd length or a
// non-hex character; `out` is cleared first and left valid either way.
bool HexDecode(std::string_view hex, Bytes* out);

// Converts a string to a byte vector (no encoding change).
Bytes ToBytes(std::string_view s);

// Constant-time byte comparison (avoids timing side channels when comparing
// MACs or signatures; the simulator does not attack itself, but the crypto
// substrate follows standard practice).
bool ConstantTimeEqual(ByteSpan a, ByteSpan b);

}  // namespace past

