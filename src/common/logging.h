// Minimal leveled logger.
//
// Protocol code logs through PAST_LOG(level, ...); the global threshold is a
// process-wide setting so tests and benches can silence chatter. printf-style
// formatting keeps the hot path allocation-free when the level is filtered:
// the macro checks the threshold before any argument is evaluated, and the
// format string is compiler-checked (a bad format/argument mismatch is a
// compile error, not runtime UB).
#pragma once

namespace past {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

// Global threshold; messages below it are dropped. Defaults to kWarn.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

const char* LogLevelName(LogLevel level);

// Formats and writes one log line to stderr. Never call directly — go
// through PAST_LOG so filtered messages cost only the level comparison.
#if defined(__GNUC__) || defined(__clang__)
__attribute__((format(printf, 2, 3)))
#endif
void LogWrite(LogLevel level, const char* fmt, ...);

}  // namespace past

#define PAST_LOG(level, ...)                                                          \
  do {                                                                                \
    if (static_cast<int>(level) >= static_cast<int>(::past::GetLogLevel())) {         \
      ::past::LogWrite(level, __VA_ARGS__);                                           \
    }                                                                                 \
  } while (0)

#define PAST_TRACE(...) PAST_LOG(::past::LogLevel::kTrace, __VA_ARGS__)
#define PAST_DEBUG(...) PAST_LOG(::past::LogLevel::kDebug, __VA_ARGS__)
#define PAST_INFO(...) PAST_LOG(::past::LogLevel::kInfo, __VA_ARGS__)
#define PAST_WARN(...) PAST_LOG(::past::LogLevel::kWarn, __VA_ARGS__)
#define PAST_ERROR(...) PAST_LOG(::past::LogLevel::kError, __VA_ARGS__)

