#include "src/common/rng.h"

#include <cmath>

#include "src/common/check.h"

namespace past {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) {
    s = SplitMix64(&sm);
  }
}

uint64_t Rng::NextU64() {
  // xoshiro256**.
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::UniformU64(uint64_t n) {
  PAST_CHECK(n > 0);
  // Rejection sampling over the largest multiple of n.
  const uint64_t limit = ~0ULL - (~0ULL % n);
  uint64_t x;
  do {
    x = NextU64();
  } while (x >= limit);
  return x % n;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  PAST_CHECK(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) {
    return static_cast<int64_t>(NextU64());  // full 64-bit range
  }
  return lo + static_cast<int64_t>(UniformU64(span));
}

double Rng::UniformDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Gaussian() {
  if (have_spare_gaussian_) {
    have_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  double u1;
  do {
    u1 = UniformDouble();
  } while (u1 <= 0.0);
  double u2 = UniformDouble();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  spare_gaussian_ = r * std::sin(theta);
  have_spare_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::Lognormal(double mu, double sigma) {
  return std::exp(mu + sigma * Gaussian());
}

double Rng::Pareto(double xm, double alpha) {
  PAST_CHECK(xm > 0 && alpha > 0);
  double u;
  do {
    u = UniformDouble();
  } while (u <= 0.0);
  return xm / std::pow(u, 1.0 / alpha);
}

double Rng::Exponential(double rate) {
  PAST_CHECK(rate > 0);
  double u;
  do {
    u = UniformDouble();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

U128 Rng::NextU128() { return U128(NextU64(), NextU64()); }

U160 Rng::NextU160() {
  Bytes raw = RandomBytes(U160::kBytes);
  return U160::FromBytes(raw);
}

Bytes Rng::RandomBytes(size_t n) {
  Bytes out(n);
  size_t i = 0;
  while (i + 8 <= n) {
    uint64_t x = NextU64();
    for (int j = 0; j < 8; ++j) {
      out[i + j] = static_cast<uint8_t>(x >> (8 * j));
    }
    i += 8;
  }
  if (i < n) {
    uint64_t x = NextU64();
    for (; i < n; ++i) {
      out[i] = static_cast<uint8_t>(x);
      x >>= 8;
    }
  }
  return out;
}

Rng Rng::Fork() { return Rng(NextU64()); }

ZipfDistribution::ZipfDistribution(size_t n, double s) {
  PAST_CHECK(n > 0);
  cdf_.resize(n);
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = acc;
  }
  for (size_t i = 0; i < n; ++i) {
    cdf_[i] /= acc;
  }
}

size_t ZipfDistribution::Sample(Rng* rng) const {
  double u = rng->UniformDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) {
    return cdf_.size() - 1;
  }
  return static_cast<size_t>(it - cdf_.begin());
}

}  // namespace past
