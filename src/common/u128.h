// U128 — a 128-bit unsigned integer with the digit algebra Pastry needs.
//
// Pastry treats nodeIds (and the 128 most significant bits of fileIds) as
// 128-bit unsigned integers and, for routing, as a sequence of digits in base
// 2^b (most significant digit first). The id space is circular: distance
// between two ids is measured around the 2^128 ring.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "src/common/bytes.h"

namespace past {

class U128 {
 public:
  static constexpr int kBits = 128;

  constexpr U128() : hi_(0), lo_(0) {}
  constexpr U128(uint64_t hi, uint64_t lo) : hi_(hi), lo_(lo) {}

  static constexpr U128 Zero() { return U128(0, 0); }
  static constexpr U128 Max() { return U128(~0ULL, ~0ULL); }

  // Big-endian conversions. FromBytes requires exactly 16 bytes.
  static U128 FromBytes(ByteSpan bytes);
  std::array<uint8_t, 16> ToBytes() const;

  // 32 lower-case hex characters. FromHex returns Zero() + false on error.
  std::string ToHex() const;
  static bool FromHex(std::string_view hex, U128* out);

  uint64_t hi() const { return hi_; }
  uint64_t lo() const { return lo_; }

  friend bool operator==(const U128& a, const U128& b) = default;
  friend std::strong_ordering operator<=>(const U128& a, const U128& b) {
    if (a.hi_ != b.hi_) {
      return a.hi_ <=> b.hi_;
    }
    return a.lo_ <=> b.lo_;
  }

  // Wrapping arithmetic in the 2^128 ring.
  U128 Add(const U128& other) const;
  U128 Sub(const U128& other) const;

  // |a - b| as plain 128-bit integers (no wrap).
  U128 AbsDiff(const U128& other) const;

  // min(a - b mod 2^128, b - a mod 2^128): distance around the ring. This is
  // the metric for "numerically closest" in leaf sets and replica placement.
  U128 RingDistance(const U128& other) const;

  // True if this id lies on the clockwise arc (low, high], walking in
  // increasing id order with wraparound. Used for leaf-set coverage checks.
  bool InArc(const U128& low, const U128& high) const;

  // --- Digit algebra (base 2^b, msb digit first) ---------------------------
  // Digit index 0 is the most significant digit. `bits_per_digit` must divide
  // 128 (Pastry's b; typical value 4 -> 32 hex digits).
  int Digit(int index, int bits_per_digit) const;
  U128 WithDigit(int index, int bits_per_digit, int value) const;

  // Number of leading digits this id shares with `other` (0..128/b).
  int SharedPrefixLength(const U128& other, int bits_per_digit) const;

  // Bit i (0 = most significant).
  int Bit(int index) const;

  size_t HashValue() const {
    return std::hash<uint64_t>()(hi_ * 0x9e3779b97f4a7c15ULL ^ lo_);
  }

 private:
  uint64_t hi_;
  uint64_t lo_;
};

struct U128Hash {
  size_t operator()(const U128& v) const { return v.HashValue(); }
};

}  // namespace past

