// Error model for the PAST library.
//
// Protocol and storage paths do not use exceptions: every fallible operation
// returns a StatusCode or a Result<T>. StatusCode values mirror the failure
// modes the PAST paper discusses (quota exhaustion, insufficient storage,
// failed verification, unreachable nodes, ...).
#pragma once

#include <string>
#include <utility>
#include <variant>

#include "src/common/check.h"

namespace past {

// [[nodiscard]] on the type: any call site that ignores a returned
// StatusCode fails the build (-Werror=unused-result). Deliberate discards
// must say so with a cast to void and a reason.
enum class [[nodiscard]] StatusCode {
  kOk = 0,
  // Generic.
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kUnavailable,
  kTimeout,
  kInternal,
  // Storage management.
  kInsufficientStorage,   // node (and its leaf set) cannot host the replica
  kQuotaExceeded,         // smartcard quota would go negative
  kInsertRejected,        // insert failed after file diversion retries
  // Security.
  kVerificationFailed,    // signature or content hash mismatch
  kNotAuthorized,         // e.g. reclaim by non-owner
  kCertificateExpired,
  // Serialization / wire.
  kDecodeError,
  // Durable storage.
  kCorruption,            // on-disk record failed checksum or decode
};

// Human-readable name, for logs and test diagnostics.
const char* StatusCodeName(StatusCode code);

// Documents a deliberately discarded StatusCode. Only for best-effort paths
// (destructors, cleanup after an already-reported failure) where no recovery
// is possible; the call site comment should say why.
inline void IgnoreStatus(StatusCode) {}

// Result<T> is a value-or-status sum type. Accessing the value of a failed
// Result is a checked invariant violation.
template <typename T>
class [[nodiscard]] Result {
 public:
  // Intentionally implicit: lets functions `return value;` / `return code;`.
  Result(T value) : inner_(std::move(value)) {}                 // NOLINT
  Result(StatusCode code) : inner_(code) {                      // NOLINT
    PAST_CHECK_MSG(code != StatusCode::kOk, "ok result must carry a value");
  }

  bool ok() const { return std::holds_alternative<T>(inner_); }
  StatusCode status() const {
    return ok() ? StatusCode::kOk : std::get<StatusCode>(inner_);
  }

  const T& value() const& {
    PAST_CHECK_MSG(ok(), "value() on failed Result");
    return std::get<T>(inner_);
  }
  T& value() & {
    PAST_CHECK_MSG(ok(), "value() on failed Result");
    return std::get<T>(inner_);
  }
  T&& value() && {
    PAST_CHECK_MSG(ok(), "value() on failed Result");
    return std::get<T>(std::move(inner_));
  }

  const T& value_or(const T& fallback) const& { return ok() ? value() : fallback; }

 private:
  std::variant<T, StatusCode> inner_;
};

}  // namespace past

