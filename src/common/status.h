// Error model for the PAST library.
//
// Protocol and storage paths do not use exceptions: every fallible operation
// returns a StatusCode or a Result<T>. StatusCode values mirror the failure
// modes the PAST paper discusses (quota exhaustion, insufficient storage,
// failed verification, unreachable nodes, ...).
#ifndef SRC_COMMON_STATUS_H_
#define SRC_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "src/common/check.h"

namespace past {

enum class StatusCode {
  kOk = 0,
  // Generic.
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kUnavailable,
  kTimeout,
  kInternal,
  // Storage management.
  kInsufficientStorage,   // node (and its leaf set) cannot host the replica
  kQuotaExceeded,         // smartcard quota would go negative
  kInsertRejected,        // insert failed after file diversion retries
  // Security.
  kVerificationFailed,    // signature or content hash mismatch
  kNotAuthorized,         // e.g. reclaim by non-owner
  kCertificateExpired,
  // Serialization / wire.
  kDecodeError,
  // Durable storage.
  kCorruption,            // on-disk record failed checksum or decode
};

// Human-readable name, for logs and test diagnostics.
const char* StatusCodeName(StatusCode code);

// Result<T> is a value-or-status sum type. Accessing the value of a failed
// Result is a checked invariant violation.
template <typename T>
class Result {
 public:
  // Intentionally implicit: lets functions `return value;` / `return code;`.
  Result(T value) : inner_(std::move(value)) {}                 // NOLINT
  Result(StatusCode code) : inner_(code) {                      // NOLINT
    PAST_CHECK_MSG(code != StatusCode::kOk, "ok result must carry a value");
  }

  bool ok() const { return std::holds_alternative<T>(inner_); }
  StatusCode status() const {
    return ok() ? StatusCode::kOk : std::get<StatusCode>(inner_);
  }

  const T& value() const& {
    PAST_CHECK_MSG(ok(), "value() on failed Result");
    return std::get<T>(inner_);
  }
  T& value() & {
    PAST_CHECK_MSG(ok(), "value() on failed Result");
    return std::get<T>(inner_);
  }
  T&& value() && {
    PAST_CHECK_MSG(ok(), "value() on failed Result");
    return std::get<T>(std::move(inner_));
  }

  const T& value_or(const T& fallback) const& { return ok() ? value() : fallback; }

 private:
  std::variant<T, StatusCode> inner_;
};

}  // namespace past

#endif  // SRC_COMMON_STATUS_H_
