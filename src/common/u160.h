// U160 — a 160-bit unsigned integer for PAST fileIds.
//
// FileIds are the SHA-1 (160-bit) hash of the file's textual name, the
// owner's public key and a random salt. Routing uses only the 128 most
// significant bits (Top128()); the remaining 32 bits disambiguate files that
// would otherwise collide on the routing key.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <string>
#include <string_view>

#include "src/common/bytes.h"
#include "src/common/u128.h"

namespace past {

class U160 {
 public:
  static constexpr int kBytes = 20;

  constexpr U160() : bytes_{} {}

  // Big-endian conversions. FromBytes requires exactly 20 bytes.
  static U160 FromBytes(ByteSpan bytes);
  const std::array<uint8_t, kBytes>& bytes() const { return bytes_; }

  std::string ToHex() const;
  static bool FromHex(std::string_view hex, U160* out);

  // The 128 most significant bits; this is the Pastry routing key.
  U128 Top128() const;

  friend bool operator==(const U160& a, const U160& b) = default;
  friend std::strong_ordering operator<=>(const U160& a, const U160& b) {
    for (int i = 0; i < kBytes; ++i) {
      if (a.bytes_[i] != b.bytes_[i]) {
        return a.bytes_[i] <=> b.bytes_[i];
      }
    }
    return std::strong_ordering::equal;
  }

  size_t HashValue() const;

 private:
  std::array<uint8_t, kBytes> bytes_;
};

struct U160Hash {
  size_t operator()(const U160& v) const { return v.HashValue(); }
};

}  // namespace past

