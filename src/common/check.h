// Invariant-checking macros for the PAST library.
//
// PAST_CHECK aborts (in all build types) when a protocol or data-structure
// invariant is violated; such a violation is always a programming error, never
// a recoverable runtime condition, so we fail fast with a readable message.
#pragma once

#include <cstdio>
#include <cstdlib>

#define PAST_CHECK(cond)                                                              \
  do {                                                                                \
    if (!(cond)) {                                                                    \
      std::fprintf(stderr, "PAST_CHECK failed: %s at %s:%d\n", #cond, __FILE__,       \
                   __LINE__);                                                         \
      std::abort();                                                                   \
    }                                                                                 \
  } while (0)

#define PAST_CHECK_MSG(cond, msg)                                                     \
  do {                                                                                \
    if (!(cond)) {                                                                    \
      std::fprintf(stderr, "PAST_CHECK failed: %s (%s) at %s:%d\n", #cond, (msg),     \
                   __FILE__, __LINE__);                                               \
      std::abort();                                                                   \
    }                                                                                 \
  } while (0)

// For conditions that indicate an unreachable code path.
#define PAST_UNREACHABLE(msg)                                                         \
  do {                                                                                \
    std::fprintf(stderr, "PAST_UNREACHABLE: %s at %s:%d\n", (msg), __FILE__,          \
                 __LINE__);                                                           \
    std::abort();                                                                     \
  } while (0)

