// CRC32C (Castagnoli, polynomial 0x1EDC6F41) — the checksum guarding every
// record in the disk storage engine's append-only log.
//
// Software slice-by-4 implementation: four 256-entry tables let the inner
// loop consume one 32-bit word per iteration instead of one byte. No
// hardware (SSE4.2 / ARMv8 CRC) path — the engine is I/O bound and the
// portable code keeps the build dependency-free.
#pragma once

#include <cstdint>

#include "src/common/bytes.h"

namespace past {

// CRC of `data` continuing from `crc` (the CRC of all preceding bytes).
// Streaming: Crc32cExtend(Crc32cExtend(0, a), b) == Crc32c(a || b).
uint32_t Crc32cExtend(uint32_t crc, ByteSpan data);

// One-shot CRC32C of `data`.
inline uint32_t Crc32c(ByteSpan data) { return Crc32cExtend(0, data); }

}  // namespace past

