// Refcounted immutable byte buffer for zero-copy message delivery.
//
// Ownership rules:
//   - Construct once from a Bytes (moved in; the only allocation is the
//     shared control block + buffer, fused by make_shared).
//   - Copies are cheap handles onto the same buffer; the network's in-flight
//     delivery closure and every recipient of a multi-recipient send share
//     one allocation.
//   - The buffer is immutable after construction. Readers get a ByteSpan
//     view via span(); the view is valid as long as any handle is alive.
#pragma once

#include <memory>
#include <utility>

#include "src/common/bytes.h"

namespace past {

class SharedBytes {
 public:
  SharedBytes() = default;
  explicit SharedBytes(Bytes bytes)
      : buf_(std::make_shared<const Bytes>(std::move(bytes))) {}

  // Copies `data` into a fresh buffer (for callers that only have a view).
  static SharedBytes Copy(ByteSpan data) {
    return SharedBytes(Bytes(data.begin(), data.end()));
  }

  const uint8_t* data() const { return buf_ ? buf_->data() : nullptr; }
  size_t size() const { return buf_ ? buf_->size() : 0; }
  bool empty() const { return size() == 0; }
  ByteSpan span() const {
    return buf_ ? ByteSpan(buf_->data(), buf_->size()) : ByteSpan();
  }

  // Number of handles sharing the buffer (0 for an empty handle). Used by
  // tests to pin the zero-copy property.
  long use_count() const { return buf_.use_count(); }

 private:
  std::shared_ptr<const Bytes> buf_;
};

}  // namespace past
