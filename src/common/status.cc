#include "src/common/status.h"

namespace past {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kTimeout:
      return "TIMEOUT";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kInsufficientStorage:
      return "INSUFFICIENT_STORAGE";
    case StatusCode::kQuotaExceeded:
      return "QUOTA_EXCEEDED";
    case StatusCode::kInsertRejected:
      return "INSERT_REJECTED";
    case StatusCode::kVerificationFailed:
      return "VERIFICATION_FAILED";
    case StatusCode::kNotAuthorized:
      return "NOT_AUTHORIZED";
    case StatusCode::kCertificateExpired:
      return "CERTIFICATE_EXPIRED";
    case StatusCode::kDecodeError:
      return "DECODE_ERROR";
    case StatusCode::kCorruption:
      return "CORRUPTION";
  }
  return "UNKNOWN";
}

}  // namespace past
