#include "src/common/u128.h"

#include "src/common/check.h"

namespace past {

U128 U128::FromBytes(ByteSpan bytes) {
  PAST_CHECK_MSG(bytes.size() == 16, "U128 requires exactly 16 bytes");
  uint64_t hi = 0;
  uint64_t lo = 0;
  for (int i = 0; i < 8; ++i) {
    hi = (hi << 8) | bytes[i];
  }
  for (int i = 8; i < 16; ++i) {
    lo = (lo << 8) | bytes[i];
  }
  return U128(hi, lo);
}

std::array<uint8_t, 16> U128::ToBytes() const {
  std::array<uint8_t, 16> out{};
  for (int i = 0; i < 8; ++i) {
    out[i] = static_cast<uint8_t>(hi_ >> (56 - 8 * i));
    out[8 + i] = static_cast<uint8_t>(lo_ >> (56 - 8 * i));
  }
  return out;
}

std::string U128::ToHex() const {
  auto bytes = ToBytes();
  return HexEncode(ByteSpan(bytes.data(), bytes.size()));
}

bool U128::FromHex(std::string_view hex, U128* out) {
  *out = Zero();
  Bytes raw;
  if (!HexDecode(hex, &raw) || raw.size() != 16) {
    return false;
  }
  *out = FromBytes(raw);
  return true;
}

U128 U128::Add(const U128& other) const {
  uint64_t lo = lo_ + other.lo_;
  uint64_t carry = (lo < lo_) ? 1 : 0;
  return U128(hi_ + other.hi_ + carry, lo);
}

U128 U128::Sub(const U128& other) const {
  uint64_t lo = lo_ - other.lo_;
  uint64_t borrow = (lo_ < other.lo_) ? 1 : 0;
  return U128(hi_ - other.hi_ - borrow, lo);
}

U128 U128::AbsDiff(const U128& other) const {
  return (*this >= other) ? Sub(other) : other.Sub(*this);
}

U128 U128::RingDistance(const U128& other) const {
  U128 forward = other.Sub(*this);   // walking up from *this to other
  U128 backward = Sub(other);        // walking up from other to *this
  return (forward <= backward) ? forward : backward;
}

bool U128::InArc(const U128& low, const U128& high) const {
  if (low == high) {
    // Degenerate arc covers the entire ring.
    return true;
  }
  if (low < high) {
    return *this > low && *this <= high;
  }
  // Arc wraps through zero.
  return *this > low || *this <= high;
}

int U128::Digit(int index, int bits_per_digit) const {
  PAST_CHECK(bits_per_digit > 0 && 128 % bits_per_digit == 0);
  const int digits = 128 / bits_per_digit;
  PAST_CHECK(index >= 0 && index < digits);
  const int shift = 128 - (index + 1) * bits_per_digit;
  const uint64_t mask = (bits_per_digit >= 64) ? ~0ULL : ((1ULL << bits_per_digit) - 1);
  uint64_t word;
  int word_shift;
  if (shift >= 64) {
    word = hi_;
    word_shift = shift - 64;
  } else {
    word = lo_;
    word_shift = shift;
  }
  // A digit never straddles the hi/lo boundary because bits_per_digit divides
  // 128 and 64.
  return static_cast<int>((word >> word_shift) & mask);
}

U128 U128::WithDigit(int index, int bits_per_digit, int value) const {
  PAST_CHECK(bits_per_digit > 0 && 128 % bits_per_digit == 0);
  const int digits = 128 / bits_per_digit;
  PAST_CHECK(index >= 0 && index < digits);
  PAST_CHECK(value >= 0 && value < (1 << bits_per_digit));
  const int shift = 128 - (index + 1) * bits_per_digit;
  const uint64_t mask = (1ULL << bits_per_digit) - 1;
  uint64_t hi = hi_;
  uint64_t lo = lo_;
  if (shift >= 64) {
    int s = shift - 64;
    hi = (hi & ~(mask << s)) | (static_cast<uint64_t>(value) << s);
  } else {
    lo = (lo & ~(mask << shift)) | (static_cast<uint64_t>(value) << shift);
  }
  return U128(hi, lo);
}

int U128::SharedPrefixLength(const U128& other, int bits_per_digit) const {
  const int digits = 128 / bits_per_digit;
  for (int i = 0; i < digits; ++i) {
    if (Digit(i, bits_per_digit) != other.Digit(i, bits_per_digit)) {
      return i;
    }
  }
  return digits;
}

int U128::Bit(int index) const {
  PAST_CHECK(index >= 0 && index < 128);
  if (index < 64) {
    return static_cast<int>((hi_ >> (63 - index)) & 1);
  }
  return static_cast<int>((lo_ >> (127 - index)) & 1);
}

}  // namespace past
