#include "src/common/u160.h"

#include "src/common/check.h"

namespace past {

U160 U160::FromBytes(ByteSpan bytes) {
  PAST_CHECK_MSG(bytes.size() == kBytes, "U160 requires exactly 20 bytes");
  U160 out;
  for (int i = 0; i < kBytes; ++i) {
    out.bytes_[i] = bytes[i];
  }
  return out;
}

std::string U160::ToHex() const {
  return HexEncode(ByteSpan(bytes_.data(), bytes_.size()));
}

bool U160::FromHex(std::string_view hex, U160* out) {
  *out = U160();
  Bytes raw;
  if (!HexDecode(hex, &raw) || raw.size() != kBytes) {
    return false;
  }
  *out = FromBytes(raw);
  return true;
}

U128 U160::Top128() const {
  return U128::FromBytes(ByteSpan(bytes_.data(), 16));
}

size_t U160::HashValue() const {
  uint64_t acc = 0xcbf29ce484222325ULL;
  for (uint8_t b : bytes_) {
    acc = (acc ^ b) * 0x100000001b3ULL;
  }
  return static_cast<size_t>(acc);
}

}  // namespace past
