// Annotated mutex wrappers for Clang's static thread-safety analysis.
//
// Every multithreaded surface in the repo locks through past::Mutex /
// past::MutexLock instead of bare std::mutex (enforced by the past_lint
// bare-mutex rule): under Clang the PAST_* macros expand to the
// thread-safety attributes and `-Wthread-safety -Werror=thread-safety`
// proves lock discipline at compile time — a field marked
// PAST_GUARDED_BY(mu) cannot be read or written without holding `mu`, a
// function marked PAST_REQUIRES(mu) cannot be called without it. Under
// compilers without the analysis (GCC) the macros expand to nothing and the
// wrappers cost exactly one inlined forwarding call.
//
// Annotation conventions (DESIGN.md §13):
//   - shared data members:        T field PAST_GUARDED_BY(mu_);
//   - pointed-to shared data:     T* ptr PAST_PT_GUARDED_BY(mu_);
//   - must-hold member functions: void F() PAST_REQUIRES(mu_);
//   - must-NOT-hold functions:    void F() PAST_EXCLUDES(mu_);
//   - scoped locking:             MutexLock lock(&mu_);
//   - condition waits:            cv_.Wait(&mu_) inside a MutexLock scope.
//
// The compile-fail probe tests/lint/thread_safety_violation.cc pins that an
// unlocked access to a PAST_GUARDED_BY field really breaks a Clang build.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

// Thread-safety attributes are a Clang extension; see
// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html. The __has_attribute
// probe keeps the header correct on any future compiler that grows them.
#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define PAST_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef PAST_THREAD_ANNOTATION
#define PAST_THREAD_ANNOTATION(x)
#endif

#define PAST_CAPABILITY(name) PAST_THREAD_ANNOTATION(capability(name))
#define PAST_SCOPED_CAPABILITY PAST_THREAD_ANNOTATION(scoped_lockable)
#define PAST_GUARDED_BY(x) PAST_THREAD_ANNOTATION(guarded_by(x))
#define PAST_PT_GUARDED_BY(x) PAST_THREAD_ANNOTATION(pt_guarded_by(x))
#define PAST_REQUIRES(...) \
  PAST_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define PAST_ACQUIRE(...) PAST_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define PAST_RELEASE(...) PAST_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define PAST_TRY_ACQUIRE(...) \
  PAST_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define PAST_EXCLUDES(...) PAST_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define PAST_RETURN_CAPABILITY(x) PAST_THREAD_ANNOTATION(lock_returned(x))
#define PAST_NO_THREAD_SAFETY_ANALYSIS \
  PAST_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace past {

// A std::mutex the analysis understands. Lock discipline on any state the
// mutex protects is declared with PAST_GUARDED_BY / PAST_REQUIRES and
// checked at compile time under Clang.
class PAST_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() PAST_ACQUIRE() { mu_.lock(); }
  void Unlock() PAST_RELEASE() { mu_.unlock(); }
  [[nodiscard]] bool TryLock() PAST_TRY_ACQUIRE(true) {
    return mu_.try_lock();
  }

 private:
  friend class CondVar;
  std::mutex mu_;
};

// RAII lock over a past::Mutex — the only sanctioned way to hold one.
// Declaring the scope tells the analysis the capability is held until the
// end of the block.
class PAST_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) PAST_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() PAST_RELEASE() { mu_->Unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

// Condition variable over past::Mutex. Wait() atomically releases the mutex
// and reacquires it before returning, so the caller's capability set is
// unchanged — which is exactly what PAST_REQUIRES(mu) declares.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  // Blocks until notified. Spurious wakeups happen; callers loop on their
  // predicate (or use the predicate overload below).
  void Wait(Mutex* mu) PAST_REQUIRES(mu) {
    // The analysis cannot see through std::condition_variable's
    // release-and-reacquire, so this body opts out; the contract the caller
    // sees (mutex held before and after) is still enforced at every call
    // site by PAST_REQUIRES.
    WaitInternal(mu);
  }

  template <typename Predicate>
  void Wait(Mutex* mu, Predicate pred) PAST_REQUIRES(mu) {
    while (!pred()) {
      Wait(mu);
    }
  }

  // Blocks until notified or until `micros` elapse, whichever comes first.
  // Returns false on timeout. Like Wait(), the mutex is held before and
  // after; the bounded form exists for batching windows (a group-commit
  // committer waits a bounded delay for more work before fsyncing) — never
  // for open-ended polling.
  [[nodiscard]] bool WaitFor(Mutex* mu, int64_t micros) PAST_REQUIRES(mu) {
    return WaitForInternal(mu, micros);
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  void WaitInternal(Mutex* mu) PAST_NO_THREAD_SAFETY_ANALYSIS {
    std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  bool WaitForInternal(Mutex* mu,
                       int64_t micros) PAST_NO_THREAD_SAFETY_ANALYSIS {
    std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
    bool notified =
        cv_.wait_for(lock, std::chrono::microseconds(micros)) ==
        std::cv_status::no_timeout;
    lock.release();
    return notified;
  }

  std::condition_variable cv_;
};

}  // namespace past
