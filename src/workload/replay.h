// Trace replay engine: drives a PastNetwork through a recorded trace.
//
// Client/node indices in the trace are taken modulo the current network size;
// lookups and reclaims resolve their insert references through the fileIds
// produced during this replay. Crash victims are skipped if already down;
// join ops add a node with the network's default capacity/quota.
#pragma once

#include "src/storage/past_network.h"
#include "src/workload/trace.h"

namespace past {

struct ReplayResult {
  int inserts_ok = 0;
  int inserts_failed = 0;
  int lookups_ok = 0;
  int lookups_failed = 0;
  // Lookups of files whose insert failed or that were already reclaimed are
  // counted separately: their failure is expected.
  int lookups_skipped = 0;
  int reclaims_ok = 0;
  int reclaims_failed = 0;
  int crashes = 0;
  int joins = 0;
};

// Replays `trace` against `net`, settling the given duration after each
// churn event.
ReplayResult ReplayTrace(const Trace& trace, PastNetwork* net,
                         SimTime churn_settle = 15 * kMicrosPerSecond);

}  // namespace past

