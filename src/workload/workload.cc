#include "src/workload/workload.h"

#include <algorithm>

#include "src/common/check.h"

namespace past {

uint64_t FileSizeModel::Sample(Rng* rng) const {
  double raw;
  if (rng->Bernoulli(pareto_tail_prob)) {
    raw = rng->Pareto(pareto_xm, pareto_alpha);
  } else {
    raw = rng->Lognormal(lognormal_mu, lognormal_sigma);
  }
  uint64_t size = static_cast<uint64_t>(raw);
  return std::clamp(size, min_size, max_size);
}

uint64_t CapacityModel::Sample(Rng* rng) const {
  PAST_CHECK(min_multiple >= 1 && max_multiple >= min_multiple);
  int64_t multiple = rng->UniformInt(min_multiple, max_multiple);
  return base * static_cast<uint64_t>(multiple);
}

std::vector<WorkloadFile> GenerateFiles(size_t count, const FileSizeModel& model,
                                        Rng* rng) {
  std::vector<WorkloadFile> files;
  files.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    WorkloadFile f;
    f.name = "file-" + std::to_string(i);
    f.size = model.Sample(rng);
    files.push_back(std::move(f));
  }
  return files;
}

}  // namespace past
