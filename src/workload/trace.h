// Operation traces: a serializable list of client operations.
//
// Traces make workloads portable and reproducible: an experiment can be
// generated once, saved as text, inspected, edited, and replayed against any
// PastNetwork configuration (see src/workload/replay.h). The format is
// line-based:
//
//   # comment
//   insert <client> <name> <size> <k>
//   lookup <client> <insert-index>
//   reclaim <client> <insert-index>
//   crash <node>
//   join
//
// where <insert-index> refers to the i-th insert line (0-based) and <client>
// / <node> are node indices modulo the network size at replay time.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"
#include "src/workload/workload.h"

namespace past {

enum class TraceOpType { kInsert, kLookup, kReclaim, kCrash, kJoin };

struct TraceOp {
  TraceOpType type = TraceOpType::kInsert;
  int client = 0;       // issuing node (insert/lookup/reclaim) or victim (crash)
  std::string name;     // insert only
  uint64_t size = 0;    // insert only
  uint32_t k = 0;       // insert only
  int file_ref = -1;    // lookup/reclaim: index of the referenced insert op

  bool operator==(const TraceOp& other) const = default;
};

class Trace {
 public:
  void Add(TraceOp op) { ops_.push_back(std::move(op)); }
  const std::vector<TraceOp>& ops() const { return ops_; }
  size_t size() const { return ops_.size(); }

  // Number of insert operations (the valid range for file_ref).
  size_t InsertCount() const;

  // Line-based text serialization (stable, diff-friendly).
  std::string Serialize() const;
  static Result<Trace> Parse(std::string_view text);

  bool operator==(const Trace& other) const { return ops_ == other.ops_; }

 private:
  std::vector<TraceOp> ops_;
};

// Parameters for synthetic trace generation.
struct TraceWorkloadOptions {
  size_t operations = 500;
  int clients = 16;             // client indices drawn from [0, clients)
  double insert_weight = 0.3;   // remaining ops: lookups, reclaims, churn
  double lookup_weight = 0.55;
  double reclaim_weight = 0.1;
  double churn_weight = 0.05;   // split between crash and join
  double zipf_s = 1.0;          // lookup popularity over inserted files
  uint32_t replication = 3;
  FileSizeModel sizes;
};

// Generates a mixed trace; lookups follow a Zipf popularity over the files
// inserted so far.
Trace GenerateTrace(const TraceWorkloadOptions& options, Rng* rng);

}  // namespace past

