#include "src/workload/replay.h"

#include <unordered_map>

#include "src/common/check.h"

namespace past {
namespace {

// A node that survives as a usable client (live card-holder).
PastNode* ResolveClient(PastNetwork* net, int index) {
  const size_t n = net->size();
  PAST_CHECK(n > 0);
  for (size_t probe = 0; probe < n; ++probe) {
    PastNode* node = net->node((static_cast<size_t>(index) + probe) % n);
    if (node->overlay()->active() && node->has_card()) {
      return node;
    }
  }
  return nullptr;
}

}  // namespace

ReplayResult ReplayTrace(const Trace& trace, PastNetwork* net, SimTime churn_settle) {
  ReplayResult result;
  // insert index -> (fileId, owning node) for successful inserts.
  std::unordered_map<int, std::pair<FileId, PastNode*>> files;
  std::unordered_map<int, bool> reclaimed;
  int insert_index = 0;
  for (const TraceOp& op : trace.ops()) {
    switch (op.type) {
      case TraceOpType::kInsert: {
        int this_insert = insert_index++;
        PastNode* client = ResolveClient(net, op.client);
        if (client == nullptr) {
          ++result.inserts_failed;
          break;
        }
        auto r = net->InsertSyntheticSync(client, op.name, op.size, op.k);
        if (r.ok()) {
          ++result.inserts_ok;
          files[this_insert] = {r.value(), client};
        } else {
          ++result.inserts_failed;
        }
        break;
      }
      case TraceOpType::kLookup: {
        auto it = files.find(op.file_ref);
        if (it == files.end() || reclaimed[op.file_ref]) {
          ++result.lookups_skipped;
          break;
        }
        PastNode* client = ResolveClient(net, op.client);
        if (client == nullptr) {
          ++result.lookups_failed;
          break;
        }
        auto r = net->LookupSync(client, it->second.first);
        if (r.ok()) {
          ++result.lookups_ok;
        } else {
          ++result.lookups_failed;
        }
        break;
      }
      case TraceOpType::kReclaim: {
        auto it = files.find(op.file_ref);
        if (it == files.end() || reclaimed[op.file_ref]) {
          break;
        }
        PastNode* owner = it->second.second;
        if (!owner->overlay()->active()) {
          break;  // the owner crashed; its files stay until it recovers
        }
        if (net->ReclaimSync(owner, it->second.first) == StatusCode::kOk) {
          ++result.reclaims_ok;
          reclaimed[op.file_ref] = true;
        } else {
          ++result.reclaims_failed;
        }
        break;
      }
      case TraceOpType::kCrash: {
        const size_t n = net->size();
        size_t victim = static_cast<size_t>(op.client) % n;
        if (net->node(victim)->overlay()->active()) {
          net->CrashNode(victim);
          ++result.crashes;
          net->Run(churn_settle);
        }
        break;
      }
      case TraceOpType::kJoin: {
        if (net->AddNode() != nullptr) {
          ++result.joins;
          net->Run(churn_settle);
        }
        break;
      }
    }
  }
  return result;
}

}  // namespace past
