#include "src/workload/serving.h"

#include <algorithm>

#include "src/common/check.h"

namespace past {

Bytes ServingValue(uint64_t seed, uint32_t size) {
  // splitmix64 over the seed, 8 bytes at a time: cheap, deterministic, and
  // incompressible enough that value bytes exercise real I/O.
  Bytes out(size);
  uint64_t x = seed;
  for (uint32_t i = 0; i < size; i += 8) {
    x += 0x9e3779b97f4a7c15ULL;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
    for (uint32_t b = 0; b < 8 && i + b < size; ++b) {
      out[i + b] = static_cast<uint8_t>(z >> (8 * b));
    }
  }
  return out;
}

ServingSchedule GenerateServingSchedule(const ServingWorkloadOptions& options) {
  PAST_CHECK(options.arrival_rate > 0.0);
  Rng rng(options.seed);
  ServingSchedule schedule;

  auto sized_insert = [&](uint64_t arrival_us) {
    ServingOp op;
    op.type = ServingOp::Type::kInsert;
    op.key = rng.NextU160();
    const uint64_t size = std::min<uint64_t>(options.sizes.Sample(&rng),
                                             options.max_value_bytes);
    op.value_size = static_cast<uint32_t>(size);
    op.value_seed = rng.NextU64();
    op.arrival_us = arrival_us;
    return op;
  };

  schedule.prepopulate.reserve(options.prepopulate);
  for (size_t i = 0; i < options.prepopulate; ++i) {
    schedule.prepopulate.push_back(sized_insert(0));
  }

  ZipfDistribution popularity(std::max<size_t>(options.prepopulate, 1),
                              options.zipf_s);
  double clock_us = 0.0;
  schedule.ops.reserve(options.op_count);
  for (size_t i = 0; i < options.op_count; ++i) {
    // Poisson process: exponential interarrivals at the offered rate.
    clock_us += rng.Exponential(options.arrival_rate) * 1e6;
    const uint64_t arrival_us = static_cast<uint64_t>(clock_us);
    if (options.prepopulate > 0 && !rng.Bernoulli(options.insert_fraction)) {
      ServingOp op;
      op.type = ServingOp::Type::kLookup;
      op.key = schedule.prepopulate[popularity.Sample(&rng)].key;
      op.arrival_us = arrival_us;
      schedule.ops.push_back(op);
    } else {
      schedule.ops.push_back(sized_insert(arrival_us));
    }
  }
  return schedule;
}

}  // namespace past
