#include "src/workload/trace.h"

#include <cinttypes>
#include <cstdio>
#include <sstream>

#include "src/common/check.h"

namespace past {

size_t Trace::InsertCount() const {
  size_t count = 0;
  for (const TraceOp& op : ops_) {
    count += op.type == TraceOpType::kInsert ? 1 : 0;
  }
  return count;
}

std::string Trace::Serialize() const {
  std::string out = "# PAST operation trace v1\n";
  char line[512];
  for (const TraceOp& op : ops_) {
    switch (op.type) {
      case TraceOpType::kInsert:
        std::snprintf(line, sizeof(line), "insert %d %s %" PRIu64 " %u\n", op.client,
                      op.name.c_str(), op.size, op.k);
        break;
      case TraceOpType::kLookup:
        std::snprintf(line, sizeof(line), "lookup %d %d\n", op.client, op.file_ref);
        break;
      case TraceOpType::kReclaim:
        std::snprintf(line, sizeof(line), "reclaim %d %d\n", op.client, op.file_ref);
        break;
      case TraceOpType::kCrash:
        std::snprintf(line, sizeof(line), "crash %d\n", op.client);
        break;
      case TraceOpType::kJoin:
        std::snprintf(line, sizeof(line), "join\n");
        break;
    }
    out += line;
  }
  return out;
}

Result<Trace> Trace::Parse(std::string_view text) {
  Trace trace;
  std::istringstream stream{std::string(text)};
  std::string line;
  size_t inserts_seen = 0;
  while (std::getline(stream, line)) {
    if (line.empty() || line[0] == '#') {
      continue;
    }
    std::istringstream fields(line);
    std::string verb;
    fields >> verb;
    TraceOp op;
    if (verb == "insert") {
      op.type = TraceOpType::kInsert;
      if (!(fields >> op.client >> op.name >> op.size >> op.k) || op.size == 0 ||
          op.k == 0 || op.client < 0) {
        return StatusCode::kDecodeError;
      }
      ++inserts_seen;
    } else if (verb == "lookup" || verb == "reclaim") {
      op.type = verb == "lookup" ? TraceOpType::kLookup : TraceOpType::kReclaim;
      if (!(fields >> op.client >> op.file_ref) || op.client < 0 || op.file_ref < 0 ||
          static_cast<size_t>(op.file_ref) >= inserts_seen) {
        return StatusCode::kDecodeError;
      }
    } else if (verb == "crash") {
      op.type = TraceOpType::kCrash;
      if (!(fields >> op.client) || op.client < 0) {
        return StatusCode::kDecodeError;
      }
    } else if (verb == "join") {
      op.type = TraceOpType::kJoin;
    } else {
      return StatusCode::kDecodeError;
    }
    std::string trailing;
    if (fields >> trailing) {
      return StatusCode::kDecodeError;
    }
    trace.Add(std::move(op));
  }
  return trace;
}

Trace GenerateTrace(const TraceWorkloadOptions& options, Rng* rng) {
  PAST_CHECK(options.clients > 0);
  Trace trace;
  int inserts = 0;
  std::vector<int> live_files;    // insert indices not yet reclaimed
  std::vector<int> inserter_of;   // insert index -> issuing client
  const double total_weight = options.insert_weight + options.lookup_weight +
                              options.reclaim_weight + options.churn_weight;
  for (size_t i = 0; i < options.operations; ++i) {
    double dice = rng->UniformDouble() * total_weight;
    TraceOp op;
    op.client = static_cast<int>(rng->UniformU64(static_cast<uint64_t>(options.clients)));
    if (dice < options.insert_weight || live_files.empty()) {
      op.type = TraceOpType::kInsert;
      op.name = "t" + std::to_string(inserts);
      op.size = options.sizes.Sample(rng);
      op.k = options.replication;
      live_files.push_back(inserts);
      inserter_of.push_back(op.client);
      ++inserts;
    } else if (dice < options.insert_weight + options.lookup_weight) {
      op.type = TraceOpType::kLookup;
      // Zipf over the files inserted so far (rank 0 = oldest).
      ZipfDistribution zipf(live_files.size(), options.zipf_s);
      op.file_ref = live_files[zipf.Sample(rng)];
    } else if (dice <
               options.insert_weight + options.lookup_weight + options.reclaim_weight) {
      op.type = TraceOpType::kReclaim;
      size_t pick = rng->PickIndex(live_files.size());
      op.file_ref = live_files[pick];
      // Only the owner's card can authorize a reclaim.
      op.client = inserter_of[static_cast<size_t>(op.file_ref)];
      live_files.erase(live_files.begin() + static_cast<long>(pick));
    } else if (rng->Bernoulli(0.5)) {
      op.type = TraceOpType::kCrash;
    } else {
      op.type = TraceOpType::kJoin;
      op.client = 0;  // not serialized for joins
    }
    trace.Add(std::move(op));
  }
  return trace;
}

}  // namespace past
