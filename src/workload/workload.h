// Workload models for the PAST experiments.
//
// The storage-management evaluation (ref [12]) used file-system and web-proxy
// traces; we substitute parametric models matching their shape: heavy-tailed
// file sizes (lognormal body, Pareto tail), Zipf popularity for lookups, and
// skewed node capacities (the paper's storage nodes differ by orders of
// magnitude). DESIGN.md records the substitution rationale.
#pragma once

#include <string>
#include <vector>

#include "src/common/rng.h"

namespace past {

// File sizes in bytes: lognormal body with a Pareto tail, clamped to
// [min_size, max_size]. Defaults give a median of ~4 KiB with occasional
// multi-MiB outliers, echoing file-system trace statistics.
struct FileSizeModel {
  double lognormal_mu = 8.3;      // exp(8.3) ~ 4 KiB median
  double lognormal_sigma = 1.7;
  double pareto_tail_prob = 0.02;  // fraction of files drawn from the tail
  double pareto_xm = 65536.0;
  double pareto_alpha = 1.1;
  uint64_t min_size = 64;
  uint64_t max_size = 512ULL << 20;

  uint64_t Sample(Rng* rng) const;
};

// Node storage capacities: uniform in multiples of a base size across a
// configurable spread (the SOSP evaluation draws capacities across a wide
// range and excludes extreme outliers).
struct CapacityModel {
  uint64_t base = 2ULL << 20;  // 2 MiB granularity
  int min_multiple = 2;
  int max_multiple = 100;

  uint64_t Sample(Rng* rng) const;
};

// A synthetic insertion workload: file names and sizes.
struct WorkloadFile {
  std::string name;
  uint64_t size = 0;
};

std::vector<WorkloadFile> GenerateFiles(size_t count, const FileSizeModel& model,
                                        Rng* rng);

// A lookup trace over `file_count` files with Zipf(s) popularity.
class LookupTrace {
 public:
  LookupTrace(size_t file_count, double zipf_s) : zipf_(file_count, zipf_s) {}

  // Returns the index of the next file to look up.
  size_t Next(Rng* rng) const { return zipf_.Sample(rng); }

 private:
  ZipfDistribution zipf_;
};

}  // namespace past

