// Open-loop serving workload for the storage engine.
//
// Unlike a closed-loop driver (issue, wait, issue), an open-loop driver
// fixes the *offered* arrival rate: every operation has a scheduled arrival
// time drawn from a Poisson process, and latency is measured from that
// scheduled arrival to completion — so queueing delay under overload shows
// up in the numbers instead of silently throttling the load, which is the
// whole point of serving benchmarks against a latency SLO.
//
// The schedule is fully pregenerated from one seed: a prepopulation phase
// (distinct keys the lookups will hit) and a timed phase mixing fresh-key
// inserts with Zipf-popularity lookups over the prepopulated keys. Both the
// key material and the value bytes are deterministic functions of the seed,
// so two runs of the same schedule apply identical logical operations — the
// property the serving determinism gate checks across shard counts and
// thread counts.
#pragma once

#include <vector>

#include "src/common/bytes.h"
#include "src/common/rng.h"
#include "src/common/u160.h"
#include "src/workload/workload.h"

namespace past {

struct ServingWorkloadOptions {
  uint64_t seed = 1;
  // Keys inserted (and synced) before the timed phase; lookups target these.
  size_t prepopulate = 1024;
  // Scheduled operations in the timed phase.
  size_t op_count = 10000;
  // Fraction of scheduled ops that are inserts; the rest are lookups.
  double insert_fraction = 0.2;
  // Zipf skew for lookup popularity over the prepopulated keys.
  double zipf_s = 0.8;
  // Offered load: Poisson arrivals at this many ops/sec.
  double arrival_rate = 1000.0;
  // Value sizes draw from the trace-shaped model, clamped to this bound so
  // a single multi-MiB outlier cannot dominate a microsecond-scale sweep.
  FileSizeModel sizes;
  uint64_t max_value_bytes = 64ULL << 10;
};

struct ServingOp {
  enum class Type : uint8_t { kInsert, kLookup };
  Type type = Type::kInsert;
  U160 key;
  uint32_t value_size = 0;   // inserts only
  uint64_t value_seed = 0;   // inserts only: seed for ServingValue()
  uint64_t arrival_us = 0;   // scheduled arrival, microseconds from start
};

struct ServingSchedule {
  std::vector<ServingOp> prepopulate;  // inserts, arrival_us == 0
  std::vector<ServingOp> ops;          // timed phase, arrival_us ascending
};

// Deterministic value bytes for (seed, size).
Bytes ServingValue(uint64_t seed, uint32_t size);

ServingSchedule GenerateServingSchedule(const ServingWorkloadOptions& options);

}  // namespace past
