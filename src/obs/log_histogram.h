// LogHistogram — log-bucketed quantile histogram with bounded relative error.
//
// HDR-style: each power-of-two octave [2^(e-1), 2^e) is split into N equal
// sub-buckets, so a sample is placed with one frexp() and one multiply — no
// log() on the hot path and no a-priori value range. Reporting the midpoint
// of a sample's bucket guarantees a relative error of at most 1/(2N) for any
// positive sample (the bucket width is 2^(e-1)/N and every value in the
// bucket is >= 2^(e-1)), which makes quantile estimates (p50/p90/p99/p999)
// trustworthy at every scale from sub-microsecond to hours.
//
// Buckets are kept in a dense vector addressed by a signed linear index
// (octave * N + sub_bucket) that grows on demand in both directions, so a
// workload spanning a few octaves stays compact while nothing overflows.
// All arithmetic is plain IEEE double + integer ops: identical inputs give
// identical buckets and quantiles on every run and thread count, which the
// experiment determinism ctests rely on.
//
// Domain: finite values >= 0. Zero is counted exactly in a dedicated bucket;
// negative or non-finite samples are rejected into `invalid` (they would
// poison sums and have no log bucket).
#pragma once

#include <cstdint>
#include <vector>

#include "src/obs/json.h"

namespace past {

class LogHistogram {
 public:
  // 128 sub-buckets per octave: relative error <= 1/(2*128) ~ 0.4%.
  static constexpr int kDefaultSubBuckets = 128;

  explicit LogHistogram(int sub_buckets = kDefaultSubBuckets);

  void Observe(double value);

  uint64_t count() const { return count_; }     // valid samples (zeros included)
  uint64_t invalid() const { return invalid_; }  // rejected samples
  uint64_t zero_count() const { return zero_count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_); }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  int sub_buckets() const { return sub_buckets_; }

  // Upper bound on |estimate - true| / true for any positive sample.
  double relative_error() const { return 0.5 / static_cast<double>(sub_buckets_); }

  // Nearest-rank quantile estimate: the bucket-midpoint value of the sample
  // at sorted position ceil(q * count), clamped to the exact [min, max].
  // q in [0, 1]; returns 0 when empty.
  double Quantile(double q) const;
  double p50() const { return Quantile(0.50); }
  double p90() const { return Quantile(0.90); }
  double p99() const { return Quantile(0.99); }
  double p999() const { return Quantile(0.999); }

  void Reset();

  // Folds `other`'s samples into this histogram, exactly as if every sample
  // had been Observe()d here (bucket counts, extremes, and quantiles all
  // match). Both histograms must have the same sub-bucket resolution. The
  // streaming-aggregation primitive: shards record independently, merge once.
  void MergeFrom(const LogHistogram& other);

  // {"count", "invalid", "zero", "sum", "mean", "min", "max",
  //  "relative_error", "p50", "p90", "p99", "p999",
  //  "buckets": [{"idx", "low", "count"}, ...]} — non-empty buckets only,
  // ascending by index; "low" is the bucket's inclusive lower edge.
  JsonValue ToJson() const;

 private:
  // Signed linear bucket index of a positive finite value.
  int IndexOf(double value) const;
  // Inclusive lower edge and midpoint of bucket `index`.
  double BucketLow(int index) const;
  double BucketMid(int index) const;

  int sub_buckets_;
  std::vector<uint64_t> buckets_;  // dense window [base_, base_ + size)
  int base_ = 0;                   // linear index of buckets_[0]
  uint64_t count_ = 0;
  uint64_t zero_count_ = 0;
  uint64_t invalid_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace past
